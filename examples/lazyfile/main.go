// Lazyfile: the paper's closing claim is that the copy-on-reference
// facility is generic — "available to any application wishing to
// lazy-evaluate its data transfers" — not just to migration. This
// example uses it for remote file access: a file server publishes a
// 256 KB file as an imaginary segment; a client on another machine maps
// it and reads only the records it needs, paying for exactly those
// pages. A full-copy fetch of the same file is timed for contrast.
//
//	go run ./examples/lazyfile
package main

import (
	"fmt"
	"log"
	"time"

	"accentmig/internal/imag"
	"accentmig/internal/ipc"
	"accentmig/internal/machine"
	"accentmig/internal/netlink"
	"accentmig/internal/sim"
	"accentmig/internal/vm"
)

const (
	filePages = 512 // 256 KB file
	pageSize  = 512
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func fileContent(page uint64) []byte {
	d := make([]byte, pageSize)
	copy(d, fmt.Sprintf("record %04d:", page))
	return d
}

func run() error {
	k := sim.New()
	server := machine.New(k, "fileserver", machine.Config{})
	client := machine.New(k, "client", machine.Config{})
	link := machine.Connect(server, client, netlink.Config{})

	// The server publishes the file from its NetMsgServer-backed store:
	// one imaginary segment, owed page by page.
	segID := imag.NextSegID()
	sseg := server.Net.Store().AddSegment(segID, filePages*pageSize, pageSize)
	for i := uint64(0); i < filePages; i++ {
		sseg.Put(i, fileContent(i))
	}

	// The client maps the file without moving a byte.
	as := vm.MustNewAddressSpace(vm.Config{})
	fileSeg := vm.NewImaginarySegment("remote-file", filePages*pageSize, pageSize, uint64(server.Net.BackingPort()))
	fileSeg.ID = segID
	if _, err := as.MapSegment(0, filePages*pageSize, fileSeg, 0, "remote-file"); err != nil {
		return err
	}
	client.Net.AddRoute(server.Net.BackingPort(), "fileserver")
	client.Pager.SetPrefetch(1)

	var mapAt, lazyDone time.Duration
	var sample string
	k.Go("client", func(p *sim.Proc) {
		mapAt = p.Now() // mapping was free: no bytes moved yet
		// Read 10 scattered records out of 512.
		for i := 0; i < 10; i++ {
			page := uint64(i * 50)
			got, err := client.Pager.Read(p, as, vm.Addr(page*pageSize), 16)
			if err != nil {
				log.Printf("read: %v", err)
				return
			}
			if i == 0 {
				sample = string(got[:12])
			}
		}
		lazyDone = p.Now()
	})
	k.Run()
	lazyBytes := link.Bytes()

	fmt.Printf("lazy access to a %d KB remote file (10 of %d records read):\n",
		filePages*pageSize/1024, filePages)
	fmt.Printf("  map-in cost:            %v (an IOU, no data moved)\n", mapAt)
	fmt.Printf("  10 record reads:        %.2fs, %d bytes on the wire\n",
		(lazyDone - mapAt).Seconds(), lazyBytes)
	fmt.Printf("  first record sample:    %q\n", sample)
	fmt.Printf("  pages still owed:       %d of %d\n",
		server.Net.Store().TotalRemaining(), filePages)

	// Contrast: fetching the whole file eagerly (flush every page).
	var fullDone time.Duration
	k.Go("client-full", func(p *sim.Proc) {
		start := p.Now()
		rep, err := client.IPC.Call(p, &ipc.Message{
			Op:        imag.OpFlush,
			To:        server.Net.BackingPort(),
			Body:      &imag.FlushRequest{SegID: segID},
			BodyBytes: imag.FlushRequestBytes,
		})
		if err != nil {
			log.Printf("flush: %v", err)
			return
		}
		body := rep.Body.(*imag.ReadReply)
		for _, run := range body.Runs {
			fileSeg.MaterializeRun(run.Index, run.Count, run.Data)
		}
		fullDone = p.Now() - start
	})
	k.Run()

	fmt.Printf("\neager fetch of the remaining %d KB:\n", (filePages-10*2)*pageSize/1024)
	fmt.Printf("  full transfer:          %.2fs, %d total bytes on the wire\n",
		fullDone.Seconds(), link.Bytes())
	fmt.Println("\nLazy shipment made the 10-record read ~two orders of magnitude")
	fmt.Println("cheaper than fetching the file — the same arithmetic that makes")
	fmt.Println("copy-on-reference migration practically instantaneous.")
	return nil
}
