// Loadbalance: the paper's §6 calls for "automatic migration
// strategies" with load metrics aware that a migrated process's memory
// may be dispersed among several hosts. This example runs a three-
// machine cluster with eight compute jobs all starting on one host and
// lets the dispersal-aware Balancer spread them lazily, then compares
// the makespan against leaving them alone.
//
//	go run ./examples/loadbalance
package main

import (
	"fmt"
	"log"
	"time"

	"accentmig/internal/core"
	"accentmig/internal/machine"
	"accentmig/internal/netlink"
	"accentmig/internal/sim"
	"accentmig/internal/trace"
	"accentmig/internal/vm"
)

const jobs = 8

func main() {
	withoutBal, _ := run(false)
	withBal, migrations := run(true)
	fmt.Printf("\n%d CPU-bound jobs, all started on one of three hosts:\n", jobs)
	fmt.Printf("  makespan without balancing: %6.1fs\n", withoutBal.Seconds())
	fmt.Printf("  makespan with balancing:    %6.1fs  (%d automatic lazy migrations)\n",
		withBal.Seconds(), migrations)
	fmt.Printf("  speedup: %.1fx\n", withoutBal.Seconds()/withBal.Seconds())
}

func buildJob(m *machine.Machine, name string) (*machine.Process, error) {
	pr, err := m.NewProcess(name, 1)
	if err != nil {
		return nil, err
	}
	reg, err := pr.AS.Validate(0, 128*512, "data")
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < 128; i++ {
		pg := reg.Seg.Materialize(i, []byte{byte(i)})
		pg.State.OnDisk = true
	}
	var ops []trace.Op
	for b := 0; b < 120; b++ {
		ops = append(ops,
			trace.Compute{D: 250 * time.Millisecond},
			trace.Touch{Addr: vm.Addr(512 * (b % 128))},
		)
	}
	pr.Program = &trace.Program{Ops: ops}
	return pr, nil
}

func run(balance bool) (time.Duration, uint64) {
	k := sim.New()
	var ms []*machine.Machine
	var mgrs []*core.Manager
	for i := 0; i < 3; i++ {
		m := machine.New(k, fmt.Sprintf("host%d", i), machine.Config{})
		ms = append(ms, m)
		mgrs = append(mgrs, core.NewManager(m, core.DefaultTuning()))
	}
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			machine.Connect(ms[i], ms[j], netlink.Config{})
		}
	}
	for i := range ms {
		for j := range mgrs {
			if i != j {
				ms[i].Net.AddRoute(mgrs[j].Port.ID, ms[j].Name)
			}
		}
	}

	var procs []*machine.Process
	for i := 0; i < jobs; i++ {
		pr, err := buildJob(ms[0], fmt.Sprintf("job%d", i))
		if err != nil {
			log.Fatal(err)
		}
		procs = append(procs, pr)
		ms[0].Start(pr)
	}

	b := core.NewBalancer(mgrs...)
	stop := sim.NewGate(k)
	if balance {
		k.Go("balancer", func(p *sim.Proc) {
			if err := b.Run(p, 3*time.Second, stop); err != nil {
				log.Printf("balancer: %v", err)
			}
		})
	}

	var makespan time.Duration
	k.Go("waiter", func(p *sim.Proc) {
		for _, pr := range procs {
			// A job may have moved; wait on the Done gate of whichever
			// incarnation is current. Migration preserves the Process
			// object only per-host, so track by name.
			name := pr.Name
			for {
				var cur *machine.Process
				for _, m := range ms {
					if c, ok := m.Process(name); ok {
						cur = c
						break
					}
				}
				if cur != nil && cur.Status == machine.Finished {
					break
				}
				p.Sleep(500 * time.Millisecond)
			}
		}
		makespan = p.Now()
		stop.Open()
	})
	k.Run()

	if balance {
		fmt.Printf("with balancing: final distribution ")
		for _, l := range b.Loads() {
			fmt.Printf("[%s owes %d pages] ", l.Name, l.OwedPages)
		}
		fmt.Println()
	}
	return makespan, b.Migrations()
}
