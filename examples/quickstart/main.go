// Quickstart: build a two-machine SPICE testbed, create a process with
// real page data, migrate it by copy-on-reference, and watch it finish
// remotely — verifying that every byte survived the move.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"accentmig/internal/core"
	"accentmig/internal/machine"
	"accentmig/internal/metrics"
	"accentmig/internal/netlink"
	"accentmig/internal/sim"
	"accentmig/internal/trace"
	"accentmig/internal/vm"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A simulation kernel and two machines joined by the 3 Mbit
	// testbed Ethernet.
	k := sim.New()
	src := machine.New(k, "perq-a", machine.Config{})
	dst := machine.New(k, "perq-b", machine.Config{})
	link := machine.Connect(src, dst, netlink.Config{})
	rec := metrics.NewRecorder(time.Second)
	src.SetRecorder(rec)
	dst.SetRecorder(rec)
	link.SetRecorder(rec)

	// Migration managers on both hosts; each can name the other's port.
	srcMgr := core.NewManager(src, core.DefaultTuning())
	dstMgr := core.NewManager(dst, core.DefaultTuning())
	src.Net.AddRoute(dstMgr.Port.ID, "perq-b")
	dst.Net.AddRoute(srcMgr.Port.ID, "perq-a")

	// A process: 64 pages of recognizable data, 1 MB of lazily
	// zero-filled heap, and a program that runs a little, migrates,
	// then reads its memory back on the new host.
	pr, err := src.NewProcess("worker", 2)
	if err != nil {
		return err
	}
	reg, err := pr.AS.Validate(0, 64*512, "data")
	if err != nil {
		return err
	}
	if _, err := pr.AS.Validate(1<<20, 1<<20, "heap"); err != nil {
		return err
	}
	content := func(i uint64) []byte {
		return bytes.Repeat([]byte{byte('A' + i%26)}, 512)
	}
	for i := uint64(0); i < 64; i++ {
		pg := reg.Seg.Materialize(i, content(i))
		pg.State.OnDisk = true
	}
	pr.Program = &trace.Program{Ops: []trace.Op{
		trace.Compute{D: 500 * time.Millisecond},
		trace.Touch{Addr: 0},
		trace.MigratePoint{},
		trace.SeqScan{Start: 0, Bytes: 16 * 512, PerTouch: 5 * time.Millisecond},
		trace.Touch{Addr: 1 << 20, Write: true}, // FillZero on the heap
		trace.Compute{D: 250 * time.Millisecond},
	}}
	src.Start(pr)

	var report *core.Report
	var verified bool
	k.Go("driver", func(p *sim.Proc) {
		rep, err := srcMgr.MigrateTo(p, "worker", dstMgr.Port.ID, core.Options{
			Strategy:         core.PureIOU,
			Prefetch:         1,
			WaitMigratePoint: true,
		})
		if err != nil {
			log.Printf("migration failed: %v", err)
			return
		}
		report = rep
		npr, _ := dst.Process("worker")
		if err := npr.WaitDone(p); err != nil {
			log.Printf("remote execution failed: %v", err)
			return
		}
		// Verify the data content on the destination.
		for i := uint64(0); i < 16; i++ {
			got, err := dst.Pager.Read(p, npr.AS, vm.Addr(i*512), 512)
			if err != nil {
				log.Printf("verify: %v", err)
				return
			}
			if !bytes.Equal(got, content(i)) {
				log.Printf("verify: page %d corrupted", i)
				return
			}
		}
		verified = true
	})
	k.Run()
	if report == nil {
		return fmt.Errorf("migration did not complete")
	}

	fmt.Println("copy-on-reference migration of 'worker' from perq-a to perq-b")
	fmt.Printf("  excise (AMap %.0fms + RIMAS %.0fms)    %8.0f ms\n",
		report.Excise.AMap.Seconds()*1000, report.Excise.RIMAS.Seconds()*1000,
		report.Excise.Overall.Seconds()*1000)
	fmt.Printf("  Core context transfer                %8.0f ms\n", report.CoreTransfer.Seconds()*1000)
	fmt.Printf("  RIMAS (address space) transfer       %8.0f ms  <- the IOU trick\n", report.RIMASTransfer.Seconds()*1000)
	fmt.Printf("  insertion                            %8.0f ms\n", report.Insert.Overall.Seconds()*1000)
	fmt.Printf("  bytes on the wire                    %8d B (of %d B of RealMem)\n",
		rec.BytesTotal(), 64*512)
	fmt.Printf("  remote faults                        %8d\n", dst.Pager.Stats().ImagFaults)
	fmt.Printf("  residual pages still owed by perq-a  %8d\n", src.Net.Store().TotalRemaining())
	fmt.Printf("  data verified after migration:       %v\n", verified)
	if !verified {
		return fmt.Errorf("verification failed")
	}
	return nil
}
