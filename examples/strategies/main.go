// Strategies: migrate the same file-processing workload under
// pure-copy, resident-set, and pure-IOU transfer at several prefetch
// values, and print the end-to-end comparison — a miniature of the
// paper's Figure 4-2 for one program.
//
//	go run ./examples/strategies
package main

import (
	"fmt"
	"log"

	"accentmig/internal/core"
	"accentmig/internal/experiments"
	"accentmig/internal/workload"
)

func main() {
	kind := workload.PMStart
	fmt.Printf("migrating %s (touches %d%% of its RealMem remotely)\n\n",
		kind, int(100*float64(workload.PaperNumbers(kind).TouchedIOU*512)/float64(workload.PaperNumbers(kind).RealBytes)))
	fmt.Printf("%-12s %10s %10s %10s %12s\n", "strategy", "transfer", "exec", "end2end", "wire bytes")

	show := func(s core.Strategy, pf int) {
		tr, err := experiments.RunTrial(experiments.Config{}, kind, s, pf)
		if err != nil {
			log.Fatal(err)
		}
		label := s.String()
		if s != core.PureCopy {
			label = fmt.Sprintf("%s/PF%d", s, pf)
		}
		fmt.Printf("%-12s %9.2fs %9.2fs %9.2fs %12d\n",
			label, tr.Report.RIMASTransfer.Seconds(), tr.RemoteExec.Seconds(),
			tr.EndToEnd.Seconds(), tr.BytesTotal)
	}

	show(core.PureCopy, 0)
	for _, pf := range []int{0, 1, 7} {
		show(core.ResidentSet, pf)
	}
	for _, pf := range []int{0, 1, 7} {
		show(core.PureIOU, pf)
	}

	fmt.Println("\nThe lazy strategies win the transfer phase outright; whether they")
	fmt.Println("win end-to-end depends on how much of the space the program touches")
	fmt.Println("remotely — the paper's breakeven is about a quarter of RealMem —")
	fmt.Println("and prefetch pulls sequential programs back across that line.")
}
