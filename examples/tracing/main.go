// Tracing: attach the flight recorder to a lazy migration and export
// it as a Chrome trace-event file. Open the output in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing — each machine is a
// process group, each simulated process a thread, with the migration
// phases as nested spans and every message, fault, and page transfer
// as individual events on the virtual-time axis.
//
//	go run ./examples/tracing            # writes migration-trace.json
//	go run ./examples/tracing out.json   # custom path
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"time"

	"accentmig/internal/core"
	"accentmig/internal/machine"
	"accentmig/internal/metrics"
	"accentmig/internal/netlink"
	"accentmig/internal/obs"
	"accentmig/internal/sim"
	"accentmig/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	out := "migration-trace.json"
	if len(os.Args) > 1 {
		out = os.Args[1]
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()

	// The recorder stack: a ChromeSink streams every event to the
	// trace file; a MemorySink keeps them for the summary below. Tee
	// via a tiny fan-out sink — any obs.Sink composes this way.
	chrome := obs.NewChromeSink(f)
	mem := obs.NewMemorySink()
	tee := teeSink{chrome, mem}

	k := sim.New()
	k.SetSink(tee)

	src := machine.New(k, "perq-a", machine.Config{})
	dst := machine.New(k, "perq-b", machine.Config{})
	machine.Connect(src, dst, netlink.Config{})
	rec := metrics.NewRecorder(time.Second)
	src.SetRecorder(rec)
	dst.SetRecorder(rec)

	srcMgr := core.NewManager(src, core.DefaultTuning())
	dstMgr := core.NewManager(dst, core.DefaultTuning())
	src.Net.AddRoute(dstMgr.Port.ID, "perq-b")
	dst.Net.AddRoute(srcMgr.Port.ID, "perq-a")

	// A process with 128 pages of real data that it re-reads after the
	// migration point — every one of those reads is a remote fault
	// under pure-IOU, and each shows up in the trace as a
	// FaultStart/FaultResolved pair plus the network traffic between.
	pr, err := src.NewProcess("worker", 2)
	if err != nil {
		return err
	}
	reg, err := pr.AS.Validate(0, 128*512, "data")
	if err != nil {
		return err
	}
	for i := uint64(0); i < 128; i++ {
		reg.Seg.Materialize(i, bytes.Repeat([]byte{byte(i)}, 512))
	}
	pr.Program = &trace.Program{Ops: []trace.Op{
		trace.Compute{D: 200 * time.Millisecond},
		trace.MigratePoint{},
		trace.SeqScan{Start: 0, Bytes: 64 * 512, PerTouch: time.Millisecond},
		trace.Compute{D: 100 * time.Millisecond},
	}}
	src.Start(pr)

	var report *core.Report
	k.Go("driver", func(p *sim.Proc) {
		rep, err := srcMgr.MigrateTo(p, "worker", dstMgr.Port.ID, core.Options{
			Strategy:         core.PureIOU,
			WaitMigratePoint: true,
		})
		if err != nil {
			log.Printf("migration failed: %v", err)
			return
		}
		report = rep
		npr, _ := dst.Process("worker")
		if err := npr.WaitDone(p); err != nil {
			log.Printf("remote execution failed: %v", err)
		}
	})
	k.Run()
	if report == nil {
		return fmt.Errorf("migration did not complete")
	}
	if err := chrome.Close(); err != nil {
		return fmt.Errorf("writing trace: %w", err)
	}

	fmt.Printf("lazy migration traced to %s — load it in https://ui.perfetto.dev\n", out)
	fmt.Printf("  migration total %.0f ms, %d remote faults afterwards\n",
		report.Total.Seconds()*1000, dst.Pager.Stats().ImagFaults)
	counts := mem.CountKinds()
	fmt.Printf("  %d events:", mem.Len())
	for _, kind := range obs.Kinds() {
		if n := counts[kind]; n > 0 {
			fmt.Printf(" %s=%d", kind, n)
		}
	}
	fmt.Println()
	if d := rec.Dist("latency.fault.imag"); d != nil {
		fmt.Printf("  remote fault latency p50/p95/p99: %.1f / %.1f / %.1f ms\n",
			d.Quantile(0.50).Seconds()*1000, d.Quantile(0.95).Seconds()*1000,
			d.Quantile(0.99).Seconds()*1000)
	}
	return nil
}

// teeSink duplicates every event to both sinks.
type teeSink struct{ a, b obs.Sink }

func (t teeSink) Emit(ev obs.Event) {
	t.a.Emit(ev)
	t.b.Emit(ev)
}
