// Precopy: compare the three downtime disciplines on a process that
// keeps writing while it is being moved — Theimer's iterative pre-copy
// (V-system, discussed in the paper's related work), classic
// stop-and-copy, and the paper's copy-on-reference. Pre-copy buys low
// downtime by paying the transfer twice for hot pages; the IOU strategy
// buys even lower downtime by barely paying at migration time at all.
//
//	go run ./examples/precopy
package main

import (
	"fmt"
	"log"

	"accentmig/internal/experiments"
)

func main() {
	rows, err := experiments.PreCopyComparison(experiments.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.FormatPreCopy(rows))
	fmt.Println()
	fmt.Println("Downtime is when the process is frozen; total includes the running")
	fmt.Println("copy rounds. Pre-copy halves the freeze but moves the most bytes —")
	fmt.Println("hot pages cross the wire once per round. Copy-on-reference freezes")
	fmt.Println("least and moves least, deferring its costs to remote faults.")
}
