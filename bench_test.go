package accentmig

import (
	"testing"

	"accentmig/internal/core"
	"accentmig/internal/experiments"
	"accentmig/internal/workload"
)

// The benchmarks regenerate every table and figure of the paper's
// evaluation. Each op is a full simulated trial (or table sweep); the
// interesting output is the custom metrics: sim-seconds of virtual
// time, bytes on the simulated wire, and so on — absolute wall time
// only measures the simulator itself.

func reportTrial(b *testing.B, tr *experiments.TrialResult) {
	b.ReportMetric(tr.Report.RIMASTransfer.Seconds(), "sim-xfer-s")
	b.ReportMetric(tr.RemoteExec.Seconds(), "sim-exec-s")
	b.ReportMetric(float64(tr.BytesTotal), "sim-bytes")
	b.ReportMetric(tr.MsgTime.Seconds(), "sim-msg-s")
}

// BenchmarkTable41 regenerates the address-space composition table.
func BenchmarkTable41(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table41(experiments.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatTable41(rows))
		}
	}
}

// BenchmarkTable42 regenerates the resident-set table.
func BenchmarkTable42(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table42(experiments.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatTable42(rows))
		}
	}
}

// BenchmarkTable43 regenerates the percent-of-space-accessed table.
func BenchmarkTable43(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table43(experiments.Config{}, workload.Kinds())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatTable43(rows))
		}
	}
}

// BenchmarkTable44 regenerates the excision/insertion timing table.
func BenchmarkTable44(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table44(experiments.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatTable44(rows))
		}
	}
}

// BenchmarkTable45 regenerates the address-space transfer time table.
func BenchmarkTable45(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table45(experiments.Config{}, workload.Kinds())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatTable45(rows))
		}
	}
}

// benchGridCell runs one (workload, strategy, prefetch) trial per op.
func benchGridCell(b *testing.B, k workload.Kind, s core.Strategy, pf int) {
	b.Helper()
	var last *experiments.TrialResult
	for i := 0; i < b.N; i++ {
		tr, err := experiments.RunTrial(experiments.Config{}, k, s, pf)
		if err != nil {
			b.Fatal(err)
		}
		last = tr
	}
	reportTrial(b, last)
}

// figureGrid drives the shared sweep behind Figures 4-1 through 4-4:
// sub-benchmarks per workload × strategy × prefetch.
func figureGrid(b *testing.B) {
	for _, k := range workload.Kinds() {
		k := k
		b.Run(k.String()+"/Copy", func(b *testing.B) { benchGridCell(b, k, core.PureCopy, 0) })
		for _, pf := range core.PrefetchValues() {
			pf := pf
			b.Run(benchName(k, core.PureIOU, pf), func(b *testing.B) { benchGridCell(b, k, core.PureIOU, pf) })
			b.Run(benchName(k, core.ResidentSet, pf), func(b *testing.B) { benchGridCell(b, k, core.ResidentSet, pf) })
		}
	}
}

func benchName(k workload.Kind, s core.Strategy, pf int) string {
	return k.String() + "/" + s.String() + "-PF" + itoa(pf)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [4]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkFigure41 regenerates remote execution times (per cell, see
// sim-exec-s).
func BenchmarkFigure41(b *testing.B) { figureGrid(b) }

// BenchmarkFigure42 regenerates the end-to-end speedup comparison: one
// op runs the full grid for one workload and reports the PF0 IOU
// speedup over pure-copy.
func BenchmarkFigure42(b *testing.B) {
	for _, k := range workload.Kinds() {
		k := k
		b.Run(k.String(), func(b *testing.B) {
			var speedup float64
			for i := 0; i < b.N; i++ {
				cp, err := experiments.RunTrial(experiments.Config{}, k, core.PureCopy, 0)
				if err != nil {
					b.Fatal(err)
				}
				iou, err := experiments.RunTrial(experiments.Config{}, k, core.PureIOU, 0)
				if err != nil {
					b.Fatal(err)
				}
				speedup = 100 * (cp.EndToEnd.Seconds() - iou.EndToEnd.Seconds()) / cp.EndToEnd.Seconds()
			}
			b.ReportMetric(speedup, "speedup-pct")
		})
	}
}

// BenchmarkFigure43 regenerates bytes-transferred per cell (sim-bytes).
func BenchmarkFigure43(b *testing.B) {
	for _, k := range workload.Kinds() {
		k := k
		for _, s := range core.Strategies() {
			s := s
			b.Run(k.String()+"/"+s.String(), func(b *testing.B) { benchGridCell(b, k, s, 0) })
		}
	}
}

// BenchmarkFigure44 regenerates message-handling costs (sim-msg-s).
func BenchmarkFigure44(b *testing.B) {
	for _, k := range workload.Kinds() {
		k := k
		for _, s := range core.Strategies() {
			s := s
			b.Run(k.String()+"/"+s.String(), func(b *testing.B) { benchGridCell(b, k, s, 0) })
		}
	}
}

// BenchmarkFigure45 regenerates the Lisp-Del byte-rate panels.
func BenchmarkFigure45(b *testing.B) {
	var panels []experiments.Figure45Panel
	for i := 0; i < b.N; i++ {
		var err error
		panels, err = experiments.Figure45(experiments.Config{})
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(panels) == 3 {
		b.ReportMetric(panels[0].Total.Seconds(), "sim-iou-total-s")
		b.ReportMetric(panels[2].Total.Seconds(), "sim-copy-total-s")
	}
}

// BenchmarkGridSweepSeq runs the full three-workload grid strictly
// sequentially with no cache — the reference cost of one sweep.
func BenchmarkGridSweepSeq(b *testing.B) {
	kinds := []workload.Kind{workload.Minprog, workload.LispDel, workload.Chess}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunGridSeq(experiments.Config{}, kinds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGridSweepEngine runs the same grid through the trial engine
// (worker pool, cold cache each op) for a like-for-like comparison
// with BenchmarkGridSweepSeq.
func BenchmarkGridSweepEngine(b *testing.B) {
	kinds := []workload.Kind{workload.Minprog, workload.LispDel, workload.Chess}
	e := experiments.NewEngine(0)
	for i := 0; i < b.N; i++ {
		e.Reset()
		if _, err := e.RunGrid(experiments.Config{}, kinds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSummary regenerates the §4.5 aggregates.
func BenchmarkSummary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, err := experiments.RunGrid(experiments.Config{}, []workload.Kind{
			workload.Minprog, workload.LispDel, workload.Chess,
		})
		if err != nil {
			b.Fatal(err)
		}
		s, err := experiments.Summarize(experiments.Config{}, g, []workload.Kind{
			workload.Minprog, workload.LispDel, workload.Chess,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(s.AvgByteSavingsPct, "byte-savings-pct")
		b.ReportMetric(s.AvgMsgTimeSavingsPct, "msg-savings-pct")
		b.ReportMetric(s.FaultRatio, "fault-ratio")
	}
}

// BenchmarkAblationPrefetch sweeps prefetch on a sequential workload.
func BenchmarkAblationPrefetch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.PrefetchAblation(core.PrefetchValues())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatAblation("Prefetch sweep (synthetic sequential)", rows))
		}
	}
}

// BenchmarkAblationPageSize sweeps the VM page size.
func BenchmarkAblationPageSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.PageSizeAblation([]int{256, 512, 1024, 2048})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatAblation("Page-size sweep", rows))
		}
	}
}

// BenchmarkAblationBandwidth finds where pure-copy overtakes IOU as
// the network speeds up.
func BenchmarkAblationBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.BandwidthAblation([]int{375_000, 3_750_000, 37_500_000})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatAblation("Bandwidth sweep (IOU vs Copy)", rows))
		}
	}
}

// BenchmarkAblationIOUCache shows the NetMsgServer cache is what makes
// lazy shipment possible.
func BenchmarkAblationIOUCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.IOUCacheAblation()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatAblation("IOU cache on/off", rows))
		}
	}
}

// BenchmarkAblationCopyThreshold sweeps the IPC copy/map threshold.
func BenchmarkAblationCopyThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.CopyThresholdAblation([]int{512, 4096, 65536, 1 << 20})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatAblation("IPC copy/map threshold sweep", rows))
		}
	}
}

// BenchmarkPreCopy compares the V-system iterative pre-copy against
// stop-and-copy and copy-on-reference on a writer workload, reporting
// downtimes.
func BenchmarkPreCopy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.PreCopyComparison(experiments.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatPreCopy(rows))
		}
		b.ReportMetric(rows[0].Downtime.Seconds(), "sim-precopy-down-s")
		b.ReportMetric(rows[1].Downtime.Seconds(), "sim-copy-down-s")
		b.ReportMetric(rows[2].Downtime.Seconds(), "sim-iou-down-s")
	}
}

// BenchmarkBreakeven sweeps the touched fraction to locate the IOU/copy
// crossover (§4.3.4: ≈¼ of RealMem).
func BenchmarkBreakeven(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.BreakevenSweep(experiments.Config{}, []int{5, 15, 25, 40, 60})
		if err != nil {
			b.Fatal(err)
		}
		if be := experiments.Breakeven(rows); be > 0 {
			b.ReportMetric(be, "breakeven-pct")
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatBreakeven(rows))
		}
	}
}
