package experiments

import (
	"testing"
	"time"

	"accentmig/internal/core"
	"accentmig/internal/workload"
)

func TestPageSizeAblation(t *testing.T) {
	rows, err := PageSizeAblation([]int{256, 512, 2048})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Smaller pages mean more faults: remote execution is slowest at
	// 256B pages for a fixed byte volume and touch fraction.
	if rows[0].RemoteExec <= rows[2].RemoteExec {
		t.Errorf("256B exec (%v) not above 2048B exec (%v)", rows[0].RemoteExec, rows[2].RemoteExec)
	}
}

func TestBandwidthAblation(t *testing.T) {
	rows, err := BandwidthAblation([]int{375_000, 37_500_000})
	if err != nil {
		t.Fatal(err)
	}
	// rows: [slow/IOU slow/Copy fast/IOU fast/Copy]
	slowIOU, slowCopy := rows[0], rows[1]
	fastIOU, fastCopy := rows[2], rows[3]
	// On the period Ethernet, IOU wins end-to-end for a 25%-touch
	// process; the gap must shrink dramatically on a fast network
	// (faults pay fixed CPU costs that bandwidth cannot remove).
	slowGap := slowCopy.EndToEnd.Seconds() - slowIOU.EndToEnd.Seconds()
	fastGap := fastCopy.EndToEnd.Seconds() - fastIOU.EndToEnd.Seconds()
	if slowGap <= fastGap {
		t.Errorf("bandwidth did not close the copy/IOU gap: slow %+.2fs fast %+.2fs", slowGap, fastGap)
	}
	// Copy's transfer itself must speed up with bandwidth.
	if fastCopy.Transfer >= slowCopy.Transfer {
		t.Errorf("copy transfer not faster on fast link: %v vs %v", fastCopy.Transfer, slowCopy.Transfer)
	}
}

func TestIOUCacheAblation(t *testing.T) {
	rows, err := IOUCacheAblation()
	if err != nil {
		t.Fatal(err)
	}
	on, off := rows[0], rows[1]
	// Without the NetMsgServer cache there is no backer: everything
	// moves at migration time and the transfer balloons.
	if off.Transfer < 10*on.Transfer {
		t.Errorf("cache-off transfer (%v) not far above cache-on (%v)", off.Transfer, on.Transfer)
	}
	if off.Bytes < 2*on.Bytes {
		t.Errorf("cache-off bytes (%d) not well above cache-on (%d)", off.Bytes, on.Bytes)
	}
}

func TestCopyThresholdAblation(t *testing.T) {
	rows, err := CopyThresholdAblation([]int{4096, 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	// Forcing physical copies for big messages (huge threshold) makes
	// migration slower end to end.
	if rows[1].EndToEnd <= rows[0].EndToEnd {
		t.Errorf("huge copy threshold not slower: %v vs %v", rows[1].EndToEnd, rows[0].EndToEnd)
	}
}

func TestPrefetchAblation(t *testing.T) {
	rows, err := PrefetchAblation(core.PrefetchValues())
	if err != nil {
		t.Fatal(err)
	}
	// Sequential workload: more prefetch, faster remote execution.
	if rows[len(rows)-1].RemoteExec >= rows[0].RemoteExec {
		t.Errorf("prefetch did not speed sequential execution: PF0 %v, PF15 %v",
			rows[0].RemoteExec, rows[len(rows)-1].RemoteExec)
	}
}

func TestPreCopyComparison(t *testing.T) {
	rows, err := PreCopyComparison(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	pre, cp, iou := rows[0], rows[1], rows[2]
	// Pre-copy's pitch: downtime well below stop-and-copy.
	if pre.Downtime >= cp.Downtime/2 {
		t.Errorf("pre-copy downtime %v not well below stop-and-copy %v", pre.Downtime, cp.Downtime)
	}
	// IOU resumes even faster than pre-copy finishes its handoff.
	if iou.Downtime >= cp.Downtime {
		t.Errorf("IOU downtime %v not below copy %v", iou.Downtime, cp.Downtime)
	}
	// But pre-copy pays full transfer cost (and more, for re-dirtied
	// pages) while IOU ships almost nothing up front.
	if pre.Bytes <= iou.Bytes {
		t.Errorf("pre-copy bytes (%d) not above IOU (%d)", pre.Bytes, iou.Bytes)
	}
	if pre.Bytes < cp.Bytes {
		t.Errorf("pre-copy bytes (%d) below pure copy (%d)", pre.Bytes, cp.Bytes)
	}
}

func TestBreakevenNearQuarter(t *testing.T) {
	rows, err := BreakevenSweep(Config{}, []int{5, 10, 15, 20, 25, 30, 40, 50, 60})
	if err != nil {
		t.Fatal(err)
	}
	// Small touch fractions favor IOU; large ones favor copy.
	if rows[0].SpeedupPct <= 0 {
		t.Errorf("5%% touch: IOU speedup = %.1f%%, want positive", rows[0].SpeedupPct)
	}
	if last := rows[len(rows)-1]; last.SpeedupPct >= 0 {
		t.Errorf("60%% touch: IOU speedup = %.1f%%, want negative", last.SpeedupPct)
	}
	be := Breakeven(rows)
	if be < 10 || be > 45 {
		t.Errorf("breakeven at %.0f%% of RealMem, paper ≈25%%", be)
	}
	t.Logf("breakeven ≈ %.0f%% (paper ≈25%%)", be)
}

func TestBystanderImpact(t *testing.T) {
	rows, err := BystanderImpact(Config{})
	if err != nil {
		t.Fatal(err)
	}
	byStrat := map[core.Strategy]BystanderRow{}
	for _, r := range rows {
		byStrat[r.Strategy] = r
		if r.SlowdownPct < -1 {
			t.Errorf("%v: negative slowdown %.1f%%", r.Strategy, r.SlowdownPct)
		}
	}
	iou := byStrat[core.PureIOU]
	cp := byStrat[core.PureCopy]
	// §4.4.3: pure-copy's burst steals far more bystander time during
	// the migration window than IOU's trickle.
	if iou.SlowdownPct >= cp.SlowdownPct {
		t.Errorf("IOU slowdown (%.1f%%) not below copy (%.1f%%)", iou.SlowdownPct, cp.SlowdownPct)
	}
	if cp.SlowdownPct < 5 {
		t.Errorf("copy slowdown only %.1f%%; expected a visible burst", cp.SlowdownPct)
	}
}

func TestResidualSeries(t *testing.T) {
	series, err := ResidualSeries(Config{}, workload.LispT, 0, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) < 3 {
		t.Fatalf("series too short: %d points", len(series))
	}
	// Monotone non-increasing once migration completes, ending well
	// above zero: Lisp-T leaves most of its 4303 pages owed forever.
	final := series[len(series)-1].Pages
	if final < 3500 {
		t.Errorf("final residual = %d, want most of 4303 still owed", final)
	}
	peak := 0
	for _, pt := range series {
		if pt.Pages > peak {
			peak = pt.Pages
		}
	}
	if peak < final {
		t.Error("series never peaked")
	}
}

func TestHopPenalty(t *testing.T) {
	rows, err := HopPenalty(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	ratio := float64(rows[1].FaultMean) / float64(rows[0].FaultMean)
	// The second hop relays every fault through an extra NetMsgServer:
	// noticeably slower, but less than double (shared fixed costs).
	if ratio < 1.2 || ratio > 2.5 {
		t.Errorf("hop penalty = %.2fx, want ≈1.5x", ratio)
	}
	t.Logf("1 hop %.0fms, 2 hops %.0fms (%.2fx)",
		rows[0].FaultMean.Seconds()*1000, rows[1].FaultMean.Seconds()*1000, ratio)
}
