// Chaos campaign: randomized, seed-deterministic fault plans thrown at
// randomized migration scenarios, with every trial checked against
// invariants that must hold no matter what the network does. A failing
// seed is automatically shrunk to a minimal fault plan (greedy
// one-element ddmin), so a red campaign run ends with a reproducer
// small enough to paste into a regression test.
//
// The invariants (see docs/RESILIENCE.md):
//
//   - the trial reaches a definite outcome: migrated or cleanly
//     aborted, and the program either runs to completion somewhere or
//     dies with a typed error class explaining why (a partition longer
//     than the dead-peer horizon is a modeled crash);
//   - a crash-free plan never zero-fills a page (no orphaned IOUs);
//   - a migrated process's final memory image is identical to the
//     fault-free golden run of the same scenario;
//   - neither machine's frame pool holds more frames than the golden
//     run — retries and rollbacks must not leak;
//   - the source store owes exactly what the golden run owes;
//   - downtime is within [golden downtime, total time] — losing frames
//     can only lengthen the frozen interval, and retry re-stamping must
//     not shorten it;
//   - on a profiled subset, the critical-path blame fractions form an
//     exact partition (sum to 1).
//
// Degradation is disabled for every chaos scenario so the faulted run
// and its golden share a strategy; ResidentSet retries are exempt from
// the image/frame/residual comparisons because a rollback legitimately
// changes which pages are resident for the next attempt.
package experiments

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"strings"
	"time"

	"accentmig/internal/core"
	"accentmig/internal/faults"
	"accentmig/internal/obs"
	"accentmig/internal/prof"
	"accentmig/internal/workload"
	"accentmig/internal/xrand"
)

// chaosCase is one generated trial: a scenario (config, strategy,
// recovery options) plus the fault plan thrown at it.
type chaosCase struct {
	name   string
	cfg    Config
	golden Config
	strat  core.Strategy
	opts   ResilienceOptions
	plan   *faults.Plan
}

// ChaosViolation is one invariant failure, with the fault plan already
// shrunk to a minimal reproducer.
type ChaosViolation struct {
	Seed      uint64
	Scenario  string
	Invariant string
	Detail    string
	// Plan is the minimal fault plan that still reproduces the
	// violation; PlanJSON is its compact rendering for replay with
	// -faults.
	Plan     *faults.Plan
	PlanJSON string
}

// ChaosReport summarizes one campaign.
type ChaosReport struct {
	Kind   workload.Kind
	Trials int

	Migrated, Aborted int
	// Retried counts trials whose migration needed more than one attempt.
	Retried int
	// Profiled counts the trials re-run under the flight recorder for
	// the blame-partition invariant.
	Profiled int

	ResumedPages  int
	RepairedPages int
	CorruptPages  uint64

	Violations []*ChaosViolation
}

// chaosStrategies are the scenario strategies. PreCopied is excluded:
// it cannot roll back (the source is already gone when the handshake
// runs), so its faulted outcomes have no golden to compare against.
var chaosStrategies = []core.Strategy{core.PureCopy, core.PureIOU, core.ResidentSet}

// goldenOpts are the recovery options every golden (fault-free) trial
// runs with. A fault-free run never retries, so the faulted trial's
// randomized retry budget would only fragment the memoization cache.
var goldenOpts = ResilienceOptions{MaxRetries: 2, Degrade: false, AckTimeout: 15 * time.Minute}

// chaosScenario draws one scenario: strategy × transport window ×
// dedup/resume/integrity combination × retry budget.
func chaosScenario(rng *xrand.RNG, base Config) (Config, core.Strategy, ResilienceOptions, string) {
	strat := chaosStrategies[rng.Intn(len(chaosStrategies))]
	cfg := base
	win := []int{1, 8}[rng.Intn(2)]
	cfg.Machine.Net.Window = win
	dd := [...]string{"plain", "dedup", "resume", "full"}[rng.Intn(4)]
	switch dd {
	case "dedup":
		cfg.Machine.Dedup.Enabled = true
	case "resume":
		cfg.Machine.Dedup.Resume = true
	case "full":
		cfg.Machine.Dedup.Enabled = true
		cfg.Machine.Dedup.Resume = true
		cfg.Machine.Dedup.Integrity = true
	}
	opts := ResilienceOptions{
		MaxRetries: 1 + rng.Intn(3),
		Degrade:    false,
		AckTimeout: 15 * time.Minute,
	}
	name := fmt.Sprintf("%s/w%d/%s/r%d", strat, win, dd, opts.MaxRetries)
	return cfg, strat, opts, name
}

// chaosPlanFor draws one fault plan. Windows are scattered across the
// first minute of virtual time, wide enough (up to ~18 s) that some
// exceed the transport's dead-peer detection horizon and genuinely
// kill attempts, exercising rollback, retry, and the resume ledger.
// Corruption is only drawn when the scenario runs with integrity, so
// undetectable corruption never silently poisons the image invariant.
func chaosPlanFor(rng *xrand.RNG, seed uint64, integrity bool) *faults.Plan {
	p := &faults.Plan{Seed: seed}
	drops := []float64{0, 0, 0.02, 0.08, 0.15, 0.25}
	p.DropProb = drops[rng.Intn(len(drops))]
	for n := rng.Intn(3); n > 0; n-- {
		start := time.Duration(rng.Intn(45000)) * time.Millisecond
		width := time.Duration(1000+rng.Intn(14000)) * time.Millisecond
		p.Bursts = append(p.Bursts, faults.Burst{
			Window: faults.Window{
				Start: faults.Duration(start),
				End:   faults.Duration(start + width),
			},
			DropProb: 0.5 + 0.5*rng.Float64(),
		})
	}
	if rng.Intn(3) == 0 {
		start := time.Duration(rng.Intn(45000)) * time.Millisecond
		width := time.Duration(1000+rng.Intn(17000)) * time.Millisecond
		p.Partitions = append(p.Partitions, faults.Window{
			Start: faults.Duration(start),
			End:   faults.Duration(start + width),
		})
	}
	if integrity && rng.Intn(2) == 0 {
		p.CorruptProb = 0.002 + 0.02*rng.Float64()
	}
	return p
}

// chaosCheck evaluates the invariants for one finished trial against
// its golden. It returns the violated invariant's name and a detail
// string, or "" when every invariant holds.
func chaosCheck(o, g *ResilienceOutcome, plan *faults.Plan) (string, string) {
	if !o.Migrated && !o.Aborted {
		return "no-outcome", fmt.Sprintf("neither migrated nor cleanly aborted (migClass=%s)", o.MigClass)
	}
	if len(plan.Crashes) == 0 && o.ZeroFills > 0 {
		return "orphaned-iou", fmt.Sprintf("%d pages zero-filled under a crash-free plan", o.ZeroFills)
	}
	if o.Downtime < 0 || o.Downtime > o.TotalTime {
		return "downtime-bounds", fmt.Sprintf("downtime %v outside [0, %v]", o.Downtime, o.TotalTime)
	}
	if !o.Completed {
		// A partition longer than the dead-peer horizon is
		// indistinguishable from a backer crash, so an IOU-dependent
		// process can legitimately die of orphaned dependencies even
		// under a crash-free plan. Liveness demands a typed explanation
		// for the death, not unconditional success.
		if o.MigClass == "" && o.ExecClass == "" {
			return "not-completed", "process never completed and no error class explains why"
		}
		return "", ""
	}
	if !o.Migrated {
		return "", ""
	}
	if !o.ImageOnDst {
		return "image-missing", "migrated but the process image is not on the destination"
	}
	// A ResidentSet retry re-excises whatever the rollback left
	// resident — legitimately more than the first attempt shipped — so
	// the strict golden comparisons only apply to first-try ResidentSet.
	if o.Strategy != core.ResidentSet || o.Attempts <= 1 {
		if o.ImageHash != g.ImageHash {
			return "image-divergence", fmt.Sprintf("image %#x, golden %#x (attempts=%d resumed=%d repaired=%d)",
				o.ImageHash, g.ImageHash, o.Attempts, o.ResumedPages, o.RepairedPages)
		}
		if o.SrcFrames != g.SrcFrames || o.DstFrames != g.DstFrames {
			return "frame-leak", fmt.Sprintf("frames src=%d dst=%d, golden src=%d dst=%d (attempts=%d)",
				o.SrcFrames, o.DstFrames, g.SrcFrames, g.DstFrames, o.Attempts)
		}
		if o.Residual != g.Residual {
			return "residual-mismatch", fmt.Sprintf("source owes %d pages, golden owes %d", o.Residual, g.Residual)
		}
	}
	if o.Downtime < g.Downtime {
		return "downtime-understated", fmt.Sprintf("downtime %v below fault-free %v (attempts=%d)",
			o.Downtime, g.Downtime, o.Attempts)
	}
	return "", ""
}

// planElems counts a plan's removable elements for the shrinker.
func planElems(p *faults.Plan) int {
	n := len(p.Bursts) + len(p.Partitions) + len(p.CorruptBursts) + len(p.Crashes)
	if p.DropProb > 0 {
		n++
	}
	if p.CorruptProb > 0 {
		n++
	}
	return n
}

// planDrop returns a copy of the plan with removable element i deleted.
// Element order: base drop prob, bursts, partitions, corrupt prob,
// corrupt bursts, crashes.
func planDrop(p *faults.Plan, i int) *faults.Plan {
	c := *p
	c.Bursts = append([]faults.Burst(nil), p.Bursts...)
	c.Partitions = append([]faults.Window(nil), p.Partitions...)
	c.CorruptBursts = append([]faults.Burst(nil), p.CorruptBursts...)
	c.Crashes = append([]faults.Crash(nil), p.Crashes...)
	if p.DropProb > 0 {
		if i == 0 {
			c.DropProb = 0
			return &c
		}
		i--
	}
	if i < len(c.Bursts) {
		c.Bursts = append(c.Bursts[:i], c.Bursts[i+1:]...)
		return &c
	}
	i -= len(c.Bursts)
	if i < len(c.Partitions) {
		c.Partitions = append(c.Partitions[:i], c.Partitions[i+1:]...)
		return &c
	}
	i -= len(c.Partitions)
	if p.CorruptProb > 0 {
		if i == 0 {
			c.CorruptProb = 0
			return &c
		}
		i--
	}
	if i < len(c.CorruptBursts) {
		c.CorruptBursts = append(c.CorruptBursts[:i], c.CorruptBursts[i+1:]...)
		return &c
	}
	i -= len(c.CorruptBursts)
	c.Crashes = append(c.Crashes[:i], c.Crashes[i+1:]...)
	return &c
}

// shrinkPlan greedily minimizes a failing plan: repeatedly drop any
// single element whose removal still reproduces the same invariant
// violation, until no element can go (1-minimality). recheck runs the
// trial for a candidate plan and returns the violated invariant name.
func shrinkPlan(plan *faults.Plan, invariant string, recheck func(*faults.Plan) string) *faults.Plan {
	cur := plan
	for changed := true; changed; {
		changed = false
		for i := 0; i < planElems(cur); i++ {
			cand := planDrop(cur, i)
			if recheck(cand) == invariant {
				cur, changed = cand, true
				break
			}
		}
	}
	return cur
}

// chaosViolation packages a confirmed violation, shrinking its plan to
// a minimal reproducer first.
func chaosViolation(c chaosCase, invariant, detail string, recheck func(*faults.Plan) string) *ChaosViolation {
	minimal := shrinkPlan(c.plan, invariant, recheck)
	js, _ := json.Marshal(minimal)
	return &ChaosViolation{
		Seed:      c.plan.Seed,
		Scenario:  c.name,
		Invariant: invariant,
		Detail:    detail,
		Plan:      minimal,
		PlanJSON:  string(js),
	}
}

// Chaos runs a campaign of trials randomized fault plans × scenarios,
// all derived from seed, on the engine's worker pool. Golden runs are
// memoized across trials (there are only a few dozen distinct
// scenarios), so the campaign cost is dominated by the faulted trials
// themselves. Every 16th trial is additionally re-run under the flight
// recorder to check the blame-partition invariant.
func (e *Engine) Chaos(cfg Config, trials int, seed uint64) (*ChaosReport, error) {
	// Inherited plans or recovery options would break the campaign's
	// seed-determinism, exactly as in the resilience sweep.
	cfg.Faults = nil
	cfg.Recovery = nil
	cfg.Sink = nil

	h := fnv.New64a()
	h.Write([]byte("chaos"))
	rng := xrand.New(seed ^ h.Sum64())

	cases := make([]chaosCase, trials)
	for i := range cases {
		trng := rng.Fork()
		c := chaosCase{}
		c.cfg, c.strat, c.opts, c.name = chaosScenario(trng, cfg)
		c.golden = c.cfg
		c.plan = chaosPlanFor(trng, seed+uint64(i), c.cfg.Machine.Dedup.Integrity)
		c.cfg.Faults = c.plan
		cases[i] = c
	}

	type result struct {
		out       *ResilienceOutcome
		gold      *ResilienceOutcome
		err       error
		invariant string
		detail    string
		profiled  bool
	}
	results := make([]result, trials)
	e.fanOut(trials, func(i int) {
		c := cases[i]
		r := &results[i]
		r.gold, r.err = e.ResilienceTrial(c.golden, resilienceKind, c.strat, goldenOpts)
		if r.err != nil {
			return
		}
		r.out, r.err = e.ResilienceTrial(c.cfg, resilienceKind, c.strat, c.opts)
		if r.err != nil {
			r.invariant, r.detail = "trial-error", classifyErr(r.err)
			r.err = nil
			return
		}
		r.invariant, r.detail = chaosCheck(r.out, r.gold, c.plan)
		if r.invariant != "" || i%16 != 0 || !r.out.Migrated || !r.out.Completed {
			return
		}
		// Blame-partition invariant on the profiled subset: re-run the
		// same trial with a flight recorder (traced trials bypass the
		// memoization cache by design) and rebuild the critical path.
		sink := obs.NewMemorySink()
		pcfg := c.cfg
		pcfg.Sink = sink
		if _, perr := RunResilienceTrial(pcfg, resilienceKind, c.strat, c.opts); perr != nil {
			return
		}
		r.profiled = true
		pf, perr := prof.Build(sink.Events(), prof.Options{})
		if perr != nil {
			r.invariant, r.detail = "profile-error", perr.Error()
			return
		}
		sum := 0.0
		for _, cl := range prof.Classes() {
			sum += pf.Blame.Fraction(cl)
		}
		if math.Abs(sum-1) > 1e-6 {
			r.invariant, r.detail = "blame-sum", fmt.Sprintf("blame fractions sum to %.9f", sum)
		}
	})

	rep := &ChaosReport{Kind: resilienceKind, Trials: trials}
	for i := range results {
		r := &results[i]
		if r.err != nil {
			return nil, r.err
		}
		if r.out != nil {
			if r.out.Migrated {
				rep.Migrated++
			}
			if r.out.Aborted {
				rep.Aborted++
			}
			if r.out.Attempts > 1 {
				rep.Retried++
			}
			rep.ResumedPages += r.out.ResumedPages
			rep.RepairedPages += r.out.RepairedPages
			rep.CorruptPages += r.out.CorruptPages
		}
		if r.profiled {
			rep.Profiled++
		}
		if r.invariant == "" {
			continue
		}
		c := cases[i]
		recheck := func(p *faults.Plan) string {
			cc := c.cfg
			cc.Faults = p
			out, err := e.ResilienceTrial(cc, resilienceKind, c.strat, c.opts)
			if err != nil {
				return "trial-error"
			}
			inv, _ := chaosCheck(out, r.gold, p)
			return inv
		}
		rep.Violations = append(rep.Violations, chaosViolation(c, r.invariant, r.detail, recheck))
	}
	return rep, nil
}

// Chaos runs a campaign on the default engine.
func Chaos(cfg Config, trials int, seed uint64) (*ChaosReport, error) {
	return Default.Chaos(cfg, trials, seed)
}

// FormatChaos renders a campaign report.
func FormatChaos(r *ChaosReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Chaos campaign: %d randomized fault trials (%s)\n\n", r.Trials, r.Kind)
	fmt.Fprintf(&b, "  migrated %d, aborted %d, retried %d, profiled %d\n",
		r.Migrated, r.Aborted, r.Retried, r.Profiled)
	fmt.Fprintf(&b, "  resumed %d pages, repaired %d corrupt pages (%d corrupted in flight)\n",
		r.ResumedPages, r.RepairedPages, r.CorruptPages)
	if len(r.Violations) == 0 {
		fmt.Fprintf(&b, "  invariants: all hold\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  INVARIANT VIOLATIONS: %d\n", len(r.Violations))
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "\n  seed %d  %s  %s\n    %s\n    minimal plan: %s\n",
			v.Seed, v.Scenario, v.Invariant, v.Detail, v.PlanJSON)
	}
	return b.String()
}
