package experiments

import (
	"fmt"
	"strings"
	"time"

	"accentmig/internal/core"
	"accentmig/internal/imag"
	"accentmig/internal/sim"
	"accentmig/internal/vm"
	"accentmig/internal/workload"
)

// Summary aggregates the §4.5 headline numbers from a grid.
type Summary struct {
	// AvgByteSavingsPct: IOU (no prefetch) bytes vs pure-copy, averaged
	// across workloads. Paper: 58.2%.
	AvgByteSavingsPct float64
	// AvgMsgTimeSavingsPct: message-handling time savings. Paper: 47.8%.
	AvgMsgTimeSavingsPct float64
	// RemoteFault and DiskFault are the measured single-fault costs;
	// FaultRatio is their quotient. Paper: 115 ms / 40.8 ms ≈ 2.8.
	RemoteFault time.Duration
	DiskFault   time.Duration
	FaultRatio  float64
	// PeakRateReductionPct: reduction in peak sustained transmission
	// rate, IOU vs copy, for Lisp-Del. Paper: up to 66%.
	PeakRateReductionPct float64

	// Remote fault-resolution latency quantiles across the Lisp-Del
	// pure-IOU trial (the fault-heaviest cell of the grid), from the
	// recorder's log-bucketed histogram.
	FaultP50, FaultP95, FaultP99 time.Duration

	// Process downtime for Lisp-Del under each strategy: excise-freeze
	// to the first post-insert instruction. The lazy strategies' whole
	// case is that this number barely moves while transfer time
	// collapses.
	DownIOU, DownRS, DownCopy time.Duration
}

// Summarize computes the summary from a full grid (it must include
// Lisp-Del for the peak-rate figure).
func Summarize(cfg Config, g *Grid, kinds []workload.Kind) (*Summary, error) {
	s := &Summary{}
	var byteSum, msgSum float64
	n := 0
	for _, k := range kinds {
		cp := g.Cell(k, core.PureCopy, 0)
		iou := g.Cell(k, core.PureIOU, 0)
		if cp == nil || iou == nil {
			continue
		}
		byteSum += 100 * (1 - float64(iou.BytesTotal)/float64(cp.BytesTotal))
		msgSum += 100 * (1 - iou.MsgTime.Seconds()/cp.MsgTime.Seconds())
		n++
	}
	if n > 0 {
		s.AvgByteSavingsPct = byteSum / float64(n)
		s.AvgMsgTimeSavingsPct = msgSum / float64(n)
	}

	var err error
	s.RemoteFault, s.DiskFault, err = MeasureFaultCosts(cfg)
	if err != nil {
		return nil, err
	}
	s.FaultRatio = s.RemoteFault.Seconds() / s.DiskFault.Seconds()

	if cp, iou := g.Cell(workload.LispDel, core.PureCopy, 0), g.Cell(workload.LispDel, core.PureIOU, 0); cp != nil && iou != nil {
		s.PeakRateReductionPct = 100 * (1 - float64(iou.PeakRate)/float64(cp.PeakRate))
		s.FaultP50, s.FaultP95, s.FaultP99 = iou.FaultP50, iou.FaultP95, iou.FaultP99
		s.DownIOU, s.DownCopy = iou.Downtime, cp.Downtime
	}
	if rs := g.Cell(workload.LispDel, core.ResidentSet, 0); rs != nil {
		s.DownRS = rs.Downtime
	}
	return s, nil
}

// MeasureFaultCosts measures one remote imaginary fault and one local
// disk fault on a fresh testbed (the §4.3.3 microbenchmark: 115 ms vs
// 40.8 ms).
func MeasureFaultCosts(cfg Config) (remote, local time.Duration, err error) {
	tb := NewTestbed(cfg)
	// Local disk fault on the source machine.
	as := vm.MustNewAddressSpace(vm.Config{PageSize: tb.Src.PageSize()})
	reg, err := as.Validate(0, 8*uint64(tb.Src.PageSize()), "probe")
	if err != nil {
		return 0, 0, err
	}
	pg0 := reg.Seg.MaterializeZero(0)
	pg0.State.OnDisk = true

	// Remote fault: a page owed by the destination's NetMsgServer cache.
	segID := imag.NextSegID()
	sseg := tb.Dst.Net.Store().AddSegment(segID, 8*uint64(tb.Src.PageSize()), tb.Src.PageSize())
	sseg.Put(0, make([]byte, tb.Src.PageSize()))
	iseg := vm.NewImaginarySegment("probe-owed", 8*uint64(tb.Src.PageSize()), tb.Src.PageSize(), uint64(tb.Dst.Net.BackingPort()))
	iseg.ID = segID
	if _, err := as.MapSegment(1<<20, 8*uint64(tb.Src.PageSize()), iseg, 0, "probe-owed"); err != nil {
		return 0, 0, err
	}
	tb.Src.Net.AddRoute(tb.Dst.Net.BackingPort(), "dst")

	var faultErr error
	tb.K.Go("probe", func(p *sim.Proc) {
		start := p.Now()
		if e := tb.Src.Pager.Touch(p, as, 0, false); e != nil {
			faultErr = e
			return
		}
		local = p.Now() - start
		start = p.Now()
		if e := tb.Src.Pager.Touch(p, as, 1<<20, false); e != nil {
			faultErr = e
			return
		}
		remote = p.Now() - start
	})
	tb.K.Run()
	return remote, local, faultErr
}

// FormatSummary renders the §4.5 aggregates with the paper's values.
func FormatSummary(s *Summary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Summary (§4.5 headline results)\n")
	fmt.Fprintf(&b, "  avg byte savings, IOU vs copy:      %5.1f%%  (paper: 58.2%%)\n", s.AvgByteSavingsPct)
	fmt.Fprintf(&b, "  avg msg-time savings, IOU vs copy:  %5.1f%%  (paper: 47.8%%)\n", s.AvgMsgTimeSavingsPct)
	fmt.Fprintf(&b, "  remote imaginary fault:             %6.1fms (paper: 115ms)\n", s.RemoteFault.Seconds()*1000)
	fmt.Fprintf(&b, "  local disk fault:                   %6.1fms (paper: 40.8ms)\n", s.DiskFault.Seconds()*1000)
	fmt.Fprintf(&b, "  remote/local fault ratio:           %6.2f  (paper: 2.8)\n", s.FaultRatio)
	fmt.Fprintf(&b, "  peak-rate reduction (Lisp-Del):     %5.1f%%  (paper: up to 66%%)\n", s.PeakRateReductionPct)
	fmt.Fprintf(&b, "  remote fault latency p50/p95/p99:   %.1f / %.1f / %.1f ms (Lisp-Del IOU)\n",
		s.FaultP50.Seconds()*1000, s.FaultP95.Seconds()*1000, s.FaultP99.Seconds()*1000)
	fmt.Fprintf(&b, "  downtime IOU/RS/copy (Lisp-Del):    %.2f / %.2f / %.2f s\n",
		s.DownIOU.Seconds(), s.DownRS.Seconds(), s.DownCopy.Seconds())
	return b.String()
}
