package experiments

import (
	"reflect"
	"testing"
	"time"

	"accentmig/internal/core"
	"accentmig/internal/faults"
	"accentmig/internal/workload"
)

// TestWindowOneIsStopAndWait pins the tentpole's compatibility
// contract: an explicit Window=1 must be indistinguishable from the
// default config — same transfer times, same wire bytes, same fault
// profile — because W<=1 takes the original stop-and-wait code path.
func TestWindowOneIsStopAndWait(t *testing.T) {
	for _, kind := range []workload.Kind{workload.Minprog, workload.LispDel} {
		for _, strat := range []core.Strategy{core.PureCopy, core.ResidentSet, core.PureIOU} {
			def, err := RunTrial(Config{}, kind, strat, 3)
			if err != nil {
				t.Fatalf("default trial %v/%v: %v", kind, strat, err)
			}
			cfg := Config{}
			cfg.Machine.Net.Window = 1
			w1, err := RunTrial(cfg, kind, strat, 3)
			if err != nil {
				t.Fatalf("W=1 trial %v/%v: %v", kind, strat, err)
			}
			if !reflect.DeepEqual(def, w1) {
				t.Errorf("%v/%v: W=1 trial differs from default stop-and-wait trial", kind, strat)
			}
		}
	}
}

// TestWindowedTransferSpeedup pins the headline acceptance number: a
// W=16 send window must cut the pure-copy RIMAS transfer of a
// Lisp-sized migration to well under half the stop-and-wait time.
func TestWindowedTransferSpeedup(t *testing.T) {
	for _, kind := range []workload.Kind{workload.Minprog, workload.LispDel} {
		base, err := RunTrial(Config{}, kind, core.PureCopy, 0)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{}
		cfg.Machine.Net.Window = 16
		win, err := RunTrial(cfg, kind, core.PureCopy, 0)
		if err != nil {
			t.Fatal(err)
		}
		if win.Report.RIMASTransfer > base.Report.RIMASTransfer*6/10 {
			t.Errorf("%v: W=16 transfer %v, want <= 60%% of stop-and-wait %v",
				kind, win.Report.RIMASTransfer, base.Report.RIMASTransfer)
		}
	}
}

// TestWindowedPartitionAborts drives a migration over a dead link with
// the pipelined transport enabled: a partition in the middle of a send
// window must still resolve into a clean abort with rollback to the
// source, exactly like the stop-and-wait recovery path.
func TestWindowedPartitionAborts(t *testing.T) {
	cfg := Config{}
	cfg.Machine.Net.Window = 16
	cfg.Faults = &faults.Plan{Seed: 1, Partitions: []faults.Window{
		{Start: 0, End: faults.Duration(60 * time.Second)},
	}}
	o, err := RunResilienceTrial(cfg, workload.Minprog, core.PureIOU, ResilienceOptions{
		MaxRetries: 1, Degrade: true, AckTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.Migrated || !o.Aborted || !o.Completed {
		t.Errorf("partition under W=16: migrated=%v aborted=%v completed=%v, want abort + local completion",
			o.Migrated, o.Aborted, o.Completed)
	}
}

// TestStreamingCutsFaultStalls pins the windowed IOU acceptance
// criterion: with K=4 outstanding fetches the mean remote fault stall
// of a pure-IOU Lisp migration must drop well below the serial
// baseline, and the split-reply machinery must actually be exercised
// (streamed pages arrive, some faults park on in-flight pages).
func TestStreamingCutsFaultStalls(t *testing.T) {
	base := Config{}
	base.Machine.Net.Window = 16
	b, err := RunTrial(base, workload.LispDel, core.PureIOU, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Machine.Pager.Outstanding = 4
	s, err := RunTrial(cfg, workload.LispDel, core.PureIOU, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.RemoteFaultMean > b.RemoteFaultMean*3/4 {
		t.Errorf("K=4 fault mean %v, want <= 75%% of K=1 mean %v", s.RemoteFaultMean, b.RemoteFaultMean)
	}
	if s.DestPager.StreamedPages == 0 {
		t.Error("K=4 trial delivered no streamed prefetch replies")
	}
	if s.DestPager.StreamWaits == 0 {
		t.Error("K=4 trial parked no faults on in-flight streamed pages")
	}
	if s.DestPager.PrefetchHits < b.DestPager.PrefetchHits {
		t.Errorf("K=4 prefetch hits %d < K=1 hits %d: streaming lost prefetch coverage",
			s.DestPager.PrefetchHits, b.DestPager.PrefetchHits)
	}
}
