package experiments

import (
	"fmt"
	"strings"
	"time"

	"accentmig/internal/core"
	"accentmig/internal/machine"
	"accentmig/internal/metrics"
	"accentmig/internal/sim"
	"accentmig/internal/trace"
	"accentmig/internal/vm"
	"accentmig/internal/workload"
)

// BystanderRow measures how much a migration disturbs an unrelated
// process on the source machine.
type BystanderRow struct {
	Strategy core.Strategy
	// Baseline is the bystander's runtime with no migration at all.
	Baseline time.Duration
	// WithMigration is its runtime while the migration runs alongside.
	WithMigration time.Duration
	// SlowdownPct is the interference cost.
	SlowdownPct float64
}

// BystanderImpact quantifies §4.4.2/§4.4.3's point that "each second of
// execution time spent by the NetMsgServer ... is a second stolen from
// all processes in both systems": a compute-bound bystander shares the
// source CPU while another process migrates away under each strategy.
// Pure-copy's bulk transfer burst steals far more of the bystander's
// time than the IOU trickle does.
func BystanderImpact(cfg Config) ([]BystanderRow, error) {
	const bystanderBursts = 200 // ≈20 s of compute

	baseline, err := bystanderRun(cfg, nil)
	if err != nil {
		return nil, err
	}
	var rows []BystanderRow
	for _, strat := range []core.Strategy{core.PureIOU, core.ResidentSet, core.PureCopy} {
		strat := strat
		with, err := bystanderRun(cfg, &strat)
		if err != nil {
			return nil, err
		}
		rows = append(rows, BystanderRow{
			Strategy:      strat,
			Baseline:      baseline,
			WithMigration: with,
			SlowdownPct:   100 * (with.Seconds() - baseline.Seconds()) / baseline.Seconds(),
		})
	}
	_ = bystanderBursts
	return rows, nil
}

// bystanderRun times the bystander, optionally with a 512-page process
// migrating off the same machine under the given strategy.
func bystanderRun(cfg Config, strat *core.Strategy) (time.Duration, error) {
	tb := NewTestbed(cfg)

	by, err := tb.Src.NewProcess("bystander", 0)
	if err != nil {
		return 0, err
	}
	var ops []trace.Op
	for i := 0; i < 200; i++ {
		ops = append(ops, trace.Compute{D: 100 * time.Millisecond})
	}
	by.Program = &trace.Program{Ops: ops}

	if strat != nil {
		mig, err := tb.Src.NewProcess("migrant", 1)
		if err != nil {
			return 0, err
		}
		reg, err := mig.AS.Validate(0, 512*512, "data")
		if err != nil {
			return 0, err
		}
		for i := uint64(0); i < 512; i++ {
			pg := reg.Seg.Materialize(i, make([]byte, 512))
			pg.State.OnDisk = true
		}
		var res []vm.Addr
		for i := 0; i < 128; i++ {
			res = append(res, vm.Addr(i*512))
		}
		if err := tb.Src.MakeResident(mig, res); err != nil {
			return 0, err
		}
		migOps := []trace.Op{trace.MigratePoint{}}
		migOps = append(migOps, trace.SeqScan{Bytes: 128 * 512, PerTouch: 10 * time.Millisecond})
		mig.Program = &trace.Program{Ops: migOps}
		tb.Src.Start(mig)
		tb.K.Go("migrate-driver", func(p *sim.Proc) {
			if _, err := tb.SrcMgr.MigrateTo(p, "migrant", tb.DstMgr.Port.ID, core.Options{
				Strategy: *strat, WaitMigratePoint: true,
			}); err != nil {
				panic(fmt.Sprintf("bystander trial migration failed: %v", err))
			}
		})
	}

	tb.Src.Start(by)
	var done time.Duration
	tb.K.Go("bystander-waiter", func(p *sim.Proc) {
		by.WaitDone(p)
		done = p.Now()
	})
	tb.K.RunUntil(30 * time.Minute)
	if done == 0 {
		return 0, fmt.Errorf("experiments: bystander never finished")
	}
	return done, nil
}

// FormatBystander renders the interference comparison.
func FormatBystander(rows []BystanderRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Bystander interference: source-machine compute job during migration\n")
	if len(rows) > 0 {
		fmt.Fprintf(&b, "baseline (no migration): %.1fs\n", rows[0].Baseline.Seconds())
	}
	fmt.Fprintf(&b, "%-8s %12s %10s\n", "", "w/migration", "slowdown")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %11.1fs %+9.1f%%\n", r.Strategy, r.WithMigration.Seconds(), r.SlowdownPct)
	}
	return b.String()
}

// ResidualPoint samples the source's owed pages at a virtual time.
type ResidualPoint struct {
	T     time.Duration
	Pages int
}

// ResidualSeries traces the residual dependency of a lazily migrated
// Lisp-Del over its remote lifetime: how many pages the old host still
// owes at each second, with and without prefetch. The curve's long tail
// is the §4.4.3 cost-distribution story seen from the source's side.
func ResidualSeries(cfg Config, kind workload.Kind, prefetch int, step time.Duration) ([]ResidualPoint, error) {
	tb := NewTestbed(cfg)
	built, err := workload.Build(tb.Src, kind)
	if err != nil {
		return nil, err
	}
	tb.Src.Start(built.Proc)
	done := false
	tb.K.Go("driver", func(p *sim.Proc) {
		if _, err := tb.SrcMgr.MigrateTo(p, kind.String(), tb.DstMgr.Port.ID, core.Options{
			Strategy: core.PureIOU, Prefetch: prefetch, WaitMigratePoint: true,
		}); err != nil {
			done = true
			return
		}
		npr, _ := tb.Dst.Process(kind.String())
		npr.WaitDone(p)
		done = true
	})
	var series []ResidualPoint
	for t := step; !done && t < 2*time.Hour; t += step {
		tb.K.RunUntil(t)
		series = append(series, ResidualPoint{T: t, Pages: tb.Src.Net.Store().TotalRemaining()})
	}
	tb.K.Run()
	series = append(series, ResidualPoint{T: tb.K.Now(), Pages: tb.Src.Net.Store().TotalRemaining()})
	return series, nil
}

// FormatResidual renders the series compactly (only points where the
// count changed).
func FormatResidual(kind workload.Kind, series []ResidualPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Residual dependency over time: pages still owed by the source (%s, IOU)\n", kind)
	last := -1
	for _, pt := range series {
		if pt.Pages == last {
			continue
		}
		last = pt.Pages
		fmt.Fprintf(&b, "  t=%6.0fs owed=%5d\n", pt.T.Seconds(), pt.Pages)
	}
	return b.String()
}

// HopPenaltyRow reports mean remote-fault latency by backer distance.
type HopPenaltyRow struct {
	Hops      int
	FaultMean time.Duration
}

// HopPenalty measures how fault latency grows when a process migrates
// again and its memory stays with the original backer: every fault then
// relays through an extra NetMsgServer. This is the quantified case for
// the Balancer's dispersal-aware candidate scoring.
func HopPenalty(cfg Config) ([]HopPenaltyRow, error) {
	k := sim.New()
	var ms []*machine.Machine
	var mgrs []*core.Manager
	for i := 0; i < 3; i++ {
		m := machine.New(k, fmt.Sprintf("m%d", i), cfg.Machine)
		ms = append(ms, m)
		mgrs = append(mgrs, core.NewManager(m, cfg.tuning()))
	}
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			machine.Connect(ms[i], ms[j], cfg.Link)
		}
	}
	recs := make([]*metrics.Recorder, 3)
	for i := range ms {
		recs[i] = metrics.NewRecorder(time.Second)
		ms[i].SetRecorder(recs[i])
		for j := range mgrs {
			if i != j {
				ms[i].Net.AddRoute(mgrs[j].Port.ID, ms[j].Name)
			}
		}
	}

	pr, err := ms[0].NewProcess("hopper", 1)
	if err != nil {
		return nil, err
	}
	reg, err := pr.AS.Validate(0, 64*512, "data")
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < 64; i++ {
		pg := reg.Seg.Materialize(i, make([]byte, 512))
		pg.State.OnDisk = true
	}
	var ops []trace.Op
	ops = append(ops, trace.MigratePoint{})
	for i := 0; i < 16; i++ { // measured at 1 hop
		ops = append(ops, trace.Touch{Addr: vm.Addr(i * 512)})
	}
	ops = append(ops, trace.MigratePoint{})
	for i := 16; i < 32; i++ { // measured at 2 hops
		ops = append(ops, trace.Touch{Addr: vm.Addr(i * 512)})
	}
	pr.Program = &trace.Program{Ops: ops}
	ms[0].Start(pr)

	var rows []HopPenaltyRow
	var runErr error
	k.Go("driver", func(p *sim.Proc) {
		if _, err := mgrs[0].MigrateTo(p, "hopper", mgrs[1].Port.ID, core.Options{
			Strategy: core.PureIOU, WaitMigratePoint: true,
		}); err != nil {
			runErr = err
			return
		}
		p1, _ := ms[1].Process("hopper")
		p1.AtMigrate.Wait(p) // 16 one-hop faults done
		rows = append(rows, HopPenaltyRow{Hops: 1, FaultMean: recs[1].Dist("latency.fault.imag").Mean()})
		if _, err := mgrs[1].MigrateTo(p, "hopper", mgrs[2].Port.ID, core.Options{
			Strategy: core.PureIOU, WaitMigratePoint: true,
		}); err != nil {
			runErr = err
			return
		}
		p2, _ := ms[2].Process("hopper")
		if err := p2.WaitDone(p); err != nil {
			runErr = err
			return
		}
		rows = append(rows, HopPenaltyRow{Hops: 2, FaultMean: recs[2].Dist("latency.fault.imag").Mean()})
	})
	k.Run()
	if runErr != nil {
		return nil, runErr
	}
	return rows, nil
}

// FormatHopPenalty renders the hop comparison.
func FormatHopPenalty(rows []HopPenaltyRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Backer distance: mean imaginary-fault latency by relay hops\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %d hop(s): %6.1f ms\n", r.Hops, r.FaultMean.Seconds()*1000)
	}
	if len(rows) == 2 && rows[0].FaultMean > 0 {
		fmt.Fprintf(&b, "  penalty: %.2fx — why the balancer avoids re-migrating dispersed processes\n",
			float64(rows[1].FaultMean)/float64(rows[0].FaultMean))
	}
	return b.String()
}
