package experiments

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"accentmig/internal/core"
	"accentmig/internal/faults"
	"accentmig/internal/pager"
	"accentmig/internal/sim"
	"accentmig/internal/workload"
)

// ResilienceOptions are the recovery knobs one resilience trial hands
// the source migration manager.
type ResilienceOptions struct {
	// MaxRetries is the source manager's retry budget after a
	// recoverable failure.
	MaxRetries int
	// Degrade steps the strategy down the reliability ladder on retry.
	Degrade bool
	// AckTimeout bounds each handshake phase; zero selects the
	// manager's default.
	AckTimeout time.Duration
}

// ResilienceOutcome is everything one fault-injected migration trial
// reports. Error outcomes are recorded as stable class strings, never
// raw error text — raw messages embed globally allocated segment and
// port IDs that differ run to run, and the resilience table must be
// byte-identical for a fixed seed.
type ResilienceOutcome struct {
	Kind     workload.Kind
	Strategy core.Strategy

	// Migrated reports that some attempt's handshake completed and the
	// process was inserted at the destination.
	Migrated bool
	// Aborted reports that the retry budget was exhausted and the
	// process was rolled back to the source intact.
	Aborted bool
	// Completed reports that the program ran to completion — remotely
	// after a successful migration, or locally after an abort.
	Completed bool

	// Attempts the migration took (0 if it never succeeded) and the
	// strategy of the successful attempt.
	Attempts      int
	FinalStrategy core.Strategy

	// MigClass classifies the migration error, ExecClass the
	// post-migration execution error ("" when none).
	MigClass  string
	ExecClass string

	// TotalTime is virtual-time start to program completion (or to the
	// final failure when the program never completed).
	TotalTime time.Duration

	// Downtime is the frozen interval of the final attempt: freeze to
	// the first instruction executed afterwards — at the destination on
	// success, back at the source after a rollback. Zero if the process
	// never ran again.
	Downtime time.Duration

	// BytesTotal is every wire byte the trial moved, across all
	// attempts — the honest cost a retry policy is judged by.
	BytesTotal uint64

	// Reliable-transport overhead, summed over both machines.
	Retransmits     uint64
	RetransmitBytes uint64
	BackoffTime     time.Duration
	DeadPeers       uint64
	// ZeroFills counts orphaned pages materialized as zeros.
	ZeroFills uint64

	// Resumable-retry and integrity accounting for the successful
	// attempt: pages the destination rebuilt from its delivery ledger
	// instead of re-receiving, the wire bytes that elision saved, and
	// corrupt installs repaired by hash re-fetch. All zero when the
	// ledger and per-page checksums are off.
	ResumedPages  int
	ResumedBytes  uint64
	RepairedPages int
	// CorruptPages counts payload pages the fault plan bit-flipped in
	// flight, summed over both machines' transports.
	CorruptPages uint64

	// Invariant evidence for the chaos campaign (chaos.go): the final
	// memory-image digest of the surviving process and where it lives,
	// the frames each machine's pool still holds, and the pages the
	// source store still owes when the trial ends.
	ImageHash  uint64
	ImageOnDst bool
	SrcFrames  uint64
	DstFrames  uint64
	Residual   int
}

// classifyErr maps an error chain onto a short stable class name for
// the resilience table.
func classifyErr(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, core.ErrMigrationAborted):
		return "aborted"
	case errors.Is(err, core.ErrPhaseTimeout):
		return "phase-timeout"
	case errors.Is(err, core.ErrPeerDead):
		return "peer-dead"
	case errors.Is(err, core.ErrMigrationFailed):
		return "insert-failed"
	case errors.Is(err, pager.ErrBackerLost):
		return "backer-lost"
	case errors.Is(err, pager.ErrSegmentDead):
		return "segment-dead"
	default:
		return "error"
	}
}

// resilienceDefaults hardens the machine config for fault injection: a
// crashed backer never answers and never nacks (the read request
// dead-letters silently at the dead peer), so the pager must run with a
// reply deadline or the faulting process wedges forever.
func resilienceDefaults(cfg Config) Config {
	if cfg.Machine.Pager.RetryTimeout == 0 {
		// Generous: under heavy drop rates a live backer's reply can
		// lag many backoff rounds, and a retry restarts the window.
		cfg.Machine.Pager.RetryTimeout = 10 * time.Second
	}
	if cfg.Machine.Pager.MaxRetries == 0 {
		cfg.Machine.Pager.MaxRetries = 5
	}
	return cfg
}

// RunResilienceTrial migrates representative k under the given
// strategy on a fault-injected testbed, drives the process to
// completion wherever it ends up (destination on success, source after
// an abort), and reports what happened. It terminates for any fault
// plan with drop probability < 1: every wait in the recovery path is
// deadlined.
func RunResilienceTrial(cfg Config, k workload.Kind, strat core.Strategy, ropts ResilienceOptions) (*ResilienceOutcome, error) {
	cfg = resilienceDefaults(cfg)
	tb := NewTestbed(cfg)
	built, err := workload.Build(tb.Src, k)
	if err != nil {
		return nil, err
	}
	tb.Src.Start(built.Proc)

	out := &ResilienceOutcome{Kind: k, Strategy: strat}
	tb.K.Go("resilience-driver", func(p *sim.Proc) {
		rep, migErr := tb.SrcMgr.MigrateTo(p, k.String(), tb.DstMgr.Port.ID, core.Options{
			Strategy:         strat,
			WaitMigratePoint: true,
			AckTimeout:       ropts.AckTimeout,
			MaxRetries:       ropts.MaxRetries,
			Degrade:          ropts.Degrade,
		})
		if migErr != nil {
			out.MigClass = classifyErr(migErr)
			out.Aborted = errors.Is(migErr, core.ErrMigrationAborted)
			// An aborted migration rolls the process back to the
			// source and resumes it there; run it to local completion.
			if pr, ok := tb.Src.Process(k.String()); ok {
				out.ExecClass = classifyErr(pr.WaitDone(p))
				out.Completed = out.ExecClass == ""
			}
			out.TotalTime = p.Now()
			return
		}
		out.Migrated = true
		out.Attempts = rep.Attempts
		out.FinalStrategy = rep.FinalStrategy
		out.ResumedPages = rep.Insert.ResumedPages
		out.ResumedBytes = uint64(rep.Insert.ResumedPages) * uint64(tb.Src.PageSize())
		out.RepairedPages = rep.Insert.RepairedPages
		// Crashes keyed to the "remote" phase fire once remote
		// execution has begun.
		tb.FirePhase(p, "remote")
		if pr, ok := tb.Dst.Process(k.String()); ok {
			out.ExecClass = classifyErr(pr.WaitDone(p))
			out.Completed = out.ExecClass == ""
		}
		out.TotalTime = p.Now()
	})
	tb.K.Run()

	srcStats, dstStats := tb.Src.Net.Stats(), tb.Dst.Net.Stats()
	out.Retransmits = srcStats.Retransmits + dstStats.Retransmits
	out.RetransmitBytes = srcStats.RetransmitBytes + dstStats.RetransmitBytes
	out.BackoffTime = srcStats.BackoffTime + dstStats.BackoffTime
	out.DeadPeers = srcStats.DeadPeers + dstStats.DeadPeers
	out.ZeroFills = tb.Src.Pager.Stats().ZeroFills + tb.Dst.Pager.Stats().ZeroFills
	out.CorruptPages = srcStats.CorruptPages + dstStats.CorruptPages
	out.BytesTotal = tb.Rec.BytesTotal()
	out.Downtime = tb.Rec.Downtime()
	out.SrcFrames = tb.Src.Pool.InUse()
	out.DstFrames = tb.Dst.Pool.InUse()
	out.Residual = tb.Src.Net.Store().TotalRemaining()
	if h, ok := tb.Dst.ImageHash(k.String()); ok {
		out.ImageHash, out.ImageOnDst = h, true
	} else if h, ok := tb.Src.ImageHash(k.String()); ok {
		out.ImageHash = h
	}
	return out, nil
}

// ResilienceRow is one line of the resilience table: a scenario name
// plus the outcomes of its per-seed trials.
type ResilienceRow struct {
	Scenario string
	Strategy core.Strategy
	DropProb float64
	Outcomes []*ResilienceOutcome
}

// Succeeded counts trials whose program completed.
func (r *ResilienceRow) Succeeded() int {
	n := 0
	for _, o := range r.Outcomes {
		if o.Completed {
			n++
		}
	}
	return n
}

// Migrated counts trials whose migration handshake succeeded.
func (r *ResilienceRow) Migrated() int {
	n := 0
	for _, o := range r.Outcomes {
		if o.Migrated {
			n++
		}
	}
	return n
}

// meanCompleted averages TotalTime over completed trials (0 if none).
func (r *ResilienceRow) meanCompleted() time.Duration {
	var sum time.Duration
	n := 0
	for _, o := range r.Outcomes {
		if o.Completed {
			sum += o.TotalTime
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / time.Duration(n)
}

// ResilienceTable is the -exp resilience result: the drop-rate sweep
// and the crash/partition scenarios.
type ResilienceTable struct {
	Kind  workload.Kind
	Sweep []*ResilienceRow
	// Scenarios are the targeted failure cases: backer crash during
	// remote execution under each orphan policy, and a full partition
	// forcing an abort with source-side rollback.
	Scenarios []*ResilienceRow
}

// resilienceDrops is the drop-probability axis of the sweep.
var resilienceDrops = []float64{0, 0.05, 0.15, 0.30}

// resilienceSeeds are the fault-plan seeds each cell is repeated with.
var resilienceSeeds = []uint64{1, 2, 3}

// resilienceKind is the representative the resilience experiment
// migrates: large enough that every strategy moves real memory and the
// IOU strategies leave residual dependencies worth attacking.
const resilienceKind = workload.LispDel

// Resilience sweeps drop rate × strategy (each cell repeated across
// fault seeds) and runs the crash-timing scenarios, all on the engine's
// worker pool with memoization.
func (e *Engine) Resilience(cfg Config) (*ResilienceTable, error) {
	// The ack deadline is a backstop: a genuinely dead peer surfaces in
	// seconds through the transport's dead-peer nack, while a pure-copy
	// transfer at 30% drop legitimately takes many virtual minutes of
	// backoff, so the deadline sits far above any viable transfer.
	ropts := ResilienceOptions{MaxRetries: 2, Degrade: true, AckTimeout: 15 * time.Minute}
	if cfg.Recovery != nil {
		ropts = *cfg.Recovery
	}
	// The sweep builds its own fault plans per cell; a plan or retry
	// policy inherited from the command line would skew the fault-free
	// baseline rows and break the fixed-seed determinism contract.
	cfg.Faults = nil
	cfg.Recovery = nil

	type cell struct {
		row   *ResilienceRow
		idx   int
		cfg   Config
		strat core.Strategy
		opts  ResilienceOptions
	}
	var cells []cell

	t := &ResilienceTable{Kind: resilienceKind}
	for _, strat := range core.Strategies() {
		for _, drop := range resilienceDrops {
			row := &ResilienceRow{
				Scenario: "drop-sweep",
				Strategy: strat,
				DropProb: drop,
				Outcomes: make([]*ResilienceOutcome, len(resilienceSeeds)),
			}
			t.Sweep = append(t.Sweep, row)
			for i, seed := range resilienceSeeds {
				c := cfg
				if drop > 0 {
					c.Faults = faults.FromDropRate(drop, seed)
				}
				cells = append(cells, cell{row: row, idx: i, cfg: c, strat: strat, opts: ropts})
			}
		}
	}

	// Backer-crash scenarios: the source machine's backing service dies
	// once remote execution begins, stranding the pure-IOU process's
	// residual dependencies. One row per orphaned-IOU policy.
	crashPlan := func(policy faults.CrashPolicy) *faults.Plan {
		return &faults.Plan{Seed: 1, Crashes: []faults.Crash{
			{Machine: "src", AtPhase: "remote", Policy: policy},
		}}
	}
	for _, sc := range []struct {
		name   string
		policy faults.CrashPolicy
		orphan pager.OrphanPolicy
	}{
		{"crash-src@remote/fail", faults.CrashFail, pager.OrphanFail},
		{"crash-src@remote/zerofill", faults.CrashZeroFill, pager.OrphanZeroFill},
		{"crash-src@remote/flush", faults.CrashFlush, pager.OrphanFail},
	} {
		c := cfg
		c.Faults = crashPlan(sc.policy)
		c.Machine.Pager.Orphan = sc.orphan
		row := &ResilienceRow{
			Scenario: sc.name,
			Strategy: core.PureIOU,
			Outcomes: make([]*ResilienceOutcome, 1),
		}
		t.Scenarios = append(t.Scenarios, row)
		cells = append(cells, cell{row: row, idx: 0, cfg: c, strat: core.PureIOU, opts: ropts})
	}

	// Partition scenario: the link is dead from the start, so every
	// attempt times out and the migration must abort cleanly — the
	// process rolls back and completes at the source.
	{
		c := cfg
		c.Faults = &faults.Plan{Seed: 1, Partitions: []faults.Window{
			{Start: 0, End: faults.Duration(60 * time.Second)},
		}}
		row := &ResilienceRow{
			Scenario: "partition@start",
			Strategy: core.PureIOU,
			Outcomes: make([]*ResilienceOutcome, 1),
		}
		t.Scenarios = append(t.Scenarios, row)
		cells = append(cells, cell{
			row: row, idx: 0, cfg: c, strat: core.PureIOU,
			opts: ResilienceOptions{MaxRetries: 1, Degrade: true, AckTimeout: 2 * time.Second},
		})
	}

	errs := make([]error, len(cells))
	e.fanOut(len(cells), func(i int) {
		c := cells[i]
		c.row.Outcomes[c.idx], errs[i] = e.ResilienceTrial(c.cfg, resilienceKind, c.strat, c.opts)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Resilience runs the resilience experiment on the default engine.
func Resilience(cfg Config) (*ResilienceTable, error) {
	return Default.Resilience(cfg)
}

// FormatResilience renders the resilience table. Completion-time
// inflation is relative to the same strategy's fault-free row.
func FormatResilience(t *ResilienceTable) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Resilience under injected faults (%s, %d seeds per cell)\n\n",
		t.Kind, len(resilienceSeeds))
	fmt.Fprintf(&b, "%-10s %6s %9s %9s %9s %8s %9s %9s %10s %12s %8s\n",
		"Strategy", "Drop", "Migrated", "Complete", "Attempts", "Inflate",
		"Downtime", "Retrans", "Backoff", "RetransKB", "Resumed")

	baseline := map[core.Strategy]time.Duration{}
	for _, r := range t.Sweep {
		if r.DropProb == 0 {
			baseline[r.Strategy] = r.meanCompleted()
		}
	}
	for _, r := range t.Sweep {
		var retrans, rbytes uint64
		var backoff, down time.Duration
		attempts, resumed := 0, 0
		for _, o := range r.Outcomes {
			retrans += o.Retransmits
			rbytes += o.RetransmitBytes
			backoff += o.BackoffTime
			attempts += o.Attempts
			down += o.Downtime
			resumed += o.ResumedPages
		}
		n := len(r.Outcomes)
		inflate := "-"
		if base := baseline[r.Strategy]; base > 0 && r.meanCompleted() > 0 {
			inflate = fmt.Sprintf("%.2fx", float64(r.meanCompleted())/float64(base))
		}
		fmt.Fprintf(&b, "%-10s %5.0f%% %6d/%-2d %6d/%-2d %9.1f %8s %8.1fs %9d %10s %12.1f %8d\n",
			r.Strategy, 100*r.DropProb, r.Migrated(), n, r.Succeeded(), n,
			float64(attempts)/float64(n), inflate,
			(down / time.Duration(n)).Seconds(),
			retrans, (backoff / time.Duration(n)).Round(time.Millisecond),
			float64(rbytes)/1024/float64(n), resumed)
	}

	fmt.Fprintf(&b, "\nFailure scenarios (%s, strategy %s)\n\n", t.Kind, core.PureIOU)
	fmt.Fprintf(&b, "%-26s %8s %8s %8s %9s %9s %9s %9s\n",
		"Scenario", "Migrated", "Complete", "Aborted", "Attempts", "MigErr", "ExecErr", "ZeroFill")
	for _, r := range t.Scenarios {
		o := r.Outcomes[0]
		yn := func(v bool) string {
			if v {
				return "yes"
			}
			return "no"
		}
		dash := func(s string) string {
			if s == "" {
				return "-"
			}
			return s
		}
		fmt.Fprintf(&b, "%-26s %8s %8s %8s %9d %9s %9s %9d\n",
			r.Scenario, yn(o.Migrated), yn(o.Completed), yn(o.Aborted),
			o.Attempts, dash(o.MigClass), dash(o.ExecClass), o.ZeroFills)
	}
	return b.String()
}
