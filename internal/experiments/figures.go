package experiments

import (
	"fmt"
	"strings"
	"time"

	"accentmig/internal/core"
	"accentmig/internal/metrics"
	"accentmig/internal/workload"
)

// FigureCell is one bar of the Figure 4-1/4-2/4-3/4-4 charts.
type FigureCell struct {
	Kind     workload.Kind
	Strategy core.Strategy
	Prefetch int
	Value    float64
}

// gridCells enumerates the paper's chart order for one workload:
// Copy, then IOU PF0..15, then RS PF0..15.
func gridCells(g *Grid, k workload.Kind, value func(*TrialResult) float64) []FigureCell {
	var cells []FigureCell
	add := func(s core.Strategy, pf int) {
		tr := g.Cell(k, s, pf)
		if tr == nil {
			return
		}
		cells = append(cells, FigureCell{Kind: k, Strategy: s, Prefetch: pf, Value: value(tr)})
	}
	add(core.PureCopy, 0)
	for _, pf := range core.PrefetchValues() {
		add(core.PureIOU, pf)
	}
	for _, pf := range core.PrefetchValues() {
		add(core.ResidentSet, pf)
	}
	return cells
}

// Figure41 extracts remote execution times (seconds) from the grid.
func Figure41(g *Grid, kinds []workload.Kind) map[workload.Kind][]FigureCell {
	out := make(map[workload.Kind][]FigureCell)
	for _, k := range kinds {
		out[k] = gridCells(g, k, func(tr *TrialResult) float64 { return tr.RemoteExec.Seconds() })
	}
	return out
}

// Figure42 computes end-to-end percent speedup over pure-copy: elapsed
// time for address-space transfer plus remote execution, compared per
// workload. Positive = faster than pure-copy.
func Figure42(g *Grid, kinds []workload.Kind) map[workload.Kind][]FigureCell {
	out := make(map[workload.Kind][]FigureCell)
	for _, k := range kinds {
		base := g.Cell(k, core.PureCopy, 0)
		if base == nil {
			continue
		}
		baseline := base.EndToEnd.Seconds()
		cells := gridCells(g, k, func(tr *TrialResult) float64 {
			return 100 * (baseline - tr.EndToEnd.Seconds()) / baseline
		})
		// Drop the pure-copy cell (always 0 against itself).
		out[k] = cells[1:]
	}
	return out
}

// Figure43 extracts total bytes exchanged between the machines.
func Figure43(g *Grid, kinds []workload.Kind) map[workload.Kind][]FigureCell {
	out := make(map[workload.Kind][]FigureCell)
	for _, k := range kinds {
		out[k] = gridCells(g, k, func(tr *TrialResult) float64 { return float64(tr.BytesTotal) })
	}
	return out
}

// Figure44 extracts message-handling time in seconds.
func Figure44(g *Grid, kinds []workload.Kind) map[workload.Kind][]FigureCell {
	out := make(map[workload.Kind][]FigureCell)
	for _, k := range kinds {
		out[k] = gridCells(g, k, func(tr *TrialResult) float64 { return tr.MsgTime.Seconds() })
	}
	return out
}

// FormatFigure renders one figure's cells as labelled rows.
func FormatFigure(title, unit string, cells map[workload.Kind][]FigureCell, kinds []workload.Kind) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s)\n", title, unit)
	for _, k := range kinds {
		fmt.Fprintf(&b, "%-10s", k)
		for _, c := range cells[k] {
			label := c.Strategy.String()
			if c.Strategy != core.PureCopy {
				label = fmt.Sprintf("%s/PF%d", c.Strategy, c.Prefetch)
			}
			fmt.Fprintf(&b, "  %s=%.2f", label, c.Value)
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

// Figure45Panel is one panel of Figure 4-5: the byte-rate time series
// for Lisp-Del under one strategy.
type Figure45Panel struct {
	Strategy core.Strategy
	Series   []metrics.RatePoint
	// ExecStart is when remote execution began (insertion complete).
	ExecStart time.Duration
	Total     time.Duration // migration start to last remote instruction
}

// Figure45 runs the three Lisp-Del trials (no prefetch) and returns
// their transfer-rate series, white (fault support) vs black (other).
// The cells run on the default engine, so a grid sweep that already
// simulated Lisp-Del serves them from cache.
func Figure45(cfg Config) ([]Figure45Panel, error) {
	var keys []GridKey
	for _, strat := range core.Strategies() {
		keys = append(keys, GridKey{workload.LispDel, strat, 0})
	}
	trs, err := Default.Trials(cfg, keys)
	if err != nil {
		return nil, err
	}
	var panels []Figure45Panel
	for i, strat := range core.Strategies() {
		tr := trs[i]
		panels = append(panels, Figure45Panel{
			Strategy:  strat,
			Series:    tr.Series,
			ExecStart: tr.Report.InsertDoneAt,
			Total:     tr.Report.InsertDoneAt + tr.RemoteExec,
		})
	}
	return panels, nil
}

// FormatFigure45 renders the panels as sparse rate tables.
func FormatFigure45(panels []Figure45Panel) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4-5: Byte Transfer Rates for Lisp-Del (bytes/sec per 1s bucket)\n")
	for _, p := range panels {
		fmt.Fprintf(&b, "-- %s (ends %.1fs)\n", p.Strategy, p.Total.Seconds())
		for _, pt := range p.Series {
			if pt.Bytes == 0 {
				continue
			}
			bar := strings.Repeat("#", int(pt.Bytes/1024))
			fault := strings.Repeat(".", int(pt.FaultBytes/1024))
			fmt.Fprintf(&b, "  t=%5.0fs %8d B (%7d fault) %s%s\n",
				pt.T.Seconds(), pt.Bytes, pt.FaultBytes, bar, fault)
		}
	}
	return b.String()
}

// FormatFigure45CSV renders the Figure 4-5 panels as CSV (strategy,
// bucket start in seconds, bytes, fault bytes) for external plotting.
func FormatFigure45CSV(panels []Figure45Panel) string {
	var b strings.Builder
	b.WriteString("strategy,t_seconds,bytes,fault_bytes\n")
	for _, p := range panels {
		for _, pt := range p.Series {
			fmt.Fprintf(&b, "%s,%g,%d,%d\n", p.Strategy, pt.T.Seconds(), pt.Bytes, pt.FaultBytes)
		}
	}
	return b.String()
}

// FormatFigureCSV renders figure cells as CSV (workload, strategy,
// prefetch, value) for external plotting.
func FormatFigureCSV(cells map[workload.Kind][]FigureCell, kinds []workload.Kind) string {
	var b strings.Builder
	b.WriteString("workload,strategy,prefetch,value\n")
	for _, k := range kinds {
		for _, c := range cells[k] {
			fmt.Fprintf(&b, "%s,%s,%d,%g\n", c.Kind, c.Strategy, c.Prefetch, c.Value)
		}
	}
	return b.String()
}
