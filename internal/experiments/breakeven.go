package experiments

import (
	"fmt"
	"strings"

	"accentmig/internal/core"
)

// BreakevenRow is one point of the touched-fraction sweep.
type BreakevenRow struct {
	TouchedPct int
	IOU        float64 // end-to-end seconds
	Copy       float64
	SpeedupPct float64 // positive: IOU faster
}

// BreakevenSweep varies the fraction of RealMem a synthetic process
// touches remotely and measures where copy-on-reference stops paying
// off end-to-end. §4.3.4 puts the breakeven "around one-quarter of the
// process RealMem"; the sweep makes that crossover measurable.
func BreakevenSweep(cfg Config, pcts []int) ([]BreakevenRow, error) {
	const pages = 512
	var rows []BreakevenRow
	for _, pct := range pcts {
		touched := pages * pct / 100
		iou, err := syntheticTrial(cfg, pages, touched, core.PureIOU, 0)
		if err != nil {
			return nil, err
		}
		cp, err := syntheticTrial(cfg, pages, touched, core.PureCopy, 0)
		if err != nil {
			return nil, err
		}
		rows = append(rows, BreakevenRow{
			TouchedPct: pct,
			IOU:        iou.EndToEnd.Seconds(),
			Copy:       cp.EndToEnd.Seconds(),
			SpeedupPct: 100 * (cp.EndToEnd.Seconds() - iou.EndToEnd.Seconds()) / cp.EndToEnd.Seconds(),
		})
	}
	return rows, nil
}

// Breakeven interpolates the touched fraction where the IOU speedup
// crosses zero. It returns -1 if the sweep never crosses.
func Breakeven(rows []BreakevenRow) float64 {
	for i := 1; i < len(rows); i++ {
		a, b := rows[i-1], rows[i]
		if a.SpeedupPct >= 0 && b.SpeedupPct < 0 {
			// Linear interpolation between the two sweep points.
			frac := a.SpeedupPct / (a.SpeedupPct - b.SpeedupPct)
			return float64(a.TouchedPct) + frac*float64(b.TouchedPct-a.TouchedPct)
		}
	}
	return -1
}

// FormatBreakeven renders the sweep.
func FormatBreakeven(rows []BreakevenRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Breakeven sweep: end-to-end IOU vs copy by %% of RealMem touched\n")
	fmt.Fprintf(&b, "%8s %10s %10s %10s\n", "touched", "IOU", "Copy", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%7d%% %9.2fs %9.2fs %+9.1f%%\n", r.TouchedPct, r.IOU, r.Copy, r.SpeedupPct)
	}
	if be := Breakeven(rows); be > 0 {
		fmt.Fprintf(&b, "crossover ≈ %.0f%% of RealMem (paper: ≈25%%)\n", be)
	}
	return b.String()
}
