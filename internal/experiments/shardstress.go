package experiments

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"time"

	"accentmig/internal/machine"
	"accentmig/internal/netlink"
	"accentmig/internal/sim"
	"accentmig/internal/trace"
	"accentmig/internal/xrand"
)

// Shard-stress scenario: a 16-64 machine cluster with a live process
// population — arrivals, CPU-bound programs, and concurrent migrations
// whose transfers and residual fetches contend for per-machine wires
// and backer service. It is the proving ground for the sharded kernel
// (sim.Cluster): the same scenario runs on one shared kernel
// (Shards <= 1, the sequential code path verbatim) or with one event
// lane per machine under conservative lookahead sync, and the results
// must be byte-identical.
//
// The identity rests on the tie-free lattice discipline (see
// netlink.Iface): every local duration in the scenario — compute
// bursts, IO waits, daemon ticks, CPU costs — is a whole number of
// microseconds, the wire moves exactly one byte per microsecond, and
// cross-machine deliveries land at latency plus a per-sender
// sub-microsecond skew. Receivers re-align to the microsecond lattice
// immediately after every receive (snapLattice), so no two events that
// touch the same machine ever share a virtual nanosecond, and the heap
// time-order alone fixes the schedule in both execution modes.
const (
	ssLattice = time.Microsecond

	// ssPage/ssFramePages: transfers ship the frozen image in 8-page
	// frames; every frame and control message carries a 64-byte header.
	ssPage       = 512
	ssFramePages = 8
	ssHdrBytes   = 64
	ssCtrlBytes  = 64

	ssExciseBase    = 2 * time.Millisecond
	ssExcisePerPage = 10 * time.Microsecond
	ssInsertBase    = 2 * time.Millisecond
	ssInsertPerPage = 10 * time.Microsecond
	ssServeFetchCPU = 200 * time.Microsecond
	ssFetchReply    = ssHdrBytes + ssPage

	// ssGrace keeps control daemons and backers serving after the
	// migration horizon so every in-flight transfer and residual fetch
	// drains; it is far beyond any plausible tail, and the invariant
	// Completed == Accepted - Cancelled (checked in tests) would expose
	// a wedge deterministically if it ever were not.
	ssGrace = 60 * time.Second
)

// ssLinkCfg is the interface configuration all scenario machines share:
// 1 MB/s puts one byte at exactly one lattice unit of wire time, and
// the 5 ms latency is the cluster lookahead.
var ssLinkCfg = netlink.Config{Latency: 5 * time.Millisecond, BytesPerSecond: 1_000_000}

// ShardStressOptions parameterizes the scenario. The zero value selects
// a 16-machine cluster on the sequential kernel.
type ShardStressOptions struct {
	// Machines is the cluster size (default 16).
	Machines int
	// Shards selects the execution mode: <= 1 runs every machine on one
	// shared sequential kernel; >= 2 gives each machine its own event
	// lane and runs them on Shards workers. The result is identical
	// either way; only wall-clock differs.
	Shards int
	// Span is the arrival/migration horizon: processes arrive over the
	// first three quarters of it and migration daemons stop offering at
	// its end (default 20s).
	Span time.Duration
	// ArrivalEvery is the mean process inter-arrival time per machine
	// (default 400ms).
	ArrivalEvery time.Duration
	// ProcOps is the number of compute/IO ops per process program
	// (default 120).
	ProcOps int
	// InflightCap bounds concurrent inbound migrations per machine;
	// offers beyond it are rejected (default 2).
	InflightCap int
	// Fetches is the number of residual page fetches a migrated process
	// performs against its source's backer before resuming (default 8).
	Fetches int
	// Seed perturbs every per-machine decision stream (default 1987).
	Seed uint64
}

func (o ShardStressOptions) withDefaults() ShardStressOptions {
	if o.Machines == 0 {
		o.Machines = 16
	}
	if o.Span == 0 {
		o.Span = 20 * time.Second
	}
	if o.ArrivalEvery == 0 {
		o.ArrivalEvery = 400 * time.Millisecond
	}
	if o.ProcOps == 0 {
		o.ProcOps = 120
	}
	if o.InflightCap == 0 {
		o.InflightCap = 2
	}
	if o.Fetches == 0 {
		o.Fetches = 8
	}
	if o.Seed == 0 {
		o.Seed = 1987
	}
	return o
}

// ShardMigRecord is one completed migration, fully determined by the
// simulation (virtual times only — nothing host- or mode-dependent).
type ShardMigRecord struct {
	Name       string
	Src, Dst   int
	Bytes      int
	OfferAt    time.Duration
	FreezeAt   time.Duration
	ResumeAt   time.Duration
	FetchStall time.Duration
}

// ShardMachineStats is one machine's deterministic accounting.
type ShardMachineStats struct {
	Name     string
	CPUBusy  time.Duration
	WireBusy time.Duration
	BytesOut uint64
	Spawned  int
	Finished int
	Out, In  int
}

// ShardStressResult is everything the scenario measures inside the
// simulation. It is the byte-identity surface: a sharded run at any
// worker count must DeepEqual the sequential run. Host-side figures
// (wall clock, events/sec, barrier stalls) live in ShardStressPerf.
type ShardStressResult struct {
	Machines  int
	Spawned   int
	Finished  int
	Offers    int
	Accepted  int
	Rejected  int
	Cancelled int
	Completed int

	BytesOnWire uint64
	Frames      uint64

	DownP50, DownP99, DownMax time.Duration // freeze -> resume
	MigP50, MigP99            time.Duration // offer -> resume
	FetchStallMean            time.Duration

	PerMachine []ShardMachineStats
	Migrations []ShardMigRecord
}

// ShardStressPerf is the host-side measurement of one run: how fast the
// kernel(s) chewed through the event load. Everything here depends on
// the machine and worker count and must stay out of the result proper.
type ShardStressPerf struct {
	Sharded      bool
	Workers      int
	Wall         time.Duration
	Events       uint64
	EventsPerSec float64
	Windows      uint64
	CrossEvents  uint64
	StallPct     float64 // barrier stall, sharded runs only
	LaneWall     []time.Duration
}

// ssKind discriminates scenario control messages.
type ssKind uint8

const (
	ssOffer ssKind = iota
	ssAccept
	ssReject
	ssCancel
	ssCommit
	ssFetchReq
)

// ssMig is a migration descriptor. The source fills it in before each
// send; the destination only reads it, and the window barrier orders
// those accesses, so the pointer may safely cross lanes.
type ssMig struct {
	name       string
	src, dst   int
	program    *trace.Program
	pc         int
	imageBytes int
	offerAt    time.Duration
	freezeAt   time.Duration
}

// ssFetch is one residual-fetch request: the requester's machine index
// plus its reply queue (owned by the requester's lane; the backer only
// passes the pointer back into a delivery closure).
type ssFetch struct {
	from  int
	reply *sim.Queue[int]
}

type ssMsg struct {
	kind  ssKind
	src   int
	mig   *ssMig
	fetch *ssFetch
}

// ssNode is one machine plus its scenario state. All fields are owned
// by the machine's lane.
type ssNode struct {
	idx      int
	m        *machine.Machine
	iface    *netlink.Iface
	inbox    *sim.Queue[ssMsg] // control plane: offers, replies, commits
	backq    *sim.Queue[ssMsg] // residual-fetch service
	rng      *xrand.RNG        // migration decisions
	spawnRNG *xrand.RNG        // arrivals and program shapes

	inflightIn int
	spawned    int
	offers     int
	accepted   int
	rejects    int
	cancels    int
	outMigs    int
	inMigs     int
	records    []ShardMigRecord
}

// ssState is the cluster-wide scenario context. Nodes only read the
// shared fields (and other nodes' iface/inbox pointers, which are
// lane-safe hand-off points).
type ssState struct {
	opts        ShardStressOptions
	nodes       []*ssNode
	span        time.Duration
	arriveUntil time.Duration
	stopAt      time.Duration
}

// snapLattice re-aligns a proc to the whole-microsecond lattice after a
// skewed cross-machine delivery woke it, restoring the scenario's
// no-ties invariant for all downstream local work.
func snapLattice(p *sim.Proc) {
	if r := p.Now() % ssLattice; r != 0 {
		p.Sleep(ssLattice - r)
	}
}

// ssImageBytes derives a process's frozen-image size from its name: a
// pure function, so source and destination agree without shared state.
// Images span 8..64 frames (32..256 KB).
func ssImageBytes(name string) int {
	h := fnv.New64a()
	h.Write([]byte(name))
	frames := 8 + int(h.Sum64()%57)
	return frames * ssFramePages * ssPage
}

// ssProgram builds a process's reference program: alternating compute
// bursts and IO waits, all whole microseconds.
func ssProgram(rng *xrand.RNG, ops int) *trace.Program {
	prog := &trace.Program{}
	for i := 0; i < ops; i++ {
		prog.Ops = append(prog.Ops,
			trace.Compute{D: time.Duration(200+rng.Intn(1800)) * time.Microsecond},
			trace.IOWait{D: time.Duration(100+rng.Intn(900)) * time.Microsecond},
		)
	}
	return prog
}

// sendCtrl ships a control message to dst's inbox.
func (n *ssNode) sendCtrl(p *sim.Proc, dst *ssNode, msg ssMsg) {
	inbox := dst.inbox
	n.iface.Send(p, dst.iface, ssCtrlBytes, func() { inbox.Push(msg) })
}

// spawner admits new processes at randomized intervals over the first
// three quarters of the span.
func (n *ssNode) spawner(p *sim.Proc, s *ssState) {
	jitter := int(s.opts.ArrivalEvery / ssLattice * 2)
	for {
		p.Sleep(time.Duration(1+n.spawnRNG.Intn(jitter)) * ssLattice)
		if p.Now() >= s.arriveUntil {
			return
		}
		name := fmt.Sprintf("m%02d.p%03d", n.idx, n.spawned)
		pr, err := n.m.NewProcess(name, 0)
		if err != nil {
			panic(err) // names are globally unique by construction
		}
		pr.Program = ssProgram(n.spawnRNG, s.opts.ProcOps)
		n.m.Start(pr)
		n.spawned++
	}
}

// tickDelay spaces a daemon's migration decisions.
func (n *ssNode) tickDelay() time.Duration {
	return 200*time.Millisecond + time.Duration(n.rng.Intn(400_000))*ssLattice
}

// daemon is the machine's migration control plane: it periodically
// offers one resident process to a random peer, and serves inbound
// offers, commits, and cancels. After the span it stops offering but
// keeps serving through the grace period so in-flight work drains.
func (n *ssNode) daemon(p *sim.Proc, s *ssState) {
	nextTick := p.Now() + n.tickDelay()
	for {
		now := p.Now()
		if now >= s.stopAt {
			return
		}
		var wait time.Duration
		if now < s.span {
			if now >= nextTick {
				n.maybeMigrate(p, s)
				nextTick = p.Now() + n.tickDelay()
				continue
			}
			wait = nextTick - now
		} else {
			wait = s.stopAt - now
		}
		msg, ok := n.inbox.PopTimeout(p, wait)
		if !ok {
			continue
		}
		snapLattice(p)
		n.handle(p, s, msg)
	}
}

// handle serves one inbound control message. It must never block on a
// peer (replies are fire-and-forget sends), which keeps the offer
// handshake deadlock-free: a daemon waiting for its own reply keeps
// serving its inbox meanwhile.
func (n *ssNode) handle(p *sim.Proc, s *ssState, msg ssMsg) {
	switch msg.kind {
	case ssOffer:
		from := s.nodes[msg.src]
		if p.Now() >= s.span || n.inflightIn >= s.opts.InflightCap {
			n.rejects++
			n.sendCtrl(p, from, ssMsg{kind: ssReject, src: n.idx, mig: msg.mig})
			return
		}
		n.inflightIn++
		n.accepted++
		n.sendCtrl(p, from, ssMsg{kind: ssAccept, src: n.idx, mig: msg.mig})
	case ssCancel:
		n.inflightIn--
	case ssCommit:
		n.inflightIn--
		n.insert(p, s, msg.mig)
	default:
		panic(fmt.Sprintf("shardstress: machine %d: unexpected %d in control inbox", n.idx, msg.kind))
	}
}

// maybeMigrate runs one outbound migration attempt end to end: pick a
// victim and a destination, offer, and on acceptance freeze, excise,
// transfer, and commit. While waiting for the offer reply the daemon
// keeps serving other inbound traffic.
func (n *ssNode) maybeMigrate(p *sim.Proc, s *ssState) {
	var cands []*machine.Process
	for _, nm := range n.m.ProcNames() {
		if pr, ok := n.m.Process(nm); ok && pr.Status == machine.Running {
			cands = append(cands, pr)
		}
	}
	if len(cands) == 0 {
		return
	}
	victim := cands[n.rng.Intn(len(cands))]
	dst := n.rng.Intn(len(s.nodes) - 1)
	if dst >= n.idx {
		dst++
	}
	mig := &ssMig{
		name:       victim.Name,
		src:        n.idx,
		dst:        dst,
		imageBytes: ssImageBytes(victim.Name),
		offerAt:    p.Now(),
	}
	n.offers++
	n.sendCtrl(p, s.nodes[dst], ssMsg{kind: ssOffer, src: n.idx, mig: mig})
	for {
		msg := n.inbox.Pop(p)
		snapLattice(p)
		if msg.mig == mig && (msg.kind == ssAccept || msg.kind == ssReject) {
			if msg.kind == ssReject {
				return
			}
			break
		}
		n.handle(p, s, msg)
	}
	n.transfer(p, s, victim, mig)
}

// transfer freezes the accepted victim and ships it: preempt at an op
// boundary, pay the excise CPU cost, stream the image in frames, then
// commit. If the victim finished before stopping, the reserved slot is
// cancelled instead.
func (n *ssNode) transfer(p *sim.Proc, s *ssState, victim *machine.Process, mig *ssMig) {
	dst := s.nodes[mig.dst]
	n.m.RequestPreempt(victim)
	if !n.m.WaitStopped(p, victim) {
		n.cancels++
		n.sendCtrl(p, dst, ssMsg{kind: ssCancel, src: n.idx, mig: mig})
		return
	}
	mig.freezeAt = p.Now()
	pages := mig.imageBytes / ssPage
	n.m.CPU.UseHigh(p, ssExciseBase+time.Duration(pages)*ssExcisePerPage)
	mig.program = victim.Program
	mig.pc = victim.PC
	n.m.Remove(victim.Name)
	n.outMigs++
	for sent := 0; sent < mig.imageBytes; sent += ssFramePages * ssPage {
		chunk := ssFramePages * ssPage
		if rest := mig.imageBytes - sent; rest < chunk {
			chunk = rest
		}
		n.iface.Send(p, dst.iface, ssHdrBytes+chunk, func() {})
	}
	n.sendCtrl(p, dst, ssMsg{kind: ssCommit, src: n.idx, mig: mig})
}

// insert lands a committed migration: pay the insert CPU cost, rebuild
// the process, then hand off to a warm-up proc that performs the
// residual fetches against the source's backer before resuming the
// body. Frames and the commit arrive in send order (one sender, one
// wire), so the image is fully here by commit time.
func (n *ssNode) insert(p *sim.Proc, s *ssState, mig *ssMig) {
	n.inMigs++
	pages := mig.imageBytes / ssPage
	n.m.CPU.UseHigh(p, ssInsertBase+time.Duration(pages)*ssInsertPerPage)
	pr, err := n.m.NewProcess(mig.name, 0)
	if err != nil {
		panic(err)
	}
	pr.Program = mig.program
	pr.PC = mig.pc
	src := s.nodes[mig.src]
	n.m.K.Go(mig.name+".warm", func(wp *sim.Proc) {
		replyQ := sim.NewQueue[int](n.m.K)
		var stall time.Duration
		for i := 0; i < s.opts.Fetches; i++ {
			t0 := wp.Now()
			f := &ssFetch{from: n.idx, reply: replyQ}
			backq := src.backq
			req := ssMsg{kind: ssFetchReq, src: n.idx, fetch: f}
			n.iface.Send(wp, src.iface, ssCtrlBytes, func() { backq.Push(req) })
			replyQ.Pop(wp)
			snapLattice(wp)
			stall += wp.Now() - t0
		}
		n.m.Start(pr)
		n.records = append(n.records, ShardMigRecord{
			Name:       mig.name,
			Src:        mig.src,
			Dst:        mig.dst,
			Bytes:      mig.imageBytes,
			OfferAt:    mig.offerAt,
			FreezeAt:   mig.freezeAt,
			ResumeAt:   wp.Now(),
			FetchStall: stall,
		})
	})
}

// backer serves residual-fetch requests against this machine's frozen
// images: a little CPU per request, then the page ships back on this
// machine's wire.
func (n *ssNode) backer(p *sim.Proc, s *ssState) {
	for {
		now := p.Now()
		if now >= s.stopAt {
			return
		}
		msg, ok := n.backq.PopTimeout(p, s.stopAt-now)
		if !ok {
			return
		}
		snapLattice(p)
		n.m.CPU.UseHigh(p, ssServeFetchCPU)
		req := msg.fetch
		tgt := s.nodes[req.from]
		reply := req.reply
		n.iface.Send(p, tgt.iface, ssFetchReply, func() { reply.Push(1) })
	}
}

// RunShardStress executes the scenario and returns the deterministic
// result plus the host-side performance figures for this run.
func RunShardStress(o ShardStressOptions) (*ShardStressResult, *ShardStressPerf, error) {
	o = o.withDefaults()
	sharded := o.Shards > 1
	var cl *sim.Cluster
	kernels := make([]*sim.Kernel, o.Machines)
	if sharded {
		cl = sim.NewCluster(o.Machines, ssLinkCfg.Latency)
		for i := range kernels {
			kernels[i] = cl.Lane(i)
		}
	} else {
		k := sim.New()
		for i := range kernels {
			kernels[i] = k
		}
	}

	s := &ssState{
		opts:        o,
		nodes:       make([]*ssNode, o.Machines),
		span:        o.Span,
		arriveUntil: o.Span * 3 / 4,
		stopAt:      o.Span + ssGrace,
	}
	for i := range s.nodes {
		name := fmt.Sprintf("m%02d", i)
		var m *machine.Machine
		if sharded {
			m = machine.NewOnLane(cl, i, name, machine.Config{})
		} else {
			m = machine.New(kernels[i], name, machine.Config{})
		}
		s.nodes[i] = &ssNode{
			idx:      i,
			m:        m,
			iface:    netlink.NewIface(cl, kernels[i], i, name+".net", ssLinkCfg),
			inbox:    sim.NewQueue[ssMsg](kernels[i]),
			backq:    sim.NewQueue[ssMsg](kernels[i]),
			rng:      xrand.New(o.Seed ^ uint64(i)*0x9e3779b97f4a7c15),
			spawnRNG: xrand.New(o.Seed ^ 0xa5a5a5a5 ^ uint64(i)*0x100000001b3),
		}
	}
	for _, n := range s.nodes {
		n := n
		n.m.K.Go(n.m.Name+".spawn", func(p *sim.Proc) { n.spawner(p, s) })
		n.m.K.Go(n.m.Name+".migd", func(p *sim.Proc) { n.daemon(p, s) })
		n.m.K.Go(n.m.Name+".backer", func(p *sim.Proc) { n.backer(p, s) })
	}

	start := time.Now()
	if sharded {
		cl.Run(o.Shards)
	} else {
		kernels[0].Run()
	}
	wall := time.Since(start)

	res := &ShardStressResult{Machines: o.Machines}
	var downs, migLats, stalls []time.Duration
	for _, n := range s.nodes {
		finished := 0
		for _, nm := range n.m.ProcNames() {
			if pr, ok := n.m.Process(nm); ok && pr.Status == machine.Finished {
				finished++
			}
		}
		res.Spawned += n.spawned
		res.Finished += finished
		res.Offers += n.offers
		res.Accepted += n.accepted
		res.Rejected += n.rejects
		res.Cancelled += n.cancels
		res.Completed += len(n.records)
		res.BytesOnWire += n.iface.Bytes()
		res.Frames += n.iface.Frames()
		res.PerMachine = append(res.PerMachine, ShardMachineStats{
			Name:     n.m.Name,
			CPUBusy:  n.m.CPU.BusyTime(),
			WireBusy: n.iface.BusyTime(),
			BytesOut: n.iface.Bytes(),
			Spawned:  n.spawned,
			Finished: finished,
			Out:      n.outMigs,
			In:       n.inMigs,
		})
		res.Migrations = append(res.Migrations, n.records...)
	}
	sort.Slice(res.Migrations, func(i, j int) bool {
		a, b := &res.Migrations[i], &res.Migrations[j]
		if a.FreezeAt != b.FreezeAt {
			return a.FreezeAt < b.FreezeAt
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Name < b.Name
	})
	for _, r := range res.Migrations {
		downs = append(downs, r.ResumeAt-r.FreezeAt)
		migLats = append(migLats, r.ResumeAt-r.OfferAt)
		stalls = append(stalls, r.FetchStall)
	}
	sort.Slice(downs, func(i, j int) bool { return downs[i] < downs[j] })
	sort.Slice(migLats, func(i, j int) bool { return migLats[i] < migLats[j] })
	res.DownP50 = ssQuantile(downs, 0.50)
	res.DownP99 = ssQuantile(downs, 0.99)
	if len(downs) > 0 {
		res.DownMax = downs[len(downs)-1]
	}
	res.MigP50 = ssQuantile(migLats, 0.50)
	res.MigP99 = ssQuantile(migLats, 0.99)
	if len(stalls) > 0 {
		var sum time.Duration
		for _, d := range stalls {
			sum += d
		}
		res.FetchStallMean = sum / time.Duration(len(stalls))
	}

	perf := &ShardStressPerf{Sharded: sharded, Workers: 1, Wall: wall}
	if sharded {
		perf.Workers = o.Shards
		perf.Events = cl.EventsRun()
		st := cl.Stats()
		perf.Windows = st.Windows
		perf.CrossEvents = st.CrossEvents
		perf.StallPct = st.BarrierStall() * 100
		perf.LaneWall = st.LaneWall
	} else {
		perf.Events = kernels[0].EventsRun()
	}
	if wall > 0 {
		perf.EventsPerSec = float64(perf.Events) / wall.Seconds()
	}
	return res, perf, nil
}

// FormatShardLanes renders the per-machine (equivalently, per-lane)
// utilization of a shard-stress run: each machine's deterministic CPU
// and wire busy fractions over the scenario horizon and its share of
// the migration traffic. The figures come from the byte-identity
// surface, so the table is the same in both execution modes — it shows
// how evenly the load spreads across lanes, not how the host scheduled
// them.
func FormatShardLanes(o ShardStressOptions, r *ShardStressResult) string {
	o = o.withDefaults()
	horizon := (o.Span + ssGrace).Seconds()
	var b strings.Builder
	fmt.Fprintf(&b, "Per-lane utilization over the %v horizon (deterministic):\n", o.Span+ssGrace)
	fmt.Fprintf(&b, "%-6s %6s %6s %10s %6s %7s %4s %4s\n",
		"lane", "cpu%", "wire%", "bytesOut", "spawn", "finish", "out", "in")
	for _, pm := range r.PerMachine {
		fmt.Fprintf(&b, "%-6s %5.1f%% %5.1f%% %10d %6d %7d %4d %4d\n",
			pm.Name, 100*pm.CPUBusy.Seconds()/horizon, 100*pm.WireBusy.Seconds()/horizon,
			pm.BytesOut, pm.Spawned, pm.Finished, pm.Out, pm.In)
	}
	return b.String()
}

// ssQuantile reads a quantile from an ascending slice.
func ssQuantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// ShardStress runs the experiment behind `migsim -exp shardstress`: the
// deterministic scenario table at two cluster scales (memoized through
// the engine), followed by a live sequential-vs-sharded comparison at
// the base scale that verifies byte-identity and reports the host-side
// throughput figures.
func ShardStress(e *Engine, shards int) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Shard-stress: many-machine migration load (lookahead %v, arrivals + concurrent migrations)\n\n", ssLinkCfg.Latency)
	fmt.Fprintf(&b, "%-9s %7s %7s %7s %7s %7s %10s %10s %10s %10s\n",
		"machines", "procs", "offers", "migs", "reject", "cancel", "downP50", "downP99", "migP50", "fetchstall")
	for _, m := range []int{16, 32} {
		r, err := e.ShardTrial(ShardStressOptions{Machines: m})
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%-9d %7d %7d %7d %7d %7d %10v %10v %10v %10v\n",
			r.Machines, r.Spawned, r.Offers, r.Completed, r.Rejected, r.Cancelled,
			r.DownP50, r.DownP99, r.MigP50, r.FetchStallMean)
	}

	if shards < 2 {
		shards = 4
	}
	seqRes, seqPerf, err := RunShardStress(ShardStressOptions{Shards: 1})
	if err != nil {
		return "", err
	}
	shRes, shPerf, err := RunShardStress(ShardStressOptions{Shards: shards})
	if err != nil {
		return "", err
	}
	identical := shardResultsEqual(seqRes, shRes)
	fmt.Fprintf(&b, "\nExecution modes at %d machines (host-measured, varies run to run):\n", seqRes.Machines)
	fmt.Fprintf(&b, "  sequential kernel: %8.0f events/s (%d events, wall %v)\n",
		seqPerf.EventsPerSec, seqPerf.Events, seqPerf.Wall.Round(time.Millisecond))
	fmt.Fprintf(&b, "  %d-worker lanes:    %8.0f events/s (%d events, wall %v, %d windows, %d cross events, barrier stall %.1f%%)\n",
		shPerf.Workers, shPerf.EventsPerSec, shPerf.Events, shPerf.Wall.Round(time.Millisecond),
		shPerf.Windows, shPerf.CrossEvents, shPerf.StallPct)
	fmt.Fprintf(&b, "  sharded result byte-identical to sequential: %v\n", identical)
	if !identical {
		return "", fmt.Errorf("shardstress: sharded result diverges from sequential kernel")
	}
	return b.String(), nil
}

// shardResultsEqual compares the deterministic surface of two runs.
func shardResultsEqual(a, b *ShardStressResult) bool {
	if a.Machines != b.Machines || a.Spawned != b.Spawned || a.Finished != b.Finished ||
		a.Offers != b.Offers || a.Accepted != b.Accepted || a.Rejected != b.Rejected ||
		a.Cancelled != b.Cancelled || a.Completed != b.Completed ||
		a.BytesOnWire != b.BytesOnWire || a.Frames != b.Frames ||
		a.DownP50 != b.DownP50 || a.DownP99 != b.DownP99 || a.DownMax != b.DownMax ||
		a.MigP50 != b.MigP50 || a.MigP99 != b.MigP99 || a.FetchStallMean != b.FetchStallMean ||
		len(a.PerMachine) != len(b.PerMachine) || len(a.Migrations) != len(b.Migrations) {
		return false
	}
	for i := range a.PerMachine {
		if a.PerMachine[i] != b.PerMachine[i] {
			return false
		}
	}
	for i := range a.Migrations {
		if a.Migrations[i] != b.Migrations[i] {
			return false
		}
	}
	return true
}
