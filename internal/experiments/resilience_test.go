package experiments

import (
	"strings"
	"testing"
)

// TestResilienceDeterministic is the regression behind `make
// faultcheck`: the full resilience experiment — lossy sweeps, crash
// scenarios, a partition — must produce byte-identical output across
// independent engines, whose worker pools interleave trials
// differently. Fault injection is seeded and per-trial, so parallelism
// must not leak into results.
func TestResilienceDeterministic(t *testing.T) {
	render := func(workers int) string {
		t.Helper()
		tab, err := NewEngine(workers).Resilience(Config{})
		if err != nil {
			t.Fatalf("Resilience(workers=%d): %v", workers, err)
		}
		return FormatResilience(tab)
	}
	par := render(0)  // default pool
	seq := render(1)  // strictly sequential
	par2 := render(0) // fresh engine, fresh caches
	if par != seq {
		t.Errorf("parallel and sequential resilience runs differ:\n--- parallel ---\n%s\n--- sequential ---\n%s", par, seq)
	}
	if par != par2 {
		t.Error("two parallel resilience runs differ")
	}
}

// TestResilienceTableShape pins the experiment's contract: every sweep
// cell terminates (the whole point of the reliable control plane), the
// zero-drop baseline migrates and completes everywhere, and each crash
// scenario resolves to its policy's documented fate.
func TestResilienceTableShape(t *testing.T) {
	tab, err := Resilience(Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Sweep {
		if len(row.Outcomes) == 0 {
			t.Fatalf("sweep row %s/%v has no outcomes", row.Strategy, row.DropProb)
		}
		for _, o := range row.Outcomes {
			if row.DropProb == 0 && (!o.Migrated || !o.Completed) {
				t.Errorf("%s at zero drop: migrated=%v completed=%v",
					row.Strategy, o.Migrated, o.Completed)
			}
			// Liveness: every trial ends in a definite state — either
			// the process ran to completion somewhere, or a typed
			// error explains why not.
			if !o.Completed && o.ExecClass == "" {
				t.Errorf("%s/%v: incomplete with no exec error class", row.Strategy, row.DropProb)
			}
		}
	}
	byName := map[string]*ResilienceRow{}
	for _, sc := range tab.Scenarios {
		byName[sc.Scenario] = sc
	}
	if sc, ok := byName["crash-src@remote/fail"]; !ok {
		t.Error("missing crash/fail scenario")
	} else if sc.Outcomes[0].ExecClass != "backer-lost" {
		t.Errorf("crash/fail exec class = %q, want backer-lost", sc.Outcomes[0].ExecClass)
	}
	if sc, ok := byName["crash-src@remote/zerofill"]; !ok {
		t.Error("missing crash/zerofill scenario")
	} else if o := sc.Outcomes[0]; !o.Completed || o.ZeroFills == 0 {
		t.Errorf("crash/zerofill: completed=%v zerofills=%d, want completion on zero pages",
			o.Completed, o.ZeroFills)
	}
	if sc, ok := byName["crash-src@remote/flush"]; !ok {
		t.Error("missing crash/flush scenario")
	} else if o := sc.Outcomes[0]; !o.Completed || o.ZeroFills != 0 {
		t.Errorf("crash/flush: completed=%v zerofills=%d, want clean completion",
			o.Completed, o.ZeroFills)
	}
	if sc, ok := byName["partition@start"]; !ok {
		t.Error("missing partition scenario")
	} else if o := sc.Outcomes[0]; o.Migrated || !o.Aborted || !o.Completed {
		t.Errorf("partition: migrated=%v aborted=%v completed=%v, want abort + local completion",
			o.Migrated, o.Aborted, o.Completed)
	}
	// The formatted table mentions every scenario by name.
	out := FormatResilience(tab)
	for name := range byName {
		if !strings.Contains(out, name) {
			t.Errorf("formatted table missing scenario %q", name)
		}
	}
}
