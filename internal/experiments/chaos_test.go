package experiments

import (
	"testing"
	"time"

	"accentmig/internal/core"
	"accentmig/internal/faults"
	"accentmig/internal/pager"
	"accentmig/internal/sim"
	"accentmig/internal/workload"
)

// TestChaosSmoke is the bounded campaign behind `make chaossmoke`: a
// few dozen randomized fault plans across strategy × window × dedup
// scenarios, every trial checked against the chaos invariants. Any
// violation fails with the shrunk minimal reproducer in the message.
func TestChaosSmoke(t *testing.T) {
	rep, err := Chaos(Config{}, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Migrated+rep.Aborted == 0 {
		t.Fatal("chaos campaign reached no outcomes at all")
	}
	for _, v := range rep.Violations {
		t.Errorf("seed %d %s: %s — %s\n  minimal plan: %s",
			v.Seed, v.Scenario, v.Invariant, v.Detail, v.PlanJSON)
	}
}

// TestChaosDeterministic pins the campaign's replay contract: the same
// campaign seed must produce the identical report regardless of worker
// pool size, exactly like the resilience sweep.
func TestChaosDeterministic(t *testing.T) {
	render := func(workers int) string {
		t.Helper()
		rep, err := NewEngine(workers).Chaos(Config{}, 12, 7)
		if err != nil {
			t.Fatalf("Chaos(workers=%d): %v", workers, err)
		}
		return FormatChaos(rep)
	}
	if par, seq := render(0), render(1); par != seq {
		t.Errorf("parallel and sequential chaos campaigns differ:\n--- parallel ---\n%s\n--- sequential ---\n%s", par, seq)
	}
}

// TestChaosSentinelShrinksOrphanedIOU proves the orphaned-IOU bug
// class is catchable end to end: a fault plan that genuinely orphans
// pages (a source-backer crash under the zero-fill policy) buried in
// irrelevant noise elements must be detected by the invariant evidence
// and shrunk to the single load-bearing element. This is the shape a
// real regression would take — a campaign seed goes red, and the
// shrinker hands back a one-element reproducer.
func TestChaosSentinelShrinksOrphanedIOU(t *testing.T) {
	cfg := Config{}
	cfg.Machine.Pager.Orphan = pager.OrphanZeroFill
	full := &faults.Plan{
		Seed:     3,
		DropProb: 0.05, // noise: survivable loss
		Bursts: []faults.Burst{{ // noise: a burst the transfer outlives
			Window:   faults.Window{Start: faults.Duration(2 * time.Second), End: faults.Duration(4 * time.Second)},
			DropProb: 0.9,
		}},
		Crashes: []faults.Crash{{ // the bug: orphaned IOUs zero-fill
			Machine: "src", AtPhase: "remote", Policy: faults.CrashZeroFill,
		}},
	}
	opts := ResilienceOptions{MaxRetries: 2, Degrade: false, AckTimeout: 15 * time.Minute}
	recheck := func(p *faults.Plan) string {
		c := cfg
		c.Faults = p
		out, err := RunResilienceTrial(c, resilienceKind, core.PureIOU, opts)
		if err != nil {
			return "trial-error"
		}
		if out.ZeroFills > 0 {
			return "orphaned-iou"
		}
		return ""
	}
	if got := recheck(full); got != "orphaned-iou" {
		t.Fatalf("sentinel plan produced %q, want orphaned-iou", got)
	}
	minimal := shrinkPlan(full, "orphaned-iou", recheck)
	if planElems(minimal) != 1 || len(minimal.Crashes) != 1 {
		t.Fatalf("shrinker kept %d elements (%+v), want only the crash", planElems(minimal), minimal)
	}
	if minimal.DropProb != 0 || len(minimal.Bursts) != 0 {
		t.Errorf("noise elements survived shrinking: %+v", minimal)
	}
}

// probeRIMAS measures the xfer.rimas span of a fault-free PureCopy
// migration under cfg, so fault windows can be aimed at a chosen
// fraction of the transfer.
func probeRIMAS(t *testing.T, cfg Config) (start, end time.Duration) {
	t.Helper()
	tr, err := RunTrial(cfg, resilienceKind, core.PureCopy, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, ph := range tr.Phases {
		if ph.Name == "xfer.rimas" {
			return ph.Start, ph.End
		}
	}
	t.Fatal("no xfer.rimas phase in probe trial")
	return 0, 0
}

// killFirstAttempt returns a plan whose partition opens 60% of the way
// through the probed RIMAS transfer and outlasts the transport's
// dead-peer horizon, so attempt one dies with well over half the image
// already delivered and attempt two runs on a healed link.
func killFirstAttempt(t *testing.T, cfg Config) *faults.Plan {
	t.Helper()
	s, e := probeRIMAS(t, cfg)
	mid := s + 6*(e-s)/10
	return &faults.Plan{Seed: 1, Partitions: []faults.Window{{
		Start: faults.Duration(mid),
		End:   faults.Duration(mid + 16*time.Second),
	}}}
}

// TestResumeRetrySavesBytes is the resumable-retry acceptance test:
// kill attempt one past the 50% mark of the RIMAS transfer, let the
// retry complete, and compare total wire bytes with the delivery
// ledger off and on. The ledger run must resume pages and ship
// measurably fewer bytes, and the final image must equal the
// fault-free golden — which also proves attempt one's retained recipe
// and ledger content cannot leak a stale page into attempt two.
func TestResumeRetrySavesBytes(t *testing.T) {
	opts := ResilienceOptions{MaxRetries: 3, Degrade: false, AckTimeout: 15 * time.Minute}
	run := func(resume bool) (*ResilienceOutcome, *ResilienceOutcome) {
		cfg := Config{}
		cfg.Machine.Dedup.Resume = resume
		fcfg := cfg
		fcfg.Faults = killFirstAttempt(t, cfg)
		out, err := RunResilienceTrial(fcfg, resilienceKind, core.PureCopy, opts)
		if err != nil {
			t.Fatal(err)
		}
		gold, err := RunResilienceTrial(cfg, resilienceKind, core.PureCopy, opts)
		if err != nil {
			t.Fatal(err)
		}
		return out, gold
	}
	off, offGold := run(false)
	on, onGold := run(true)

	for name, o := range map[string]*ResilienceOutcome{"ledger-off": off, "ledger-on": on} {
		if !o.Migrated || !o.Completed {
			t.Fatalf("%s: migrated=%v completed=%v, want a successful retry", name, o.Migrated, o.Completed)
		}
		if o.Attempts < 2 {
			t.Fatalf("%s: %d attempts, want the partition to kill attempt one", name, o.Attempts)
		}
	}
	if off.ResumedPages != 0 {
		t.Errorf("ledger off resumed %d pages, want 0", off.ResumedPages)
	}
	if on.ResumedPages == 0 {
		t.Error("ledger on resumed no pages")
	}
	if on.BytesTotal >= off.BytesTotal {
		t.Errorf("ledger saved nothing: %d bytes on vs %d off", on.BytesTotal, off.BytesTotal)
	}
	if saved := off.BytesTotal - on.BytesTotal; saved < on.ResumedBytes/2 {
		t.Errorf("saved only %d wire bytes for %d resumed bytes", saved, on.ResumedBytes)
	}
	if on.ImageHash != onGold.ImageHash || !on.ImageOnDst {
		t.Errorf("resumed retry image %#x diverges from fault-free %#x", on.ImageHash, onGold.ImageHash)
	}
	if off.ImageHash != offGold.ImageHash || !off.ImageOnDst {
		t.Errorf("plain retry image %#x diverges from fault-free %#x", off.ImageHash, offGold.ImageHash)
	}
}

// TestRetryDowntimeCoversAllAttempts is the downtime re-stamping
// regression test: the frozen interval of a retried migration runs
// from the FIRST attempt's freeze to the final resume — the process
// never executes between attempts — so it must exceed the fault-free
// downtime by at least the dead-peer detection the retry sat through.
// Before the MarkFreeze fix, each retry re-stamped the freeze instant
// and reported only the last attempt's slice.
func TestRetryDowntimeCoversAllAttempts(t *testing.T) {
	cfg := Config{}
	cfg.Machine.Dedup.Resume = true
	fcfg := cfg
	fcfg.Faults = killFirstAttempt(t, cfg)
	opts := ResilienceOptions{MaxRetries: 3, Degrade: false, AckTimeout: 15 * time.Minute}
	out, err := RunResilienceTrial(fcfg, resilienceKind, core.PureCopy, opts)
	if err != nil {
		t.Fatal(err)
	}
	gold, err := RunResilienceTrial(cfg, resilienceKind, core.PureCopy, opts)
	if err != nil {
		t.Fatal(err)
	}
	if out.Attempts < 2 || !out.Completed {
		t.Fatalf("attempts=%d completed=%v, want a completed retry", out.Attempts, out.Completed)
	}
	// Attempt one froze, stalled against the partition for the whole
	// dead-peer horizon (~13 s), and the process only ran again after
	// attempt two's insert: the honest downtime dwarfs the golden's.
	if out.Downtime < gold.Downtime+10*time.Second {
		t.Errorf("retried downtime %v barely exceeds fault-free %v: freeze re-stamped?",
			out.Downtime, gold.Downtime)
	}
	if out.Downtime > out.TotalTime {
		t.Errorf("downtime %v exceeds total time %v", out.Downtime, out.TotalTime)
	}
}

// TestManifestCrashRollsBackCleanly kills the destination as the
// manifest exchange begins — the OpManifestAck can never arrive — and
// checks the source's side of the contract: the migration aborts with
// a typed error, the process rolls back and completes at the source,
// and nothing of the dead destination's state survives.
func TestManifestCrashRollsBackCleanly(t *testing.T) {
	cfg := Config{}
	cfg.Machine.Dedup.Resume = true // manifest phase runs
	cfg.Faults = &faults.Plan{Seed: 1, Crashes: []faults.Crash{{
		Machine: "dst", AtPhase: "xfer.manifest",
	}}}
	out, err := RunResilienceTrial(cfg, resilienceKind, core.PureCopy,
		ResilienceOptions{MaxRetries: 1, Degrade: false, AckTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if out.Migrated {
		t.Fatal("migrated to a destination that died before acking the manifest")
	}
	if !out.Aborted || out.MigClass != "aborted" {
		t.Errorf("aborted=%v migClass=%q, want a clean typed abort", out.Aborted, out.MigClass)
	}
	if !out.Completed || out.ImageOnDst {
		t.Errorf("completed=%v imageOnDst=%v, want local completion after rollback",
			out.Completed, out.ImageOnDst)
	}
	if out.ImageHash == 0 {
		t.Error("no source image after rollback")
	}
}

// TestManifestCrashClearsLedger drives the same destination-death
// scenario on a raw testbed to check the destination's side: a crashed
// machine's delivery ledger is kernel memory and must not survive into
// any later exchange.
func TestManifestCrashClearsLedger(t *testing.T) {
	cfg := Config{}
	cfg.Machine.Dedup.Resume = true
	cfg.Faults = killFirstAttempt(t, cfg)
	cfg = resilienceDefaults(cfg)
	tb := NewTestbed(cfg)
	built, err := workload.Build(tb.Src, resilienceKind)
	if err != nil {
		t.Fatal(err)
	}
	tb.Src.Start(built.Proc)
	tb.K.Go("driver", func(p *sim.Proc) {
		rep, migErr := tb.SrcMgr.MigrateTo(p, resilienceKind.String(), tb.DstMgr.Port.ID, core.Options{
			Strategy:         core.PureCopy,
			WaitMigratePoint: true,
			AckTimeout:       15 * time.Minute,
			MaxRetries:       3,
		})
		if migErr != nil || rep == nil {
			return
		}
	})
	tb.K.Run()
	// Attempt one's partial delivery credited pages to the ledger…
	if tb.Dst.Net.Ledger().Stats().Credits == 0 {
		t.Fatal("partition scenario credited nothing to the ledger")
	}
	// …the retry resumed from it, and the successful insert forgot the
	// migration's entry: nothing may linger for a future exchange.
	if n := tb.Dst.Net.Ledger().Pages(resilienceKind.String()); n != 0 {
		t.Errorf("%d ledger pages retained after successful insert, want 0", n)
	}
	// A crash, by contrast, wipes the ledger wholesale.
	tb.Dst.Net.Ledger().Credit("ghost", 42, []byte{1})
	tb.Dst.Net.Crash()
	if n := tb.Dst.Net.Ledger().Pages("ghost"); n != 0 {
		t.Errorf("%d ledger pages survived a machine crash, want 0", n)
	}
}
