package experiments

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// memoEpoch is the on-disk schema version of a cached trial. Bump it
// whenever the encoded result types (TrialResult, HoldResult,
// ResilienceOutcome and everything they embed) or the simulation's
// observable semantics change in a way the config fingerprint cannot
// see; old entries become unreachable (they live in a differently named
// subdirectory) and are eventually pruned.
const memoEpoch = 1

// memoMagic heads every cache entry so a torn or foreign file is
// rejected before any decoding happens.
var memoMagic = [8]byte{'M', 'I', 'G', 'M', 'E', 'M', 'O', '1'}

// DefaultCacheDir is where the persistent memo cache lives when no
// directory is given.
const DefaultCacheDir = ".migcache"

// DefaultCacheBytes is the default size cap for the persistent memo
// cache. When the cache grows past it, the oldest entries (by file
// modification time) are pruned until the cache is back under 3/4 of
// the cap.
const DefaultCacheBytes = 256 << 20

// memoPayload is the gob-encoded body of one cache entry. Exactly one
// pointer is non-nil, matching the entry's variant. Adding a field is
// compatible with existing cache files: gob tolerates the missing
// field, and new variants get fresh filenames anyway.
type memoPayload struct {
	Trial *TrialResult
	Hold  *HoldResult
	Res   *ResilienceOutcome
	Shard *ShardStressResult
}

// DiskStats counts disk-cache traffic for one process.
type DiskStats struct {
	Hits    uint64 // entries served from disk
	Misses  uint64 // lookups that fell through to simulation
	Writes  uint64 // entries persisted
	Rejects uint64 // corrupt/truncated/unreadable entries discarded
}

// DiskCache is the persistent second level of the engine's memo cache:
// a directory of checksummed, gob-encoded trial results keyed by the
// same (config fingerprint, trial coordinates) tuple as the in-memory
// map, namespaced by schema epoch and Go version. Entries are written
// atomically (tmp + rename) and verified on load; anything torn,
// truncated, or stale is discarded and silently recomputed. All methods
// are safe for concurrent use by the engine's worker pool.
type DiskCache struct {
	dir      string // epoch+version-scoped entry directory
	maxBytes int64

	size    atomic.Int64 // approximate bytes of entries in dir
	pruneMu sync.Mutex   // serializes prune scans

	hits, misses, writes, rejects atomic.Uint64
}

// cacheSubdir names the epoch+Go-version namespace. Results are only
// portable across processes running the same schema and toolchain: the
// fingerprint's %#v rendering and gob's float/struct encodings are
// stable for a fixed Go version, so the version joins the key.
func cacheSubdir() string {
	v := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '.', r == '-':
			return r
		}
		return '-'
	}, runtime.Version())
	return fmt.Sprintf("e%d-%s", memoEpoch, v)
}

// OpenDiskCache opens (creating if needed) a persistent memo cache
// under dir. An empty dir selects DefaultCacheDir; maxBytes <= 0
// selects DefaultCacheBytes.
func OpenDiskCache(dir string, maxBytes int64) (*DiskCache, error) {
	if dir == "" {
		dir = DefaultCacheDir
	}
	if maxBytes <= 0 {
		maxBytes = DefaultCacheBytes
	}
	d := &DiskCache{dir: filepath.Join(dir, cacheSubdir()), maxBytes: maxBytes}
	if err := os.MkdirAll(d.dir, 0o777); err != nil {
		return nil, fmt.Errorf("memo cache: %w", err)
	}
	d.size.Store(d.scanSize())
	return d, nil
}

// Dir reports the directory entries are stored in (including the
// epoch+version namespace).
func (d *DiskCache) Dir() string { return d.dir }

// Stats reports the cache traffic counters.
func (d *DiskCache) Stats() DiskStats {
	return DiskStats{
		Hits:    d.hits.Load(),
		Misses:  d.misses.Load(),
		Writes:  d.writes.Load(),
		Rejects: d.rejects.Load(),
	}
}

// filename renders the trial coordinates of one entry. The config
// fingerprint already folds in the machine/link/tuning models, the base
// seed, and (for resilience entries) the trial options.
func (k cacheKey) filename() string {
	return fmt.Sprintf("%016x-%d-%d-%d-%d.memo", k.fp, k.variant, int(k.Kind), int(k.Strategy), k.Prefetch)
}

// checksum is FNV-64a over the encoded payload; it guards against torn
// writes and bit rot, not adversaries.
func checksum(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// load fetches and verifies one entry. Any failure — absent, torn,
// truncated, bit-flipped, undecodable — reports a miss; corrupt files
// are additionally removed so they are rebuilt by the write-behind.
func (d *DiskCache) load(key cacheKey) (*memoPayload, bool) {
	path := filepath.Join(d.dir, key.filename())
	raw, err := os.ReadFile(path)
	if err != nil {
		d.misses.Add(1)
		return nil, false
	}
	p, ok := decodeEntry(raw)
	if !ok {
		d.rejects.Add(1)
		d.misses.Add(1)
		os.Remove(path)
		return nil, false
	}
	d.hits.Add(1)
	return p, true
}

// decodeEntry validates the framing (magic, length, checksum) and gob-
// decodes the payload.
func decodeEntry(raw []byte) (*memoPayload, bool) {
	const hdr = 8 + 8 + 8 // magic + payload length + checksum
	if len(raw) < hdr || !bytes.Equal(raw[:8], memoMagic[:]) {
		return nil, false
	}
	n := binary.LittleEndian.Uint64(raw[8:16])
	sum := binary.LittleEndian.Uint64(raw[16:24])
	body := raw[hdr:]
	if uint64(len(body)) != n || checksum(body) != sum {
		return nil, false
	}
	var p memoPayload
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&p); err != nil {
		return nil, false
	}
	return &p, true
}

// store persists one entry atomically: encode, write to a temp file in
// the same directory, fsync-free rename into place. Failures are
// swallowed — the cache is an accelerator, never a correctness
// dependency — and a size cap overrun triggers a prune.
func (d *DiskCache) store(key cacheKey, p *memoPayload) {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(p); err != nil {
		return
	}
	buf := make([]byte, 0, 24+body.Len())
	buf = append(buf, memoMagic[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(body.Len()))
	buf = binary.LittleEndian.AppendUint64(buf, checksum(body.Bytes()))
	buf = append(buf, body.Bytes()...)

	tmp, err := os.CreateTemp(d.dir, "tmp-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(name)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, filepath.Join(d.dir, key.filename())); err != nil {
		os.Remove(name)
		return
	}
	d.writes.Add(1)
	if d.size.Add(int64(len(buf))) > d.maxBytes {
		d.prune()
	}
}

// scanSize sums the on-disk entry sizes (leftover temp files included,
// they are prune fodder too).
func (d *DiskCache) scanSize() int64 {
	ents, err := os.ReadDir(d.dir)
	if err != nil {
		return 0
	}
	var total int64
	for _, ent := range ents {
		if info, err := ent.Info(); err == nil && info.Mode().IsRegular() {
			total += info.Size()
		}
	}
	return total
}

// prune deletes the oldest entries (by modification time) until the
// cache is under 3/4 of the size cap, so steady growth does not prune
// on every store.
func (d *DiskCache) prune() {
	d.pruneMu.Lock()
	defer d.pruneMu.Unlock()
	ents, err := os.ReadDir(d.dir)
	if err != nil {
		return
	}
	type fileAge struct {
		name  string
		size  int64
		mtime int64
	}
	files := make([]fileAge, 0, len(ents))
	var total int64
	for _, ent := range ents {
		info, err := ent.Info()
		if err != nil || !info.Mode().IsRegular() {
			continue
		}
		files = append(files, fileAge{ent.Name(), info.Size(), info.ModTime().UnixNano()})
		total += info.Size()
	}
	d.size.Store(total)
	target := d.maxBytes * 3 / 4
	if total <= target {
		return
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime < files[j].mtime })
	for _, f := range files {
		if total <= target {
			break
		}
		if os.Remove(filepath.Join(d.dir, f.name)) == nil {
			total -= f.size
			d.size.Add(-f.size)
		}
	}
}
