package experiments

import (
	"fmt"
	"strings"
	"time"

	"accentmig/internal/core"
	"accentmig/internal/obs"
	"accentmig/internal/workload"
)

// TraceTrial runs one migration trial with an in-memory flight
// recorder attached and returns the result alongside the captured
// event stream, for timeline and critical-path reporting.
func TraceTrial(cfg Config, k workload.Kind, strat core.Strategy, prefetch int) (*TrialResult, *obs.MemorySink, error) {
	sink := obs.NewMemorySink()
	cfg.Sink = sink
	tr, err := RunTrial(cfg, k, strat, prefetch)
	if err != nil {
		return nil, nil, err
	}
	return tr, sink, nil
}

// FormatTimeline renders one traced migration as a phase timeline with
// a critical-path decomposition and the fault-latency quantiles. The
// bars are scaled to the longest span.
func FormatTimeline(k workload.Kind, strat core.Strategy, tr *TrialResult, sink *obs.MemorySink) string {
	var b strings.Builder
	total := tr.Report.Total + tr.RemoteExec
	fmt.Fprintf(&b, "Migration timeline — %s under %s (migration %.2fs + remote exec %.2fs)\n",
		k, strat, tr.Report.Total.Seconds(), tr.RemoteExec.Seconds())

	// Phase rows: recorder spans plus the remote-execution tail.
	type row struct {
		name       string
		start, end time.Duration
	}
	rows := make([]row, 0, len(tr.Phases)+1)
	var longest time.Duration
	for _, ph := range tr.Phases {
		rows = append(rows, row{ph.Name, ph.Start, ph.End})
		if d := ph.End - ph.Start; d > longest {
			longest = d
		}
	}
	rows = append(rows, row{"remote-exec", tr.Report.InsertDoneAt, tr.Report.InsertDoneAt + tr.RemoteExec})
	if tr.RemoteExec > longest {
		longest = tr.RemoteExec
	}
	const barWidth = 40
	for _, r := range rows {
		d := r.end - r.start
		n := 0
		if longest > 0 {
			n = int(d * barWidth / longest)
		}
		if n == 0 && d > 0 {
			n = 1
		}
		fmt.Fprintf(&b, "  %-12s [%8.2fs → %8.2fs] %6.2fs %s\n",
			r.name, r.start.Seconds(), r.end.Seconds(), d.Seconds(), strings.Repeat("#", n))
	}

	// Critical path: the migration phases are strictly sequential
	// (excise → xfer.core → xfer.rimas → insert), then remote execution;
	// each entry's share tells which leg dominates end-to-end latency.
	fmt.Fprintf(&b, "Critical path:")
	for _, r := range rows {
		d := r.end - r.start
		fmt.Fprintf(&b, " %s %.2fs (%.0f%%)", r.name, d.Seconds(), 100*d.Seconds()/total.Seconds())
	}
	fmt.Fprintf(&b, "\n")

	if tr.FaultP99 > 0 {
		fmt.Fprintf(&b, "Fault resolution latency: p50 %.1fms  p95 %.1fms  p99 %.1fms  (mean %.1fms, %d remote faults)\n",
			tr.FaultP50.Seconds()*1000, tr.FaultP95.Seconds()*1000, tr.FaultP99.Seconds()*1000,
			tr.RemoteFaultMean.Seconds()*1000, tr.DestPager.ImagFaults)
	}

	if sink != nil && sink.Len() > 0 {
		counts := sink.CountKinds()
		fmt.Fprintf(&b, "Flight recorder: %d events —", sink.Len())
		for _, kind := range obs.Kinds() {
			if n := counts[kind]; n > 0 {
				fmt.Fprintf(&b, " %s=%d", kind, n)
			}
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}
