package experiments

import (
	"fmt"
	"strings"
	"time"

	"accentmig/internal/core"
	"accentmig/internal/sim"
	"accentmig/internal/trace"
	"accentmig/internal/vm"
)

// PreCopyRow compares one transfer scheme on the writer workload.
type PreCopyRow struct {
	Label    string
	Downtime time.Duration // process stopped → resumed at destination
	Total    time.Duration // scheme start → resumed at destination
	Bytes    uint64
}

// FormatPreCopy renders the comparison.
func FormatPreCopy(rows []PreCopyRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Pre-copy (V-system, §5) vs stop-and-copy vs copy-on-reference\n")
	fmt.Fprintf(&b, "%-12s %10s %10s %12s\n", "", "downtime", "total", "wire bytes")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %9.2fs %9.2fs %12d\n",
			r.Label, r.Downtime.Seconds(), r.Total.Seconds(), r.Bytes)
	}
	return b.String()
}

// preCopyTestbed builds a writer process: `pages` pages of data, a long
// program that keeps dirtying a hot window.
func preCopyTestbed(cfg Config, pages, hot, bursts int) (*Testbed, error) {
	tb := NewTestbed(cfg)
	pr, err := tb.Src.NewProcess("writer", 1)
	if err != nil {
		return nil, err
	}
	reg, err := pr.AS.Validate(0, uint64(pages)*512, "data")
	if err != nil {
		return nil, err
	}
	for i := 0; i < pages; i++ {
		data := make([]byte, 512)
		for j := range data {
			data[j] = byte(i * j)
		}
		pg := reg.Seg.Materialize(uint64(i), data)
		pg.State.OnDisk = true
	}
	var ops []trace.Op
	for b := 0; b < bursts; b++ {
		ops = append(ops,
			trace.Compute{D: 100 * time.Millisecond},
			trace.Touch{Addr: vm.Addr(512 * (b % hot)), Write: true},
		)
	}
	pr.Program = &trace.Program{Ops: ops}
	tb.Src.Start(pr)
	return tb, nil
}

// PreCopyComparison contrasts the three downtime disciplines on a
// 128-page writer: iterative pre-copy, stop-and-pure-copy, and
// stop-and-IOU (copy-on-reference). Downtime for the IOU case ends at
// resume, but its cost continues across the remote lifetime — exactly
// the structural difference §5 discusses.
func PreCopyComparison(cfg Config) ([]PreCopyRow, error) {
	var rows []PreCopyRow

	// Iterative pre-copy.
	tb, err := preCopyTestbed(cfg, 128, 16, 2000)
	if err != nil {
		return nil, err
	}
	var rep *core.PreCopyReport
	var runErr error
	tb.K.Go("driver", func(p *sim.Proc) {
		p.Sleep(time.Second)
		rep, runErr = tb.SrcMgr.PreCopyTo(p, "writer", tb.DstMgr.Port.ID, core.PreCopyOptions{})
	})
	tb.K.RunUntil(30 * time.Minute)
	if runErr != nil {
		return nil, runErr
	}
	if rep == nil || rep.ProcCompleted {
		return nil, fmt.Errorf("experiments: pre-copy trial did not migrate")
	}
	rows = append(rows, PreCopyRow{
		Label:    fmt.Sprintf("precopy(x%d)", len(rep.Rounds)),
		Downtime: rep.Downtime,
		Total:    rep.Total,
		Bytes:    tb.Link.Bytes(),
	})

	// Stop-and-transfer under pure copy and pure IOU.
	for _, strat := range []core.Strategy{core.PureCopy, core.PureIOU} {
		tb, err := preCopyTestbed(cfg, 128, 16, 2000)
		if err != nil {
			return nil, err
		}
		var down, total time.Duration
		var stopErr error
		tb.K.Go("driver", func(p *sim.Proc) {
			p.Sleep(time.Second)
			start := p.Now()
			pr, _ := tb.Src.Process("writer")
			tb.Src.RequestPreempt(pr)
			if !tb.Src.WaitStopped(p, pr) {
				stopErr = fmt.Errorf("experiments: writer finished before stop")
				return
			}
			downStart := p.Now()
			r, err := tb.SrcMgr.MigrateTo(p, "writer", tb.DstMgr.Port.ID, core.Options{
				Strategy: strat, WaitMigratePoint: true,
			})
			if err != nil {
				stopErr = err
				return
			}
			down = r.InsertDoneAt - downStart
			total = r.InsertDoneAt - start
		})
		tb.K.RunUntil(30 * time.Minute)
		if stopErr != nil {
			return nil, stopErr
		}
		rows = append(rows, PreCopyRow{
			Label:    "stop+" + strat.String(),
			Downtime: down,
			Total:    total,
			Bytes:    tb.Link.Bytes(),
		})
	}
	return rows, nil
}
