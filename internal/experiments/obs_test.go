package experiments

import (
	"testing"

	"accentmig/internal/core"
	"accentmig/internal/obs"
	"accentmig/internal/workload"
)

// TestTraceTrialPhaseAgreement is the observability acceptance check:
// the flight recorder's PhaseBegin/PhaseEnd spans must agree exactly
// with the metrics recorder's Phases() for the same trial, because the
// manager writes both from the same timestamps.
func TestTraceTrialPhaseAgreement(t *testing.T) {
	tr, sink, err := TraceTrial(Config{}, workload.LispDel, core.PureIOU, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Phases) == 0 {
		t.Fatal("trial recorded no phases")
	}

	type span struct{ begin, end int64 }
	spans := map[string]*span{}
	for _, ev := range sink.Events() {
		switch ev.Kind {
		case obs.PhaseBegin:
			if spans[ev.Name] == nil {
				spans[ev.Name] = &span{begin: -1, end: -1}
			}
			spans[ev.Name].begin = int64(ev.T)
		case obs.PhaseEnd:
			if spans[ev.Name] == nil {
				spans[ev.Name] = &span{begin: -1, end: -1}
			}
			spans[ev.Name].end = int64(ev.T)
		}
	}
	for _, ph := range tr.Phases {
		sp := spans[ph.Name]
		if sp == nil {
			t.Errorf("phase %q has no trace events", ph.Name)
			continue
		}
		if sp.begin != int64(ph.Start) || sp.end != int64(ph.End) {
			t.Errorf("phase %q: trace span [%d,%d] != recorder span [%d,%d]",
				ph.Name, sp.begin, sp.end, int64(ph.Start), int64(ph.End))
		}
	}
	if len(spans) != len(tr.Phases) {
		t.Errorf("trace has %d phase spans, recorder has %d phases", len(spans), len(tr.Phases))
	}
}

// TestTraceTrialKindCoverage checks a lazy-migration trace spans the
// whole stack: ipc (MsgSend/MsgRecv), pager (FaultStart/FaultResolved/
// PageTransfer), and core (PhaseBegin/StateChange) — at least five
// distinct event kinds overall.
func TestTraceTrialKindCoverage(t *testing.T) {
	_, sink, err := TraceTrial(Config{}, workload.LispDel, core.PureIOU, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := sink.CountKinds()
	distinct := 0
	for _, n := range counts {
		if n > 0 {
			distinct++
		}
	}
	if distinct < 5 {
		t.Errorf("only %d distinct event kinds in trace: %v", distinct, counts)
	}
	layers := map[string][]obs.Kind{
		"ipc":   {obs.MsgSend, obs.MsgRecv},
		"pager": {obs.FaultStart, obs.FaultResolved, obs.PageTransfer},
		"core":  {obs.PhaseBegin, obs.StateChange},
	}
	for layer, kinds := range layers {
		found := false
		for _, k := range kinds {
			if counts[k] > 0 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no events from the %s layer in trace: %v", layer, counts)
		}
	}
}

// TestTraceTrialEventOrdering: virtual timestamps must be
// non-decreasing in emission order, and sequence numbers strictly
// increasing — the determinism contract trace consumers rely on.
func TestTraceTrialEventOrdering(t *testing.T) {
	_, sink, err := TraceTrial(Config{}, workload.Minprog, core.ResidentSet, 0)
	if err != nil {
		t.Fatal(err)
	}
	evs := sink.Events()
	if len(evs) == 0 {
		t.Fatal("no events recorded")
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("event %d: seq %d not increasing after %d", i, evs[i].Seq, evs[i-1].Seq)
		}
	}
}

// TestTraceTrialQuantiles: a pure-IOU Lisp-Del trial faults hundreds of
// pages across the network, so the fault-latency quantiles must be
// populated and ordered.
func TestTraceTrialQuantiles(t *testing.T) {
	tr, _, err := TraceTrial(Config{}, workload.LispDel, core.PureIOU, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.FaultP50 <= 0 || tr.FaultP95 <= 0 || tr.FaultP99 <= 0 {
		t.Fatalf("quantiles not populated: p50=%v p95=%v p99=%v", tr.FaultP50, tr.FaultP95, tr.FaultP99)
	}
	if tr.FaultP50 > tr.FaultP95 || tr.FaultP95 > tr.FaultP99 {
		t.Errorf("quantiles out of order: p50=%v p95=%v p99=%v", tr.FaultP50, tr.FaultP95, tr.FaultP99)
	}
}

// TestTrialUntracedHasNoSinkOverhead: without a sink the trial must
// behave identically (nil-sink guard), pinning that tracing is opt-in.
func TestTrialTracedMatchesUntraced(t *testing.T) {
	plain, err := RunTrial(Config{}, workload.LispDel, core.PureIOU, 0)
	if err != nil {
		t.Fatal(err)
	}
	traced, _, err := TraceTrial(Config{}, workload.LispDel, core.PureIOU, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Report.Total != traced.Report.Total || plain.RemoteExec != traced.RemoteExec {
		t.Errorf("tracing changed the simulation: %v/%v vs %v/%v",
			plain.Report.Total, plain.RemoteExec, traced.Report.Total, traced.RemoteExec)
	}
	if plain.BytesTotal != traced.BytesTotal || plain.BytesFault != traced.BytesFault {
		t.Errorf("tracing changed byte counts: %d/%d vs %d/%d",
			plain.BytesTotal, plain.BytesFault, traced.BytesTotal, traced.BytesFault)
	}
}
