package experiments

import (
	"testing"

	"accentmig/internal/workload"
)

func TestProbeGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probe")
	}
	cfg := Config{}
	kinds := workload.Kinds()
	g, err := RunGrid(cfg, kinds)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + FormatFigure("Figure 4-1: Remote Execution Times", "s", Figure41(g, kinds), kinds))
	t.Log("\n" + FormatFigure("Figure 4-2: Overall Migration Speedup vs pure-copy", "%", Figure42(g, kinds), kinds))
	t.Log("\n" + FormatFigure("Figure 4-3: Bytes Transferred", "B", Figure43(g, kinds), kinds))
	t.Log("\n" + FormatFigure("Figure 4-4: Message Handling Costs", "s", Figure44(g, kinds), kinds))
	s, err := Summarize(cfg, g, kinds)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + FormatSummary(s))
}
