// Package experiments reproduces the paper's evaluation section: one
// harness per table and figure, each running migration trials of the
// seven representative processes on a fresh two-machine testbed and
// reporting the same rows or series the paper does.
package experiments

import (
	"fmt"
	"time"

	"accentmig/internal/core"
	"accentmig/internal/faults"
	"accentmig/internal/ipc"
	"accentmig/internal/machine"
	"accentmig/internal/metrics"
	"accentmig/internal/netlink"
	"accentmig/internal/obs"
	"accentmig/internal/pager"
	"accentmig/internal/sim"
	"accentmig/internal/vm"
	"accentmig/internal/workload"
)

// Config tunes the testbed for ablations; the zero value reproduces the
// paper's setup.
type Config struct {
	Machine machine.Config
	Link    netlink.Config
	Tuning  *core.Tuning // nil selects core.DefaultTuning

	// Faults, when non-nil, is the failure scenario for every testbed
	// built from this config: its drop schedule replaces the link's
	// DropProb shorthand and its crashes are armed on the kernel.
	Faults *faults.Plan

	// Recovery, when non-nil, sets the source manager's retry policy
	// (budget, degradation, per-phase deadline) for every migration
	// trial run from this config. Nil keeps the fault-free default:
	// no retries, the manager's default ack deadline.
	Recovery *ResilienceOptions

	// Sink, when non-nil, receives the flight-recorder event stream of
	// every kernel built from this config.
	Sink obs.Sink
}

func (c Config) tuning() core.Tuning {
	if c.Tuning != nil {
		return *c.Tuning
	}
	return core.DefaultTuning()
}

// applyRecovery folds the config's retry policy into migration options.
func (c Config) applyRecovery(opts *core.Options) {
	if c.Recovery == nil {
		return
	}
	opts.AckTimeout = c.Recovery.AckTimeout
	opts.MaxRetries = c.Recovery.MaxRetries
	opts.Degrade = c.Recovery.Degrade
}

// Testbed is the two-machine SPICE pair one trial runs on.
type Testbed struct {
	K        *sim.Kernel
	Src, Dst *machine.Machine
	SrcMgr   *core.Manager
	DstMgr   *core.Manager
	Link     *netlink.Link
	Rec      *metrics.Recorder

	// phaseCrash holds crashes keyed to a migration phase, fired by
	// FirePhase via the source manager's PhaseHook.
	phaseCrash map[string][]faults.Crash
}

// NewTestbed assembles a fresh pair with a shared recorder. A fault
// plan in the config is armed on the new kernel.
func NewTestbed(cfg Config) *Testbed {
	// A faulted run must terminate: the fault-free pager default waits
	// forever for read replies (reliable link), which a crashed backer
	// would turn into a silent wedge. Give it a finite retry budget.
	if cfg.Faults != nil && cfg.Machine.Pager.RetryTimeout == 0 {
		cfg.Machine.Pager.RetryTimeout = 10 * time.Second
	}
	k := sim.New()
	if cfg.Sink != nil {
		k.SetSink(cfg.Sink)
	}
	src := machine.New(k, "src", cfg.Machine)
	dst := machine.New(k, "dst", cfg.Machine)
	link := machine.Connect(src, dst, cfg.Link)
	rec := metrics.NewRecorder(time.Second)
	src.SetRecorder(rec)
	dst.SetRecorder(rec)
	link.SetRecorder(rec)
	srcMgr := core.NewManager(src, cfg.tuning())
	dstMgr := core.NewManager(dst, cfg.tuning())
	src.Net.AddRoute(dstMgr.Port.ID, "dst")
	dst.Net.AddRoute(srcMgr.Port.ID, "src")
	// Integrity repair re-fetches corrupt pages by hash through the
	// same holder-resolver path dedup uses, so either flag wires it.
	if cfg.Machine.Dedup.Enabled || cfg.Machine.Dedup.Integrity {
		WireHolderResolvers(src, dst)
	}
	tb := &Testbed{
		K: k, Src: src, Dst: dst, SrcMgr: srcMgr, DstMgr: dstMgr, Link: link, Rec: rec,
		phaseCrash: make(map[string][]faults.Crash),
	}
	if cfg.Faults != nil {
		tb.ArmFaults(cfg.Faults)
	}
	return tb
}

// WireHolderResolvers gives each machine a nearest-holder resolver
// over the others: a fault on a hash-hinted page that misses the local
// content index asks the first listed peer whose index holds the
// content, falling back to the origin backer when none does. Order the
// machines nearest-first — a resolver is topology, not tuning, which
// is why testbeds wire it rather than machine config. Backer-port
// routes are added eagerly; they are otherwise only learned from IOU
// attachments, which never name a bystander holder.
func WireHolderResolvers(ms ...*machine.Machine) {
	for i, m := range ms {
		peers := make([]*machine.Machine, 0, len(ms)-1)
		for j, o := range ms {
			if j != i {
				peers = append(peers, o)
				m.Net.AddRoute(o.Net.BackingPort(), o.Name)
			}
		}
		m.Pager.SetHolderResolver(func(hash uint64) (ipc.PortID, bool) {
			for _, o := range peers {
				if o.Index.Contains(hash) {
					return o.Net.BackingPort(), true
				}
			}
			return 0, false
		})
	}
}

// ArmFaults applies a fault plan to the testbed: the drop schedule
// drives the link, time-keyed crashes get their own timer procs, and
// phase-keyed crashes hook the source manager's migration phases.
func (tb *Testbed) ArmFaults(plan *faults.Plan) {
	tb.Link.SetFaults(faults.NewInjector(plan, ""))
	for _, c := range plan.Crashes {
		c := c
		if c.AtPhase != "" {
			tb.phaseCrash[c.AtPhase] = append(tb.phaseCrash[c.AtPhase], c)
			continue
		}
		tb.K.Go("fault.crash."+c.Machine, func(p *sim.Proc) {
			p.Sleep(time.Duration(c.At))
			tb.runCrash(p, c)
		})
	}
	if len(tb.phaseCrash) > 0 {
		tb.SrcMgr.PhaseHook = tb.FirePhase
	}
}

// FirePhase triggers any crash keyed to the named phase. The source
// manager calls it as migration phases begin; resilience trial drivers
// call it with "remote" once remote execution starts.
func (tb *Testbed) FirePhase(p *sim.Proc, phase string) {
	cs := tb.phaseCrash[phase]
	if len(cs) == 0 {
		return
	}
	delete(tb.phaseCrash, phase)
	for _, c := range cs {
		tb.runCrash(p, c)
	}
}

// runCrash executes one scheduled crash: under the flush policy the
// surviving machine first dissolves its residual dependencies on the
// dying backer; then the named machine's backing service goes down.
func (tb *Testbed) runCrash(p *sim.Proc, c faults.Crash) {
	var m *machine.Machine
	switch c.Machine {
	case tb.Src.Name:
		m = tb.Src
	case tb.Dst.Name:
		m = tb.Dst
	default:
		return
	}
	if c.Policy == faults.CrashFlush {
		other := tb.Dst
		if m == tb.Dst {
			other = tb.Src
		}
		for _, name := range other.ProcNames() {
			if pr, ok := other.Process(name); ok {
				_, _ = core.DissolveIOUs(p, other, pr)
			}
		}
	}
	m.Net.Crash()
}

// TrialResult is everything measured from one migration trial.
type TrialResult struct {
	Kind     workload.Kind
	Strategy core.Strategy
	Prefetch int

	Report *core.Report

	// RemoteExec is insertion-complete to program-finish (Figure 4-1).
	RemoteExec time.Duration
	// EndToEnd is RIMAS transfer + remote execution (Figure 4-2 basis).
	EndToEnd time.Duration

	// Wire traffic (Figure 4-3, 4-5).
	BytesTotal uint64
	BytesFault uint64
	Series     []metrics.RatePoint
	PeakRate   uint64

	// Message handling (Figure 4-4).
	Messages uint64
	MsgTime  time.Duration

	// Transferred data for Table 4-3: physically shipped pages plus
	// fault-delivered pages.
	DataPages  uint64
	FaultPages uint64

	DestPager pager.Stats
	DestUsage vm.Usage

	// Observed mean fault latencies during the trial (zero if none of
	// that kind occurred).
	RemoteFaultMean time.Duration
	DiskFaultMean   time.Duration

	// Remote (imaginary) fault-resolution latency quantiles from the
	// recorder's log-bucketed histogram; zero if no remote faults
	// occurred.
	FaultP50, FaultP95, FaultP99 time.Duration

	// Phases are the migration phase spans (excise, xfer.core,
	// xfer.rimas, insert) the source manager recorded, sorted by start.
	Phases []metrics.Phase

	// Downtime is the frozen interval: excise-freeze to the first
	// post-insert instruction at the destination.
	Downtime time.Duration

	// ResidualPages is what the source still owes after completion.
	ResidualPages int

	// Resumable-retry and integrity accounting (RESILIENCE.md). A
	// single-attempt trial resumes nothing; the fields stay zero unless
	// the delivery ledger or per-page checksums are enabled.
	ResumedPages  int    // pages rebuilt from the delivery ledger
	ResumedBytes  uint64 // wire bytes those pages did not re-travel
	RepairedPages int    // corrupt installs re-fetched by hash
}

// TransferredRealPct reports the fraction of the RealMem portion that
// physically moved, as Table 4-3's first number.
func (tr *TrialResult) TransferredRealPct() float64 {
	real := float64(workload.PaperNumbers(tr.Kind).RealBytes / 512)
	return 100 * float64(tr.DataPages+tr.FaultPages) / real
}

// TransferredTotalPct is the bracketed Table 4-3 number: the fraction
// of the whole allocated space.
func (tr *TrialResult) TransferredTotalPct() float64 {
	total := float64(workload.PaperNumbers(tr.Kind).TotalBytes / 512)
	return 100 * float64(tr.DataPages+tr.FaultPages) / total
}

// RunTrial migrates representative k under the given strategy and
// prefetch on a fresh testbed and runs it to completion.
func RunTrial(cfg Config, k workload.Kind, strat core.Strategy, prefetch int) (*TrialResult, error) {
	tb := NewTestbed(cfg)
	built, err := workload.Build(tb.Src, k)
	if err != nil {
		return nil, err
	}
	tb.Src.Start(built.Proc)

	tr := &TrialResult{Kind: k, Strategy: strat, Prefetch: prefetch}
	var migErr error
	var doneAt time.Duration
	tb.K.Go("trial-driver", func(p *sim.Proc) {
		opts := core.Options{
			Strategy:         strat,
			Prefetch:         prefetch,
			WaitMigratePoint: true,
		}
		cfg.applyRecovery(&opts)
		rep, err := tb.SrcMgr.MigrateTo(p, k.String(), tb.DstMgr.Port.ID, opts)
		if err != nil {
			migErr = err
			return
		}
		tr.Report = rep
		npr, ok := tb.Dst.Process(k.String())
		if !ok {
			migErr = fmt.Errorf("experiments: %v not on destination after migration", k)
			return
		}
		// Crashes keyed to the "remote" phase fire once remote execution
		// has begun (the manager's hook only covers source-side phases).
		tb.FirePhase(p, "remote")
		if err := npr.WaitDone(p); err != nil {
			migErr = fmt.Errorf("experiments: %v remote execution: %w", k, err)
			return
		}
		doneAt = p.Now()
	})
	tb.K.Run()
	if migErr != nil {
		return nil, migErr
	}
	if tr.Report == nil {
		return nil, fmt.Errorf("experiments: %v trial never completed", k)
	}

	tr.RemoteExec = doneAt - tr.Report.InsertDoneAt
	tr.EndToEnd = tr.Report.RIMASTransfer + tr.RemoteExec
	tr.BytesTotal = tb.Rec.BytesTotal()
	tr.BytesFault = tb.Rec.BytesFault()
	tr.Series = tb.Rec.Series()
	tr.PeakRate = tb.Rec.PeakRate()
	tr.Messages = tb.Rec.Messages()
	tr.MsgTime = tb.Rec.MessageTime()
	tr.DataPages = tb.Rec.Counter("pages.shipped.data")
	tr.FaultPages = tb.Rec.Counter("pages.shipped.fault")
	tr.DestPager = tb.Dst.Pager.Stats()
	tr.RemoteFaultMean = tb.Rec.Dist("latency.fault.imag").Mean()
	tr.DiskFaultMean = tb.Rec.Dist("latency.fault.disk").Mean()
	imagDist := tb.Rec.Dist("latency.fault.imag")
	tr.FaultP50 = imagDist.Quantile(0.50)
	tr.FaultP95 = imagDist.Quantile(0.95)
	tr.FaultP99 = imagDist.Quantile(0.99)
	tr.Phases = tb.Rec.Phases()
	tr.Downtime = tb.Rec.Downtime()
	if npr, ok := tb.Dst.Process(k.String()); ok {
		tr.DestUsage = npr.AS.Usage()
	}
	tr.ResidualPages = tb.Src.Net.Store().TotalRemaining()
	tr.ResumedPages = tr.Report.Insert.ResumedPages
	tr.ResumedBytes = uint64(tr.ResumedPages) * uint64(tb.Src.PageSize())
	tr.RepairedPages = tr.Report.Insert.RepairedPages
	return tr, nil
}

// GridKey addresses one cell of the evaluation grid.
type GridKey struct {
	Kind     workload.Kind
	Strategy core.Strategy
	Prefetch int
}

// Grid holds the full evaluation sweep the figures share: pure-copy
// once per workload, IOU and RS at each prefetch value.
type Grid struct {
	Cells map[GridKey]*TrialResult
}

// Cell fetches one trial result.
func (g *Grid) Cell(k workload.Kind, s core.Strategy, pf int) *TrialResult {
	return g.Cells[GridKey{k, s, pf}]
}

// RunGrid sweeps the full paper grid for the given workloads on the
// default engine: cells simulate concurrently on the worker pool and
// are memoized, so later harnesses needing the same cells reuse them.
// The result is deep-equal to RunGridSeq for the same config and seed.
func RunGrid(cfg Config, kinds []workload.Kind) (*Grid, error) {
	return Default.RunGrid(cfg, kinds)
}
