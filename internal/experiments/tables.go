package experiments

import (
	"fmt"
	"strings"
	"time"

	"accentmig/internal/core"
	"accentmig/internal/vm"
	"accentmig/internal/workload"
)

// Row41 is one Table 4-1 row: address-space composition in bytes.
type Row41 struct {
	Kind     workload.Kind
	Real     uint64
	RealZ    uint64
	Total    uint64
	PctRealZ float64
}

// Table41 measures address-space composition at migration time by
// building each representative and scanning its space.
func Table41(cfg Config) ([]Row41, error) {
	var rows []Row41
	for _, k := range workload.Kinds() {
		tb := NewTestbed(cfg)
		b, err := workload.Build(tb.Src, k)
		if err != nil {
			return nil, err
		}
		u := b.Proc.AS.Usage()
		rows = append(rows, Row41{
			Kind:     k,
			Real:     u.Real,
			RealZ:    u.RealZero,
			Total:    u.Total,
			PctRealZ: u.PctRealZero(),
		})
	}
	return rows, nil
}

// FormatTable41 renders the rows as the paper prints them.
func FormatTable41(rows []Row41) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4-1: Representative Address Space Sizes in Bytes\n")
	fmt.Fprintf(&b, "%-10s %13s %15s %15s %9s\n", "", "Real", "RealZ", "Total", "% RealZ")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %13d %15d %15d %9.1f\n", r.Kind, r.Real, r.RealZ, r.Total, r.PctRealZ)
	}
	return b.String()
}

// Row42 is one Table 4-2 row: resident sets.
type Row42 struct {
	Kind     workload.Kind
	RSSize   uint64
	PctReal  float64
	PctTotal float64
}

// Table42 measures resident sets at migration time: each
// representative is run to its migration point and migrated under the
// resident-set strategy (destination held), so the RS size is what the
// excision actually collapsed as resident — the same quantity the
// paper's instrumented migrations report. The trials run concurrently
// on the default engine and are shared with Table 4-5's RS column.
func Table42(cfg Config) ([]Row42, error) {
	kinds := workload.Kinds()
	pairs := make([]holdPair, len(kinds))
	for i, k := range kinds {
		pairs[i] = holdPair{kind: k, strat: core.ResidentSet}
	}
	hrs, err := Default.holdTrials(cfg, pairs)
	if err != nil {
		return nil, err
	}
	pageSize := cfg.Machine.PageSize
	if pageSize == 0 {
		pageSize = vm.DefaultPageSize
	}
	var rows []Row42
	for i, k := range kinds {
		hr := hrs[i]
		rs := uint64(hr.Report.ResidentPages) * uint64(pageSize)
		rows = append(rows, Row42{
			Kind:     k,
			RSSize:   rs,
			PctReal:  100 * float64(rs) / float64(hr.Usage.Real),
			PctTotal: 100 * float64(rs) / float64(hr.Usage.Total),
		})
	}
	return rows, nil
}

// FormatTable42 renders Table 4-2.
func FormatTable42(rows []Row42) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4-2: Representative Resident Sets\n")
	fmt.Fprintf(&b, "%-10s %10s %10s %10s\n", "", "RS Size", "% of Real", "% of Total")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %10d %10.1f %10.3f\n", r.Kind, r.RSSize, r.PctReal, r.PctTotal)
	}
	return b.String()
}

// Row43 is one Table 4-3 row: percent of address space accessed under
// the lazy strategies (pure-copy is 100% of Real by definition).
type Row43 struct {
	Kind     workload.Kind
	IOUReal  float64 // % of RealMem shipped under pure-IOU
	IOUTotal float64
	RSReal   float64 // % of RealMem shipped under RS
	RSTotal  float64
}

// Table43 runs IOU and RS trials (no prefetch) and measures what
// fraction of each space actually moved. The cells run concurrently on
// the default engine and are the same cells Figures 4-1..4-4 reuse.
func Table43(cfg Config, kinds []workload.Kind) ([]Row43, error) {
	var keys []GridKey
	for _, k := range kinds {
		keys = append(keys, GridKey{k, core.PureIOU, 0}, GridKey{k, core.ResidentSet, 0})
	}
	trs, err := Default.Trials(cfg, keys)
	if err != nil {
		return nil, err
	}
	var rows []Row43
	for i, k := range kinds {
		iou, rs := trs[2*i], trs[2*i+1]
		rows = append(rows, Row43{
			Kind:     k,
			IOUReal:  iou.TransferredRealPct(),
			IOUTotal: iou.TransferredTotalPct(),
			RSReal:   rs.TransferredRealPct(),
			RSTotal:  rs.TransferredTotalPct(),
		})
	}
	return rows, nil
}

// FormatTable43 renders Table 4-3.
func FormatTable43(rows []Row43) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4-3: Percent of Address Space Accessed\n")
	fmt.Fprintf(&b, "%-10s %18s %18s\n", "", "IOU", "RS")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %8.1f [%7.3f] %8.1f [%7.3f]\n",
			r.Kind, r.IOUReal, r.IOUTotal, r.RSReal, r.RSTotal)
	}
	return b.String()
}

// Row44 is one Table 4-4 row: excision timing breakdown, plus the
// §4.3.1 insertion time and the resulting process downtime.
type Row44 struct {
	Kind    workload.Kind
	AMap    time.Duration
	RIMAS   time.Duration
	Overall time.Duration
	Insert  time.Duration
	// Down is the measured downtime of a full (unheld) pure-copy
	// migration: excise-freeze to the first instruction executed at the
	// destination.
	Down time.Duration
}

// Table44 excises each representative (the breakdown is strategy-
// independent; pure-copy is used so insertion covers arrived data, as
// in the paper's testbed). The trials run concurrently on the default
// engine and are shared with Table 4-5's Copy column.
func Table44(cfg Config) ([]Row44, error) {
	kinds := workload.Kinds()
	pairs := make([]holdPair, len(kinds))
	for i, k := range kinds {
		pairs[i] = holdPair{kind: k, strat: core.PureCopy}
	}
	hrs, err := Default.holdTrials(cfg, pairs)
	if err != nil {
		return nil, err
	}
	// Downtime needs a destination that actually resumes, so it comes
	// from the full pure-copy grid cells (shared with the figures).
	keys := make([]GridKey, len(kinds))
	for i, k := range kinds {
		keys[i] = GridKey{k, core.PureCopy, 0}
	}
	trs, err := Default.Trials(cfg, keys)
	if err != nil {
		return nil, err
	}
	var rows []Row44
	for i, k := range kinds {
		rep := hrs[i].Report
		rows = append(rows, Row44{
			Kind:    k,
			AMap:    rep.Excise.AMap,
			RIMAS:   rep.Excise.RIMAS,
			Overall: rep.Excise.Overall,
			Insert:  rep.Insert.Overall,
			Down:    trs[i].Downtime,
		})
	}
	return rows, nil
}

// FormatTable44 renders Table 4-4 (with the insertion column from
// §4.3.1 appended).
func FormatTable44(rows []Row44) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4-4: Process Excision Times in Seconds (+ §4.3.1 insertion, downtime)\n")
	fmt.Fprintf(&b, "%-10s %8s %8s %8s %8s %8s\n", "", "AMap", "RIMAS", "Overall", "Insert", "Down")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %8.2f %8.2f %8.2f %8.2f %8.2f\n",
			r.Kind, r.AMap.Seconds(), r.RIMAS.Seconds(), r.Overall.Seconds(), r.Insert.Seconds(), r.Down.Seconds())
	}
	return b.String()
}

// Row45 is one Table 4-5 row: RIMAS transfer times per strategy, plus
// the ≈1 s Core message time for reference.
type Row45 struct {
	Kind workload.Kind
	IOU  time.Duration
	RS   time.Duration
	Copy time.Duration
	Core time.Duration
}

// Table45 measures address-space transfer times under all three
// strategies, with the destination held so execution doesn't overlap.
// The trials run concurrently on the default engine; the RS and Copy
// cells are shared with Tables 4-2 and 4-4.
func Table45(cfg Config, kinds []workload.Kind) ([]Row45, error) {
	strats := core.Strategies()
	var pairs []holdPair
	for _, k := range kinds {
		for _, strat := range strats {
			pairs = append(pairs, holdPair{kind: k, strat: strat})
		}
	}
	hrs, err := Default.holdTrials(cfg, pairs)
	if err != nil {
		return nil, err
	}
	var rows []Row45
	for i, k := range kinds {
		row := Row45{Kind: k}
		for j, strat := range strats {
			rep := hrs[i*len(strats)+j].Report
			switch strat {
			case core.PureIOU:
				row.IOU = rep.RIMASTransfer
			case core.ResidentSet:
				row.RS = rep.RIMASTransfer
			case core.PureCopy:
				row.Copy = rep.RIMASTransfer
			}
			row.Core = rep.CoreTransfer
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable45 renders Table 4-5.
func FormatTable45(rows []Row45) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4-5: Address Space Transfer Times in Seconds (+ Core msg)\n")
	fmt.Fprintf(&b, "%-10s %9s %8s %8s %8s\n", "", "Pure-IOU", "RS", "Copy", "Core")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %9.2f %8.1f %8.1f %8.2f\n",
			r.Kind, r.IOU.Seconds(), r.RS.Seconds(), r.Copy.Seconds(), r.Core.Seconds())
	}
	return b.String()
}
