package experiments

import (
	"fmt"
	"strings"
	"time"

	"accentmig/internal/core"
	"accentmig/internal/machine"
	"accentmig/internal/metrics"
	"accentmig/internal/sim"
	"accentmig/internal/trace"
	"accentmig/internal/vm"
	"accentmig/internal/workload"
)

// dedupModes are the store configurations the sweep crosses with: off
// is the paper-faithful baseline (byte-identical to every other
// experiment), dedup adds manifest elision and fault hints, and
// dedup+comp layers the modeled compressor on whatever still ships.
var dedupModes = []struct {
	Name string
	Cfg  vm.DedupConfig
}{
	{"off", vm.DedupConfig{}},
	{"dedup", vm.DedupConfig{Enabled: true}},
	{"dedup+comp", vm.DedupConfig{Enabled: true, Compress: true}},
}

// dedupStrategies spans the ladder the bytes-on-wire story cares
// about: pure-copy ships everything (maximum elision opportunity),
// the resident set ships half, pure-IOU ships nothing up front (the
// manifest only seeds fault hints).
var dedupStrategies = []core.Strategy{core.PureCopy, core.ResidentSet, core.PureIOU}

// DedupRow is one cell of the content-addressed store sweep.
type DedupRow struct {
	Mode     string
	Kind     workload.Kind
	Strategy core.Strategy
	// Xfer is the RIMAS transfer time, EndToEnd adds remote execution,
	// Bytes is total wire traffic for the trial (manifest round trip
	// included — elision has to out-earn its own protocol).
	Xfer     time.Duration
	EndToEnd time.Duration
	Bytes    uint64
	// Elided counts pages rebuilt at the destination instead of
	// shipped; Local and Holder count faults served from the content
	// index rather than the origin backer.
	Elided int
	Local  uint64
	Holder uint64
	Down   time.Duration
}

// NearestHolderRow compares fault service with and without the
// nearest-holder path on a three-machine topology where a bystander
// near the destination already holds the faulting process's content.
type NearestHolderRow struct {
	Mode      string
	FaultMean time.Duration
	FaultP95  time.Duration
	Local     uint64
	Holder    uint64
}

// DedupTable holds the full content-addressed store experiment.
type DedupTable struct {
	Kinds  []workload.Kind
	Rows   []DedupRow
	Holder []NearestHolderRow
}

// Dedup sweeps store mode x strategy x workload through the memoized
// engine, then runs the three-machine nearest-holder comparison. The
// off column runs the untouched transfer path, so it is byte-identical
// to the default experiments.
func (e *Engine) Dedup(cfg Config, kinds []workload.Kind) (*DedupTable, error) {
	cfg = cfg.forParallel(e.Workers())
	type cell struct {
		cfg   Config
		mode  string
		kind  workload.Kind
		strat core.Strategy
	}
	var cells []cell
	for _, m := range dedupModes {
		c := cfg
		c.Machine.Dedup = m.Cfg
		for _, kind := range kinds {
			for _, strat := range dedupStrategies {
				cells = append(cells, cell{cfg: c, mode: m.Name, kind: kind, strat: strat})
			}
		}
	}

	out := make([]*TrialResult, len(cells))
	errs := make([]error, len(cells))
	e.fanOut(len(cells), func(i int) {
		c := cells[i]
		out[i], errs[i] = e.Trial(c.cfg, c.kind, c.strat, 0)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	t := &DedupTable{Kinds: kinds}
	for i, c := range cells {
		tr := out[i]
		t.Rows = append(t.Rows, DedupRow{
			Mode:     c.mode,
			Kind:     c.kind,
			Strategy: c.strat,
			Xfer:     tr.Report.RIMASTransfer,
			EndToEnd: tr.EndToEnd,
			Bytes:    tr.BytesTotal,
			Elided:   tr.Report.Insert.ElidedPages,
			Local:    tr.DestPager.LocalServes,
			Holder:   tr.DestPager.HolderServes,
			Down:     tr.Downtime,
		})
	}
	holder, err := NearestHolder(cfg)
	if err != nil {
		return nil, err
	}
	t.Holder = holder
	return t, nil
}

// Dedup runs the content-addressed store experiment on the default
// engine.
func Dedup(cfg Config, kinds []workload.Kind) (*DedupTable, error) {
	return Default.Dedup(cfg, kinds)
}

// nearestHolderPages sizes the migrating process in the three-machine
// comparison.
const nearestHolderPages = 64

// NearestHolder quantifies the nearest-holder fault path. Three
// machines: origin and the destination sit across a slow link (8x the
// base latency), a bystander sits next to the destination on a fast
// one. A seed process carries the content set to the bystander; then
// an identical-content process migrates origin->dst by pure IOU and
// touches every page. With the store off every fault crosses the slow
// link to the origin backer; with it on, the manifest's hash hints let
// the destination fetch each page from the bystander next door.
func NearestHolder(cfg Config) ([]NearestHolderRow, error) {
	var rows []NearestHolderRow
	for _, mode := range []struct {
		name  string
		dedup bool
	}{{"origin backer", false}, {"nearest holder", true}} {
		row, err := runNearestHolder(cfg, mode.dedup)
		if err != nil {
			return nil, err
		}
		row.Mode = mode.name
		rows = append(rows, row)
	}
	return rows, nil
}

func runNearestHolder(cfg Config, dedup bool) (NearestHolderRow, error) {
	var row NearestHolderRow
	k := sim.New()
	mcfg := cfg.Machine
	mcfg.Dedup = vm.DedupConfig{Enabled: dedup}
	origin := machine.New(k, "origin", mcfg)
	near := machine.New(k, "near", mcfg)
	dst := machine.New(k, "dst", mcfg)

	nearLink := cfg.Link
	farLink := cfg.Link
	if farLink.Latency == 0 {
		farLink.Latency = 5 * time.Millisecond
	}
	farLink.Latency *= 8
	machine.Connect(origin, dst, farLink)
	machine.Connect(origin, near, farLink)
	machine.Connect(near, dst, nearLink)

	ms := []*machine.Machine{origin, near, dst}
	mgrs := make([]*core.Manager, len(ms))
	recs := make([]*metrics.Recorder, len(ms))
	for i, m := range ms {
		mgrs[i] = core.NewManager(m, cfg.tuning())
	}
	for i, m := range ms {
		recs[i] = metrics.NewRecorder(time.Second)
		m.SetRecorder(recs[i])
		for j := range ms {
			if i != j {
				m.Net.AddRoute(mgrs[j].Port.ID, ms[j].Name)
			}
		}
	}
	if dedup {
		// Listed nearest-first from the destination's point of view.
		WireHolderResolvers(near, origin, dst)
	}

	ps := origin.PageSize()
	content := func(i int) []byte {
		d := make([]byte, ps)
		for j := range d {
			d[j] = byte(i*31 + j*7 + 1)
		}
		return d
	}
	build := func(name string, ops []trace.Op) (*machine.Process, error) {
		pr, err := origin.NewProcess(name, 1)
		if err != nil {
			return nil, err
		}
		reg, err := pr.AS.Validate(0, uint64(nearestHolderPages*ps), "data")
		if err != nil {
			return nil, err
		}
		for i := 0; i < nearestHolderPages; i++ {
			pg := reg.Seg.Materialize(uint64(i), content(i))
			pg.State.OnDisk = true
		}
		pr.Program = &trace.Program{Ops: ops}
		return pr, nil
	}

	seed, err := build("seed", []trace.Op{trace.MigratePoint{}})
	if err != nil {
		return row, err
	}
	jobOps := []trace.Op{trace.MigratePoint{}}
	for i := 0; i < nearestHolderPages; i++ {
		jobOps = append(jobOps, trace.Touch{Addr: vm.Addr(i * ps)})
	}
	job, err := build("job", jobOps)
	if err != nil {
		return row, err
	}
	origin.Start(seed)
	origin.Start(job)

	var runErr error
	k.Go("driver", func(p *sim.Proc) {
		// Seed the bystander's content index; the held process keeps its
		// frames (and so the index entries) live for the whole trial.
		if _, err := mgrs[0].MigrateTo(p, "seed", mgrs[1].Port.ID, core.Options{
			Strategy: core.PureCopy, WaitMigratePoint: true, HoldAtDest: true,
		}); err != nil {
			runErr = err
			return
		}
		if _, err := mgrs[0].MigrateTo(p, "job", mgrs[2].Port.ID, core.Options{
			Strategy: core.PureIOU, WaitMigratePoint: true,
		}); err != nil {
			runErr = err
			return
		}
		npr, ok := dst.Process("job")
		if !ok {
			runErr = fmt.Errorf("experiments: job not on destination")
			return
		}
		runErr = npr.WaitDone(p)
	})
	k.Run()
	if runErr != nil {
		return row, runErr
	}

	st := dst.Pager.Stats()
	dist := recs[2].Dist("latency.fault.imag")
	row.FaultMean = dist.Mean()
	row.FaultP95 = dist.Quantile(0.95)
	row.Local = st.LocalServes
	row.Holder = st.HolderServes
	return row, nil
}

// FormatDedup renders the store sweep per workload (savings are bytes
// on wire relative to the same strategy's off row) and the
// nearest-holder comparison.
func FormatDedup(t *DedupTable) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Content-addressed page store: bytes on wire by mode\n")

	base := map[workload.Kind]map[core.Strategy]uint64{}
	for _, r := range t.Rows {
		if r.Mode == "off" {
			if base[r.Kind] == nil {
				base[r.Kind] = map[core.Strategy]uint64{}
			}
			base[r.Kind][r.Strategy] = r.Bytes
		}
	}
	for _, kind := range t.Kinds {
		fmt.Fprintf(&b, "\n%s\n", kind)
		fmt.Fprintf(&b, "%12s %-11s %10s %7s %7s %10s %7s %7s\n",
			"Strategy", "Mode", "Bytes", "Saved", "Elided", "Xfer", "Local", "Holder")
		for _, s := range dedupStrategies {
			for _, m := range dedupModes {
				var row *DedupRow
				for i := range t.Rows {
					r := &t.Rows[i]
					if r.Kind == kind && r.Strategy == s && r.Mode == m.Name {
						row = r
						break
					}
				}
				if row == nil {
					continue
				}
				saved := "-"
				if bx := base[kind][s]; bx > 0 && row.Mode != "off" {
					saved = fmt.Sprintf("%.1f%%", 100*(1-float64(row.Bytes)/float64(bx)))
				}
				fmt.Fprintf(&b, "%12s %-11s %10d %7s %7d %10s %7d %7d\n",
					s, row.Mode, row.Bytes, saved, row.Elided,
					row.Xfer.Round(time.Millisecond), row.Local, row.Holder)
			}
		}
	}

	if len(t.Holder) > 0 {
		fmt.Fprintf(&b, "\nNearest-holder faults: pure-IOU over a slow origin link, bystander holds the content\n\n")
		fmt.Fprintf(&b, "%-16s %12s %12s %7s %7s\n", "Mode", "FaultMean", "FaultP95", "Local", "Holder")
		for _, r := range t.Holder {
			fmt.Fprintf(&b, "%-16s %12s %12s %7d %7d\n",
				r.Mode, r.FaultMean.Round(time.Microsecond), r.FaultP95.Round(time.Microsecond),
				r.Local, r.Holder)
		}
		if len(t.Holder) == 2 && t.Holder[1].FaultMean > 0 {
			fmt.Fprintf(&b, "stall improvement: %.2fx\n",
				float64(t.Holder[0].FaultMean)/float64(t.Holder[1].FaultMean))
		}
	}
	return b.String()
}
