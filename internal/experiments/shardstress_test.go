package experiments

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

// ssTestOpts is a scaled-down stress configuration: 8 machines, a short
// span, still enough load for dozens of arrivals and a handful of
// concurrent migrations.
var ssTestOpts = ShardStressOptions{
	Machines:     8,
	Span:         4 * time.Second,
	ArrivalEvery: 250 * time.Millisecond,
	ProcOps:      40,
}

// TestShardStressDeterminism is the scenario-level byte-identity gate
// from the issue: sharded runs at 2, 4, and 8 workers must DeepEqual
// the sequential-kernel run.
func TestShardStressDeterminism(t *testing.T) {
	seq, _, err := RunShardStress(ssTestOpts)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		o := ssTestOpts
		o.Shards = workers
		got, perf, err := RunShardStress(o)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, seq) {
			t.Errorf("%d-worker result differs from sequential kernel", workers)
		}
		if !perf.Sharded || perf.Windows == 0 || perf.CrossEvents == 0 {
			t.Errorf("%d-worker run did not exercise the window scheduler: %+v", workers, perf)
		}
	}
}

// TestShardStressInvariants checks the scenario's conservation laws on
// the sequential run: every spawned process finishes somewhere, every
// accepted migration either completes or is cancelled, and the load is
// actually a stress (migrations, rejections for the inflight cap, and
// wire traffic all happen).
func TestShardStressInvariants(t *testing.T) {
	r, _, err := RunShardStress(ssTestOpts)
	if err != nil {
		t.Fatal(err)
	}
	if r.Finished != r.Spawned {
		t.Errorf("Finished = %d, want %d (every process must run to completion somewhere)", r.Finished, r.Spawned)
	}
	if r.Completed != r.Accepted-r.Cancelled {
		t.Errorf("Completed = %d, want Accepted-Cancelled = %d (wedged transfer?)", r.Completed, r.Accepted-r.Cancelled)
	}
	if r.Offers != r.Accepted+r.Rejected {
		t.Errorf("Offers = %d, want Accepted+Rejected = %d", r.Offers, r.Accepted+r.Rejected)
	}
	if r.Completed == 0 {
		t.Error("no migrations completed; the stress is not stressing")
	}
	if r.BytesOnWire == 0 || r.Frames == 0 {
		t.Error("no wire traffic recorded")
	}
	if len(r.Migrations) != r.Completed {
		t.Errorf("%d migration records for %d completions", len(r.Migrations), r.Completed)
	}
	for i, m := range r.Migrations {
		if m.ResumeAt <= m.FreezeAt || m.FreezeAt <= m.OfferAt {
			t.Errorf("migration %d (%s): times out of order: offer %v freeze %v resume %v", i, m.Name, m.OfferAt, m.FreezeAt, m.ResumeAt)
		}
		if m.Src == m.Dst {
			t.Errorf("migration %d (%s): src == dst == %d", i, m.Name, m.Src)
		}
	}
	if r.DownP50 <= 0 || r.DownP99 < r.DownP50 || r.DownMax < r.DownP99 {
		t.Errorf("downtime quantiles out of order: p50 %v p99 %v max %v", r.DownP50, r.DownP99, r.DownMax)
	}
	var bytesOut uint64
	for _, pm := range r.PerMachine {
		bytesOut += pm.BytesOut
		if pm.CPUBusy <= 0 {
			t.Errorf("machine %s reports no CPU time", pm.Name)
		}
	}
	if bytesOut != r.BytesOnWire {
		t.Errorf("per-machine bytes %d != total %d", bytesOut, r.BytesOnWire)
	}
}

// TestShardTrialMemoized: the engine caches the scenario under a key
// that erases the worker count, so a sharded request is served by the
// sequential run's cached result (and vice versa).
func TestShardTrialMemoized(t *testing.T) {
	e := NewEngine(1)
	a, err := e.ShardTrial(ssTestOpts)
	if err != nil {
		t.Fatal(err)
	}
	o := ssTestOpts
	o.Shards = 4
	b, err := e.ShardTrial(o)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("ShardTrial at a different worker count did not hit the memo cache")
	}
}

// TestShardTrialDiskRoundTrip: the scenario result survives the
// persistent cache — a second engine with the same disk serves it
// without resimulating (the payloads are pointer-distinct but equal).
func TestShardTrialDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d1, err := OpenDiskCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	e1 := NewEngine(1)
	e1.SetDisk(d1)
	a, err := e1.ShardTrial(ssTestOpts)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Stats().Writes == 0 {
		t.Fatal("no disk write for the shard trial")
	}

	d2, err := OpenDiskCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	e2 := NewEngine(1)
	e2.SetDisk(d2)
	b, err := e2.ShardTrial(ssTestOpts)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Stats().Hits != 1 {
		t.Errorf("disk hits = %d, want 1", d2.Stats().Hits)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("disk round trip changed the shard-stress result")
	}
}

// TestShardStressReport: the experiment harness runs end to end and
// asserts its own identity check.
func TestShardStressReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale shardstress experiment in -short mode")
	}
	out, err := ShardStress(NewEngine(1), 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"machines", "byte-identical to sequential: true", "barrier stall"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
