package experiments

import (
	"fmt"
	"strings"
	"time"

	"accentmig/internal/core"
	"accentmig/internal/machine"
	"accentmig/internal/netlink"
	"accentmig/internal/netmsg"
	"accentmig/internal/sim"
	"accentmig/internal/trace"
	"accentmig/internal/vm"
)

// AblationRow is one point of a design-choice sweep.
type AblationRow struct {
	Label      string
	Transfer   time.Duration // RIMAS transfer
	RemoteExec time.Duration
	EndToEnd   time.Duration
	Bytes      uint64
}

// FormatAblation renders a sweep.
func FormatAblation(title string, rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-16s %10s %10s %10s %12s\n", "", "transfer", "exec", "end2end", "bytes")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %9.2fs %9.2fs %9.2fs %12d\n",
			r.Label, r.Transfer.Seconds(), r.RemoteExec.Seconds(), r.EndToEnd.Seconds(), r.Bytes)
	}
	return b.String()
}

// syntheticTrial migrates a synthetic process — realPages of data, a
// sequential post-phase touching touchedPages — under the given
// configuration and strategy. Unlike the representatives, it works at
// any page size and network speed, which is what the ablations need.
func syntheticTrial(cfg Config, realPages, touchedPages int, strat core.Strategy, prefetch int) (*TrialResult, error) {
	tb := NewTestbed(cfg)
	ps := uint64(tb.Src.PageSize())
	pr, err := tb.Src.NewProcess("synthetic", 2)
	if err != nil {
		return nil, err
	}
	reg, err := pr.AS.Validate(0, uint64(realPages)*ps, "data")
	if err != nil {
		return nil, err
	}
	for i := 0; i < realPages; i++ {
		data := make([]byte, ps)
		for j := range data {
			data[j] = byte(i + j)
		}
		pg := reg.Seg.Materialize(uint64(i), data)
		pg.State.OnDisk = true
	}
	var res []vm.Addr
	for i := 0; i < realPages/4; i++ {
		res = append(res, vm.Addr(uint64(i)*ps))
	}
	if err := tb.Src.MakeResident(pr, res); err != nil {
		return nil, err
	}
	pr.Program = &trace.Program{Ops: []trace.Op{
		trace.MigratePoint{},
		trace.SeqScan{Start: 0, Bytes: uint64(touchedPages) * ps, PerTouch: 10 * time.Millisecond},
		trace.Compute{D: time.Second},
	}}
	tb.Src.Start(pr)

	tr := &TrialResult{Strategy: strat, Prefetch: prefetch}
	var migErr error
	var doneAt time.Duration
	tb.K.Go("driver", func(p *sim.Proc) {
		rep, err := tb.SrcMgr.MigrateTo(p, "synthetic", tb.DstMgr.Port.ID, core.Options{
			Strategy:         strat,
			Prefetch:         prefetch,
			WaitMigratePoint: true,
		})
		if err != nil {
			migErr = err
			return
		}
		tr.Report = rep
		npr, _ := tb.Dst.Process("synthetic")
		if npr == nil {
			migErr = fmt.Errorf("experiments: synthetic process lost")
			return
		}
		if err := npr.WaitDone(p); err != nil {
			migErr = err
			return
		}
		doneAt = p.Now()
	})
	tb.K.Run()
	if migErr != nil {
		return nil, migErr
	}
	tr.RemoteExec = doneAt - tr.Report.InsertDoneAt
	tr.EndToEnd = tr.Report.RIMASTransfer + tr.RemoteExec
	tr.BytesTotal = tb.Rec.BytesTotal()
	return tr, nil
}

func ablate(tr *TrialResult, label string) AblationRow {
	return AblationRow{
		Label:      label,
		Transfer:   tr.Report.RIMASTransfer,
		RemoteExec: tr.RemoteExec,
		EndToEnd:   tr.EndToEnd,
		Bytes:      tr.BytesTotal,
	}
}

// PageSizeAblation sweeps the VM page size: smaller pages mean more,
// cheaper faults; larger pages amortize the fault round trip but haul
// more dead weight per miss.
func PageSizeAblation(pageSizes []int) ([]AblationRow, error) {
	var rows []AblationRow
	for _, ps := range pageSizes {
		cfg := Config{}
		cfg.Machine.PageSize = ps
		// Keep the byte volume constant across page sizes.
		realPages := 256 * 1024 / ps
		tr, err := syntheticTrial(cfg, realPages, realPages/4, core.PureIOU, 1)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ablate(tr, fmt.Sprintf("page=%dB", ps)))
	}
	return rows, nil
}

// BandwidthAblation sweeps the link rate to find where pure-copy
// overtakes copy-on-reference: as the wire gets fast, shipping
// everything up front stops being the bottleneck while the per-fault
// round trip cost remains.
func BandwidthAblation(rates []int) ([]AblationRow, error) {
	var rows []AblationRow
	for _, bps := range rates {
		for _, strat := range []core.Strategy{core.PureIOU, core.PureCopy} {
			cfg := Config{}
			cfg.Link = netlink.Config{BytesPerSecond: bps}
			tr, err := syntheticTrial(cfg, 512, 128, strat, 0)
			if err != nil {
				return nil, err
			}
			rows = append(rows, ablate(tr, fmt.Sprintf("%dKB/s/%s", bps/1024, strat)))
		}
	}
	return rows, nil
}

// IOUCacheAblation compares normal NetMsgServer IOU caching against a
// server that refuses to cache — without a backer, lazy shipment
// degenerates into physical copy at migration time, demonstrating that
// the cache is the mechanism that makes IOUs possible at all (§2.4).
func IOUCacheAblation() ([]AblationRow, error) {
	var rows []AblationRow
	for _, disable := range []bool{false, true} {
		cfg := Config{}
		cfg.Machine.Net = netmsg.Config{DisableIOUCache: disable}
		tr, err := syntheticTrial(cfg, 512, 128, core.PureIOU, 0)
		if err != nil {
			return nil, err
		}
		label := "cache-on"
		if disable {
			label = "cache-off"
		}
		rows = append(rows, ablate(tr, label))
	}
	return rows, nil
}

// CopyThresholdAblation sweeps the IPC copy/map threshold (§2.1): a
// huge threshold forces physical copies of large messages inside each
// machine, inflating migration-time costs.
func CopyThresholdAblation(thresholds []int) ([]AblationRow, error) {
	var rows []AblationRow
	for _, th := range thresholds {
		cfg := Config{}
		cfg.Machine.IPC.CopyThreshold = th
		tr, err := syntheticTrial(cfg, 512, 128, core.PureCopy, 0)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ablate(tr, fmt.Sprintf("thresh=%dB", th)))
	}
	return rows, nil
}

// PrefetchAblation sweeps prefetch on a sequential synthetic workload.
func PrefetchAblation(values []int) ([]AblationRow, error) {
	var rows []AblationRow
	for _, pf := range values {
		tr, err := syntheticTrial(Config{}, 512, 256, core.PureIOU, pf)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ablate(tr, fmt.Sprintf("PF%d", pf)))
	}
	return rows, nil
}

// Guard: ablations use machine knobs that must keep existing.
var _ = machine.Config{}
