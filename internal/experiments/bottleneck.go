package experiments

import (
	"fmt"
	"strings"

	"accentmig/internal/core"
	"accentmig/internal/prof"
	"accentmig/internal/workload"
)

// BottleneckRow is one cell of the bottleneck sweep: a traced
// migration rebuilt as a critical-path profile.
type BottleneckRow struct {
	Kind     workload.Kind
	Strategy core.Strategy
	Profile  *prof.Profile
}

// Bottleneck runs one flight-recorded migration per workload ×
// strategy and reconstructs each as a span DAG (package prof): the
// migration interval partitioned into per-resource blame, plus the
// downtime span. Traced trials carry their own in-memory sink, so they
// run sequentially and are not memoized with the grid.
func Bottleneck(cfg Config, kinds []workload.Kind) ([]BottleneckRow, error) {
	var rows []BottleneckRow
	for _, k := range kinds {
		for _, strat := range core.Strategies() {
			_, sink, err := TraceTrial(cfg, k, strat, 0)
			if err != nil {
				return nil, err
			}
			pf, err := prof.Build(sink.Events(), prof.Options{})
			if err != nil {
				return nil, fmt.Errorf("experiments: profiling %v/%v: %w", k, strat, err)
			}
			rows = append(rows, BottleneckRow{Kind: k, Strategy: strat, Profile: pf})
		}
	}
	return rows, nil
}

// FormatBottleneck renders the sweep: per workload and strategy, the
// migration interval, the downtime, and the critical path's
// composition as percentages (an exact partition, so each row sums to
// 100 up to rounding).
func FormatBottleneck(rows []BottleneckRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Bottleneck: critical-path composition per migration (%% of frozen interval)\n\n")
	fmt.Fprintf(&b, "%-10s %-9s %8s %8s ", "Workload", "Strategy", "Total", "Down")
	for _, c := range prof.Classes() {
		fmt.Fprintf(&b, " %7s", c)
	}
	fmt.Fprintf(&b, "  %s\n", "Path")
	for _, r := range rows {
		pf := r.Profile
		fmt.Fprintf(&b, "%-10s %-9s %7.2fs %7.2fs ", r.Kind, r.Strategy,
			pf.Total().Seconds(), pf.Downtime.Seconds())
		for _, c := range prof.Classes() {
			fmt.Fprintf(&b, " %6.1f%%", 100*pf.Blame.Fraction(c))
		}
		mark := "ok"
		if !pf.Connected() {
			mark = "BROKEN"
		}
		fmt.Fprintf(&b, "  %s\n", mark)
	}
	return b.String()
}
