package experiments

import (
	"reflect"
	"testing"

	"accentmig/internal/core"
	"accentmig/internal/obs"
	"accentmig/internal/workload"
)

// TestParallelGridMatchesSequential is the engine's centerpiece
// invariant: a grid swept on a wide worker pool must be deep-equal to
// the same grid swept strictly sequentially, because every trial runs
// on its own kernel and depends only on its own inputs. Run under
// -race this also proves the trials share no simulation state.
func TestParallelGridMatchesSequential(t *testing.T) {
	kinds := []workload.Kind{workload.Minprog, workload.LispDel}
	seq, err := RunGridSeq(Config{}, kinds)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewEngine(8).RunGrid(Config{}, kinds)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Cells) != len(par.Cells) {
		t.Fatalf("cell counts differ: seq %d, par %d", len(seq.Cells), len(par.Cells))
	}
	for key, want := range seq.Cells {
		got := par.Cells[key]
		if got == nil {
			t.Fatalf("%+v: missing from parallel grid", key)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%+v: parallel result differs from sequential\nseq: %+v\npar: %+v", key, want, got)
		}
	}
}

// TestEngineMemoizesTrials verifies the result cache: asking the same
// engine for the same cell twice must return the identical object, not
// a re-simulation.
func TestEngineMemoizesTrials(t *testing.T) {
	e := NewEngine(2)
	tr1, err := e.Trial(Config{}, workload.Minprog, core.PureIOU, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := e.Trial(Config{}, workload.Minprog, core.PureIOU, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr1 != tr2 {
		t.Error("second Trial call re-simulated instead of hitting the cache")
	}
	if n := e.CachedCells(); n != 1 {
		t.Errorf("CachedCells = %d, want 1", n)
	}

	hr1, err := e.HoldTrial(Config{}, workload.Minprog, core.PureCopy)
	if err != nil {
		t.Fatal(err)
	}
	hr2, err := e.HoldTrial(Config{}, workload.Minprog, core.PureCopy)
	if err != nil {
		t.Fatal(err)
	}
	if hr1 != hr2 {
		t.Error("second HoldTrial call re-simulated instead of hitting the cache")
	}
}

// TestEngineDistinguishesConfigs verifies the config fingerprint: the
// same cell under different link bandwidths must be simulated twice and
// yield different transfer times.
func TestEngineDistinguishesConfigs(t *testing.T) {
	e := NewEngine(1)
	slow := Config{}
	fast := Config{}
	fast.Link.BytesPerSecond = 37_500_000
	trSlow, err := e.Trial(slow, workload.Minprog, core.PureCopy, 0)
	if err != nil {
		t.Fatal(err)
	}
	trFast, err := e.Trial(fast, workload.Minprog, core.PureCopy, 0)
	if err != nil {
		t.Fatal(err)
	}
	if trSlow == trFast {
		t.Fatal("different configs shared one cache entry")
	}
	if trFast.Report.RIMASTransfer >= trSlow.Report.RIMASTransfer {
		t.Errorf("fast link transfer %v not faster than slow %v",
			trFast.Report.RIMASTransfer, trSlow.Report.RIMASTransfer)
	}
	if n := e.CachedCells(); n != 2 {
		t.Errorf("CachedCells = %d, want 2", n)
	}
}

// TestEngineSinkBypassesCache verifies that trace-carrying configs are
// never served from cache (each run must emit its event stream) and
// that their events still arrive when trials run on the pool.
func TestEngineSinkBypassesCache(t *testing.T) {
	e := NewEngine(1)
	mem := obs.NewMemorySink()
	cfg := Config{Sink: mem}
	tr1, err := e.Trial(cfg, workload.Minprog, core.PureIOU, 0)
	if err != nil {
		t.Fatal(err)
	}
	n1 := mem.Len()
	if n1 == 0 {
		t.Fatal("traced trial emitted no events")
	}
	tr2, err := e.Trial(cfg, workload.Minprog, core.PureIOU, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr1 == tr2 {
		t.Error("traced trial was served from cache")
	}
	if mem.Len() != 2*n1 {
		t.Errorf("second traced trial emitted %d events, want %d", mem.Len()-n1, n1)
	}
	if n := e.CachedCells(); n != 0 {
		t.Errorf("CachedCells = %d after traced trials, want 0", n)
	}
}

// TestGridKeysShape pins the sweep enumeration the figures rely on:
// per workload one pure-copy cell plus IOU and RS at every prefetch
// value, in chart order.
func TestGridKeysShape(t *testing.T) {
	kinds := []workload.Kind{workload.Minprog, workload.Chess}
	keys := GridKeys(kinds)
	perKind := 1 + 2*len(core.PrefetchValues())
	if len(keys) != perKind*len(kinds) {
		t.Fatalf("len(keys) = %d, want %d", len(keys), perKind*len(kinds))
	}
	if keys[0] != (GridKey{workload.Minprog, core.PureCopy, 0}) {
		t.Errorf("first key = %+v", keys[0])
	}
	seen := map[GridKey]bool{}
	for _, k := range keys {
		if seen[k] {
			t.Errorf("duplicate key %+v", k)
		}
		seen[k] = true
	}
}
