package experiments

import (
	"testing"

	"accentmig/internal/core"
	"accentmig/internal/workload"
)

// TestDedupSweepSavesBytes pins the headline acceptance number: with
// the content-addressed store on, a paper workload's pure-copy
// migration must put at least 30% fewer bytes on the wire than the
// untouched baseline — net of the manifest round trip itself.
func TestDedupSweepSavesBytes(t *testing.T) {
	tab, err := Dedup(Config{}, []workload.Kind{workload.Minprog, workload.LispDel})
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]map[workload.Kind]map[core.Strategy]*DedupRow{}
	for i := range tab.Rows {
		r := &tab.Rows[i]
		if rows[r.Mode] == nil {
			rows[r.Mode] = map[workload.Kind]map[core.Strategy]*DedupRow{}
		}
		if rows[r.Mode][r.Kind] == nil {
			rows[r.Mode][r.Kind] = map[core.Strategy]*DedupRow{}
		}
		rows[r.Mode][r.Kind][r.Strategy] = r
	}
	for _, kind := range tab.Kinds {
		off := rows["off"][kind][core.PureCopy]
		on := rows["dedup"][kind][core.PureCopy]
		comp := rows["dedup+comp"][kind][core.PureCopy]
		if off == nil || on == nil || comp == nil {
			t.Fatalf("%v: sweep missing pure-copy rows", kind)
		}
		if on.Bytes >= off.Bytes {
			t.Errorf("%v: dedup pure-copy bytes %d, want < baseline %d", kind, on.Bytes, off.Bytes)
		}
		// The headline >=30% number is pinned on a workload with real
		// memory; tiny Minprog trials are dominated by protocol bytes.
		if kind == workload.LispDel && on.Bytes > off.Bytes*7/10 {
			t.Errorf("%v: dedup pure-copy bytes %d, want <= 70%% of baseline %d", kind, on.Bytes, off.Bytes)
		}
		if on.Elided == 0 {
			t.Errorf("%v: dedup pure-copy elided no pages", kind)
		}
		if comp.Bytes > on.Bytes {
			t.Errorf("%v: compression grew wire bytes: %d > %d", kind, comp.Bytes, on.Bytes)
		}
		if off.Elided != 0 || off.Local != 0 || off.Holder != 0 {
			t.Errorf("%v: off row shows store activity: %+v", kind, *off)
		}
	}
	if s := FormatDedup(tab); s == "" {
		t.Error("FormatDedup returned nothing")
	}
}

// TestDedupOffMatchesDefault pins the compatibility contract: the
// sweep's off rows come from the identical code path as the default
// experiments — same bytes on the wire, bit for bit.
func TestDedupOffMatchesDefault(t *testing.T) {
	tab, err := Dedup(Config{}, []workload.Kind{workload.Minprog})
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range dedupStrategies {
		base, err := RunTrial(Config{}, workload.Minprog, strat, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := range tab.Rows {
			r := &tab.Rows[i]
			if r.Mode != "off" || r.Strategy != strat {
				continue
			}
			if r.Bytes != base.BytesTotal {
				t.Errorf("%v: off row bytes %d != default trial bytes %d", strat, r.Bytes, base.BytesTotal)
			}
			if r.Xfer != base.Report.RIMASTransfer {
				t.Errorf("%v: off row xfer %v != default trial xfer %v", strat, r.Xfer, base.Report.RIMASTransfer)
			}
		}
	}
}

// TestNearestHolderCutsFaultStalls pins the nearest-holder acceptance
// criterion on the three-machine topology: with the store on, faults
// are served by the bystander holder over the fast link, and the mean
// stall drops well below the slow-link origin baseline.
func TestNearestHolderCutsFaultStalls(t *testing.T) {
	rows, err := NearestHolder(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(rows))
	}
	origin, holder := rows[0], rows[1]
	if origin.Holder != 0 || origin.Local != 0 {
		t.Errorf("store-off run shows content-index serves: %+v", origin)
	}
	if holder.Holder == 0 {
		t.Fatalf("no faults served by the nearest holder: %+v", holder)
	}
	if holder.FaultMean >= origin.FaultMean*3/4 {
		t.Errorf("holder fault mean %v, want < 75%% of origin-backer mean %v",
			holder.FaultMean, origin.FaultMean)
	}
}
