package experiments

import (
	"fmt"
	"strings"
	"time"

	"accentmig/internal/core"
	"accentmig/internal/workload"
)

// PipelineWindows is the send-window sweep: W=1 is the paper-faithful
// stop-and-wait baseline, the rest exercise the pipelined transport.
var PipelineWindows = []int{1, 4, 16, 64}

// pipelineStrategies are the migration strategies the window sweep
// crosses with: the two extremes plus the paper's preferred middle.
var pipelineStrategies = []core.Strategy{core.PureCopy, core.PureIOU, core.ResidentSet}

// pipelineOutstanding is the IOU-streaming sweep for the stall table:
// K=1 is the serial demand-fault baseline, K=4 lets split-reply
// prefetch streams overlap the process's compute (gains saturate by
// K=4 at the default prefetch depth).
var pipelineOutstanding = []int{1, 4}

// pipelineStallPrefetch is the prefetch depth used in the stall table;
// streaming only has work to overlap when faults carry prefetch.
const pipelineStallPrefetch = 3

// PipelineRow is one cell of the window sweep.
type PipelineRow struct {
	Window   int
	Kind     workload.Kind
	Strategy core.Strategy
	// Xfer is the RIMAS transfer time (the paper's migration-time
	// metric), EndToEnd adds remote execution, MsgTime is total
	// message-handling time across both machines, Down the process
	// downtime (freeze to first destination instruction).
	Xfer     time.Duration
	EndToEnd time.Duration
	MsgTime  time.Duration
	Down     time.Duration
}

// StallRow is one cell of the IOU fault-stall sweep: pure-IOU remote
// execution with K outstanding page-run fetches.
type StallRow struct {
	Outstanding int
	Kind        workload.Kind
	Prefetch    int
	// FaultMean / FaultP95 summarize remote imaginary-fault stalls;
	// RemoteExec is the resulting remote execution time; HitRatio is
	// the destination pager's hit ratio (prefetched pages included).
	FaultMean  time.Duration
	FaultP95   time.Duration
	RemoteExec time.Duration
	HitRatio   float64
}

// PipelineTable holds the full pipelined-transport experiment.
type PipelineTable struct {
	Kinds []workload.Kind
	Rows  []PipelineRow
	Stall []StallRow
}

// Pipeline sweeps send window x strategy x workload through the
// memoized engine, then sweeps outstanding-fetch depth for pure-IOU
// fault streaming. Every cell with W=1 (or K=1) runs the untouched
// stop-and-wait path, so the baseline column is byte-identical to the
// default experiments.
func (e *Engine) Pipeline(cfg Config, kinds []workload.Kind) (*PipelineTable, error) {
	cfg = cfg.forParallel(e.Workers())
	type cell struct {
		cfg   Config
		kind  workload.Kind
		strat core.Strategy
		pf    int
	}
	var cells []cell
	for _, w := range PipelineWindows {
		c := cfg
		if w > 1 {
			c.Machine.Net.Window = w
		}
		for _, kind := range kinds {
			for _, strat := range pipelineStrategies {
				cells = append(cells, cell{cfg: c, kind: kind, strat: strat})
			}
		}
	}
	// The stall sweep rides the pipelined transport (W=16): split-reply
	// streaming turns one large fault reply into a one-page demand reply
	// plus per-page background replies, and on the stop-and-wait wire
	// those extra frames queue ahead of the next demand reply and erase
	// the win. Both K rows share the window so the sweep isolates K.
	stallBase := len(cells)
	for _, k := range pipelineOutstanding {
		c := cfg
		c.Machine.Net.Window = 16
		if k > 1 {
			c.Machine.Pager.Outstanding = k
		}
		for _, kind := range kinds {
			cells = append(cells, cell{cfg: c, kind: kind, strat: core.PureIOU, pf: pipelineStallPrefetch})
		}
	}

	out := make([]*TrialResult, len(cells))
	errs := make([]error, len(cells))
	e.fanOut(len(cells), func(i int) {
		c := cells[i]
		out[i], errs[i] = e.Trial(c.cfg, c.kind, c.strat, c.pf)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	t := &PipelineTable{Kinds: kinds}
	for i, c := range cells[:stallBase] {
		tr := out[i]
		t.Rows = append(t.Rows, PipelineRow{
			Window:   c.cfg.Machine.Net.Window,
			Kind:     c.kind,
			Strategy: c.strat,
			Xfer:     tr.Report.RIMASTransfer,
			EndToEnd: tr.EndToEnd,
			MsgTime:  tr.MsgTime,
			Down:     tr.Downtime,
		})
	}
	for i, c := range cells[stallBase:] {
		tr := out[stallBase+i]
		t.Stall = append(t.Stall, StallRow{
			Outstanding: c.cfg.Machine.Pager.Outstanding,
			Kind:        c.kind,
			Prefetch:    c.pf,
			FaultMean:   tr.RemoteFaultMean,
			FaultP95:    tr.FaultP95,
			RemoteExec:  tr.RemoteExec,
			HitRatio:    tr.DestPager.HitRatio(),
		})
	}
	return t, nil
}

// Pipeline runs the pipelined-transport experiment on the default
// engine.
func Pipeline(cfg Config, kinds []workload.Kind) (*PipelineTable, error) {
	return Default.Pipeline(cfg, kinds)
}

// window normalizes the stored knob back to the effective value (the
// zero default means stop-and-wait, i.e. W=1).
func (r PipelineRow) window() int {
	if r.Window < 1 {
		return 1
	}
	return r.Window
}

func (r StallRow) outstanding() int {
	if r.Outstanding < 1 {
		return 1
	}
	return r.Outstanding
}

// FormatPipeline renders the window sweep per workload (speedups are
// RIMAS-transfer time relative to the same strategy's W=1 row) and the
// IOU fault-stall table.
func FormatPipeline(t *PipelineTable) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Pipelined transport: RIMAS transfer time by send window\n")

	base := map[workload.Kind]map[core.Strategy]time.Duration{}
	for _, r := range t.Rows {
		if r.window() == 1 {
			if base[r.Kind] == nil {
				base[r.Kind] = map[core.Strategy]time.Duration{}
			}
			base[r.Kind][r.Strategy] = r.Xfer
		}
	}
	for _, kind := range t.Kinds {
		fmt.Fprintf(&b, "\n%s\n", kind)
		fmt.Fprintf(&b, "%6s", "W")
		for _, s := range pipelineStrategies {
			fmt.Fprintf(&b, " %12s %8s %8s", s, "speedup", "down")
		}
		fmt.Fprintf(&b, "\n")
		for _, w := range PipelineWindows {
			fmt.Fprintf(&b, "%6d", w)
			for _, s := range pipelineStrategies {
				var row *PipelineRow
				for i := range t.Rows {
					r := &t.Rows[i]
					if r.Kind == kind && r.Strategy == s && r.window() == w {
						row = r
						break
					}
				}
				if row == nil {
					fmt.Fprintf(&b, " %12s %8s %8s", "-", "-", "-")
					continue
				}
				speed := "-"
				if bx := base[kind][s]; bx > 0 && row.Xfer > 0 {
					speed = fmt.Sprintf("%.2fx", float64(bx)/float64(row.Xfer))
				}
				fmt.Fprintf(&b, " %12s %8s %7.1fs", row.Xfer.Round(time.Millisecond), speed, row.Down.Seconds())
			}
			fmt.Fprintf(&b, "\n")
		}
	}

	fmt.Fprintf(&b, "\nWindowed IOU streaming: pure-IOU remote fault stalls (prefetch %d)\n\n", pipelineStallPrefetch)
	fmt.Fprintf(&b, "%-10s %3s %12s %12s %12s %8s\n",
		"Workload", "K", "FaultMean", "FaultP95", "RemoteExec", "Hit%")
	for _, r := range t.Stall {
		fmt.Fprintf(&b, "%-10s %3d %12s %12s %12s %7.1f%%\n",
			r.Kind, r.outstanding(),
			r.FaultMean.Round(time.Microsecond), r.FaultP95.Round(time.Microsecond),
			r.RemoteExec.Round(time.Millisecond), 100*r.HitRatio)
	}
	return b.String()
}
