package experiments

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"

	"accentmig/internal/core"
	"accentmig/internal/obs"
	"accentmig/internal/sim"
	"accentmig/internal/vm"
	"accentmig/internal/workload"
	"accentmig/internal/xrand"
)

// Engine schedules migration trials across a pool of OS goroutines and
// memoizes their results. Every trial runs on its own fully independent
// sim.Kernel, so trials can execute concurrently without sharing any
// simulation state; determinism is preserved because each trial's
// outcome depends only on (Config, workload, strategy, prefetch) — never
// on what ran beside it. The cache is keyed by a fingerprint of the
// Config plus the trial coordinates, so every table, figure, and summary
// that needs the same cell reuses one simulated result instead of
// re-running it.
//
// Trials driven with a flight-recorder sink installed bypass the cache
// (a cached result would silently emit no trace events); they still run
// in parallel, with the shared sink synchronized.
type Engine struct {
	// workers is the pool width; <= 0 selects runtime.GOMAXPROCS(0).
	workers int

	// disk, when non-nil, is the persistent second level of the cache:
	// owners consult it before simulating and write freshly computed
	// results behind. Install it before running experiments.
	disk *DiskCache

	mu    sync.Mutex
	cache map[cacheKey]*cacheEntry
}

// cacheKey addresses one memoized trial. variant separates the grid
// trials (run to remote completion) from the held-at-destination
// excision trials the timing tables use.
type cacheKey struct {
	fp      uint64
	variant uint8
	GridKey
}

const (
	variantGrid uint8 = iota
	variantHold
	variantResilience
	variantShard
)

// cacheEntry is a single-flight slot: the first requester computes, any
// concurrent or later requester blocks on done and shares the result.
type cacheEntry struct {
	done  chan struct{}
	tr    *TrialResult
	hold  *HoldResult
	res   *ResilienceOutcome
	shard *ShardStressResult
	err   error
}

// NewEngine returns an engine with the given worker-pool width
// (<= 0 selects runtime.GOMAXPROCS(0)) and an empty cache.
func NewEngine(workers int) *Engine {
	return &Engine{workers: workers, cache: make(map[cacheKey]*cacheEntry)}
}

// Default is the process-wide engine the package-level experiment
// harnesses (RunGrid, Table43..45, Figure45) share, so one `migsim -exp
// all` sweep simulates each grid cell exactly once.
var Default = NewEngine(0)

// SetWorkers sets the default engine's pool width (<= 0 restores the
// GOMAXPROCS default). Call it before running experiments.
func SetWorkers(n int) { Default.workers = n }

// SetDisk attaches (or with nil detaches) a persistent disk cache as
// the engine's second level. Call it before running experiments; the
// field is read without locking by the worker pool.
func (e *Engine) SetDisk(d *DiskCache) { e.disk = d }

// Disk reports the attached persistent cache, if any.
func (e *Engine) Disk() *DiskCache { return e.disk }

// diskLoad consults the persistent cache for an owner about to
// simulate key. A payload of the wrong variant (possible only through
// a stale or hand-damaged file, since the variant is in the filename)
// counts as a miss.
func (e *Engine) diskLoad(key cacheKey) (*memoPayload, bool) {
	if e.disk == nil {
		return nil, false
	}
	return e.disk.load(key)
}

// diskStore writes a freshly computed result behind the in-memory
// cache. Errors are never stored: a failed trial re-runs next process.
func (e *Engine) diskStore(key cacheKey, p *memoPayload) {
	if e.disk != nil {
		e.disk.store(key, p)
	}
}

// Workers reports the resolved pool width.
func (e *Engine) Workers() int {
	if e.workers > 0 {
		return e.workers
	}
	return runtime.GOMAXPROCS(0)
}

// Reset drops every cached result. Benchmarks use it to force
// re-simulation; experiment code never needs it.
func (e *Engine) Reset() {
	e.mu.Lock()
	e.cache = make(map[cacheKey]*cacheEntry)
	e.mu.Unlock()
}

// CachedCells reports how many results the cache currently holds.
func (e *Engine) CachedCells() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.cache)
}

// fingerprint hashes everything about a Config that can influence a
// trial's outcome: the machine and link cost models, the tuning
// constants, and the process-wide base seed perturbing the workload
// reference traces. The Sink is deliberately excluded — it observes a
// trial without affecting it — and sink-carrying configs skip the cache
// anyway. The fingerprint also keys the persistent disk cache, so it
// must be stable across processes: every nested config struct is a
// plain value type (no pointers, maps, or funcs), which makes the %#v
// rendering a canonical form for a fixed Go version — and the disk
// cache namespaces its entries by Go version precisely so that a
// toolchain change (or a struct change, which alters the rendering and
// hence the fingerprint) can never revive a stale entry.
func (c Config) fingerprint() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%#v|%#v|%#v|%d", c.Machine, c.Link, c.tuning(), xrand.BaseSeed())
	if c.Faults != nil {
		fmt.Fprintf(h, "|%#v", *c.Faults)
	}
	if c.Recovery != nil {
		fmt.Fprintf(h, "|R%#v", *c.Recovery)
	}
	return h.Sum64()
}

// lookup returns the single-flight slot for key and whether this caller
// owns the computation.
func (e *Engine) lookup(key cacheKey) (*cacheEntry, bool) {
	e.mu.Lock()
	if ent, ok := e.cache[key]; ok {
		e.mu.Unlock()
		<-ent.done
		return ent, false
	}
	ent := &cacheEntry{done: make(chan struct{})}
	e.cache[key] = ent
	e.mu.Unlock()
	return ent, true
}

// Trial returns the memoized result for one grid cell, simulating it on
// this goroutine if no one has yet. Configs with a Sink installed run
// uncached so their flight-recorder stream is always emitted.
func (e *Engine) Trial(cfg Config, k workload.Kind, s core.Strategy, pf int) (*TrialResult, error) {
	if cfg.Sink != nil {
		return RunTrial(cfg, k, s, pf)
	}
	return e.trialFP(cfg.fingerprint(), cfg, k, s, pf)
}

// trialFP is Trial with the config fingerprint supplied by the caller,
// so sweeps hash the config once instead of once per cell.
func (e *Engine) trialFP(fp uint64, cfg Config, k workload.Kind, s core.Strategy, pf int) (*TrialResult, error) {
	key := cacheKey{fp: fp, variant: variantGrid, GridKey: GridKey{k, s, pf}}
	ent, owner := e.lookup(key)
	if owner {
		if p, ok := e.diskLoad(key); ok && p.Trial != nil {
			ent.tr = p.Trial
			close(ent.done)
		} else {
			ent.tr, ent.err = RunTrial(cfg, k, s, pf)
			close(ent.done)
			if ent.err == nil {
				e.diskStore(key, &memoPayload{Trial: ent.tr})
			}
		}
	}
	return ent.tr, ent.err
}

// HoldResult is what a held-at-destination migration trial measures:
// the migration report plus the address-space usage sampled at the
// migration point. Tables 4-2, 4-4, and 4-5 are all formatted from it.
type HoldResult struct {
	Report *core.Report
	Usage  vm.Usage
}

// RunHoldTrial excises and transfers representative k under the given
// strategy with the destination held (no remote execution), the setup
// behind the paper's timing tables.
func RunHoldTrial(cfg Config, k workload.Kind, strat core.Strategy) (*HoldResult, error) {
	tb := NewTestbed(cfg)
	b, err := workload.Build(tb.Src, k)
	if err != nil {
		return nil, err
	}
	u := b.Proc.AS.Usage()
	tb.Src.Start(b.Proc)
	var rep *core.Report
	var migErr error
	tb.K.Go("driver", func(p *sim.Proc) {
		opts := core.Options{
			Strategy:         strat,
			WaitMigratePoint: true,
			HoldAtDest:       true,
		}
		cfg.applyRecovery(&opts)
		rep, migErr = tb.SrcMgr.MigrateTo(p, k.String(), tb.DstMgr.Port.ID, opts)
	})
	tb.K.Run()
	if migErr != nil {
		return nil, migErr
	}
	return &HoldResult{Report: rep, Usage: u}, nil
}

// HoldTrial is the memoized form of RunHoldTrial.
func (e *Engine) HoldTrial(cfg Config, k workload.Kind, s core.Strategy) (*HoldResult, error) {
	if cfg.Sink != nil {
		return RunHoldTrial(cfg, k, s)
	}
	return e.holdFP(cfg.fingerprint(), cfg, k, s)
}

// holdFP is HoldTrial with a caller-supplied config fingerprint.
func (e *Engine) holdFP(fp uint64, cfg Config, k workload.Kind, s core.Strategy) (*HoldResult, error) {
	key := cacheKey{fp: fp, variant: variantHold, GridKey: GridKey{k, s, 0}}
	ent, owner := e.lookup(key)
	if owner {
		if p, ok := e.diskLoad(key); ok && p.Hold != nil {
			ent.hold = p.Hold
			close(ent.done)
		} else {
			ent.hold, ent.err = RunHoldTrial(cfg, k, s)
			close(ent.done)
			if ent.err == nil {
				e.diskStore(key, &memoPayload{Hold: ent.hold})
			}
		}
	}
	return ent.hold, ent.err
}

// ResilienceTrial is the memoized form of RunResilienceTrial. The
// trial options join the config in the cache key, so sweeps varying
// retry budgets over one fault plan stay distinct.
func (e *Engine) ResilienceTrial(cfg Config, k workload.Kind, s core.Strategy, ropts ResilienceOptions) (*ResilienceOutcome, error) {
	if cfg.Sink != nil {
		return RunResilienceTrial(cfg, k, s, ropts)
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%#v", cfg.fingerprint(), ropts)
	key := cacheKey{fp: h.Sum64(), variant: variantResilience, GridKey: GridKey{k, s, 0}}
	ent, owner := e.lookup(key)
	if owner {
		if p, ok := e.diskLoad(key); ok && p.Res != nil {
			ent.res = p.Res
			close(ent.done)
		} else {
			ent.res, ent.err = RunResilienceTrial(cfg, k, s, ropts)
			close(ent.done)
			if ent.err == nil {
				e.diskStore(key, &memoPayload{Res: ent.res})
			}
		}
	}
	return ent.res, ent.err
}

// ShardTrial is the memoized form of RunShardStress. Only the
// deterministic result is cached; the host-side perf figures are a
// property of one run and never stored. The worker count is erased
// from the key — the scenario's results are byte-identical at any
// Shards value, so a cached entry serves every execution mode. The
// process-wide base seed joins the key because the scenario's decision
// streams derive from it.
func (e *Engine) ShardTrial(o ShardStressOptions) (*ShardStressResult, error) {
	o = o.withDefaults()
	keyOpts := o
	keyOpts.Shards = 0
	h := fnv.New64a()
	fmt.Fprintf(h, "shardstress|%d|%#v", xrand.BaseSeed(), keyOpts)
	key := cacheKey{fp: h.Sum64(), variant: variantShard}
	ent, owner := e.lookup(key)
	if owner {
		if p, ok := e.diskLoad(key); ok && p.Shard != nil {
			ent.shard = p.Shard
			close(ent.done)
		} else {
			ent.shard, _, ent.err = RunShardStress(o)
			close(ent.done)
			if ent.err == nil {
				e.diskStore(key, &memoPayload{Shard: ent.shard})
			}
		}
	}
	return ent.shard, ent.err
}

// forParallel prepares a config for concurrent trials: a shared
// flight-recorder sink must be synchronized once kernels emit from
// more than one goroutine.
func (c Config) forParallel(workers int) Config {
	if c.Sink != nil && workers > 1 {
		c.Sink = obs.Synchronized(c.Sink)
	}
	return c
}

// fanOut runs fn(i) for i in [0, n) on the engine's worker pool and
// blocks until all complete. Work is claimed in contiguous batches —
// one shared-counter bump per batch instead of per item — so sweeps of
// sub-millisecond memoized cells are not dominated by cross-core
// contention on the dispatch counter. Batches stay small relative to
// n/w to keep the tail balanced when cell costs are skewed.
func (e *Engine) fanOut(n int, fn func(i int)) {
	w := e.Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	batch := n / (4 * w)
	if batch < 1 {
		batch = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(int64(batch))) - batch
				if lo >= n {
					return
				}
				hi := lo + batch
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
}

// Trials simulates the given grid cells concurrently (memoized) and
// returns their results in key order. On error the first failure in key
// order is reported.
func (e *Engine) Trials(cfg Config, keys []GridKey) ([]*TrialResult, error) {
	cfg = cfg.forParallel(e.Workers())
	out := make([]*TrialResult, len(keys))
	errs := make([]error, len(keys))
	if cfg.Sink != nil {
		e.fanOut(len(keys), func(i int) {
			out[i], errs[i] = e.Trial(cfg, keys[i].Kind, keys[i].Strategy, keys[i].Prefetch)
		})
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	fp := cfg.fingerprint() // hashed once for the whole sweep
	e.fanOut(len(keys), func(i int) {
		out[i], errs[i] = e.trialFP(fp, cfg, keys[i].Kind, keys[i].Strategy, keys[i].Prefetch)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// holdPair addresses one held-at-destination trial.
type holdPair struct {
	kind  workload.Kind
	strat core.Strategy
}

// holdTrials simulates held-at-destination trials concurrently
// (memoized) and returns results in pair order.
func (e *Engine) holdTrials(cfg Config, pairs []holdPair) ([]*HoldResult, error) {
	cfg = cfg.forParallel(e.Workers())
	out := make([]*HoldResult, len(pairs))
	errs := make([]error, len(pairs))
	if cfg.Sink != nil {
		e.fanOut(len(pairs), func(i int) {
			out[i], errs[i] = e.HoldTrial(cfg, pairs[i].kind, pairs[i].strat)
		})
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	fp := cfg.fingerprint() // hashed once for the whole sweep
	e.fanOut(len(pairs), func(i int) {
		out[i], errs[i] = e.holdFP(fp, cfg, pairs[i].kind, pairs[i].strat)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// GridKeys enumerates the full paper grid for the given workloads in
// the canonical order: pure-copy once per workload, then IOU and RS at
// each prefetch value.
func GridKeys(kinds []workload.Kind) []GridKey {
	var keys []GridKey
	for _, k := range kinds {
		keys = append(keys, GridKey{k, core.PureCopy, 0})
		for _, strat := range []core.Strategy{core.PureIOU, core.ResidentSet} {
			for _, pf := range core.PrefetchValues() {
				keys = append(keys, GridKey{k, strat, pf})
			}
		}
	}
	return keys
}

// RunGrid sweeps the full paper grid on the worker pool, reusing any
// cells the cache already holds.
func (e *Engine) RunGrid(cfg Config, kinds []workload.Kind) (*Grid, error) {
	keys := GridKeys(kinds)
	trs, err := e.Trials(cfg, keys)
	if err != nil {
		return nil, err
	}
	g := &Grid{Cells: make(map[GridKey]*TrialResult, len(keys))}
	for i, key := range keys {
		g.Cells[key] = trs[i]
	}
	return g, nil
}

// RunGridSeq sweeps the full paper grid strictly sequentially on the
// calling goroutine with no memoization — the reference for the
// parallel-equals-sequential determinism contract, and the baseline for
// speedup measurements.
func RunGridSeq(cfg Config, kinds []workload.Kind) (*Grid, error) {
	g := &Grid{Cells: make(map[GridKey]*TrialResult)}
	for _, key := range GridKeys(kinds) {
		tr, err := RunTrial(cfg, key.Kind, key.Strategy, key.Prefetch)
		if err != nil {
			return nil, err
		}
		g.Cells[key] = tr
	}
	return g, nil
}
