package experiments

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"accentmig/internal/core"
	"accentmig/internal/workload"
)

// The full grid is expensive enough to share across tests.
var (
	gridOnce sync.Once
	gridVal  *Grid
	gridErr  error
)

func sharedGrid(t *testing.T) *Grid {
	t.Helper()
	gridOnce.Do(func() {
		gridVal, gridErr = RunGrid(Config{}, workload.Kinds())
	})
	if gridErr != nil {
		t.Fatal(gridErr)
	}
	return gridVal
}

func TestTable41ExactPaperMatch(t *testing.T) {
	rows, err := Table41(Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		p := workload.PaperNumbers(r.Kind)
		if r.Real != p.RealBytes || r.Total != p.TotalBytes {
			t.Errorf("%v: Real/Total = %d/%d, paper %d/%d", r.Kind, r.Real, r.Total, p.RealBytes, p.TotalBytes)
		}
		if r.RealZ != p.TotalBytes-p.RealBytes {
			t.Errorf("%v: RealZ = %d", r.Kind, r.RealZ)
		}
	}
}

func TestTable42ExactPaperMatch(t *testing.T) {
	rows, err := Table42(Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := workload.PaperResidentPct
	for _, r := range rows {
		p := workload.PaperNumbers(r.Kind)
		if r.RSSize != p.ResidentBytes {
			t.Errorf("%v: RS size = %d, paper %d", r.Kind, r.RSSize, p.ResidentBytes)
		}
		w := want[r.Kind]
		if math.Abs(r.PctReal-w[0]) > 0.5 {
			t.Errorf("%v: %%Real = %.1f, paper %.1f", r.Kind, r.PctReal, w[0])
		}
		if math.Abs(r.PctTotal-w[1]) > 0.5 {
			t.Errorf("%v: %%Total = %.3f, paper %.3f", r.Kind, r.PctTotal, w[1])
		}
	}
}

func TestTable43IOUNearPaper(t *testing.T) {
	want := workload.PaperTable43IOU
	rows, err := Table43(Config{}, workload.Kinds())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if math.Abs(r.IOUReal-want[r.Kind]) > 2.0 {
			t.Errorf("%v: IOU %%Real = %.1f, paper %.1f", r.Kind, r.IOUReal, want[r.Kind])
		}
		if r.RSReal < r.IOUReal-0.5 {
			t.Errorf("%v: RS (%.1f) moved less than IOU (%.1f)", r.Kind, r.RSReal, r.IOUReal)
		}
	}
}

func TestTable44Shape(t *testing.T) {
	rows, err := Table44(Config{})
	if err != nil {
		t.Fatal(err)
	}
	byKind := map[workload.Kind]Row44{}
	var minOverall, maxOverall time.Duration = time.Hour, 0
	var minInsert, maxInsert time.Duration = time.Hour, 0
	for _, r := range rows {
		byKind[r.Kind] = r
		if r.Overall < minOverall {
			minOverall = r.Overall
		}
		if r.Overall > maxOverall {
			maxOverall = r.Overall
		}
		if r.Insert < minInsert {
			minInsert = r.Insert
		}
		if r.Insert > maxInsert {
			maxInsert = r.Insert
		}
		if r.Overall < r.AMap+r.RIMAS {
			t.Errorf("%v: Overall < AMap+RIMAS", r.Kind)
		}
	}
	// Lisp processes take the longest; Minprog and Chess the shortest.
	for _, k := range []workload.Kind{workload.Minprog, workload.Chess} {
		if byKind[k].AMap >= byKind[workload.LispT].AMap {
			t.Errorf("%v AMap (%v) not below Lisp-T (%v)", k, byKind[k].AMap, byKind[workload.LispT].AMap)
		}
	}
	// Excision varies by a small factor (paper: 4) despite 4 orders of
	// magnitude in address space.
	if ratio := float64(maxOverall) / float64(minOverall); ratio > 8 {
		t.Errorf("excision spread = %.1f, want < 8 (paper 4)", ratio)
	}
	// Insertion spread (paper: 3.3).
	if ratio := float64(maxInsert) / float64(minInsert); ratio > 8 {
		t.Errorf("insertion spread = %.1f, want < 8 (paper 3.3)", ratio)
	}
	// Absolute bands: sub-second to a few seconds.
	if minOverall < 300*time.Millisecond || maxOverall > 6*time.Second {
		t.Errorf("excision range [%v, %v] out of band", minOverall, maxOverall)
	}
}

func TestTable45Shape(t *testing.T) {
	rows, err := Table45(Config{}, workload.Kinds())
	if err != nil {
		t.Fatal(err)
	}
	var iouMin, iouMax time.Duration = time.Hour, 0
	var copyMin, copyMax time.Duration = time.Hour, 0
	for _, r := range rows {
		if r.IOU < iouMin {
			iouMin = r.IOU
		}
		if r.IOU > iouMax {
			iouMax = r.IOU
		}
		if r.Copy < copyMin {
			copyMin = r.Copy
		}
		if r.Copy > copyMax {
			copyMax = r.Copy
		}
		// RS sits between IOU and copy.
		if !(r.IOU < r.RS && r.RS < r.Copy) {
			t.Errorf("%v: ordering IOU(%v) < RS(%v) < Copy(%v) violated", r.Kind, r.IOU, r.RS, r.Copy)
		}
		// The Core message is ≈1 s in all cases.
		if r.Core < 700*time.Millisecond || r.Core > 2*time.Second {
			t.Errorf("%v: Core transfer %v, want ≈1s", r.Kind, r.Core)
		}
		// Lisp copy is several hundred times its IOU transfer (paper:
		// almost 1000x for Lisp-Del).
		if r.Kind == workload.LispDel && r.Copy < 300*r.IOU {
			t.Errorf("Lisp-Del copy/IOU = %.0f, want > 300 (paper ≈1000)", float64(r.Copy)/float64(r.IOU))
		}
	}
	// IOU transfers are nearly independent of size (paper: 0.15-0.21 s).
	if ratio := float64(iouMax) / float64(iouMin); ratio > 10 {
		t.Errorf("IOU transfer spread = %.1f, want small", ratio)
	}
	if iouMax > time.Second {
		t.Errorf("IOU transfer up to %v, want sub-second", iouMax)
	}
	// Copy transfers vary by over an order of magnitude (paper: 20x).
	if ratio := float64(copyMax) / float64(copyMin); ratio < 10 {
		t.Errorf("copy transfer spread = %.1f, want > 10 (paper 20)", ratio)
	}
}

func TestFigure41Shape(t *testing.T) {
	g := sharedGrid(t)
	// Minprog executes drastically slower under pure-IOU (paper: 44x).
	mc := g.Cell(workload.Minprog, core.PureCopy, 0).RemoteExec
	mi := g.Cell(workload.Minprog, core.PureIOU, 0).RemoteExec
	if ratio := float64(mi) / float64(mc); ratio < 10 {
		t.Errorf("Minprog IOU/copy exec ratio = %.0f, want > 10 (paper 44)", ratio)
	}
	// Chess barely notices (paper: ≈3% longer).
	cc := g.Cell(workload.Chess, core.PureCopy, 0).RemoteExec
	ci := g.Cell(workload.Chess, core.PureIOU, 0).RemoteExec
	if pct := 100 * (float64(ci) - float64(cc)) / float64(cc); pct > 10 || pct < 0 {
		t.Errorf("Chess IOU exec penalty = %.1f%%, want ≈3%%", pct)
	}
	// Pasmac improves by up to ~2x across the prefetch range.
	p0 := g.Cell(workload.PMStart, core.PureIOU, 0).RemoteExec
	p15 := g.Cell(workload.PMStart, core.PureIOU, 15).RemoteExec
	if ratio := float64(p0) / float64(p15); ratio < 1.5 {
		t.Errorf("PM-Start PF0/PF15 exec ratio = %.2f, want > 1.5 (paper ≈2)", ratio)
	}
	// RS only matters for the very short-lived programs.
	lr := g.Cell(workload.LispT, core.ResidentSet, 0).RemoteExec
	li := g.Cell(workload.LispT, core.PureIOU, 0).RemoteExec
	if lr >= li {
		t.Errorf("Lisp-T RS exec (%v) not below IOU (%v)", lr, li)
	}
}

func TestFigure42Shape(t *testing.T) {
	g := sharedGrid(t)
	kinds := workload.Kinds()
	f := Figure42(g, kinds)
	speedup := func(k workload.Kind, s core.Strategy, pf int) float64 {
		for _, c := range f[k] {
			if c.Strategy == s && c.Prefetch == pf {
				return c.Value
			}
		}
		t.Fatalf("missing cell %v/%v/PF%d", k, s, pf)
		return 0
	}
	// Small-touch processes win big under IOU.
	if v := speedup(workload.LispT, core.PureIOU, 0); v < 80 {
		t.Errorf("Lisp-T IOU speedup = %.0f%%, want > 80%%", v)
	}
	if v := speedup(workload.Minprog, core.PureIOU, 0); v < 30 {
		t.Errorf("Minprog IOU speedup = %.0f%%, want > 30%%", v)
	}
	// Past the breakeven (~1/4 of RealMem touched), Pasmac slows down
	// at PF0 but prefetch rescues it (paper: -21% -> +44% trend).
	if v := speedup(workload.PMStart, core.PureIOU, 0); v > -10 {
		t.Errorf("PM-Start IOU PF0 speedup = %.0f%%, want clear slowdown", v)
	}
	if v0, v15 := speedup(workload.PMStart, core.PureIOU, 0), speedup(workload.PMStart, core.PureIOU, 15); v15 <= v0 {
		t.Errorf("PM-Start prefetch did not help: PF0 %.0f%% vs PF15 %.0f%%", v0, v15)
	}
	// PM-End sits near the breakeven and comes out ahead.
	if v := speedup(workload.PMEnd, core.PureIOU, 0); v < 0 || v > 50 {
		t.Errorf("PM-End IOU PF0 speedup = %.0f%%, want modest positive", v)
	}
	// Chess is insensitive to the transfer method.
	for _, s := range []core.Strategy{core.PureIOU, core.ResidentSet} {
		if v := speedup(workload.Chess, s, 0); math.Abs(v) > 5 {
			t.Errorf("Chess %v speedup = %.1f%%, want ≈0", s, v)
		}
	}
	// One page of prefetch improves on PF0 in (almost) all cases; the
	// paper states it always helps end-to-end.
	for _, k := range []workload.Kind{workload.PMStart, workload.PMMid, workload.PMEnd, workload.LispDel} {
		if v0, v1 := speedup(k, core.PureIOU, 0), speedup(k, core.PureIOU, 1); v1 < v0-1 {
			t.Errorf("%v: PF1 (%.1f%%) worse than PF0 (%.1f%%)", k, v1, v0)
		}
	}
}

func TestFigure43Shape(t *testing.T) {
	g := sharedGrid(t)
	for _, k := range workload.Kinds() {
		cp := g.Cell(k, core.PureCopy, 0).BytesTotal
		iou := g.Cell(k, core.PureIOU, 0).BytesTotal
		rs := g.Cell(k, core.ResidentSet, 0).BytesTotal
		if !(iou < cp) {
			t.Errorf("%v: IOU bytes (%d) not below copy (%d)", k, iou, cp)
		}
		// Shipping resident sets cuts into the IOU savings — except
		// when residency is an excellent touch predictor, as for
		// Lisp-Del where 90% of the shipped resident set is used and
		// bulk framing beats per-fault overhead.
		if k != workload.LispDel && !(iou <= rs) {
			t.Errorf("%v: RS bytes (%d) below IOU (%d)", k, rs, iou)
		}
		// More prefetch, more bytes (dead weight): sharply true for the
		// no-locality Lisp family; sequential programs use almost all
		// prefetched pages, so their totals stay about flat.
		b0 := g.Cell(k, core.PureIOU, 0).BytesTotal
		b15 := g.Cell(k, core.PureIOU, 15).BytesTotal
		switch k {
		case workload.LispT, workload.LispDel:
			if b15 < 2*b0 {
				t.Errorf("%v: PF15 bytes (%d) not well above PF0 (%d)", k, b15, b0)
			}
		default:
			if float64(b15) < 0.85*float64(b0) {
				t.Errorf("%v: PF15 bytes (%d) far below PF0 (%d)", k, b15, b0)
			}
		}
	}
}

func TestFigure44IOUAlwaysWins(t *testing.T) {
	// §4.4.2: "In every case, the IOU and resident set strategies
	// outperform pure-copy" on message-handling time.
	g := sharedGrid(t)
	for _, k := range workload.Kinds() {
		cp := g.Cell(k, core.PureCopy, 0).MsgTime
		for _, s := range []core.Strategy{core.PureIOU, core.ResidentSet} {
			if mt := g.Cell(k, s, 0).MsgTime; mt >= cp {
				t.Errorf("%v: %v msg time (%v) not below copy (%v)", k, s, mt, cp)
			}
		}
	}
}

func TestFigure45Shape(t *testing.T) {
	panels, err := Figure45(Config{})
	if err != nil {
		t.Fatal(err)
	}
	byStrat := map[core.Strategy]Figure45Panel{}
	for _, p := range panels {
		byStrat[p.Strategy] = p
	}
	cp := byStrat[core.PureCopy]
	iou := byStrat[core.PureIOU]
	// Copy has its characteristic early bulk signature: essentially all
	// bytes move before remote execution begins, none fault-related.
	var early, total, fault uint64
	for _, pt := range cp.Series {
		total += pt.Bytes
		fault += pt.FaultBytes
		if pt.T < cp.ExecStart {
			early += pt.Bytes
		}
	}
	if float64(early) < 0.95*float64(total) {
		t.Errorf("copy: only %.0f%% of bytes in the transfer phase", 100*float64(early)/float64(total))
	}
	if fault != 0 {
		t.Errorf("copy: %d fault-support bytes, want 0", fault)
	}
	// IOU traffic is dominated by fault support, spread over the run.
	var iouFault, iouTotal uint64
	for _, pt := range iou.Series {
		iouTotal += pt.Bytes
		iouFault += pt.FaultBytes
	}
	if float64(iouFault) < 0.7*float64(iouTotal) {
		t.Errorf("IOU: fault bytes only %.0f%% of traffic", 100*float64(iouFault)/float64(iouTotal))
	}
	// The dramatic §4.4.3 observation: Lisp-Del under IOU finishes its
	// work around when the full-copy trial is still transferring.
	if iou.Total > cp.Total {
		t.Errorf("IOU total (%v) not below copy total (%v)", iou.Total, cp.Total)
	}
}

func TestSummaryBands(t *testing.T) {
	g := sharedGrid(t)
	s, err := Summarize(Config{}, g, workload.Kinds())
	if err != nil {
		t.Fatal(err)
	}
	if s.AvgByteSavingsPct < 45 || s.AvgByteSavingsPct > 70 {
		t.Errorf("byte savings = %.1f%%, paper 58.2%%", s.AvgByteSavingsPct)
	}
	if s.AvgMsgTimeSavingsPct < 35 || s.AvgMsgTimeSavingsPct > 70 {
		t.Errorf("msg-time savings = %.1f%%, paper 47.8%%", s.AvgMsgTimeSavingsPct)
	}
	if s.FaultRatio < 2.2 || s.FaultRatio > 3.5 {
		t.Errorf("fault ratio = %.2f, paper 2.8", s.FaultRatio)
	}
	if s.RemoteFault < 90*time.Millisecond || s.RemoteFault > 140*time.Millisecond {
		t.Errorf("remote fault = %v, paper 115ms", s.RemoteFault)
	}
	if s.DiskFault < 30*time.Millisecond || s.DiskFault > 50*time.Millisecond {
		t.Errorf("disk fault = %v, paper 40.8ms", s.DiskFault)
	}
	if s.PeakRateReductionPct < 20 {
		t.Errorf("peak-rate reduction = %.1f%%, paper up to 66%%", s.PeakRateReductionPct)
	}
}

func TestPrefetchHitRatios(t *testing.T) {
	g := sharedGrid(t)
	// Pasmac sustains a high hit ratio across prefetch values (paper:
	// a steady 78%).
	for _, pf := range []int{1, 3, 7, 15} {
		hr := g.Cell(workload.PMStart, core.PureIOU, pf).DestPager.HitRatio()
		if hr < 0.55 {
			t.Errorf("PM-Start PF%d hit ratio = %.2f, want high (paper 0.78)", pf, hr)
		}
	}
	// Lisp's hit ratio falls as prefetch grows (paper: ~40% -> ~20%).
	h1 := g.Cell(workload.LispDel, core.PureIOU, 1).DestPager.HitRatio()
	h15 := g.Cell(workload.LispDel, core.PureIOU, 15).DestPager.HitRatio()
	if h1 < 0.25 {
		t.Errorf("Lisp-Del PF1 hit ratio = %.2f, want ≈0.4", h1)
	}
	if h15 >= h1 {
		t.Errorf("Lisp-Del hit ratio did not fall with prefetch: PF1 %.2f vs PF15 %.2f", h1, h15)
	}
}

func TestResidualDependencyShrinksWithPrefetch(t *testing.T) {
	g := sharedGrid(t)
	r0 := g.Cell(workload.LispT, core.PureIOU, 0).ResidualPages
	r15 := g.Cell(workload.LispT, core.PureIOU, 15).ResidualPages
	if r0 == 0 {
		t.Fatal("no residual dependency under IOU")
	}
	if r15 >= r0 {
		t.Errorf("prefetch did not shrink the residual: PF0 %d vs PF15 %d", r0, r15)
	}
}

func TestTrialDeterminism(t *testing.T) {
	a, err := RunTrial(Config{}, workload.Minprog, core.PureIOU, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTrial(Config{}, workload.Minprog, core.PureIOU, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.RemoteExec != b.RemoteExec || a.BytesTotal != b.BytesTotal || a.MsgTime != b.MsgTime {
		t.Errorf("trials diverge: %+v vs %+v", a, b)
	}
}

// TestObservedFaultLatenciesInTrials: the in-trial fault latencies
// match the paper's anchors — not just the isolated microbenchmark.
func TestObservedFaultLatenciesInTrials(t *testing.T) {
	g := sharedGrid(t)
	iou := g.Cell(workload.LispT, core.PureIOU, 0)
	if iou.RemoteFaultMean < 90*time.Millisecond || iou.RemoteFaultMean > 140*time.Millisecond {
		t.Errorf("in-trial remote fault mean = %v, want ≈115ms", iou.RemoteFaultMean)
	}
	cp := g.Cell(workload.LispT, core.PureCopy, 0)
	if cp.DiskFaultMean < 30*time.Millisecond || cp.DiskFaultMean > 60*time.Millisecond {
		t.Errorf("in-trial disk fault mean = %v, want ≈40.8ms", cp.DiskFaultMean)
	}
	if cp.RemoteFaultMean != 0 {
		t.Errorf("pure-copy trial had remote faults (mean %v)", cp.RemoteFaultMean)
	}
}

func TestFormatFigureCSV(t *testing.T) {
	g := sharedGrid(t)
	kinds := []workload.Kind{workload.Minprog}
	csv := FormatFigureCSV(Figure41(g, kinds), kinds)
	if !strings.HasPrefix(csv, "workload,strategy,prefetch,value\n") {
		t.Error("missing CSV header")
	}
	if !strings.Contains(csv, "Minprog,Copy,0,") || !strings.Contains(csv, "Minprog,IOU,15,") {
		t.Errorf("rows missing:\n%s", csv)
	}
	if got := strings.Count(csv, "\n"); got != 12 {
		t.Errorf("CSV lines = %d, want 12 (header + 11 cells)", got)
	}
}

// TestGridDeterminism runs the full grid twice and requires identical
// measurements everywhere — the whole evaluation is reproducible
// bit-for-bit.
func TestGridDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("two full grids")
	}
	kinds := []workload.Kind{workload.Minprog, workload.PMStart}
	a, err := RunGrid(Config{}, kinds)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunGrid(Config{}, kinds)
	if err != nil {
		t.Fatal(err)
	}
	for key, ta := range a.Cells {
		tb := b.Cells[key]
		if tb == nil {
			t.Fatalf("cell %v missing on rerun", key)
		}
		if ta.RemoteExec != tb.RemoteExec || ta.BytesTotal != tb.BytesTotal ||
			ta.MsgTime != tb.MsgTime || ta.Report.RIMASTransfer != tb.Report.RIMASTransfer ||
			ta.DestPager != tb.DestPager {
			t.Errorf("cell %v diverges between runs", key)
		}
	}
}
