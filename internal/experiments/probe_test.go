package experiments

import (
	"testing"

	"accentmig/internal/workload"
)

// TestProbePrint prints the main tables for calibration inspection.
// Run with -v to see the output.
func TestProbePrint(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probe")
	}
	cfg := Config{}
	r41, err := Table41(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + FormatTable41(r41))
	r44, err := Table44(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + FormatTable44(r44))
	r45, err := Table45(cfg, workload.Kinds())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + FormatTable45(r45))
	r43, err := Table43(cfg, workload.Kinds())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + FormatTable43(r43))
}
