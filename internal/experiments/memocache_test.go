package experiments

import (
	"bytes"
	"encoding/gob"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"accentmig/internal/core"
	"accentmig/internal/workload"
)

// sameResult compares two results through a gob round trip of each, so
// a freshly simulated value and one decoded from disk compare equal
// despite gob's canonicalizations (empty slices decode as nil), while
// any real value drift — a changed number anywhere in the tree — does
// not. Exactly one field pair should be set, mirroring memoPayload.
func sameResult(t *testing.T, a, b *memoPayload) bool {
	t.Helper()
	norm := func(p *memoPayload) *memoPayload {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(p); err != nil {
			t.Fatal(err)
		}
		var out memoPayload
		if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return &out
	}
	return reflect.DeepEqual(norm(a), norm(b))
}

// entryFiles lists the cache's entry files, failing the test on error.
func entryFiles(t *testing.T, d *DiskCache) []string {
	t.Helper()
	ents, err := os.ReadDir(d.Dir())
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, filepath.Join(d.Dir(), e.Name()))
	}
	return names
}

func newDiskEngine(t *testing.T, dir string) (*Engine, *DiskCache) {
	t.Helper()
	d, err := OpenDiskCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(1)
	e.SetDisk(d)
	return e, d
}

// TestDiskCacheWarmIdentity runs grid, hold, and resilience trials
// cold, then again through a fresh engine over the same directory, and
// demands every warm result be served from disk with no value drift.
func TestDiskCacheWarmIdentity(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{}
	keys := GridKeys([]workload.Kind{workload.Minprog, workload.Chess})
	ropts := ResilienceOptions{MaxRetries: 1, Degrade: true, AckTimeout: time.Minute}

	cold, cd := newDiskEngine(t, dir)
	coldTrials, err := cold.Trials(cfg, keys)
	if err != nil {
		t.Fatal(err)
	}
	coldHold, err := cold.HoldTrial(cfg, workload.Minprog, core.PureCopy)
	if err != nil {
		t.Fatal(err)
	}
	coldRes, err := cold.ResilienceTrial(cfg, workload.Minprog, core.PureCopy, ropts)
	if err != nil {
		t.Fatal(err)
	}
	if st := cd.Stats(); st.Writes == 0 || st.Hits != 0 {
		t.Fatalf("cold stats = %+v, want writes > 0 and no hits", st)
	}

	warm, wd := newDiskEngine(t, dir)
	warmTrials, err := warm.Trials(cfg, keys)
	if err != nil {
		t.Fatal(err)
	}
	warmHold, err := warm.HoldTrial(cfg, workload.Minprog, core.PureCopy)
	if err != nil {
		t.Fatal(err)
	}
	warmRes, err := warm.ResilienceTrial(cfg, workload.Minprog, core.PureCopy, ropts)
	if err != nil {
		t.Fatal(err)
	}
	st := wd.Stats()
	if st.Misses != 0 || st.Rejects != 0 {
		t.Fatalf("warm stats = %+v, want every lookup served from disk", st)
	}
	if want := uint64(len(keys) + 2); st.Hits != want {
		t.Fatalf("warm hits = %d, want %d", st.Hits, want)
	}
	for i := range keys {
		if !sameResult(t, &memoPayload{Trial: coldTrials[i]}, &memoPayload{Trial: warmTrials[i]}) {
			t.Errorf("%v: warm trial drifted from cold", keys[i])
		}
	}
	if !sameResult(t, &memoPayload{Hold: coldHold}, &memoPayload{Hold: warmHold}) {
		t.Error("warm hold trial drifted from cold")
	}
	if !sameResult(t, &memoPayload{Res: coldRes}, &memoPayload{Res: warmRes}) {
		t.Error("warm resilience trial drifted from cold")
	}
}

// TestDiskCacheCorruptionFallback truncates one on-disk entry and
// bit-flips another mid-file, then asserts a warm engine silently
// recomputes both without error or drift — and repairs the files, so a
// third engine is served entirely from disk again.
func TestDiskCacheCorruptionFallback(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{}
	keys := []GridKey{
		{workload.Minprog, core.PureCopy, 0},
		{workload.Minprog, core.PureIOU, 0},
	}
	cold, _ := newDiskEngine(t, dir)
	coldTrials, err := cold.Trials(cfg, keys)
	if err != nil {
		t.Fatal(err)
	}

	files := entryFiles(t, cold.Disk())
	if len(files) != 2 {
		t.Fatalf("entry files = %d, want 2", len(files))
	}
	// Truncate the first mid-payload.
	info, err := os.Stat(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(files[0], info.Size()/2); err != nil {
		t.Fatal(err)
	}
	// Flip one bit in the middle of the second.
	raw, err := os.ReadFile(files[1])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(files[1], raw, 0o666); err != nil {
		t.Fatal(err)
	}

	warm, wd := newDiskEngine(t, dir)
	warmTrials, err := warm.Trials(cfg, keys)
	if err != nil {
		t.Fatalf("corrupt entries surfaced an error: %v", err)
	}
	for i := range keys {
		if !sameResult(t, &memoPayload{Trial: coldTrials[i]}, &memoPayload{Trial: warmTrials[i]}) {
			t.Errorf("%v: recomputed trial drifted", keys[i])
		}
	}
	st := wd.Stats()
	if st.Rejects != 2 || st.Hits != 0 || st.Writes != 2 {
		t.Fatalf("warm stats = %+v, want both entries rejected, recomputed, and rewritten", st)
	}

	repaired, rd := newDiskEngine(t, dir)
	if _, err := repaired.Trials(cfg, keys); err != nil {
		t.Fatal(err)
	}
	if st := rd.Stats(); st.Hits != 2 || st.Rejects != 0 {
		t.Fatalf("post-repair stats = %+v, want both served from disk", st)
	}
}

// TestDiskCacheVariantsAreDistinct guards the filename keying: a grid
// trial and a hold trial of the same (kind, strategy) must not collide.
func TestDiskCacheVariantsAreDistinct(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{}
	cold, cd := newDiskEngine(t, dir)
	if _, err := cold.Trial(cfg, workload.Minprog, core.PureCopy, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := cold.HoldTrial(cfg, workload.Minprog, core.PureCopy); err != nil {
		t.Fatal(err)
	}
	if st := cd.Stats(); st.Writes != 2 {
		t.Fatalf("writes = %d, want 2 distinct entries", st.Writes)
	}
	if files := entryFiles(t, cd); len(files) != 2 {
		t.Fatalf("entry files = %d, want 2", len(files))
	}
}

// TestDiskCachePrune stores entries past a tiny size cap and asserts
// the oldest are evicted, the newest survive, and the directory ends up
// under the cap.
func TestDiskCachePrune(t *testing.T) {
	d, err := OpenDiskCache(t.TempDir(), 8192)
	if err != nil {
		t.Fatal(err)
	}
	key := func(i int) cacheKey { return cacheKey{fp: uint64(i), variant: variantGrid} }
	payload := &memoPayload{Trial: &TrialResult{BytesTotal: 1}}
	const n = 40
	for i := 0; i < n; i++ {
		d.store(key(i), payload)
		time.Sleep(2 * time.Millisecond) // distinct mtimes for eviction order
	}
	if got := d.scanSize(); got > 8192 {
		t.Fatalf("cache size %d exceeds cap 8192 after prune", got)
	}
	if _, ok := d.load(key(0)); ok {
		t.Error("oldest entry survived the prune")
	}
	if _, ok := d.load(key(n - 1)); !ok {
		t.Error("newest entry was pruned")
	}
}

// TestDiskCacheSkipsErrors ensures failed trials are never persisted:
// an unknown workload kind errors cold and errors again warm.
func TestDiskCacheSkipsErrors(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{}
	bad := workload.Kind(99)
	cold, cd := newDiskEngine(t, dir)
	if _, err := cold.Trial(cfg, bad, core.PureCopy, 0); err == nil {
		t.Fatal("unknown workload did not error")
	}
	if st := cd.Stats(); st.Writes != 0 {
		t.Fatalf("failed trial was persisted (writes = %d)", st.Writes)
	}
	warm, wd := newDiskEngine(t, dir)
	if _, err := warm.Trial(cfg, bad, core.PureCopy, 0); err == nil {
		t.Fatal("unknown workload did not error warm")
	}
	if st := wd.Stats(); st.Hits != 0 {
		t.Fatalf("failed trial was served from disk (hits = %d)", st.Hits)
	}
}
