package ipc

import (
	"errors"
	"testing"
	"time"

	"accentmig/internal/sim"
	"accentmig/internal/vm"
)

func newSys(k *sim.Kernel) *System {
	cpu := sim.NewResource(k, "cpu", 1)
	return NewSystem(k, "m0", cpu, Config{})
}

func TestSendReceive(t *testing.T) {
	k := sim.New()
	s := newSys(k)
	port := s.AllocPort("svc")
	var got *Message
	k.Go("server", func(p *sim.Proc) {
		got = s.Receive(p, port)
	})
	k.Go("client", func(p *sim.Proc) {
		if err := s.Send(p, &Message{Op: 7, To: port.ID, Body: "hi", BodyBytes: 2}); err != nil {
			t.Errorf("Send: %v", err)
		}
	})
	k.Run()
	if got == nil || got.Op != 7 || got.Body.(string) != "hi" {
		t.Errorf("received %+v", got)
	}
}

func TestSendDeadPort(t *testing.T) {
	k := sim.New()
	s := newSys(k)
	port := s.AllocPort("gone")
	s.RemovePort(port)
	var err error
	k.Go("client", func(p *sim.Proc) {
		err = s.Send(p, &Message{To: port.ID})
	})
	k.Run()
	if !errors.Is(err, ErrDeadPort) {
		t.Errorf("err = %v, want ErrDeadPort", err)
	}
}

func TestSmallMessageCopiedLargeMapped(t *testing.T) {
	k := sim.New()
	s := newSys(k)
	port := s.AllocPort("svc")
	big := &MemAttachment{Kind: AttachData, Size: 64 * 512}
	big.Runs = append(big.Runs, vm.PageRun{Index: 0, Count: 64, Data: make([]byte, 64*512)})
	k.Go("client", func(p *sim.Proc) {
		s.Send(p, &Message{To: port.ID, BodyBytes: 100})
		s.Send(p, &Message{To: port.ID, Mem: []*MemAttachment{big}})
	})
	k.Run()
	_, _, copies, maps := s.Stats()
	if copies != 1 || maps != 1 {
		t.Errorf("copies=%d maps=%d, want 1 and 1", copies, maps)
	}
}

func TestMappedTransferCheaperThanCopy(t *testing.T) {
	// The §2.1 point: a large message must cost far less via mapping
	// than a physical copy of the same bytes would.
	k := sim.New()
	s := newSys(k)
	const bytes = 100 * 1024
	att := &MemAttachment{Kind: AttachData, Size: bytes}
	for i := uint64(0); i < bytes/512; i++ {
		att.AppendPage(i, make([]byte, 512))
	}
	mapped, copied := s.transferCPU(&Message{Mem: []*MemAttachment{att}})
	if copied {
		t.Fatal("large message took the copy path")
	}
	copyCost := time.Duration(bytes) * s.cfg.CopyPerByte
	if mapped*5 > copyCost {
		t.Errorf("map cost %v not clearly below copy cost %v", mapped, copyCost)
	}
}

func TestCallRPC(t *testing.T) {
	k := sim.New()
	s := newSys(k)
	svc := s.AllocPort("svc")
	k.Go("server", func(p *sim.Proc) {
		req := s.Receive(p, svc)
		s.Send(p, &Message{To: req.ReplyTo, Body: req.Body.(int) * 2, BodyBytes: 8})
	})
	var ans int
	k.Go("client", func(p *sim.Proc) {
		rep, err := s.Call(p, &Message{To: svc.ID, Body: 21, BodyBytes: 8})
		if err != nil {
			t.Errorf("Call: %v", err)
			return
		}
		ans = rep.Body.(int)
	})
	k.Run()
	if ans != 42 {
		t.Errorf("ans = %d, want 42", ans)
	}
}

func TestReceiveTimeout(t *testing.T) {
	k := sim.New()
	s := newSys(k)
	port := s.AllocPort("svc")
	var ok bool
	k.Go("server", func(p *sim.Proc) {
		_, ok = s.ReceiveTimeout(p, port, 50*time.Millisecond)
	})
	k.Run()
	if ok {
		t.Error("ReceiveTimeout returned a message from nowhere")
	}
}

func TestWireBytes(t *testing.T) {
	m := &Message{BodyBytes: 10}
	base := m.WireBytes()
	if base != msgHeaderBytes+10 {
		t.Errorf("base = %d", base)
	}
	m.Mem = append(m.Mem, &MemAttachment{
		Kind: AttachData,
		Size: 512,
		Runs: []vm.PageRun{{Index: 0, Count: 1, Data: make([]byte, 512)}},
	})
	withData := m.WireBytes()
	if withData != base+dataDescBytes+pageImageHeader+512 {
		t.Errorf("withData = %d", withData)
	}
	m.Mem = append(m.Mem, &MemAttachment{Kind: AttachIOU, Size: 1 << 20})
	if m.WireBytes() != withData+iouDescBytes {
		t.Errorf("IOU attachment priced wrong: %d", m.WireBytes())
	}
}

func TestIOUAttachmentIsTiny(t *testing.T) {
	// The core claim: an IOU for a megabyte costs ~nothing on the wire.
	iou := &Message{Mem: []*MemAttachment{{Kind: AttachIOU, Size: 1 << 20}}}
	if iou.WireBytes() > 256 {
		t.Errorf("IOU message is %d bytes on the wire", iou.WireBytes())
	}
}

func TestPortIDsUniqueAcrossSystems(t *testing.T) {
	k := sim.New()
	a, b := newSys(k), newSys(k)
	pa := a.AllocPort("x")
	pb := b.AllocPort("y")
	if pa.ID == pb.ID {
		t.Error("port IDs collide across machines")
	}
}

func TestAdoptPort(t *testing.T) {
	k := sim.New()
	a, b := newSys(k), newSys(k)
	orig := a.AllocPort("migrant")
	a.RemovePort(orig)
	adopted := b.AdoptPort(orig.ID, "migrant")
	if adopted.ID != orig.ID {
		t.Error("adopted port changed identity")
	}
	var got *Message
	k.Go("server", func(p *sim.Proc) { got = b.Receive(p, adopted) })
	k.Go("client", func(p *sim.Proc) {
		if err := b.Send(p, &Message{To: orig.ID, Op: 1}); err != nil {
			t.Errorf("send to adopted port: %v", err)
		}
	})
	k.Run()
	if got == nil || got.Op != 1 {
		t.Error("message did not reach adopted port")
	}
}

func TestSendChargesCPU(t *testing.T) {
	k := sim.New()
	cpu := sim.NewResource(k, "cpu", 1)
	s := NewSystem(k, "m0", cpu, Config{})
	port := s.AllocPort("svc")
	k.Go("client", func(p *sim.Proc) {
		s.Send(p, &Message{To: port.ID, BodyBytes: 1000})
	})
	k.Run()
	if cpu.BusyTime() == 0 {
		t.Error("Send consumed no CPU")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.CopyThreshold == 0 || c.PerMsgCPU == 0 || c.CopyPerByte == 0 || c.MapPerPage == 0 {
		t.Errorf("defaults missing: %+v", c)
	}
	if c.PageSize != vm.DefaultPageSize {
		t.Errorf("PageSize = %d", c.PageSize)
	}
}
