package ipc

import (
	"testing"
	"time"

	"accentmig/internal/sim"
	"accentmig/internal/vm"
)

func TestLocalPortPreferredOverRouter(t *testing.T) {
	// A local port always wins; the router is only consulted for
	// nonlocal destinations.
	k := sim.New()
	s := newSys(k)
	routed := false
	s.SetRouter(func(m *Message) bool { routed = true; return true })
	port := s.AllocPort("local")
	k.Go("rx", func(p *sim.Proc) { s.Receive(p, port) })
	k.Go("tx", func(p *sim.Proc) {
		if err := s.Send(p, &Message{To: port.ID}); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	k.Run()
	if routed {
		t.Error("router consulted for a local port")
	}
}

func TestRouterDeclineFallsThrough(t *testing.T) {
	k := sim.New()
	s := newSys(k)
	s.SetRouter(func(m *Message) bool { return false })
	var err error
	k.Go("tx", func(p *sim.Proc) {
		err = s.Send(p, &Message{To: 424242})
	})
	k.Run()
	if err == nil {
		t.Error("declined route did not surface ErrDeadPort")
	}
}

func TestStatsCountsAllOperations(t *testing.T) {
	k := sim.New()
	s := newSys(k)
	port := s.AllocPort("svc")
	k.Go("rx", func(p *sim.Proc) {
		s.Receive(p, port)
		s.Receive(p, port)
	})
	k.Go("tx", func(p *sim.Proc) {
		s.Send(p, &Message{To: port.ID, BodyBytes: 10})
		s.Send(p, &Message{To: port.ID, BodyBytes: 10})
	})
	k.Run()
	sends, receives, copies, maps := s.Stats()
	if sends != 2 || receives != 2 {
		t.Errorf("sends=%d receives=%d", sends, receives)
	}
	if copies != 2 || maps != 0 {
		t.Errorf("copies=%d maps=%d for tiny messages", copies, maps)
	}
}

func TestReceiveChargesCPU(t *testing.T) {
	k := sim.New()
	cpu := sim.NewResource(k, "cpu", 1)
	s := NewSystem(k, "m0", cpu, Config{})
	port := s.AllocPort("svc")
	var sendBusy, totalBusy time.Duration
	k.Go("tx", func(p *sim.Proc) {
		s.Send(p, &Message{To: port.ID, BodyBytes: 1000})
		sendBusy = cpu.BusyTime()
	})
	k.Go("rx", func(p *sim.Proc) {
		s.Receive(p, port)
		totalBusy = cpu.BusyTime()
	})
	k.Run()
	if totalBusy <= sendBusy {
		t.Errorf("receive consumed no CPU: send %v, total %v", sendBusy, totalBusy)
	}
}

func TestCopyThresholdBoundary(t *testing.T) {
	k := sim.New()
	cpu := sim.NewResource(k, "cpu", 1)
	s := NewSystem(k, "m0", cpu, Config{CopyThreshold: 1000})
	at, _ := s.transferCPU(&Message{BodyBytes: 1000})
	over, copied := s.transferCPU(&Message{BodyBytes: 1001})
	if copied {
		t.Error("message over threshold took the copy path")
	}
	// At the boundary the copy path applies and costs more than mapping
	// just over it — the discontinuity the ablation exploits.
	if at <= over {
		t.Errorf("copy at threshold (%v) not above map just over it (%v)", at, over)
	}
}

func TestWireBytesMultiplePages(t *testing.T) {
	att := &MemAttachment{Kind: AttachData, Size: 3 * 512}
	att.Runs = append(att.Runs, vm.PageRun{Index: 0, Count: 3, Data: make([]byte, 3*512)})
	m := &Message{Mem: []*MemAttachment{att}}
	// One run of three pages still prices three per-page headers.
	want := msgHeaderBytes + dataDescBytes + 3*pageImageHeader + 3*512
	if got := m.WireBytes(); got != want {
		t.Errorf("WireBytes = %d, want %d", got, want)
	}
}

func TestCallToDeadPortFails(t *testing.T) {
	k := sim.New()
	s := newSys(k)
	ghost := s.AllocPort("ghost")
	s.RemovePort(ghost)
	var err error
	k.Go("tx", func(p *sim.Proc) {
		_, err = s.Call(p, &Message{To: ghost.ID})
	})
	k.Run()
	if err == nil {
		t.Error("Call to dead port succeeded")
	}
	// The temporary reply port must not leak.
	if _, ok := s.Lookup(ghost.ID + 1); ok {
		t.Log("note: reply port still present (cleanup check heuristic)")
	}
}

func TestPendingCount(t *testing.T) {
	k := sim.New()
	s := newSys(k)
	port := s.AllocPort("svc")
	k.Go("tx", func(p *sim.Proc) {
		s.Send(p, &Message{To: port.ID})
		s.Send(p, &Message{To: port.ID})
		if port.Pending() != 2 {
			t.Errorf("Pending = %d, want 2", port.Pending())
		}
	})
	k.Run()
}
