// Package ipc models the Accent inter-process communication facility:
// ports with simulation-wide unique names, messages that can carry both
// small inline bodies and arbitrarily large memory attachments, and the
// copy-vs-map cost discipline of §2.1 — small messages are physically
// copied twice (in and out of the kernel) while large ones are mapped
// copy-on-write at a fraction of the cost.
package ipc

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"accentmig/internal/obs"
	"accentmig/internal/sim"
	"accentmig/internal/vm"
)

// PortID names a port uniquely across the whole simulation, so that
// port identity survives migration and proxying between machines.
type PortID uint64

// nextPortID is atomic so that independent simulation kernels running
// on concurrent goroutines (parallel experiment trials) can allocate
// ports without racing. Port IDs are opaque identities; their numeric
// values never influence simulation behavior.
var nextPortID atomic.Uint64

// ErrDeadPort is returned when sending to a deallocated or unknown port.
var ErrDeadPort = errors.New("ipc: send to dead port")

// OpSendFailed is a local-only negative acknowledgement: when a
// reliable transport declares the peer dead after exhausting
// retransmits, it synthesizes this message to the sender's local
// ReplyTo port so the waiter unblocks with a cause instead of timing
// out. It never crosses the wire and has no codec. Body: *SendFailure.
const OpSendFailed = 0x0F01

// SendFailure describes the message a transport gave up on.
type SendFailure struct {
	To     PortID // destination of the failed message
	Op     int    // its operation code
	Reason string
}

// SendFailureBytes is the accounting size of a SendFailure body.
const SendFailureBytes = 32

// Port is a protected kernel message queue. The process holding Receive
// rights drains it; anyone naming the ID can send.
type Port struct {
	ID    PortID
	Name  string
	sys   *System
	queue *sim.Queue[*Message]
	dead  bool
}

// String identifies the port for logs.
func (p *Port) String() string { return fmt.Sprintf("port(%d:%s)", p.ID, p.Name) }

// Pending reports queued, unreceived messages.
func (p *Port) Pending() int { return p.queue.Len() }

// AttachKind distinguishes the ways a message can convey memory.
type AttachKind int

const (
	// AttachData carries physical page images.
	AttachData AttachKind = iota
	// AttachIOU carries a promise: an imaginary-segment descriptor whose
	// pages will be delivered on demand by the backing port (§2.2).
	AttachIOU
)

// MemAttachment is one contiguous range of process memory conveyed by a
// message, either physically (Data) or by promise (IOU).
type MemAttachment struct {
	Kind AttachKind
	VA   vm.Addr // base virtual address the range occupies
	Size uint64  // bytes

	// Collapsed marks a RIMAS collapsed-area attachment, which has no
	// VA of its own — the RIMAS run table maps slices of it. Resident
	// further marks the resident-set half of a split collapsed area.
	// Intermediaries preserve both.
	Collapsed bool
	Resident  bool

	// AttachData fields. Page data travels run-batched: each PageRun is
	// one header plus the bytes of Count consecutive pages (indices are
	// page offsets from the attachment's base address).
	Runs []vm.PageRun
	Copy bool // per-attachment NoIOU: intermediaries must not replace this data with an IOU

	// CompBytes, when positive, is the modeled post-compression size of
	// the attachment's payload: WireBytes prices the payload at this
	// size instead of DataBytes. Set by the content-addressed store's
	// compression model; zero means uncompressed. Intermediaries
	// preserve it. Kernel copy costs (transferCPU) still see the raw
	// bytes — compression is a wire-format property, not an
	// address-space one.
	CompBytes int

	// Sums, when non-nil, carries an end-to-end per-page checksum for
	// each payload page, in run order (Sums[i] names the i-th page
	// across the attachment's Runs). The receiver verifies them at
	// install time; WireBytes prices them. Intermediaries preserve
	// them. Nil means the attachment is unprotected, which keeps
	// integrity-off runs byte-identical.
	Sums []uint64

	// AttachIOU fields.
	SegID   uint64 // backing segment identity at the backer
	SegOff  uint64 // offset of VA within that segment
	SegSize uint64 // full segment size
	Backing PortID // port owing the data
}

// DataBytes reports the physical payload carried by the attachment.
func (a *MemAttachment) DataBytes() int {
	return vm.RunDataBytes(a.Runs)
}

// PageCount reports the number of pages the attachment carries.
func (a *MemAttachment) PageCount() int {
	return vm.RunPageCount(a.Runs)
}

// AppendPage appends a single page image as its own one-page run —
// the incremental construction path for builders whose pages are not
// already contiguous in memory (pre-copy snapshots, tests).
func (a *MemAttachment) AppendPage(index uint64, data []byte) {
	a.Runs = append(a.Runs, vm.PageRun{Index: index, Count: 1, Data: data})
}

// descriptor sizes for wire accounting.
const (
	msgHeaderBytes  = 64
	dataDescBytes   = 24
	iouDescBytes    = 48
	pageImageHeader = 8
	pageSumBytes    = 8
)

// Message is a single IPC message.
type Message struct {
	// ID is the flight-recorder correlation id: stamped (lazily, only
	// while tracing) at the message's first Send and preserved across
	// wire re-encodings, so every MsgSend/MsgRecv event of one logical
	// message can be matched into a causal edge. Zero when untraced.
	// It is observability metadata, never protocol state.
	ID      uint64
	Op      int
	To      PortID
	ReplyTo PortID
	Body    any
	// BodyBytes is the encoded size of Body for costing; callers set it
	// because Body is an arbitrary Go value.
	BodyBytes int
	Mem       []*MemAttachment

	// NoIOUs, when set, tells intermediaries (NetMsgServers) that every
	// data attachment must be physically transmitted (§2.4).
	NoIOUs bool

	// FaultSupport marks traffic generated in support of imaginary
	// fault activity, for the Figure 4-5 traffic split.
	FaultSupport bool

	// Background marks opportunistic traffic (streamed prefetch) that
	// must yield the wire to demand traffic: a NetMsgServer drains its
	// foreground backlog before forwarding any background message. A
	// local scheduling hint, not part of the encoded frame — each hop
	// that needs it sets it from the request body.
	Background bool
}

// WireBytes reports the message's encoded size: header, body, and
// attachment descriptors plus physical payloads.
func (m *Message) WireBytes() int {
	n := msgHeaderBytes + m.BodyBytes
	for _, a := range m.Mem {
		switch a.Kind {
		case AttachData:
			// Accounting stays per-page even though transfer is
			// run-batched: the wire estimate charges one page header per
			// page, as the calibrated model always has. A modeled
			// compressed size, when set, replaces the raw payload (the
			// headers still ship uncompressed).
			payload := a.DataBytes()
			if a.CompBytes > 0 {
				payload = a.CompBytes
			}
			n += dataDescBytes + a.PageCount()*pageImageHeader + payload
			n += len(a.Sums) * pageSumBytes
		case AttachIOU:
			n += iouDescBytes
		}
	}
	return n
}

// Config sets the IPC cost model. Zero values select defaults
// calibrated for the Perq-era testbed.
type Config struct {
	// CopyThreshold: messages at or below this many payload bytes are
	// physically copied; larger ones are memory-mapped copy-on-write.
	CopyThreshold int
	// PerMsgCPU is the fixed kernel cost of queueing or dequeueing one
	// message.
	PerMsgCPU time.Duration
	// CopyPerByte is the cost of physically copying payload.
	CopyPerByte time.Duration
	// MapPerPage is the cost of map-in/map-out per page for large
	// messages transferred by COW mapping.
	MapPerPage time.Duration
	// PageSize is used to count pages for MapPerPage.
	PageSize int
}

func (c Config) withDefaults() Config {
	if c.CopyThreshold == 0 {
		c.CopyThreshold = 4096
	}
	if c.PerMsgCPU == 0 {
		c.PerMsgCPU = 2 * time.Millisecond
	}
	if c.CopyPerByte == 0 {
		c.CopyPerByte = 1500 * time.Nanosecond // ≈0.7 MB/s Perq memcpy
	}
	if c.MapPerPage == 0 {
		c.MapPerPage = 20 * time.Microsecond
	}
	if c.PageSize == 0 {
		c.PageSize = vm.DefaultPageSize
	}
	return c
}

// Router is the hook a NetMsgServer installs to claim messages whose
// destination port is not local. It returns true if it accepted the
// message for forwarding.
type Router func(m *Message) bool

// System is one machine's IPC facility.
type System struct {
	k      *sim.Kernel
	cpu    *sim.Resource
	cfg    Config
	name   string
	ports  map[PortID]*Port
	router Router

	sends    uint64
	receives uint64
	copies   uint64 // messages moved by physical copy
	maps     uint64 // messages moved by COW mapping
}

// NewSystem returns the IPC system for one machine. cpu is the
// machine's CPU: all IPC handling work contends for it.
func NewSystem(k *sim.Kernel, name string, cpu *sim.Resource, cfg Config) *System {
	return &System{
		k:     k,
		cpu:   cpu,
		cfg:   cfg.withDefaults(),
		name:  name,
		ports: make(map[PortID]*Port),
	}
}

// Config exposes the active cost model.
func (s *System) Config() Config { return s.cfg }

// AllocPort creates a new port owned by this machine.
func (s *System) AllocPort(name string) *Port {
	p := &Port{ID: PortID(nextPortID.Add(1)), Name: name, sys: s, queue: sim.NewQueue[*Message](s.k)}
	s.ports[p.ID] = p
	return p
}

// AdoptPort installs an existing port identity on this machine (port
// rights arriving with a migrated process). The queue starts empty; any
// in-flight messages are the network layer's problem, as in real life.
func (s *System) AdoptPort(id PortID, name string) *Port {
	p := &Port{ID: id, Name: name, sys: s, queue: sim.NewQueue[*Message](s.k)}
	s.ports[id] = p
	return p
}

// RemovePort deallocates the port; future sends fail with ErrDeadPort.
func (s *System) RemovePort(p *Port) {
	p.dead = true
	delete(s.ports, p.ID)
}

// Drain removes and returns all buffered, undelivered messages — used
// when a port right migrates so its pending mail travels with it.
func (p *Port) Drain() []*Message {
	var out []*Message
	for {
		m, ok := p.queue.TryPop()
		if !ok {
			return out
		}
		out = append(out, m)
	}
}

// Enqueue re-queues a message directly (mail re-delivered on the far
// side of a migration). No cost is charged: the copy-in was paid at the
// original Send.
func (p *Port) Enqueue(m *Message) {
	p.queue.Push(m)
}

// Lookup finds a local port by ID.
func (s *System) Lookup(id PortID) (*Port, bool) {
	p, ok := s.ports[id]
	return p, ok
}

// transferCPU is the copy-or-map cost for moving a message across one
// address-space boundary (§2.1's double-copy done lazily).
func (s *System) transferCPU(m *Message) (time.Duration, bool) {
	payload := m.BodyBytes
	for _, a := range m.Mem {
		if a.Kind == AttachData {
			payload += a.DataBytes()
		}
	}
	if payload <= s.cfg.CopyThreshold {
		return time.Duration(payload) * s.cfg.CopyPerByte, true
	}
	pages := (payload + s.cfg.PageSize - 1) / s.cfg.PageSize
	return time.Duration(pages) * s.cfg.MapPerPage, false
}

// SetRouter installs the network-forwarding hook consulted when a
// destination port is not local (the NetMsgServer's role).
func (s *System) SetRouter(r Router) { s.router = r }

// emitMsg records one message crossing the user/kernel boundary; cost
// is the handling CPU just charged, ending at the current instant.
func (s *System) emitMsg(kind obs.Kind, p *sim.Proc, m *Message, cost time.Duration) {
	if !s.k.Tracing() {
		return
	}
	if m.ID == 0 {
		m.ID = s.k.NextTraceID()
	}
	s.k.Emit(obs.Event{
		Kind:    kind,
		Machine: s.name,
		Proc:    p.Name(),
		Op:      m.Op,
		Bytes:   m.WireBytes(),
		Dur:     cost,
		MsgID:   m.ID,
	})
}

// Send queues m on its destination port, charging the kernel's copy-in
// cost against the machine CPU. A destination not present on this
// machine is offered to the router (network transparency); with no
// router or no route the send fails with ErrDeadPort.
func (s *System) Send(p *sim.Proc, m *Message) error {
	xfer, copied := s.transferCPU(m)
	s.cpu.UseHigh(p, s.cfg.PerMsgCPU+xfer)
	s.emitMsg(obs.MsgSend, p, m, s.cfg.PerMsgCPU+xfer)
	dst, ok := s.ports[m.To]
	if !ok || dst.dead {
		if s.router != nil && s.router(m) {
			if copied {
				s.copies++
			} else {
				s.maps++
			}
			s.sends++
			return nil
		}
		return fmt.Errorf("%w: id %d on %s", ErrDeadPort, m.To, s.name)
	}
	if copied {
		s.copies++
	} else {
		s.maps++
	}
	s.sends++
	dst.queue.Push(m)
	return nil
}

// Receive blocks p until a message arrives on port, charging the
// copy-out (or map-in) cost.
func (s *System) Receive(p *sim.Proc, port *Port) *Message {
	m := port.queue.Pop(p)
	xfer, _ := s.transferCPU(m)
	s.cpu.UseHigh(p, s.cfg.PerMsgCPU+xfer)
	s.emitMsg(obs.MsgRecv, p, m, s.cfg.PerMsgCPU+xfer)
	s.receives++
	return m
}

// ReceiveTimeout is Receive with a virtual-time deadline; ok is false
// on timeout. Used by retry logic under failure injection.
func (s *System) ReceiveTimeout(p *sim.Proc, port *Port, d time.Duration) (*Message, bool) {
	m, ok := port.queue.PopTimeout(p, d)
	if !ok {
		return nil, false
	}
	xfer, _ := s.transferCPU(m)
	s.cpu.UseHigh(p, s.cfg.PerMsgCPU+xfer)
	s.emitMsg(obs.MsgRecv, p, m, s.cfg.PerMsgCPU+xfer)
	s.receives++
	return m, true
}

// Call performs an RPC: allocates a one-shot reply port, sends m with
// ReplyTo set, and waits for the reply.
func (s *System) Call(p *sim.Proc, m *Message) (*Message, error) {
	reply := s.AllocPort("reply")
	defer s.RemovePort(reply)
	m.ReplyTo = reply.ID
	if err := s.Send(p, m); err != nil {
		return nil, err
	}
	return s.Receive(p, reply), nil
}

// Stats reports send/receive/copy/map counts (copy vs map feeds the
// copy-threshold ablation).
func (s *System) Stats() (sends, receives, copies, maps uint64) {
	return s.sends, s.receives, s.copies, s.maps
}
