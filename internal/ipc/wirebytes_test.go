package ipc

import (
	"testing"

	"accentmig/internal/vm"
)

// These tests pin the wire-cost model arithmetically: every byte the
// estimate charges is accounted for by name, so manifest and elision
// pricing (which subtracts pages from attachments) lands on a tested
// baseline instead of an incidental one.

func TestWireBytesBodyOnly(t *testing.T) {
	m := &Message{Op: 1, BodyBytes: 100}
	if got, want := m.WireBytes(), msgHeaderBytes+100; got != want {
		t.Errorf("body-only message: %d bytes, want %d", got, want)
	}
}

func TestWireBytesDataAttachmentPerPageHeaders(t *testing.T) {
	ps := vm.DefaultPageSize
	mk := func(runs ...vm.PageRun) *Message {
		return &Message{Mem: []*MemAttachment{{Kind: AttachData, Runs: runs}}}
	}
	// One 3-page run and three 1-page runs carrying the same pages must
	// price identically: the estimate charges per page, not per run.
	data := make([]byte, 3*ps)
	batched := mk(vm.PageRun{Index: 0, Count: 3, Data: data})
	split := mk(
		vm.PageRun{Index: 0, Count: 1, Data: data[:ps]},
		vm.PageRun{Index: 1, Count: 1, Data: data[ps : 2*ps]},
		vm.PageRun{Index: 2, Count: 1, Data: data[2*ps:]},
	)
	want := msgHeaderBytes + dataDescBytes + 3*pageImageHeader + 3*ps
	if got := batched.WireBytes(); got != want {
		t.Errorf("batched run: %d bytes, want %d", got, want)
	}
	if got := split.WireBytes(); got != want {
		t.Errorf("split runs: %d bytes, want %d", got, want)
	}
}

func TestWireBytesPartialFinalPage(t *testing.T) {
	ps := vm.DefaultPageSize
	// A 2-page run whose final page is short: two page headers, but
	// only the bytes actually carried.
	data := make([]byte, ps+100)
	m := &Message{Mem: []*MemAttachment{{
		Kind: AttachData,
		Runs: []vm.PageRun{{Index: 0, Count: 2, Data: data}},
	}}}
	want := msgHeaderBytes + dataDescBytes + 2*pageImageHeader + ps + 100
	if got := m.WireBytes(); got != want {
		t.Errorf("partial final page: %d bytes, want %d", got, want)
	}
}

func TestWireBytesIOUAttachment(t *testing.T) {
	m := &Message{Mem: []*MemAttachment{{Kind: AttachIOU, SegID: 7, SegSize: 1 << 20}}}
	if got, want := m.WireBytes(), msgHeaderBytes+iouDescBytes; got != want {
		t.Errorf("IOU attachment: %d bytes, want %d", got, want)
	}
}

func TestWireBytesCompressedPayload(t *testing.T) {
	ps := vm.DefaultPageSize
	a := &MemAttachment{
		Kind: AttachData,
		Runs: []vm.PageRun{{Index: 0, Count: 4, Data: make([]byte, 4*ps)}},
	}
	m := &Message{Mem: []*MemAttachment{a}}
	raw := m.WireBytes()
	a.CompBytes = 300
	want := msgHeaderBytes + dataDescBytes + 4*pageImageHeader + 300
	if got := m.WireBytes(); got != want {
		t.Errorf("compressed payload: %d bytes, want %d", got, want)
	}
	if got := m.WireBytes(); got >= raw {
		t.Errorf("compression did not reduce the estimate: %d >= %d", got, raw)
	}
	// Headers are never compressed: the per-page charge survives.
	if want-msgHeaderBytes-dataDescBytes-300 != 4*pageImageHeader {
		t.Fatal("per-page header charge lost under compression")
	}
}

func TestPageRunAccessors(t *testing.T) {
	ps := vm.DefaultPageSize
	data := make([]byte, 2*ps+64)
	for i := range data {
		data[i] = byte(i)
	}
	r := vm.PageRun{Index: 10, Count: 3, Data: data}
	if got := r.Page(0, ps); len(got) != ps || &got[0] != &data[0] {
		t.Error("page 0 slice wrong")
	}
	if got := r.Page(2, ps); len(got) != 64 {
		t.Errorf("final partial page has %d bytes, want 64", len(got))
	}
	if got := vm.RunPageCount([]vm.PageRun{r, {Count: 5}}); got != 8 {
		t.Errorf("RunPageCount = %d, want 8", got)
	}
	if got := vm.RunDataBytes([]vm.PageRun{r}); got != len(data) {
		t.Errorf("RunDataBytes = %d, want %d", got, len(data))
	}
}
