// Package pager implements the Pager/Scheduler role of §2.2–2.3: it
// resolves memory touches into FillZero faults (cheap, diskless), disk
// faults (local page-in), and imaginary faults (an Imaginary Read
// Request to the segment's backing port, with optional prefetch), and
// it manages physical-memory residency including dirty write-back.
//
// For simulation economy the fault path executes in the context of the
// faulting process while charging the machine CPU, rather than
// context-switching to a separate Pager/Scheduler process; the elapsed
// times and CPU consumption are the same, which is what the paper
// measures.
package pager

import (
	"errors"
	"fmt"
	"time"

	"accentmig/internal/disk"
	"accentmig/internal/imag"
	"accentmig/internal/ipc"
	"accentmig/internal/metrics"
	"accentmig/internal/obs"
	"accentmig/internal/sim"
	"accentmig/internal/vm"
)

// ErrAddressError reports a touch of BadMem, which in Accent invokes
// the debugger on the delinquent process.
var ErrAddressError = errors.New("pager: address error (BadMem)")

// ErrBackerLost reports that an imaginary fault could not be serviced
// after all retries.
var ErrBackerLost = errors.New("pager: imaginary read request unanswered")

// ErrSegmentDead reports that the backer answered an imaginary fault
// with a definitive refusal (the segment was dropped or never held the
// page) — retrying can never succeed.
var ErrSegmentDead = errors.New("pager: imaginary segment dead at backer")

// OrphanPolicy selects what happens to an imaginary fault whose backer
// is gone (dead peer, crashed backer, dead segment).
type OrphanPolicy int

const (
	// OrphanFail surfaces the loss as an error to the faulting process.
	OrphanFail OrphanPolicy = iota
	// OrphanZeroFill degrades the orphaned fault to a FillZero: the
	// process continues with a zero page instead of dying.
	OrphanZeroFill
)

// Config sets the fault cost model. Zero values select defaults
// calibrated so a local disk fault lands near the paper's 40.8 ms and a
// remote imaginary fault near 115 ms.
type Config struct {
	// FillZeroCPU is the whole cost of a FillZero fault: reserve a
	// frame, zero it, map it. The disk is never consulted.
	FillZeroCPU time.Duration
	// FaultCPU is the base fault-handling overhead (trap, map lookup,
	// resume) charged on disk and imaginary faults.
	FaultCPU time.Duration
	// ImagCPU is the extra Pager/Scheduler work on the faulting side of
	// an imaginary fault (building the request, fielding the reply).
	ImagCPU time.Duration
	// MapInCPU is charged per page mapped in from a fault reply.
	MapInCPU time.Duration
	// RetryTimeout bounds the wait for an imaginary read reply; on
	// expiry the request is resent. Zero waits forever (reliable link).
	RetryTimeout time.Duration
	// MaxRetries bounds resends when RetryTimeout is set.
	MaxRetries int
	// Orphan selects the fate of faults whose backer is unreachable or
	// definitively gone. Default OrphanFail.
	Orphan OrphanPolicy
	// Outstanding is how many imaginary fetches the pager may keep in
	// flight at once (windowed IOU streaming). At the default (0 or 1)
	// an imaginary fault synchronously requests the demand page plus
	// its whole prefetch run in one reply, exactly as before. With
	// K > 1 and prefetch enabled, faults ask the backer to split its
	// reply: the demanded page returns alone — the faulting process
	// unblocks as soon as that one-page reply lands — and the prefetch
	// run follows as a background-priority reply that overlaps the
	// process's compute and yields the wire to demand traffic. Up to K
	// such background runs may be in flight before faults fall back to
	// the synchronous path.
	Outstanding int
}

func (c Config) withDefaults() Config {
	if c.FillZeroCPU == 0 {
		c.FillZeroCPU = 3 * time.Millisecond
	}
	if c.FaultCPU == 0 {
		c.FaultCPU = 7 * time.Millisecond
	}
	if c.ImagCPU == 0 {
		c.ImagCPU = 38 * time.Millisecond
	}
	if c.MapInCPU == 0 {
		c.MapInCPU = 2 * time.Millisecond
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 8
	}
	return c
}

// Stats counts fault activity.
type Stats struct {
	FillZero   uint64
	DiskFaults uint64
	ImagFaults uint64
	MapIns     uint64 // cheap missing-mapping completions
	Retries    uint64
	ZeroFills  uint64 // orphaned imaginary faults resolved by zero-fill

	PrefetchedPages uint64 // extra pages that arrived with fault replies
	PrefetchHits    uint64 // prefetched pages later touched
	StreamedPages   uint64 // prefetch replies that arrived as background stream messages
	StreamWaits     uint64 // faults parked on an in-flight streamed page

	// Content-addressed store counters (dedup enabled only).
	LocalServes  uint64 // imaginary faults satisfied from the local content index
	HolderServes uint64 // imaginary faults satisfied by a nearest-holder fetch
	Repairs      uint64 // corrupt installs re-fetched by hash (integrity on)
}

// HitRatio reports the fraction of prefetched pages that were
// eventually touched.
func (s Stats) HitRatio() float64 {
	if s.PrefetchedPages == 0 {
		return 0
	}
	return float64(s.PrefetchHits) / float64(s.PrefetchedPages)
}

// Pager is one machine's fault handler.
type Pager struct {
	k    *sim.Kernel
	name string
	cpu  *sim.Resource
	phys *vm.PhysMem
	dsk  *disk.Disk
	sys  *ipc.System
	cfg  Config

	prefetch int
	rec      *metrics.Recorder
	stats    Stats

	// prefetched tracks pages that arrived unrequested and have not
	// been touched yet, for hit-ratio accounting.
	prefetched map[pageKey]bool

	// Windowed IOU streaming state (Outstanding > 1 only); nil until
	// the first streamed fault so default runs schedule exactly the
	// processes they always did. streamPort receives the background
	// prefetch halves of split fault replies; streamSegs resolves their
	// SegID back to a segment; streamInFlight soft-caps concurrent
	// split replies at cfg.Outstanding. streamPending marks pages a
	// split reply has promised but not yet delivered (from the demand
	// half's StreamRuns), so a demand fault on one parks on a waiter
	// queue instead of buying a duplicate round trip.
	streamPort     *ipc.Port
	streamSegs     map[uint64]*vm.Segment
	streamInFlight int
	streamPending  map[pageKey]bool
	streamWaiters  map[pageKey][]*sim.Queue[struct{}]

	// Content-addressed fault serving (dedup enabled only; all nil/zero
	// otherwise). hints remembers the content hash of still-owed
	// imaginary pages, registered at process insertion from the
	// migration manifest. index is the machine's content index. resolver
	// maps a hash to the backing port of the nearest machine holding
	// that content (nearest by link cost; wired by the testbed), letting
	// a fault bypass a distant origin backer.
	index    *vm.ContentIndex
	dedup    vm.DedupConfig
	hints    map[pageKey]uint64
	resolver func(hash uint64) (ipc.PortID, bool)
}

type pageKey struct {
	segID uint64
	index uint64
}

// New assembles a pager from the machine's parts.
func New(k *sim.Kernel, name string, cpu *sim.Resource, phys *vm.PhysMem, dsk *disk.Disk, sys *ipc.System, cfg Config) *Pager {
	return &Pager{
		k:          k,
		name:       name,
		cpu:        cpu,
		phys:       phys,
		dsk:        dsk,
		sys:        sys,
		cfg:        cfg.withDefaults(),
		prefetched: make(map[pageKey]bool),
	}
}

// SetPrefetch sets how many extra contiguous pages each imaginary read
// request asks for (the paper's PF0/1/3/7/15 knob).
func (pg *Pager) SetPrefetch(n int) { pg.prefetch = n }

// Prefetch reports the current prefetch amount.
func (pg *Pager) Prefetch() int { return pg.prefetch }

// Outstanding reports the configured imaginary-fetch concurrency,
// never less than one.
func (pg *Pager) Outstanding() int {
	if pg.cfg.Outstanding < 1 {
		return 1
	}
	return pg.cfg.Outstanding
}

// SetRecorder directs counters to rec (may be nil).
func (pg *Pager) SetRecorder(rec *metrics.Recorder) { pg.rec = rec }

// SetContentIndex attaches the machine's content index and the dedup
// cost knobs; faults on hinted pages may then be served locally.
func (pg *Pager) SetContentIndex(ix *vm.ContentIndex, cfg vm.DedupConfig) {
	pg.index = ix
	pg.dedup = cfg
}

// SetHolderResolver installs the nearest-holder lookup: given a content
// hash, return the backing port of the closest machine (by link cost)
// whose index holds it. Wired by testbeds, not by machine config — a
// resolver is topology, not tuning.
func (pg *Pager) SetHolderResolver(fn func(hash uint64) (ipc.PortID, bool)) {
	pg.resolver = fn
}

// RegisterHint remembers the content hash of a still-owed imaginary
// page, so a later fault on it can consult the content index before
// buying a wire round trip. Zero-page hints are not retained: elided
// zero pages are reconstructed at insertion and never fault.
func (pg *Pager) RegisterHint(segID, pageIdx, hash uint64) {
	if hash == vm.ZeroHash {
		return
	}
	if pg.hints == nil {
		pg.hints = make(map[pageKey]uint64)
	}
	pg.hints[pageKey{segID, pageIdx}] = hash
}

// Stats returns a copy of the fault counters.
func (pg *Pager) Stats() Stats { return pg.stats }

// ResetStats clears fault counters (between experiment phases).
func (pg *Pager) ResetStats() {
	pg.stats = Stats{}
	pg.prefetched = make(map[pageKey]bool)
}

func (pg *Pager) inc(name string) {
	if pg.rec != nil {
		pg.rec.Inc(name, 1)
	}
}

func (pg *Pager) observe(name string, v time.Duration) {
	if pg.rec != nil {
		pg.rec.Observe(name, v)
	}
}

// faultStart opens a fault span in the flight recorder; kind is the
// fault class (fillzero, disk, imag).
func (pg *Pager) faultStart(p *sim.Proc, kind string, addr vm.Addr) {
	if pg.k.Tracing() {
		pg.k.Emit(obs.Event{
			Kind:    obs.FaultStart,
			Machine: pg.name,
			Proc:    p.Name(),
			Name:    kind,
			Addr:    uint64(addr),
		})
	}
}

// faultResolved closes a fault span; Dur is the resolution latency.
func (pg *Pager) faultResolved(p *sim.Proc, kind string, addr vm.Addr, start time.Duration) {
	if pg.k.Tracing() {
		pg.k.Emit(obs.Event{
			Kind:    obs.FaultResolved,
			Machine: pg.name,
			Proc:    p.Name(),
			Name:    kind,
			Addr:    uint64(addr),
			Dur:     p.Now() - start,
		})
	}
}

// Touch makes the page under addr resident, faulting as needed, and
// updates LRU. write additionally marks the page dirty (performing any
// deferred COW copy). This is the MMU+fault path every simulated memory
// reference takes.
func (pg *Pager) Touch(p *sim.Proc, as *vm.AddressSpace, addr vm.Addr, write bool) error {
	pl, ok := as.Resolve(addr)
	if !ok {
		return fmt.Errorf("%w: %#x in %s", ErrAddressError, addr, pg.name)
	}
	key := pageKey{pl.Seg.ID, pl.PageIdx}
	page := pl.Seg.Page(pl.PageIdx)

	switch {
	case page == nil && pl.Seg.Class == vm.ImagSeg:
		start := p.Now()
		pg.faultStart(p, "imag", addr)
		if err := pg.imagFault(p, pl); err != nil {
			return err
		}
		pg.observe("latency.fault.imag", p.Now()-start)
		pg.faultResolved(p, "imag", addr, start)
	case page == nil:
		// FillZero: conjure a zero frame; never touches the disk.
		start := p.Now()
		pg.faultStart(p, "fillzero", addr)
		pg.cpu.UseHigh(p, pg.cfg.FillZeroCPU)
		pl.Seg.MaterializeZero(pl.PageIdx)
		pg.insert(pl.Seg, pl.PageIdx)
		pg.stats.FillZero++
		pg.inc("fault.fillzero")
		pg.observe("latency.fault.fillzero", p.Now()-start)
		pg.faultResolved(p, "fillzero", addr, start)
	case page.State.Resident:
		pg.phys.Touch(pl.Seg, pl.PageIdx)
	case page.State.OnDisk:
		start := p.Now()
		pg.faultStart(p, "disk", addr)
		pg.cpu.UseHigh(p, pg.cfg.FaultCPU)
		pg.dsk.Read(p, as.PageSize())
		pg.insert(pl.Seg, pl.PageIdx)
		pg.stats.DiskFaults++
		pg.inc("fault.disk")
		pg.observe("latency.fault.disk", p.Now()-start)
		pg.faultResolved(p, "disk", addr, start)
	default:
		// Materialized, not resident, not on disk: data just arrived in
		// a message; only the mapping is missing (§2.3's cheap RealMem
		// case).
		pg.cpu.UseHigh(p, pg.cfg.MapInCPU)
		pg.insert(pl.Seg, pl.PageIdx)
		pg.stats.MapIns++
	}

	if pg.prefetched[key] {
		delete(pg.prefetched, key)
		pg.stats.PrefetchHits++
		pg.inc("prefetch.hit")
	}
	if write {
		if pl.Seg.BreakCOW(pl.PageIdx) {
			// Deferred copy: charge the 512-byte page copy.
			pg.cpu.UseHigh(p, time.Duration(as.PageSize())*pg.sys.Config().CopyPerByte)
		}
		pl.Seg.Page(pl.PageIdx).MarkWritten()
	}
	return nil
}

// Read returns n bytes at addr, faulting the page in first.
func (pg *Pager) Read(p *sim.Proc, as *vm.AddressSpace, addr vm.Addr, n int) ([]byte, error) {
	if err := pg.Touch(p, as, addr, false); err != nil {
		return nil, err
	}
	pl, _ := as.Resolve(addr)
	if n > as.PageSize()-pl.Offset {
		n = as.PageSize() - pl.Offset
	}
	return pl.Seg.Read(pl.PageIdx, pl.Offset, n), nil
}

// Write stores data at addr (within one page), faulting first.
func (pg *Pager) Write(p *sim.Proc, as *vm.AddressSpace, addr vm.Addr, data []byte) error {
	if err := pg.Touch(p, as, addr, true); err != nil {
		return err
	}
	pl, _ := as.Resolve(addr)
	if len(data) > as.PageSize()-pl.Offset {
		return fmt.Errorf("pager: write of %d bytes crosses page boundary at %#x", len(data), addr)
	}
	pl.Seg.Write(pl.PageIdx, pl.Offset, data)
	return nil
}

// Install publicly exposes residency insertion for context insertion
// (core.InsertProcess): the page becomes resident and dirty evictees
// are written back in the background.
func (pg *Pager) Install(seg *vm.Segment, idx uint64) {
	if pg.k.Tracing() {
		pg.k.Emit(obs.Event{
			Kind:    obs.PageTransfer,
			Machine: pg.name,
			Name:    "install",
			Addr:    uint64(idx),
			Bytes:   seg.PageSize(),
		})
	}
	pg.insert(seg, idx)
}

// insert makes the page resident, writing back any dirty evictees in
// the background.
func (pg *Pager) insert(seg *vm.Segment, idx uint64) {
	for _, ev := range pg.phys.Insert(seg, idx) {
		if ev.WasDirty {
			pg.dsk.WriteAsync(pg.k, seg.PageSize())
			pg.inc("pageout")
		}
	}
}

// imagFault services a touch of owed memory: an Imaginary Read Request
// to the backing port, a wait for the reply, and map-in of the demand
// page plus any prefetched neighbours.
func (pg *Pager) imagFault(p *sim.Proc, pl vm.Place) error {
	pg.stats.ImagFaults++
	pg.inc("fault.imag")
	if h, hinted := pg.hints[pageKey{pl.Seg.ID, pl.PageIdx}]; hinted &&
		!pg.streamPending[pageKey{pl.Seg.ID, pl.PageIdx}] {
		// The page's content is known by hash: try the local content
		// index (zero wire cost), then the nearest holder (one short
		// round trip to a closer machine than the origin backer). Either
		// failure falls through to the ordinary origin-backer request.
		if pg.contentFault(p, pl, h) {
			return nil
		}
	}
	if pg.streamPending[pageKey{pl.Seg.ID, pl.PageIdx}] {
		// The page is already on the wire inside an in-flight split
		// reply: park until the stream delivers it. The residual wait is
		// a fraction of a full request round trip, and skipping the
		// duplicate request keeps the wire clear for the stream itself.
		pg.cpu.UseHigh(p, pg.cfg.FaultCPU)
		pg.stats.StreamWaits++
		pg.inc("fault.streamwait")
		q := sim.NewQueue[struct{}](pg.k)
		key := pageKey{pl.Seg.ID, pl.PageIdx}
		pg.streamWaiters[key] = append(pg.streamWaiters[key], q)
		// Bound the park even on a reliable link: a background reply has
		// no retransmit path of its own, so a lost stream must degrade
		// into an ordinary (fully retried) request, not a hang.
		timeout := pg.cfg.RetryTimeout
		if timeout <= 0 {
			timeout = 2 * time.Second
		}
		q.PopTimeout(p, timeout)
		if pl.Seg.Page(pl.PageIdx) != nil {
			pg.cpu.UseHigh(p, pg.cfg.MapInCPU)
			pg.insert(pl.Seg, pl.PageIdx)
			return nil
		}
		// The stream never delivered; fall through to a full request.
		pg.cpu.UseHigh(p, pg.cfg.ImagCPU)
	} else {
		pg.cpu.UseHigh(p, pg.cfg.FaultCPU+pg.cfg.ImagCPU)
	}

	// Windowed streaming: ask the backer to split its reply — the
	// demanded page returns alone (a one-page reply unstalls this
	// process fastest) and the prefetch run follows as a separate
	// background reply into streamPort, overlapping this process's
	// compute instead of stretching its stall.
	stream := pg.cfg.Outstanding > 1 && pg.prefetch > 0 && pg.streamInFlight < pg.cfg.Outstanding
	req := &imag.ReadRequest{SegID: pl.Seg.ID, PageIdx: pl.PageIdx, Prefetch: pg.prefetch}
	if stream {
		pg.ensureStreamRecv()
		pg.streamSegs[pl.Seg.ID] = pl.Seg
		req.StreamTo = uint64(pg.streamPort.ID)
	}
	reply := pg.sys.AllocPort("imag-reply")
	defer pg.sys.RemovePort(reply)

	var rep *ipc.Message
	for attempt := 0; ; attempt++ {
		// A concurrent bulk flush (core.DissolveIOUs) may have
		// materialized the page while this fault was waiting on the
		// wire; the owed data is already here, so stop asking for it.
		if pl.Seg.Page(pl.PageIdx) != nil {
			pg.insert(pl.Seg, pl.PageIdx)
			return nil
		}
		m := &ipc.Message{
			Op:           imag.OpReadRequest,
			To:           ipc.PortID(pl.Seg.BackingPort),
			ReplyTo:      reply.ID,
			Body:         req,
			BodyBytes:    imag.ReadRequestBytes,
			FaultSupport: true,
		}
		if err := pg.sys.Send(p, m); err != nil {
			return pg.orphan(p, pl,
				fmt.Errorf("pager: imaginary fault on seg %d page %d: %w", pl.Seg.ID, pl.PageIdx, err))
		}
		if pg.cfg.RetryTimeout <= 0 {
			rep = pg.sys.Receive(p, reply)
			break
		}
		var ok bool
		rep, ok = pg.sys.ReceiveTimeout(p, reply, pg.cfg.RetryTimeout)
		if ok {
			break
		}
		pg.stats.Retries++
		pg.inc("fault.retry")
		if attempt >= pg.cfg.MaxRetries {
			return pg.orphan(p, pl, fmt.Errorf("%w: seg %d page %d after %d attempts",
				ErrBackerLost, pl.Seg.ID, pl.PageIdx, attempt+1))
		}
	}

	switch rep.Op {
	case ipc.OpSendFailed:
		// The transport declared the backer's machine unreachable.
		return pg.orphan(p, pl, fmt.Errorf("%w: seg %d page %d: peer unreachable",
			ErrBackerLost, pl.Seg.ID, pl.PageIdx))
	case imag.OpReadError:
		reason := "no reason"
		if e, ok := rep.Body.(*imag.ReadError); ok {
			reason = e.Reason
		}
		return pg.orphan(p, pl, fmt.Errorf("%w: seg %d page %d: %s",
			ErrSegmentDead, pl.Seg.ID, pl.PageIdx, reason))
	}

	body, ok := rep.Body.(*imag.ReadReply)
	if !ok || body.PageCount() == 0 {
		return fmt.Errorf("pager: malformed imaginary read reply for seg %d page %d", pl.Seg.ID, pl.PageIdx)
	}
	ps := pl.Seg.PageSize()
	first := true
	for _, run := range body.Runs {
		for j := 0; j < run.Count; j++ {
			idx := run.Index + uint64(j)
			// A page may have arrived earlier via prefetch and a duplicate
			// can show up under retries; newest data wins either way. The
			// per-page map-in charge and residency insertion keep their
			// original order even though data arrives run-batched.
			pl.Seg.Materialize(idx, run.Page(j, ps))
			pg.cpu.UseHigh(p, pg.cfg.MapInCPU)
			pg.insert(pl.Seg, idx)
			if pg.index != nil {
				// The page's content is now local: index it under its
				// manifest hash so duplicate content faults stop paying
				// for the wire.
				if hh, hinted := pg.hints[pageKey{pl.Seg.ID, idx}]; hinted {
					if page := pl.Seg.Page(idx); page != nil {
						pg.index.Put(hh, page.Data)
					}
					delete(pg.hints, pageKey{pl.Seg.ID, idx})
				}
			}
			if !first && idx != pl.PageIdx {
				pg.stats.PrefetchedPages++
				pg.prefetched[pageKey{pl.Seg.ID, idx}] = true
				pg.inc("prefetch.page")
			}
			first = false
		}
	}
	if body.Streaming {
		pg.streamInFlight++
		for _, run := range body.StreamRuns {
			for j := 0; j < run.Count; j++ {
				pg.streamPending[pageKey{pl.Seg.ID, run.Index + uint64(j)}] = true
			}
		}
	}
	return nil
}

// contentFault tries to satisfy an imaginary fault by content instead
// of by origin: first the local index (a frame copy, no wire), then a
// HashRead to the nearest holder the resolver names. It reports whether
// the page was installed; false means the caller proceeds with the
// ordinary backing-port request.
func (pg *Pager) contentFault(p *sim.Proc, pl vm.Place, h uint64) bool {
	key := pageKey{pl.Seg.ID, pl.PageIdx}
	if data, hit := pg.index.Lookup(h); hit {
		pg.cpu.UseHigh(p, pg.cfg.FaultCPU+pg.dedup.LocalServeCPU+pg.cfg.MapInCPU)
		pl.Seg.Materialize(pl.PageIdx, data)
		pg.insert(pl.Seg, pl.PageIdx)
		delete(pg.hints, key)
		pg.stats.LocalServes++
		pg.inc("fault.served.local")
		return true
	}
	if pg.resolver == nil {
		return false
	}
	port, ok := pg.resolver(h)
	if !ok || port == ipc.PortID(pl.Seg.BackingPort) {
		return false
	}
	pg.cpu.UseHigh(p, pg.cfg.FaultCPU+pg.cfg.ImagCPU)
	reply := pg.sys.AllocPort("hash-reply")
	defer pg.sys.RemovePort(reply)
	err := pg.sys.Send(p, &ipc.Message{
		Op:           imag.OpHashRead,
		To:           port,
		ReplyTo:      reply.ID,
		Body:         &imag.HashRead{Hash: h, SegID: pl.Seg.ID, Page: pl.PageIdx},
		BodyBytes:    imag.HashReadBytes,
		FaultSupport: true,
	})
	if err != nil {
		return false
	}
	var rep *ipc.Message
	if pg.cfg.RetryTimeout > 0 {
		var got bool
		if rep, got = pg.sys.ReceiveTimeout(p, reply, pg.cfg.RetryTimeout); !got {
			return false // one shot only; the origin path owns retries
		}
	} else {
		rep = pg.sys.Receive(p, reply)
	}
	body, ok := rep.Body.(*imag.ReadReply)
	if rep.Op != imag.OpReadReply || !ok || body.PageCount() == 0 {
		return false
	}
	pl.Seg.Materialize(pl.PageIdx, body.Runs[0].Page(0, pl.Seg.PageSize()))
	pg.cpu.UseHigh(p, pg.cfg.MapInCPU)
	pg.insert(pl.Seg, pl.PageIdx)
	if page := pl.Seg.Page(pl.PageIdx); page != nil {
		pg.index.Put(h, page.Data)
	}
	delete(pg.hints, key)
	pg.stats.HolderServes++
	pg.inc("fault.served.holder")
	return true
}

// RepairPage replaces one installed page whose content failed its
// integrity checksum, fetching the true bytes named by hash: the local
// content index first (a stale or corrupt entry fails its verify
// re-hash, so the index can never hand the damage back), then a
// HashRead to the holder the resolver names — for a migration install,
// the source, which indexed every shipped page when it stamped the
// checksums. A zero hash needs no fetch at all. Reports whether the
// page now holds verified content; false sends the caller to its own
// failure path.
func (pg *Pager) RepairPage(p *sim.Proc, seg *vm.Segment, idx, hash uint64) bool {
	if hash == vm.ZeroHash {
		pg.cpu.UseHigh(p, pg.cfg.FillZeroCPU)
		seg.MaterializeZero(idx)
		pg.insert(seg, idx)
	} else if !pg.contentFault(p, vm.Place{Seg: seg, PageIdx: idx}, hash) {
		return false
	}
	if page := seg.Page(idx); page != nil {
		// The repaired content still exists nowhere on local disk.
		page.State.Dirty = true
	}
	pg.stats.Repairs++
	pg.inc("fault.repaired")
	return true
}

// ensureStreamRecv lazily allocates the stream port and spawns the
// receiver that materializes background prefetch halves of split fault
// replies. Failures are silent by design: streaming is opportunistic,
// and any page it fails to deliver simply faults on demand later
// through the fully error-handled imagFault path.
func (pg *Pager) ensureStreamRecv() {
	if pg.streamPort != nil {
		return
	}
	pg.streamPort = pg.sys.AllocPort(pg.name + ".pager.stream")
	pg.streamSegs = make(map[uint64]*vm.Segment)
	pg.streamPending = make(map[pageKey]bool)
	pg.streamWaiters = make(map[pageKey][]*sim.Queue[struct{}])
	pg.k.Go(pg.name+".pager.stream", func(p *sim.Proc) {
		for {
			m := pg.sys.Receive(p, pg.streamPort)
			body, ok := m.Body.(*imag.ReadReply)
			if m.Op != imag.OpReadReply || !ok {
				continue
			}
			if body.Streaming {
				// Final reply of a split: one outstanding slot frees.
				pg.streamInFlight--
			}
			seg, ok := pg.streamSegs[body.SegID]
			if !ok {
				continue
			}
			pg.stats.StreamedPages++
			pg.inc("prefetch.stream")
			ps := seg.PageSize()
			for _, run := range body.Runs {
				for j := 0; j < run.Count; j++ {
					idx := run.Index + uint64(j)
					key := pageKey{seg.ID, idx}
					if seg.Page(idx) == nil {
						seg.Materialize(idx, run.Page(j, ps))
						// Mapping in opportunistic pages yields the CPU
						// to fault handling.
						pg.cpu.Use(p, pg.cfg.MapInCPU)
						pg.insert(seg, idx)
						pg.stats.PrefetchedPages++
						pg.prefetched[key] = true
						pg.inc("prefetch.page")
					}
					delete(pg.streamPending, key)
					for _, q := range pg.streamWaiters[key] {
						q.Push(struct{}{})
					}
					delete(pg.streamWaiters, key)
				}
			}
		}
	})
}

// orphan applies the configured policy to a fault whose backer can
// never answer: OrphanFail returns cause to the faulting process;
// OrphanZeroFill degrades the fault to a FillZero and lets execution
// continue with a zero page.
func (pg *Pager) orphan(p *sim.Proc, pl vm.Place, cause error) error {
	if pl.Seg.Page(pl.PageIdx) != nil {
		// The page arrived by other means (bulk flush, prefetch) while
		// the doomed request was outstanding — no orphan after all.
		pg.insert(pl.Seg, pl.PageIdx)
		return nil
	}
	if pg.cfg.Orphan != OrphanZeroFill {
		return cause
	}
	pg.cpu.UseHigh(p, pg.cfg.FillZeroCPU)
	pl.Seg.MaterializeZero(pl.PageIdx)
	pg.insert(pl.Seg, pl.PageIdx)
	pg.stats.ZeroFills++
	pg.inc("fault.zerofill.orphan")
	return nil
}
