package pager

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"accentmig/internal/disk"
	"accentmig/internal/imag"
	"accentmig/internal/ipc"
	"accentmig/internal/sim"
	"accentmig/internal/vm"
)

type rig struct {
	k    *sim.Kernel
	cpu  *sim.Resource
	sys  *ipc.System
	dsk  *disk.Disk
	phys *vm.PhysMem
	pg   *Pager
	as   *vm.AddressSpace
}

// newRigQuick builds a rig without a testing.T, for property tests.
func newRigQuick(frames int) *rig {
	k := sim.New()
	cpu := sim.NewResource(k, "cpu", 1)
	sys := ipc.NewSystem(k, "m0", cpu, ipc.Config{})
	dsk := disk.New(k, "d0", disk.Config{})
	phys := vm.NewPhysMem(frames)
	pg := New(k, "m0", cpu, phys, dsk, sys, Config{})
	as := vm.MustNewAddressSpace(vm.Config{})
	return &rig{k: k, cpu: cpu, sys: sys, dsk: dsk, phys: phys, pg: pg, as: as}
}

func newRig(t *testing.T, frames int) *rig {
	t.Helper()
	k := sim.New()
	cpu := sim.NewResource(k, "cpu", 1)
	sys := ipc.NewSystem(k, "m0", cpu, ipc.Config{})
	dsk := disk.New(k, "d0", disk.Config{})
	phys := vm.NewPhysMem(frames)
	pg := New(k, "m0", cpu, phys, dsk, sys, Config{})
	as := vm.MustNewAddressSpace(vm.Config{})
	return &rig{k: k, cpu: cpu, sys: sys, dsk: dsk, phys: phys, pg: pg, as: as}
}

// startBacker runs a store-based backer on a fresh port and returns the
// port. dropFirst makes it ignore its first request, to exercise retry.
func (r *rig) startBacker(store *imag.Store, dropFirst bool) *ipc.Port {
	port := r.sys.AllocPort("backer")
	r.k.Go("backer", func(p *sim.Proc) {
		dropped := false
		for {
			m := r.sys.Receive(p, port)
			if m.Op != imag.OpReadRequest {
				continue
			}
			if dropFirst && !dropped {
				dropped = true
				continue
			}
			req := m.Body.(*imag.ReadRequest)
			seg, ok := store.Segment(req.SegID)
			if !ok {
				continue
			}
			rep := seg.Serve(req)
			if rep == nil {
				continue
			}
			r.sys.Send(p, &ipc.Message{
				Op:           imag.OpReadReply,
				To:           m.ReplyTo,
				Body:         rep,
				BodyBytes:    rep.Bytes(),
				FaultSupport: true,
			})
		}
	})
	return port
}

func TestFillZeroFault(t *testing.T) {
	r := newRig(t, 16)
	reg, _ := r.as.Validate(0, 4*512, "data")
	var elapsed time.Duration
	r.k.Go("u", func(p *sim.Proc) {
		if err := r.pg.Touch(p, r.as, 100, false); err != nil {
			t.Errorf("Touch: %v", err)
		}
		elapsed = p.Now()
	})
	r.k.Run()
	if elapsed != 3*time.Millisecond {
		t.Errorf("FillZero took %v, want 3ms", elapsed)
	}
	if r.pg.Stats().FillZero != 1 {
		t.Errorf("FillZero count = %d", r.pg.Stats().FillZero)
	}
	if r.dsk.Reads() != 0 {
		t.Error("FillZero consulted the disk")
	}
	if !reg.Seg.Page(0).State.Resident {
		t.Error("page not resident after FillZero")
	}
}

func TestResidentTouchIsFree(t *testing.T) {
	r := newRig(t, 16)
	r.as.Validate(0, 512, "d")
	var first, second time.Duration
	r.k.Go("u", func(p *sim.Proc) {
		r.pg.Touch(p, r.as, 0, false)
		first = p.Now()
		r.pg.Touch(p, r.as, 0, false)
		second = p.Now()
	})
	r.k.Run()
	if second != first {
		t.Errorf("resident touch consumed time: %v", second-first)
	}
}

func TestDiskFaultNear40ms(t *testing.T) {
	r := newRig(t, 16)
	reg, _ := r.as.Validate(0, 512, "d")
	pg0 := reg.Seg.MaterializeZero(0)
	pg0.State.OnDisk = true
	var elapsed time.Duration
	r.k.Go("u", func(p *sim.Proc) {
		r.pg.Touch(p, r.as, 0, false)
		elapsed = p.Now()
	})
	r.k.Run()
	// Paper's local page access: ≈40.8 ms.
	if elapsed < 30*time.Millisecond || elapsed > 50*time.Millisecond {
		t.Errorf("disk fault took %v, want ≈40ms", elapsed)
	}
	if r.pg.Stats().DiskFaults != 1 {
		t.Errorf("DiskFaults = %d", r.pg.Stats().DiskFaults)
	}
}

func TestBadMemTouch(t *testing.T) {
	r := newRig(t, 16)
	var err error
	r.k.Go("u", func(p *sim.Proc) {
		err = r.pg.Touch(p, r.as, 0xdeadbeef, false)
	})
	r.k.Run()
	if !errors.Is(err, ErrAddressError) {
		t.Errorf("err = %v, want ErrAddressError", err)
	}
}

func TestImaginaryFaultFetchesData(t *testing.T) {
	r := newRig(t, 16)
	store := imag.NewStore()
	port := r.startBacker(store, false)
	iseg := vm.NewImaginarySegment("owed", 8*512, 512, uint64(port.ID))
	sseg := store.AddSegment(iseg.ID, 8*512, 512)
	want := []byte("remote page content")
	page := make([]byte, 512)
	copy(page, want)
	sseg.Put(2, page)
	r.as.MapSegment(0, 8*512, iseg, 0, "owed")

	var got []byte
	r.k.Go("u", func(p *sim.Proc) {
		var err error
		got, err = r.pg.Read(p, r.as, 2*512, len(want))
		if err != nil {
			t.Errorf("Read: %v", err)
		}
	})
	r.k.Run()
	if string(got) != string(want) {
		t.Errorf("fetched %q, want %q", got, want)
	}
	if r.pg.Stats().ImagFaults != 1 {
		t.Errorf("ImagFaults = %d", r.pg.Stats().ImagFaults)
	}
	// Second touch is now local.
	var again time.Duration
	r.k.Go("u2", func(p *sim.Proc) {
		start := p.Now()
		r.pg.Touch(p, r.as, 2*512, false)
		again = p.Now() - start
	})
	r.k.Run()
	if again != 0 {
		t.Errorf("refetched a fetched page (took %v)", again)
	}
}

func TestPrefetchDeliveryAndHits(t *testing.T) {
	r := newRig(t, 64)
	store := imag.NewStore()
	port := r.startBacker(store, false)
	iseg := vm.NewImaginarySegment("owed", 16*512, 512, uint64(port.ID))
	sseg := store.AddSegment(iseg.ID, 16*512, 512)
	for i := uint64(0); i < 16; i++ {
		sseg.Put(i, make([]byte, 512))
	}
	r.as.MapSegment(0, 16*512, iseg, 0, "owed")
	r.pg.SetPrefetch(3)

	r.k.Go("u", func(p *sim.Proc) {
		r.pg.Touch(p, r.as, 0, false)     // demand 0, prefetch 1,2,3
		r.pg.Touch(p, r.as, 512, false)   // hit on prefetched 1
		r.pg.Touch(p, r.as, 2*512, false) // hit on prefetched 2
		r.pg.Touch(p, r.as, 8*512, false) // new fault; prefetch 9,10,11
	})
	r.k.Run()
	st := r.pg.Stats()
	if st.ImagFaults != 2 {
		t.Errorf("ImagFaults = %d, want 2", st.ImagFaults)
	}
	if st.PrefetchedPages != 6 {
		t.Errorf("PrefetchedPages = %d, want 6", st.PrefetchedPages)
	}
	if st.PrefetchHits != 2 {
		t.Errorf("PrefetchHits = %d, want 2", st.PrefetchHits)
	}
	if got := st.HitRatio(); got < 0.32 || got > 0.34 {
		t.Errorf("HitRatio = %.3f, want 1/3", got)
	}
}

func TestWriteMarksDirtyAndPageoutOnEviction(t *testing.T) {
	r := newRig(t, 2)
	r.as.Validate(0, 8*512, "d")
	r.k.Go("u", func(p *sim.Proc) {
		if err := r.pg.Write(p, r.as, 0, []byte("dirty")); err != nil {
			t.Errorf("Write: %v", err)
		}
		// Fill memory so page 0 is evicted.
		r.pg.Touch(p, r.as, 512, false)
		r.pg.Touch(p, r.as, 2*512, false)
	})
	r.k.Run()
	if r.dsk.Writes() != 1 {
		t.Errorf("disk writes = %d, want 1 (dirty write-back)", r.dsk.Writes())
	}
	// Evicted page faults back from disk.
	var st Stats
	r.k.Go("u2", func(p *sim.Proc) {
		r.pg.Touch(p, r.as, 0, false)
		st = r.pg.Stats()
	})
	r.k.Run()
	if st.DiskFaults != 1 {
		t.Errorf("DiskFaults = %d, want 1", st.DiskFaults)
	}
}

func TestWriteAcrossPageBoundaryRejected(t *testing.T) {
	r := newRig(t, 4)
	r.as.Validate(0, 2*512, "d")
	var err error
	r.k.Go("u", func(p *sim.Proc) {
		err = r.pg.Write(p, r.as, 510, []byte("toolong"))
	})
	r.k.Run()
	if err == nil {
		t.Error("page-crossing write accepted")
	}
}

func TestRetryAfterLostRequest(t *testing.T) {
	r := newRig(t, 16)
	r.pg.cfg.RetryTimeout = 500 * time.Millisecond
	store := imag.NewStore()
	port := r.startBacker(store, true) // drops first request
	iseg := vm.NewImaginarySegment("owed", 512, 512, uint64(port.ID))
	sseg := store.AddSegment(iseg.ID, 512, 512)
	sseg.Put(0, make([]byte, 512))
	r.as.MapSegment(0, 512, iseg, 0, "owed")
	var err error
	r.k.Go("u", func(p *sim.Proc) {
		err = r.pg.Touch(p, r.as, 0, false)
	})
	r.k.Run()
	if err != nil {
		t.Fatalf("Touch failed despite retry: %v", err)
	}
	if r.pg.Stats().Retries != 1 {
		t.Errorf("Retries = %d, want 1", r.pg.Stats().Retries)
	}
}

func TestBackerLostAfterMaxRetries(t *testing.T) {
	r := newRig(t, 16)
	r.pg.cfg.RetryTimeout = 100 * time.Millisecond
	r.pg.cfg.MaxRetries = 2
	// A port with no server behind it: requests pile up unanswered.
	port := r.sys.AllocPort("deaf")
	iseg := vm.NewImaginarySegment("owed", 512, 512, uint64(port.ID))
	r.as.MapSegment(0, 512, iseg, 0, "owed")
	var err error
	r.k.Go("u", func(p *sim.Proc) {
		err = r.pg.Touch(p, r.as, 0, false)
	})
	r.k.Run()
	if !errors.Is(err, ErrBackerLost) {
		t.Errorf("err = %v, want ErrBackerLost", err)
	}
}

func TestCOWBreakChargedOnWrite(t *testing.T) {
	r := newRig(t, 16)
	reg, _ := r.as.Validate(0, 512, "d")
	src := vm.NewSegment("src", 512, 512)
	src.Materialize(0, []byte("shared"))
	reg.Seg.AdoptShared(0, src.Page(0))
	var cowT, plainT time.Duration
	r.k.Go("u", func(p *sim.Proc) {
		r.pg.Touch(p, r.as, 0, false) // map in
		start := p.Now()
		r.pg.Touch(p, r.as, 0, true) // first write: breaks COW
		cowT = p.Now() - start
		start = p.Now()
		r.pg.Touch(p, r.as, 0, true) // second write: already private
		plainT = p.Now() - start
	})
	r.k.Run()
	if cowT <= plainT {
		t.Errorf("COW-breaking write (%v) not more expensive than plain write (%v)", cowT, plainT)
	}
	if src.Page(0).Shared() {
		t.Error("source page still shared after write")
	}
}

func TestResetStats(t *testing.T) {
	r := newRig(t, 4)
	r.as.Validate(0, 512, "d")
	r.k.Go("u", func(p *sim.Proc) { r.pg.Touch(p, r.as, 0, false) })
	r.k.Run()
	if r.pg.Stats().FillZero != 1 {
		t.Fatal("setup failed")
	}
	r.pg.ResetStats()
	if r.pg.Stats().FillZero != 0 {
		t.Error("ResetStats did not clear counters")
	}
}

// Property: after an arbitrary sequence of touches on a validated
// region, every touched page is materialized, the resident count never
// exceeds physical memory, and written content survives faulting.
func TestQuickTouchSequenceInvariants(t *testing.T) {
	f := func(ops []struct {
		Page  uint8
		Write bool
	}) bool {
		r := newRigQuick(4) // tiny memory to force eviction traffic
		reg, err := r.as.Validate(0, 32*512, "d")
		if err != nil {
			return false
		}
		okAll := true
		r.k.Go("u", func(p *sim.Proc) {
			written := map[uint64]byte{}
			for i, op := range ops {
				pgIdx := uint64(op.Page % 32)
				addr := vm.Addr(pgIdx * 512)
				if op.Write {
					b := byte(i)
					if err := r.pg.Write(p, r.as, addr, []byte{b}); err != nil {
						okAll = false
						return
					}
					written[pgIdx] = b
				} else {
					got, err := r.pg.Read(p, r.as, addr, 1)
					if err != nil {
						okAll = false
						return
					}
					want := byte(0)
					if b, ok := written[pgIdx]; ok {
						want = b
					}
					if got[0] != want {
						okAll = false
						return
					}
				}
				if r.phys.Len() > r.phys.Capacity() {
					okAll = false
					return
				}
				if reg.Seg.Page(pgIdx) == nil {
					okAll = false
					return
				}
			}
		})
		r.k.Run()
		return okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
