// Package machine assembles one SPICE testbed host: a CPU, physical
// memory, a paging disk, the IPC system, the pager, and the
// NetMsgServer, plus the process table and the reference-program
// executor that simulated user processes run on.
package machine

import (
	"fmt"
	"sort"
	"time"

	"accentmig/internal/disk"
	"accentmig/internal/ipc"
	"accentmig/internal/metrics"
	"accentmig/internal/netlink"
	"accentmig/internal/netmsg"
	"accentmig/internal/obs"
	"accentmig/internal/pager"
	"accentmig/internal/sim"
	"accentmig/internal/trace"
	"accentmig/internal/vm"
	"accentmig/internal/xrand"
)

// Config parameterizes a machine. Zero values select the calibrated
// Perq-era defaults throughout.
type Config struct {
	// PhysFrames is physical memory size in page frames (default 2048
	// frames = 1 MB of 512-byte pages, a typical Perq).
	PhysFrames int
	// Quantum is the CPU scheduling quantum: user compute bursts hold
	// the CPU at most this long before other work can interleave
	// (default 50 ms).
	Quantum time.Duration
	// PageSize for all address spaces on this machine.
	PageSize int
	Disk     disk.Config
	IPC      ipc.Config
	Pager    pager.Config
	Net      netmsg.Config
	// Dedup configures the content-addressed page store. Disabled by
	// default; the machine then carries no content index and every data
	// path is byte-identical to a build without the store.
	Dedup vm.DedupConfig
}

func (c Config) withDefaults() Config {
	if c.PhysFrames == 0 {
		c.PhysFrames = 600
	}
	if c.PageSize == 0 {
		c.PageSize = vm.DefaultPageSize
	}
	if c.Quantum == 0 {
		c.Quantum = 50 * time.Millisecond
	}
	c.IPC.PageSize = c.PageSize
	if c.Net.FragBytes == 0 {
		c.Net.FragBytes = c.PageSize
	}
	c.Dedup = c.Dedup.WithDefaults()
	return c
}

// Status is a process's lifecycle state.
type Status int

const (
	// Running: the process body is executing (or runnable).
	Running Status = iota
	// AtMigrationPoint: the body reached its MigratePoint and waits to
	// be excised.
	AtMigrationPoint
	// Excised: the context has been extracted; the process no longer
	// exists on any machine until inserted.
	Excised
	// Finished: the program ran to completion.
	Finished
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Running:
		return "Running"
	case AtMigrationPoint:
		return "AtMigrationPoint"
	case Excised:
		return "Excised"
	case Finished:
		return "Finished"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Process is a simulated user process: an address space, port rights,
// a small non-memory context, and a reference program with its saved
// program counter.
type Process struct {
	Name string
	AS   *vm.AddressSpace

	// Ports are the rights the process owns; they move with it.
	Ports []*ipc.Port

	// Non-memory context sizes (the paper: ≈1 KB combined).
	MicrostateBytes  int
	KernelStackBytes int
	PCBBytes         int

	Program *trace.Program
	PC      int

	Status Status
	Host   *Machine

	// AtMigrate opens when the body reaches its MigratePoint.
	AtMigrate *sim.Gate
	// Done opens when the body finishes.
	Done *sim.Gate

	// ExecError records a fault-handling failure that killed the body.
	ExecError error

	// ResumedAt is the virtual time the body last resumed interpreting
	// from a saved context (PC > 0) — after insertion at a migration
	// destination, or after a rollback at the source. With the freeze
	// instant it bounds the migration's downtime. Zero until the first
	// resume.
	ResumedAt time.Duration

	// preempt asks the executor to stop at the next op boundary, as if
	// a MigratePoint had been reached (set via RequestPreempt).
	preempt bool
}

// Machine is one testbed host.
type Machine struct {
	Name  string
	K     *sim.Kernel
	CPU   *sim.Resource
	Phys  *vm.PhysMem
	Disk  *disk.Disk
	IPC   *ipc.System
	Pager *pager.Pager
	Net   *netmsg.Server
	// Pool recycles page frames across the machine's processes: frames
	// freed by excision or segment death back later materializations.
	Pool *vm.FramePool
	// Index is the machine's content index: hash → one resident copy of
	// those page bytes. Nil unless Config.Dedup.Enabled (or Integrity,
	// which uses it to serve single-page repair reads).
	Index *vm.ContentIndex
	// Ledger retains page content delivered by migration attempts that
	// later failed, so retries ship a delta. Nil unless
	// Config.Dedup.Resume.
	Ledger *vm.DeliveryLedger

	cfg   Config
	rec   *metrics.Recorder
	procs map[string]*Process

	// shard is the event lane the machine lives on when the simulation
	// runs under a sim.Cluster; 0 (with K the shared kernel) otherwise.
	// See shard.go.
	shard int
}

// New builds a machine on kernel k and starts its NetMsgServer.
func New(k *sim.Kernel, name string, cfg Config) *Machine {
	cfg = cfg.withDefaults()
	cpu := sim.NewResource(k, name+".cpu", 1)
	sys := ipc.NewSystem(k, name, cpu, cfg.IPC)
	dsk := disk.New(k, name+".disk", cfg.Disk)
	phys := vm.NewPhysMem(cfg.PhysFrames)
	pg := pager.New(k, name, cpu, phys, dsk, sys, cfg.Pager)
	srv := netmsg.New(k, name, cpu, sys, cfg.Net)
	m := &Machine{
		Name:  name,
		K:     k,
		CPU:   cpu,
		Phys:  phys,
		Disk:  dsk,
		IPC:   sys,
		Pager: pg,
		Net:   srv,
		Pool:  vm.NewFramePool(cfg.PageSize),
		cfg:   cfg,
		procs: make(map[string]*Process),
	}
	if cfg.Dedup.Enabled || cfg.Dedup.Integrity {
		m.Index = vm.NewContentIndex(cfg.PageSize)
		srv.SetContentIndex(m.Index, cfg.Dedup.HashPerPageCPU)
		pg.SetContentIndex(m.Index, cfg.Dedup)
	}
	if cfg.Dedup.Resume {
		m.Ledger = vm.NewDeliveryLedger()
		srv.SetLedger(m.Ledger, cfg.PageSize)
	}
	srv.Start()
	return m
}

// Connect joins two machines with a fresh link and returns it.
func Connect(a, b *Machine, cfg netlink.Config) *netlink.Link {
	link := netlink.New(a.K, a.Name+"-"+b.Name, cfg)
	netmsg.ConnectPair(a.Net, b.Net, link)
	return link
}

// PageSize reports the machine's page size.
func (m *Machine) PageSize() int { return m.cfg.PageSize }

// DedupConfig reports the content-addressed store configuration
// (zero-valued when the store is disabled).
func (m *Machine) DedupConfig() vm.DedupConfig { return m.cfg.Dedup }

// NetConfig reports the machine's network-server configuration (with
// defaults applied), so protocol layers can predict transport decisions
// — e.g. which attachments the server will absorb as IOUs.
func (m *Machine) NetConfig() netmsg.Config { return m.cfg.Net }

// SetRecorder points the machine's metric producers at rec. CPU
// scheduling waits feed the recorder's "wait.cpu" distribution.
func (m *Machine) SetRecorder(rec *metrics.Recorder) {
	m.rec = rec
	m.Pager.SetRecorder(rec)
	m.Net.SetRecorder(rec)
	if rec == nil {
		m.CPU.SetWaitObserver(nil)
		return
	}
	m.CPU.SetWaitObserver(func(d time.Duration) { rec.Observe("wait.cpu", d) })
}

// Recorder returns the active recorder, possibly nil.
func (m *Machine) Recorder() *metrics.Recorder { return m.rec }

// emitState records a process lifecycle transition in the flight
// recorder.
func (m *Machine) emitState(pr *Process, state string) {
	if m.K.Tracing() {
		m.K.Emit(obs.Event{
			Kind:    obs.StateChange,
			Machine: m.Name,
			Proc:    pr.Name,
			Name:    state,
		})
	}
}

// NewProcess creates an empty process resident on this machine with a
// fresh address space and n port rights.
func (m *Machine) NewProcess(name string, nports int) (*Process, error) {
	if _, exists := m.procs[name]; exists {
		return nil, fmt.Errorf("machine %s: process %q already exists", m.Name, name)
	}
	as, err := vm.NewAddressSpace(vm.Config{PageSize: m.cfg.PageSize, Pool: m.Pool})
	if err != nil {
		return nil, err
	}
	pr := &Process{
		Name:             name,
		AS:               as,
		MicrostateBytes:  512,
		KernelStackBytes: 256,
		PCBBytes:         256,
		Host:             m,
		AtMigrate:        sim.NewGate(m.K),
		Done:             sim.NewGate(m.K),
	}
	for i := 0; i < nports; i++ {
		pr.Ports = append(pr.Ports, m.IPC.AllocPort(fmt.Sprintf("%s.port%d", name, i)))
	}
	m.procs[name] = pr
	return pr, nil
}

// Adopt installs an inserted process (built by core.InsertProcess).
func (m *Machine) Adopt(pr *Process) error {
	if _, exists := m.procs[pr.Name]; exists {
		return fmt.Errorf("machine %s: process %q already exists", m.Name, pr.Name)
	}
	pr.Host = m
	m.procs[pr.Name] = pr
	return nil
}

// Remove deletes the process from the table (excision).
func (m *Machine) Remove(name string) {
	delete(m.procs, name)
}

// Process looks up a process by name.
func (m *Machine) Process(name string) (*Process, bool) {
	pr, ok := m.procs[name]
	return pr, ok
}

// Procs reports the number of processes resident here.
func (m *Machine) Procs() int { return len(m.procs) }

// ProcNames lists resident process names in sorted order, for
// deterministic iteration over the process table.
func (m *Machine) ProcNames() []string {
	names := make([]string, 0, len(m.procs))
	for name := range m.procs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Start launches the process body: it executes the reference program
// from the saved PC. At a MigratePoint the body parks and opens
// AtMigrate; on completion it opens Done.
func (m *Machine) Start(pr *Process) {
	pr.Status = Running
	m.emitState(pr, Running.String())
	m.K.Go(m.Name+"."+pr.Name, func(p *sim.Proc) {
		if err := m.exec(p, pr); err != nil {
			pr.ExecError = err
			pr.Status = Finished
			m.emitState(pr, Finished.String())
			pr.Done.Open()
			return
		}
		if pr.Status == Running {
			pr.Status = Finished
			m.emitState(pr, Finished.String())
			pr.Done.Open()
		}
	})
}

// RequestPreempt asks a running process to stop at its next trace-op
// boundary as if it had hit a MigratePoint, so it can be excised at a
// clean point. The AtMigrate gate recloses and reopens when the stop
// happens; callers should also watch Done in case the program finishes
// first.
func (m *Machine) RequestPreempt(pr *Process) {
	pr.AtMigrate.Close()
	pr.preempt = true
}

// WaitStopped blocks until the process is either preempted (true) or
// finished (false).
func (m *Machine) WaitStopped(p *sim.Proc, pr *Process) bool {
	for !pr.AtMigrate.Opened() && !pr.Done.Opened() {
		p.Sleep(5 * time.Millisecond)
	}
	return pr.AtMigrate.Opened() && !pr.Done.Opened()
}

// exec interprets the program from pr.PC. It returns nil both at
// completion and at a migration point (distinguished by pr.Status).
func (m *Machine) exec(p *sim.Proc, pr *Process) error {
	ps := uint64(m.cfg.PageSize)
	if pr.PC > 0 {
		// Resuming a saved context: the first instruction after a
		// migration insert (or a rollback) runs now. This instant closes
		// the downtime span that opened at excise-freeze.
		pr.ResumedAt = p.Now()
		if m.rec != nil {
			m.rec.MarkResume(p.Now())
		}
		m.emitState(pr, "Resumed")
	}
	for pr.PC < len(pr.Program.Ops) {
		if pr.preempt {
			pr.preempt = false
			pr.Status = AtMigrationPoint
			m.emitState(pr, AtMigrationPoint.String())
			pr.AtMigrate.Open()
			return nil
		}
		op := pr.Program.Ops[pr.PC]
		pr.PC++
		switch o := op.(type) {
		case trace.Compute:
			m.compute(p, o.D)
		case trace.IOWait:
			p.Sleep(o.D)
		case trace.Touch:
			if err := m.Pager.Touch(p, pr.AS, o.Addr, o.Write); err != nil {
				return err
			}
		case trace.SeqScan:
			stride := o.Stride
			if stride == 0 {
				stride = ps
			}
			for off := uint64(0); off < o.Bytes; off += stride {
				if o.PerTouch > 0 {
					m.compute(p, o.PerTouch)
				}
				if err := m.Pager.Touch(p, pr.AS, o.Start+vm.Addr(off), o.Write); err != nil {
					return err
				}
			}
		case trace.RandTouch:
			for _, a := range expandRand(o, ps) {
				if o.PerTouch > 0 {
					m.compute(p, o.PerTouch)
				}
				if err := m.Pager.Touch(p, pr.AS, a, o.Write); err != nil {
					return err
				}
			}
		case trace.WSLoop:
			for it := 0; it < o.Iters; it++ {
				for pg := 0; pg < o.Pages; pg++ {
					a := o.Start + vm.Addr(uint64(pg)*ps)
					if err := m.Pager.Touch(p, pr.AS, a, o.Write); err != nil {
						return err
					}
				}
				if o.Compute > 0 {
					m.compute(p, o.Compute)
				}
			}
		case trace.MigratePoint:
			pr.Status = AtMigrationPoint
			m.emitState(pr, AtMigrationPoint.String())
			pr.AtMigrate.Open()
			return nil
		default:
			return fmt.Errorf("machine %s: unknown trace op %T", m.Name, op)
		}
	}
	return nil
}

// compute burns d of CPU in quantum-sized slices, so kernel and server
// work (high-priority acquirers) can interleave with long user bursts.
func (m *Machine) compute(p *sim.Proc, d time.Duration) {
	for d > 0 {
		q := m.cfg.Quantum
		if d < q {
			q = d
		}
		m.CPU.Use(p, q)
		d -= q
	}
}

// expandRand mirrors trace.Program.Touches for a single RandTouch.
func expandRand(o trace.RandTouch, pageSize uint64) []vm.Addr {
	npages := int(o.Bytes / pageSize)
	if npages == 0 {
		return nil
	}
	count := o.Count
	if count > npages {
		count = npages
	}
	rng := xrand.New(o.Seed)
	perm := rng.Perm(npages)
	out := make([]vm.Addr, 0, count)
	for _, pg := range perm[:count] {
		out = append(out, o.Start+vm.Addr(uint64(pg)*pageSize))
	}
	return out
}

// WaitDone blocks p until the process body finishes and surfaces any
// execution error.
func (pr *Process) WaitDone(p *sim.Proc) error {
	pr.Done.Wait(p)
	return pr.ExecError
}

// ContextBytes reports the non-memory context size (≈1 KB).
func (pr *Process) ContextBytes() int {
	return pr.MicrostateBytes + pr.KernelStackBytes + pr.PCBBytes
}

// MakeResident materializes the page under each addr and inserts it
// into physical memory without simulated cost — test and workload setup
// plumbing to establish the paper's documented resident sets.
func (m *Machine) MakeResident(pr *Process, addrs []vm.Addr) error {
	for _, a := range addrs {
		pl, ok := pr.AS.Resolve(a)
		if !ok {
			return fmt.Errorf("machine %s: MakeResident %#x: bad address", m.Name, a)
		}
		if pl.Seg.Page(pl.PageIdx) == nil {
			pl.Seg.MaterializeZero(pl.PageIdx)
		}
		m.Phys.Insert(pl.Seg, pl.PageIdx)
	}
	return nil
}

// ImageHash digests a resident process's logical memory image: every
// region in address order, every materialized page's content, and the
// presence/absence of each page. Two runs of the same program that end
// with the same memory state produce the same hash; a corrupted,
// zero-filled, or missing page changes it. Used by the chaos
// campaign's image-identity invariant.
func (m *Machine) ImageHash(name string) (uint64, bool) {
	pr, ok := m.procs[name]
	if !ok {
		return 0, false
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	// An absent page mixes a zero byte: h ^= 0 is a no-op, so the whole
	// page costs one h *= prime64. A run of n absent pages is therefore
	// h *= prime64^n, computable in O(log n) by square-and-multiply —
	// uint64 multiplication is already mod 2^64. This is what makes
	// hashing a sparse 4 GB Lisp space (8M page slots, ~4K materialized)
	// cheap: the gaps are skipped by bitmap run sweeps and collapse to a
	// handful of multiplies, bit-identical to the page-at-a-time walk.
	skipAbsent := func(h uint64, n uint64) uint64 {
		p := uint64(prime64)
		for ; n > 0; n >>= 1 {
			if n&1 != 0 {
				h *= p
			}
			p *= p
		}
		return h
	}
	h := uint64(offset64)
	ps := uint64(m.cfg.PageSize)
	for _, r := range pr.AS.Regions() {
		v := uint64(r.Start)
		for i := 0; i < 8; i++ {
			h ^= v >> (8 * i) & 0xff
			h *= prime64
		}
		first := r.SegOff / ps
		last := (r.SegOff + r.Size() + ps - 1) / ps
		for idx := first; idx < last; {
			start, end, ok := r.Seg.NextRun(idx, last-1)
			if !ok {
				h = skipAbsent(h, last-idx)
				break
			}
			h = skipAbsent(h, start-idx)
			for i := start; i < end; i++ {
				pg := r.Seg.Page(i)
				h ^= 1
				h *= prime64
				for _, b := range pg.Data {
					h ^= uint64(b)
					h *= prime64
				}
			}
			idx = end
		}
	}
	return h, true
}

// FrameCensus counts pool frames reachable from live segments: the sum
// of materialized pages over every distinct segment mapped by every
// resident process. The chaos campaign's frame-leak invariant compares
// it against Pool.InUse() — a pool frame not reachable from any live
// segment has leaked.
func (m *Machine) FrameCensus() uint64 {
	var total uint64
	var seen []*vm.Segment
	for _, name := range m.ProcNames() {
		pr := m.procs[name]
		for _, r := range pr.AS.Regions() {
			dup := false
			for _, s := range seen {
				if s == r.Seg {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			seen = append(seen, r.Seg)
			total += uint64(r.Seg.MaterializedPages())
		}
	}
	return total
}

// PageElapse is a tiny helper for tests: how long one op takes.
func PageElapse(k *sim.Kernel, fn func(p *sim.Proc)) time.Duration {
	var start, end time.Duration
	k.Go("measure", func(p *sim.Proc) {
		start = p.Now()
		fn(p)
		end = p.Now()
	})
	k.Run()
	return end - start
}
