package machine

import (
	"testing"
	"time"

	"accentmig/internal/ipc"
	"accentmig/internal/netlink"
	"accentmig/internal/sim"
	"accentmig/internal/trace"
	"accentmig/internal/vm"
)

func TestNewProcessAndPorts(t *testing.T) {
	k := sim.New()
	m := New(k, "host", Config{})
	pr, err := m.NewProcess("job", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Ports) != 3 {
		t.Errorf("ports = %d", len(pr.Ports))
	}
	if pr.ContextBytes() != 1024 {
		t.Errorf("ContextBytes = %d, want 1024", pr.ContextBytes())
	}
	if _, err := m.NewProcess("job", 0); err == nil {
		t.Error("duplicate process accepted")
	}
	if m.Procs() != 1 {
		t.Errorf("Procs = %d", m.Procs())
	}
}

func TestExecComputeAndTouch(t *testing.T) {
	k := sim.New()
	m := New(k, "host", Config{})
	pr, _ := m.NewProcess("job", 0)
	pr.AS.Validate(0, 8*512, "data")
	pr.Program = &trace.Program{Ops: []trace.Op{
		trace.Compute{D: 100 * time.Millisecond},
		trace.Touch{Addr: 0},
		trace.Touch{Addr: 512, Write: true},
	}}
	m.Start(pr)
	var done time.Duration
	k.Go("wait", func(p *sim.Proc) {
		if err := pr.WaitDone(p); err != nil {
			t.Errorf("exec: %v", err)
		}
		done = p.Now()
	})
	k.Run()
	if pr.Status != Finished {
		t.Errorf("status = %v", pr.Status)
	}
	// 100ms compute + 2 FillZero faults at 3ms.
	if done != 106*time.Millisecond {
		t.Errorf("finished at %v, want 106ms", done)
	}
	if st := m.Pager.Stats(); st.FillZero != 2 {
		t.Errorf("FillZero = %d", st.FillZero)
	}
}

func TestExecStopsAtMigratePoint(t *testing.T) {
	k := sim.New()
	m := New(k, "host", Config{})
	pr, _ := m.NewProcess("job", 0)
	pr.AS.Validate(0, 4*512, "data")
	pr.Program = &trace.Program{Ops: []trace.Op{
		trace.Touch{Addr: 0},
		trace.MigratePoint{},
		trace.Touch{Addr: 512},
	}}
	m.Start(pr)
	reached := false
	k.Go("mgr", func(p *sim.Proc) {
		pr.AtMigrate.Wait(p)
		reached = true
	})
	k.Run()
	if !reached {
		t.Fatal("migration point never reached")
	}
	if pr.Status != AtMigrationPoint {
		t.Errorf("status = %v", pr.Status)
	}
	if pr.PC != 2 {
		t.Errorf("PC = %d, want 2 (past the MigratePoint)", pr.PC)
	}
	if pr.Done.Opened() {
		t.Error("Done opened at migration point")
	}
	// Resuming from the saved PC executes only the tail.
	m.Start(pr)
	k.Run()
	if pr.Status != Finished {
		t.Errorf("status after resume = %v", pr.Status)
	}
	if st := m.Pager.Stats(); st.FillZero != 2 {
		t.Errorf("FillZero = %d, want 2", st.FillZero)
	}
}

func TestExecSeqScanAndWSLoop(t *testing.T) {
	k := sim.New()
	m := New(k, "host", Config{})
	pr, _ := m.NewProcess("job", 0)
	pr.AS.Validate(0, 64*512, "data")
	pr.Program = &trace.Program{Ops: []trace.Op{
		trace.SeqScan{Start: 0, Bytes: 8 * 512},
		trace.WSLoop{Start: 0, Pages: 4, Iters: 10, Compute: time.Millisecond},
	}}
	m.Start(pr)
	k.Run()
	if pr.Status != Finished {
		t.Fatalf("status = %v, err = %v", pr.Status, pr.ExecError)
	}
	// SeqScan faults 8 pages; WSLoop touches only already-resident ones.
	if st := m.Pager.Stats(); st.FillZero != 8 {
		t.Errorf("FillZero = %d, want 8", st.FillZero)
	}
}

func TestExecRandTouchDeterministic(t *testing.T) {
	run := func() uint64 {
		k := sim.New()
		m := New(k, "host", Config{})
		pr, _ := m.NewProcess("job", 0)
		pr.AS.Validate(0, 256*512, "data")
		pr.Program = &trace.Program{Ops: []trace.Op{
			trace.RandTouch{Start: 0, Bytes: 256 * 512, Count: 40, Seed: 99},
		}}
		m.Start(pr)
		k.Run()
		return m.Pager.Stats().FillZero
	}
	if a, b := run(), run(); a != b || a != 40 {
		t.Errorf("FillZero runs = %d, %d; want 40, 40", a, b)
	}
}

func TestExecErrorSurfaced(t *testing.T) {
	k := sim.New()
	m := New(k, "host", Config{})
	pr, _ := m.NewProcess("job", 0)
	pr.Program = &trace.Program{Ops: []trace.Op{trace.Touch{Addr: 0x99999}}}
	m.Start(pr)
	var err error
	k.Go("wait", func(p *sim.Proc) { err = pr.WaitDone(p) })
	k.Run()
	if err == nil {
		t.Error("BadMem touch did not surface an error")
	}
}

func TestMakeResident(t *testing.T) {
	k := sim.New()
	m := New(k, "host", Config{})
	pr, _ := m.NewProcess("job", 0)
	pr.AS.Validate(0, 8*512, "data")
	if err := m.MakeResident(pr, []vm.Addr{0, 512, 2 * 512}); err != nil {
		t.Fatal(err)
	}
	u := pr.AS.Usage()
	if u.Resident != 3*512 {
		t.Errorf("Resident = %d, want %d", u.Resident, 3*512)
	}
	if err := m.MakeResident(pr, []vm.Addr{0xffff000}); err == nil {
		t.Error("MakeResident accepted a bad address")
	}
}

func TestConnectMachines(t *testing.T) {
	k := sim.New()
	a := New(k, "A", Config{})
	b := New(k, "B", Config{})
	link := Connect(a, b, netlink.Config{})
	if link == nil {
		t.Fatal("no link")
	}
	dst := b.IPC.AllocPort("svc")
	a.Net.AddRoute(dst.ID, "B")
	got := false
	k.Go("rx", func(p *sim.Proc) {
		b.IPC.Receive(p, dst)
		got = true
	})
	k.Go("tx", func(p *sim.Proc) {
		if err := a.IPC.Send(p, &ipc.Message{To: dst.ID, BodyBytes: 4}); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	k.Run()
	if !got {
		t.Error("cross-machine message not delivered")
	}
}
