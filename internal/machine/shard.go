package machine

import "accentmig/internal/sim"

// NewOnLane builds a machine on lane of cluster cl: every kernel object
// the machine owns — CPU, disk, pager, queues, procs — lives on that
// lane's kernel, so the whole machine executes inside the lane's
// conservative windows and touches no other lane's state. The lane
// index is the machine's shard affinity; cross-machine interaction must
// go through lane-aware primitives (netlink.Iface, sim.Cluster.Send).
func NewOnLane(cl *sim.Cluster, lane int, name string, cfg Config) *Machine {
	m := New(cl.Lane(lane), name, cfg)
	m.shard = lane
	return m
}

// Shard reports the event lane the machine was built on; 0 for
// machines on a plain shared kernel.
func (m *Machine) Shard() int { return m.shard }
