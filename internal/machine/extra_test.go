package machine

import (
	"testing"
	"time"

	"accentmig/internal/sim"
	"accentmig/internal/trace"
)

func TestQuantumSlicesLongCompute(t *testing.T) {
	// A kernel-priority user of the CPU must get in within one quantum
	// even while a process executes a very long compute op.
	k := sim.New()
	m := New(k, "host", Config{Quantum: 50 * time.Millisecond})
	pr, _ := m.NewProcess("cruncher", 0)
	pr.Program = &trace.Program{Ops: []trace.Op{trace.Compute{D: 10 * time.Second}}}
	m.Start(pr)
	var kernelAt time.Duration
	k.Go("kernel", func(p *sim.Proc) {
		p.Sleep(10 * time.Millisecond)
		m.CPU.UseHigh(p, time.Millisecond)
		kernelAt = p.Now()
	})
	k.Run()
	if kernelAt > 100*time.Millisecond {
		t.Errorf("kernel work waited until %v behind a long compute", kernelAt)
	}
	if pr.Status != Finished {
		t.Errorf("status = %v", pr.Status)
	}
}

func TestQuantumPreservesTotalComputeTime(t *testing.T) {
	// Slicing must not change a lone process's total runtime.
	k := sim.New()
	m := New(k, "host", Config{})
	pr, _ := m.NewProcess("job", 0)
	pr.Program = &trace.Program{Ops: []trace.Op{trace.Compute{D: 1234 * time.Millisecond}}}
	m.Start(pr)
	end := k.Run()
	if end != 1234*time.Millisecond {
		t.Errorf("runtime = %v, want 1.234s", end)
	}
}

func TestIOWaitDoesNotHoldCPU(t *testing.T) {
	// While one process waits on I/O, another computes.
	k := sim.New()
	m := New(k, "host", Config{})
	a, _ := m.NewProcess("waiter", 0)
	a.Program = &trace.Program{Ops: []trace.Op{trace.IOWait{D: time.Second}}}
	b, _ := m.NewProcess("worker", 0)
	b.Program = &trace.Program{Ops: []trace.Op{trace.Compute{D: time.Second}}}
	m.Start(a)
	m.Start(b)
	end := k.Run()
	// Overlapped: total well under the 2s a serialized run would take.
	if end > 1100*time.Millisecond {
		t.Errorf("IOWait serialized with compute: total %v", end)
	}
}

func TestTwoProcessesShareCPUFairly(t *testing.T) {
	k := sim.New()
	m := New(k, "host", Config{})
	var finish []time.Duration
	for _, name := range []string{"a", "b"} {
		pr, _ := m.NewProcess(name, 0)
		pr.Program = &trace.Program{Ops: []trace.Op{trace.Compute{D: time.Second}}}
		m.Start(pr)
		k.Go("waiter-"+name, func(p *sim.Proc) {
			pr.WaitDone(p)
			finish = append(finish, p.Now())
		})
	}
	end := k.Run()
	if end != 2*time.Second {
		t.Errorf("total = %v, want 2s of serialized compute", end)
	}
	// With quantum slicing both finish near the end (round-robin), not
	// one at 1s and one at 2s.
	if finish[0] < 1900*time.Millisecond {
		t.Errorf("first finisher at %v; expected interleaved completion", finish[0])
	}
}

func TestRequestPreemptBeforeStart(t *testing.T) {
	k := sim.New()
	m := New(k, "host", Config{})
	pr, _ := m.NewProcess("job", 0)
	pr.Program = &trace.Program{Ops: []trace.Op{trace.Compute{D: time.Second}}}
	m.RequestPreempt(pr)
	m.Start(pr)
	stopped := false
	k.Go("driver", func(p *sim.Proc) {
		stopped = m.WaitStopped(p, pr)
	})
	k.Run()
	if !stopped {
		t.Fatal("pre-start preempt ignored")
	}
	if pr.PC != 0 {
		t.Errorf("PC = %d, want 0 (stopped before the first op)", pr.PC)
	}
}

func TestAdoptRejectsDuplicate(t *testing.T) {
	k := sim.New()
	m := New(k, "host", Config{})
	pr, _ := m.NewProcess("job", 0)
	if err := m.Adopt(pr); err == nil {
		t.Error("Adopt accepted a duplicate name")
	}
}

func TestProcNamesSorted(t *testing.T) {
	k := sim.New()
	m := New(k, "host", Config{})
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if _, err := m.NewProcess(n, 0); err != nil {
			t.Fatal(err)
		}
	}
	names := m.ProcNames()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("ProcNames = %v", names)
		}
	}
}
