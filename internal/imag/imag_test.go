package imag

import (
	"testing"
	"testing/quick"
)

func seed(t *testing.T) (*Store, *StoreSegment) {
	t.Helper()
	st := NewStore()
	seg := st.AddSegment(1, 10*512, 512)
	for i := uint64(0); i < 10; i++ {
		seg.Put(i, []byte{byte(i)})
	}
	return st, seg
}

func TestServeDemandPage(t *testing.T) {
	_, seg := seed(t)
	rep := seg.Serve(&ReadRequest{SegID: 1, PageIdx: 3})
	if rep == nil || len(rep.Pages) != 1 {
		t.Fatalf("rep = %+v", rep)
	}
	if rep.Pages[0].Index != 3 || rep.Pages[0].Data[0] != 3 {
		t.Errorf("page = %+v", rep.Pages[0])
	}
	if seg.Remaining() != 9 {
		t.Errorf("Remaining = %d, want 9", seg.Remaining())
	}
}

func TestServeWithPrefetch(t *testing.T) {
	_, seg := seed(t)
	rep := seg.Serve(&ReadRequest{SegID: 1, PageIdx: 2, Prefetch: 3})
	if len(rep.Pages) != 4 {
		t.Fatalf("pages = %d, want 4", len(rep.Pages))
	}
	for i, pg := range rep.Pages {
		if pg.Index != uint64(2+i) {
			t.Errorf("page %d has index %d", i, pg.Index)
		}
	}
}

func TestServePrefetchSkipsDelivered(t *testing.T) {
	_, seg := seed(t)
	seg.Serve(&ReadRequest{PageIdx: 3}) // deliver 3
	rep := seg.Serve(&ReadRequest{PageIdx: 2, Prefetch: 3})
	// Wants 3,4,5 but 3 already went: expect demand 2 + prefetch 4,5.
	if len(rep.Pages) != 3 {
		t.Fatalf("pages = %+v", rep.Pages)
	}
	if rep.Pages[1].Index != 4 || rep.Pages[2].Index != 5 {
		t.Errorf("prefetch indices = %d,%d", rep.Pages[1].Index, rep.Pages[2].Index)
	}
}

func TestServePrefetchStopsAtEnd(t *testing.T) {
	_, seg := seed(t)
	rep := seg.Serve(&ReadRequest{PageIdx: 8, Prefetch: 15})
	if len(rep.Pages) != 2 {
		t.Errorf("pages = %d, want 2 (8 and 9)", len(rep.Pages))
	}
}

func TestServeMissingPage(t *testing.T) {
	st := NewStore()
	seg := st.AddSegment(1, 10*512, 512)
	seg.Put(0, []byte{0})
	if rep := seg.Serve(&ReadRequest{PageIdx: 5}); rep != nil {
		t.Errorf("served a page never cached: %+v", rep)
	}
}

func TestFlushAllOrdersAndDrains(t *testing.T) {
	_, seg := seed(t)
	seg.Serve(&ReadRequest{PageIdx: 4})
	rep := seg.FlushAll()
	if len(rep.Pages) != 9 {
		t.Fatalf("flushed %d, want 9", len(rep.Pages))
	}
	for i := 1; i < len(rep.Pages); i++ {
		if rep.Pages[i].Index <= rep.Pages[i-1].Index {
			t.Fatal("flush not in index order")
		}
	}
	if seg.Remaining() != 0 {
		t.Errorf("Remaining = %d after flush", seg.Remaining())
	}
	if again := seg.FlushAll(); len(again.Pages) != 0 {
		t.Errorf("second flush returned %d pages", len(again.Pages))
	}
}

func TestDrop(t *testing.T) {
	st, seg := seed(t)
	seg.Serve(&ReadRequest{PageIdx: 0})
	if n := st.Drop(1); n != 9 {
		t.Errorf("Drop returned %d undelivered, want 9", n)
	}
	if _, ok := st.Segment(1); ok {
		t.Error("segment still present after Drop")
	}
	if st.Drop(1) != 0 {
		t.Error("double Drop returned pages")
	}
}

func TestReplyBytes(t *testing.T) {
	rep := &ReadReply{Pages: []PageData{{Data: make([]byte, 512)}, {Data: make([]byte, 512)}}}
	if got := rep.Bytes(); got != 32+2*(8+512) {
		t.Errorf("Bytes = %d", got)
	}
}

// Property: serving never delivers the same page twice across any
// request sequence, and Remaining is consistent with deliveries.
func TestQuickNoDoubleDelivery(t *testing.T) {
	f := func(reqs []struct {
		Idx uint8
		Pf  uint8
	}) bool {
		st := NewStore()
		seg := st.AddSegment(1, 64*512, 512)
		for i := uint64(0); i < 64; i++ {
			seg.Put(i, []byte{byte(i)})
		}
		seen := map[uint64]int{}
		for _, rq := range reqs {
			rep := seg.Serve(&ReadRequest{PageIdx: uint64(rq.Idx % 64), Prefetch: int(rq.Pf % 16)})
			if rep == nil {
				continue
			}
			for i, pg := range rep.Pages {
				if i > 0 { // demand page may legitimately repeat
					seen[pg.Index]++
					if seen[pg.Index] > 1 {
						return false
					}
				}
			}
		}
		return seg.Remaining() >= 0 && seg.Remaining() <= 64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
