package imag

import (
	"testing"
	"testing/quick"

	"accentmig/internal/vm"
)

func seed(t *testing.T) (*Store, *StoreSegment) {
	t.Helper()
	st := NewStore()
	seg := st.AddSegment(1, 10*512, 512)
	for i := uint64(0); i < 10; i++ {
		seg.Put(i, []byte{byte(i)})
	}
	return st, seg
}

// flatPage is one delivered page, unbatched from the reply's runs.
type flatPage struct {
	Index uint64
	Data  []byte
}

func flatten(rep *ReadReply, pageSize int) []flatPage {
	if rep == nil {
		return nil
	}
	var out []flatPage
	for _, run := range rep.Runs {
		for j := 0; j < run.Count; j++ {
			out = append(out, flatPage{run.Index + uint64(j), run.Page(j, pageSize)})
		}
	}
	return out
}

func TestServeDemandPage(t *testing.T) {
	_, seg := seed(t)
	rep := seg.Serve(&ReadRequest{SegID: 1, PageIdx: 3})
	pages := flatten(rep, 512)
	if rep == nil || len(pages) != 1 {
		t.Fatalf("rep = %+v", rep)
	}
	if pages[0].Index != 3 || pages[0].Data[0] != 3 {
		t.Errorf("page = %+v", pages[0])
	}
	if seg.Remaining() != 9 {
		t.Errorf("Remaining = %d, want 9", seg.Remaining())
	}
}

func TestServeWithPrefetch(t *testing.T) {
	_, seg := seed(t)
	rep := seg.Serve(&ReadRequest{SegID: 1, PageIdx: 2, Prefetch: 3})
	pages := flatten(rep, 512)
	if len(pages) != 4 {
		t.Fatalf("pages = %d, want 4", len(pages))
	}
	for i, pg := range pages {
		if pg.Index != uint64(2+i) {
			t.Errorf("page %d has index %d", i, pg.Index)
		}
	}
}

func TestServePrefetchSkipsDelivered(t *testing.T) {
	_, seg := seed(t)
	seg.Serve(&ReadRequest{PageIdx: 3}) // deliver 3
	rep := seg.Serve(&ReadRequest{PageIdx: 2, Prefetch: 3})
	pages := flatten(rep, 512)
	// Wants 3,4,5 but 3 already went: expect demand 2 + prefetch 4,5.
	if len(pages) != 3 {
		t.Fatalf("pages = %+v", pages)
	}
	if pages[1].Index != 4 || pages[2].Index != 5 {
		t.Errorf("prefetch indices = %d,%d", pages[1].Index, pages[2].Index)
	}
}

func TestServePrefetchStopsAtEnd(t *testing.T) {
	_, seg := seed(t)
	rep := seg.Serve(&ReadRequest{PageIdx: 8, Prefetch: 15})
	if n := rep.PageCount(); n != 2 {
		t.Errorf("pages = %d, want 2 (8 and 9)", n)
	}
}

func TestServeMissingPage(t *testing.T) {
	st := NewStore()
	seg := st.AddSegment(1, 10*512, 512)
	seg.Put(0, []byte{0})
	if rep := seg.Serve(&ReadRequest{PageIdx: 5}); rep != nil {
		t.Errorf("served a page never cached: %+v", rep)
	}
}

func TestFlushAllOrdersAndDrains(t *testing.T) {
	_, seg := seed(t)
	seg.Serve(&ReadRequest{PageIdx: 4})
	rep := seg.FlushAll()
	pages := flatten(rep, 512)
	if len(pages) != 9 {
		t.Fatalf("flushed %d, want 9", len(pages))
	}
	for i := 1; i < len(pages); i++ {
		if pages[i].Index <= pages[i-1].Index {
			t.Fatal("flush not in index order")
		}
	}
	if seg.Remaining() != 0 {
		t.Errorf("Remaining = %d after flush", seg.Remaining())
	}
	if again := seg.FlushAll(); again.PageCount() != 0 {
		t.Errorf("second flush returned %d pages", again.PageCount())
	}
}

// TestRunBatchedServe checks that contiguous pages of one store run
// come back coalesced into a single reply run that aliases the store's
// buffer rather than copying it.
func TestRunBatchedServe(t *testing.T) {
	st := NewStore()
	seg := st.AddSegment(1, 16*512, 512)
	data := make([]byte, 8*512)
	for i := range data {
		data[i] = byte(i / 512)
	}
	seg.PutRun(4, 8, data)
	rep := seg.Serve(&ReadRequest{PageIdx: 5, Prefetch: 4})
	if len(rep.Runs) != 1 {
		t.Fatalf("reply has %d runs, want 1 coalesced: %+v", len(rep.Runs), rep.Runs)
	}
	run := rep.Runs[0]
	if run.Index != 5 || run.Count != 5 {
		t.Fatalf("run = {%d,%d}, want {5,5}", run.Index, run.Count)
	}
	if &run.Data[0] != &data[512] {
		t.Error("reply run copied the store buffer instead of aliasing it")
	}
	for j := 0; j < run.Count; j++ {
		if pg := run.Page(j, 512); pg[0] != byte(1+j) {
			t.Errorf("page %d content = %d, want %d", j, pg[0], 1+j)
		}
	}
}

func TestDrop(t *testing.T) {
	st, seg := seed(t)
	seg.Serve(&ReadRequest{PageIdx: 0})
	if n := st.Drop(1); n != 9 {
		t.Errorf("Drop returned %d undelivered, want 9", n)
	}
	if _, ok := st.Segment(1); ok {
		t.Error("segment still present after Drop")
	}
	if st.Drop(1) != 0 {
		t.Error("double Drop returned pages")
	}
}

func TestReplyBytes(t *testing.T) {
	rep := &ReadReply{Runs: []vm.PageRun{{Index: 0, Count: 2, Data: make([]byte, 1024)}}}
	if got := rep.Bytes(); got != 32+2*(8+512) {
		t.Errorf("Bytes = %d", got)
	}
	// Splitting the same pages across runs must not change the price:
	// accounting stays per-page regardless of batching.
	split := &ReadReply{Runs: []vm.PageRun{
		{Index: 0, Count: 1, Data: make([]byte, 512)},
		{Index: 7, Count: 1, Data: make([]byte, 512)},
	}}
	if split.Bytes() != rep.Bytes() {
		t.Errorf("split Bytes = %d, batched Bytes = %d", split.Bytes(), rep.Bytes())
	}
}

// Property: serving never delivers the same page twice across any
// request sequence, and Remaining is consistent with deliveries.
func TestQuickNoDoubleDelivery(t *testing.T) {
	f := func(reqs []struct {
		Idx uint8
		Pf  uint8
	}) bool {
		st := NewStore()
		seg := st.AddSegment(1, 64*512, 512)
		for i := uint64(0); i < 64; i++ {
			seg.Put(i, []byte{byte(i)})
		}
		seen := map[uint64]int{}
		for _, rq := range reqs {
			rep := seg.Serve(&ReadRequest{PageIdx: uint64(rq.Idx % 64), Prefetch: int(rq.Pf % 16)})
			if rep == nil {
				continue
			}
			for i, pg := range flatten(rep, 512) {
				if i > 0 { // demand page may legitimately repeat
					seen[pg.Index]++
					if seen[pg.Index] > 1 {
						return false
					}
				}
			}
		}
		return seg.Remaining() >= 0 && seg.Remaining() <= 64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
