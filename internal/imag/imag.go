// Package imag defines the copy-on-reference wire protocol of §2.2 —
// Imaginary Read Request / Imaginary Read Reply / Imaginary Segment
// Death — and the page store a backing process uses to service it. The
// store is shared by the NetMsgServer's IOU cache and by user-level
// backers (any application may lazy-ship data this way).
package imag

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// IPC operation codes for the copy-on-reference protocol.
const (
	// OpReadRequest asks the backing port for one page (plus optional
	// prefetch). Body: *ReadRequest.
	OpReadRequest = 0x1001
	// OpReadReply delivers the requested page data. Body: *ReadReply.
	OpReadReply = 0x1002
	// OpSegmentDeath tells the backer all references to the imaginary
	// object have died. Body: *SegmentDeath.
	OpSegmentDeath = 0x1003
	// OpFlush asks the backer to push every still-owed page eagerly
	// (the residual-dependency "dissolve IOUs" extension). Body:
	// *FlushRequest.
	OpFlush = 0x1004
	// OpFlushReply carries the flushed pages. Body: *ReadReply.
	OpFlushReply = 0x1005
	// OpReadError tells the faulter its request can never be satisfied
	// (dead segment, page not held) so it stops retrying. Body:
	// *ReadError.
	OpReadError = 0x1006
)

// ReadRequest is the body of an imaginary fault message.
type ReadRequest struct {
	SegID    uint64
	PageIdx  uint64
	Prefetch int // additional nearby pages the faulter will accept
}

// ReadRequestBytes is the encoded size of a ReadRequest body.
const ReadRequestBytes = 64

// PageData is one delivered page.
type PageData struct {
	Index uint64
	Data  []byte
}

// ReadReply is the body of an imaginary fault reply. Pages[0] is the
// demanded page; any further entries are prefetched neighbours.
type ReadReply struct {
	SegID uint64
	Pages []PageData
}

// Bytes reports the encoded size of the reply body.
func (r *ReadReply) Bytes() int {
	n := 32
	for _, pg := range r.Pages {
		n += 8 + len(pg.Data)
	}
	return n
}

// ReadError is the body of a negative imaginary fault reply: the
// backer can never produce the page, so the faulter must not retry.
type ReadError struct {
	SegID   uint64
	PageIdx uint64
	Reason  string
}

// ReadErrorBytes is the encoded size of a ReadError body.
const ReadErrorBytes = 48

// SegmentDeath is the body of a death notification.
type SegmentDeath struct{ SegID uint64 }

// SegmentDeathBytes is the encoded size of a SegmentDeath body.
const SegmentDeathBytes = 16

// FlushRequest asks for still-owed pages of a segment. MaxPages
// bounds the reply (0 means everything): a bounded flush lets demand
// read requests interleave with the bulk transfer instead of queuing
// behind one enormous reply for the whole residual dependency.
type FlushRequest struct {
	SegID    uint64
	MaxPages int
}

// FlushRequestBytes is the encoded size of a FlushRequest body.
const FlushRequestBytes = 16

// segIDCounter hands out simulation-wide unique imaginary segment IDs,
// offset far from vm's segment IDs so the two namespaces never collide.
// It is atomic so that independent simulation kernels on concurrent
// goroutines (parallel experiment trials) can allocate without racing;
// ID values are identities only and never influence behavior.
var segIDCounter atomic.Uint64

func init() { segIDCounter.Store(1 << 32) }

// NextSegID returns a fresh simulation-wide unique segment identity
// for an imaginary object created by a backer.
func NextSegID() uint64 {
	return segIDCounter.Add(1)
}

// Store holds the page images a backer owes to remote imaginary
// segments, tracking what has already been delivered so residual
// dependencies can be measured and flushed.
type Store struct {
	segs map[uint64]*StoreSegment
}

// StoreSegment is the owed pages of one imaginary segment.
type StoreSegment struct {
	ID       uint64
	Size     uint64
	PageSize int

	pages     map[uint64][]byte
	delivered map[uint64]bool
	dead      bool
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{segs: make(map[uint64]*StoreSegment)}
}

// AddSegment registers a segment the store will back.
func (s *Store) AddSegment(id, size uint64, pageSize int) *StoreSegment {
	seg := &StoreSegment{
		ID:        id,
		Size:      size,
		PageSize:  pageSize,
		pages:     make(map[uint64][]byte),
		delivered: make(map[uint64]bool),
	}
	s.segs[id] = seg
	return seg
}

// Segment finds a backed segment.
func (s *Store) Segment(id uint64) (*StoreSegment, bool) {
	seg, ok := s.segs[id]
	return seg, ok
}

// Drop removes a dead segment and reports how many owed pages were
// discarded undelivered.
func (s *Store) Drop(id uint64) int {
	seg, ok := s.segs[id]
	if !ok {
		return 0
	}
	delete(s.segs, id)
	seg.dead = true
	return seg.Remaining()
}

// Segments reports the live segment count.
func (s *Store) Segments() int { return len(s.segs) }

// TotalRemaining sums undelivered pages across all live segments — the
// whole residual dependency this backer still carries.
func (s *Store) TotalRemaining() int {
	n := 0
	for _, seg := range s.segs {
		n += seg.Remaining()
	}
	return n
}

// Put stores the image for page idx. The data slice is retained.
func (g *StoreSegment) Put(idx uint64, data []byte) {
	g.pages[idx] = data
}

// Get returns the image for page idx if the store holds it.
func (g *StoreSegment) Get(idx uint64) ([]byte, bool) {
	d, ok := g.pages[idx]
	return d, ok
}

// Pages reports how many page images the segment holds.
func (g *StoreSegment) Pages() int { return len(g.pages) }

// Remaining reports pages held but not yet delivered — the residual
// dependency the source carries for a lazily migrated process.
func (g *StoreSegment) Remaining() int {
	n := 0
	for idx := range g.pages {
		if !g.delivered[idx] {
			n++
		}
	}
	return n
}

// Serve answers a ReadRequest: the demanded page plus up to prefetch
// nearby undelivered pages scanning forward from it. It returns nil if
// the demanded page is not held (a protocol error by the requester —
// the backer only owes pages it cached).
func (g *StoreSegment) Serve(req *ReadRequest) *ReadReply {
	data, ok := g.pages[req.PageIdx]
	if !ok {
		return nil
	}
	rep := &ReadReply{SegID: g.ID, Pages: []PageData{{Index: req.PageIdx, Data: data}}}
	g.delivered[req.PageIdx] = true
	for i := uint64(1); i <= uint64(req.Prefetch); i++ {
		idx := req.PageIdx + i
		d, ok := g.pages[idx]
		if !ok || g.delivered[idx] {
			continue
		}
		rep.Pages = append(rep.Pages, PageData{Index: idx, Data: d})
		g.delivered[idx] = true
	}
	return rep
}

// FlushAll returns every undelivered page in index order and marks them
// delivered. Used to dissolve the residual dependency eagerly.
func (g *StoreSegment) FlushAll() *ReadReply { return g.Flush(0) }

// Flush returns up to max undelivered pages in index order and marks
// them delivered (max <= 0 means all). Callers dissolve a large
// residual dependency with a sequence of bounded flushes so the backer
// stays responsive to concurrent demand reads.
func (g *StoreSegment) Flush(max int) *ReadReply {
	var idxs []uint64
	for idx := range g.pages {
		if !g.delivered[idx] {
			idxs = append(idxs, idx)
		}
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	if max > 0 && len(idxs) > max {
		idxs = idxs[:max]
	}
	rep := &ReadReply{SegID: g.ID}
	for _, idx := range idxs {
		rep.Pages = append(rep.Pages, PageData{Index: idx, Data: g.pages[idx]})
		g.delivered[idx] = true
	}
	return rep
}

// String summarizes the segment.
func (g *StoreSegment) String() string {
	return fmt.Sprintf("storeSeg(%d: %d pages, %d owed)", g.ID, len(g.pages), g.Remaining())
}
