// Package imag defines the copy-on-reference wire protocol of §2.2 —
// Imaginary Read Request / Imaginary Read Reply / Imaginary Segment
// Death — and the page store a backing process uses to service it. The
// store is shared by the NetMsgServer's IOU cache and by user-level
// backers (any application may lazy-ship data this way).
package imag

import (
	"fmt"
	"sort"
	"sync/atomic"

	"accentmig/internal/vm"
)

// IPC operation codes for the copy-on-reference protocol.
const (
	// OpReadRequest asks the backing port for one page (plus optional
	// prefetch). Body: *ReadRequest.
	OpReadRequest = 0x1001
	// OpReadReply delivers the requested page data. Body: *ReadReply.
	OpReadReply = 0x1002
	// OpSegmentDeath tells the backer all references to the imaginary
	// object have died. Body: *SegmentDeath.
	OpSegmentDeath = 0x1003
	// OpFlush asks the backer to push every still-owed page eagerly
	// (the residual-dependency "dissolve IOUs" extension). Body:
	// *FlushRequest.
	OpFlush = 0x1004
	// OpFlushReply carries the flushed pages. Body: *ReadReply.
	OpFlushReply = 0x1005
	// OpReadError tells the faulter its request can never be satisfied
	// (dead segment, page not held) so it stops retrying. Body:
	// *ReadError.
	OpReadError = 0x1006
	// OpHashRead asks any content-index holder — not necessarily the
	// origin backer — for the page whose content hash it names. A hit
	// answers with a normal OpReadReply stamped with the requester's
	// segment and page (so the faulter's reply path is unchanged); a
	// miss answers OpReadError and the faulter falls back to the origin
	// backer. Body: *HashRead.
	OpHashRead = 0x1007
)

// HashRead is the body of a content-addressed fault: fetch the page
// named Hash from whichever machine holds it. SegID and Page identify
// where the requester will install the bytes; the holder echoes them
// on the reply, which is how a reply about content gets routed back
// into an address space.
type HashRead struct {
	Hash  uint64
	SegID uint64
	Page  uint64
}

// HashReadBytes is the encoded size of a HashRead body.
const HashReadBytes = 32

// ReadRequest is the body of an imaginary fault message.
type ReadRequest struct {
	SegID    uint64
	PageIdx  uint64
	Prefetch int // additional nearby pages the faulter will accept
	// StreamTo, when nonzero, asks the backer to split its reply: the
	// demanded page returns alone on ReplyTo (a one-page reply unstalls
	// the faulter fastest), and the prefetch run follows as a separate
	// background-priority reply to this port.
	StreamTo uint64
}

// ReadRequestBytes is the encoded size of a ReadRequest body.
const ReadRequestBytes = 64

// ReadReply is the body of an imaginary fault reply. Pages travel
// run-batched (one header plus N consecutive pages per run); the first
// page of the first run is the demanded page, and everything after it
// is prefetched neighbours.
type ReadReply struct {
	SegID uint64
	Runs  []vm.PageRun
	// Streaming is the split-reply handshake flag. On a demand reply it
	// tells the faulter the prefetch run follows as background replies
	// on the request's StreamTo port; on the final background reply it
	// tells the stream receiver the split is complete, closing out one
	// outstanding-fetch slot.
	Streaming bool
	// StreamRuns names the pages in flight behind a Streaming demand
	// reply (indices only, no data), so the faulter can park a demand
	// fault on one of them until it lands instead of re-requesting it.
	StreamRuns []vm.PageRun
}

// PageCount reports the number of pages the reply delivers.
func (r *ReadReply) PageCount() int { return vm.RunPageCount(r.Runs) }

// Split divides a multi-page reply into the demanded page (the first
// page of the first run) and the prefetch remainder, for backers
// answering a StreamTo request. The demand half is marked Streaming.
// It returns a nil remainder when there is nothing to split.
func (r *ReadReply) Split() (*ReadReply, *ReadReply) {
	if r.PageCount() <= 1 || len(r.Runs) == 0 {
		return r, nil
	}
	first := r.Runs[0]
	ps := len(first.Data) / first.Count
	demand := &ReadReply{
		SegID:     r.SegID,
		Runs:      []vm.PageRun{{Index: first.Index, Count: 1, Data: first.Data[:ps]}},
		Streaming: true,
	}
	rest := &ReadReply{SegID: r.SegID}
	if first.Count > 1 {
		rest.Runs = append(rest.Runs, vm.PageRun{Index: first.Index + 1, Count: first.Count - 1, Data: first.Data[ps:]})
	}
	rest.Runs = append(rest.Runs, r.Runs[1:]...)
	for _, run := range rest.Runs {
		demand.StreamRuns = append(demand.StreamRuns, vm.PageRun{Index: run.Index, Count: run.Count})
	}
	return demand, rest
}

// PerPage explodes the reply into one-page replies. Stream remainders
// travel this way: a single page plus headers still fits one link
// fragment, so the wire cost matches the batched form, but a demand
// reply queued behind the stream waits out at most one page instead of
// the whole run. The last reply carries the Streaming completion flag.
func (r *ReadReply) PerPage() []*ReadReply {
	var out []*ReadReply
	for _, run := range r.Runs {
		ps := len(run.Data) / run.Count
		for j := 0; j < run.Count; j++ {
			out = append(out, &ReadReply{
				SegID: r.SegID,
				Runs:  []vm.PageRun{{Index: run.Index + uint64(j), Count: 1, Data: run.Page(j, ps)}},
			})
		}
	}
	if n := len(out); n > 0 {
		out[n-1].Streaming = true
	}
	return out
}

// Bytes reports the encoded size of the reply body. Accounting stays
// per-page — one 8-byte header per delivered page — matching the
// calibrated model regardless of run batching.
func (r *ReadReply) Bytes() int {
	return 32 + 8*r.PageCount() + vm.RunDataBytes(r.Runs)
}

// ReadError is the body of a negative imaginary fault reply: the
// backer can never produce the page, so the faulter must not retry.
type ReadError struct {
	SegID   uint64
	PageIdx uint64
	Reason  string
}

// ReadErrorBytes is the encoded size of a ReadError body.
const ReadErrorBytes = 48

// SegmentDeath is the body of a death notification.
type SegmentDeath struct{ SegID uint64 }

// SegmentDeathBytes is the encoded size of a SegmentDeath body.
const SegmentDeathBytes = 16

// FlushRequest asks for still-owed pages of a segment. MaxPages
// bounds the reply (0 means everything): a bounded flush lets demand
// read requests interleave with the bulk transfer instead of queuing
// behind one enormous reply for the whole residual dependency.
type FlushRequest struct {
	SegID    uint64
	MaxPages int
}

// FlushRequestBytes is the encoded size of a FlushRequest body.
const FlushRequestBytes = 16

// segIDCounter hands out simulation-wide unique imaginary segment IDs,
// offset far from vm's segment IDs so the two namespaces never collide.
// It is atomic so that independent simulation kernels on concurrent
// goroutines (parallel experiment trials) can allocate without racing;
// ID values are identities only and never influence behavior.
var segIDCounter atomic.Uint64

func init() { segIDCounter.Store(1 << 32) }

// NextSegID returns a fresh simulation-wide unique segment identity
// for an imaginary object created by a backer.
func NextSegID() uint64 {
	return segIDCounter.Add(1)
}

// Store holds the page images a backer owes to remote imaginary
// segments, tracking what has already been delivered so residual
// dependencies can be measured and flushed.
type Store struct {
	segs map[uint64]*StoreSegment
}

// storeRun is one contiguous extent of owed pages: count pages starting
// at start, bytes concatenated in data (aliasing the attachment buffer
// the run arrived in — absorption is copy-free), with a delivered
// bitmap per page.
type storeRun struct {
	start     uint64
	count     int
	data      []byte
	delivered []uint64 // bitmap, one bit per page of the run
}

// page returns the i-th page's bytes.
func (r *storeRun) page(i, pageSize int) []byte {
	lo := i * pageSize
	hi := lo + pageSize
	if hi > len(r.data) {
		hi = len(r.data)
	}
	return r.data[lo:hi]
}

func (r *storeRun) isDelivered(i int) bool {
	return r.delivered[i>>6]&(1<<(i&63)) != 0
}

// markDelivered sets page i's bit, reporting whether it flipped.
func (r *storeRun) markDelivered(i int) bool {
	w, b := i>>6, uint64(1)<<(i&63)
	if r.delivered[w]&b != 0 {
		return false
	}
	r.delivered[w] |= b
	return true
}

// StoreSegment is the owed pages of one imaginary segment, held as
// sorted non-overlapping runs.
type StoreSegment struct {
	ID       uint64
	Size     uint64
	PageSize int

	runs           []storeRun // sorted by start
	pageCount      int
	deliveredCount int
	dead           bool
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{segs: make(map[uint64]*StoreSegment)}
}

// AddSegment registers a segment the store will back.
func (s *Store) AddSegment(id, size uint64, pageSize int) *StoreSegment {
	seg := &StoreSegment{
		ID:       id,
		Size:     size,
		PageSize: pageSize,
	}
	s.segs[id] = seg
	return seg
}

// Segment finds a backed segment.
func (s *Store) Segment(id uint64) (*StoreSegment, bool) {
	seg, ok := s.segs[id]
	return seg, ok
}

// Drop removes a dead segment and reports how many owed pages were
// discarded undelivered.
func (s *Store) Drop(id uint64) int {
	seg, ok := s.segs[id]
	if !ok {
		return 0
	}
	delete(s.segs, id)
	seg.dead = true
	return seg.Remaining()
}

// Segments reports the live segment count.
func (s *Store) Segments() int { return len(s.segs) }

// TotalRemaining sums undelivered pages across all live segments — the
// whole residual dependency this backer still carries.
func (s *Store) TotalRemaining() int {
	n := 0
	for _, seg := range s.segs {
		n += seg.Remaining()
	}
	return n
}

// findRun locates the run containing page idx, or (-1, 0).
func (g *StoreSegment) findRun(idx uint64) (int, int) {
	ri := sort.Search(len(g.runs), func(i int) bool {
		r := &g.runs[i]
		return r.start+uint64(r.count) > idx
	})
	if ri < len(g.runs) && idx >= g.runs[ri].start {
		return ri, int(idx - g.runs[ri].start)
	}
	return -1, 0
}

// PutRun stores count consecutive pages starting at idx whose bytes are
// concatenated in data. The data slice is retained (absorption is
// copy-free); it must not overlap pages the store already holds.
func (g *StoreSegment) PutRun(idx uint64, count int, data []byte) {
	if count <= 0 {
		return
	}
	r := storeRun{
		start:     idx,
		count:     count,
		data:      data,
		delivered: make([]uint64, (count+63)/64),
	}
	at := sort.Search(len(g.runs), func(i int) bool { return g.runs[i].start >= idx })
	g.runs = append(g.runs, storeRun{})
	copy(g.runs[at+1:], g.runs[at:])
	g.runs[at] = r
	g.pageCount += count
}

// Put stores the image for page idx. The data slice is retained. A page
// the store already holds is replaced in place.
func (g *StoreSegment) Put(idx uint64, data []byte) {
	if ri, off := g.findRun(idx); ri >= 0 {
		r := &g.runs[ri]
		if r.count == 1 {
			r.data = data
			return
		}
		// Replacing inside a multi-page run: overwrite the page's slot.
		slot := r.page(off, g.PageSize)
		n := copy(slot, data)
		for i := n; i < len(slot); i++ {
			slot[i] = 0
		}
		return
	}
	g.PutRun(idx, 1, data)
}

// Get returns the image for page idx if the store holds it.
func (g *StoreSegment) Get(idx uint64) ([]byte, bool) {
	ri, off := g.findRun(idx)
	if ri < 0 {
		return nil, false
	}
	return g.runs[ri].page(off, g.PageSize), true
}

// Pages reports how many page images the segment holds.
func (g *StoreSegment) Pages() int { return g.pageCount }

// Remaining reports pages held but not yet delivered — the residual
// dependency the source carries for a lazily migrated process.
func (g *StoreSegment) Remaining() int {
	return g.pageCount - g.deliveredCount
}

// deliver marks run page (ri, off) delivered, keeping the segment count.
func (g *StoreSegment) deliver(ri, off int) {
	if g.runs[ri].markDelivered(off) {
		g.deliveredCount++
	}
}

// appendPage adds page (ri, off) to the reply, extending the final
// reply run when the page is contiguous with it in both index space and
// the underlying store run — copy-free run slicing.
func (g *StoreSegment) appendPage(rep *ReadReply, lastRi *int, ri, off int) {
	r := &g.runs[ri]
	idx := r.start + uint64(off)
	if n := len(rep.Runs); n > 0 && *lastRi == ri {
		last := &rep.Runs[n-1]
		if last.Index+uint64(last.Count) == idx {
			last.Count++
			lo := int(last.Index-r.start) * g.PageSize
			hi := (off + 1) * g.PageSize
			if hi > len(r.data) {
				hi = len(r.data)
			}
			last.Data = r.data[lo:hi]
			return
		}
	}
	rep.Runs = append(rep.Runs, vm.PageRun{Index: idx, Count: 1, Data: r.page(off, g.PageSize)})
	*lastRi = ri
}

// Serve answers a ReadRequest: the demanded page plus up to prefetch
// nearby undelivered pages scanning forward from it. It returns nil if
// the demanded page is not held (a protocol error by the requester —
// the backer only owes pages it cached). Reply data aliases the store's
// run buffers — no page is copied to serve it.
func (g *StoreSegment) Serve(req *ReadRequest) *ReadReply {
	ri, off := g.findRun(req.PageIdx)
	if ri < 0 {
		return nil
	}
	rep := &ReadReply{SegID: g.ID}
	lastRi := -1
	g.appendPage(rep, &lastRi, ri, off)
	g.deliver(ri, off)
	for i := uint64(1); i <= uint64(req.Prefetch); i++ {
		idx := req.PageIdx + i
		pri, poff := g.findRun(idx)
		if pri < 0 || g.runs[pri].isDelivered(poff) {
			continue
		}
		g.appendPage(rep, &lastRi, pri, poff)
		g.deliver(pri, poff)
	}
	return rep
}

// FlushAll returns every undelivered page in index order and marks them
// delivered. Used to dissolve the residual dependency eagerly.
func (g *StoreSegment) FlushAll() *ReadReply { return g.Flush(0) }

// Flush returns up to max undelivered pages in index order and marks
// them delivered (max <= 0 means all). Callers dissolve a large
// residual dependency with a sequence of bounded flushes so the backer
// stays responsive to concurrent demand reads. Runs are already sorted,
// so the sweep emits coalesced reply runs with no sort and no copy.
func (g *StoreSegment) Flush(max int) *ReadReply {
	rep := &ReadReply{SegID: g.ID}
	lastRi := -1
	taken := 0
	for ri := range g.runs {
		r := &g.runs[ri]
		for off := 0; off < r.count; off++ {
			if r.isDelivered(off) {
				continue
			}
			g.appendPage(rep, &lastRi, ri, off)
			g.deliver(ri, off)
			taken++
			if max > 0 && taken >= max {
				return rep
			}
		}
	}
	return rep
}

// String summarizes the segment.
func (g *StoreSegment) String() string {
	return fmt.Sprintf("storeSeg(%d: %d pages, %d owed)", g.ID, g.pageCount, g.Remaining())
}
