package vmbench

import "testing"

func BenchmarkResidentTouch(b *testing.B)   { ResidentTouch(b) }
func BenchmarkBuildAMapSparse(b *testing.B) { BuildAMapSparse(b) }
func BenchmarkCOWBreak(b *testing.B)        { COWBreak(b) }
func BenchmarkPageHash(b *testing.B)        { PageHash(b) }
func BenchmarkContentIndexHit(b *testing.B) { ContentIndexHit(b) }

func BenchmarkContentIndexMiss(b *testing.B) { ContentIndexMiss(b) }
