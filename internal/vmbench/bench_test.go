package vmbench

import "testing"

func BenchmarkResidentTouch(b *testing.B)   { ResidentTouch(b) }
func BenchmarkBuildAMapSparse(b *testing.B) { BuildAMapSparse(b) }
func BenchmarkCOWBreak(b *testing.B)        { COWBreak(b) }
