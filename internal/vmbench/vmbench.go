// Package vmbench holds the VM-layer microbenchmark bodies shared by
// `go test -bench` (bench_test.go here) and cmd/migbench, which runs
// them through testing.Benchmark to publish BENCH_vm.json. Keeping one
// copy of each body guarantees the CI gate and the published baseline
// measure the same code path.
package vmbench

import (
	"testing"

	"accentmig/internal/vm"
)

// ResidentTouch measures the steady-state cost of one memory reference
// that hits a resident page: address resolution through the region
// tree, the page-table lookup, and the LRU touch. This is the path the
// simulated CPU takes for every instruction-stream reference, so it
// dominates dense-touch workload cells. Must be zero-alloc.
func ResidentTouch(b *testing.B) {
	const pages = 64
	pool := vm.NewFramePool(vm.DefaultPageSize)
	as := vm.MustNewAddressSpace(vm.Config{Pool: pool})
	reg, err := as.Validate(0, pages*vm.DefaultPageSize, "data")
	if err != nil {
		b.Fatal(err)
	}
	phys := vm.NewPhysMem(pages + 16)
	for i := uint64(0); i < pages; i++ {
		pg := reg.Seg.Materialize(i, []byte{byte(i)})
		pg.State.Resident = true
		phys.Insert(reg.Seg, i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := vm.Addr(i%pages) * vm.DefaultPageSize
		pl, ok := as.Resolve(addr)
		if !ok {
			b.Fatal("resolve failed")
		}
		pg := pl.Seg.Page(pl.PageIdx)
		if pg == nil || !pg.State.Resident {
			b.Fatal("page not resident")
		}
		phys.Touch(pl.Seg, pl.PageIdx)
	}
}

// BuildAMapSparse measures AMap reconstruction over a sparse 4 GB
// address space: 64 regions scattered across the full Accent space,
// each with a fragmented residency pattern, rebuilt into coalesced
// runs by one ordered page-table sweep. Steady-state rebuilds reuse
// the entries buffer and must be zero-alloc.
func BuildAMapSparse(b *testing.B) {
	pool := vm.NewFramePool(vm.DefaultPageSize)
	as := vm.MustNewAddressSpace(vm.Config{Pool: pool})
	const regions = 64
	const regionPages = 128
	stride := vm.Addr(vm.MaxSpace / regions)
	for r := 0; r < regions; r++ {
		reg, err := as.Validate(vm.Addr(r)*stride, regionPages*vm.DefaultPageSize, "sparse")
		if err != nil {
			b.Fatal(err)
		}
		// Fragment: pages present in bursts of 5 with 3-page holes, so
		// the sweep has real run boundaries to find.
		for i := uint64(0); i < regionPages; i++ {
			if i%8 < 5 {
				reg.Seg.Materialize(i, []byte{byte(i)})
			}
		}
	}
	m := vm.BuildAMap(as)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Rebuild(as)
	}
	b.StopTimer()
	if len(m.Entries) == 0 {
		b.Fatal("empty AMap")
	}
}

// COWBreak measures the deferred-copy cycle: map a shared page in
// (AdoptShared) and break the share with a private copy drawn from the
// frame pool. Steady state recycles one frame per iteration and must
// be zero-alloc.
func COWBreak(b *testing.B) {
	pool := vm.NewFramePool(vm.DefaultPageSize)
	src := vm.NewSegment("src", vm.DefaultPageSize, vm.DefaultPageSize)
	src.SetPool(pool)
	srcPg := src.Materialize(0, make([]byte, vm.DefaultPageSize))
	dst := vm.NewSegment("dst", vm.DefaultPageSize, vm.DefaultPageSize)
	dst.SetPool(pool)
	// Warm one cycle so the pool holds the recycled frame.
	dst.AdoptShared(0, srcPg)
	dst.BreakCOW(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst.AdoptShared(0, srcPg)
		if !dst.BreakCOW(0) {
			b.Fatal("break performed no copy")
		}
	}
}

// PageHash measures naming one page for the content-addressed store:
// a single FNV-1a pass over a full 512-byte image. This is the
// per-page cost of building a migration manifest and of every
// verify-on-lookup re-hash, so it bounds how cheaply elision can ever
// break even. Must be zero-alloc.
func PageHash(b *testing.B) {
	page := make([]byte, vm.DefaultPageSize)
	for i := range page {
		page[i] = byte(i*31 + 7)
	}
	var sink uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, zero := vm.HashPage(page, vm.DefaultPageSize)
		if zero {
			b.Fatal("patterned page hashed as zero")
		}
		sink += h
	}
	b.StopTimer()
	if sink == 0 {
		b.Log("hash sink zero") // keep the loop body live
	}
}

// ContentIndexHit measures a verified index lookup: the map probe plus
// the guard re-hash of the remembered frame. This is the destination's
// per-page cost of classifying a manifest against content it already
// holds. Must be zero-alloc.
func ContentIndexHit(b *testing.B) {
	const pages = 256
	ix := vm.NewContentIndex(vm.DefaultPageSize)
	hashes := make([]uint64, pages)
	for p := 0; p < pages; p++ {
		data := make([]byte, vm.DefaultPageSize)
		for i := range data {
			data[i] = byte(p*31 + i*7 + 1)
		}
		h, _ := vm.HashPage(data, vm.DefaultPageSize)
		ix.Put(h, data)
		hashes[p] = h
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := ix.Lookup(hashes[i%pages]); !ok {
			b.Fatal("warm lookup missed")
		}
	}
}

// ContentIndexMiss measures an absent-hash probe: the map miss every
// never-seen page pays during classification. Must be zero-alloc.
func ContentIndexMiss(b *testing.B) {
	ix := vm.NewContentIndex(vm.DefaultPageSize)
	data := make([]byte, vm.DefaultPageSize)
	for i := range data {
		data[i] = byte(i*31 + 7)
	}
	h, _ := vm.HashPage(data, vm.DefaultPageSize)
	ix.Put(h, data)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := ix.Lookup(h ^ uint64(i) | 2); ok {
			b.Fatal("absent hash hit")
		}
	}
}
