package xrand

import (
	"testing"
	"testing/quick"
)

func TestDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverge at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between differently seeded streams", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %g out of [0,1)", f)
		}
	}
}

func TestFloat64RoughlyUniform(t *testing.T) {
	r := New(11)
	var buckets [10]int
	const n = 100000
	for i := 0; i < n; i++ {
		buckets[int(r.Float64()*10)]++
	}
	for i, c := range buckets {
		if c < n/10-n/50 || c > n/10+n/50 {
			t.Errorf("bucket %d has %d of %d samples", i, c, n)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		nn := int(n%64) + 1
		p := New(seed).Perm(nn)
		seen := make([]bool, nn)
		for _, v := range p {
			if v < 0 || v >= nn || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestForkIndependence(t *testing.T) {
	r := New(5)
	f1 := r.Fork()
	f2 := r.Fork()
	if f1.Uint64() == f2.Uint64() {
		t.Error("forked streams coincide on first draw")
	}
}
