// Package xrand supplies a tiny, fully deterministic pseudo-random
// number generator (splitmix64) used to drive workload reference traces.
// Determinism matters more than statistical strength here: identical
// seeds must reproduce identical simulations across runs and platforms,
// which is why the simulator does not use math/rand's global state.
package xrand

// RNG is a splitmix64 generator. The zero value is a valid generator
// seeded with 0; prefer New so the seed is explicit.
type RNG struct {
	state uint64
}

// baseSeed perturbs every generator created by New, so one process-wide
// knob (-seed on cmd/migsim) re-randomizes all derived streams at once.
// The default 0 leaves New(seed) == seed, preserving the calibrated
// reference traces bit-for-bit.
var baseSeed uint64

// SetBaseSeed installs the process-wide seed perturbation. Call it
// before building any workloads; changing it mid-simulation would
// decouple streams created before and after.
func SetBaseSeed(s uint64) { baseSeed = mix64(s) }

// BaseSeed reports the active perturbation (post-mix).
func BaseSeed() uint64 { return baseSeed }

// mix64 is the splitmix64 finalizer; mix64(0) == 0, which is what keeps
// the default base seed a no-op.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator with the given seed, perturbed by the
// process-wide base seed (a no-op unless SetBaseSeed was called).
func New(seed uint64) *RNG { return &RNG{state: seed ^ baseSeed} }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly reorders the first n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Fork derives an independent generator from the current stream, so
// subsystems can be given private streams without cross-coupling.
func (r *RNG) Fork() *RNG { return New(r.Uint64()) }
