// Package prof is the causal critical-path profiler: it consumes a
// flight-recorder event stream (package obs) and reconstructs one
// migration as a span DAG — message sends happen-before their receives
// (matched by MsgID), fault parks happen-before their resolving
// replies, phase begins happen-before phase ends — and from the DAG
// answers the question the paper's whole argument turns on: where did
// the migration's time go?
//
// Three products come out of a Build:
//
//   - the critical path with per-resource blame: the migration phases
//     are strictly sequential (excise → xfer.core → xfer.rimas →
//     insert), so the critical path is the frozen interval itself, and
//     every instant of it is attributed to exactly one resource class
//     (wire, destination CPU, source CPU, disk, queue wait, other) by
//     priority among the spans active at that instant. The attribution
//     is an exact partition, so blame fractions sum to 1.
//   - the downtime span: excise-freeze to the first post-insert
//     instruction at the destination (the StateChange "Resumed" event),
//     the metric every pre-copy/cluster/dedup follow-up is judged on.
//   - per-resource utilization timelines: time-bucketed busy and
//     queue-depth gauges for each CPU, link, and disk arm, accumulated
//     into a metrics.Utilization.
//
// The builder tolerates back-dated events (sim.Kernel.EmitAt stamps an
// earlier T under a monotonic Seq): events are ordered by (T, Seq)
// before reconstruction, and a phase pair whose boundaries cross —
// an end before its begin — is reported as an error rather than a
// negative-duration span.
package prof

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"accentmig/internal/metrics"
	"accentmig/internal/obs"
)

// Class is a critical-path blame class: the resource an instant of the
// migration interval is attributed to.
type Class uint8

const (
	// SrcCPU is source-machine CPU occupancy (packaging, IPC handling).
	SrcCPU Class = iota
	// Wire is network-link occupancy including propagation.
	Wire
	// DstCPU is destination-machine CPU occupancy (rights processing,
	// insertion).
	DstCPU
	// Disk is paging-disk arm occupancy on either machine.
	Disk
	// Queue is time blocked on a contended resource with no covering
	// hold span of its own.
	Queue
	// Other is everything unattributed: protocol latency, timer waits,
	// scheduling gaps.
	Other

	// NumClasses counts the blame classes.
	NumClasses = int(Other) + 1
)

// String names the class for tables and logs.
func (c Class) String() string {
	switch c {
	case SrcCPU:
		return "src-cpu"
	case Wire:
		return "wire"
	case DstCPU:
		return "dst-cpu"
	case Disk:
		return "disk"
	case Queue:
		return "queue"
	case Other:
		return "other"
	default:
		return "class(?)"
	}
}

// Classes lists every blame class in reporting order.
func Classes() []Class {
	return []Class{SrcCPU, Wire, DstCPU, Disk, Queue, Other}
}

// blamePriority orders attribution when several spans cover the same
// instant: the wire is the scarcest pipeline stage, then the CPUs doing
// protocol work, then the disk, and a bare queue wait only if nothing
// is actually held.
var blamePriority = [...]Class{Wire, DstCPU, SrcCPU, Disk, Queue}

// MigrationPhases is the canonical source-manager phase sequence.
var MigrationPhases = [...]string{"excise", "xfer.core", "xfer.rimas", "insert"}

// Span is one resource-occupancy interval reconstructed from the
// stream: a CPU or disk hold, a frame crossing the wire, or a queued
// wait.
type Span struct {
	Class    Class
	Resource string
	Proc     string
	Start    time.Duration
	End      time.Duration
	Seq      uint64
}

// Phase is one closed migration phase span.
type Phase struct {
	Name     string
	Start    time.Duration
	End      time.Duration
	BeginSeq uint64
	EndSeq   uint64
}

// Elapsed reports the phase length.
func (p Phase) Elapsed() time.Duration { return p.End - p.Start }

// EdgeKind distinguishes the DAG's causal edge types.
type EdgeKind uint8

const (
	// EdgeMsg joins a message's first send to each of its receives.
	EdgeMsg EdgeKind = iota
	// EdgeFault joins a fault park to its resolving completion.
	EdgeFault
	// EdgePhase joins a phase begin to its end.
	EdgePhase
)

// Edge is one happens-before edge between two events, named by their
// emission sequence numbers.
type Edge struct {
	Kind    EdgeKind
	FromSeq uint64
	ToSeq   uint64
	From    time.Duration
	To      time.Duration
	Label   string
}

// Breakdown is a per-class time partition of some interval.
type Breakdown [NumClasses]time.Duration

// Total sums the partition (equal to the interval length for a
// partition produced by Build).
func (b *Breakdown) Total() time.Duration {
	var t time.Duration
	for _, d := range b {
		t += d
	}
	return t
}

// Fraction reports class c's share of the partition, in [0, 1].
func (b *Breakdown) Fraction(c Class) float64 {
	t := b.Total()
	if t <= 0 {
		return 0
	}
	return float64(b[c]) / float64(t)
}

// Dominant reports the class with the largest share.
func (b *Breakdown) Dominant() Class {
	best := Other
	for _, c := range Classes() {
		if b[c] > b[best] {
			best = c
		}
	}
	return best
}

// Options parameterizes a Build. The zero value matches the standard
// two-machine testbed.
type Options struct {
	// Src and Dst name the source and destination machines (defaults
	// "src" and "dst").
	Src, Dst string
	// Bucket is the utilization-timeline bucket width (default 1s).
	Bucket time.Duration
}

func (o Options) withDefaults() Options {
	if o.Src == "" {
		o.Src = "src"
	}
	if o.Dst == "" {
		o.Dst = "dst"
	}
	if o.Bucket <= 0 {
		o.Bucket = time.Second
	}
	return o
}

// Profile is the reconstruction of one migration.
type Profile struct {
	Src, Dst string

	// Phases holds the closed canonical phases found, in canonical
	// order (missing phases are absent).
	Phases []Phase

	// Freeze is the excise start; InsertEnd the insertion completion;
	// Resume the first post-insert instruction at the destination.
	// Resumed reports whether a resume was observed (a held destination
	// never resumes; Resume then equals InsertEnd and Downtime is the
	// frozen-so-far lower bound).
	Freeze    time.Duration
	InsertEnd time.Duration
	Resume    time.Duration
	Resumed   bool

	// Downtime is Resume - Freeze: the span during which the migrating
	// process executed no instruction anywhere.
	Downtime time.Duration

	// Spans are the resource-occupancy intervals of the whole run.
	Spans []Span
	// Edges are the causal edges of the DAG.
	Edges []Edge
	// UnmatchedFaults counts fault parks with no resolving completion;
	// UnmatchedMsgs counts message ids sent but never received (mail
	// still queued when the run ended).
	UnmatchedFaults int
	UnmatchedMsgs   int

	// Blame partitions [Freeze, InsertEnd] by resource class; the
	// fractions sum to 1 by construction.
	Blame Breakdown
	// PhaseBlame partitions each canonical phase's own interval.
	PhaseBlame map[string]*Breakdown

	// Util is the per-resource busy/queue-depth timeline of the run.
	Util *metrics.Utilization
}

// Total reports the migration interval length (the critical path: the
// phases are strictly sequential).
func (pf *Profile) Total() time.Duration { return pf.InsertEnd - pf.Freeze }

// Connected reports whether the reconstructed critical path is whole:
// all four canonical phases were found, closed, non-negative, in
// order, spanning a positive interval, and every fault park found its
// resolving completion.
func (pf *Profile) Connected() bool {
	if len(pf.Phases) != len(MigrationPhases) {
		return false
	}
	for i, name := range MigrationPhases {
		ph := pf.Phases[i]
		if ph.Name != name || ph.End < ph.Start {
			return false
		}
		if i > 0 && ph.Start < pf.Phases[i-1].Start {
			return false
		}
	}
	return pf.InsertEnd > pf.Freeze && pf.UnmatchedFaults == 0
}

// faultKey identifies one outstanding fault park.
type faultKey struct {
	machine string
	proc    string
	name    string
	addr    uint64
}

// msgSite is the first-send record of one message id.
type msgSite struct {
	seq  uint64
	t    time.Duration
	rcvd bool
}

// Build reconstructs a migration from the event stream. The events may
// arrive in emission order with back-dated timestamps (EmitAt); they
// are re-ordered by (T, Seq) first. An end-before-begin phase pair —
// which would be a negative-duration span — is an error.
func Build(events []obs.Event, opt Options) (*Profile, error) {
	opt = opt.withDefaults()
	evs := make([]obs.Event, len(events))
	copy(evs, events)
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].T != evs[j].T {
			return evs[i].T < evs[j].T
		}
		return evs[i].Seq < evs[j].Seq
	})

	pf := &Profile{
		Src:        opt.Src,
		Dst:        opt.Dst,
		PhaseBlame: make(map[string]*Breakdown, len(MigrationPhases)),
		Util:       metrics.NewUtilization(opt.Bucket),
	}

	phaseOpen := make(map[string]obs.Event) // machine|name -> begin event
	phases := make(map[string]Phase)        // name -> last closed span
	faultOpen := make(map[faultKey]obs.Event)
	msgs := make(map[uint64]*msgSite)
	var resumes []time.Duration

	for _, ev := range evs {
		switch ev.Kind {
		case obs.PhaseBegin:
			phaseOpen[ev.Machine+"|"+ev.Name] = ev
		case obs.PhaseEnd:
			begin, ok := phaseOpen[ev.Machine+"|"+ev.Name]
			if !ok {
				return nil, fmt.Errorf("prof: PhaseEnd %q on %s with no open begin", ev.Name, ev.Machine)
			}
			delete(phaseOpen, ev.Machine+"|"+ev.Name)
			if ev.T < begin.T {
				return nil, fmt.Errorf("prof: negative-duration phase %q on %s: begins %v, ends %v",
					ev.Name, ev.Machine, begin.T, ev.T)
			}
			phases[ev.Name] = Phase{
				Name: ev.Name, Start: begin.T, End: ev.T,
				BeginSeq: begin.Seq, EndSeq: ev.Seq,
			}
			pf.Edges = append(pf.Edges, Edge{
				Kind: EdgePhase, FromSeq: begin.Seq, ToSeq: ev.Seq,
				From: begin.T, To: ev.T, Label: ev.Name,
			})
		case obs.FaultStart:
			faultOpen[faultKey{ev.Machine, ev.Proc, ev.Name, ev.Addr}] = ev
		case obs.FaultResolved:
			key := faultKey{ev.Machine, ev.Proc, ev.Name, ev.Addr}
			if start, ok := faultOpen[key]; ok {
				delete(faultOpen, key)
				pf.Edges = append(pf.Edges, Edge{
					Kind: EdgeFault, FromSeq: start.Seq, ToSeq: ev.Seq,
					From: start.T, To: ev.T, Label: ev.Name,
				})
			}
		case obs.MsgSend:
			if ev.MsgID != 0 {
				if _, seen := msgs[ev.MsgID]; !seen {
					msgs[ev.MsgID] = &msgSite{seq: ev.Seq, t: ev.T}
				}
			}
		case obs.MsgRecv:
			if ev.MsgID != 0 {
				if site, ok := msgs[ev.MsgID]; ok {
					site.rcvd = true
					pf.Edges = append(pf.Edges, Edge{
						Kind: EdgeMsg, FromSeq: site.seq, ToSeq: ev.Seq,
						From: site.t, To: ev.T, Label: fmt.Sprintf("msg %d", ev.MsgID),
					})
				}
			}
		case obs.StateChange:
			if ev.Name == "Resumed" && ev.Machine == opt.Dst {
				resumes = append(resumes, ev.T)
			}
		case obs.ResourceHold:
			if cl, ok := classifyHold(ev, opt); ok && ev.Dur > 0 {
				pf.Spans = append(pf.Spans, Span{
					Class: cl, Resource: ev.Name, Proc: ev.Proc,
					Start: ev.T - ev.Dur, End: ev.T, Seq: ev.Seq,
				})
				pf.Util.AddBusy(ev.Name, ev.T-ev.Dur, ev.T)
			}
		case obs.LinkXmit:
			if ev.Dur > 0 {
				pf.Spans = append(pf.Spans, Span{
					Class: Wire, Resource: ev.Machine, Proc: ev.Proc,
					Start: ev.T - ev.Dur, End: ev.T, Seq: ev.Seq,
				})
				pf.Util.AddBusy(ev.Machine, ev.T-ev.Dur, ev.T)
			}
		case obs.QueueWait:
			if ev.Dur > 0 {
				pf.Spans = append(pf.Spans, Span{
					Class: Queue, Resource: ev.Name, Proc: ev.Proc,
					Start: ev.T - ev.Dur, End: ev.T, Seq: ev.Seq,
				})
				pf.Util.AddWait(ev.Name, ev.T-ev.Dur, ev.T)
			}
		}
	}

	pf.UnmatchedFaults = len(faultOpen)
	for _, site := range msgs {
		if !site.rcvd {
			pf.UnmatchedMsgs++
		}
	}

	// Canonical phases in canonical order; the migration window.
	for _, name := range MigrationPhases {
		if ph, ok := phases[name]; ok {
			pf.Phases = append(pf.Phases, ph)
		}
	}
	if len(pf.Phases) > 0 {
		if ph, ok := phases["excise"]; ok {
			pf.Freeze = ph.Start
		} else {
			pf.Freeze = pf.Phases[0].Start
		}
		if ph, ok := phases["insert"]; ok {
			pf.InsertEnd = ph.End
		} else {
			pf.InsertEnd = pf.Phases[len(pf.Phases)-1].End
		}
	}

	// Downtime: freeze to the first destination resume at or after the
	// freeze. A run that never resumed (held destination) reports the
	// frozen-so-far interval, which is the downtime's lower bound.
	pf.Resume = pf.InsertEnd
	for _, t := range resumes {
		if t >= pf.Freeze {
			pf.Resume = t
			pf.Resumed = true
			break
		}
	}
	if pf.Resume > pf.Freeze {
		pf.Downtime = pf.Resume - pf.Freeze
	}

	// Blame: exact partitions of the migration window and each phase.
	pf.Blame = partition(pf.Spans, pf.Freeze, pf.InsertEnd)
	for _, ph := range pf.Phases {
		b := partition(pf.Spans, ph.Start, ph.End)
		pf.PhaseBlame[ph.Name] = &b
	}
	return pf, nil
}

// classifyHold maps a ResourceHold event to a blame class by resource
// name: "<machine>.cpu" to the machine's CPU class, anything with
// ".disk" to Disk. Unknown resources are unattributed (covered by
// Other in the partition).
func classifyHold(ev obs.Event, opt Options) (Class, bool) {
	switch {
	case ev.Name == opt.Src+".cpu":
		return SrcCPU, true
	case ev.Name == opt.Dst+".cpu":
		return DstCPU, true
	case strings.Contains(ev.Name, ".disk"):
		return Disk, true
	default:
		return Other, false
	}
}

// partition attributes every instant of [lo, hi] to exactly one class:
// the highest-priority class with an active span, or Other where no
// span covers the instant. The result sums to hi-lo exactly.
func partition(spans []Span, lo, hi time.Duration) Breakdown {
	var b Breakdown
	if hi <= lo {
		return b
	}
	type boundary struct {
		t     time.Duration
		class Class
		delta int
	}
	var bs []boundary
	for _, s := range spans {
		start, end := s.Start, s.End
		if start < lo {
			start = lo
		}
		if end > hi {
			end = hi
		}
		if end <= start {
			continue
		}
		bs = append(bs, boundary{start, s.Class, +1}, boundary{end, s.Class, -1})
	}
	sort.Slice(bs, func(i, j int) bool { return bs[i].t < bs[j].t })

	active := [NumClasses]int{}
	cur := lo
	i := 0
	for cur < hi {
		// Apply all boundaries at cur, then attribute up to the next
		// boundary (or the window end).
		for i < len(bs) && bs[i].t == cur {
			active[bs[i].class] += bs[i].delta
			i++
		}
		next := hi
		if i < len(bs) && bs[i].t < hi {
			next = bs[i].t
		}
		cl := Other
		for _, c := range blamePriority {
			if active[c] > 0 {
				cl = c
				break
			}
		}
		b[cl] += next - cur
		cur = next
	}
	return b
}

// Format renders the profile as the -profile report: the critical
// path's phase chain, the blame partition with fractions, and the
// downtime span.
func (pf *Profile) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "critical path (%.2fs, %s):", pf.Total().Seconds(), connWord(pf.Connected()))
	for _, ph := range pf.Phases {
		fmt.Fprintf(&b, " %s %.2fs", ph.Name, ph.Elapsed().Seconds())
	}
	fmt.Fprintf(&b, "\nblame:")
	for _, c := range Classes() {
		fmt.Fprintf(&b, " %s %.2fs (%.1f%%)", c, pf.Blame[c].Seconds(), 100*pf.Blame.Fraction(c))
	}
	resumed := "first instruction at destination"
	if !pf.Resumed {
		resumed = "never resumed; lower bound"
	}
	fmt.Fprintf(&b, "\ndowntime: %.2fs (freeze %.2fs -> resume %.2fs, %s)\n",
		pf.Downtime.Seconds(), pf.Freeze.Seconds(), pf.Resume.Seconds(), resumed)
	return b.String()
}

func connWord(ok bool) string {
	if ok {
		return "connected"
	}
	return "DISCONNECTED"
}
