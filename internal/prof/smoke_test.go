package prof_test

import (
	"math"
	"testing"

	"accentmig/internal/core"
	"accentmig/internal/experiments"
	"accentmig/internal/prof"
	"accentmig/internal/workload"
)

// TestProfSmoke is the CI profiler gate (make profsmoke): one traced
// Lisp-Del migration must reconstruct into a connected critical path
// with positive downtime and blame fractions that sum to exactly 1.
func TestProfSmoke(t *testing.T) {
	tr, sink, err := experiments.TraceTrial(experiments.Config{}, workload.LispDel, core.PureIOU, 0)
	if err != nil {
		t.Fatalf("TraceTrial: %v", err)
	}
	pf, err := prof.Build(sink.Events(), prof.Options{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}

	if !pf.Connected() {
		t.Errorf("critical path not connected: %d/%d phases, %d unmatched faults",
			len(pf.Phases), len(prof.MigrationPhases), pf.UnmatchedFaults)
	}
	if pf.Downtime <= 0 {
		t.Errorf("downtime = %v, want > 0", pf.Downtime)
	}
	if !pf.Resumed {
		t.Errorf("profiler saw no destination resume")
	}
	if pf.Downtime != tr.Downtime {
		t.Errorf("profiler downtime %v != recorder downtime %v", pf.Downtime, tr.Downtime)
	}

	var sum float64
	for _, c := range prof.Classes() {
		f := pf.Blame.Fraction(c)
		if f < 0 || f > 1 {
			t.Errorf("blame fraction %s = %v out of range", c, f)
		}
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("blame fractions sum to %v, want 1", sum)
	}
	if pf.Blame.Total() != pf.Total() {
		t.Errorf("blame partition %v != migration interval %v", pf.Blame.Total(), pf.Total())
	}

	// The migration must have exercised real resources: some CPU blame
	// on both ends, some utilization recorded.
	if pf.Blame[prof.SrcCPU] <= 0 || pf.Blame[prof.DstCPU] <= 0 {
		t.Errorf("expected CPU blame on both machines, got src=%v dst=%v",
			pf.Blame[prof.SrcCPU], pf.Blame[prof.DstCPU])
	}
	if len(pf.Util.Tracks()) == 0 {
		t.Errorf("no utilization tracks recorded")
	}
}
