package prof

import (
	"testing"
	"time"

	"accentmig/internal/obs"
	"accentmig/internal/sim"
)

const s = time.Second

// phasePair emits a closed phase span as two events.
func phasePair(seq *uint64, machine, name string, start, end time.Duration) []obs.Event {
	b := obs.Event{Kind: obs.PhaseBegin, Machine: machine, Name: name, T: start, Seq: *seq}
	*seq++
	e := obs.Event{Kind: obs.PhaseEnd, Machine: machine, Name: name, T: end, Seq: *seq}
	*seq++
	return []obs.Event{b, e}
}

// syntheticMigration builds a minimal but complete event stream:
// the four canonical phases (excise 0-2s, xfer.core 2-5s, xfer.rimas
// 5-9s, insert 9-10s), resource holds and wire spans covering parts of
// the window, a message pair, a fault pair, and a destination resume.
func syntheticMigration() []obs.Event {
	var seq uint64
	var evs []obs.Event
	evs = append(evs, phasePair(&seq, "src", "excise", 0, 2*s)...)
	evs = append(evs, phasePair(&seq, "src", "xfer.core", 2*s, 5*s)...)
	evs = append(evs, phasePair(&seq, "src", "xfer.rimas", 5*s, 9*s)...)
	evs = append(evs, phasePair(&seq, "src", "insert", 9*s, 10*s)...)

	add := func(ev obs.Event) {
		ev.Seq = seq
		seq++
		evs = append(evs, ev)
	}
	// src CPU busy during excise; wire busy 2s-5s (overlapping a src
	// hold 2s-3s, which the priority order must cede to the wire); dst
	// CPU busy during insert; disk 1s-1.5s inside excise (loses to the
	// src CPU hold covering 0-2s); queue wait 8s-9s uncovered by holds.
	add(obs.Event{Kind: obs.ResourceHold, Machine: "src", Name: "src.cpu", Dur: 2 * s, T: 2 * s})
	add(obs.Event{Kind: obs.ResourceHold, Machine: "src", Name: "src.disk.arm", Dur: s / 2, T: 3 * s / 2})
	add(obs.Event{Kind: obs.ResourceHold, Machine: "src", Name: "src.cpu", Dur: s, T: 3 * s})
	add(obs.Event{Kind: obs.LinkXmit, Machine: "src-dst.wire", Name: "xmit", Dur: 3 * s, T: 5 * s})
	add(obs.Event{Kind: obs.QueueWait, Machine: "dst", Name: "dst.cpu", Dur: s, T: 9 * s})
	add(obs.Event{Kind: obs.ResourceHold, Machine: "dst", Name: "dst.cpu", Dur: s, T: 10 * s})

	add(obs.Event{Kind: obs.MsgSend, Machine: "src", Op: 42, MsgID: 7, T: 2 * s})
	add(obs.Event{Kind: obs.MsgRecv, Machine: "dst", Op: 42, MsgID: 7, T: 5 * s})
	add(obs.Event{Kind: obs.FaultStart, Machine: "dst", Proc: "p", Name: "imag", Addr: 0x1000, T: 6 * s})
	add(obs.Event{Kind: obs.FaultResolved, Machine: "dst", Proc: "p", Name: "imag", Addr: 0x1000, T: 7 * s})
	add(obs.Event{Kind: obs.StateChange, Machine: "dst", Proc: "p", Name: "Resumed", T: 11 * s})
	return evs
}

func TestBuildSyntheticMigration(t *testing.T) {
	pf, err := Build(syntheticMigration(), Options{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if !pf.Connected() {
		t.Fatalf("critical path not connected: phases=%v unmatchedFaults=%d", pf.Phases, pf.UnmatchedFaults)
	}
	if got := pf.Total(); got != 10*s {
		t.Fatalf("Total = %v, want 10s", got)
	}
	if !pf.Resumed || pf.Downtime != 11*s {
		t.Fatalf("Downtime = %v (resumed=%v), want 11s true", pf.Downtime, pf.Resumed)
	}

	// Exact partition: fractions must sum to 1 and the pieces to the
	// window. Expected blame over [0,10s]: src-cpu [0,2s] = 2s, wire
	// [2s,5s] = 3s (beats the src hold [2s,3s]), dst-cpu [9s,10s] = 1s,
	// disk 0 (covered by src-cpu), queue [8s,9s] = 1s (nothing held
	// there), other [5s,8s] = 3s.
	want := Breakdown{}
	want[SrcCPU] = 2 * s
	want[Wire] = 3 * s
	want[DstCPU] = s
	want[Queue] = s
	want[Other] = 3 * s
	if pf.Blame != want {
		t.Fatalf("Blame = %v, want %v", pf.Blame, want)
	}
	var fracs float64
	for _, c := range Classes() {
		fracs += pf.Blame.Fraction(c)
	}
	if diff := fracs - 1; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("blame fractions sum to %v, want 1", fracs)
	}

	// Edges: 4 phase pairs + 1 msg + 1 fault.
	var nMsg, nFault, nPhase int
	for _, e := range pf.Edges {
		switch e.Kind {
		case EdgeMsg:
			nMsg++
		case EdgeFault:
			nFault++
		case EdgePhase:
			nPhase++
		}
		if e.To < e.From {
			t.Fatalf("edge %v runs backwards in time: %v -> %v", e.Label, e.From, e.To)
		}
	}
	if nMsg != 1 || nFault != 1 || nPhase != 4 {
		t.Fatalf("edges msg=%d fault=%d phase=%d, want 1/1/4", nMsg, nFault, nPhase)
	}
	if pf.UnmatchedMsgs != 0 || pf.UnmatchedFaults != 0 {
		t.Fatalf("unmatched msgs=%d faults=%d, want 0/0", pf.UnmatchedMsgs, pf.UnmatchedFaults)
	}

	// Utilization: the wire track accumulated 3s of busy time across
	// buckets 2..4; the src CPU 3s across 0..2.
	wire := pf.Util.Track("src-dst.wire")
	if wire == nil {
		t.Fatalf("no wire utilization track")
	}
	var busy time.Duration
	for _, d := range wire.Busy {
		busy += d
	}
	if busy != 3*s {
		t.Fatalf("wire busy = %v, want 3s", busy)
	}
	if got := wire.BusyFrac(pf.Util.Bucket(), 2); got != 1 {
		t.Fatalf("wire BusyFrac(bucket 2) = %v, want 1", got)
	}
	dst := pf.Util.Track("dst.cpu")
	var wait time.Duration
	for _, d := range dst.Wait {
		wait += d
	}
	if wait != s {
		t.Fatalf("dst.cpu wait = %v, want 1s", wait)
	}
}

func TestBuildPhaseRetryLastWins(t *testing.T) {
	var seq uint64
	var evs []obs.Event
	// A failed first attempt followed by a full retry: the retry's
	// spans must win.
	evs = append(evs, phasePair(&seq, "src", "excise", 0, s)...)
	evs = append(evs, phasePair(&seq, "src", "excise", 5*s, 6*s)...)
	evs = append(evs, phasePair(&seq, "src", "xfer.core", 6*s, 7*s)...)
	evs = append(evs, phasePair(&seq, "src", "xfer.rimas", 7*s, 8*s)...)
	evs = append(evs, phasePair(&seq, "src", "insert", 8*s, 9*s)...)
	pf, err := Build(evs, Options{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if pf.Freeze != 5*s || pf.InsertEnd != 9*s {
		t.Fatalf("window [%v, %v], want [5s, 9s]", pf.Freeze, pf.InsertEnd)
	}
	if !pf.Connected() {
		t.Fatalf("retry migration should still be connected")
	}
}

func TestBuildNegativePhaseErrors(t *testing.T) {
	evs := []obs.Event{
		{Kind: obs.PhaseBegin, Machine: "src", Name: "excise", T: 5 * s, Seq: 0},
		{Kind: obs.PhaseEnd, Machine: "src", Name: "excise", T: 2 * s, Seq: 1},
	}
	// The (T, Seq) sort puts the end first, making it an end with no
	// open begin — either failure mode must surface as an error, never
	// as a negative-duration span.
	if _, err := Build(evs, Options{}); err == nil {
		t.Fatalf("Build accepted an end-before-begin phase pair")
	}
}

func TestBuildUnmatchedCounts(t *testing.T) {
	var seq uint64
	var evs []obs.Event
	evs = append(evs, phasePair(&seq, "src", "excise", 0, s)...)
	evs = append(evs, phasePair(&seq, "src", "xfer.core", s, 2*s)...)
	evs = append(evs, phasePair(&seq, "src", "xfer.rimas", 2*s, 3*s)...)
	evs = append(evs, phasePair(&seq, "src", "insert", 3*s, 4*s)...)
	evs = append(evs,
		obs.Event{Kind: obs.MsgSend, MsgID: 9, T: s, Seq: 100},
		obs.Event{Kind: obs.FaultStart, Machine: "dst", Proc: "p", Name: "imag", Addr: 4096, T: 2 * s, Seq: 101},
	)
	pf, err := Build(evs, Options{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if pf.UnmatchedMsgs != 1 || pf.UnmatchedFaults != 1 {
		t.Fatalf("unmatched msgs=%d faults=%d, want 1/1", pf.UnmatchedMsgs, pf.UnmatchedFaults)
	}
	if pf.Connected() {
		t.Fatalf("a dangling fault park must break connectivity")
	}
}

// TestBackdatedEmitAt pins the EmitAt contract end to end (satellite:
// Kernel.EmitAt back-dating): the source manager emits phase spans
// after the fact with back-dated timestamps, which must never produce
// out-of-order sequence numbers in the stream nor negative-duration
// spans in the DAG builder.
func TestBackdatedEmitAt(t *testing.T) {
	k := sim.New()
	sink := obs.NewMemorySink()
	k.SetSink(sink)

	k.Go("mgr", func(p *sim.Proc) {
		// Model the real emission pattern: work happens 0-3s, and only
		// at 3s are the excise (0-1s) and xfer.core (1-3s) spans known
		// and emitted, back-dated, begin and end together.
		p.Sleep(3 * time.Second)
		k.EmitAt(0, obs.Event{Kind: obs.PhaseBegin, Machine: "src", Name: "excise"})
		k.EmitAt(1*time.Second, obs.Event{Kind: obs.PhaseEnd, Machine: "src", Name: "excise"})
		k.EmitAt(1*time.Second, obs.Event{Kind: obs.PhaseBegin, Machine: "src", Name: "xfer.core"})
		k.EmitAt(3*time.Second, obs.Event{Kind: obs.PhaseEnd, Machine: "src", Name: "xfer.core"})
		p.Sleep(2 * time.Second)
		k.EmitAt(3*time.Second, obs.Event{Kind: obs.PhaseBegin, Machine: "src", Name: "xfer.rimas"})
		k.EmitAt(5*time.Second, obs.Event{Kind: obs.PhaseEnd, Machine: "src", Name: "xfer.rimas"})
		k.EmitAt(5*time.Second, obs.Event{Kind: obs.PhaseBegin, Machine: "src", Name: "insert"})
		k.Emit(obs.Event{Kind: obs.PhaseEnd, Machine: "src", Name: "insert"})
	})
	k.Run()

	evs := sink.Events()
	if len(evs) != 8 {
		t.Fatalf("emitted %d events, want 8", len(evs))
	}
	// Seq must be strictly increasing in emission order even though T
	// jumps backwards.
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("event %d: Seq %d not after %d", i, evs[i].Seq, evs[i-1].Seq)
		}
	}

	pf, err := Build(evs, Options{})
	if err != nil {
		t.Fatalf("Build on back-dated stream: %v", err)
	}
	for _, ph := range pf.Phases {
		if ph.End < ph.Start {
			t.Fatalf("phase %s has negative duration: [%v, %v]", ph.Name, ph.Start, ph.End)
		}
	}
	if !pf.Connected() {
		t.Fatalf("back-dated phases should reconstruct a connected path, got %+v", pf.Phases)
	}
	if pf.Freeze != 0 || pf.InsertEnd != 5*time.Second {
		t.Fatalf("window [%v, %v], want [0, 5s]", pf.Freeze, pf.InsertEnd)
	}
}
