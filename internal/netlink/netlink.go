// Package netlink models the shared Ethernet joining the testbed
// machines: a half-duplex medium with propagation latency, a raw bit
// rate, and optional failure injection (frame drops). All migration
// traffic crosses a Link, which is also where byte accounting for
// Figures 4-3 and 4-5 happens.
package netlink

import (
	"time"

	"accentmig/internal/faults"
	"accentmig/internal/metrics"
	"accentmig/internal/obs"
	"accentmig/internal/sim"
)

// Config sets the link's characteristics. Zero values select defaults
// calibrated to the paper's 3 Mbit testbed Ethernet.
type Config struct {
	// Latency is one-way propagation plus interface turnaround.
	Latency time.Duration
	// BytesPerSecond is the raw medium rate.
	BytesPerSecond int
	// DropProb is the probability a frame is lost (failure injection);
	// zero for a reliable link. It is shorthand that compiles to a
	// single-knob faults.Plan; richer scenarios use SetFaults.
	DropProb float64
	// DropSeed seeds the drop stream.
	DropSeed uint64
}

func (c Config) withDefaults() Config {
	if c.Latency == 0 {
		c.Latency = 5 * time.Millisecond
	}
	if c.BytesPerSecond == 0 {
		c.BytesPerSecond = 375_000 // 3 Mbit/s
	}
	return c
}

// Link is a point-to-point (shared-medium) network between two
// machines.
type Link struct {
	cfg  Config
	k    *sim.Kernel
	name string
	wire *sim.Resource
	inj  *faults.Injector
	rec  *metrics.Recorder

	frames    uint64
	drops     uint64
	bytesMove uint64
}

// New returns a link on kernel k.
func New(k *sim.Kernel, name string, cfg Config) *Link {
	cfg = cfg.withDefaults()
	l := &Link{
		cfg:  cfg,
		k:    k,
		name: name,
		wire: sim.NewResource(k, name+".wire", 1),
	}
	if cfg.DropProb > 0 {
		// The empty stream name reproduces the pre-plan drop sequence
		// for a given DropSeed exactly.
		l.inj = faults.NewInjector(faults.FromDropRate(cfg.DropProb, cfg.DropSeed), "")
	}
	return l
}

// SetFaults replaces the link's failure model with inj (nil restores a
// reliable link). Call before traffic starts.
func (l *Link) SetFaults(inj *faults.Injector) { l.inj = inj }

// MayDrop reports whether the link can ever lose a frame. Transports
// consult it to decide whether acknowledgement machinery is needed.
func (l *Link) MayDrop() bool { return l.inj.Active() }

// MayCorrupt reports whether the link can ever bit-flip a delivered
// payload page; the data plane consults it to skip corruption work on
// clean links.
func (l *Link) MayCorrupt() bool { return l.inj.CorruptActive() }

// CorruptPage asks the failure model whether one delivered payload
// page arriving at time at is bit-flipped.
func (l *Link) CorruptPage(at time.Duration) bool { return l.inj.CorruptPage(at) }

// SetRecorder directs byte accounting to rec (may be nil to disable).
// Wire-contention waits feed the recorder's "wait.wire" distribution.
func (l *Link) SetRecorder(rec *metrics.Recorder) {
	l.rec = rec
	if rec == nil {
		l.wire.SetWaitObserver(nil)
		return
	}
	l.wire.SetWaitObserver(func(d time.Duration) { rec.Observe("wait.wire", d) })
}

// Recorder returns the active recorder, possibly nil.
func (l *Link) Recorder() *metrics.Recorder { return l.rec }

// Transmit occupies the wire for n bytes plus propagation and reports
// whether the frame survived (false under injected loss). The bytes are
// charged to the recorder either way — a dropped frame still burned
// bandwidth. fault marks imaginary-fault support traffic.
func (l *Link) Transmit(p *sim.Proc, n int, fault bool) bool {
	start := l.k.Now()
	l.wire.Acquire(p)
	p.Sleep(time.Duration(n) * time.Second / time.Duration(l.cfg.BytesPerSecond))
	l.wire.Release()
	p.Sleep(l.cfg.Latency)
	l.frames++
	l.bytesMove += uint64(n)
	if l.rec != nil {
		l.rec.AddBytes(p.Now(), n, fault)
	}
	if l.k.Tracing() {
		name := "xmit"
		if fault {
			name = "xmit.fault"
		}
		l.k.Emit(obs.Event{
			Kind:    obs.LinkXmit,
			Machine: l.name,
			Proc:    p.Name(),
			Name:    name,
			Bytes:   n,
			Dur:     l.k.Now() - start,
		})
	}
	if l.inj.Drop(l.k.Now()) {
		l.drops++
		return false
	}
	return true
}

// Rate reports the raw medium rate in bytes per second.
func (l *Link) Rate() int { return l.cfg.BytesPerSecond }

// Occupy holds the wire for d of transmission time: one pipelined
// burst's aggregate occupancy, charged as a single hold so a window of
// frames costs O(1) scheduler events instead of one acquire/release
// per frame. Per-frame byte accounting and loss for the burst happen
// in Judge.
func (l *Link) Occupy(p *sim.Proc, d time.Duration) {
	l.wire.Acquire(p)
	p.Sleep(d)
	l.wire.Release()
}

// Judge accounts one frame of a pipelined burst that finishes crossing
// the wire at absolute time at, and reports whether it survives the
// failure model. Bytes are charged either way — a dropped frame still
// burned bandwidth. fault marks imaginary-fault support traffic.
func (l *Link) Judge(at time.Duration, n int, fault bool) bool {
	l.frames++
	l.bytesMove += uint64(n)
	if l.rec != nil {
		l.rec.AddBytes(at, n, fault)
	}
	if l.inj.Drop(at) {
		l.drops++
		return false
	}
	return true
}

// Frames reports transmitted frame count (including dropped ones).
func (l *Link) Frames() uint64 { return l.frames }

// Drops reports injected losses.
func (l *Link) Drops() uint64 { return l.drops }

// Bytes reports total bytes put on the wire.
func (l *Link) Bytes() uint64 { return l.bytesMove }

// BusyTime reports accumulated wire occupancy.
func (l *Link) BusyTime() time.Duration { return l.wire.BusyTime() }

// Latency reports the configured one-way latency.
func (l *Link) Latency() time.Duration { return l.cfg.Latency }
