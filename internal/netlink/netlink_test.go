package netlink

import (
	"testing"
	"time"

	"accentmig/internal/metrics"
	"accentmig/internal/sim"
)

func TestTransmitTiming(t *testing.T) {
	k := sim.New()
	l := New(k, "net", Config{Latency: 5 * time.Millisecond, BytesPerSecond: 375_000})
	var done time.Duration
	k.Go("tx", func(p *sim.Proc) {
		if !l.Transmit(p, 375, false) {
			t.Error("reliable link dropped a frame")
		}
		done = p.Now()
	})
	k.Run()
	want := time.Millisecond + 5*time.Millisecond // 375B at 375KB/s + latency
	if done != want {
		t.Errorf("transmit took %v, want %v", done, want)
	}
}

func TestWireSharedHalfDuplex(t *testing.T) {
	k := sim.New()
	l := New(k, "net", Config{Latency: time.Nanosecond, BytesPerSecond: 1000})
	var finish []time.Duration
	for i := 0; i < 2; i++ {
		k.Go("tx", func(p *sim.Proc) {
			l.Transmit(p, 1000, false)
			finish = append(finish, p.Now())
		})
	}
	k.Run()
	// Wire occupancy serializes: second sender finishes a second later.
	if finish[1]-finish[0] != time.Second {
		t.Errorf("finish = %v, want 1s apart", finish)
	}
}

func TestRecorderAccounting(t *testing.T) {
	k := sim.New()
	l := New(k, "net", Config{})
	rec := metrics.NewRecorder(time.Second)
	l.SetRecorder(rec)
	k.Go("tx", func(p *sim.Proc) {
		l.Transmit(p, 100, false)
		l.Transmit(p, 50, true)
	})
	k.Run()
	if rec.BytesTotal() != 150 || rec.BytesFault() != 50 {
		t.Errorf("recorder: total=%d fault=%d", rec.BytesTotal(), rec.BytesFault())
	}
	if l.Bytes() != 150 || l.Frames() != 2 {
		t.Errorf("link: bytes=%d frames=%d", l.Bytes(), l.Frames())
	}
}

func TestNilRecorderSafe(t *testing.T) {
	k := sim.New()
	l := New(k, "net", Config{})
	k.Go("tx", func(p *sim.Proc) { l.Transmit(p, 100, false) })
	k.Run() // must not panic
}

func TestDropInjection(t *testing.T) {
	k := sim.New()
	l := New(k, "net", Config{DropProb: 0.5, DropSeed: 42})
	delivered, dropped := 0, 0
	k.Go("tx", func(p *sim.Proc) {
		for i := 0; i < 1000; i++ {
			if l.Transmit(p, 10, false) {
				delivered++
			} else {
				dropped++
			}
		}
	})
	k.Run()
	if dropped == 0 || delivered == 0 {
		t.Fatalf("delivered=%d dropped=%d; want both nonzero", delivered, dropped)
	}
	if dropped < 350 || dropped > 650 {
		t.Errorf("drop count %d far from expected ~500", dropped)
	}
	if l.Drops() != uint64(dropped) {
		t.Errorf("Drops = %d, want %d", l.Drops(), dropped)
	}
}

func TestDropDeterministic(t *testing.T) {
	run := func() []bool {
		k := sim.New()
		l := New(k, "net", Config{DropProb: 0.3, DropSeed: 7})
		var outcomes []bool
		k.Go("tx", func(p *sim.Proc) {
			for i := 0; i < 100; i++ {
				outcomes = append(outcomes, l.Transmit(p, 10, false))
			}
		})
		k.Run()
		return outcomes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("drop pattern diverges at %d", i)
		}
	}
}
