package netlink

import (
	"fmt"
	"time"

	"accentmig/internal/sim"
)

// Iface is one machine's network interface in a many-machine cluster:
// an outbound wire resource on the machine's own event lane plus
// lane-aware delivery to any peer. It is the NIC abstraction behind the
// sharded kernel (sim.Cluster): the same Iface code runs the machine on
// a single shared kernel (-shards 1) and on its own lane, producing
// identical virtual timings in both modes.
//
// Two properties make cross-lane execution byte-identical to the
// sequential kernel:
//
//   - Lookahead. Delivery is never sooner than the configured latency,
//     so a cluster whose lookahead is the minimum Iface latency can run
//     every lane a full latency ahead without missing an interaction.
//
//   - Phase skew. Each delivery lands at latency plus a per-sender
//     sub-microsecond skew ((lane+1) nanoseconds). Machine-local work in
//     the scenarios sits on a whole-microsecond lattice, and receivers
//     re-align to it after each receive, so a delivery can never share a
//     virtual nanosecond with a local event, two senders can never
//     collide at a receiver, and two frames from one sender are spaced
//     by their wire occupancy. With every same-state tie removed, heap
//     time-ordering alone fixes the schedule, and the single-kernel and
//     per-lane interleavings become the same schedule.
//
// Unlike Link.Transmit (a stop-and-wait medium where the sender also
// waits out the propagation), Iface.Send releases the sender after the
// wire occupancy: propagation overlaps with the sender's next frame, so
// back-to-back frames pipeline. Iface models a reliable switched
// fabric; failure injection stays on Link.
type Iface struct {
	k    *sim.Kernel
	cl   *sim.Cluster // nil when the whole cluster shares one kernel
	lane int
	name string
	wire *sim.Resource
	rate int
	lat  time.Duration
	skew time.Duration

	frames    uint64
	bytesMove uint64
}

// NewIface builds the interface for the machine on lane. cl may be nil
// when every machine shares one kernel (the -shards 1 path); k is then
// that shared kernel. lane is the machine's index in either mode — it
// seeds the phase skew, so both modes compute identical arrival times.
// With a cluster, k is ignored and the lane's own kernel is used, and
// the latency must be at least the cluster's lookahead.
func NewIface(cl *sim.Cluster, k *sim.Kernel, lane int, name string, cfg Config) *Iface {
	cfg = cfg.withDefaults()
	if cl != nil {
		k = cl.Lane(lane)
		if cfg.Latency < cl.Lookahead() {
			panic(fmt.Sprintf("netlink: iface %s latency %v below cluster lookahead %v", name, cfg.Latency, cl.Lookahead()))
		}
	}
	return &Iface{
		k:    k,
		cl:   cl,
		lane: lane,
		name: name,
		wire: sim.NewResource(k, name+".wire", 1),
		rate: cfg.BytesPerSecond,
		lat:  cfg.Latency,
		skew: time.Duration(lane + 1),
	}
}

// Name reports the interface name.
func (f *Iface) Name() string { return f.name }

// Lane reports the machine index the interface belongs to.
func (f *Iface) Lane() int { return f.lane }

// Kernel returns the lane kernel the interface schedules on.
func (f *Iface) Kernel() *sim.Kernel { return f.k }

// TxTime reports the wire occupancy for an n-byte frame.
func (f *Iface) TxTime(n int) time.Duration {
	return time.Duration(n) * time.Second / time.Duration(f.rate)
}

// Send transmits an n-byte frame from proc p to the machine behind dst:
// it occupies the sender's wire for the frame time, then delivers fn on
// the destination's lane at the sender's latency plus phase skew. p
// must run on f's lane. Frames from one sender arrive in send order
// (they serialize on the wire and share the skew); fn runs in event
// context on the destination lane and must only touch that machine's
// state — typically it pushes onto a destination-owned sim.Queue.
func (f *Iface) Send(p *sim.Proc, dst *Iface, n int, fn func()) {
	if dst.cl != f.cl {
		panic("netlink: Send across unrelated clusters")
	}
	f.wire.Acquire(p)
	p.Sleep(f.TxTime(n))
	f.wire.Release()
	f.frames++
	f.bytesMove += uint64(n)
	d := f.lat + f.skew
	if f.cl == nil || dst.lane == f.lane {
		f.k.Schedule(d, fn)
		return
	}
	f.cl.Send(f.lane, dst.lane, d, fn)
}

// Frames reports how many frames the interface has transmitted.
func (f *Iface) Frames() uint64 { return f.frames }

// Bytes reports the total payload bytes transmitted.
func (f *Iface) Bytes() uint64 { return f.bytesMove }

// BusyTime reports cumulative wire occupancy — the basis for per-lane
// utilization reporting. Like Resource.BusyTime it is exact whenever
// the wire is idle, which is always true once the simulation drains.
func (f *Iface) BusyTime() time.Duration { return f.wire.BusyTime() }
