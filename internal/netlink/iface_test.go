package netlink

import (
	"testing"
	"time"

	"accentmig/internal/sim"
)

// ifaceCfg keeps the arithmetic legible: 1 MB/s makes one byte one
// microsecond of wire time.
var ifaceCfg = Config{Latency: 5 * time.Millisecond, BytesPerSecond: 1_000_000}

// TestIfaceDeliveryTiming: a frame occupies the sender's wire for n
// bytes at the configured rate, then arrives at latency plus the
// per-sender phase skew.
func TestIfaceDeliveryTiming(t *testing.T) {
	k := sim.New()
	src := NewIface(nil, k, 3, "m03.net", ifaceCfg)
	dst := NewIface(nil, k, 7, "m07.net", ifaceCfg)
	var sentAt, gotAt time.Duration
	k.Go("tx", func(p *sim.Proc) {
		src.Send(p, dst, 512, func() { gotAt = k.Now() })
		sentAt = p.Now()
	})
	k.Run()
	if want := 512 * time.Microsecond; sentAt != want {
		t.Errorf("sender released at %v, want %v (wire time only)", sentAt, want)
	}
	// Arrival = tx end + latency + (lane 3 + 1) ns skew.
	if want := 512*time.Microsecond + 5*time.Millisecond + 4; gotAt != want {
		t.Errorf("delivered at %v, want %v", gotAt, want)
	}
	if src.Frames() != 1 || src.Bytes() != 512 {
		t.Errorf("accounting = %d frames / %d bytes, want 1/512", src.Frames(), src.Bytes())
	}
	if src.BusyTime() != 512*time.Microsecond {
		t.Errorf("wire busy %v, want 512µs", src.BusyTime())
	}
}

// TestIfacePipelinesFrames: the sender pays only wire occupancy per
// frame — propagation overlaps — so two back-to-back frames finish
// sending at twice the frame time, not twice (frame time + latency).
func TestIfacePipelinesFrames(t *testing.T) {
	k := sim.New()
	src := NewIface(nil, k, 0, "a.net", ifaceCfg)
	dst := NewIface(nil, k, 1, "b.net", ifaceCfg)
	var arrivals []time.Duration
	var sendDone time.Duration
	k.Go("tx", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			src.Send(p, dst, 1000, func() { arrivals = append(arrivals, k.Now()) })
		}
		sendDone = p.Now()
	})
	k.Run()
	if want := 2 * time.Millisecond; sendDone != want {
		t.Errorf("two frames sent by %v, want %v", sendDone, want)
	}
	want := []time.Duration{
		1*time.Millisecond + 5*time.Millisecond + 1,
		2*time.Millisecond + 5*time.Millisecond + 1,
	}
	if len(arrivals) != 2 || arrivals[0] != want[0] || arrivals[1] != want[1] {
		t.Errorf("arrivals = %v, want %v (in send order)", arrivals, want)
	}
}

// TestIfaceCrossLaneMatchesSharedKernel: the same two-machine exchange
// produces identical virtual arrival times whether the machines share a
// kernel or run on cluster lanes — the Iface half of the byte-identity
// contract.
func TestIfaceCrossLaneMatchesSharedKernel(t *testing.T) {
	runIt := func(cl *sim.Cluster, ka, kb *sim.Kernel) []time.Duration {
		a := NewIface(cl, ka, 0, "a.net", ifaceCfg)
		b := NewIface(cl, kb, 1, "b.net", ifaceCfg)
		var arrivals []time.Duration
		reply := func(p *sim.Proc) { // b's reply path, runs on b's lane
			b.Send(p, a, 64, func() { arrivals = append(arrivals, a.Kernel().Now()) })
		}
		ka.Go("client", func(p *sim.Proc) {
			a.Send(p, b, 4096, func() {
				arrivals = append(arrivals, b.Kernel().Now())
				b.Kernel().Go("server", reply)
			})
		})
		if cl != nil {
			cl.Run(2)
		} else {
			ka.Run()
		}
		return arrivals
	}

	k := sim.New()
	seq := runIt(nil, k, k)

	cl := sim.NewCluster(2, 5*time.Millisecond)
	par := runIt(cl, cl.Lane(0), cl.Lane(1))

	if len(seq) != 2 || len(par) != 2 || seq[0] != par[0] || seq[1] != par[1] {
		t.Errorf("shared-kernel arrivals %v != cross-lane arrivals %v", seq, par)
	}
}

// TestIfaceLatencyBelowLookaheadPanics: building an interface whose
// latency undercuts the cluster lookahead would let a lane affect a
// peer inside the conservative horizon, so it must be rejected.
func TestIfaceLatencyBelowLookaheadPanics(t *testing.T) {
	cl := sim.NewCluster(2, 5*time.Millisecond)
	defer func() {
		if recover() == nil {
			t.Fatal("iface latency below lookahead did not panic")
		}
	}()
	NewIface(cl, nil, 0, "a.net", Config{Latency: time.Millisecond, BytesPerSecond: 1_000_000})
}
