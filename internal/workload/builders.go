package workload

import (
	"fmt"
	"time"

	"accentmig/internal/trace"
	"accentmig/internal/vm"
)

// minprog: 645 validated pages, 278 real in ~50 runs, 140 resident,
// 24 pages touched after migration (all within the resident set — the
// paper's RS column shows Minprog's touches are covered by residency),
// and almost no computation: the "null trap" of migration trials.
func (b *builder) minprog() ([]trace.Op, error) {
	code, err := b.region(0x00000, 320, "code")
	if err != nil {
		return nil, err
	}
	data, err := b.region(0x40000, 200, "data")
	if err != nil {
		return nil, err
	}
	stack, err := b.region(0x80000, 125, "stack")
	if err != nil {
		return nil, err
	}
	codeReal := b.scatter(code, 320, 160, 18)
	dataReal := b.scatter(data, 200, 80, 22)
	stackReal := b.scatter(stack, 125, 38, 10)

	resCode := b.makeResidentSubset(codeReal, 80)
	resData := b.makeResidentSubset(dataReal, 40)
	resStack := b.makeResidentSubset(stackReal, 20)

	var touched []vm.Addr
	touched = append(touched, resCode[:12]...)
	touched = append(touched, resData[:8]...)
	touched = append(touched, resStack[:4]...)
	b.touched = len(touched)

	ops := touchOps(b.shuffled(touched), 2*time.Millisecond, false)
	ops = append(ops,
		trace.Compute{D: 20 * time.Millisecond},
		trace.IOWait{D: 40 * time.Millisecond}, // print + wait for input
	)
	return ops, nil
}

// lispTouchPlan describes how a Lisp variant touches memory remotely.
type lispTouchPlan func(b *builder, runs [][]vm.Addr) []trace.Op

// lisp validates the full 4 GB space at birth (§4.1: "Lisp processes
// validate their entire 4 gigabyte address spaces"), materializes the
// Lisp core image as realPages pages scattered across the low tens of
// megabytes in ~runCount runs, and defers touch behaviour to the plan.
func (b *builder) lisp(realPages, runCount uint64, plan lispTouchPlan) ([]trace.Op, error) {
	const totalPages = 4_228_129_280 / pg
	reg, err := b.region(0, totalPages, "lisp-space")
	if err != nil {
		return nil, err
	}
	b.scatter(reg, 60_000, realPages, runCount)
	return plan(b, consecutiveRuns(b.real)), nil
}

// consecutiveRuns groups sorted-by-construction addresses into maximal
// address-consecutive runs.
func consecutiveRuns(addrs []vm.Addr) [][]vm.Addr {
	var runs [][]vm.Addr
	var cur []vm.Addr
	for i, a := range addrs {
		if i > 0 && a == addrs[i-1]+pg {
			cur = append(cur, a)
			continue
		}
		if len(cur) > 0 {
			runs = append(runs, cur)
		}
		cur = []vm.Addr{a}
	}
	if len(cur) > 0 {
		runs = append(runs, cur)
	}
	return runs
}

// lispTTrace: evaluate T. 129 pages touched with no locality, 110 of
// them from the resident interpreter core; a few fresh cons pages
// allocate lazily (FillZero). Very little compute.
func lispTTrace(b *builder, runs [][]vm.Addr) []trace.Op {
	touched := b.pickClusters(runs, 129, 1)
	res := append([]vm.Addr(nil), touched[:110]...)
	res = append(res, b.sampleExcluding(b.real, touched, 262)...)
	b.resident = append(b.resident, res...)
	b.touched = len(touched)

	ops := touchOps(b.shuffled(touched), 5*time.Millisecond, false)
	ops = append(ops, b.consAllocs(30, 5*time.Millisecond)...)
	ops = append(ops, trace.Compute{D: 300 * time.Millisecond})
	return ops
}

// lispDelTrace: the Delaunay triangulation. 709 pages touched in small
// clusters (2-3 adjacent pages) spread across the heap — enough
// adjacency that one page of prefetch hits ~half the time, but larger
// prefetch mostly hauls dead weight. Heavy compute and screen I/O.
func lispDelTrace(b *builder, runs [][]vm.Addr) []trace.Op {
	touched := b.pickClusters(runs, 709, 3)
	// Table 4-3: the RS strategy moves 17.4% of Real vs 16.5% touched:
	// resident = 333 of the touched pages plus 39 others.
	res := append([]vm.Addr(nil), touched[:333]...)
	res = append(res, b.sampleExcluding(b.real, touched, 39)...)
	b.resident = append(b.resident, res...)
	b.touched = len(touched)

	ops := clusterTouchOps(touched, 40*time.Millisecond)
	ops = append(ops, b.consAllocs(200, 5*time.Millisecond)...)
	ops = append(ops,
		trace.IOWait{D: 3 * time.Second}, // graphical display
		trace.Compute{D: 2 * time.Second},
	)
	return ops
}

// pickClusters selects ~total pages as clusters of up to maxLen
// address-consecutive pages, one cluster per run, cycling runs until
// the budget is met. Clusters preserve intra-cluster address order.
func (b *builder) pickClusters(runs [][]vm.Addr, total, maxLen int) []vm.Addr {
	order := b.rng.Perm(len(runs))
	var out []vm.Addr
	offset := 0
	for len(out) < total {
		progressed := false
		for _, ri := range order {
			if len(out) >= total {
				break
			}
			run := runs[ri]
			if offset >= len(run) {
				continue
			}
			progressed = true
			n := 1
			if maxLen > 1 {
				n = 2 + b.rng.Intn(maxLen-1) // 2..maxLen
			}
			for i := 0; i < n && offset+i < len(run) && len(out) < total; i++ {
				out = append(out, run[offset+i])
			}
		}
		offset += maxLen
		if !progressed {
			panic(fmt.Sprintf("workload: cannot pick %d cluster pages from %d runs", total, len(runs)))
		}
	}
	return out
}

// clusterTouchOps touches pages cluster-by-cluster in shuffled cluster
// order, keeping intra-cluster sequentiality (so prefetch=1 can hit).
func clusterTouchOps(addrs []vm.Addr, perTouch time.Duration) []trace.Op {
	var ops []trace.Op
	for _, a := range addrs {
		ops = append(ops, trace.Compute{D: perTouch}, trace.Touch{Addr: a})
	}
	return ops
}

// consAllocs touches fresh zero pages high in the heap: cheap local
// FillZero faults that never cross the network.
func (b *builder) consAllocs(n int, perTouch time.Duration) []trace.Op {
	var ops []trace.Op
	base := vm.Addr(200_000 * pg) // far above the materialized core
	for i := 0; i < n; i++ {
		ops = append(ops,
			trace.Compute{D: perTouch},
			trace.Touch{Addr: base + vm.Addr(i*pg), Write: true})
	}
	return ops
}

// sampleExcluding picks n addresses from pool that are not in exclude.
func (b *builder) sampleExcluding(pool, exclude []vm.Addr, n int) []vm.Addr {
	ex := make(map[vm.Addr]bool, len(exclude))
	for _, a := range exclude {
		ex[a] = true
	}
	var cand []vm.Addr
	for _, a := range pool {
		if !ex[a] {
			cand = append(cand, a)
		}
	}
	if n > len(cand) {
		panic(fmt.Sprintf("workload: sample %d from %d candidates", n, len(cand)))
	}
	perm := b.rng.Perm(len(cand))
	out := make([]vm.Addr, n)
	for i := 0; i < n; i++ {
		out[i] = cand[perm[i]]
	}
	return out
}

// Pasmac address plan (shared by the three trials).
const (
	pmText   = vm.Addr(0x000000) // 300 pages, fully real
	pmHeap   = vm.Addr(0x100000) // 500 pages, sparsely real
	pmInput  = vm.Addr(0x200000) // 320 pages, the 164 KB input file
	pmDefs   = vm.Addr(0x300000) // 223 pages, the 114 KB definition files
	pmOutput = vm.Addr(0x500000) // 280 pages (PM-End only)
	pmStack  = vm.Addr(0x600000)
)

// pasmac builds the three macro-processor trials. All three share the
// file-processing shape — mapped files touched sequentially and in
// their entirety (§4.2.3) — and differ in how far processing has
// advanced at migration time.
func (b *builder) pasmac(k Kind) ([]trace.Op, error) {
	text, err := b.region(pmText, 300, "text")
	if err != nil {
		return nil, err
	}
	var heapReal uint64
	var stackPages uint64
	switch k {
	case PMStart:
		heapReal, stackPages = 34, 514
	case PMMid:
		heapReal, stackPages = 29, 440
	case PMEnd:
		heapReal, stackPages = 28, 117
	}
	heap, err := b.region(pmHeap, 500, "heap")
	if err != nil {
		return nil, err
	}
	input, err := b.region(pmInput, 320, "input-file")
	if err != nil {
		return nil, err
	}
	defs, err := b.region(pmDefs, 223, "def-files")
	if err != nil {
		return nil, err
	}
	if k == PMEnd {
		out, err := b.region(pmOutput, 280, "output-file")
		if err != nil {
			return nil, err
		}
		b.fill(out, 0, 90) // output written so far
	}
	if _, err := b.region(pmStack, stackPages, "stack"); err != nil {
		return nil, err
	}

	b.fill(text, 0, 300)
	b.fill(input, 0, 320)
	b.fill(defs, 0, 223)
	heapAddrs := b.scatter(heap, 500, heapReal, 25)

	textAddr := func(page int) vm.Addr { return pmText + vm.Addr(page*pg) }
	inputAddrs := func(from, to int) []vm.Addr {
		var out []vm.Addr
		for i := from; i < to; i++ {
			out = append(out, pmInput+vm.Addr(i*pg))
		}
		return out
	}
	defsAddrs := func(from, to int) []vm.Addr {
		var out []vm.Addr
		for i := from; i < to; i++ {
			out = append(out, pmDefs+vm.Addr(i*pg))
		}
		return out
	}
	textSample := func(n int) []vm.Addr {
		perm := b.rng.Perm(300)
		var out []vm.Addr
		for _, pgIdx := range perm[:n] {
			out = append(out, textAddr(pgIdx))
		}
		return out
	}

	var ops []trace.Op
	switch k {
	case PMStart:
		// Resident: recently read input window + text WS + heap.
		b.resident = append(b.resident, inputAddrs(120, 270)...)
		b.resident = append(b.resident, textSample(80)...)
		b.makeResidentSubset(heapAddrs, 28)
		// Touched: rest of input, all definition files, heap, text.
		b.touched = 150 + 223 + int(heapReal) + 102
		ops = append(ops, trace.SeqScan{Start: pmInput + 170*pg, Bytes: 150 * pg, PerTouch: 25 * time.Millisecond})
		ops = append(ops, trace.SeqScan{Start: pmDefs, Bytes: 223 * pg, PerTouch: 25 * time.Millisecond})
		ops = append(ops, touchOps(heapAddrs, 25*time.Millisecond, true)...)
		ops = append(ops, touchOps(textSample(102), 5*time.Millisecond, false)...)
		ops = append(ops, trace.Compute{D: 2 * time.Second})
	case PMMid:
		// The touched text working set stays resident across the
		// migration point, so the resident set covers it.
		textTouched := textSample(100)
		b.resident = append(b.resident, defsAddrs(0, 223)...)
		b.resident = append(b.resident, inputAddrs(220, 320)...)
		b.resident = append(b.resident, textTouched[:50]...)
		b.touched = 320 + int(heapReal) + 100
		// Expansion re-scans the whole input against the definitions.
		ops = append(ops, trace.SeqScan{Start: pmInput, Bytes: 320 * pg, PerTouch: 25 * time.Millisecond})
		ops = append(ops, touchOps(heapAddrs, 25*time.Millisecond, true)...)
		ops = append(ops, touchOps(textTouched, 5*time.Millisecond, false)...)
		// Output writes land in fresh zero pages of the stack region.
		ops = append(ops, writeBurst(pmStack, 150, 5*time.Millisecond)...)
		ops = append(ops, trace.Compute{D: 2 * time.Second})
	case PMEnd:
		b.resident = append(b.resident, addrRange(pmOutput, 0, 90)...)
		b.resident = append(b.resident, defsAddrs(0, 223)...)
		b.resident = append(b.resident, inputAddrs(120, 320)...)
		b.resident = append(b.resident, textSample(77)...)
		b.touched = 50 + 80 + int(heapReal) + 100
		// Little work left: the input tail, some definition lookups,
		// final heap state, and the last of the output.
		ops = append(ops, trace.SeqScan{Start: pmInput + 270*pg, Bytes: 50 * pg, PerTouch: 25 * time.Millisecond})
		ops = append(ops, touchOps(defsAddrs(0, 80), 25*time.Millisecond, false)...)
		ops = append(ops, touchOps(heapAddrs, 25*time.Millisecond, true)...)
		ops = append(ops, touchOps(textSample(100), 5*time.Millisecond, false)...)
		ops = append(ops, writeBurst(pmOutput+90*pg, 150, 5*time.Millisecond)...)
		ops = append(ops, trace.Compute{D: 2 * time.Second})
	}
	return ops, nil
}

// writeBurst writes n fresh pages starting at base (FillZero + dirty).
func writeBurst(base vm.Addr, n int, perTouch time.Duration) []trace.Op {
	var ops []trace.Op
	for i := 0; i < n; i++ {
		ops = append(ops,
			trace.Compute{D: perTouch},
			trace.Touch{Addr: base + vm.Addr(i*pg), Write: true})
	}
	return ops
}

// addrRange enumerates page addresses [from, to) offset from base.
func addrRange(base vm.Addr, from, to int) []vm.Addr {
	var out []vm.Addr
	for i := from; i < to; i++ {
		out = append(out, base+vm.Addr(i*pg))
	}
	return out
}

// chess: long-lived and compute-bound. A contiguous 200-page core of
// code (the evaluator working set lives in its first 60 pages), more
// code and tables scattered behind it, and a trace that settles into a
// tight loop: touch the working set, think for half a second, tick the
// game clock.
func (b *builder) chess() ([]trace.Op, error) {
	code, err := b.region(0x00000, 350, "code")
	if err != nil {
		return nil, err
	}
	data, err := b.region(0x40000, 300, "data")
	if err != nil {
		return nil, err
	}
	screen, err := b.region(0x80000, 328, "screen")
	if err != nil {
		return nil, err
	}
	b.fill(code, 0, 200)
	b.scatterAt(code, 200, 150, 100, 14)
	dataReal := b.scatter(data, 300, 60, 30)
	screenReal := b.scatter(screen, 328, 22, 10)

	b.resident = append(b.resident, addrRange(0, 0, 180)...) // code core
	b.makeResidentSubset(dataReal, 25)
	b.makeResidentSubset(screenReal, 10)

	touched := addrRange(0, 60, 90) // code beyond the WS
	touched = append(touched, b.makeSample(dataReal, 30)...)
	touched = append(touched, b.makeSample(screenReal, 16)...)
	b.touched = 60 + len(touched)

	ops := touchOps(b.shuffled(touched), 8*time.Millisecond, false)
	ops = append(ops,
		trace.WSLoop{Start: 0, Pages: 60, Iters: 520, Compute: 550 * time.Millisecond},
		trace.IOWait{D: 2 * time.Second},
	)
	return ops, nil
}

// makeSample picks n addresses deterministically without residency
// side effects.
func (b *builder) makeSample(addrs []vm.Addr, n int) []vm.Addr {
	perm := b.rng.Perm(len(addrs))
	out := make([]vm.Addr, n)
	for i := 0; i < n; i++ {
		out[i] = addrs[perm[i]]
	}
	return out
}
