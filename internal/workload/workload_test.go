package workload

import (
	"testing"

	"accentmig/internal/machine"
	"accentmig/internal/sim"
	"accentmig/internal/vm"
)

func build(t *testing.T, k Kind) (*machine.Machine, *Built) {
	t.Helper()
	m := machine.New(sim.New(), "host", machine.Config{})
	b, err := Build(m, k)
	if err != nil {
		t.Fatalf("Build(%v): %v", k, err)
	}
	return m, b
}

// TestCompositionMatchesTable41 checks every representative against the
// paper's Table 4-1 and Table 4-2 numbers byte-for-byte (Build itself
// verifies; this test asserts through the public Usage path and guards
// the published constants).
func TestCompositionMatchesTable41(t *testing.T) {
	for _, k := range Kinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			_, b := build(t, k)
			paper := PaperNumbers(k)
			u := b.Proc.AS.Usage()
			if u.Total != paper.TotalBytes {
				t.Errorf("Total = %d, want %d", u.Total, paper.TotalBytes)
			}
			if u.Real != paper.RealBytes {
				t.Errorf("Real = %d, want %d", u.Real, paper.RealBytes)
			}
			if u.RealZero != paper.TotalBytes-paper.RealBytes {
				t.Errorf("RealZero = %d, want %d", u.RealZero, paper.TotalBytes-paper.RealBytes)
			}
			if u.Resident != paper.ResidentBytes {
				t.Errorf("Resident = %d, want %d", u.Resident, paper.ResidentBytes)
			}
			if got := uint64(len(b.RealAddrs)) * 512; got != paper.RealBytes {
				t.Errorf("RealAddrs bytes = %d, want %d", got, paper.RealBytes)
			}
			if got := uint64(len(b.ResidentAddrs)) * 512; got != paper.ResidentBytes {
				t.Errorf("ResidentAddrs bytes = %d, want %d", got, paper.ResidentBytes)
			}
		})
	}
}

// TestPostTouchesMatchTable43 verifies that the post-migration phase of
// each trace references exactly the number of unique real pages implied
// by Table 4-3's IOU column.
func TestPostTouchesMatchTable43(t *testing.T) {
	for _, k := range Kinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			_, b := build(t, k)
			paper := PaperNumbers(k)
			if b.TouchedPost != paper.TouchedIOU {
				t.Errorf("declared TouchedPost = %d, want %d", b.TouchedPost, paper.TouchedIOU)
			}
			// Independently recount from the trace itself.
			prog := b.Proc.Program
			mi := prog.MigrateIndex()
			if mi < 0 {
				t.Fatal("no MigratePoint in program")
			}
			realSet := map[vm.Addr]bool{}
			for _, a := range b.RealAddrs {
				realSet[a] = true
			}
			unique := map[vm.Addr]bool{}
			for _, a := range prog.Touches(mi+1, 512) {
				pageAddr := vm.Addr(uint64(a) / 512 * 512)
				if realSet[pageAddr] {
					unique[pageAddr] = true
				}
			}
			if len(unique) != paper.TouchedIOU {
				t.Errorf("trace touches %d unique real pages, want %d", len(unique), paper.TouchedIOU)
			}
		})
	}
}

// TestLispSpacesDwarfOthers reproduces the Table 4-1 observations: a
// 12,803× spread in validated space but only ~15× in RealMem, with
// RealZero over half of every space and 99.9% for Lisp.
func TestLispSpacesDwarfOthers(t *testing.T) {
	totals := map[Kind]uint64{}
	reals := map[Kind]uint64{}
	for _, k := range Kinds() {
		p := PaperNumbers(k)
		totals[k] = p.TotalBytes
		reals[k] = p.RealBytes
	}
	if r := totals[LispT] / totals[Minprog]; r < 10000 || r > 14000 {
		t.Errorf("validated spread = %d, want ≈12803", r)
	}
	if r := reals[LispT] / reals[Minprog]; r < 10 || r > 20 {
		t.Errorf("RealMem spread = %d, want ≈15", r)
	}
	for _, k := range Kinds() {
		_, b := build(t, k)
		u := b.Proc.AS.Usage()
		if pct := u.PctRealZero(); pct < 40 {
			t.Errorf("%v: RealZero = %.1f%%, want > 40%%", k, pct)
		}
		if k == LispT || k == LispDel {
			if pct := b.Proc.AS.Usage().PctRealZero(); pct < 99.9 {
				t.Errorf("%v: RealZero = %.2f%%, want 99.9%%", k, pct)
			}
		}
		_ = u
	}
}

func TestBuildDeterministic(t *testing.T) {
	_, a := build(t, LispDel)
	_, b := build(t, LispDel)
	if len(a.RealAddrs) != len(b.RealAddrs) {
		t.Fatal("real layouts differ in size")
	}
	for i := range a.RealAddrs {
		if a.RealAddrs[i] != b.RealAddrs[i] {
			t.Fatalf("layouts diverge at %d", i)
		}
	}
	for i := range a.ResidentAddrs {
		if a.ResidentAddrs[i] != b.ResidentAddrs[i] {
			t.Fatalf("resident sets diverge at %d", i)
		}
	}
}

func TestRunsToMigratePointLocally(t *testing.T) {
	for _, k := range []Kind{Minprog, Chess} {
		m, b := build(t, k)
		m.Start(b.Proc)
		m.K.Run()
		if b.Proc.Status != machine.AtMigrationPoint {
			t.Errorf("%v: status = %v, want AtMigrationPoint", k, b.Proc.Status)
		}
	}
}

func TestMinprogRunsToCompletionLocally(t *testing.T) {
	// Without migration, resuming from the migration point finishes
	// quickly and entirely locally (everything it touches is resident).
	m, b := build(t, Minprog)
	m.Start(b.Proc)
	m.K.Run()
	m.Start(b.Proc) // resume past the migration point
	end := m.K.Run()
	if b.Proc.Status != machine.Finished {
		t.Fatalf("status = %v, err = %v", b.Proc.Status, b.Proc.ExecError)
	}
	if end.Seconds() > 1 {
		t.Errorf("Minprog local run took %v, want well under 1s", end)
	}
	if st := m.Pager.Stats(); st.ImagFaults != 0 {
		t.Errorf("local run had %d imaginary faults", st.ImagFaults)
	}
}

func TestDuplicateBuildRejected(t *testing.T) {
	m := machine.New(sim.New(), "host", machine.Config{})
	if _, err := Build(m, Minprog); err != nil {
		t.Fatal(err)
	}
	if _, err := Build(m, Minprog); err == nil {
		t.Error("second Build of same kind on one machine accepted")
	}
}

func TestPageSizeGuard(t *testing.T) {
	m := machine.New(sim.New(), "host", machine.Config{PageSize: 1024})
	if _, err := Build(m, Minprog); err == nil {
		t.Error("Build accepted a non-512-byte-page machine")
	}
}

// TestResidentSubsetOfReal: every resident page is a real page.
func TestResidentSubsetOfReal(t *testing.T) {
	for _, k := range Kinds() {
		_, b := build(t, k)
		real := map[vm.Addr]bool{}
		for _, a := range b.RealAddrs {
			real[a] = true
		}
		for _, a := range b.ResidentAddrs {
			if !real[a] {
				t.Errorf("%v: resident page %#x not real", k, a)
				break
			}
		}
	}
}

// TestLocalBaselines runs each representative to completion without any
// migration: no imaginary faults may occur, and only the workload's own
// locality drives disk activity.
func TestLocalBaselines(t *testing.T) {
	for _, k := range Kinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			m, b := build(t, k)
			m.Start(b.Proc)
			m.K.Run() // to the migration point
			if b.Proc.Status != machine.AtMigrationPoint {
				t.Fatalf("status = %v", b.Proc.Status)
			}
			m.Start(b.Proc) // resume locally
			end := m.K.Run()
			if b.Proc.Status != machine.Finished || b.Proc.ExecError != nil {
				t.Fatalf("status = %v err = %v", b.Proc.Status, b.Proc.ExecError)
			}
			if st := m.Pager.Stats(); st.ImagFaults != 0 {
				t.Errorf("local run had %d imaginary faults", st.ImagFaults)
			}
			if end <= 0 {
				t.Error("zero runtime")
			}
			t.Logf("local runtime %.1fs", end.Seconds())
		})
	}
}

// TestChessIsLongLived: the paper's longevity argument needs Chess to
// run for minutes while the short-lived programs finish in seconds.
func TestChessIsLongLived(t *testing.T) {
	runtimeOf := func(k Kind) float64 {
		m, b := build(t, k)
		m.Start(b.Proc)
		m.K.Run()
		m.Start(b.Proc)
		return m.K.Run().Seconds()
	}
	chess := runtimeOf(Chess)
	minprog := runtimeOf(Minprog)
	if chess < 120 {
		t.Errorf("Chess ran only %.0fs; want minutes", chess)
	}
	if minprog > 5 {
		t.Errorf("Minprog ran %.1fs; want ~instant", minprog)
	}
	if chess/minprog < 100 {
		t.Errorf("longevity ratio = %.0f, want >> 100", chess/minprog)
	}
}

func TestBuildSyntheticPatterns(t *testing.T) {
	for _, pat := range []AccessPattern{Sequential, Random, WorkingSet} {
		pat := pat
		t.Run(pat.String(), func(t *testing.T) {
			m := machine.New(sim.New(), "host", machine.Config{})
			b, err := BuildSynthetic(m, SyntheticSpec{
				Name: "syn", RealPages: 64, TouchedPages: 16, Pattern: pat, Seed: 7,
			})
			if err != nil {
				t.Fatal(err)
			}
			u := b.Proc.AS.Usage()
			if u.Real != 64*512 {
				t.Errorf("Real = %d", u.Real)
			}
			if u.Resident != 16*512 {
				t.Errorf("Resident = %d", u.Resident)
			}
			m.Start(b.Proc)
			m.K.Run()
			if b.Proc.Status != machine.AtMigrationPoint {
				t.Fatalf("status = %v", b.Proc.Status)
			}
			m.Start(b.Proc)
			m.K.Run()
			if b.Proc.Status != machine.Finished || b.Proc.ExecError != nil {
				t.Fatalf("status = %v err = %v", b.Proc.Status, b.Proc.ExecError)
			}
		})
	}
}

func TestBuildSyntheticValidation(t *testing.T) {
	m := machine.New(sim.New(), "host", machine.Config{})
	if _, err := BuildSynthetic(m, SyntheticSpec{RealPages: 10, TotalPages: 5}); err == nil {
		t.Error("Real > Total accepted")
	}
	if _, err := BuildSynthetic(m, SyntheticSpec{RealPages: 10, TouchedPages: 20}); err == nil {
		t.Error("Touched > Real accepted")
	}
	if _, err := BuildSynthetic(m, SyntheticSpec{RealPages: 10, ResidentPages: 20}); err == nil {
		t.Error("Resident > Real accepted")
	}
}

func TestSyntheticMigrates(t *testing.T) {
	// The synthetic workload plugs into the same migration machinery.
	k := sim.New()
	src := machine.New(k, "src", machine.Config{})
	_ = src
	m := machine.New(k, "host2", machine.Config{})
	_ = m
	// Full migration plumbing lives in core; here just confirm the
	// Built shape matches what RunTrial-style drivers need.
	b, err := BuildSynthetic(src, SyntheticSpec{RealPages: 32, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if b.Proc.Program.MigrateIndex() != 0 {
		t.Errorf("MigrateIndex = %d, want 0", b.Proc.Program.MigrateIndex())
	}
	if len(b.Proc.Ports) == 0 {
		t.Error("synthetic process has no port rights")
	}
}
