package workload

import (
	"fmt"
	"time"

	"accentmig/internal/machine"
	"accentmig/internal/trace"
	"accentmig/internal/vm"
	"accentmig/internal/xrand"
)

// AccessPattern selects how a synthetic process touches its memory
// after migration.
type AccessPattern int

const (
	// Sequential scans the touched range in address order (the Pasmac
	// shape; prefetch-friendly).
	Sequential AccessPattern = iota
	// Random touches distinct pages in a shuffled order (the Lisp
	// shape; prefetch-hostile).
	Random
	// WorkingSet loops over a small hot set (the Chess shape).
	WorkingSet
)

// String names the pattern.
func (a AccessPattern) String() string {
	switch a {
	case Sequential:
		return "Sequential"
	case Random:
		return "Random"
	case WorkingSet:
		return "WorkingSet"
	default:
		return fmt.Sprintf("AccessPattern(%d)", int(a))
	}
}

// SyntheticSpec parameterizes a custom workload, letting library users
// model their own program classes the way §4.1 models the paper's.
// Zero values select sane defaults.
type SyntheticSpec struct {
	Name string
	// TotalPages of validated address space (default 2× RealPages).
	TotalPages int
	// RealPages of materialized, disk-backed data (default 256).
	RealPages int
	// RealRuns scatters the real pages into this many runs (default 1:
	// contiguous).
	RealRuns int
	// ResidentPages resident at migration time (default RealPages/4).
	ResidentPages int
	// TouchedPages the post-migration phase references (default
	// RealPages/4).
	TouchedPages int
	// Pattern of the post-migration touches.
	Pattern AccessPattern
	// PerTouch compute between touches (default 10 ms).
	PerTouch time.Duration
	// ExtraCompute after the touches (default 1 s).
	ExtraCompute time.Duration
	// Writes makes the touches writes (dirtying pages).
	Writes bool
	// Seed for the deterministic layout/pattern randomness.
	Seed uint64
}

func (sp SyntheticSpec) withDefaults() SyntheticSpec {
	if sp.Name == "" {
		sp.Name = "synthetic"
	}
	if sp.RealPages == 0 {
		sp.RealPages = 256
	}
	if sp.TotalPages == 0 {
		sp.TotalPages = 2 * sp.RealPages
	}
	if sp.RealRuns == 0 {
		sp.RealRuns = 1
	}
	if sp.ResidentPages == 0 {
		sp.ResidentPages = sp.RealPages / 4
	}
	if sp.TouchedPages == 0 {
		sp.TouchedPages = sp.RealPages / 4
	}
	if sp.PerTouch == 0 {
		sp.PerTouch = 10 * time.Millisecond
	}
	if sp.ExtraCompute == 0 {
		sp.ExtraCompute = time.Second
	}
	return sp
}

func (sp SyntheticSpec) validate() error {
	if sp.RealPages > sp.TotalPages {
		return fmt.Errorf("workload: synthetic %q: RealPages %d > TotalPages %d", sp.Name, sp.RealPages, sp.TotalPages)
	}
	if sp.ResidentPages > sp.RealPages {
		return fmt.Errorf("workload: synthetic %q: ResidentPages %d > RealPages %d", sp.Name, sp.ResidentPages, sp.RealPages)
	}
	if sp.TouchedPages > sp.RealPages {
		return fmt.Errorf("workload: synthetic %q: TouchedPages %d > RealPages %d", sp.Name, sp.TouchedPages, sp.RealPages)
	}
	if sp.TouchedPages < 1 || sp.RealPages < 1 {
		return fmt.Errorf("workload: synthetic %q: needs at least one real and one touched page", sp.Name)
	}
	return nil
}

// BuildSynthetic constructs a custom process on m from the spec. Like
// the representatives, it stops at a MigratePoint before its touch
// phase, so it is ready for any migration strategy.
func BuildSynthetic(m *machine.Machine, spec SyntheticSpec) (*Built, error) {
	sp := spec.withDefaults()
	if err := sp.validate(); err != nil {
		return nil, err
	}
	if m.PageSize() != pg {
		return nil, fmt.Errorf("workload: synthetic %q requires %d-byte pages", sp.Name, pg)
	}
	pr, err := m.NewProcess(sp.Name, 2)
	if err != nil {
		return nil, err
	}
	b := &builder{m: m, pr: pr, rng: xrand.New(sp.Seed ^ 0x51f7e71c)}

	reg, err := b.region(0, uint64(sp.TotalPages), sp.Name+".data")
	if err != nil {
		return nil, err
	}
	real := b.scatter(reg, uint64(sp.TotalPages), uint64(sp.RealPages), uint64(sp.RealRuns))
	resident := b.makeResidentSubset(real, sp.ResidentPages)
	if err := m.MakeResident(pr, resident); err != nil {
		return nil, err
	}

	var touched []vm.Addr
	switch sp.Pattern {
	case Sequential:
		touched = append(touched, real[:sp.TouchedPages]...)
	case Random:
		touched = b.makeSample(real, sp.TouchedPages)
	case WorkingSet:
		touched = append(touched, real[:sp.TouchedPages]...)
	}

	ops := []trace.Op{trace.MigratePoint{}}
	switch sp.Pattern {
	case WorkingSet:
		iters := 1 + int(sp.ExtraCompute/(250*time.Millisecond))
		ops = append(ops, touchOps(touched, sp.PerTouch, sp.Writes)...)
		ops = append(ops, trace.WSLoop{
			Start:   touched[0],
			Pages:   min(sp.TouchedPages, 32),
			Iters:   iters,
			Compute: 250 * time.Millisecond,
			Write:   sp.Writes,
		})
	default:
		if sp.Pattern == Random {
			touched = b.shuffled(touched)
		}
		ops = append(ops, touchOps(touched, sp.PerTouch, sp.Writes)...)
		ops = append(ops, trace.Compute{D: sp.ExtraCompute})
	}
	pr.Program = &trace.Program{Ops: ops}

	return &Built{
		Kind:          Kind(-1),
		Proc:          pr,
		RealAddrs:     b.real,
		ResidentAddrs: b.resident,
		TouchedPost:   len(touched),
	}, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
