package workload

// This file centralizes the paper's published evaluation numbers so
// the report generator and the regression tests compare against one
// authoritative copy.

// PaperTable43IOU is Table 4-3's IOU column: percent of RealMem
// accessed at the remote site under pure copy-on-reference. The Lisp-T
// row is illegible in the published scan; 3.0 is inferred from §4.5's
// "between 3% and 58% of the RealMem portions".
var PaperTable43IOU = map[Kind]float64{
	Minprog: 8.6,
	LispT:   3.0,
	LispDel: 16.5,
	PMStart: 58.0,
	PMMid:   51.5,
	PMEnd:   26.9,
	Chess:   35.6,
}

// PaperTable44 is Table 4-4: excision times in seconds.
type PaperExcision struct {
	AMap, RIMAS, Overall float64
}

// PaperTable44Rows holds the published excision breakdown.
var PaperTable44Rows = map[Kind]PaperExcision{
	Minprog: {0.37, 0.36, 0.82},
	LispT:   {2.12, 0.59, 2.79},
	LispDel: {2.46, 0.73, 3.38},
	PMStart: {0.98, 0.63, 1.67},
	PMMid:   {1.01, 0.68, 1.74},
	PMEnd:   {1.40, 0.94, 2.45},
	Chess:   {0.37, 0.43, 1.00},
}

// PaperTransfer is one Table 4-5 row: transfer times in seconds.
type PaperTransfer struct {
	IOU, RS, Copy float64
}

// PaperTable45Rows holds the published address-space transfer times.
var PaperTable45Rows = map[Kind]PaperTransfer{
	Minprog: {0.16, 5.0, 8.5},
	LispT:   {0.16, 25.8, 157.0},
	LispDel: {0.17, 25.8, 168.5},
	PMStart: {0.15, 9.0, 30.8},
	PMMid:   {0.16, 13.0, 28.1},
	PMEnd:   {0.19, 20.5, 31.0},
	Chess:   {0.21, 7.7, 11.7},
}

// PaperResidentPct is Table 4-2's (%Real, %Total) columns.
var PaperResidentPct = map[Kind][2]float64{
	Minprog: {50.4, 21.7},
	LispT:   {8.6, 0.005},
	LispDel: {8.7, 0.005},
	PMStart: {29.4, 13.9},
	PMMid:   {42.8, 20.9},
	PMEnd:   {61.4, 33.9},
	Chess:   {56.3, 22.0},
}

// Paper §4.5 headline aggregates.
const (
	PaperByteSavingsPct    = 58.2
	PaperMsgTimeSavingsPct = 47.8
	PaperRemoteFaultMs     = 115.0
	PaperDiskFaultMs       = 40.8
	PaperFaultRatio        = 2.8
	PaperPeakReductionPct  = 66.0 // "up to"
	PaperBreakevenPct      = 25.0 // "around one-quarter"
)
