// Package workload reconstructs the seven representative processes of
// §4.1 as synthetic processes whose address-space composition matches
// Table 4-1 byte-for-byte, whose resident sets match Table 4-2, and
// whose reference programs reproduce each program's documented access
// pattern and touched fraction (Table 4-3): sequential whole-file scans
// for the Pasmac trials, low-locality random touches for Lisp, a small
// hot working set with heavy compute for Chess, and near-nothing for
// Minprog.
//
// These are the substitution for the original Perq binaries (see
// DESIGN.md): composition and residency are inputs taken from the
// paper's own characterization tables; everything else is measured.
package workload

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"accentmig/internal/machine"
	"accentmig/internal/trace"
	"accentmig/internal/vm"
	"accentmig/internal/xrand"
)

// Kind identifies one representative process.
type Kind int

const (
	// Minprog is the "null trap" of migration studies: print, wait,
	// exit.
	Minprog Kind = iota
	// LispT is a Lisp system asked to evaluate T after migration.
	LispT
	// LispDel runs Dwyer's Delaunay triangulation in Lisp.
	LispDel
	// PMStart is the Pasmac macro processor migrated as the first
	// definition file is accessed.
	PMStart
	// PMMid is Pasmac migrated after all definition files are read.
	PMMid
	// PMEnd is Pasmac migrated near the end of its expansion.
	PMEnd
	// Chess is the long-lived, compute-bound chess program.
	Chess
)

// Kinds lists all representatives in the paper's table order.
func Kinds() []Kind {
	return []Kind{Minprog, LispT, LispDel, PMStart, PMMid, PMEnd, Chess}
}

// String names the representative as the paper does.
func (k Kind) String() string {
	switch k {
	case Minprog:
		return "Minprog"
	case LispT:
		return "Lisp-T"
	case LispDel:
		return "Lisp-Del"
	case PMStart:
		return "PM-Start"
	case PMMid:
		return "PM-Mid"
	case PMEnd:
		return "PM-End"
	case Chess:
		return "Chess"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Paper holds the published characterization for one representative,
// used both to build the workload and to verify the reproduction.
type Paper struct {
	TotalBytes    uint64 // Table 4-1 Total
	RealBytes     uint64 // Table 4-1 Real
	ResidentBytes uint64 // Table 4-2 RS Size
	TouchedIOU    int    // unique real pages touched remotely (from Table 4-3 IOU %)
}

// PaperNumbers returns the published figures for k.
func PaperNumbers(k Kind) Paper {
	switch k {
	case Minprog:
		return Paper{330_240, 142_336, 71_680, 24}
	case LispT:
		return Paper{4_228_129_280, 2_203_136, 190_464, 129}
	case LispDel:
		return Paper{4_228_129_280, 2_200_064, 190_464, 709}
	case PMStart:
		return Paper{950_784, 449_024, 132_096, 509}
	case PMMid:
		return Paper{912_896, 446_464, 190_976, 449}
	case PMEnd:
		return Paper{890_880, 492_032, 302_080, 258}
	case Chess:
		return Paper{500_736, 195_584, 110_080, 136}
	default:
		panic("workload: unknown kind")
	}
}

// Built is a constructed representative, ready to run and migrate.
type Built struct {
	Kind Kind
	Proc *machine.Process

	// RealAddrs holds the page address of every materialized page, in
	// address order.
	RealAddrs []vm.Addr
	// ResidentAddrs holds the pages resident at migration time.
	ResidentAddrs []vm.Addr
	// TouchedPost is the number of unique real pages the post-migration
	// phase references.
	TouchedPost int
}

const pg = 512 // the Accent page size; workload geometry is in pages

// Build constructs representative k as a process on m. The process is
// left at rest; start it with m.Start and it will run to its
// MigratePoint.
func Build(m *machine.Machine, k Kind) (*Built, error) {
	if m.PageSize() != pg {
		return nil, fmt.Errorf("workload: %v requires %d-byte pages, machine has %d", k, pg, m.PageSize())
	}
	pr, err := m.NewProcess(k.String(), 3)
	if err != nil {
		return nil, err
	}
	b := &builder{
		m:   m,
		pr:  pr,
		rng: xrand.New(0x5eed0000 + uint64(k)),
	}
	var post []trace.Op
	switch k {
	case Minprog:
		post, err = b.minprog()
	case LispT:
		post, err = b.lisp(4303, 300, lispTTrace)
	case LispDel:
		post, err = b.lisp(4297, 350, lispDelTrace)
	case PMStart:
		post, err = b.pasmac(PMStart)
	case PMMid:
		post, err = b.pasmac(PMMid)
	case PMEnd:
		post, err = b.pasmac(PMEnd)
	case Chess:
		post, err = b.chess()
	default:
		err = fmt.Errorf("workload: unknown kind %d", int(k))
	}
	if err != nil {
		return nil, err
	}

	ops := []trace.Op{trace.Compute{D: 10 * time.Millisecond}, trace.MigratePoint{}}
	ops = append(ops, post...)
	pr.Program = &trace.Program{Ops: ops}

	sort.Slice(b.real, func(i, j int) bool { return b.real[i] < b.real[j] })
	if err := m.MakeResident(pr, b.resident); err != nil {
		return nil, err
	}
	built := &Built{
		Kind:          k,
		Proc:          pr,
		RealAddrs:     b.real,
		ResidentAddrs: b.resident,
		TouchedPost:   b.touched,
	}
	if err := b.check(k); err != nil {
		return nil, err
	}
	return built, nil
}

// builder accumulates layout state for one workload.
type builder struct {
	m        *machine.Machine
	pr       *machine.Process
	rng      *xrand.RNG
	real     []vm.Addr
	resident []vm.Addr
	touched  int
}

// check verifies the construction against the published numbers.
func (b *builder) check(k Kind) error {
	paper := PaperNumbers(k)
	u := b.pr.AS.Usage()
	if u.Total != paper.TotalBytes {
		return fmt.Errorf("workload %v: Total = %d, paper %d", k, u.Total, paper.TotalBytes)
	}
	if u.Real != paper.RealBytes {
		return fmt.Errorf("workload %v: Real = %d, paper %d", k, u.Real, paper.RealBytes)
	}
	if u.Resident != paper.ResidentBytes {
		return fmt.Errorf("workload %v: Resident = %d, paper %d", k, u.Resident, paper.ResidentBytes)
	}
	return nil
}

// region validates pages of address space at start.
func (b *builder) region(start vm.Addr, pages uint64, name string) (*vm.Region, error) {
	return b.pr.AS.Validate(start, pages*pg, name)
}

// fillRows holds every distinct page image fill can produce. The
// content formula byte(reg.Start + i*31 + j*7) depends on (Start, i)
// only through its low byte, so there are exactly 256 page images;
// building them once and handing the shared row to Materialize (which
// copies) removes the per-page allocation and byte loop from every
// workload build — a few percent of whole-trial time.
var (
	fillRows     [256][pg]byte
	fillRowsOnce sync.Once
)

func fillRow(s byte) []byte {
	fillRowsOnce.Do(func() {
		for s := 0; s < 256; s++ {
			for j := 0; j < pg; j++ {
				fillRows[s][j] = byte(s + j*7)
			}
		}
	})
	return fillRows[s][:]
}

// fill materializes [from, to) page indices of the region as real,
// disk-backed pages with deterministic content, recording addresses.
func (b *builder) fill(reg *vm.Region, from, to uint64) {
	for i := from; i < to; i++ {
		page := reg.Seg.Materialize(i, fillRow(byte(uint64(reg.Start)+i*31)))
		page.State.OnDisk = true
		b.real = append(b.real, reg.Start+vm.Addr(i*pg))
	}
}

// scatter materializes exactly `pages` real pages within the first
// `window` pages of reg, in approximately `runs` contiguous runs, and
// returns the addresses in address order.
func (b *builder) scatter(reg *vm.Region, window, pages, runs uint64) []vm.Addr {
	return b.scatterAt(reg, 0, window, pages, runs)
}

// scatterAt is scatter starting at page index `from` within the region.
func (b *builder) scatterAt(reg *vm.Region, from, window, pages, runs uint64) []vm.Addr {
	if runs < 1 {
		runs = 1
	}
	if runs > pages {
		runs = pages
	}
	if window < pages {
		panic(fmt.Sprintf("workload: scatter window %d < pages %d", window, pages))
	}
	// Run lengths: distribute pages across runs, ±50% jitter.
	lens := make([]uint64, runs)
	left := pages
	for i := range lens {
		avg := left / uint64(len(lens)-i)
		l := avg/2 + uint64(b.rng.Intn(int(avg)+1))
		if l < 1 {
			l = 1
		}
		if i == len(lens)-1 || l > left-uint64(len(lens)-i-1) {
			l = left - uint64(len(lens)-i-1)
		}
		lens[i] = l
		left -= l
	}
	// Gaps: distribute the slack between runs (gap >= 1 to keep runs
	// distinct).
	slack := window - pages
	gaps := make([]uint64, runs)
	for i := range gaps {
		if slack == 0 {
			break
		}
		g := uint64(b.rng.Intn(int(slack/(runs-uint64(i))*2 + 1)))
		if g > slack {
			g = slack
		}
		gaps[i] = g
		slack -= g
	}
	start := len(b.real)
	cursor := from
	for i := uint64(0); i < runs; i++ {
		cursor += gaps[i]
		b.fill(reg, cursor, cursor+lens[i])
		cursor += lens[i]
		if i > 0 && gaps[i] == 0 {
			// Adjacent runs merge; harmless, run count is approximate.
			continue
		}
	}
	return b.real[start:]
}

// makeResidentSubset marks n of the given addresses resident, sampled
// deterministically, and returns them.
func (b *builder) makeResidentSubset(addrs []vm.Addr, n int) []vm.Addr {
	if n > len(addrs) {
		panic(fmt.Sprintf("workload: resident %d > candidates %d", n, len(addrs)))
	}
	perm := b.rng.Perm(len(addrs))
	picked := make([]vm.Addr, n)
	for i := 0; i < n; i++ {
		picked[i] = addrs[perm[i]]
	}
	sort.Slice(picked, func(i, j int) bool { return picked[i] < picked[j] })
	b.resident = append(b.resident, picked...)
	return picked
}

// touchOps turns page addresses into Touch ops with compute sprinkled
// between them.
func touchOps(addrs []vm.Addr, perTouch time.Duration, write bool) []trace.Op {
	ops := make([]trace.Op, 0, 2*len(addrs))
	for _, a := range addrs {
		if perTouch > 0 {
			ops = append(ops, trace.Compute{D: perTouch})
		}
		ops = append(ops, trace.Touch{Addr: a, Write: write})
	}
	return ops
}

// shuffled returns a deterministic shuffle of addrs.
func (b *builder) shuffled(addrs []vm.Addr) []vm.Addr {
	out := append([]vm.Addr(nil), addrs...)
	b.rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}
