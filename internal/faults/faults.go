// Package faults is the simulator's scriptable failure model: one
// seed-deterministic Plan describes everything that goes wrong in a
// trial — a base frame-drop probability, drop bursts and full link
// partitions between virtual-time windows, and scheduled backer
// crashes (keyed to a virtual time or to a migration phase). The
// network layers consult a per-link Injector compiled from the plan
// instead of carrying ad-hoc failure knobs, so the same plan replayed
// with the same seed reproduces the same losses bit for bit.
//
// Plans are plain JSON (see docs/RESILIENCE.md for the format), so
// failure scenarios can be versioned alongside experiment configs:
//
//	{
//	  "seed": 7,
//	  "dropProb": 0.05,
//	  "bursts": [{"start": "2s", "end": "4s", "dropProb": 0.8}],
//	  "partitions": [{"start": "10s", "end": "12s"}],
//	  "crashes": [{"machine": "src", "atPhase": "remote", "policy": "zerofill"}]
//	}
package faults

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"time"

	"accentmig/internal/xrand"
)

// Duration is a time.Duration that marshals to and from JSON as a
// human-readable string ("250ms", "1m30s"); bare numbers are accepted
// as nanoseconds.
type Duration time.Duration

// MarshalJSON renders the duration as its String form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts either a duration string or nanoseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("faults: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return err
	}
	*d = Duration(n)
	return nil
}

// Window is a half-open virtual-time interval [Start, End).
type Window struct {
	Start Duration `json:"start"`
	End   Duration `json:"end"`
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t time.Duration) bool {
	return t >= time.Duration(w.Start) && t < time.Duration(w.End)
}

// Burst raises the drop probability to DropProb inside its window.
type Burst struct {
	Window
	DropProb float64 `json:"dropProb"`
}

// CrashPolicy selects what happens to the IOUs a crashed backer still
// owes (the orphaned-IOU policy of the recovery design).
type CrashPolicy string

const (
	// CrashFail surfaces the loss: orphaned faults fail the process.
	CrashFail CrashPolicy = "fail"
	// CrashZeroFill degrades gracefully: orphaned faults zero-fill.
	CrashZeroFill CrashPolicy = "zerofill"
	// CrashFlush dissolves the residual dependency just before the
	// crash, so nothing is orphaned (the pre-crash flush).
	CrashFlush CrashPolicy = "flush"
)

// Crash schedules the failure of one machine's backing service. Either
// At (a virtual time) or AtPhase (a migration phase name: excise,
// xfer.core, xfer.rimas, remote) selects the moment.
type Crash struct {
	Machine string      `json:"machine"`
	At      Duration    `json:"at,omitempty"`
	AtPhase string      `json:"atPhase,omitempty"`
	Policy  CrashPolicy `json:"policy,omitempty"`
}

// Plan is one complete, seed-deterministic fault scenario.
type Plan struct {
	// Seed drives every random stream the plan spawns; the same plan
	// and seed reproduce the same losses exactly.
	Seed uint64 `json:"seed"`
	// DropProb is the base frame-loss probability outside bursts.
	DropProb float64 `json:"dropProb,omitempty"`
	// Bursts temporarily raise the drop probability.
	Bursts []Burst `json:"bursts,omitempty"`
	// Partitions drop every frame inside their windows.
	Partitions []Window `json:"partitions,omitempty"`
	// Crashes schedule backer failures.
	Crashes []Crash `json:"crashes,omitempty"`
	// CorruptProb is the per-page probability that a delivered,
	// integrity-protected payload page is bit-flipped on the wire
	// (corruption the link-level CRC missed). Detection and repair
	// are the receiver's job; see docs/RESILIENCE.md.
	CorruptProb float64 `json:"corruptProb,omitempty"`
	// CorruptBursts temporarily raise the corruption probability.
	CorruptBursts []Burst `json:"corruptBursts,omitempty"`
}

// FromDropRate compiles the legacy single-knob loss model (netlink's
// old DropProb/DropSeed pair) into a plan. An injector built from it
// with the empty stream name reproduces the legacy drop sequence bit
// for bit.
func FromDropRate(prob float64, seed uint64) *Plan {
	return &Plan{Seed: seed, DropProb: prob}
}

// Parse decodes and validates a JSON plan.
func Parse(b []byte) (*Plan, error) {
	var p Plan
	if err := json.Unmarshal(b, &p); err != nil {
		return nil, fmt.Errorf("faults: parse plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Load reads and parses a plan file.
func Load(path string) (*Plan, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("faults: %w", err)
	}
	return Parse(b)
}

// Validate checks the plan's internal consistency.
func (p *Plan) Validate() error {
	if p.DropProb < 0 || p.DropProb > 1 {
		return fmt.Errorf("faults: dropProb %v outside [0, 1]", p.DropProb)
	}
	for i, b := range p.Bursts {
		if b.DropProb < 0 || b.DropProb > 1 {
			return fmt.Errorf("faults: burst %d dropProb %v outside [0, 1]", i, b.DropProb)
		}
		if b.End <= b.Start {
			return fmt.Errorf("faults: burst %d window [%v, %v) is empty", i,
				time.Duration(b.Start), time.Duration(b.End))
		}
	}
	for i, w := range p.Partitions {
		if w.End <= w.Start {
			return fmt.Errorf("faults: partition %d window [%v, %v) is empty", i,
				time.Duration(w.Start), time.Duration(w.End))
		}
	}
	if p.CorruptProb < 0 || p.CorruptProb > 1 {
		return fmt.Errorf("faults: corruptProb %v outside [0, 1]", p.CorruptProb)
	}
	for i, b := range p.CorruptBursts {
		if b.DropProb < 0 || b.DropProb > 1 {
			return fmt.Errorf("faults: corrupt burst %d dropProb %v outside [0, 1]", i, b.DropProb)
		}
		if b.End <= b.Start {
			return fmt.Errorf("faults: corrupt burst %d window [%v, %v) is empty", i,
				time.Duration(b.Start), time.Duration(b.End))
		}
	}
	for i, c := range p.Crashes {
		if c.Machine == "" {
			return fmt.Errorf("faults: crash %d names no machine", i)
		}
		if c.AtPhase == "" && c.At <= 0 {
			return fmt.Errorf("faults: crash %d has neither at nor atPhase", i)
		}
		switch c.Policy {
		case "", CrashFail, CrashZeroFill, CrashFlush:
		default:
			return fmt.Errorf("faults: crash %d has unknown policy %q", i, c.Policy)
		}
	}
	return nil
}

// Injector is a plan compiled for one link: the drop schedule plus a
// private random stream. The zero-value nil injector is valid and
// never drops.
type Injector struct {
	plan *Plan
	rng  *xrand.RNG
	// crng is the corruption stream, seeded independently of the drop
	// stream so adding corruption to a plan leaves its loss sequence
	// bit-identical.
	crng *xrand.RNG
}

// NewInjector compiles plan for one consumer. stream names the
// consumer's private random stream so several links driven by one plan
// lose different frames; the empty stream uses the plan seed directly,
// which is what reproduces the legacy netlink drop sequence.
func NewInjector(plan *Plan, stream string) *Injector {
	if plan == nil {
		return nil
	}
	seed := plan.Seed
	if stream != "" {
		h := fnv.New64a()
		h.Write([]byte(stream))
		seed ^= h.Sum64()
	}
	ch := fnv.New64a()
	ch.Write([]byte("corrupt"))
	return &Injector{plan: plan, rng: xrand.New(seed), crng: xrand.New(seed ^ ch.Sum64())}
}

// Active reports whether the injector can ever drop a frame. Reliable
// transports use it to skip ack/retransmit machinery entirely, keeping
// fault-free simulations byte-identical to the pre-fault code.
func (in *Injector) Active() bool {
	if in == nil {
		return false
	}
	return in.plan.DropProb > 0 || len(in.plan.Bursts) > 0 || len(in.plan.Partitions) > 0
}

// Drop decides the fate of one frame transmitted at virtual time now.
// Partitions drop deterministically without consuming randomness; a
// burst covering now overrides the base probability upward; the random
// stream is only drawn when the effective probability is positive, so
// a plan's drop sequence is stable under schedule extensions.
func (in *Injector) Drop(now time.Duration) bool {
	if in == nil {
		return false
	}
	for _, w := range in.plan.Partitions {
		if w.Contains(now) {
			return true
		}
	}
	prob := in.plan.DropProb
	for _, b := range in.plan.Bursts {
		if b.Contains(now) && b.DropProb > prob {
			prob = b.DropProb
		}
	}
	if prob <= 0 {
		return false
	}
	return in.rng.Float64() < prob
}

// CorruptActive reports whether the injector can ever corrupt a page.
// The data plane uses it to skip checksum-corruption work entirely, so
// corruption-free runs stay byte-identical to the pre-corruption code.
func (in *Injector) CorruptActive() bool {
	if in == nil {
		return false
	}
	return in.plan.CorruptProb > 0 || len(in.plan.CorruptBursts) > 0
}

// CorruptPage decides whether one delivered payload page transmitted
// at virtual time now arrives bit-flipped. It draws from a private
// random stream, independent of the drop stream, and only when the
// effective probability is positive.
func (in *Injector) CorruptPage(now time.Duration) bool {
	if in == nil {
		return false
	}
	prob := in.plan.CorruptProb
	for _, b := range in.plan.CorruptBursts {
		if b.Contains(now) && b.DropProb > prob {
			prob = b.DropProb
		}
	}
	if prob <= 0 {
		return false
	}
	return in.crng.Float64() < prob
}
