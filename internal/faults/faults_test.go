package faults

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"accentmig/internal/xrand"
)

func TestPlanJSONRoundTrip(t *testing.T) {
	src := `{
		"seed": 7,
		"dropProb": 0.05,
		"bursts": [{"start": "2s", "end": "4s", "dropProb": 0.8}],
		"partitions": [{"start": "10s", "end": "12s"}],
		"crashes": [
			{"machine": "src", "atPhase": "remote", "policy": "zerofill"},
			{"machine": "dst", "at": "1m30s", "policy": "fail"}
		]
	}`
	p, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || p.DropProb != 0.05 {
		t.Fatalf("seed/dropProb: %+v", p)
	}
	if len(p.Bursts) != 1 || time.Duration(p.Bursts[0].Start) != 2*time.Second || p.Bursts[0].DropProb != 0.8 {
		t.Fatalf("bursts: %+v", p.Bursts)
	}
	if len(p.Partitions) != 1 || time.Duration(p.Partitions[0].End) != 12*time.Second {
		t.Fatalf("partitions: %+v", p.Partitions)
	}
	if len(p.Crashes) != 2 || p.Crashes[0].AtPhase != "remote" || p.Crashes[0].Policy != CrashZeroFill {
		t.Fatalf("crashes: %+v", p.Crashes)
	}
	if time.Duration(p.Crashes[1].At) != 90*time.Second {
		t.Fatalf("crash at: %v", p.Crashes[1].At)
	}

	// Marshal and re-parse: the plan must survive unchanged.
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Parse(b)
	if err != nil {
		t.Fatalf("re-parse %s: %v", b, err)
	}
	if p2.DropProb != p.DropProb || len(p2.Crashes) != 2 || p2.Crashes[1].At != p.Crashes[1].At {
		t.Fatalf("round trip changed the plan: %+v vs %+v", p, p2)
	}
}

func TestDurationAcceptsNanoseconds(t *testing.T) {
	var d Duration
	if err := json.Unmarshal([]byte("1500000000"), &d); err != nil {
		t.Fatal(err)
	}
	if time.Duration(d) != 1500*time.Millisecond {
		t.Fatalf("got %v", time.Duration(d))
	}
}

func TestValidateRejectsBadPlans(t *testing.T) {
	bad := []string{
		`{"dropProb": 1.5}`,
		`{"bursts": [{"start": "2s", "end": "1s", "dropProb": 0.5}]}`,
		`{"bursts": [{"start": "1s", "end": "2s", "dropProb": -0.1}]}`,
		`{"partitions": [{"start": "2s", "end": "2s"}]}`,
		`{"crashes": [{"at": "1s"}]}`,
		`{"crashes": [{"machine": "src"}]}`,
		`{"crashes": [{"machine": "src", "at": "1s", "policy": "explode"}]}`,
	}
	for _, src := range bad {
		if _, err := Parse([]byte(src)); err == nil {
			t.Errorf("Parse(%s) accepted an invalid plan", src)
		}
	}
}

func TestLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := os.WriteFile(path, []byte(`{"seed": 3, "dropProb": 0.1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 3 || p.DropProb != 0.1 {
		t.Fatalf("got %+v", p)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("Load of a missing file succeeded")
	}
}

// TestInjectorMatchesLegacySequence pins the compatibility contract:
// an injector built from FromDropRate with the empty stream name draws
// the same decisions the old netlink DropProb/DropSeed knob did.
func TestInjectorMatchesLegacySequence(t *testing.T) {
	const prob, seed = 0.3, uint64(42)
	inj := NewInjector(FromDropRate(prob, seed), "")
	rng := xrand.New(seed)
	for i := 0; i < 10_000; i++ {
		want := rng.Float64() < prob
		if got := inj.Drop(time.Duration(i) * time.Millisecond); got != want {
			t.Fatalf("decision %d: injector %v, legacy %v", i, got, want)
		}
	}
}

func TestInjectorDeterministic(t *testing.T) {
	plan := &Plan{Seed: 9, DropProb: 0.2,
		Bursts:     []Burst{{Window: Window{Start: Duration(time.Second), End: Duration(2 * time.Second)}, DropProb: 0.9}},
		Partitions: []Window{{Start: Duration(5 * time.Second), End: Duration(6 * time.Second)}},
	}
	a, b := NewInjector(plan, ""), NewInjector(plan, "")
	for i := 0; i < 10_000; i++ {
		now := time.Duration(i) * time.Millisecond
		if a.Drop(now) != b.Drop(now) {
			t.Fatalf("injectors diverged at %v", now)
		}
	}
}

func TestInjectorStreamsDiffer(t *testing.T) {
	plan := FromDropRate(0.5, 1)
	a, b := NewInjector(plan, "link-a"), NewInjector(plan, "link-b")
	same := true
	for i := 0; i < 64; i++ {
		if a.Drop(0) != b.Drop(0) {
			same = false
		}
	}
	if same {
		t.Fatal("distinct streams produced identical drop sequences")
	}
}

func TestPartitionsDropWithoutRandomness(t *testing.T) {
	plan := &Plan{Seed: 1, DropProb: 0.5,
		Partitions: []Window{{Start: 0, End: Duration(time.Second)}}}
	a := NewInjector(plan, "")
	// Drops inside the partition must not consume the random stream:
	// afterwards, a fresh injector still agrees decision for decision.
	for i := 0; i < 100; i++ {
		if !a.Drop(500 * time.Millisecond) {
			t.Fatal("frame survived a partition")
		}
	}
	b := NewInjector(plan, "")
	for i := 0; i < 1000; i++ {
		if a.Drop(2*time.Second) != b.Drop(2*time.Second) {
			t.Fatalf("partition drops consumed randomness (diverged at %d)", i)
		}
	}
}

func TestNilInjector(t *testing.T) {
	var in *Injector
	if in.Active() {
		t.Fatal("nil injector active")
	}
	if in.Drop(0) {
		t.Fatal("nil injector dropped")
	}
	if NewInjector(nil, "x") != nil {
		t.Fatal("NewInjector(nil) != nil")
	}
}

func TestActive(t *testing.T) {
	cases := []struct {
		plan *Plan
		want bool
	}{
		{&Plan{}, false},
		{&Plan{Seed: 4, Crashes: []Crash{{Machine: "src", At: Duration(time.Second)}}}, false},
		{&Plan{DropProb: 0.01}, true},
		{&Plan{Bursts: []Burst{{Window: Window{End: Duration(time.Second)}, DropProb: 1}}}, true},
		{&Plan{Partitions: []Window{{End: Duration(time.Second)}}}, true},
	}
	for i, c := range cases {
		if got := NewInjector(c.plan, "").Active(); got != c.want {
			t.Errorf("case %d: Active() = %v, want %v", i, got, c.want)
		}
	}
}
