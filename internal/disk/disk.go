// Package disk models a machine's local paging disk: a single arm
// (transfers are serialized) with positioning latency and a byte
// transfer rate. The simulator keeps page *contents* in vm.Segment, so
// the disk is purely a timing and accounting device — exactly the role
// it plays in the paper's measurements, where a local disk page access
// costs ≈40.8 ms including fault overheads.
package disk

import (
	"time"

	"accentmig/internal/sim"
)

// Config sets the disk's performance envelope. The zero value selects
// defaults calibrated to the paper's Perq-era hardware.
type Config struct {
	// Seek is the per-operation positioning time (seek + rotational).
	Seek time.Duration
	// BytesPerSecond is the media transfer rate.
	BytesPerSecond int
}

func (c Config) withDefaults() Config {
	if c.Seek == 0 {
		c.Seek = 30 * time.Millisecond
	}
	if c.BytesPerSecond == 0 {
		c.BytesPerSecond = 500 << 10 // 500 KB/s
	}
	return c
}

// Disk is one machine's paging disk.
type Disk struct {
	cfg Config
	arm *sim.Resource

	reads      uint64
	writes     uint64
	bytesRead  uint64
	bytesWrite uint64
}

// New returns a disk attached to kernel k.
func New(k *sim.Kernel, name string, cfg Config) *Disk {
	return &Disk{
		cfg: cfg.withDefaults(),
		arm: sim.NewResource(k, name+".arm", 1),
	}
}

// xferTime is positioning plus media transfer for n bytes.
func (d *Disk) xferTime(n int) time.Duration {
	media := time.Duration(n) * time.Second / time.Duration(d.cfg.BytesPerSecond)
	return d.cfg.Seek + media
}

// Read blocks p for one read of n bytes. Demand reads are admitted at
// high priority so page-ins never starve behind a backlog of lazy
// write-backs.
func (d *Disk) Read(p *sim.Proc, n int) {
	d.arm.AcquireHigh(p)
	p.Sleep(d.xferTime(n))
	d.arm.Release()
	d.reads++
	d.bytesRead += uint64(n)
}

// Write blocks p for one write of n bytes.
func (d *Disk) Write(p *sim.Proc, n int) {
	d.arm.Acquire(p)
	p.Sleep(d.xferTime(n))
	d.arm.Release()
	d.writes++
	d.bytesWrite += uint64(n)
}

// WriteAsync queues a background write of n bytes (page write-back)
// without blocking the caller. The write still serializes on the arm.
func (d *Disk) WriteAsync(k *sim.Kernel, n int) {
	k.Go("disk.writeback", func(p *sim.Proc) {
		d.Write(p, n)
	})
}

// Reads reports completed read operations.
func (d *Disk) Reads() uint64 { return d.reads }

// Writes reports completed write operations.
func (d *Disk) Writes() uint64 { return d.writes }

// BytesRead reports total bytes read.
func (d *Disk) BytesRead() uint64 { return d.bytesRead }

// BytesWritten reports total bytes written.
func (d *Disk) BytesWritten() uint64 { return d.bytesWrite }

// BusyTime reports accumulated arm busy time.
func (d *Disk) BusyTime() time.Duration { return d.arm.BusyTime() }
