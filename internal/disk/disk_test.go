package disk

import (
	"testing"
	"time"

	"accentmig/internal/sim"
)

func TestReadTiming(t *testing.T) {
	k := sim.New()
	d := New(k, "d0", Config{Seek: 30 * time.Millisecond, BytesPerSecond: 512000})
	var done time.Duration
	k.Go("reader", func(p *sim.Proc) {
		d.Read(p, 512)
		done = p.Now()
	})
	k.Run()
	want := 30*time.Millisecond + time.Millisecond // 512B at 512KB/s = 1ms
	if done != want {
		t.Errorf("read finished at %v, want %v", done, want)
	}
	if d.Reads() != 1 || d.BytesRead() != 512 {
		t.Errorf("stats: reads=%d bytes=%d", d.Reads(), d.BytesRead())
	}
}

func TestArmSerializes(t *testing.T) {
	k := sim.New()
	d := New(k, "d0", Config{Seek: 10 * time.Millisecond, BytesPerSecond: 1 << 20})
	var finish []time.Duration
	for i := 0; i < 3; i++ {
		k.Go("r", func(p *sim.Proc) {
			d.Read(p, 0)
			finish = append(finish, p.Now())
		})
	}
	k.Run()
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
}

func TestWriteAsyncDoesNotBlock(t *testing.T) {
	k := sim.New()
	d := New(k, "d0", Config{Seek: 50 * time.Millisecond, BytesPerSecond: 1 << 20})
	var callerDone time.Duration
	k.Go("caller", func(p *sim.Proc) {
		d.WriteAsync(k, 512)
		callerDone = p.Now()
	})
	end := k.Run()
	if callerDone != 0 {
		t.Errorf("caller blocked until %v", callerDone)
	}
	if end < 50*time.Millisecond {
		t.Errorf("write-back never happened (end %v)", end)
	}
	if d.Writes() != 1 {
		t.Errorf("Writes = %d", d.Writes())
	}
}

func TestDefaults(t *testing.T) {
	k := sim.New()
	d := New(k, "d0", Config{})
	if d.cfg.Seek == 0 || d.cfg.BytesPerSecond == 0 {
		t.Error("defaults not applied")
	}
}

func TestBusyTimeAccounting(t *testing.T) {
	k := sim.New()
	d := New(k, "d0", Config{Seek: 20 * time.Millisecond, BytesPerSecond: 1 << 20})
	k.Go("w", func(p *sim.Proc) {
		d.Write(p, 0)
		d.Write(p, 0)
	})
	k.Run()
	if d.BusyTime() != 40*time.Millisecond {
		t.Errorf("BusyTime = %v, want 40ms", d.BusyTime())
	}
}

func TestReadPreemptsWriteBacklog(t *testing.T) {
	// Queue many background writes, then issue a demand read: it must
	// complete after at most one in-flight write, not the whole backlog.
	k := sim.New()
	d := New(k, "d0", Config{Seek: 30 * time.Millisecond, BytesPerSecond: 1 << 20})
	for i := 0; i < 50; i++ {
		d.WriteAsync(k, 512)
	}
	var readDone time.Duration
	k.Go("reader", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		d.Read(p, 512)
		readDone = p.Now()
	})
	k.Run()
	if readDone > 100*time.Millisecond {
		t.Errorf("demand read finished at %v behind the write backlog", readDone)
	}
	if d.Writes() != 50 {
		t.Errorf("writes = %d", d.Writes())
	}
}
