package netmsg

import (
	"testing"
	"time"

	"accentmig/internal/imag"
	"accentmig/internal/ipc"
	"accentmig/internal/netlink"
	"accentmig/internal/sim"
)

// TestReliableSingleFragmentSurvivesLoss pins the control-plane fix:
// before the reliable path, a dropped single-fragment message (an ack,
// a read request) silently vanished and wedged whoever was waiting on
// it. With ack/retransmit active on lossy links, every small message
// eventually arrives.
func TestReliableSingleFragmentSurvivesLoss(t *testing.T) {
	k := sim.New()
	a, b, _ := pair(k, netlink.Config{DropProb: 0.4, DropSeed: 7})
	dst := b.sys.AllocPort("svc")
	a.srv.AddRoute(dst.ID, "B")
	const n = 10
	got := 0
	k.Go("server", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			b.sys.Receive(p, dst)
			got++
		}
	})
	k.Go("client", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			if err := a.sys.Send(p, &ipc.Message{Op: 5, To: dst.ID, BodyBytes: 8}); err != nil {
				t.Errorf("Send %d: %v", i, err)
			}
		}
	})
	k.Run()
	if got != n {
		t.Fatalf("delivered %d of %d single-fragment messages on a 40%%-loss link", got, n)
	}
	st := a.srv.Stats()
	if st.Retransmits == 0 {
		t.Error("no retransmits recorded despite 40% loss")
	}
	if st.AckFrames == 0 {
		t.Error("no acknowledgement frames recorded")
	}
	if st.BackoffTime == 0 {
		t.Error("no backoff time accumulated")
	}
}

// TestDeadPeerNackUnblocksCaller: when every retransmit of a message is
// lost, the sender declares the peer dead and synthesizes a local
// OpSendFailed to the message's reply port, so a blocked caller gets a
// cause instead of waiting out its own timeout.
func TestDeadPeerNackUnblocksCaller(t *testing.T) {
	k := sim.New()
	a, b, _ := pair(k, netlink.Config{DropProb: 1.0, DropSeed: 3})
	dst := b.sys.AllocPort("svc")
	a.srv.AddRoute(dst.ID, "B")
	reply := a.sys.AllocPort("reply")
	var nack *ipc.Message
	k.Go("client", func(p *sim.Proc) {
		a.sys.Send(p, &ipc.Message{Op: 9, To: dst.ID, ReplyTo: reply.ID, BodyBytes: 8})
		m, ok := a.sys.ReceiveTimeout(p, reply, time.Minute)
		if !ok {
			t.Error("no nack arrived within a minute of the dead-peer declaration")
			return
		}
		nack = m
	})
	k.Run()
	if nack == nil {
		return
	}
	if nack.Op != ipc.OpSendFailed {
		t.Fatalf("nack op = %#x, want OpSendFailed", nack.Op)
	}
	sf, ok := nack.Body.(*ipc.SendFailure)
	if !ok {
		t.Fatalf("nack body = %T, want *ipc.SendFailure", nack.Body)
	}
	if sf.To != dst.ID || sf.Op != 9 {
		t.Errorf("SendFailure = %+v, want To=%d Op=9", sf, dst.ID)
	}
	st := a.srv.Stats()
	if st.DeadPeers == 0 {
		t.Error("no dead-peer declaration counted")
	}
	if st.Lost != 1 {
		t.Errorf("Lost = %d, want 1", st.Lost)
	}
}

// TestCrashDeadLettersBackerRequests: Crash withdraws the backing port,
// so inbound read requests dead-letter at the crashed host and the
// faulter hears nothing — recovery is the remote pager's retry budget,
// not a nack (the host is "down", it cannot answer).
func TestCrashDeadLettersBackerRequests(t *testing.T) {
	k := sim.New()
	a, b, _ := pair(k, netlink.Config{})
	b.srv.AddRoute(a.srv.BackingPort(), "A")
	a.srv.Crash()
	reply := b.sys.AllocPort("reply")
	answered := false
	k.Go("faulter", func(p *sim.Proc) {
		b.sys.Send(p, &ipc.Message{
			Op:           imag.OpReadRequest,
			To:           a.srv.BackingPort(),
			ReplyTo:      reply.ID,
			Body:         &imag.ReadRequest{SegID: 1, PageIdx: 0},
			BodyBytes:    imag.ReadRequestBytes,
			FaultSupport: true,
		})
		_, answered = b.sys.ReceiveTimeout(p, reply, 30*time.Second)
	})
	k.Run()
	if answered {
		t.Error("crashed backer answered a read request")
	}
	if a.srv.Stats().DeadLetters == 0 {
		t.Error("request to a crashed backer was not dead-lettered")
	}
}

// TestBackerRejectsUnknownSegment: a live backer that no longer holds
// (or never held) the requested segment replies OpReadError instead of
// staying silent, so the faulter surfaces a typed error immediately
// rather than burning its whole retry budget.
func TestBackerRejectsUnknownSegment(t *testing.T) {
	k := sim.New()
	a, b, _ := pair(k, netlink.Config{})
	b.srv.AddRoute(a.srv.BackingPort(), "A")
	var rep *ipc.Message
	k.Go("faulter", func(p *sim.Proc) {
		r, err := b.sys.Call(p, &ipc.Message{
			Op:           imag.OpReadRequest,
			To:           a.srv.BackingPort(),
			Body:         &imag.ReadRequest{SegID: 424242, PageIdx: 0},
			BodyBytes:    imag.ReadRequestBytes,
			FaultSupport: true,
		})
		if err != nil {
			t.Errorf("Call: %v", err)
			return
		}
		rep = r
	})
	k.Run()
	if rep == nil {
		t.Fatal("no reply")
	}
	if rep.Op != imag.OpReadError {
		t.Fatalf("reply op = %#x, want OpReadError", rep.Op)
	}
	re, ok := rep.Body.(*imag.ReadError)
	if !ok {
		t.Fatalf("reply body = %T, want *imag.ReadError", rep.Body)
	}
	if re.SegID != 424242 || re.Reason != "segment dead" {
		t.Errorf("ReadError = %+v", re)
	}
}
