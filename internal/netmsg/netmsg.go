// Package netmsg implements the NetMsgServer of §2.4: the user-level
// server that extends IPC transparently across machine boundaries. It
// installs itself as the IPC router for its machine, forwards messages
// to peers with fragmentation costs, learns return routes from the
// traffic it carries, and — its copy-on-reference trick — may cache the
// RealMem portions of a passing message and substitute IOUs, becoming
// the backer for that data.
package netmsg

import (
	"fmt"
	"time"

	"accentmig/internal/imag"
	"accentmig/internal/ipc"
	"accentmig/internal/metrics"
	"accentmig/internal/netlink"
	"accentmig/internal/obs"
	"accentmig/internal/sim"
	"accentmig/internal/vm"
	"accentmig/internal/wire"
)

// Config sets the server's cost model and caching policy.
type Config struct {
	// FragBytes is the network fragmentation unit.
	FragBytes int
	// FragCPU is the per-fragment handling cost on each side.
	FragCPU time.Duration
	// SmallCPU is the handling cost for small control messages (at or
	// below SmallBytes on the wire).
	SmallCPU time.Duration
	// SmallBytes is the control-message size threshold.
	SmallBytes int
	// CachePerPageCPU is the cost of absorbing one page into the IOU
	// cache when the server elects to become a backer.
	CachePerPageCPU time.Duration
	// ServeCPU is the backer's cost to service one read request beyond
	// the IPC costs.
	ServeCPU time.Duration
	// DisableIOUCache turns off the caching behaviour (it is on by
	// default); senders can also veto per message (NoIOUs) or per
	// attachment (Copy).
	DisableIOUCache bool
	// CacheMinPages is the server's own-initiative threshold (§2.4): an
	// attachment smaller than this many pages is cheaper to ship than
	// to back, so it passes through physically. Default 4.
	CacheMinPages int
	// FrameOverhead is per-fragment wire framing bytes.
	FrameOverhead int
	// FragHeadroom is extra per-fragment capacity for protocol headers,
	// so a one-page payload plus its headers still fits one fragment.
	FragHeadroom int
	// Window is how many fragments of a multi-fragment transfer may be
	// in flight at once. 0 or 1 reproduces the Accent protocol's
	// effective stop-and-wait behaviour (the paper-faithful default,
	// byte-identical to the pre-window transport); larger values enable
	// the pipelined sliding-window mode, where each burst of up to
	// Window fragments overlaps sender CPU, wire, and receiver CPU and
	// is confirmed by one cumulative + selective ack frame.
	Window int

	// Reliable-delivery parameters. They engage only on links that can
	// drop frames (link.MayDrop()); on reliable links the transport
	// behaves — and costs — exactly as it did before they existed.

	// AckBytes is the payload size of an acknowledgement frame.
	AckBytes int
	// RetransmitBackoff is the initial wait before resending an
	// unacknowledged frame; it doubles per attempt up to MaxBackoff.
	RetransmitBackoff time.Duration
	// MaxBackoff caps the exponential backoff.
	MaxBackoff time.Duration
	// MaxAttempts is how many times a frame is sent before the peer is
	// declared dead. Default 10.
	MaxAttempts int
}

func (c Config) withDefaults() Config {
	if c.FragBytes == 0 {
		c.FragBytes = 512
	}
	if c.FragCPU == 0 {
		c.FragCPU = 13 * time.Millisecond
	}
	if c.SmallCPU == 0 {
		c.SmallCPU = 3 * time.Millisecond
	}
	if c.SmallBytes == 0 {
		c.SmallBytes = 256
	}
	if c.CachePerPageCPU == 0 {
		c.CachePerPageCPU = 20 * time.Microsecond
	}
	if c.ServeCPU == 0 {
		c.ServeCPU = 3 * time.Millisecond
	}
	if c.FrameOverhead == 0 {
		c.FrameOverhead = 32
	}
	if c.CacheMinPages == 0 {
		c.CacheMinPages = 4
	}
	if c.FragHeadroom == 0 {
		c.FragHeadroom = 128
	}
	if c.AckBytes == 0 {
		c.AckBytes = 32
	}
	if c.RetransmitBackoff == 0 {
		c.RetransmitBackoff = 200 * time.Millisecond
	}
	if c.MaxBackoff == 0 {
		c.MaxBackoff = 2 * time.Second
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 10
	}
	return c
}

// FragUnit is the fragmentation unit: FragBytes of payload plus
// FragHeadroom of protocol headers per fragment.
func (c Config) FragUnit() int { return c.FragBytes + c.FragHeadroom }

// FragsFor reports how many fragments a message of n wire bytes
// occupies (always at least one). It delegates to wire.FragCount so
// the transport's fragment math and the frame encoder share one unit
// and cannot drift.
func (c Config) FragsFor(n int) int {
	return wire.FragCount(n, c.FragBytes, c.FragHeadroom)
}

// WillAbsorb reports whether forward would absorb a data attachment
// with the given Copy flag and page count from a message with the given
// NoIOUs flag — the §2.4 own-initiative caching decision, exposed so
// protocol layers (the dedup manifest) can predict which attachments
// will physically ship. It must mirror forward's test exactly.
func (c Config) WillAbsorb(copyFlag, noIOUs bool, pages int) bool {
	c = c.withDefaults()
	return !c.DisableIOUCache && !noIOUs && !copyFlag && pages >= c.CacheMinPages
}

// Stats counts server activity.
type Stats struct {
	Forwarded   uint64 // messages sent to peers
	Delivered   uint64 // messages received from peers and delivered
	DeadLetters uint64 // inbound messages with no local port or route
	CachedPages uint64 // pages absorbed into the IOU cache
	Served      uint64 // read requests answered from the cache
	HashServed  uint64 // content-addressed reads answered from the index
	Retransmits uint64 // frames resent after injected loss
	Lost        uint64 // messages abandoned after the peer was declared dead

	// Reliable-transport counters (lossy links only).
	AckFrames       uint64        // acknowledgement frames sent by the peer
	Duplicates      uint64        // retransmitted frames the peer had already seen
	DeadPeers       uint64        // retransmit budgets exhausted
	RetransmitBytes uint64        // wire bytes consumed by resends
	BackoffTime     time.Duration // total virtual time spent waiting to resend

	// Sliding-window transport counters (Window > 1 only).
	Windowed     uint64 // multi-fragment messages sent through the windowed path
	WindowRounds uint64 // in-flight bursts (window rounds) sent

	// Robustness counters.
	CreditedPages uint64 // pages of aborted transfers credited to the peer's ledger
	CorruptPages  uint64 // delivered payload pages bit-flipped by the failure model
}

// Server is one machine's NetMsgServer.
type Server struct {
	k    *sim.Kernel
	name string
	cpu  *sim.Resource
	sys  *ipc.System
	cfg  Config

	peers  map[string]*peerLink
	routes map[ipc.PortID]string // remote port → peer name
	// outbound is a token per routed message; fg and bg hold the
	// messages themselves in two FIFO classes. The forwarder drains
	// every foreground message before any background one, so streamed
	// prefetch never head-of-line-blocks a demand fault reply.
	outbound *sim.Queue[struct{}]
	fg, bg   []*ipc.Message

	store    *imag.Store
	backPort *ipc.Port

	// index is the machine's content index (nil when the dedup store is
	// disabled). The server registers every page it absorbs, making its
	// IOU cache — the pages a migrated-away process left behind —
	// discoverable by hash, and answers OpHashRead against it.
	index      *vm.ContentIndex
	hashPerCPU time.Duration

	// ledger retains page content from migration transfers to THIS
	// machine that aborted partway (nil unless resume is configured).
	// Senders credit it with the whole pages of every fragment the
	// peer acknowledged before the transfer died.
	ledger   *vm.DeliveryLedger
	ledgerPS int

	rec   *metrics.Recorder
	stats Stats
}

// migrationPayload is implemented by message bodies that carry a
// migration's memory image (core.RIMASBody), naming the migrating
// process so partial deliveries can be credited to its ledger entry.
type migrationPayload interface{ MigrationProc() string }

type peerLink struct {
	link *netlink.Link
	peer *Server
	// win holds the lazily spawned pipeline-stage helper processes for
	// windowed transfers; nil until the first Window > 1 burst, so
	// stop-and-wait runs schedule exactly the events they always did.
	win *winHelpers
}

// New creates the server and installs it as the machine's IPC router.
// Call Start to launch its service processes.
func New(k *sim.Kernel, name string, cpu *sim.Resource, sys *ipc.System, cfg Config) *Server {
	s := &Server{
		k:        k,
		name:     name,
		cpu:      cpu,
		sys:      sys,
		cfg:      cfg.withDefaults(),
		peers:    make(map[string]*peerLink),
		routes:   make(map[ipc.PortID]string),
		outbound: sim.NewQueue[struct{}](k),
		store:    imag.NewStore(),
	}
	s.backPort = sys.AllocPort(name + ".netmsg.backer")
	sys.SetRouter(s.route)
	return s
}

// Connect attaches a bidirectional link to a peer server. Both sides
// must call Connect (or use ConnectPair).
func (s *Server) Connect(peer *Server, link *netlink.Link) {
	s.peers[peer.name] = &peerLink{link: link, peer: peer}
}

// ConnectPair wires two servers over one shared link.
func ConnectPair(a, b *Server, link *netlink.Link) {
	a.Connect(b, link)
	b.Connect(a, link)
}

// AddRoute teaches the server that a port lives at (or via) a peer.
func (s *Server) AddRoute(port ipc.PortID, peer string) {
	s.routes[port] = peer
}

// BackingPort is the port backing this server's cached IOUs.
func (s *Server) BackingPort() ipc.PortID { return s.backPort.ID }

// Store exposes the IOU cache for inspection (residual-dependency
// accounting in experiments).
func (s *Server) Store() *imag.Store { return s.store }

// SetRecorder directs metrics to rec (may be nil).
func (s *Server) SetRecorder(rec *metrics.Recorder) { s.rec = rec }

// SetContentIndex attaches the machine's content index; absorbed pages
// are registered in it (charging hashPerPageCPU each) and OpHashRead
// requests are answered from it. A nil index keeps the server's paths
// byte-identical to a build without the dedup store.
func (s *Server) SetContentIndex(ix *vm.ContentIndex, hashPerPageCPU time.Duration) {
	s.index = ix
	s.hashPerCPU = hashPerPageCPU
}

// SetLedger attaches the machine's delivery ledger (resumable
// migration). pageSize is the page stride used to slice aborted
// transfers into creditable pages. A nil ledger keeps every transport
// path byte-identical to a build without resume support.
func (s *Server) SetLedger(l *vm.DeliveryLedger, pageSize int) {
	s.ledger = l
	s.ledgerPS = pageSize
}

// Ledger exposes the delivery ledger (nil unless resume is on).
func (s *Server) Ledger() *vm.DeliveryLedger { return s.ledger }

// Stats returns a copy of the counters.
func (s *Server) Stats() Stats { return s.stats }

// Start launches the forwarder and backer service processes.
func (s *Server) Start() {
	s.k.Go(s.name+".netmsg.fwd", s.forwarder)
	s.k.Go(s.name+".netmsg.backer", s.backer)
}

// route is the IPC router hook: it claims messages addressed to ports
// this server knows to be remote.
func (s *Server) route(m *ipc.Message) bool {
	if _, ok := s.routes[m.To]; !ok {
		return false
	}
	if m.Background {
		s.bg = append(s.bg, m)
	} else {
		s.fg = append(s.fg, m)
	}
	s.outbound.Push(struct{}{})
	return true
}

// forwarder drains the outbound queue and pushes each message across
// the wire to its peer, stop-and-wait per fragment (the Accent network
// protocol's effective behaviour; its buffering was too small to keep
// many fragments in flight).
func (s *Server) forwarder(p *sim.Proc) {
	for {
		s.outbound.Pop(p)
		var m *ipc.Message
		if len(s.fg) > 0 {
			m = s.fg[0]
			s.fg = s.fg[1:]
			if len(s.fg) == 0 {
				s.fg = nil // let the drained backlog be collected
			}
		} else {
			m = s.bg[0]
			s.bg = s.bg[1:]
			if len(s.bg) == 0 {
				s.bg = nil
			}
		}
		peerName := s.routes[m.To]
		pl, ok := s.peers[peerName]
		if !ok {
			s.stats.DeadLetters++
			continue
		}
		s.forward(p, m, pl)
	}
}

func (s *Server) forward(p *sim.Proc, m *ipc.Message, pl *peerLink) {
	// Copy-on-reference caching: absorb eligible data attachments and
	// pass IOUs in their place (§2.4, §3.1).
	if !s.cfg.DisableIOUCache && !m.NoIOUs {
		for i, a := range m.Mem {
			if a.Kind != ipc.AttachData || a.Copy || a.PageCount() < s.cfg.CacheMinPages {
				continue
			}
			m.Mem[i] = s.absorb(p, a)
		}
	}

	// Account physically shipped data pages (Table 4-3's transferred
	// fraction).
	if s.rec != nil || s.k.Tracing() {
		dataPages, dataBytes := 0, 0
		for _, a := range m.Mem {
			if a.Kind == ipc.AttachData {
				dataPages += a.PageCount()
				dataBytes += a.DataBytes()
			}
		}
		if dataPages > 0 {
			if s.rec != nil {
				s.rec.Inc("pages.shipped.data", uint64(dataPages))
			}
			if s.k.Tracing() {
				s.k.Emit(obs.Event{
					Kind:    obs.PageTransfer,
					Machine: s.name,
					Proc:    p.Name(),
					Name:    "data",
					Bytes:   dataBytes,
					Op:      m.Op,
				})
			}
		}
	}

	bytes := m.WireBytes()
	unit := s.cfg.FragUnit()
	frags := s.cfg.FragsFor(bytes)
	var handling time.Duration

	if frags == 1 {
		// Control messages are cheaper to process than data-bearing
		// ones.
		perSide := s.cfg.FragCPU
		if bytes <= s.cfg.SmallBytes {
			perSide = s.cfg.SmallCPU
		}
		if pl.link.MayDrop() {
			// Lossy link: sequence-numbered ack/retransmit datagram. A
			// lost control message now produces a retransmit (and
			// eventually a dead-peer nack) instead of wedging the
			// receiver forever.
			delivered, h := s.sendReliable(p, pl, m, bytes, perSide)
			handling += h
			if !delivered {
				s.stats.Lost++
				s.account(m, handling)
				s.nack(p, m)
				return
			}
		} else {
			s.cpu.UseHigh(p, perSide)
			handling += perSide
			pl.link.Transmit(p, bytes+s.cfg.FrameOverhead, m.FaultSupport)
			pl.peer.cpu.UseHigh(p, perSide)
			handling += perSide
		}
	} else if s.cfg.Window > 1 {
		// Pipelined sliding-window transfer (see window.go): bursts of
		// up to Window fragments in flight, cumulative + selective acks,
		// same dead-peer semantics as stop-and-wait.
		if !s.forwardWindowed(p, m, pl, bytes, frags, &handling) {
			return
		}
	} else {
		// Multi-fragment transfer: stop-and-wait per-fragment ARQ makes
		// it reliable at the cost of retransmission time and bytes. A
		// fragment that exhausts its retransmit budget declares the
		// peer dead and abandons the whole transfer.
		rem := bytes
		for f := 0; f < frags; f++ {
			n := unit
			if rem < n {
				n = rem
			}
			rem -= n
			sent := false
			backoff := s.cfg.RetransmitBackoff
			for attempt := 0; attempt < s.cfg.MaxAttempts; attempt++ {
				if attempt > 0 {
					backoff = s.backoffWait(p, backoff, n+s.cfg.FrameOverhead, m.Op)
				}
				s.cpu.UseHigh(p, s.cfg.FragCPU)
				handling += s.cfg.FragCPU
				if pl.link.Transmit(p, n+s.cfg.FrameOverhead, m.FaultSupport) {
					sent = true
					break
				}
			}
			if !sent {
				s.stats.DeadPeers++
				s.stats.Lost++
				// Fragments 0..f-1 were delivered in order before this one
				// exhausted its budget: credit their whole pages to the
				// peer's ledger so a retry ships only the tail.
				deliveredBytes := f * unit
				s.creditPartial(p, m, pl, func(lo, hi int) bool { return hi <= deliveredBytes })
				s.account(m, handling)
				s.nack(p, m)
				return
			}
			pl.peer.cpu.UseHigh(p, s.cfg.FragCPU)
			handling += s.cfg.FragCPU
		}
	}
	s.stats.Forwarded++
	s.account(m, handling)

	// The message crosses the wire as bytes: encode and hand the peer a
	// freshly decoded copy, guaranteeing context messages are
	// self-contained (§3.1) and that machines never share page buffers.
	decoded, err := wire.Transfer(m)
	if err != nil {
		// A codec failure is a protocol bug, not a runtime condition.
		panic(fmt.Sprintf("netmsg %s: wire transfer of op %#x: %v", s.name, m.Op, err))
	}
	if pl.link.MayCorrupt() {
		s.corruptDelivered(decoded, pl)
	}
	pl.peer.deliver(p, decoded, s.name)
}

// account records one logical message's handling cost (both sides).
func (s *Server) account(m *ipc.Message, cpu time.Duration) {
	if s.rec != nil {
		s.rec.AddMessage(cpu)
	}
}

// backoffWait charges one retransmission: it sleeps the current
// backoff, records the resend in stats/metrics/trace, and returns the
// next (doubled, capped) backoff.
func (s *Server) backoffWait(p *sim.Proc, backoff time.Duration, frame int, op int) time.Duration {
	p.Sleep(backoff)
	s.stats.BackoffTime += backoff
	s.stats.Retransmits++
	s.stats.RetransmitBytes += uint64(frame)
	if s.rec != nil {
		s.rec.Inc("net.retransmit.frames", 1)
		s.rec.Inc("net.retransmit.bytes", uint64(frame))
	}
	if s.k.Tracing() {
		s.k.Emit(obs.Event{
			Kind:    obs.NetRetransmit,
			Machine: s.name,
			Proc:    p.Name(),
			Bytes:   frame,
			Dur:     backoff,
			Op:      op,
		})
	}
	backoff *= 2
	if backoff > s.cfg.MaxBackoff {
		backoff = s.cfg.MaxBackoff
	}
	return backoff
}

// sendReliable pushes a single-fragment message across a lossy link as
// a sequence-numbered datagram: send, await ack, retransmit with
// capped exponential backoff, and declare the peer dead after
// MaxAttempts sends. It reports whether the message reached the peer;
// handling is the CPU charged. A duplicate (data arrived but its ack
// was lost) costs the peer only cheap recognition by sequence number.
func (s *Server) sendReliable(p *sim.Proc, pl *peerLink, m *ipc.Message, bytes int, perSide time.Duration) (bool, time.Duration) {
	var handling time.Duration
	frame := bytes + s.cfg.FrameOverhead
	backoff := s.cfg.RetransmitBackoff
	delivered := false
	for attempt := 0; attempt < s.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			backoff = s.backoffWait(p, backoff, frame, m.Op)
		}
		s.cpu.UseHigh(p, perSide)
		handling += perSide
		if !pl.link.Transmit(p, frame, m.FaultSupport) {
			continue
		}
		if !delivered {
			pl.peer.cpu.UseHigh(p, perSide)
			handling += perSide
			delivered = true
		} else {
			s.stats.Duplicates++
			pl.peer.cpu.UseHigh(p, s.cfg.SmallCPU)
			handling += s.cfg.SmallCPU
		}
		s.stats.AckFrames++
		if pl.link.Transmit(p, s.cfg.AckBytes+s.cfg.FrameOverhead, m.FaultSupport) {
			return true, handling
		}
	}
	if delivered {
		// The data arrived; only acks were lost. The peer holds the
		// message, so deliver it — the sender-side Lost/nack path is
		// reserved for messages that never got through.
		return true, handling
	}
	s.stats.DeadPeers++
	return false, handling
}

// nack synthesizes a local OpSendFailed to the abandoned message's
// reply port after a dead-peer declaration, so a caller blocked on
// that port unblocks with a cause instead of waiting out its timeout.
// Only a locally present reply port is notified; inbound dead letters
// on the peer are never nacked across the wire.
func (s *Server) nack(p *sim.Proc, m *ipc.Message) {
	if m.ReplyTo == 0 {
		return
	}
	if _, local := s.sys.Lookup(m.ReplyTo); !local {
		return
	}
	err := s.sys.Send(p, &ipc.Message{
		Op:        ipc.OpSendFailed,
		To:        m.ReplyTo,
		Body:      &ipc.SendFailure{To: m.To, Op: m.Op, Reason: "peer unreachable"},
		BodyBytes: ipc.SendFailureBytes,
	})
	if err != nil {
		s.stats.DeadLetters++
	}
}

// creditPartial runs after a multi-fragment transfer is abandoned: it
// walks the message's wire layout (the same accounting WireBytes
// prices) and credits every payload page whose full byte span —
// page header plus image — rode a fragment the peer acknowledged, so
// the next attempt's manifest exchange can elide it. covered reports
// whether the encoded byte span [lo, hi) reached the peer. Compressed
// attachments are skipped: their pages have no independent byte spans
// on the wire. A page that the failure model corrupts in flight is
// not credited — the receiver would retain bytes whose hash can never
// match a manifest entry.
func (s *Server) creditPartial(p *sim.Proc, m *ipc.Message, pl *peerLink, covered func(lo, hi int) bool) {
	led := pl.peer.ledger
	if led == nil {
		return
	}
	body, ok := m.Body.(migrationPayload)
	if !ok {
		return
	}
	proc := body.MigrationProc()
	ps := pl.peer.ledgerPS
	mayCorrupt := pl.link.MayCorrupt()
	credited := uint64(0)
	off := 64 + m.BodyBytes // msgHeaderBytes: the header and body lead the frame
	for _, a := range m.Mem {
		switch a.Kind {
		case ipc.AttachData:
			off += 24 + len(a.Sums)*8 // dataDescBytes + priced checksums
			if a.CompBytes > 0 {
				off += a.PageCount()*8 + a.CompBytes
				continue
			}
			for _, run := range a.Runs {
				for i := 0; i < run.Count; i++ {
					pg := run.Page(i, ps)
					start := off
					off += 8 + len(pg) // pageImageHeader + image
					if !covered(start, off) {
						continue
					}
					if mayCorrupt && pl.link.CorruptPage(s.k.Now()) {
						continue
					}
					if h, zero := vm.HashPage(pg, ps); !zero {
						led.Credit(proc, h, pg)
						credited++
					}
				}
			}
		case ipc.AttachIOU:
			off += 48 // iouDescBytes
		}
	}
	if credited > 0 {
		s.stats.CreditedPages += credited
		if s.rec != nil {
			s.rec.Inc("pages.credited", credited)
		}
		if s.k.Tracing() {
			s.k.Emit(obs.Event{
				Kind:    obs.PageTransfer,
				Machine: s.name,
				Proc:    p.Name(),
				Name:    "credit",
				Bytes:   int(credited) * ps,
				Op:      m.Op,
			})
		}
	}
}

// corruptDelivered applies the failure model's bit-flips to a freshly
// decoded inbound message: each integrity-protected payload page may
// arrive damaged (corruption the link CRC missed). The decoded copy
// owns its buffers, so flipping here can never touch the sender's
// rollback snapshot. Unprotected attachments are left alone — the
// corrupt fault models damage on the checksummed migration stream.
func (s *Server) corruptDelivered(m *ipc.Message, pl *peerLink) {
	ps := s.cfg.FragBytes
	for _, a := range m.Mem {
		if a.Kind != ipc.AttachData || len(a.Sums) == 0 {
			continue
		}
		for _, run := range a.Runs {
			for i := 0; i < run.Count; i++ {
				if !pl.link.CorruptPage(s.k.Now()) {
					continue
				}
				pg := run.Page(i, ps)
				if len(pg) > 0 {
					pg[0] ^= 0x80
					s.stats.CorruptPages++
					if s.rec != nil {
						s.rec.Inc("pages.corrupted", 1)
					}
				}
			}
		}
	}
}

// absorb moves a data attachment into the IOU cache and returns the
// replacement IOU attachment. Page indices in the store are relative to
// the attachment base.
func (s *Server) absorb(p *sim.Proc, a *ipc.MemAttachment) *ipc.MemAttachment {
	segID := imag.NextSegID()
	seg := s.store.AddSegment(segID, a.Size, s.cfg.FragBytes)
	// Run buffers are adopted whole — the cache aliases the attachment's
	// contiguous run data instead of copying page by page.
	for _, run := range a.Runs {
		seg.PutRun(run.Index, run.Count, run.Data)
	}
	pages := a.PageCount()
	s.cpu.UseHigh(p, time.Duration(pages)*s.cfg.CachePerPageCPU)
	s.stats.CachedPages += uint64(pages)
	if s.index != nil {
		// Register absorbed contents so a later migration (or a nearest-
		// holder fault from anywhere) can discover the pages this machine
		// now backs — they are the "surviving from a prior visit" case.
		ps := s.cfg.FragBytes
		for _, run := range a.Runs {
			for i := 0; i < run.Count; i++ {
				pg := run.Page(i, ps)
				if h, zero := vm.HashPage(pg, ps); !zero {
					s.index.Put(h, pg)
				}
			}
		}
		s.cpu.UseHigh(p, time.Duration(pages)*s.hashPerCPU)
	}
	return &ipc.MemAttachment{
		Kind:      ipc.AttachIOU,
		VA:        a.VA,
		Size:      a.Size,
		Collapsed: a.Collapsed,
		Resident:  a.Resident,
		SegID:     segID,
		SegOff:    0,
		SegSize:   a.Size,
		Backing:   s.backPort.ID,
	}
}

// deliver hands an inbound message to its local destination, learning
// return routes from the message on the way.
func (s *Server) deliver(p *sim.Proc, m *ipc.Message, from string) {
	s.learnRoute(m.ReplyTo, from)
	for _, a := range m.Mem {
		if a.Kind == ipc.AttachIOU {
			s.learnRoute(a.Backing, from)
		}
	}
	_, local := s.sys.Lookup(m.To)
	if err := s.sys.Send(p, m); err != nil {
		s.stats.DeadLetters++
		return
	}
	if local {
		s.stats.Delivered++
	}
	// Otherwise the send re-entered the router: pure transit, counted
	// by the onward Forwarded.
}

// learnRoute records that port is reachable via peer, unless the port
// is local here.
func (s *Server) learnRoute(port ipc.PortID, peer string) {
	if port == 0 {
		return
	}
	if _, local := s.sys.Lookup(port); local {
		return
	}
	s.routes[port] = peer
}

// backer services read requests against the IOU cache.
func (s *Server) backer(p *sim.Proc) {
	for {
		m := s.sys.Receive(p, s.backPort)
		switch m.Op {
		case imag.OpReadRequest:
			req, ok := m.Body.(*imag.ReadRequest)
			if !ok {
				continue
			}
			seg, live := s.store.Segment(req.SegID)
			var rep *imag.ReadReply
			if live {
				rep = seg.Serve(req)
			}
			if rep == nil {
				// Dead segment or page never cached: tell the faulter
				// its request can never succeed, so it surfaces a typed
				// error instead of retrying forever.
				reason := "segment dead"
				if live {
					reason = "page not held"
				}
				s.cpu.UseHigh(p, s.cfg.ServeCPU)
				s.replyErr(p, m, &imag.ReadError{
					SegID:   req.SegID,
					PageIdx: req.PageIdx,
					Reason:  reason,
				})
				continue
			}
			s.cpu.UseHigh(p, s.cfg.ServeCPU)
			s.stats.Served++
			if s.rec != nil {
				s.rec.Inc("pages.shipped.fault", uint64(rep.PageCount()))
			}
			if s.k.Tracing() {
				s.k.Emit(obs.Event{
					Kind:    obs.PageTransfer,
					Machine: s.name,
					Proc:    p.Name(),
					Name:    "fault",
					Bytes:   rep.Bytes(),
					Op:      imag.OpReadReply,
				})
			}
			if req.StreamTo != 0 {
				// The stream port lives wherever the reply port does;
				// routes are otherwise only learned from ReplyTo.
				if peer, ok := s.routes[m.ReplyTo]; ok {
					s.routes[ipc.PortID(req.StreamTo)] = peer
				}
				// Split reply: the demanded page returns alone at
				// demand priority — a one-page reply unstalls the
				// faulter fastest — and the prefetch run follows at
				// background priority, yielding the wire to any demand
				// traffic that arrives meanwhile.
				demand, rest := rep.Split()
				s.reply(p, m, imag.OpReadReply, demand, false)
				if rest != nil {
					// One page per reply: same wire cost as the batched
					// run, but a demand reply that arrives meanwhile
					// overtakes the stream after at most one page.
					for _, pr := range rest.PerPage() {
						if err := s.sys.Send(p, &ipc.Message{
							Op:           imag.OpReadReply,
							To:           ipc.PortID(req.StreamTo),
							Body:         pr,
							BodyBytes:    pr.Bytes(),
							FaultSupport: true,
							Background:   true,
						}); err != nil {
							s.stats.DeadLetters++
							break
						}
					}
				}
				continue
			}
			s.reply(p, m, imag.OpReadReply, rep, false)
		case imag.OpHashRead:
			req, ok := m.Body.(*imag.HashRead)
			if !ok {
				continue
			}
			s.cpu.UseHigh(p, s.cfg.ServeCPU)
			data, held := s.index.Lookup(req.Hash)
			if !held {
				s.replyErr(p, m, &imag.ReadError{
					SegID:   req.SegID,
					PageIdx: req.Page,
					Reason:  "content not held",
				})
				continue
			}
			s.stats.HashServed++
			if s.rec != nil {
				s.rec.Inc("pages.shipped.fault", 1)
				s.rec.Inc("pages.served.holder", 1)
			}
			if s.k.Tracing() {
				s.k.Emit(obs.Event{
					Kind:    obs.PageTransfer,
					Machine: s.name,
					Proc:    p.Name(),
					Name:    "fault",
					Bytes:   len(data),
					Op:      imag.OpReadReply,
				})
			}
			// The reply is a normal read reply stamped with the
			// requester's segment and page, so the faulter's install
			// path cannot tell content routing from origin backing.
			s.reply(p, m, imag.OpReadReply, &imag.ReadReply{
				SegID: req.SegID,
				Runs:  []vm.PageRun{{Index: req.Page, Count: 1, Data: data}},
			}, false)
		case imag.OpFlush:
			req, ok := m.Body.(*imag.FlushRequest)
			if !ok {
				continue
			}
			seg, ok := s.store.Segment(req.SegID)
			if !ok {
				continue
			}
			rep := seg.Flush(req.MaxPages)
			s.cpu.UseHigh(p, s.cfg.ServeCPU)
			s.reply(p, m, imag.OpFlushReply, rep, false)
		case imag.OpSegmentDeath:
			if d, ok := m.Body.(*imag.SegmentDeath); ok {
				s.store.Drop(d.SegID)
			}
		}
	}
}

// replyErr sends a negative read reply to the requester.
func (s *Server) replyErr(p *sim.Proc, req *ipc.Message, e *imag.ReadError) {
	if req.ReplyTo == 0 {
		return
	}
	err := s.sys.Send(p, &ipc.Message{
		Op:           imag.OpReadError,
		To:           req.ReplyTo,
		Body:         e,
		BodyBytes:    imag.ReadErrorBytes,
		FaultSupport: true,
	})
	if err != nil {
		s.stats.DeadLetters++
	}
}

func (s *Server) reply(p *sim.Proc, req *ipc.Message, op int, rep *imag.ReadReply, background bool) {
	if req.ReplyTo == 0 {
		return
	}
	err := s.sys.Send(p, &ipc.Message{
		Op:           op,
		To:           req.ReplyTo,
		Body:         rep,
		BodyBytes:    rep.Bytes(),
		FaultSupport: true,
		Background:   background,
	})
	if err != nil {
		s.stats.DeadLetters++
	}
}

// Crash simulates failure of this server's backing service (e.g. the
// host going down for everyone who still holds IOUs on it): the backing
// port is withdrawn, so inbound read requests dead-letter and remote
// faulters time out. Used by failure-injection tests and the residual-
// dependency experiments.
func (s *Server) Crash() {
	s.sys.RemovePort(s.backPort)
	// The retained-delivery ledger is kernel memory: it dies with the
	// machine, so a retry against a restarted host starts from zero.
	s.ledger.Clear()
}

// String identifies the server.
func (s *Server) String() string { return fmt.Sprintf("netmsg(%s)", s.name) }
