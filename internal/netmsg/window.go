// Sliding-window pipelined transfers (Config.Window > 1).
//
// The paper-faithful default is stop-and-wait: Accent's network code
// could not keep many fragments buffered, so every 512-byte fragment
// pays sender CPU + wire + latency + receiver CPU serially (§3.1, and
// the per-message handling costs of Table 4-1). This file implements
// what the protocol could have done with deeper buffering: keep up to
// Window fragments in flight so the three stages — sender CPU, wire,
// receiver CPU — overlap as a pipeline, with one cumulative +
// selective acknowledgement frame per in-flight burst.
//
// Timing for a burst is computed analytically by a three-stage
// pipeline recurrence over its fragments, then charged to the
// simulation as one batched occupancy per stage (helper processes hold
// the sender CPU, the wire, and the receiver CPU for the burst's
// aggregate busy time while the forwarder waits out the makespan).
// Per-fragment loss is still judged frame by frame, at each frame's
// projected arrival instant, so fault plans — loss windows, bursts,
// partitions — observe the same deterministic timeline a serialized
// send would give them. The result is a handful of scheduler events
// per burst instead of several per fragment: windowed transfers are
// cheaper for the DES to simulate than stop-and-wait ones, not dearer.
package netmsg

import (
	"time"

	"accentmig/internal/ipc"
	"accentmig/internal/obs"
	"accentmig/internal/sim"
)

// winFrag tracks one fragment of a windowed transfer.
type winFrag struct {
	n         int  // payload bytes
	off       int  // first payload byte of the message this fragment carries
	attempts  int  // times put on the wire
	delivered bool // reached the peer (possibly not yet acked)
}

// winJob is one stage's occupancy order for a burst: wait delay after
// the burst starts, then hold the stage's resource for hold.
type winJob struct {
	delay time.Duration
	hold  time.Duration
}

// winHelpers are the per-peer-link pipeline-stage processes. Each
// holds exactly one resource (sender CPU, wire, or receiver CPU), so
// opposite-direction windowed transfers can never deadlock the way a
// single process holding all three stages at once would.
type winHelpers struct {
	tx, wire, rx *sim.Queue[winJob]
	done         *sim.Queue[struct{}]
}

// helpers returns pl's stage processes, spawning them on first use.
func (s *Server) helpers(pl *peerLink) *winHelpers {
	if pl.win != nil {
		return pl.win
	}
	h := &winHelpers{
		tx:   sim.NewQueue[winJob](s.k),
		wire: sim.NewQueue[winJob](s.k),
		rx:   sim.NewQueue[winJob](s.k),
		done: sim.NewQueue[struct{}](s.k),
	}
	pl.win = h
	s.k.Go(s.name+".netmsg.win.tx", func(p *sim.Proc) {
		for {
			j := h.tx.Pop(p)
			if j.delay > 0 {
				p.Sleep(j.delay)
			}
			s.cpu.UseHigh(p, j.hold)
			h.done.Push(struct{}{})
		}
	})
	s.k.Go(s.name+".netmsg.win.wire", func(p *sim.Proc) {
		for {
			j := h.wire.Pop(p)
			if j.delay > 0 {
				p.Sleep(j.delay)
			}
			pl.link.Occupy(p, j.hold)
			h.done.Push(struct{}{})
		}
	})
	s.k.Go(s.name+".netmsg.win.rx", func(p *sim.Proc) {
		for {
			j := h.rx.Pop(p)
			if j.delay > 0 {
				p.Sleep(j.delay)
			}
			pl.peer.cpu.UseHigh(p, j.hold)
			h.done.Push(struct{}{})
		}
	})
	return h
}

// forwardWindowed pushes a multi-fragment message with up to Window
// fragments in flight. Each round sends the head of the pending list
// as one pipelined burst; the peer answers with a single cumulative +
// selective ack, and only fragments the ack reports missing are
// resent (a fragment that arrived twice because its ack was lost costs
// the peer cheap duplicate recognition, as in sendReliable). A
// fragment that exhausts MaxAttempts undelivered declares the peer
// dead and abandons the transfer, exactly like stop-and-wait. Reports
// whether the message got through; the caller delivers it.
func (s *Server) forwardWindowed(p *sim.Proc, m *ipc.Message, pl *peerLink, bytes, frags int, handling *time.Duration) bool {
	unit := s.cfg.FragUnit()
	pending := make([]*winFrag, frags)
	rem := bytes
	for f := range pending {
		n := unit
		if rem < n {
			n = rem
		}
		rem -= n
		pending[f] = &winFrag{n: n, off: f * unit}
	}
	s.stats.Windowed++
	backoff := s.cfg.RetransmitBackoff
	for len(pending) > 0 {
		allDelivered := true
		exhausted := false
		for _, f := range pending {
			if !f.delivered {
				allDelivered = false
			}
			if f.attempts >= s.cfg.MaxAttempts {
				exhausted = true
				if !f.delivered {
					s.stats.DeadPeers++
					s.stats.Lost++
					// Selective acks mean delivery may be non-contiguous:
					// fragments no longer pending were delivered and acked,
					// and pending ones carry per-fragment delivered flags.
					// Credit every page whose span avoids all undelivered
					// fragments.
					s.creditPartial(p, m, pl, func(lo, hi int) bool {
						for _, u := range pending {
							if !u.delivered && lo < u.off+u.n && u.off < hi {
								return false
							}
						}
						return true
					})
					s.account(m, *handling)
					s.nack(p, m)
					return false
				}
			}
		}
		if exhausted && allDelivered {
			// Every pending fragment reached the peer; only acks were
			// lost. The peer holds the data, so the message counts as
			// delivered (sendReliable's duplicate rule).
			return true
		}
		batch := pending
		if len(batch) > s.cfg.Window {
			batch = batch[:s.cfg.Window]
		}
		acked := s.sendWindow(p, pl, m, batch, handling)
		s.stats.WindowRounds++
		if acked {
			kept := pending[:0]
			for _, f := range pending {
				if !f.delivered {
					kept = append(kept, f)
				}
			}
			progress := len(kept) < len(pending)
			pending = kept
			if len(pending) == 0 {
				return true
			}
			if progress {
				backoff = s.cfg.RetransmitBackoff
				continue
			}
		}
		// No ack came back (or an ack reporting zero progress): wait out
		// one retransmission timeout before resending the window.
		p.Sleep(backoff)
		s.stats.BackoffTime += backoff
		backoff *= 2
		if backoff > s.cfg.MaxBackoff {
			backoff = s.cfg.MaxBackoff
		}
	}
	return true
}

// sendWindow transmits one burst of fragments as a three-stage
// pipeline and reports whether the peer's ack frame made it back.
//
// The recurrence: the sender emits fragment i at i*FragCPU; the frame
// starts crossing when both the sender has finished it and the wire is
// free; it lands latency after it leaves the wire; the receiver
// processes arrivals in order whenever its CPU is free. Stage busy
// times accumulate to txBusy / wireBusy / rxBusy and are charged as
// one occupancy each through the helper processes while the forwarder
// waits out the analytic makespan.
func (s *Server) sendWindow(p *sim.Proc, pl *peerLink, m *ipc.Message, batch []*winFrag, handling *time.Duration) bool {
	cs := s.cfg.FragCPU
	lat := pl.link.Latency()
	rate := time.Duration(pl.link.Rate())
	start := p.Now()

	txBusy := time.Duration(len(batch)) * cs
	var wireBusy, rxBusy, rxStart, rxFree time.Duration
	wireFree := cs // wire can first be claimed once fragment 0 is built
	resentFrames, resentBytes, totalBytes := 0, 0, 0
	for i, f := range batch {
		frame := f.n + s.cfg.FrameOverhead
		totalBytes += frame
		if f.attempts > 0 {
			s.stats.Retransmits++
			s.stats.RetransmitBytes += uint64(frame)
			resentFrames++
			resentBytes += frame
			if s.rec != nil {
				s.rec.Inc("net.retransmit.frames", 1)
				s.rec.Inc("net.retransmit.bytes", uint64(frame))
			}
		}
		f.attempts++
		w := time.Duration(frame) * time.Second / rate
		sendDone := time.Duration(i+1) * cs
		if sendDone > wireFree {
			wireFree = sendDone
		}
		wireFree += w
		wireBusy += w
		arrive := wireFree + lat
		if !pl.link.Judge(start+arrive, frame, m.FaultSupport) {
			continue
		}
		cost := cs
		if f.delivered {
			// Duplicate of an already-received fragment (its ack was
			// lost): recognized cheaply by sequence number.
			s.stats.Duplicates++
			cost = s.cfg.SmallCPU
		}
		f.delivered = true
		if rxBusy == 0 {
			rxStart = arrive
		}
		if arrive > rxFree {
			rxFree = arrive
		}
		rxFree += cost
		rxBusy += cost
	}
	*handling += txBusy + rxBusy

	// One cumulative + selective ack frame, sent once the receiver has
	// processed the burst — if anything arrived to acknowledge.
	acked := false
	roundEnd := txBusy
	if wireFree > roundEnd {
		roundEnd = wireFree
	}
	if rxBusy > 0 {
		if rxFree > roundEnd {
			roundEnd = rxFree
		}
		ackFrame := s.cfg.AckBytes + s.cfg.FrameOverhead
		ackArrive := rxFree + time.Duration(ackFrame)*time.Second/rate + lat
		s.stats.AckFrames++
		if pl.link.Judge(start+ackArrive, ackFrame, m.FaultSupport) {
			acked = true
			if ackArrive > roundEnd {
				roundEnd = ackArrive
			}
		}
	}

	// Charge the three stages' occupancy concurrently and wait out the
	// burst's makespan: a handful of events, however wide the window.
	h := s.helpers(pl)
	jobs := 0
	if txBusy > 0 {
		h.tx.Push(winJob{hold: txBusy})
		jobs++
	}
	if wireBusy > 0 {
		h.wire.Push(winJob{delay: cs, hold: wireBusy})
		jobs++
	}
	if rxBusy > 0 {
		h.rx.Push(winJob{delay: rxStart, hold: rxBusy})
		jobs++
	}
	for i := 0; i < jobs; i++ {
		h.done.Pop(p)
	}
	if end := start + roundEnd; end > p.Now() {
		p.Sleep(end - p.Now())
	}

	if s.k.Tracing() {
		s.k.Emit(obs.Event{
			Kind:    obs.LinkXmit,
			Machine: s.name,
			Proc:    p.Name(),
			Name:    "xmit.window",
			Bytes:   totalBytes,
			Dur:     p.Now() - start,
			Op:      m.Op,
		})
		if resentFrames > 0 {
			s.k.Emit(obs.Event{
				Kind:    obs.NetRetransmit,
				Machine: s.name,
				Proc:    p.Name(),
				Bytes:   resentBytes,
				Op:      m.Op,
			})
		}
	}
	return acked
}
