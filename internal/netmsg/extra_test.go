package netmsg

import (
	"testing"
	"time"

	"accentmig/internal/ipc"
	"accentmig/internal/metrics"
	"accentmig/internal/netlink"
	"accentmig/internal/sim"
	"accentmig/internal/vm"
)

// star builds three nodes: hub connected to both leaves.
func star(k *sim.Kernel) (hub, leafA, leafB *node) {
	hub = newNode(k, "hub")
	leafA = newNode(k, "leafA")
	leafB = newNode(k, "leafB")
	ConnectPair(hub.srv, leafA.srv, netlink.New(k, "h-a", netlink.Config{}))
	ConnectPair(hub.srv, leafB.srv, netlink.New(k, "h-b", netlink.Config{}))
	hub.srv.Start()
	leafA.srv.Start()
	leafB.srv.Start()
	return hub, leafA, leafB
}

func TestMultiHopForwarding(t *testing.T) {
	// leafA -> hub -> leafB: the hub re-routes messages for ports it
	// knows live beyond it.
	k := sim.New()
	hub, leafA, leafB := star(k)
	dst := leafB.sys.AllocPort("svc")
	hub.srv.AddRoute(dst.ID, "leafB")
	leafA.srv.AddRoute(dst.ID, "hub")
	var got *ipc.Message
	k.Go("server", func(p *sim.Proc) { got = leafB.sys.Receive(p, dst) })
	k.Go("client", func(p *sim.Proc) {
		if err := leafA.sys.Send(p, &ipc.Message{Op: 5, To: dst.ID, BodyBytes: 8}); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	k.Run()
	if got == nil || got.Op != 5 {
		t.Fatal("message did not cross two hops")
	}
	if hub.srv.Stats().Forwarded != 1 || hub.srv.Stats().Delivered != 0 {
		t.Errorf("hub stats = %+v, want pure transit", hub.srv.Stats())
	}
}

func TestMultiHopReplyLearnsChain(t *testing.T) {
	// The reply to a two-hop request must find its way back without any
	// manual routes: each hop learned the ReplyTo route on delivery.
	k := sim.New()
	hub, leafA, leafB := star(k)
	dst := leafB.sys.AllocPort("svc")
	hub.srv.AddRoute(dst.ID, "leafB")
	leafA.srv.AddRoute(dst.ID, "hub")
	k.Go("server", func(p *sim.Proc) {
		m := leafB.sys.Receive(p, dst)
		if err := leafB.sys.Send(p, &ipc.Message{To: m.ReplyTo, Body: "ack", BodyBytes: 4}); err != nil {
			t.Errorf("reply: %v", err)
		}
	})
	var ack string
	k.Go("client", func(p *sim.Proc) {
		rep, err := leafA.sys.Call(p, &ipc.Message{To: dst.ID, Body: "req", BodyBytes: 4})
		if err != nil {
			t.Errorf("call: %v", err)
			return
		}
		ack = rep.Body.(string)
	})
	k.Run()
	if ack != "ack" {
		t.Errorf("ack = %q", ack)
	}
}

func TestDeadLetterOnUnknownPortAtPeer(t *testing.T) {
	k := sim.New()
	a, b, _ := pair(k, netlink.Config{})
	ghost := b.sys.AllocPort("ghost")
	a.srv.AddRoute(ghost.ID, "B")
	b.sys.RemovePort(ghost)
	k.Go("client", func(p *sim.Proc) {
		a.sys.Send(p, &ipc.Message{To: ghost.ID, BodyBytes: 4})
	})
	k.Run()
	if b.srv.Stats().DeadLetters != 1 {
		t.Errorf("DeadLetters = %d, want 1", b.srv.Stats().DeadLetters)
	}
}

func TestDeadLetterOnMissingPeer(t *testing.T) {
	k := sim.New()
	a := newNode(k, "lonely")
	a.srv.Start()
	a.srv.AddRoute(12345, "nowhere")
	k.Go("client", func(p *sim.Proc) {
		a.sys.Send(p, &ipc.Message{To: 12345, BodyBytes: 4})
	})
	k.Run()
	if a.srv.Stats().DeadLetters != 1 {
		t.Errorf("DeadLetters = %d", a.srv.Stats().DeadLetters)
	}
}

func TestFaultSupportSplitInRecorder(t *testing.T) {
	k := sim.New()
	a, b, link := pair(k, netlink.Config{})
	rec := metrics.NewRecorder(time.Second)
	a.srv.SetRecorder(rec)
	b.srv.SetRecorder(rec)
	link.SetRecorder(rec)
	dst := b.sys.AllocPort("svc")
	a.srv.AddRoute(dst.ID, "B")
	k.Go("server", func(p *sim.Proc) {
		b.sys.Receive(p, dst)
		b.sys.Receive(p, dst)
	})
	k.Go("client", func(p *sim.Proc) {
		a.sys.Send(p, &ipc.Message{To: dst.ID, BodyBytes: 100})
		a.sys.Send(p, &ipc.Message{To: dst.ID, BodyBytes: 100, FaultSupport: true})
	})
	k.Run()
	if rec.BytesFault() == 0 {
		t.Error("fault-support traffic not split out")
	}
	if rec.BytesFault() >= rec.BytesTotal() {
		t.Error("all traffic marked fault-support")
	}
}

func TestSmallVsDataMessageCosts(t *testing.T) {
	// A control datagram is cheaper to handle than a page-bearing one.
	timeFor := func(bytes int) time.Duration {
		k := sim.New()
		a, b, _ := pair(k, netlink.Config{})
		dst := b.sys.AllocPort("svc")
		a.srv.AddRoute(dst.ID, "B")
		var arrive time.Duration
		k.Go("server", func(p *sim.Proc) {
			b.sys.Receive(p, dst)
			arrive = p.Now()
		})
		k.Go("client", func(p *sim.Proc) {
			a.sys.Send(p, &ipc.Message{To: dst.ID, BodyBytes: bytes})
		})
		k.Run()
		return arrive
	}
	small := timeFor(64)
	page := timeFor(512)
	if small >= page {
		t.Errorf("control message (%v) not cheaper than data message (%v)", small, page)
	}
}

func TestAbsorbPreservesVAAndSize(t *testing.T) {
	k := sim.New()
	a, b, _ := pair(k, netlink.Config{})
	dst := b.sys.AllocPort("svc")
	a.srv.AddRoute(dst.ID, "B")
	att := &ipc.MemAttachment{Kind: ipc.AttachData, VA: 0xABCD000, Size: 4 * 512, Collapsed: true,
		Runs: []vm.PageRun{{Index: 0, Count: 4, Data: make([]byte, 4*512)}}}
	var got *ipc.Message
	k.Go("server", func(p *sim.Proc) { got = b.sys.Receive(p, dst) })
	k.Go("client", func(p *sim.Proc) {
		a.sys.Send(p, &ipc.Message{To: dst.ID, Mem: []*ipc.MemAttachment{att}})
	})
	k.Run()
	iou := got.Mem[0]
	if iou.VA != 0xABCD000 || iou.Size != 4*512 || !iou.Collapsed {
		t.Errorf("absorb lost attachment identity: %+v", iou)
	}
	if iou.SegSize != 4*512 || iou.SegOff != 0 {
		t.Errorf("absorb segment geometry wrong: %+v", iou)
	}
}

func TestCacheMinPagesPassesSmallAttachments(t *testing.T) {
	// A tiny attachment is cheaper to ship than to back: the server
	// declines to cache it on its own initiative (§2.4).
	k := sim.New()
	a, b, _ := pair(k, netlink.Config{})
	dst := b.sys.AllocPort("svc")
	a.srv.AddRoute(dst.ID, "B")
	small := &ipc.MemAttachment{Kind: ipc.AttachData, Size: 512,
		Runs: []vm.PageRun{{Index: 0, Count: 1, Data: make([]byte, 512)}}}
	big := &ipc.MemAttachment{Kind: ipc.AttachData, Size: 8 * 512,
		Runs: []vm.PageRun{{Index: 0, Count: 8, Data: make([]byte, 8*512)}}}
	var got *ipc.Message
	k.Go("rx", func(p *sim.Proc) { got = b.sys.Receive(p, dst) })
	k.Go("tx", func(p *sim.Proc) {
		a.sys.Send(p, &ipc.Message{To: dst.ID, Mem: []*ipc.MemAttachment{small, big}})
	})
	k.Run()
	if got.Mem[0].Kind != ipc.AttachData {
		t.Error("small attachment cached despite the threshold")
	}
	if got.Mem[1].Kind != ipc.AttachIOU {
		t.Error("large attachment not cached")
	}
}
