package netmsg

import (
	"testing"
	"time"

	"accentmig/internal/disk"
	"accentmig/internal/imag"
	"accentmig/internal/ipc"
	"accentmig/internal/metrics"
	"accentmig/internal/netlink"
	"accentmig/internal/pager"
	"accentmig/internal/sim"
	"accentmig/internal/vm"
)

// node bundles one machine's stack for tests.
type node struct {
	cpu  *sim.Resource
	sys  *ipc.System
	srv  *Server
	pg   *pager.Pager
	phys *vm.PhysMem
}

func newNode(k *sim.Kernel, name string) *node {
	cpu := sim.NewResource(k, name+".cpu", 1)
	sys := ipc.NewSystem(k, name, cpu, ipc.Config{})
	srv := New(k, name, cpu, sys, Config{})
	phys := vm.NewPhysMem(2048)
	dsk := disk.New(k, name+".disk", disk.Config{})
	pg := pager.New(k, name, cpu, phys, dsk, sys, pager.Config{})
	return &node{cpu: cpu, sys: sys, srv: srv, pg: pg, phys: phys}
}

func pair(k *sim.Kernel, linkCfg netlink.Config) (*node, *node, *netlink.Link) {
	a := newNode(k, "A")
	b := newNode(k, "B")
	link := netlink.New(k, "net", linkCfg)
	ConnectPair(a.srv, b.srv, link)
	a.srv.Start()
	b.srv.Start()
	return a, b, link
}

func TestForwardSmallMessage(t *testing.T) {
	k := sim.New()
	a, b, _ := pair(k, netlink.Config{})
	dst := b.sys.AllocPort("svc")
	a.srv.AddRoute(dst.ID, "B")
	var got *ipc.Message
	k.Go("server", func(p *sim.Proc) { got = b.sys.Receive(p, dst) })
	k.Go("client", func(p *sim.Proc) {
		if err := a.sys.Send(p, &ipc.Message{Op: 9, To: dst.ID, BodyBytes: 16}); err != nil {
			t.Errorf("Send: %v", err)
		}
	})
	k.Run()
	if got == nil || got.Op != 9 {
		t.Fatalf("message not forwarded: %+v", got)
	}
	if a.srv.Stats().Forwarded != 1 || b.srv.Stats().Delivered != 1 {
		t.Errorf("stats: %+v / %+v", a.srv.Stats(), b.srv.Stats())
	}
}

func TestSendUnroutedFails(t *testing.T) {
	k := sim.New()
	a, _, _ := pair(k, netlink.Config{})
	var err error
	k.Go("client", func(p *sim.Proc) {
		err = a.sys.Send(p, &ipc.Message{To: 99999})
	})
	k.Run()
	if err == nil {
		t.Error("send to unrouted nonlocal port succeeded")
	}
}

func TestReplyRouteLearned(t *testing.T) {
	k := sim.New()
	a, b, _ := pair(k, netlink.Config{})
	svc := b.sys.AllocPort("svc")
	a.srv.AddRoute(svc.ID, "B")
	k.Go("server", func(p *sim.Proc) {
		m := b.sys.Receive(p, svc)
		// Reply to a port on A that B never saw before this message.
		if err := b.sys.Send(p, &ipc.Message{To: m.ReplyTo, Body: "pong", BodyBytes: 4}); err != nil {
			t.Errorf("reply: %v", err)
		}
	})
	var pong string
	k.Go("client", func(p *sim.Proc) {
		rep, err := a.sys.Call(p, &ipc.Message{To: svc.ID, Body: "ping", BodyBytes: 4})
		if err != nil {
			t.Errorf("Call: %v", err)
			return
		}
		pong = rep.Body.(string)
	})
	k.Run()
	if pong != "pong" {
		t.Errorf("pong = %q", pong)
	}
}

func TestIOUCachingRewritesAttachment(t *testing.T) {
	k := sim.New()
	a, b, link := pair(k, netlink.Config{})
	dst := b.sys.AllocPort("mgr")
	a.srv.AddRoute(dst.ID, "B")
	att := &ipc.MemAttachment{Kind: ipc.AttachData, VA: 0, Size: 20 * 512,
		Runs: []vm.PageRun{{Index: 0, Count: 20, Data: make([]byte, 20*512)}}}
	var got *ipc.Message
	k.Go("server", func(p *sim.Proc) { got = b.sys.Receive(p, dst) })
	k.Go("client", func(p *sim.Proc) {
		a.sys.Send(p, &ipc.Message{To: dst.ID, Mem: []*ipc.MemAttachment{att}})
	})
	k.Run()
	if got == nil || len(got.Mem) != 1 {
		t.Fatalf("got %+v", got)
	}
	ma := got.Mem[0]
	if ma.Kind != ipc.AttachIOU {
		t.Fatalf("attachment kind = %v, want IOU", ma.Kind)
	}
	if ma.Backing != a.srv.BackingPort() {
		t.Errorf("backing = %d, want A's backer %d", ma.Backing, a.srv.BackingPort())
	}
	if a.srv.Stats().CachedPages != 20 {
		t.Errorf("CachedPages = %d", a.srv.Stats().CachedPages)
	}
	// Only the IOU descriptor crossed the wire, not 10 KB of data.
	if link.Bytes() > 1024 {
		t.Errorf("wire carried %d bytes for an IOU handoff", link.Bytes())
	}
}

func TestNoIOUsForcesPhysicalCopy(t *testing.T) {
	k := sim.New()
	a, b, link := pair(k, netlink.Config{})
	dst := b.sys.AllocPort("mgr")
	a.srv.AddRoute(dst.ID, "B")
	att := &ipc.MemAttachment{Kind: ipc.AttachData, VA: 0, Size: 20 * 512,
		Runs: []vm.PageRun{{Index: 0, Count: 20, Data: make([]byte, 20*512)}}}
	var got *ipc.Message
	k.Go("server", func(p *sim.Proc) { got = b.sys.Receive(p, dst) })
	k.Go("client", func(p *sim.Proc) {
		a.sys.Send(p, &ipc.Message{To: dst.ID, Mem: []*ipc.MemAttachment{att}, NoIOUs: true})
	})
	k.Run()
	if got.Mem[0].Kind != ipc.AttachData {
		t.Fatal("NoIOUs message had its data cached anyway")
	}
	if link.Bytes() < 20*512 {
		t.Errorf("wire carried only %d bytes for a 10 KB copy", link.Bytes())
	}
	if a.srv.Stats().CachedPages != 0 {
		t.Error("pages cached despite NoIOUs")
	}
}

func TestPerAttachmentCopyRespected(t *testing.T) {
	k := sim.New()
	a, b, _ := pair(k, netlink.Config{})
	dst := b.sys.AllocPort("mgr")
	a.srv.AddRoute(dst.ID, "B")
	mk := func(copy bool) *ipc.MemAttachment {
		return &ipc.MemAttachment{Kind: ipc.AttachData, Size: 4 * 512, Copy: copy,
			Runs: []vm.PageRun{{Index: 0, Count: 4, Data: make([]byte, 4*512)}}}
	}
	var got *ipc.Message
	k.Go("server", func(p *sim.Proc) { got = b.sys.Receive(p, dst) })
	k.Go("client", func(p *sim.Proc) {
		a.sys.Send(p, &ipc.Message{To: dst.ID, Mem: []*ipc.MemAttachment{mk(true), mk(false)}})
	})
	k.Run()
	if got.Mem[0].Kind != ipc.AttachData {
		t.Error("Copy attachment was cached")
	}
	if got.Mem[1].Kind != ipc.AttachIOU {
		t.Error("cacheable attachment was not cached")
	}
}

// TestRemoteImaginaryFaultEndToEnd is the core copy-on-reference path:
// data cached at A, IOU delivered to B, B's pager faults it over.
func TestRemoteImaginaryFaultEndToEnd(t *testing.T) {
	k := sim.New()
	a, b, _ := pair(k, netlink.Config{})
	dst := b.sys.AllocPort("mgr")
	a.srv.AddRoute(dst.ID, "B")

	content := []byte("the owed page")
	buf := make([]byte, 4*512)
	copy(buf, content)
	att := &ipc.MemAttachment{Kind: ipc.AttachData, VA: 0x4000, Size: 4 * 512,
		Runs: []vm.PageRun{{Index: 0, Count: 4, Data: buf}}}

	var faultTime time.Duration
	var got []byte
	k.Go("dest", func(p *sim.Proc) {
		m := b.sys.Receive(p, dst)
		iou := m.Mem[0]
		if iou.Kind != ipc.AttachIOU {
			t.Error("expected IOU attachment")
			return
		}
		as := vm.MustNewAddressSpace(vm.Config{})
		seg := vm.NewImaginarySegment("standin", iou.SegSize, 512, uint64(iou.Backing))
		// Stand-in keeps the backer's segment identity so read requests
		// name the right object.
		seg.ID = iou.SegID
		if _, err := as.MapSegment(iou.VA, iou.Size, seg, 0, "owed"); err != nil {
			t.Error(err)
			return
		}
		start := p.Now()
		var err error
		got, err = b.pg.Read(p, as, 0x4000, len(content))
		if err != nil {
			t.Errorf("Read: %v", err)
		}
		faultTime = p.Now() - start
	})
	k.Go("src", func(p *sim.Proc) {
		a.sys.Send(p, &ipc.Message{To: dst.ID, Mem: []*ipc.MemAttachment{att}})
	})
	k.Run()
	if string(got) != string(content) {
		t.Fatalf("fetched %q, want %q", got, content)
	}
	// The paper's anchor: a remote imaginary fault costs ≈115 ms.
	if faultTime < 90*time.Millisecond || faultTime > 140*time.Millisecond {
		t.Errorf("remote fault took %v, want ≈115ms", faultTime)
	}
	if a.srv.Stats().Served != 1 {
		t.Errorf("Served = %d", a.srv.Stats().Served)
	}
}

func TestSegmentDeathDropsCache(t *testing.T) {
	k := sim.New()
	a, b, _ := pair(k, netlink.Config{})
	dst := b.sys.AllocPort("mgr")
	a.srv.AddRoute(dst.ID, "B")
	att := &ipc.MemAttachment{Kind: ipc.AttachData, Size: 512,
		Runs: []vm.PageRun{{Index: 0, Count: 1, Data: make([]byte, 512)}}}
	var iou *ipc.MemAttachment
	k.Go("dest", func(p *sim.Proc) {
		m := b.sys.Receive(p, dst)
		iou = m.Mem[0]
		b.sys.Send(p, &ipc.Message{
			Op:        imag.OpSegmentDeath,
			To:        iou.Backing,
			Body:      &imag.SegmentDeath{SegID: iou.SegID},
			BodyBytes: imag.SegmentDeathBytes,
		})
	})
	k.Go("src", func(p *sim.Proc) {
		a.sys.Send(p, &ipc.Message{To: dst.ID, Mem: []*ipc.MemAttachment{att}})
	})
	k.Run()
	if a.srv.Store().Segments() != 0 {
		t.Errorf("cache still holds %d segments after death", a.srv.Store().Segments())
	}
}

func TestBulkTransferRateNearPaper(t *testing.T) {
	// 100 KB physical copy should move at the testbed's effective bulk
	// rate, ≈15-20 KB/s.
	k := sim.New()
	a, b, _ := pair(k, netlink.Config{})
	dst := b.sys.AllocPort("mgr")
	a.srv.AddRoute(dst.ID, "B")
	const pages = 200
	att := &ipc.MemAttachment{Kind: ipc.AttachData, Size: pages * 512,
		Runs: []vm.PageRun{{Index: 0, Count: pages, Data: make([]byte, pages*512)}}}
	var arrived time.Duration
	k.Go("dest", func(p *sim.Proc) {
		b.sys.Receive(p, dst)
		arrived = p.Now()
	})
	k.Go("src", func(p *sim.Proc) {
		a.sys.Send(p, &ipc.Message{To: dst.ID, Mem: []*ipc.MemAttachment{att}, NoIOUs: true})
	})
	k.Run()
	rate := float64(pages*512) / arrived.Seconds()
	if rate < 12_000 || rate > 25_000 {
		t.Errorf("bulk rate = %.0f B/s, want ≈15-20 KB/s", rate)
	}
}

func TestFlushDissolvesResidualDependency(t *testing.T) {
	k := sim.New()
	a, b, _ := pair(k, netlink.Config{})
	dst := b.sys.AllocPort("mgr")
	a.srv.AddRoute(dst.ID, "B")
	att := &ipc.MemAttachment{Kind: ipc.AttachData, Size: 8 * 512}
	for i := uint64(0); i < 8; i++ {
		att.AppendPage(i, []byte{byte(i)})
	}
	k.Go("dest", func(p *sim.Proc) {
		m := b.sys.Receive(p, dst)
		iou := m.Mem[0]
		rep, err := b.sys.Call(p, &ipc.Message{
			Op:        imag.OpFlush,
			To:        iou.Backing,
			Body:      &imag.FlushRequest{SegID: iou.SegID},
			BodyBytes: imag.FlushRequestBytes,
		})
		if err != nil {
			t.Errorf("flush: %v", err)
			return
		}
		body := rep.Body.(*imag.ReadReply)
		if body.PageCount() != 8 {
			t.Errorf("flushed %d pages, want 8", body.PageCount())
		}
	})
	k.Go("src", func(p *sim.Proc) {
		a.sys.Send(p, &ipc.Message{To: dst.ID, Mem: []*ipc.MemAttachment{att}})
	})
	k.Run()
	if rem := a.srv.Store().TotalRemaining(); rem != 0 {
		t.Errorf("TotalRemaining = %d after flush, want 0", rem)
	}
	if a.srv.Stats().Served != 0 {
		t.Errorf("Served = %d, want 0 (flush is not a read)", a.srv.Stats().Served)
	}
}

func TestDroppedDatagramCounted(t *testing.T) {
	k := sim.New()
	a, b, _ := pair(k, netlink.Config{DropProb: 1.0, DropSeed: 3})
	dst := b.sys.AllocPort("svc")
	a.srv.AddRoute(dst.ID, "B")
	delivered := false
	k.Go("server", func(p *sim.Proc) {
		b.sys.Receive(p, dst)
		delivered = true
	})
	k.Go("client", func(p *sim.Proc) {
		a.sys.Send(p, &ipc.Message{To: dst.ID, BodyBytes: 8})
	})
	k.Run()
	if delivered {
		t.Error("datagram delivered on a 100%-loss link")
	}
	if a.srv.Stats().Lost != 1 {
		t.Errorf("Lost = %d", a.srv.Stats().Lost)
	}
}

func TestBulkARQSurvivesLoss(t *testing.T) {
	k := sim.New()
	a, b, _ := pair(k, netlink.Config{DropProb: 0.3, DropSeed: 11})
	dst := b.sys.AllocPort("svc")
	a.srv.AddRoute(dst.ID, "B")
	att := &ipc.MemAttachment{Kind: ipc.AttachData, Size: 20 * 512,
		Runs: []vm.PageRun{{Index: 0, Count: 20, Data: make([]byte, 20*512)}}}
	delivered := false
	k.Go("server", func(p *sim.Proc) {
		b.sys.Receive(p, dst)
		delivered = true
	})
	k.Go("client", func(p *sim.Proc) {
		a.sys.Send(p, &ipc.Message{To: dst.ID, Mem: []*ipc.MemAttachment{att}, NoIOUs: true})
	})
	k.Run()
	if !delivered {
		t.Fatal("bulk message lost despite ARQ")
	}
	if a.srv.Stats().Retransmits == 0 {
		t.Error("no retransmits recorded on a 30%-loss link")
	}
}

func TestMessageAccounting(t *testing.T) {
	k := sim.New()
	a, b, _ := pair(k, netlink.Config{})
	rec := metrics.NewRecorder(time.Second)
	a.srv.SetRecorder(rec)
	b.srv.SetRecorder(rec)
	dst := b.sys.AllocPort("svc")
	a.srv.AddRoute(dst.ID, "B")
	k.Go("server", func(p *sim.Proc) { b.sys.Receive(p, dst) })
	k.Go("client", func(p *sim.Proc) {
		a.sys.Send(p, &ipc.Message{To: dst.ID, BodyBytes: 8})
	})
	k.Run()
	if rec.Messages() != 1 {
		t.Errorf("Messages = %d", rec.Messages())
	}
	if rec.MessageTime() == 0 {
		t.Error("no message-handling time recorded")
	}
}
