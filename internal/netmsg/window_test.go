package netmsg

import (
	"testing"
	"time"

	"accentmig/internal/disk"
	"accentmig/internal/faults"
	"accentmig/internal/ipc"
	"accentmig/internal/netlink"
	"accentmig/internal/pager"
	"accentmig/internal/sim"
	"accentmig/internal/vm"
	"accentmig/internal/wire"
)

// newNodeW is newNode with a transport send window.
func newNodeW(k *sim.Kernel, name string, window int) *node {
	cpu := sim.NewResource(k, name+".cpu", 1)
	sys := ipc.NewSystem(k, name, cpu, ipc.Config{})
	srv := New(k, name, cpu, sys, Config{Window: window})
	phys := vm.NewPhysMem(2048)
	dsk := disk.New(k, name+".disk", disk.Config{})
	pg := pager.New(k, name, cpu, phys, dsk, sys, pager.Config{})
	return &node{cpu: cpu, sys: sys, srv: srv, pg: pg, phys: phys}
}

func pairW(k *sim.Kernel, window int, linkCfg netlink.Config) (*node, *node, *netlink.Link) {
	a := newNodeW(k, "A", window)
	b := newNodeW(k, "B", window)
	link := netlink.New(k, "net", linkCfg)
	ConnectPair(a.srv, b.srv, link)
	a.srv.Start()
	b.srv.Start()
	return a, b, link
}

// bulkTransfer pushes a pages-page NoIOUs copy from A to B and returns
// the arrival time, the received message, and both servers. busy adds
// a periodic background timer, modeling the never-empty event heap of
// a real migration run — without it, serialized sleeps take the
// kernel's same-instant fast path and dispatch no events at all, which
// would make event-count comparisons meaningless.
func bulkTransfer(t *testing.T, window, pages int, busy bool, linkCfg netlink.Config) (time.Duration, *ipc.Message, *node, *node, uint64) {
	t.Helper()
	k := sim.New()
	var a, b *node
	if window == 0 {
		a2, b2, _ := pair(k, linkCfg)
		a, b = a2, b2
	} else {
		a, b, _ = pairW(k, window, linkCfg)
	}
	stop := false
	if busy {
		k.Go("ticker", func(p *sim.Proc) {
			for !stop {
				p.Sleep(10 * time.Millisecond)
			}
		})
	}
	dst := b.sys.AllocPort("svc")
	a.srv.AddRoute(dst.ID, "B")
	buf := make([]byte, pages*512)
	for i := range buf {
		buf[i] = byte(i)
	}
	att := &ipc.MemAttachment{Kind: ipc.AttachData, Size: uint64(pages * 512),
		Runs: []vm.PageRun{{Index: 0, Count: pages, Data: buf}}}
	var arrived time.Duration
	var got *ipc.Message
	k.Go("server", func(p *sim.Proc) {
		got = b.sys.Receive(p, dst)
		arrived = p.Now()
		stop = true
	})
	k.Go("client", func(p *sim.Proc) {
		a.sys.Send(p, &ipc.Message{To: dst.ID, Mem: []*ipc.MemAttachment{att}, NoIOUs: true})
	})
	k.Run()
	return arrived, got, a, b, k.EventsRun()
}

// TestWindowOneIdenticalToDefault: Window=1 must take exactly the
// stop-and-wait code path — same virtual end time, same scheduler
// event count, same stats — as the untouched default config.
func TestWindowOneIdenticalToDefault(t *testing.T) {
	tDef, _, aDef, _, evDef := bulkTransfer(t, 0, 100, false, netlink.Config{})
	tW1, _, aW1, _, evW1 := bulkTransfer(t, 1, 100, false, netlink.Config{})
	if tDef != tW1 {
		t.Errorf("arrival: default %v, Window=1 %v", tDef, tW1)
	}
	if evDef != evW1 {
		t.Errorf("events: default %d, Window=1 %d", evDef, evW1)
	}
	if aDef.srv.Stats() != aW1.srv.Stats() {
		t.Errorf("stats diverge: %+v vs %+v", aDef.srv.Stats(), aW1.srv.Stats())
	}
}

// TestWindowedFasterAndIntact: W=16 pipelining must at least halve the
// simulated transfer time of a reliable bulk copy, deliver the payload
// bit-exactly, and — with a busy event heap, as in any real migration
// run — schedule fewer DES events than per-fragment stop-and-wait.
func TestWindowedFasterAndIntact(t *testing.T) {
	const pages = 200
	t1, got1, _, _, ev1 := bulkTransfer(t, 1, pages, true, netlink.Config{})
	t16, got16, a16, _, ev16 := bulkTransfer(t, 16, pages, true, netlink.Config{})
	if got16 == nil || got1 == nil {
		t.Fatal("transfer not delivered")
	}
	if t16 >= t1/2 {
		t.Errorf("W=16 took %v, want < half of stop-and-wait's %v", t16, t1)
	}
	if ev16 >= ev1 {
		t.Errorf("W=16 scheduled %d events, stop-and-wait %d — coalescing must reduce them", ev16, ev1)
	}
	want := got1.Mem[0].Runs[0].Data
	have := got16.Mem[0].Runs[0].Data
	if string(want) != string(have) {
		t.Error("windowed payload differs from stop-and-wait payload")
	}
	st := a16.srv.Stats()
	if st.Windowed != 1 || st.WindowRounds == 0 {
		t.Errorf("window stats not recorded: %+v", st)
	}
}

// TestWindowedSelectiveRetransmit: loss inside a window must trigger
// selective retransmission of the missing fragments only, never a
// resend of the full transfer.
func TestWindowedSelectiveRetransmit(t *testing.T) {
	const pages = 64
	arrived, got, a, _, _ := bulkTransfer(t, 16, pages, false, netlink.Config{DropProb: 0.25, DropSeed: 7})
	if got == nil {
		t.Fatal("transfer lost despite windowed ARQ")
	}
	st := a.srv.Stats()
	frags := a.srv.cfg.FragsFor(pages*512 + 256) // payload plus header slack
	if st.Retransmits == 0 {
		t.Fatal("no retransmits on a 25%-loss link")
	}
	// A full-window-resend protocol would retransmit at least one whole
	// copy of the transfer; selective repeat resends roughly the loss
	// rate's worth.
	if st.Retransmits >= uint64(frags) {
		t.Errorf("Retransmits = %d for a %d-fragment transfer — looks like full-window resend", st.Retransmits, frags)
	}
	if arrived == 0 {
		t.Error("no arrival time recorded")
	}
}

// TestWindowedDeadPeer: the dead-peer declaration must still fire when
// a windowed transfer exhausts its retransmit budget.
func TestWindowedDeadPeer(t *testing.T) {
	_, got, a, _, _ := bulkTransfer(t, 16, 32, false, netlink.Config{DropProb: 1.0, DropSeed: 3})
	if got != nil {
		t.Fatal("message delivered over a 100%-loss link")
	}
	st := a.srv.Stats()
	if st.DeadPeers == 0 {
		t.Errorf("DeadPeers = 0, want dead-peer declaration; stats %+v", st)
	}
	if st.Lost != 1 {
		t.Errorf("Lost = %d, want 1", st.Lost)
	}
}

// TestWindowedPartitionMidTransfer: a partition that opens mid-window
// must abandon the transfer with a dead-peer declaration rather than
// wedging the forwarder.
func TestWindowedPartitionMidTransfer(t *testing.T) {
	k := sim.New()
	a, b, link := pairW(k, 16, netlink.Config{})
	link.SetFaults(faults.NewInjector(&faults.Plan{
		Seed: 1,
		Partitions: []faults.Window{{
			Start: faults.Duration(500 * time.Millisecond),
			End:   faults.Duration(10 * time.Minute),
		}},
	}, ""))
	dst := b.sys.AllocPort("svc")
	a.srv.AddRoute(dst.ID, "B")
	const pages = 200
	att := &ipc.MemAttachment{Kind: ipc.AttachData, Size: pages * 512,
		Runs: []vm.PageRun{{Index: 0, Count: pages, Data: make([]byte, pages*512)}}}
	delivered := false
	k.Go("server", func(p *sim.Proc) {
		b.sys.Receive(p, dst)
		delivered = true
	})
	k.Go("client", func(p *sim.Proc) {
		a.sys.Send(p, &ipc.Message{To: dst.ID, Mem: []*ipc.MemAttachment{att}, NoIOUs: true})
	})
	k.Run()
	if delivered {
		t.Error("transfer delivered across a permanent partition")
	}
	st := a.srv.Stats()
	if st.DeadPeers == 0 || st.Lost != 1 {
		t.Errorf("partition mid-window: want dead peer + 1 lost, got %+v", st)
	}
	// Progress was made before the partition: some rounds went out.
	if st.WindowRounds == 0 || st.Windowed != 1 {
		t.Errorf("windowed path not exercised: %+v", st)
	}
}

// TestFragUnitAgreesWithWire: the transport's fragment math and the
// wire encoder's accounting must share one fragmentation unit
// (FragBytes + FragHeadroom, via wire.FragCount) exactly — no more
// loose ratio bounds. For representative data-plane messages the test
// round-trips the frame and asserts (a) the re-encoded frame length is
// identical, so a forwarded-then-reforwarded message fragments the
// same way at every hop, and (b) the encoded frame never needs more
// fragments than the transport charged for it from WireBytes.
func TestFragUnitAgreesWithWire(t *testing.T) {
	cfg := Config{}.withDefaults()
	if got, want := cfg.FragUnit(), cfg.FragBytes+cfg.FragHeadroom; got != want {
		t.Fatalf("FragUnit = %d, want %d", got, want)
	}
	// Exact agreement on the unit: the transport's FragsFor is the same
	// computation as wire.FragCount for every length.
	for n := 0; n < 4*cfg.FragUnit(); n += 97 {
		if got, want := cfg.FragsFor(n), wire.FragCount(n, cfg.FragBytes, cfg.FragHeadroom); got != want {
			t.Fatalf("FragsFor(%d) = %d, wire.FragCount = %d", n, got, want)
		}
	}
	for _, pages := range []int{1, 4, 32, 200} {
		att := &ipc.MemAttachment{Kind: ipc.AttachData, Size: uint64(pages * 512),
			Runs: []vm.PageRun{{Index: 0, Count: pages, Data: make([]byte, pages*512)}}}
		m := &ipc.Message{Op: 7, To: 42, Mem: []*ipc.MemAttachment{att}}
		frame, extras, err := wire.EncodeMessage(m)
		if err != nil {
			t.Fatalf("encode %d pages: %v", pages, err)
		}
		dec, err := wire.DecodeMessage(frame, extras)
		if err != nil {
			t.Fatalf("decode %d pages: %v", pages, err)
		}
		frame2, _, err := wire.EncodeMessage(dec)
		if err != nil {
			t.Fatalf("re-encode %d pages: %v", pages, err)
		}
		if len(frame2) != len(frame) {
			t.Errorf("%d pages: round-trip changed frame length %d -> %d", pages, len(frame), len(frame2))
		}
		fromFrame := wire.FragCount(len(frame), cfg.FragBytes, cfg.FragHeadroom)
		charged := cfg.FragsFor(m.WireBytes())
		if fromFrame > charged {
			t.Errorf("%d pages: encoded frame needs %d fragments but the transport charged only %d (frame %d B, WireBytes %d)",
				pages, fromFrame, charged, len(frame), m.WireBytes())
		}
		if dec.WireBytes() != m.WireBytes() {
			t.Errorf("%d pages: WireBytes changed across the wire %d -> %d", pages, m.WireBytes(), dec.WireBytes())
		}
	}
}
