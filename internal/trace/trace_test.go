package trace

import (
	"testing"
	"time"

	"accentmig/internal/vm"
)

func TestMigrateIndex(t *testing.T) {
	pr := &Program{Ops: []Op{Compute{time.Second}, MigratePoint{}, Touch{Addr: 0}}}
	if got := pr.MigrateIndex(); got != 1 {
		t.Errorf("MigrateIndex = %d, want 1", got)
	}
	none := &Program{Ops: []Op{Compute{time.Second}}}
	if got := none.MigrateIndex(); got != -1 {
		t.Errorf("MigrateIndex = %d, want -1", got)
	}
}

func TestSeqScanTouches(t *testing.T) {
	pr := &Program{Ops: []Op{SeqScan{Start: 0x1000, Bytes: 4 * 512}}}
	got := pr.Touches(0, 512)
	if len(got) != 4 {
		t.Fatalf("touches = %d, want 4", len(got))
	}
	for i, a := range got {
		if a != vm.Addr(0x1000+i*512) {
			t.Errorf("touch %d = %#x", i, a)
		}
	}
}

func TestSeqScanCustomStride(t *testing.T) {
	pr := &Program{Ops: []Op{SeqScan{Start: 0, Bytes: 2048, Stride: 1024}}}
	if got := pr.Touches(0, 512); len(got) != 2 {
		t.Errorf("touches = %d, want 2", len(got))
	}
}

func TestRandTouchDistinctAndDeterministic(t *testing.T) {
	op := RandTouch{Start: 0, Bytes: 100 * 512, Count: 30, Seed: 5}
	a := (&Program{Ops: []Op{op}}).Touches(0, 512)
	b := (&Program{Ops: []Op{op}}).Touches(0, 512)
	if len(a) != 30 {
		t.Fatalf("touches = %d, want 30", len(a))
	}
	seen := map[vm.Addr]bool{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("RandTouch not deterministic")
		}
		if seen[a[i]] {
			t.Fatal("RandTouch repeated a page")
		}
		seen[a[i]] = true
		if uint64(a[i]) >= 100*512 {
			t.Fatalf("touch %#x outside range", a[i])
		}
	}
}

func TestRandTouchCountClamped(t *testing.T) {
	pr := &Program{Ops: []Op{RandTouch{Bytes: 4 * 512, Count: 100, Seed: 1}}}
	if got := pr.Touches(0, 512); len(got) != 4 {
		t.Errorf("touches = %d, want clamped 4", len(got))
	}
}

func TestWSLoopTouches(t *testing.T) {
	pr := &Program{Ops: []Op{WSLoop{Start: 0, Pages: 3, Iters: 2}}}
	got := pr.Touches(0, 512)
	if len(got) != 6 {
		t.Fatalf("touches = %d, want 6", len(got))
	}
	if pr.UniquePages(0, 512) != 3 {
		t.Errorf("UniquePages = %d, want 3", pr.UniquePages(0, 512))
	}
}

func TestTouchesFromIndex(t *testing.T) {
	pr := &Program{Ops: []Op{
		Touch{Addr: 0},
		MigratePoint{},
		Touch{Addr: 512},
	}}
	post := pr.Touches(pr.MigrateIndex()+1, 512)
	if len(post) != 1 || post[0] != 512 {
		t.Errorf("post-migration touches = %v", post)
	}
}

func TestUniquePagesCollapsesOffsets(t *testing.T) {
	pr := &Program{Ops: []Op{Touch{Addr: 0}, Touch{Addr: 100}, Touch{Addr: 511}}}
	if got := pr.UniquePages(0, 512); got != 1 {
		t.Errorf("UniquePages = %d, want 1", got)
	}
}
