// Package trace defines memory-reference programs: the abstract
// behaviour of a representative process as a sequence of compute bursts
// and page touches. A program is pure data — the machine package
// executes it — so the same program can run before migration on one
// host and resume after migration on another, exactly like a real
// process context whose program counter travels in the PCB.
package trace

import (
	"time"

	"accentmig/internal/vm"
	"accentmig/internal/xrand"
)

// Op is one step of a reference program.
type Op interface{ isOp() }

// Compute burns CPU for D of virtual time.
type Compute struct{ D time.Duration }

// IOWait blocks without consuming CPU (terminal output, clock ticks).
type IOWait struct{ D time.Duration }

// Touch references a single address.
type Touch struct {
	Addr  vm.Addr
	Write bool
}

// SeqScan touches [Start, Start+Bytes) at Stride intervals in address
// order — the Pasmac file-processing pattern. A zero stride means one
// touch per page. PerTouch compute time is charged between touches.
type SeqScan struct {
	Start    vm.Addr
	Bytes    uint64
	Stride   uint64
	Write    bool
	PerTouch time.Duration
}

// RandTouch references Count distinct pages drawn pseudo-randomly from
// [Start, Start+Bytes) — the Lisp pattern with no locality. PerTouch
// compute time is charged between touches.
type RandTouch struct {
	Start    vm.Addr
	Bytes    uint64
	Count    int
	Seed     uint64
	Write    bool
	PerTouch time.Duration
}

// WSLoop repeatedly touches a working set: Iters passes over Pages
// pages starting at Start, with Compute time charged per pass — the
// long-lived compute-bound Chess pattern.
type WSLoop struct {
	Start   vm.Addr
	Pages   int
	Iters   int
	Compute time.Duration
	Write   bool
}

// MigratePoint marks where the trial's migration happens: the executor
// stops here and the process waits to be excised.
type MigratePoint struct{}

func (Compute) isOp()      {}
func (IOWait) isOp()       {}
func (Touch) isOp()        {}
func (SeqScan) isOp()      {}
func (RandTouch) isOp()    {}
func (WSLoop) isOp()       {}
func (MigratePoint) isOp() {}

// Program is a complete reference program.
type Program struct {
	Ops []Op
}

// MigrateIndex returns the index of the MigratePoint op, or -1.
func (pr *Program) MigrateIndex() int {
	for i, op := range pr.Ops {
		if _, ok := op.(MigratePoint); ok {
			return i
		}
	}
	return -1
}

// Touches enumerates every (page-granular) address the program will
// reference from op index `from`, in order, without timing. Used by
// analysis and tests; the executor in package machine is authoritative
// for costs.
func (pr *Program) Touches(from int, pageSize int) []vm.Addr {
	var out []vm.Addr
	ps := uint64(pageSize)
	for _, op := range pr.Ops[from:] {
		switch o := op.(type) {
		case Touch:
			out = append(out, o.Addr)
		case SeqScan:
			stride := o.Stride
			if stride == 0 {
				stride = ps
			}
			for off := uint64(0); off < o.Bytes; off += stride {
				out = append(out, o.Start+vm.Addr(off))
			}
		case RandTouch:
			out = append(out, randPages(o, ps)...)
		case WSLoop:
			for it := 0; it < o.Iters; it++ {
				for pg := 0; pg < o.Pages; pg++ {
					out = append(out, o.Start+vm.Addr(uint64(pg)*ps))
				}
			}
		}
	}
	return out
}

// randPages deterministically expands a RandTouch into page addresses:
// Count distinct pages of the range, in a shuffled order.
func randPages(o RandTouch, pageSize uint64) []vm.Addr {
	npages := int(o.Bytes / pageSize)
	if npages == 0 {
		return nil
	}
	count := o.Count
	if count > npages {
		count = npages
	}
	rng := xrand.New(o.Seed)
	perm := rng.Perm(npages)
	out := make([]vm.Addr, 0, count)
	for _, pg := range perm[:count] {
		out = append(out, o.Start+vm.Addr(uint64(pg)*pageSize))
	}
	return out
}

// UniquePages reports the number of distinct pages the program touches
// from op index `from`.
func (pr *Program) UniquePages(from int, pageSize int) int {
	seen := make(map[vm.Addr]bool)
	for _, a := range pr.Touches(from, pageSize) {
		seen[vm.Addr(uint64(a)/uint64(pageSize))] = true
	}
	return len(seen)
}
