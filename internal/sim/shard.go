package sim

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Cluster shards a simulation into per-machine event lanes — one Kernel
// per lane — and executes them on a worker pool under conservative
// lookahead synchronization.
//
// The lookahead is the minimum delay of any cross-lane interaction: no
// lane can affect another sooner than lookahead after its current clock.
// In this repository the lookahead is the minimum cross-machine link
// latency in internal/netlink; a lane that has reached time T therefore
// cannot receive anything new before T+lookahead, so every lane may run
// independently up to that horizon. The scheduler repeats:
//
//  1. barrier: gather every lane's outbox of cross-lane sends into the
//     pending set, and pick T = the earliest pending event anywhere
//     (lane-local or cross-lane);
//  2. deliver: move pending cross events with time < T+lookahead onto
//     their destination lanes in fixed (time, source shard ID, per-source
//     sequence) order;
//  3. window: run every lane that has work before the horizon with
//     RunUntil(T+lookahead-1), in parallel across the worker pool.
//
// Cross-lane sends made during a window are buffered in a per-source
// outbox (each outbox is touched only by its own lane's worker, so the
// buffering is race-free) and merged at the next barrier. Because the
// merge order is a deterministic function of virtual times and shard IDs
// — never of worker scheduling — a simulation built on Cluster.Send
// produces identical results for any worker count, including the
// degenerate one-lane cluster, which delegates to the plain sequential
// Kernel.Run code path verbatim.
//
// Byte-identity with a single shared kernel additionally requires the
// model to be tie-free: two events that touch the same state must never
// share a virtual nanosecond, since a single kernel orders such ties by
// global scheduling order while lanes order them per-lane. The
// netlink.Iface per-sender phase skew plus lattice-aligned local work
// (see internal/netlink and docs/PERFORMANCE.md) gives that by
// construction.
type Cluster struct {
	lanes []*Kernel
	la    time.Duration

	out  [][]crossEvent // per-source-lane outboxes, filled during windows
	pend []crossEvent   // undelivered cross events, coordinator-owned
	seq  []uint64       // per-source send sequence, total order per lane

	hi     time.Duration // current window end (exclusive); set before dispatch
	active []int32       // scratch: lanes with work in the current window

	panicMu sync.Mutex
	laneErr any
	errLane int

	workers    int
	windows    uint64
	crossSent  uint64
	runWall    int64 // ns, host wall inside Run
	parWall    int64 // ns, host wall inside parallel window sections
	laneWallNS []int64
}

// crossEvent is one cross-lane hand-off: fn runs on lane to at virtual
// time at. src and seq pin the deterministic merge order for events
// delivered at the same instant.
type crossEvent struct {
	at  time.Duration
	src int32
	to  int32
	seq uint64
	fn  func()
}

// NewCluster returns a cluster of n independent lanes with the given
// lookahead. Every cross-lane send must have delay >= lookahead; the
// tighter the bound the shorter the windows, so callers should pass the
// true minimum cross-lane delay (the minimum link latency), not a
// conservative guess below it.
func NewCluster(n int, lookahead time.Duration) *Cluster {
	if n < 1 {
		panic("sim: NewCluster with no lanes")
	}
	if lookahead <= 0 {
		panic("sim: NewCluster lookahead must be positive")
	}
	c := &Cluster{
		lanes:      make([]*Kernel, n),
		la:         lookahead,
		out:        make([][]crossEvent, n),
		seq:        make([]uint64, n),
		laneWallNS: make([]int64, n),
		errLane:    -1,
	}
	for i := range c.lanes {
		c.lanes[i] = New()
	}
	return c
}

// Lanes reports the number of lanes.
func (c *Cluster) Lanes() int { return len(c.lanes) }

// Lane returns lane i's kernel. Everything that belongs to one machine —
// its procs, queues, resources — is built on its own lane's kernel.
func (c *Cluster) Lane(i int) *Kernel { return c.lanes[i] }

// Lookahead reports the cluster's lookahead.
func (c *Cluster) Lookahead() time.Duration { return c.la }

// Send arranges for fn to run on lane dst at time Lane(src).Now()+d. It
// must be called from lane src's context (an event or proc running on
// that lane) or before Run. Same-lane sends are ordinary local events
// with no lookahead constraint; cross-lane sends require d >= Lookahead,
// which holds by construction when d is a link latency the lookahead was
// derived from.
func (c *Cluster) Send(src, dst int, d time.Duration, fn func()) {
	if fn == nil {
		panic("sim: Send with nil function")
	}
	if src < 0 || src >= len(c.lanes) || dst < 0 || dst >= len(c.lanes) {
		panic(fmt.Sprintf("sim: Send lane out of range (src %d, dst %d, lanes %d)", src, dst, len(c.lanes)))
	}
	if dst == src {
		c.lanes[src].Schedule(d, fn)
		return
	}
	if d < c.la {
		panic(fmt.Sprintf("sim: cross-lane send delay %v below lookahead %v", d, c.la))
	}
	c.out[src] = append(c.out[src], crossEvent{
		at:  c.lanes[src].now + d,
		src: int32(src),
		to:  int32(dst),
		seq: c.seq[src],
		fn:  fn,
	})
	c.seq[src]++
}

// Run dispatches events on every lane until the whole cluster is
// quiescent (no lane events and no undelivered cross events), using up
// to workers goroutines for the window phases. workers <= 0 selects
// GOMAXPROCS. It returns the latest lane clock. A one-lane cluster
// delegates to the plain Kernel.Run, taking the sequential code path
// verbatim.
func (c *Cluster) Run(workers int) time.Duration {
	if len(c.lanes) == 1 {
		return c.lanes[0].Run()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(c.lanes) {
		workers = len(c.lanes)
	}
	c.workers = workers
	runStart := time.Now()

	var work chan int32
	var wg sync.WaitGroup
	if workers > 1 {
		work = make(chan int32, len(c.lanes))
		for w := 0; w < workers; w++ {
			go func() {
				for ln := range work {
					c.runLane(int(ln), &wg)
				}
			}()
		}
		defer close(work)
	}

	for {
		// Barrier: collect every lane's outbox into the pending set.
		// Outboxes were written by lane workers, but the window barrier
		// (WaitGroup) ordered those writes before this read.
		for s := range c.out {
			if len(c.out[s]) == 0 {
				continue
			}
			c.crossSent += uint64(len(c.out[s]))
			c.pend = append(c.pend, c.out[s]...)
			for i := range c.out[s] {
				c.out[s][i].fn = nil // release the closures to the GC
			}
			c.out[s] = c.out[s][:0]
		}

		t, ok := c.nextTime()
		if !ok {
			break
		}
		hi := t + c.la
		c.hi = hi
		c.deliver(hi)

		// Only lanes with work before the horizon participate; idle
		// lanes keep their (stale) clocks, which is safe because every
		// future delivery to them is at an absolute time >= any window
		// already run (ScheduleAt, not Schedule, carries it over).
		c.active = c.active[:0]
		for i, k := range c.lanes {
			if at, ok := k.NextEventAt(); ok && at < hi {
				c.active = append(c.active, int32(i))
			}
		}
		c.windows++

		parStart := time.Now()
		if workers == 1 || len(c.active) == 1 {
			for _, ln := range c.active {
				wg.Add(1)
				c.runLane(int(ln), &wg)
			}
		} else {
			wg.Add(len(c.active))
			for _, ln := range c.active {
				work <- ln
			}
			wg.Wait()
		}
		atomic.AddInt64(&c.parWall, int64(time.Since(parStart)))

		if err := c.takeLaneErr(); err != nil {
			panic(fmt.Sprintf("sim: lane %d panicked: %v", c.errLane, err))
		}
	}

	atomic.AddInt64(&c.runWall, int64(time.Since(runStart)))
	var end time.Duration
	for _, k := range c.lanes {
		if k.Now() > end {
			end = k.Now()
		}
	}
	return end
}

// runLane executes one lane's share of the current window. It runs on a
// pool worker (or inline on the coordinator); panics from lane events
// are captured and re-raised by the coordinator after the barrier so the
// pool never deadlocks on a half-finished window.
func (c *Cluster) runLane(ln int, wg *sync.WaitGroup) {
	defer wg.Done()
	defer func() {
		if r := recover(); r != nil {
			c.panicMu.Lock()
			if c.laneErr == nil {
				c.laneErr = r
				c.errLane = ln
			}
			c.panicMu.Unlock()
		}
	}()
	t0 := time.Now()
	// The window is [T, hi); RunUntil is inclusive, so stop at hi-1ns.
	c.lanes[ln].RunUntil(c.hi - 1)
	atomic.AddInt64(&c.laneWallNS[ln], int64(time.Since(t0)))
}

func (c *Cluster) takeLaneErr() any {
	c.panicMu.Lock()
	defer c.panicMu.Unlock()
	return c.laneErr
}

// nextTime reports the earliest pending virtual time across all lanes
// and undelivered cross events.
func (c *Cluster) nextTime() (time.Duration, bool) {
	var t time.Duration
	ok := false
	for _, k := range c.lanes {
		if at, has := k.NextEventAt(); has && (!ok || at < t) {
			t, ok = at, true
		}
	}
	for i := range c.pend {
		if !ok || c.pend[i].at < t {
			t, ok = c.pend[i].at, true
		}
	}
	return t, ok
}

// deliver moves pending cross events due before hi onto their target
// lanes in (time, source shard ID, per-source sequence) order. That key
// is a pure function of the simulation, so the resulting per-lane heap
// sequence numbers — and hence all downstream tie-breaking — are
// identical for every worker count.
func (c *Cluster) deliver(hi time.Duration) {
	if len(c.pend) == 0 {
		return
	}
	sort.Slice(c.pend, func(i, j int) bool {
		a, b := &c.pend[i], &c.pend[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.seq < b.seq
	})
	n := 0
	for n < len(c.pend) && c.pend[n].at < hi {
		x := &c.pend[n]
		c.lanes[x.to].ScheduleAt(x.at, x.fn)
		x.fn = nil
		n++
	}
	if n > 0 {
		rest := copy(c.pend, c.pend[n:])
		for i := rest; i < len(c.pend); i++ {
			c.pend[i] = crossEvent{}
		}
		c.pend = c.pend[:rest]
	}
}

// EventsRun reports the total events dispatched across all lanes.
func (c *Cluster) EventsRun() uint64 {
	var n uint64
	for _, k := range c.lanes {
		n += k.EventsRun()
	}
	return n
}

// ClusterStats is host-side accounting for one Run: window and cross-
// event counts are properties of the simulation (deterministic), the
// wall-clock figures are properties of the host and the worker count.
type ClusterStats struct {
	Workers     int
	Windows     uint64
	CrossEvents uint64

	RunWall      time.Duration   // total wall inside Run
	ParallelWall time.Duration   // wall inside the window sections
	LaneWall     []time.Duration // per-lane wall summed over windows
}

// Stats returns accounting for the Run that completed. BarrierStall
// summarizes the parallel efficiency it implies.
func (c *Cluster) Stats() ClusterStats {
	s := ClusterStats{
		Workers:      c.workers,
		Windows:      c.windows,
		CrossEvents:  c.crossSent,
		RunWall:      time.Duration(atomic.LoadInt64(&c.runWall)),
		ParallelWall: time.Duration(atomic.LoadInt64(&c.parWall)),
		LaneWall:     make([]time.Duration, len(c.lanes)),
	}
	for i := range c.laneWallNS {
		s.LaneWall[i] = time.Duration(atomic.LoadInt64(&c.laneWallNS[i]))
	}
	return s
}

// BarrierStall reports the fraction of worker capacity spent waiting at
// window barriers rather than dispatching lane events: 1 means the pool
// was entirely stalled, 0 means perfectly packed windows. Meaningless
// (reported as 0) for sequential runs.
func (s ClusterStats) BarrierStall() float64 {
	if s.Workers <= 1 || s.ParallelWall <= 0 {
		return 0
	}
	var busy time.Duration
	for _, w := range s.LaneWall {
		busy += w
	}
	cap := time.Duration(s.Workers) * s.ParallelWall
	if busy >= cap {
		return 0
	}
	return float64(cap-busy) / float64(cap)
}
