package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestQueueFIFO(t *testing.T) {
	k := New()
	q := NewQueue[int](k)
	var got []int
	k.Go("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			q.Push(i)
			p.Sleep(time.Millisecond)
		}
	})
	k.Go("consumer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, q.Pop(p))
		}
	})
	k.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("got %v, want 0..4 in order", got)
		}
	}
}

func TestQueuePushBeforePop(t *testing.T) {
	k := New()
	q := NewQueue[string](k)
	q.Push("x")
	q.Push("y")
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2", q.Len())
	}
	var got []string
	k.Go("c", func(p *Proc) {
		got = append(got, q.Pop(p), q.Pop(p))
	})
	k.Run()
	if got[0] != "x" || got[1] != "y" {
		t.Errorf("got %v", got)
	}
}

func TestQueueWaitersServedFIFO(t *testing.T) {
	k := New()
	q := NewQueue[int](k)
	var served []string
	for _, name := range []string{"first", "second", "third"} {
		name := name
		k.Go(name, func(p *Proc) {
			q.Pop(p)
			served = append(served, name)
		})
	}
	k.Go("pusher", func(p *Proc) {
		p.Sleep(time.Second)
		q.Push(1)
		q.Push(2)
		q.Push(3)
	})
	k.Run()
	want := []string{"first", "second", "third"}
	for i := range want {
		if served[i] != want[i] {
			t.Fatalf("served = %v, want %v", served, want)
		}
	}
}

func TestQueueTryPop(t *testing.T) {
	k := New()
	q := NewQueue[int](k)
	if _, ok := q.TryPop(); ok {
		t.Error("TryPop on empty queue returned ok")
	}
	q.Push(7)
	v, ok := q.TryPop()
	if !ok || v != 7 {
		t.Errorf("TryPop = %d,%v, want 7,true", v, ok)
	}
}

func TestQueuePopTimeoutExpires(t *testing.T) {
	k := New()
	q := NewQueue[int](k)
	var ok bool
	var at time.Duration
	k.Go("w", func(p *Proc) {
		_, ok = q.PopTimeout(p, 100*time.Millisecond)
		at = p.Now()
	})
	k.Run()
	if ok {
		t.Error("PopTimeout returned ok with no producer")
	}
	if at != 100*time.Millisecond {
		t.Errorf("timed out at %v, want 100ms", at)
	}
	if q.Waiting() != 0 {
		t.Errorf("Waiting = %d after timeout, want 0", q.Waiting())
	}
}

func TestQueuePopTimeoutDelivered(t *testing.T) {
	k := New()
	q := NewQueue[int](k)
	var v int
	var ok bool
	k.Go("w", func(p *Proc) {
		v, ok = q.PopTimeout(p, time.Second)
	})
	k.Go("pusher", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		q.Push(99)
	})
	k.Run()
	if !ok || v != 99 {
		t.Errorf("PopTimeout = %d,%v, want 99,true", v, ok)
	}
}

func TestQueuePushSkipsKilledWaiter(t *testing.T) {
	k := New()
	q := NewQueue[int](k)
	var got int
	victim := k.Go("victim", func(p *Proc) {
		q.Pop(p)
		t.Error("victim received an item")
	})
	k.Go("survivor", func(p *Proc) {
		p.Sleep(time.Millisecond) // enqueue after victim
		got = q.Pop(p)
	})
	k.Go("driver", func(p *Proc) {
		p.Sleep(time.Second)
		victim.Kill()
		p.Sleep(time.Second)
		q.Push(5)
	})
	k.Run()
	if got != 5 {
		t.Errorf("survivor got %d, want 5", got)
	}
}

// Property: any interleaved sequence of pushes is consumed in exactly
// push order, independent of consumer count.
func TestQuickQueueOrderPreserved(t *testing.T) {
	f := func(vals []byte, consumers uint8) bool {
		nc := int(consumers%4) + 1
		k := New()
		q := NewQueue[byte](k)
		var got []byte
		for c := 0; c < nc; c++ {
			k.Go("c", func(p *Proc) {
				for {
					v, ok := q.PopTimeout(p, time.Minute)
					if !ok {
						return
					}
					got = append(got, v)
				}
			})
		}
		k.Go("prod", func(p *Proc) {
			for _, v := range vals {
				q.Push(v)
				p.Sleep(time.Millisecond)
			}
		})
		k.Run()
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
