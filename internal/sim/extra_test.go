package sim

import (
	"testing"
	"time"
)

func TestRunUntilLeavesSleepersParked(t *testing.T) {
	k := New()
	woke := false
	k.Go("sleeper", func(p *Proc) {
		p.Sleep(10 * time.Second)
		woke = true
	})
	k.RunUntil(5 * time.Second)
	if woke {
		t.Fatal("sleeper woke before its time")
	}
	if k.LiveProcs() != 1 {
		t.Fatalf("LiveProcs = %d", k.LiveProcs())
	}
	k.Run()
	if !woke {
		t.Fatal("sleeper never woke after resuming Run")
	}
}

func TestQueueTimeoutPushRace(t *testing.T) {
	// A push scheduled for the same instant as the timeout: exactly one
	// of delivery or timeout wins, never both, and no item is lost.
	k := New()
	q := NewQueue[int](k)
	var got int
	var ok bool
	k.Go("w", func(p *Proc) {
		got, ok = q.PopTimeout(p, 100*time.Millisecond)
	})
	k.Schedule(100*time.Millisecond, func() { q.Push(42) })
	k.Run()
	if ok && got != 42 {
		t.Errorf("delivered wrong value %d", got)
	}
	if !ok {
		// Timed out: the item must still be in the queue.
		if v, found := q.TryPop(); !found || v != 42 {
			t.Error("item lost in timeout/push race")
		}
	}
}

func TestEventsRunAdvances(t *testing.T) {
	k := New()
	before := k.EventsRun()
	for i := 0; i < 5; i++ {
		k.Schedule(time.Millisecond, func() {})
	}
	k.Run()
	if k.EventsRun() != before+5 {
		t.Errorf("EventsRun = %d, want %d", k.EventsRun(), before+5)
	}
}

func TestResourceCapacityTwoWithPriority(t *testing.T) {
	k := New()
	r := NewResource(k, "r", 2)
	var order []string
	grab := func(name string, d, hold time.Duration, high bool) {
		k.Go(name, func(p *Proc) {
			p.Sleep(d)
			if high {
				r.AcquireHigh(p)
			} else {
				r.Acquire(p)
			}
			order = append(order, name)
			p.Sleep(hold)
			r.Release()
		})
	}
	grab("h1", 0, time.Second, false)
	grab("h2", 0, time.Second, false)
	grab("low", time.Millisecond, time.Millisecond, false)
	grab("high", 2*time.Millisecond, time.Millisecond, true)
	k.Run()
	// h1,h2 fill both units; on first release, "high" jumps "low".
	if len(order) != 4 || order[2] != "high" || order[3] != "low" {
		t.Errorf("order = %v, want high before low", order)
	}
}

func TestHandoffNoBarging(t *testing.T) {
	// The releaser immediately re-acquiring must queue behind a granted
	// waiter — the bug that starved migration behind compute loops.
	k := New()
	r := NewResource(k, "cpu", 1)
	var got []string
	k.Go("spinner", func(p *Proc) {
		for i := 0; i < 3; i++ {
			r.Acquire(p)
			got = append(got, "spin")
			p.Sleep(50 * time.Millisecond)
			r.Release()
		}
	})
	k.Go("kernel", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		r.AcquireHigh(p)
		got = append(got, "kernel")
		r.Release()
	})
	k.Run()
	// Kernel must run after the first spin slice, not after all three.
	if len(got) < 2 || got[1] != "kernel" {
		t.Errorf("order = %v, want kernel second", got)
	}
}

func TestGateWaitManyThenKill(t *testing.T) {
	k := New()
	g := NewGate(k)
	victim := k.Go("victim", func(p *Proc) {
		g.Wait(p)
		t.Error("killed waiter passed the gate")
	})
	survived := false
	k.Go("other", func(p *Proc) {
		g.Wait(p)
		survived = true
	})
	k.Go("driver", func(p *Proc) {
		p.Sleep(time.Second)
		victim.Kill()
		p.Sleep(time.Second)
		g.Open()
	})
	k.Run()
	if !survived {
		t.Error("surviving waiter never released")
	}
}

func TestSchedulePanicsOnNilFn(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Schedule(nil) did not panic")
		}
	}()
	New().Schedule(0, nil)
}

func TestProcNowMatchesKernel(t *testing.T) {
	k := New()
	k.Go("p", func(p *Proc) {
		p.Sleep(3 * time.Second)
		if p.Now() != k.Now() {
			t.Errorf("proc Now %v != kernel Now %v", p.Now(), k.Now())
		}
	})
	k.Run()
}
