package sim

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

// testLookahead mirrors the default cross-machine link latency the real
// scenarios derive their lookahead from.
const testLookahead = 5 * time.Millisecond

// shardRec is one received message in the synthetic cluster model:
// virtual arrival-handling time plus payload identity.
type shardRec struct {
	At  time.Duration
	Src int
	Pay uint64
}

type shardMsg struct {
	Src int
	Pay uint64
}

// shardNet abstracts "one kernel per lane" vs "one shared kernel" so the
// same model can be built both ways and the results compared byte for
// byte.
type shardNet struct {
	cl *Cluster
	ks []*Kernel
}

func newShardNet(n int, sharded bool) *shardNet {
	tn := &shardNet{ks: make([]*Kernel, n)}
	if sharded {
		tn.cl = NewCluster(n, testLookahead)
		for i := range tn.ks {
			tn.ks[i] = tn.cl.Lane(i)
		}
		return tn
	}
	k := New()
	for i := range tn.ks {
		tn.ks[i] = k
	}
	return tn
}

func (tn *shardNet) send(src, dst int, d time.Duration, fn func()) {
	if tn.cl != nil {
		tn.cl.Send(src, dst, d, fn)
		return
	}
	tn.ks[src].Schedule(d, fn)
}

func (tn *shardNet) run(workers int) {
	if tn.cl != nil {
		tn.cl.Run(workers)
		return
	}
	tn.ks[0].Run()
}

// mix64 is a splitmix64 step, enough deterministic randomness for the
// model without importing anything.
func mix64(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// snapLattice re-aligns a proc to the whole-microsecond lattice after it
// has been woken at a skewed (sub-microsecond) delivery time.
func snapLattice(p *Proc) {
	if r := p.Now() % time.Microsecond; r != 0 {
		p.Sleep(time.Microsecond - r)
	}
}

// buildShardModel wires up the tie-free reference model: n nodes, each
// with a wire resource, an inbox queue, a sender proc, and a receiver
// proc. All local durations are whole microseconds; deliveries add a
// per-sender sub-microsecond phase skew on top of the lookahead;
// receivers re-align to the microsecond lattice after every receive.
// Under that discipline no two events that share state ever tie, so a
// single shared kernel and a sharded cluster must produce identical
// logs. The returned slice is filled in by running the net.
func buildShardModel(tn *shardNet, n, rounds int, seed uint64) [][]shardRec {
	logs := make([][]shardRec, n)
	inboxes := make([]*Queue[shardMsg], n)
	for i := 0; i < n; i++ {
		inboxes[i] = NewQueue[shardMsg](tn.ks[i])
	}
	for i := 0; i < n; i++ {
		i := i
		k := tn.ks[i]
		wire := NewResource(k, "wire", 1)
		cpu := NewResource(k, "cpu", 1)
		k.Go("recv", func(p *Proc) {
			for {
				m := inboxes[i].Pop(p)
				snapLattice(p)
				logs[i] = append(logs[i], shardRec{At: p.Now(), Src: m.Src, Pay: m.Pay})
				cpu.Use(p, time.Duration(1+m.Pay%7)*time.Microsecond)
			}
		})
		k.Go("send", func(p *Proc) {
			rng := seed ^ uint64(i)*0x5851f42d4c957f2d
			for r := 0; r < rounds; r++ {
				p.Sleep(time.Duration(1+mix64(&rng)%2000) * time.Microsecond)
				dst := int(mix64(&rng) % uint64(n-1))
				if dst >= i {
					dst++
				}
				wire.Use(p, time.Duration(64+mix64(&rng)%512)*time.Microsecond)
				pay := mix64(&rng)
				to := inboxes[dst]
				m := shardMsg{Src: i, Pay: pay}
				d := testLookahead + time.Duration(i+1) // per-sender phase skew
				tn.send(i, dst, d, func() { to.Push(m) })
			}
		})
	}
	return logs
}

func runShardModel(t *testing.T, sharded bool, workers, n, rounds int) [][]shardRec {
	t.Helper()
	tn := newShardNet(n, sharded)
	logs := buildShardModel(tn, n, rounds, 0xfeed)
	tn.run(workers)
	total := 0
	for _, l := range logs {
		total += len(l)
	}
	if want := n * rounds; total != want {
		t.Fatalf("received %d messages, want %d (sharded=%v workers=%d)", total, want, sharded, workers)
	}
	return logs
}

// TestClusterMatchesSingleKernel is the sim-level byte-identity gate:
// the tie-free model produces identical per-node receive logs on one
// shared kernel and on a sharded cluster at several worker counts.
func TestClusterMatchesSingleKernel(t *testing.T) {
	const n, rounds = 6, 40
	seqLogs := runShardModel(t, false, 1, n, rounds)
	for _, workers := range []int{1, 2, 4, 8} {
		got := runShardModel(t, true, workers, n, rounds)
		if !reflect.DeepEqual(got, seqLogs) {
			t.Fatalf("sharded logs at %d workers differ from single-kernel logs", workers)
		}
	}
}

// TestClusterStats checks the scheduler's bookkeeping on the reference
// model: every cross-lane send is counted, and the run is chopped into
// many conservative windows.
func TestClusterStats(t *testing.T) {
	const n, rounds = 6, 40
	tn := newShardNet(n, true)
	buildShardModel(tn, n, rounds, 0xfeed)
	tn.run(2)
	st := tn.cl.Stats()
	if st.CrossEvents != uint64(n*rounds) {
		t.Errorf("CrossEvents = %d, want %d", st.CrossEvents, n*rounds)
	}
	if st.Windows < 10 {
		t.Errorf("Windows = %d, want many conservative windows", st.Windows)
	}
	if st.Workers != 2 {
		t.Errorf("Workers = %d, want 2", st.Workers)
	}
	if got := tn.cl.EventsRun(); got == 0 {
		t.Errorf("EventsRun = 0, want > 0")
	}
	if stall := st.BarrierStall(); stall < 0 || stall > 1 {
		t.Errorf("BarrierStall = %v, want within [0,1]", stall)
	}
}

// TestClusterSendOrdering pins the deterministic merge order: cross
// events delivered at the same barrier land on the destination lane in
// (time, source shard ID, per-source sequence) order.
func TestClusterSendOrdering(t *testing.T) {
	cl := NewCluster(3, time.Millisecond)
	var got []int
	var at time.Duration
	// All three arrive at lane 2 inside the same window; sources 0 and 1
	// send at the same virtual time, so source ID breaks the tie, and
	// the second send from source 0 follows its first.
	cl.Send(1, 2, time.Millisecond, func() { got = append(got, 10); at = cl.Lane(2).Now() })
	cl.Send(0, 2, time.Millisecond, func() { got = append(got, 1) })
	cl.Send(0, 2, time.Millisecond, func() { got = append(got, 2) })
	cl.Run(2)
	want := []int{1, 2, 10}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("delivery order = %v, want %v", got, want)
	}
	if at != time.Millisecond {
		t.Errorf("delivery ran at %v, want 1ms", at)
	}
}

// TestClusterLookaheadViolationPanics: a cross-lane send below the
// lookahead would break the conservative horizon, so it must panic
// rather than silently corrupt the schedule.
func TestClusterLookaheadViolationPanics(t *testing.T) {
	cl := NewCluster(2, 5*time.Millisecond)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("cross-lane send below lookahead did not panic")
		}
		if !strings.Contains(r.(string), "lookahead") {
			t.Fatalf("panic = %v, want lookahead violation", r)
		}
	}()
	cl.Send(0, 1, time.Millisecond, func() {})
}

// TestClusterSameLaneSend: sends to the sender's own lane are ordinary
// local events with no lookahead constraint.
func TestClusterSameLaneSend(t *testing.T) {
	cl := NewCluster(2, 5*time.Millisecond)
	var at time.Duration
	cl.Send(0, 0, time.Microsecond, func() { at = cl.Lane(0).Now() })
	cl.Run(2)
	if at != time.Microsecond {
		t.Errorf("same-lane send ran at %v, want 1µs", at)
	}
}

// TestClusterLanePanicPropagates: a panic inside a lane event must
// surface from Run with the lane identified, not deadlock the pool.
func TestClusterLanePanicPropagates(t *testing.T) {
	cl := NewCluster(2, time.Millisecond)
	cl.Lane(1).Schedule(time.Microsecond, func() { panic("boom") })
	cl.Lane(0).Schedule(time.Microsecond, func() {})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("lane panic did not propagate out of Run")
		}
		s, ok := r.(string)
		if !ok || !strings.Contains(s, "lane 1") || !strings.Contains(s, "boom") {
			t.Fatalf("panic = %v, want lane 1 boom", r)
		}
	}()
	cl.Run(2)
}

// TestClusterOneLaneDelegates: the degenerate one-lane cluster takes
// the sequential Kernel.Run code path verbatim — no windows, no barrier
// machinery.
func TestClusterOneLaneDelegates(t *testing.T) {
	cl := NewCluster(1, 5*time.Millisecond)
	ran := false
	cl.Lane(0).Schedule(time.Second, func() { ran = true })
	cl.Send(0, 0, time.Second, func() {}) // same-lane send still works
	if end := cl.Run(4); end != time.Second {
		t.Errorf("Run returned %v, want 1s", end)
	}
	if !ran {
		t.Error("event did not run")
	}
	if st := cl.Stats(); st.Windows != 0 {
		t.Errorf("one-lane cluster used %d windows, want 0", st.Windows)
	}
}

// TestAllocsShardsOff is the allocation-regression gate for the
// -shards 1 dispatch path: a one-lane cluster must add nothing to the
// sequential kernel's zero-allocation schedule+dispatch cycle.
func TestAllocsShardsOff(t *testing.T) {
	cl := NewCluster(1, 5*time.Millisecond)
	k := cl.Lane(0)
	fn := func() {}
	// Warm the heap's backing array.
	for i := 0; i < 64; i++ {
		k.Schedule(time.Duration(i), fn)
	}
	cl.Run(1)
	avg := testing.AllocsPerRun(200, func() {
		for i := 0; i < 32; i++ {
			k.Schedule(time.Duration(i)*time.Microsecond, fn)
		}
		cl.Run(1)
	})
	if avg != 0 {
		t.Errorf("one-lane cluster dispatch allocates %.2f objects per 32-event batch, want 0", avg)
	}
}

// TestNextEventAt covers the three cases the window scheduler depends
// on: empty kernel, heap entry, and a due now-ring entry.
func TestNextEventAt(t *testing.T) {
	k := New()
	if _, ok := k.NextEventAt(); ok {
		t.Error("empty kernel reports a pending event")
	}
	k.Schedule(3*time.Second, func() {})
	if at, ok := k.NextEventAt(); !ok || at != 3*time.Second {
		t.Errorf("NextEventAt = %v,%v, want 3s,true", at, ok)
	}
	k.Schedule(0, func() {}) // ring entry is due now
	if at, ok := k.NextEventAt(); !ok || at != 0 {
		t.Errorf("NextEventAt with ring entry = %v,%v, want 0,true", at, ok)
	}
	k.Run()
}

// TestSleepFastPathUnderDeadline: the same-instant fast path now also
// applies inside RunUntil windows when the wake time does not overshoot
// the deadline. Semantics must match the slow path exactly; the elided
// park/unpark shows up as a lower event count.
func TestSleepFastPathUnderDeadline(t *testing.T) {
	k := New()
	var wakes []time.Duration
	k.Go("sleeper", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(time.Second)
			wakes = append(wakes, p.Now())
		}
	})
	k.RunUntil(10 * time.Second)
	want := []time.Duration{time.Second, 2 * time.Second, 3 * time.Second}
	if !reflect.DeepEqual(wakes, want) {
		t.Errorf("wakes = %v, want %v", wakes, want)
	}
	if k.Now() != 10*time.Second {
		t.Errorf("clock = %v, want 10s", k.Now())
	}
	// Launch is the only dispatched event: all three sleeps took the
	// fast path despite the deadline.
	if k.EventsRun() != 1 {
		t.Errorf("EventsRun = %d, want 1 (sleeps should elide park/unpark)", k.EventsRun())
	}

	// A sleep landing exactly on the deadline still takes the fast path
	// (RunUntil dispatches events at exactly t), and one overshooting it
	// must park so the clock stops at the deadline.
	k2 := New()
	var at time.Duration
	k2.Go("edge", func(p *Proc) {
		p.Sleep(2 * time.Second)
		at = p.Now()
		p.Sleep(5 * time.Second) // beyond the deadline: parks
		at = p.Now()
	})
	k2.RunUntil(2 * time.Second)
	if at != 2*time.Second || k2.Now() != 2*time.Second {
		t.Errorf("at deadline: woke %v clock %v, want 2s 2s", at, k2.Now())
	}
	k2.Run() // drain: the parked sleep completes at 7s
	if at != 7*time.Second {
		t.Errorf("after drain: woke %v, want 7s", at)
	}
}
