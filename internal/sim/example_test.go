package sim_test

import (
	"fmt"
	"time"

	"accentmig/internal/sim"
)

// Two simulated processes share one CPU; the kernel interleaves them
// deterministically and the virtual clock tracks only modelled costs.
func Example() {
	k := sim.New()
	cpu := sim.NewResource(k, "cpu", 1)
	for _, name := range []string{"alpha", "beta"} {
		name := name
		k.Go(name, func(p *sim.Proc) {
			cpu.Use(p, 100*time.Millisecond)
			fmt.Printf("%s finished at %v\n", name, p.Now())
		})
	}
	k.Run()
	// Output:
	// alpha finished at 100ms
	// beta finished at 200ms
}

// Queues hand items between processes with FIFO delivery.
func ExampleQueue() {
	k := sim.New()
	q := sim.NewQueue[string](k)
	k.Go("consumer", func(p *sim.Proc) {
		fmt.Println("got:", q.Pop(p))
	})
	k.Go("producer", func(p *sim.Proc) {
		p.Sleep(time.Second)
		q.Push("page 42")
	})
	k.Run()
	fmt.Println("virtual time:", k.Now())
	// Output:
	// got: page 42
	// virtual time: 1s
}

// High-priority acquirers model kernel work that preempts user compute
// at the next scheduling boundary.
func ExampleResource_acquireHigh() {
	k := sim.New()
	cpu := sim.NewResource(k, "cpu", 1)
	k.Go("user", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			cpu.Use(p, 50*time.Millisecond)
		}
	})
	k.Go("kernel", func(p *sim.Proc) {
		p.Sleep(10 * time.Millisecond)
		cpu.UseHigh(p, time.Millisecond)
		fmt.Println("kernel ran at", p.Now())
	})
	k.Run()
	// Output:
	// kernel ran at 51ms
}
