package sim

import (
	"testing"
	"time"
)

// TestKernelDispatchAllocs is the allocation-regression guard for the
// event hot path: scheduling and dispatching a pre-built callback must
// not allocate at all once the heap's backing array is warm, because
// events are stored by value in the 4-ary heap.
func TestKernelDispatchAllocs(t *testing.T) {
	k := New()
	fn := func() {}
	// Warm the heap's backing array.
	for i := 0; i < 64; i++ {
		k.Schedule(time.Duration(i), fn)
	}
	k.Run()
	avg := testing.AllocsPerRun(200, func() {
		for i := 0; i < 32; i++ {
			k.Schedule(time.Duration(i)*time.Microsecond, fn)
		}
		k.Run()
	})
	if avg != 0 {
		t.Errorf("event schedule+dispatch allocates %.2f objects per 32-event batch, want 0", avg)
	}
}

// TestAllocsProfileOff pins the profiler's zero-cost-when-off
// contract: with no flight-recorder sink installed, resource holds —
// the profiler's ResourceHold emission gate sits on the Use/UseHigh
// release path — must not allocate at all.
func TestAllocsProfileOff(t *testing.T) {
	k := New()
	r := NewResource(k, "m.cpu", 1)
	q := NewQueue[int](k)
	k.Go("worker", func(p *Proc) {
		for {
			n := q.Pop(p)
			if n < 0 {
				return
			}
			for i := 0; i < n; i++ {
				r.Use(p, time.Microsecond)
				r.UseHigh(p, time.Microsecond)
			}
		}
	})
	// Warm the heap and queue backing arrays.
	q.Push(16)
	k.Run()
	avg := testing.AllocsPerRun(200, func() {
		q.Push(32)
		k.Run()
	})
	q.Push(-1)
	k.Run()
	if avg != 0 {
		t.Errorf("untraced resource use allocates %.2f objects per 64-hold batch, want 0", avg)
	}
}

// TestHeapOrderingProperty drives the 4-ary heap with an adversarial
// schedule pattern and checks the kernel's dispatch contract: events
// fire in timestamp order, FIFO within a timestamp.
func TestHeapOrderingProperty(t *testing.T) {
	k := New()
	type stamp struct {
		at  time.Duration
		seq int
	}
	var got []stamp
	seq := 0
	// Interleave ascending, descending, and duplicate timestamps.
	delays := []int{5, 3, 9, 3, 1, 9, 0, 7, 3, 2, 8, 0, 5, 5, 4, 6}
	for _, d := range delays {
		d := d
		s := seq
		seq++
		k.Schedule(time.Duration(d)*time.Second, func() {
			got = append(got, stamp{at: k.Now(), seq: s})
		})
	}
	k.Run()
	if len(got) != len(delays) {
		t.Fatalf("dispatched %d events, want %d", len(got), len(delays))
	}
	for i := 1; i < len(got); i++ {
		a, b := got[i-1], got[i]
		if b.at < a.at {
			t.Fatalf("event %d at %v fired after event %d at %v", i, b.at, i-1, a.at)
		}
		if b.at == a.at && b.seq < a.seq {
			t.Fatalf("same-instant events out of scheduling order: %d before %d", a.seq, b.seq)
		}
	}
}

// TestSleepFastPathAdvancesClock verifies the same-instant fast path:
// with an empty heap a sleep advances the clock without dispatching an
// event, and ordering against queued same-time events is preserved.
func TestSleepFastPathAdvancesClock(t *testing.T) {
	k := New()
	var sawAt time.Duration
	k.Go("p", func(p *Proc) {
		p.Sleep(3 * time.Second) // heap empty: fast path
		sawAt = p.Now()
	})
	k.Run()
	if sawAt != 3*time.Second {
		t.Errorf("woke at %v, want 3s", sawAt)
	}
	if k.Now() != 3*time.Second {
		t.Errorf("kernel now = %v, want 3s", k.Now())
	}

	// With a same-instant event queued, Yield must park so the queued
	// event runs first.
	k2 := New()
	var order []string
	k2.Go("q", func(p *Proc) {
		p.Kernel().Schedule(0, func() { order = append(order, "event") })
		p.Yield()
		order = append(order, "proc")
	})
	k2.Run()
	if len(order) != 2 || order[0] != "event" || order[1] != "proc" {
		t.Errorf("order = %v, want [event proc]", order)
	}
}

// BenchmarkScheduleDispatch measures raw event throughput of the
// kernel's heap (no procs involved).
func BenchmarkScheduleDispatch(b *testing.B) {
	k := New()
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 64; j++ {
			k.Schedule(time.Duration(j%7)*time.Microsecond, fn)
		}
		k.Run()
	}
}

// BenchmarkProcSleepLoop measures the proc wake path, dominated by the
// same-instant fast path when the heap is otherwise empty.
func BenchmarkProcSleepLoop(b *testing.B) {
	k := New()
	done := false
	n := 0
	k.Go("sleeper", func(p *Proc) {
		for !done {
			p.Sleep(time.Microsecond)
			n++
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	// The proc spins entirely inside one Run call via the fast path;
	// bound the iterations by flipping done from a scheduled event.
	k.Schedule(time.Duration(b.N+1)*time.Microsecond, func() { done = true })
	k.Run()
	if n < b.N {
		b.Fatalf("only %d sleeps for b.N=%d", n, b.N)
	}
}

// BenchmarkQueuePingPong measures the Queue wait path: one producer
// and one consumer proc trading items through a queue.
func BenchmarkQueuePingPong(b *testing.B) {
	k := New()
	req := NewQueue[int](k)
	rsp := NewQueue[int](k)
	k.Go("server", func(p *Proc) {
		for {
			v := req.Pop(p)
			if v < 0 {
				return
			}
			rsp.Push(v)
		}
	})
	var got int
	k.Go("client", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			req.Push(i)
			got = rsp.Pop(p)
		}
		req.Push(-1)
	})
	b.ReportAllocs()
	b.ResetTimer()
	k.Run()
	_ = got
}
