package sim

import "time"

// Queue is an unbounded FIFO of items passed between simulated
// processes, the moral equivalent of a message queue inside the
// simulated OS. Push never blocks; Pop blocks the calling proc until an
// item is available. Items are delivered in FIFO order and waiters are
// served in FIFO order.
//
// Both the item buffer and the waiter list are head-indexed rings over
// a reusable backing array, and waiters retired by delivery are kept on
// a free list, so steady-state producer/consumer traffic allocates
// nothing per message.
type Queue[T any] struct {
	k     *Kernel
	items []T
	ihead int

	waiters []*qwaiter[T]
	whead   int
	free    []*qwaiter[T]
}

type qwaiter[T any] struct {
	p         *Proc
	item      T
	delivered bool
	cancelled bool // timeout fired or proc killed before delivery

	// gen distinguishes successive uses of a recycled waiter. A
	// PopTimeout closure captures the generation it was armed for and
	// does nothing if the waiter has since been recycled, so timed
	// waiters can go back on the free list like any other.
	gen uint64
}

// NewQueue returns an empty queue bound to kernel k.
func NewQueue[T any](k *Kernel) *Queue[T] {
	return &Queue[T]{k: k}
}

// Len reports the number of buffered (undelivered) items.
func (q *Queue[T]) Len() int { return len(q.items) - q.ihead }

// Waiting reports the number of procs currently blocked in Pop.
func (q *Queue[T]) Waiting() int {
	n := 0
	for _, w := range q.waiters[q.whead:] {
		if !w.cancelled && !w.p.killed && !w.p.done {
			n++
		}
	}
	return n
}

// getWaiter takes a waiter from the free list or allocates one.
func (q *Queue[T]) getWaiter(p *Proc) *qwaiter[T] {
	if n := len(q.free); n > 0 {
		w := q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
		*w = qwaiter[T]{p: p, gen: w.gen + 1}
		return w
	}
	return &qwaiter[T]{p: p}
}

// putWaiter recycles a waiter that the queue no longer references. A
// stale PopTimeout closure may still hold the pointer, but it checks
// the generation before acting, so recycling is always safe.
func (q *Queue[T]) putWaiter(w *qwaiter[T]) {
	q.free = append(q.free, w)
}

// popItem removes and returns the head buffered item. The caller must
// have checked Len() > 0.
func (q *Queue[T]) popItem() T {
	var zero T
	v := q.items[q.ihead]
	q.items[q.ihead] = zero
	q.ihead++
	if q.ihead == len(q.items) {
		q.items = q.items[:0]
		q.ihead = 0
	}
	return v
}

// popWaiter removes and returns the head waiter, or nil if none remain.
func (q *Queue[T]) popWaiter() *qwaiter[T] {
	if q.whead == len(q.waiters) {
		return nil
	}
	w := q.waiters[q.whead]
	q.waiters[q.whead] = nil
	q.whead++
	if q.whead == len(q.waiters) {
		q.waiters = q.waiters[:0]
		q.whead = 0
	}
	return w
}

// Push appends v. If a proc is blocked in Pop, the item is handed
// directly to the longest-waiting live one and that proc is scheduled to
// resume at the current virtual time.
func (q *Queue[T]) Push(v T) {
	for {
		w := q.popWaiter()
		if w == nil {
			break
		}
		if w.cancelled || w.p.killed || w.p.done {
			q.putWaiter(w)
			continue
		}
		w.item = v
		w.delivered = true
		w.p.UnparkExternal()
		return
	}
	q.items = append(q.items, v)
}

// Pop removes and returns the head item, blocking p until one exists.
func (q *Queue[T]) Pop(p *Proc) T {
	for {
		if q.Len() > 0 {
			return q.popItem()
		}
		w := q.getWaiter(p)
		q.waiters = append(q.waiters, w)
		p.park()
		if w.delivered {
			v := w.item
			q.putWaiter(w)
			return v
		}
		// Spurious resume (e.g. from Kill racing a Push) without a
		// delivered item: mark the stale waiter dead — Push skips and
		// recycles it — and retry from the top. The loop (rather than
		// recursion) keeps a pathological wake storm from growing the
		// stack.
		w.cancelled = true
	}
}

// TryPop removes and returns the head item without blocking. The second
// result reports whether an item was available.
func (q *Queue[T]) TryPop() (T, bool) {
	if q.Len() == 0 {
		var zero T
		return zero, false
	}
	return q.popItem(), true
}

// PopTimeout behaves like Pop but gives up after d of virtual time,
// returning ok=false. A timeout of zero or less degenerates to TryPop.
func (q *Queue[T]) PopTimeout(p *Proc, d time.Duration) (T, bool) {
	if d <= 0 {
		return q.TryPop()
	}
	if q.Len() > 0 {
		return q.popItem(), true
	}
	w := q.getWaiter(p)
	gen := w.gen
	q.waiters = append(q.waiters, w)
	q.k.Schedule(d, func() {
		if w.gen == gen && !w.delivered && !w.cancelled {
			w.cancelled = true
			p.UnparkExternal()
		}
	})
	p.park()
	if w.delivered {
		v := w.item
		q.putWaiter(w)
		return v, true
	}
	// Timed out (or spuriously resumed): the waiter is still queued, so
	// it cannot be recycled here; Push pops, skips, and recycles it.
	w.cancelled = true
	var zero T
	return zero, false
}
