package sim

import "time"

// Queue is an unbounded FIFO of items passed between simulated
// processes, the moral equivalent of a message queue inside the
// simulated OS. Push never blocks; Pop blocks the calling proc until an
// item is available. Items are delivered in FIFO order and waiters are
// served in FIFO order.
type Queue[T any] struct {
	k       *Kernel
	items   []T
	waiters []*qwaiter[T]
}

type qwaiter[T any] struct {
	p         *Proc
	item      T
	delivered bool
	cancelled bool // timeout fired or proc killed before delivery
}

// NewQueue returns an empty queue bound to kernel k.
func NewQueue[T any](k *Kernel) *Queue[T] {
	return &Queue[T]{k: k}
}

// Len reports the number of buffered (undelivered) items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Waiting reports the number of procs currently blocked in Pop.
func (q *Queue[T]) Waiting() int {
	n := 0
	for _, w := range q.waiters {
		if !w.cancelled && !w.p.killed && !w.p.done {
			n++
		}
	}
	return n
}

// Push appends v. If a proc is blocked in Pop, the item is handed
// directly to the longest-waiting live one and that proc is scheduled to
// resume at the current virtual time.
func (q *Queue[T]) Push(v T) {
	for len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		if w.cancelled || w.p.killed || w.p.done {
			continue
		}
		w.item = v
		w.delivered = true
		w.p.UnparkExternal()
		return
	}
	q.items = append(q.items, v)
}

// Pop removes and returns the head item, blocking p until one exists.
func (q *Queue[T]) Pop(p *Proc) T {
	if len(q.items) > 0 {
		v := q.items[0]
		q.items = q.items[1:]
		return v
	}
	w := &qwaiter[T]{p: p}
	q.waiters = append(q.waiters, w)
	p.park()
	if !w.delivered {
		// Defensive: a spurious resume (e.g. from Kill racing a Push)
		// without a delivered item; retry from the top.
		w.cancelled = true
		return q.Pop(p)
	}
	return w.item
}

// TryPop removes and returns the head item without blocking. The second
// result reports whether an item was available.
func (q *Queue[T]) TryPop() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, true
}

// PopTimeout behaves like Pop but gives up after d of virtual time,
// returning ok=false. A timeout of zero or less degenerates to TryPop.
func (q *Queue[T]) PopTimeout(p *Proc, d time.Duration) (T, bool) {
	if d <= 0 {
		return q.TryPop()
	}
	if len(q.items) > 0 {
		v := q.items[0]
		q.items = q.items[1:]
		return v, true
	}
	w := &qwaiter[T]{p: p}
	q.waiters = append(q.waiters, w)
	q.k.Schedule(d, func() {
		if !w.delivered && !w.cancelled {
			w.cancelled = true
			p.UnparkExternal()
		}
	})
	p.park()
	if w.delivered {
		return w.item, true
	}
	w.cancelled = true
	var zero T
	return zero, false
}
