package sim

import (
	"testing"
	"time"
)

func TestProcSleep(t *testing.T) {
	k := New()
	var wake time.Duration
	k.Go("sleeper", func(p *Proc) {
		p.Sleep(42 * time.Millisecond)
		wake = p.Now()
	})
	k.Run()
	if wake != 42*time.Millisecond {
		t.Errorf("woke at %v, want 42ms", wake)
	}
	if k.LiveProcs() != 0 {
		t.Errorf("LiveProcs = %d, want 0", k.LiveProcs())
	}
}

func TestProcInterleaving(t *testing.T) {
	k := New()
	var order []string
	mk := func(name string, d time.Duration) {
		k.Go(name, func(p *Proc) {
			p.Sleep(d)
			order = append(order, name)
			p.Sleep(d)
			order = append(order, name)
		})
	}
	mk("a", 10*time.Millisecond)
	mk("b", 15*time.Millisecond)
	k.Run()
	want := []string{"a", "b", "a", "b"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestProcYieldFIFO(t *testing.T) {
	k := New()
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		k.Go("p", func(p *Proc) {
			p.Yield()
			order = append(order, i)
		})
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("yield order = %v", order)
		}
	}
}

func TestProcKillWhileSleeping(t *testing.T) {
	k := New()
	reached := false
	p := k.Go("victim", func(p *Proc) {
		p.Sleep(time.Hour)
		reached = true
	})
	k.Go("killer", func(q *Proc) {
		q.Sleep(time.Second)
		p.Kill()
	})
	end := k.Run()
	if reached {
		t.Error("killed proc ran past its sleep")
	}
	if !p.Done() {
		t.Error("killed proc not marked done")
	}
	if k.LiveProcs() != 0 {
		t.Errorf("LiveProcs = %d, want 0", k.LiveProcs())
	}
	// The hour-long wakeup event still exists but must be a no-op; the
	// clock will advance to it. What matters is no resurrection.
	_ = end
}

func TestProcKillBeforeStart(t *testing.T) {
	k := New()
	ran := false
	p := k.Go("never", func(p *Proc) { ran = true })
	p.Kill()
	k.Run()
	if ran {
		t.Error("killed-before-start proc ran")
	}
	if k.LiveProcs() != 0 {
		t.Errorf("LiveProcs = %d, want 0", k.LiveProcs())
	}
}

func TestBlockedProcLeavesKernelIdle(t *testing.T) {
	k := New()
	q := NewQueue[int](k)
	k.Go("server", func(p *Proc) {
		for {
			q.Pop(p)
		}
	})
	k.Run()
	if k.LiveProcs() != 1 {
		t.Errorf("LiveProcs = %d, want 1 (blocked server)", k.LiveProcs())
	}
	if !k.Idle() {
		t.Error("kernel not idle with only a blocked server")
	}
}

func TestManyProcsDeterministic(t *testing.T) {
	run := func() []string {
		k := New()
		var order []string
		for i := 0; i < 20; i++ {
			name := string(rune('a' + i))
			k.Go(name, func(p *Proc) {
				for j := 0; j < 5; j++ {
					p.Sleep(time.Duration(j+1) * time.Millisecond)
					order = append(order, name)
				}
			})
		}
		k.Run()
		return order
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverges at %d: %q vs %q", i, a[i], b[i])
		}
	}
}
