package sim

import (
	"testing"
	"time"
)

func TestResourceSerializesUse(t *testing.T) {
	k := New()
	cpu := NewResource(k, "cpu", 1)
	var finish []time.Duration
	for i := 0; i < 3; i++ {
		k.Go("job", func(p *Proc) {
			cpu.Use(p, 100*time.Millisecond)
			finish = append(finish, p.Now())
		})
	}
	k.Run()
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 300 * time.Millisecond}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
	if cpu.BusyTime() != 300*time.Millisecond {
		t.Errorf("BusyTime = %v, want 300ms", cpu.BusyTime())
	}
	if cpu.Acquires() != 3 {
		t.Errorf("Acquires = %d, want 3", cpu.Acquires())
	}
}

func TestResourceCapacityTwo(t *testing.T) {
	k := New()
	r := NewResource(k, "r", 2)
	var finish []time.Duration
	for i := 0; i < 4; i++ {
		k.Go("job", func(p *Proc) {
			r.Use(p, time.Second)
			finish = append(finish, p.Now())
		})
	}
	k.Run()
	// Two run in [0,1s], two in [1s,2s].
	want := []time.Duration{time.Second, time.Second, 2 * time.Second, 2 * time.Second}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
}

func TestResourceFIFOAdmission(t *testing.T) {
	k := New()
	r := NewResource(k, "r", 1)
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		k.Go(name, func(p *Proc) {
			r.Acquire(p)
			order = append(order, name)
			p.Sleep(time.Millisecond)
			r.Release()
		})
	}
	k.Run()
	want := []string{"a", "b", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("admission order = %v, want %v", order, want)
		}
	}
}

func TestResourceReleaseIdlePanics(t *testing.T) {
	k := New()
	r := NewResource(k, "r", 1)
	defer func() {
		if recover() == nil {
			t.Error("Release of idle resource did not panic")
		}
	}()
	r.Release()
}

func TestResourceSkipsKilledWaiter(t *testing.T) {
	k := New()
	r := NewResource(k, "r", 1)
	acquired := map[string]bool{}
	k.Go("holder", func(p *Proc) {
		r.Acquire(p)
		p.Sleep(time.Second)
		r.Release()
	})
	victim := k.Go("victim", func(p *Proc) {
		p.Sleep(time.Millisecond)
		r.Acquire(p)
		acquired["victim"] = true
	})
	k.Go("heir", func(p *Proc) {
		p.Sleep(2 * time.Millisecond)
		r.Acquire(p)
		acquired["heir"] = true
		r.Release()
	})
	k.Go("killer", func(p *Proc) {
		p.Sleep(500 * time.Millisecond)
		victim.Kill()
	})
	k.Run()
	if acquired["victim"] {
		t.Error("killed waiter acquired the resource")
	}
	if !acquired["heir"] {
		t.Error("heir never acquired the resource")
	}
}

func TestGate(t *testing.T) {
	k := New()
	g := NewGate(k)
	var woke []time.Duration
	for i := 0; i < 3; i++ {
		k.Go("w", func(p *Proc) {
			g.Wait(p)
			woke = append(woke, p.Now())
		})
	}
	k.Go("opener", func(p *Proc) {
		p.Sleep(time.Second)
		g.Open()
	})
	k.Run()
	if len(woke) != 3 {
		t.Fatalf("only %d waiters woke", len(woke))
	}
	for _, w := range woke {
		if w != time.Second {
			t.Errorf("waiter woke at %v, want 1s", w)
		}
	}
	// Open gate passes through immediately.
	passed := false
	k.Go("late", func(p *Proc) {
		g.Wait(p)
		passed = true
	})
	k.Run()
	if !passed {
		t.Error("late waiter blocked on an open gate")
	}
}

func TestGateReclose(t *testing.T) {
	k := New()
	g := NewGate(k)
	g.Open()
	g.Close()
	woke := false
	k.Go("w", func(p *Proc) {
		g.Wait(p)
		woke = true
	})
	k.Run()
	if woke {
		t.Error("waiter passed a reclosed gate")
	}
	g.Open()
	k.Run()
	if !woke {
		t.Error("waiter not released after reopen")
	}
}

func TestResourcePriorityAdmission(t *testing.T) {
	k := New()
	r := NewResource(k, "cpu", 1)
	var order []string
	k.Go("holder", func(p *Proc) {
		r.Use(p, 100*time.Millisecond)
	})
	for _, name := range []string{"user1", "user2"} {
		name := name
		k.Go(name, func(p *Proc) {
			p.Sleep(time.Millisecond)
			r.Acquire(p)
			order = append(order, name)
			p.Sleep(10 * time.Millisecond)
			r.Release()
		})
	}
	k.Go("kernel", func(p *Proc) {
		p.Sleep(2 * time.Millisecond) // arrives last...
		r.AcquireHigh(p)
		order = append(order, "kernel")
		r.Release()
	})
	k.Run()
	if len(order) != 3 || order[0] != "kernel" {
		t.Errorf("admission order = %v, want kernel first", order)
	}
}

func TestResourcePriorityFIFOWithinClass(t *testing.T) {
	k := New()
	r := NewResource(k, "cpu", 1)
	var order []string
	k.Go("holder", func(p *Proc) { r.Use(p, time.Second) })
	for i, name := range []string{"hi1", "hi2", "hi3"} {
		name := name
		d := time.Duration(i+1) * time.Millisecond
		k.Go(name, func(p *Proc) {
			p.Sleep(d)
			r.AcquireHigh(p)
			order = append(order, name)
			r.Release()
		})
	}
	k.Run()
	for i, want := range []string{"hi1", "hi2", "hi3"} {
		if order[i] != want {
			t.Fatalf("order = %v", order)
		}
	}
}
