package sim

import (
	"time"

	"accentmig/internal/obs"
)

// Resource is a counted semaphore with two-class priority admission
// (FIFO within each class), used to model contended hardware such as a
// CPU, a disk arm, or a network interface. High-priority acquisition
// models kernel and system-server work that preempts user computation
// at the next scheduling boundary.
type Resource struct {
	k        *Kernel
	name     string
	capacity int
	inUse    int
	waiters  []*resWaiter
	free     []*resWaiter // retired waiters, reused to avoid per-wait allocation

	// accounting
	busy      time.Duration // total time units of held capacity
	lastStamp time.Duration
	acquires  uint64

	// waitObs, when set, receives every nonzero queueing delay (wired
	// to a metrics recorder for queue-wait tail distributions).
	waitObs func(time.Duration)
}

type resWaiter struct {
	p       *Proc
	high    bool
	granted bool // the unit was handed off directly by Release
}

// getWaiter takes a waiter from the free list or allocates one.
func (r *Resource) getWaiter(p *Proc, high bool) *resWaiter {
	if n := len(r.free); n > 0 {
		w := r.free[n-1]
		r.free[n-1] = nil
		r.free = r.free[:n-1]
		*w = resWaiter{p: p, high: high}
		return w
	}
	return &resWaiter{p: p, high: high}
}

// NewResource returns a resource with the given capacity (>= 1).
func NewResource(k *Kernel, name string, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: NewResource capacity must be >= 1")
	}
	return &Resource{k: k, name: name, capacity: capacity}
}

// Name reports the resource name.
func (r *Resource) Name() string { return r.name }

// InUse reports the currently held units.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen reports the number of procs blocked in Acquire.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// enqueue inserts the waiter respecting class priority.
func (r *Resource) enqueue(w *resWaiter) {
	if !w.high {
		r.waiters = append(r.waiters, w)
		return
	}
	// Insert after the last queued high-priority waiter.
	idx := 0
	for idx < len(r.waiters) && r.waiters[idx].high {
		idx++
	}
	r.waiters = append(r.waiters, nil)
	copy(r.waiters[idx+1:], r.waiters[idx:])
	r.waiters[idx] = w
}

// Acquires reports the number of successful acquisitions.
func (r *Resource) Acquires() uint64 { return r.acquires }

// BusyTime reports the integral of held units over virtual time, i.e.
// capacity-seconds consumed so far.
func (r *Resource) BusyTime() time.Duration {
	r.account()
	return r.busy
}

func (r *Resource) account() {
	now := r.k.Now()
	r.busy += time.Duration(r.inUse) * (now - r.lastStamp)
	r.lastStamp = now
}

// Acquire blocks p until a unit is available and takes it (normal
// priority).
func (r *Resource) Acquire(p *Proc) { r.acquire(p, false) }

// AcquireHigh is Acquire at system priority: the waiter is admitted
// ahead of all normal-priority waiters.
func (r *Resource) AcquireHigh(p *Proc) { r.acquire(p, true) }

// SetWaitObserver installs (or with nil removes) the queue-wait
// callback, invoked with every nonzero delay spent blocked in Acquire.
func (r *Resource) SetWaitObserver(fn func(time.Duration)) { r.waitObs = fn }

func (r *Resource) acquire(p *Proc, high bool) {
	waitStart := time.Duration(-1)
	for r.inUse >= r.capacity {
		if waitStart < 0 {
			waitStart = r.k.now
		}
		w := r.getWaiter(p, high)
		r.enqueue(w)
		p.park()
		if w.granted {
			// Release handed the unit to us directly (no barging: a
			// releaser that immediately re-acquires must queue behind
			// this grant). inUse was never decremented.
			r.acquires++
			r.free = append(r.free, w)
			r.observeWait(p, waitStart)
			return
		}
		// Spurious wakeup; retry. The stale waiter stays queued until
		// Release pops and discards it, so it cannot be recycled here.
	}
	r.account()
	r.inUse++
	r.acquires++
	r.observeWait(p, waitStart)
}

// observeWait reports the queueing delay since waitStart (negative:
// none) to the wait observer and the flight recorder.
func (r *Resource) observeWait(p *Proc, waitStart time.Duration) {
	if waitStart < 0 {
		return
	}
	d := r.k.now - waitStart
	if d <= 0 {
		return
	}
	if r.waitObs != nil {
		r.waitObs(d)
	}
	if r.k.Tracing() {
		r.k.Emit(obs.Event{
			Kind:    obs.QueueWait,
			Machine: machineOf(r.name),
			Proc:    p.name,
			Name:    r.name,
			Dur:     d,
		})
	}
}

// Release returns one unit and wakes the longest-waiting proc, if any.
// It may be called from kernel or proc context.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: Release of idle resource " + r.name)
	}
	r.account()
	// Hand the unit directly to the longest-waiting live waiter, so the
	// releaser cannot barge back in ahead of it; only if no waiter is
	// live does the unit become free.
	for len(r.waiters) > 0 {
		w := r.waiters[0]
		r.waiters[0] = nil
		r.waiters = r.waiters[1:]
		if w.p.killed || w.p.done {
			r.free = append(r.free, w)
			continue
		}
		w.granted = true
		w.p.UnparkExternal()
		return
	}
	r.inUse--
}

// Use acquires the resource, holds it for d of virtual time, and
// releases it. This is the common "spend CPU" idiom: contention shows up
// as queueing delay before the hold begins.
func (r *Resource) Use(p *Proc, d time.Duration) {
	r.Acquire(p)
	p.Sleep(d)
	r.Release()
	r.observeHold(p, d)
}

// UseHigh is Use at system priority, for kernel and server work that
// must not starve behind user compute slices.
func (r *Resource) UseHigh(p *Proc, d time.Duration) {
	r.AcquireHigh(p)
	p.Sleep(d)
	r.Release()
	r.observeHold(p, d)
}

// observeHold records one completed hold span in the flight recorder
// (the raw material of utilization timelines and critical-path blame).
// With no sink installed it costs one nil check, preserving the
// zero-allocation discipline of the untraced hot path.
func (r *Resource) observeHold(p *Proc, d time.Duration) {
	if d <= 0 || !r.k.Tracing() {
		return
	}
	r.k.Emit(obs.Event{
		Kind:    obs.ResourceHold,
		Machine: machineOf(r.name),
		Proc:    p.name,
		Name:    r.name,
		Dur:     d,
	})
}

// Gate is a boolean latch: procs can wait until it opens; opening wakes
// every waiter. Reusable after Close.
type Gate struct {
	k       *Kernel
	open    bool
	waiters []*Proc
}

// NewGate returns a closed gate.
func NewGate(k *Kernel) *Gate { return &Gate{k: k} }

// Opened reports whether the gate is open.
func (g *Gate) Opened() bool { return g.open }

// Open opens the gate and wakes all waiters.
func (g *Gate) Open() {
	if g.open {
		return
	}
	g.open = true
	ws := g.waiters
	// Keep the backing array for the next Close/Wait cycle; nothing can
	// append while this (single-threaded, synchronous) loop runs.
	g.waiters = g.waiters[:0]
	for _, w := range ws {
		if !w.killed && !w.done {
			w.UnparkExternal()
		}
	}
}

// Close shuts the gate again; future Wait calls block.
func (g *Gate) Close() { g.open = false }

// Wait blocks p until the gate is open. Returns immediately if open.
func (g *Gate) Wait(p *Proc) {
	for !g.open {
		g.waiters = append(g.waiters, p)
		p.park()
	}
}
