// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel maintains a virtual clock and an event heap. Higher layers
// model operating-system activity in one of two styles:
//
//   - callbacks scheduled at a virtual time (Kernel.Schedule), and
//   - sequential processes (Proc) that run as goroutines but are
//     interleaved cooperatively, exactly one at a time, so that a whole
//     simulation is deterministic and race-free by construction.
//
// Events at the same virtual time fire in scheduling order (FIFO), which
// makes every run of a simulation bit-for-bit reproducible.
//
// A Kernel and everything scheduled on it belong to one goroutine (plus
// the proc goroutines it interleaves); kernels are cheap, so concurrent
// simulations each get their own Kernel rather than sharing one.
package sim

import (
	"fmt"
	"strings"
	"time"

	"accentmig/internal/obs"
)

// Kernel is a discrete-event simulation executive. The zero value is not
// usable; create kernels with New.
type Kernel struct {
	now    time.Duration
	seq    uint64
	events eventHeap
	nowq   nowRing // zero-delay events for the current instant

	// yield is the rendezvous on which the currently running Proc hands
	// control back to the kernel. Only one Proc runs at a time, so a
	// single unbuffered channel suffices.
	yield chan struct{}

	cur      *Proc // proc currently executing, nil in callback context
	live     int   // procs started and not yet finished
	ran      uint64
	stopped  bool
	deadline time.Duration
	hasDL    bool

	sink    obs.Sink
	evSeq   uint64
	traceID uint64
}

// New returns an empty kernel with the clock at zero.
func New() *Kernel {
	return &Kernel{yield: make(chan struct{})}
}

// Now reports the current virtual time.
func (k *Kernel) Now() time.Duration { return k.now }

// EventsRun reports how many events have been dispatched so far. It is
// useful in tests as a cheap progress/forward-motion check. Sleeps that
// take the same-instant fast path (see Proc.Sleep) advance the clock
// without dispatching an event, so this undercounts wake-ups.
func (k *Kernel) EventsRun() uint64 { return k.ran }

// SetSink installs (or with nil removes) the flight-recorder sink.
// Every emission point in the simulation stack is guarded by Tracing,
// so a nil sink costs one pointer comparison on the hot path.
func (k *Kernel) SetSink(s obs.Sink) { k.sink = s }

// Tracing reports whether a flight-recorder sink is installed. Callers
// with any per-event assembly cost (WireBytes sums, name splits) should
// check it before building the event.
func (k *Kernel) Tracing() bool { return k.sink != nil }

// Emit stamps ev with the current virtual time and a sequence number
// and delivers it to the sink, if any.
func (k *Kernel) Emit(ev obs.Event) { k.EmitAt(k.now, ev) }

// EmitAt is Emit with an explicit timestamp, for events reconstructed
// after the fact (e.g. phase spans known only once an ack arrives).
func (k *Kernel) EmitAt(t time.Duration, ev obs.Event) {
	if k.sink == nil {
		return
	}
	ev.T = t
	ev.Seq = k.evSeq
	k.evSeq++
	k.sink.Emit(ev)
}

// NextTraceID hands out a fresh nonzero correlation id for flight-
// recorder events that must be matched up across emission points (one
// logical IPC message's send and receive, however many hops apart).
// Ids are per-kernel and deterministic; callers only mint them when
// tracing, so untraced runs never touch the counter.
func (k *Kernel) NextTraceID() uint64 {
	k.traceID++
	return k.traceID
}

// machineOf derives the owning machine from a dotted component name
// ("src.cpu" -> "src"); names with no dot have no machine.
func machineOf(name string) string {
	if i := strings.IndexByte(name, '.'); i >= 0 {
		return name[:i]
	}
	return ""
}

// Schedule arranges for fn to run at Now()+d in kernel (callback)
// context. A negative delay is treated as zero. Events scheduled for the
// same instant run in the order they were scheduled.
//
// Zero-delay events — every wake-up, unpark, and queue hand-off in the
// simulation — bypass the heap entirely and land on a FIFO ring for the
// current instant. This is safe because a heap entry with at == now can
// only have been pushed before the clock reached now (push requires
// d > 0), i.e. it precedes every ring entry in scheduling order; the
// dispatch loop therefore drains heap entries at the current instant
// first, then the ring, which is exactly FIFO scheduling order.
func (k *Kernel) Schedule(d time.Duration, fn func()) {
	if fn == nil {
		panic("sim: Schedule with nil function")
	}
	if d <= 0 {
		k.nowq.push(fn)
		return
	}
	k.events.push(event{at: k.now + d, seq: k.seq, fn: fn})
	k.seq++
}

// ScheduleAt arranges for fn to run at absolute virtual time t, which
// must not be in the past.
func (k *Kernel) ScheduleAt(t time.Duration, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: ScheduleAt(%v) in the past (now %v)", t, k.now))
	}
	k.Schedule(t-k.now, fn)
}

// Stop makes Run return after the currently dispatching event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Run dispatches events until the event heap is empty, the deadline set
// by RunUntil is reached, or Stop is called. It returns the virtual time
// at which it stopped. Procs that are still blocked when the heap drains
// simply remain parked; this mirrors an idle operating system.
func (k *Kernel) Run() time.Duration {
	if k.cur != nil {
		panic("sim: Run called from proc context")
	}
	k.stopped = false
	for !k.stopped {
		// Heap entries already due fire before the now-ring: they were
		// scheduled before the clock reached this instant, so they are
		// earlier in FIFO order than any ring entry (see Schedule).
		if len(k.events.h) > 0 && k.events.h[0].at == k.now {
			e := k.events.pop()
			k.ran++
			e.fn()
			continue
		}
		if fn := k.nowq.pop(); fn != nil {
			k.ran++
			fn()
			continue
		}
		if len(k.events.h) == 0 {
			break
		}
		if k.hasDL && k.events.h[0].at > k.deadline {
			// Leave it queued; a later RunUntil may want it.
			k.now = k.deadline
			k.hasDL = false
			return k.now
		}
		e := k.events.pop()
		k.now = e.at
		k.ran++
		e.fn()
	}
	k.hasDL = false
	return k.now
}

// RunUntil dispatches events with timestamps up to and including t and
// then returns, leaving later events queued and advancing the clock to t
// if the heap drained early. It is the basis for incremental inspection
// of a simulation (e.g. sampling a byte-rate series).
func (k *Kernel) RunUntil(t time.Duration) time.Duration {
	if t < k.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) in the past (now %v)", t, k.now))
	}
	k.deadline = t
	k.hasDL = true
	k.Run()
	if k.now < t {
		k.now = t
	}
	return k.now
}

// Idle reports whether no events are pending.
func (k *Kernel) Idle() bool { return len(k.events.h) == 0 && k.nowq.empty() }

// NextEventAt reports the virtual time of the earliest pending event and
// whether one exists. Ring entries are due at the current instant, so a
// non-empty now-ring reports Now(). The cluster scheduler uses this to
// pick each conservative window's start without disturbing the queues.
func (k *Kernel) NextEventAt() (time.Duration, bool) {
	if !k.nowq.empty() {
		return k.now, true
	}
	if len(k.events.h) == 0 {
		return 0, false
	}
	return k.events.h[0].at, true
}

// LiveProcs reports the number of procs that have been started and have
// not yet returned. A nonzero value with an idle heap means those procs
// are blocked forever (e.g. servers waiting for requests), which is the
// normal end state of an OS simulation.
func (k *Kernel) LiveProcs() int { return k.live }

// nowRing is a head-indexed FIFO ring of zero-delay events for the
// current instant. The same-instant case dominates dispatch (every
// unpark, queue hand-off, and gate open is a zero-delay event), and a
// ring turns each of those from an O(log n) heap sift into an append
// and an indexed read. The backing array is reused once drained, so
// steady-state traffic allocates nothing.
type nowRing struct {
	fns  []func()
	head int
}

func (r *nowRing) push(fn func()) { r.fns = append(r.fns, fn) }

func (r *nowRing) empty() bool { return r.head == len(r.fns) }

// pop removes and returns the head entry, or nil if the ring is empty.
func (r *nowRing) pop() func() {
	if r.head == len(r.fns) {
		return nil
	}
	fn := r.fns[r.head]
	r.fns[r.head] = nil // release the closure to the GC
	r.head++
	if r.head == len(r.fns) {
		r.fns = r.fns[:0]
		r.head = 0
	}
	return fn
}

// event is a single heap entry, stored by value: scheduling allocates
// nothing beyond the amortized growth of the heap's backing array.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

// eventHeap is an index-based 4-ary min-heap ordered by (at, seq). A
// 4-ary layout halves the tree depth of a binary heap, so sift-down —
// the cost that dominates pop — touches fewer cache lines, and the
// by-value storage avoids both the per-event allocation and the
// interface boxing that container/heap would impose on this hot path.
type eventHeap struct {
	h []event
}

// before orders events by time, then by scheduling order.
func (a *event) before(b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (eh *eventHeap) push(e event) {
	h := append(eh.h, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !e.before(&h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = e
	eh.h = h
}

func (eh *eventHeap) pop() event {
	h := eh.h
	min := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = event{} // release the closure to the GC
	h = h[:n]
	if n > 0 {
		i := 0
		for {
			c := 4*i + 1
			if c >= n {
				break
			}
			m := c
			if c+4 <= n {
				// All four children exist (the overwhelmingly common
				// case on a full level): unrolled min scan with the
				// bounds known, sparing the inner loop's per-iteration
				// compare against end.
				if h[c+1].before(&h[m]) {
					m = c + 1
				}
				if h[c+2].before(&h[m]) {
					m = c + 2
				}
				if h[c+3].before(&h[m]) {
					m = c + 3
				}
			} else {
				for j := c + 1; j < n; j++ {
					if h[j].before(&h[m]) {
						m = j
					}
				}
			}
			if !h[m].before(&last) {
				break
			}
			h[i] = h[m]
			i = m
		}
		h[i] = last
	}
	eh.h = h
	return min
}
