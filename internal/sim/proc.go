package sim

import (
	"fmt"
	"time"
)

// Proc is a sequential simulated process. Its body runs on a dedicated
// goroutine, but the kernel guarantees that at most one proc goroutine
// executes at any real instant: a proc runs until it blocks on a kernel
// primitive (Sleep, Queue.Pop, Resource.Acquire, ...) and only then does
// the kernel dispatch the next event. This gives straight-line,
// blocking-style OS code with fully deterministic interleaving.
type Proc struct {
	k      *Kernel
	name   string
	resume chan struct{}
	killed bool
	done   bool

	// unparkFn is p.unpark bound once at creation, so the Sleep and
	// UnparkExternal hot paths schedule it without allocating a fresh
	// method-value closure per wake-up.
	unparkFn func()
}

// killSignal is panicked inside a proc goroutine to unwind it when the
// proc has been killed while parked.
type killSignal struct{ p *Proc }

// Go starts fn as a new simulated process at the current virtual time.
// The returned Proc may be used immediately (e.g. passed to Kill), but
// fn itself begins executing when the start event is dispatched.
func (k *Kernel) Go(name string, fn func(p *Proc)) *Proc {
	if fn == nil {
		panic("sim: Go with nil function")
	}
	p := &Proc{k: k, name: name, resume: make(chan struct{})}
	p.unparkFn = p.unpark
	k.live++
	k.Schedule(0, func() { p.launch(fn) })
	return p
}

// launch runs in kernel context: it spins up the proc goroutine and
// waits for it to park or finish before returning to the event loop.
func (p *Proc) launch(fn func(p *Proc)) {
	if p.killed {
		p.finish()
		return
	}
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if ks, ok := r.(killSignal); ok && ks.p == p {
					// Normal unwind of a killed proc.
				} else {
					// Re-panic on the kernel side so the failure
					// surfaces with this goroutine's stack attached.
					p.done = true
					p.k.live--
					panic(r)
				}
			}
			p.done = true
			p.k.live--
			p.k.cur = nil
			p.k.yield <- struct{}{}
		}()
		p.k.cur = p
		fn(p)
	}()
	<-p.k.yield
}

func (p *Proc) finish() {
	p.done = true
	p.k.live--
}

// park hands control back to the kernel and blocks until unparked. It
// must be called from the proc's own goroutine.
func (p *Proc) park() {
	if p.k.cur != p {
		panic(fmt.Sprintf("sim: proc %q parking while not current", p.name))
	}
	p.k.cur = nil
	p.k.yield <- struct{}{}
	<-p.resume
	if p.killed {
		panic(killSignal{p})
	}
	p.k.cur = p
}

// unpark runs in kernel context and transfers control to the parked
// proc, returning once the proc parks again or finishes.
func (p *Proc) unpark() {
	if p.done {
		return
	}
	p.resume <- struct{}{}
	<-p.k.yield
}

// Name reports the name the proc was created with.
func (p *Proc) Name() string { return p.name }

// Kernel returns the kernel this proc belongs to.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now reports the current virtual time.
func (p *Proc) Now() time.Duration { return p.k.now }

// Done reports whether the proc body has returned.
func (p *Proc) Done() bool { return p.done }

// Sleep blocks the proc for d of virtual time. Zero and negative
// durations yield the processor for one event-queue round trip, which
// still provides a deterministic scheduling point.
//
// Fast path: when every queued event is strictly later than the wake
// time, the wake event would be dispatched immediately after parking
// with nothing running in between, so Sleep just advances the clock in
// place. That elides the two yield-channel round trips (park + unpark)
// that otherwise dominate the cost of fine-grained sleeps; observable
// ordering is unchanged because no other event could have interleaved.
// The path also applies under a RunUntil deadline as long as the wake
// time does not overshoot it (RunUntil dispatches events at exactly the
// deadline, so waking at k.deadline in place is equivalent); cluster
// lanes run entirely inside RunUntil windows and would otherwise lose
// the fast path for every sleep.
func (p *Proc) Sleep(d time.Duration) {
	k := p.k
	if d < 0 {
		d = 0
	}
	if (!k.hasDL || k.now+d <= k.deadline) && !k.stopped && k.nowq.empty() && (len(k.events.h) == 0 || k.events.h[0].at > k.now+d) {
		if k.cur != p {
			panic(fmt.Sprintf("sim: proc %q sleeping while not current", p.name))
		}
		k.now += d
		return
	}
	k.Schedule(d, p.unparkFn)
	p.park()
}

// Yield reschedules the proc at the current instant, letting any other
// events queued for this time run first.
func (p *Proc) Yield() { p.Sleep(0) }

// Kill marks the proc dead. If it is parked it unwinds the next time it
// would resume; if it is live on the event heap its pending resumption
// turns into the unwind. Killing a finished proc is a no-op. Kill may be
// called from kernel or proc context (but not on oneself).
func (p *Proc) Kill() {
	if p.done || p.killed {
		return
	}
	if p.k.cur == p {
		panic("sim: proc killing itself; return from the body instead")
	}
	p.killed = true
	// If the proc is parked waiting on some queue/resource, nothing will
	// resume it unless we do. A spurious resume for a proc that was
	// about to be resumed anyway is harmless: unpark on a done proc is a
	// no-op, and killSignal unwinds exactly once.
	p.k.Schedule(0, func() {
		if !p.done {
			p.unpark()
		}
	})
}

// Park blocks the proc until some other party calls UnparkExternal. It
// is a low-level escape hatch used by higher-level primitives (Queue,
// Resource, Gate) in this package and by tests.
func (p *Proc) Park() { p.park() }

// UnparkExternal schedules the proc to resume at the current virtual
// time. It must pair with a Park.
func (p *Proc) UnparkExternal() {
	p.k.Schedule(0, p.unparkFn)
}
