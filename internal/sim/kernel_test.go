package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	k := New()
	var got []int
	k.Schedule(3*time.Millisecond, func() { got = append(got, 3) })
	k.Schedule(1*time.Millisecond, func() { got = append(got, 1) })
	k.Schedule(2*time.Millisecond, func() { got = append(got, 2) })
	end := k.Run()
	if end != 3*time.Millisecond {
		t.Errorf("Run ended at %v, want 3ms", end)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSameInstantFIFO(t *testing.T) {
	k := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(time.Millisecond, func() { got = append(got, i) })
	}
	k.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events out of FIFO order: %v", got)
		}
	}
}

func TestNestedSchedule(t *testing.T) {
	k := New()
	var fired []time.Duration
	k.Schedule(time.Second, func() {
		k.Schedule(time.Second, func() {
			fired = append(fired, k.Now())
		})
		fired = append(fired, k.Now())
	})
	k.Run()
	if len(fired) != 2 || fired[0] != time.Second || fired[1] != 2*time.Second {
		t.Errorf("fired = %v, want [1s 2s]", fired)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	k := New()
	ran := false
	k.Schedule(-time.Hour, func() { ran = true })
	if end := k.Run(); end != 0 {
		t.Errorf("clock advanced to %v for clamped event", end)
	}
	if !ran {
		t.Error("negative-delay event never ran")
	}
}

func TestRunUntil(t *testing.T) {
	k := New()
	var fired []time.Duration
	for _, d := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second} {
		d := d
		k.Schedule(d, func() { fired = append(fired, d) })
	}
	k.RunUntil(2 * time.Second)
	if len(fired) != 2 {
		t.Fatalf("after RunUntil(2s): fired %v", fired)
	}
	if k.Now() != 2*time.Second {
		t.Errorf("Now = %v, want 2s", k.Now())
	}
	k.Run()
	if len(fired) != 3 {
		t.Fatalf("after final Run: fired %v", fired)
	}
	if k.Now() != 3*time.Second {
		t.Errorf("final Now = %v, want 3s", k.Now())
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	k := New()
	k.RunUntil(5 * time.Second)
	if k.Now() != 5*time.Second {
		t.Errorf("Now = %v, want 5s on empty heap", k.Now())
	}
}

func TestStop(t *testing.T) {
	k := New()
	n := 0
	for i := 0; i < 5; i++ {
		k.Schedule(time.Duration(i)*time.Millisecond, func() {
			n++
			if n == 2 {
				k.Stop()
			}
		})
	}
	k.Run()
	if n != 2 {
		t.Errorf("ran %d events after Stop, want 2", n)
	}
	// Run may be resumed.
	k.Run()
	if n != 5 {
		t.Errorf("total events %d after resumed Run, want 5", n)
	}
}

func TestScheduleAtPastPanics(t *testing.T) {
	k := New()
	k.Schedule(time.Second, func() {})
	k.Run()
	defer func() {
		if recover() == nil {
			t.Error("ScheduleAt in the past did not panic")
		}
	}()
	k.ScheduleAt(time.Millisecond, func() {})
}

// TestDeterminism runs an identical randomized workload twice and
// requires the dispatch traces to match exactly.
func TestDeterminism(t *testing.T) {
	run := func() []time.Duration {
		k := New()
		var trace []time.Duration
		var rng uint64 = 12345
		next := func() uint64 {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return rng
		}
		var spawn func(depth int)
		spawn = func(depth int) {
			if depth > 4 {
				return
			}
			d := time.Duration(next()%1000) * time.Microsecond
			k.Schedule(d, func() {
				trace = append(trace, k.Now())
				spawn(depth + 1)
				spawn(depth + 1)
			})
		}
		spawn(0)
		k.Run()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: for any set of non-negative delays, Run dispatches them in
// non-decreasing time order and ends the clock at the max delay.
func TestQuickDispatchOrder(t *testing.T) {
	f := func(delays []uint16) bool {
		k := New()
		var seen []time.Duration
		var max time.Duration
		for _, d := range delays {
			dd := time.Duration(d) * time.Microsecond
			if dd > max {
				max = dd
			}
			k.Schedule(dd, func() { seen = append(seen, k.Now()) })
		}
		end := k.Run()
		if len(delays) > 0 && end != max {
			return false
		}
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return len(seen) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// BenchmarkKernelEvents measures raw event dispatch throughput.
func BenchmarkKernelEvents(b *testing.B) {
	k := New()
	for i := 0; i < b.N; i++ {
		k.Schedule(time.Duration(i)*time.Microsecond, func() {})
	}
	b.ResetTimer()
	k.Run()
}

// BenchmarkProcSwitch measures coroutine context-switch cost.
func BenchmarkProcSwitch(b *testing.B) {
	k := New()
	k.Go("switcher", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Yield()
		}
	})
	b.ResetTimer()
	k.Run()
}

// BenchmarkQueueHandoff measures producer/consumer hand-off cost.
func BenchmarkQueueHandoff(b *testing.B) {
	k := New()
	q := NewQueue[int](k)
	k.Go("producer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q.Push(i)
			p.Yield()
		}
	})
	k.Go("consumer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q.Pop(p)
		}
	})
	b.ResetTimer()
	k.Run()
}
