package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestKindStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, k := range Kinds() {
		s := k.String()
		if strings.Contains(s, "?") {
			t.Errorf("kind %d has no name", k)
		}
		if seen[s] {
			t.Errorf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
	if len(Kinds()) != int(numKinds) {
		t.Errorf("Kinds() returned %d kinds, want %d", len(Kinds()), numKinds)
	}
	if Kind(250).String() != "Kind(?)" {
		t.Errorf("out-of-range kind: %q", Kind(250).String())
	}
}

func TestMemorySink(t *testing.T) {
	m := NewMemorySink()
	m.Emit(Event{Kind: MsgSend, Machine: "src"})
	m.Emit(Event{Kind: MsgSend, Machine: "src"})
	m.Emit(Event{Kind: FaultStart, Machine: "dst"})
	if m.Len() != 3 {
		t.Fatalf("Len = %d, want 3", m.Len())
	}
	counts := m.CountKinds()
	if counts[MsgSend] != 2 || counts[FaultStart] != 1 {
		t.Errorf("CountKinds = %v", counts)
	}
	if m.Events()[2].Machine != "dst" {
		t.Errorf("events out of order: %+v", m.Events())
	}
}

func TestWithPrefix(t *testing.T) {
	m := NewMemorySink()
	s := WithPrefix(m, "trial-1/")
	s.Emit(Event{Kind: MsgSend, Machine: "src"})
	s.Emit(Event{Kind: QueueWait}) // machine-less kernel event
	if got := m.Events()[0].Machine; got != "trial-1/src" {
		t.Errorf("Machine = %q, want trial-1/src", got)
	}
	if got := m.Events()[1].Machine; got != "trial-1/" {
		t.Errorf("machine-less Machine = %q, want trial-1/", got)
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	s.Emit(Event{T: time.Second, Seq: 0, Kind: MsgSend, Machine: "src", Proc: "p", Bytes: 128, Dur: time.Millisecond, Op: 0x2001})
	s.Emit(Event{T: 2 * time.Second, Seq: 1, Kind: FaultResolved, Machine: "dst", Name: "imag", Addr: 0x1000, Dur: 115 * time.Millisecond})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line 0 is not JSON: %v", err)
	}
	if rec["kind"] != "MsgSend" || rec["machine"] != "src" || rec["bytes"] != float64(128) {
		t.Errorf("line 0 = %v", rec)
	}
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatalf("line 1 is not JSON: %v", err)
	}
	if rec["name"] != "imag" || rec["t"] != float64(2*time.Second) {
		t.Errorf("line 1 = %v", rec)
	}
}

func TestChromeSinkValidJSON(t *testing.T) {
	var buf bytes.Buffer
	s := NewChromeSink(&buf)
	s.Emit(Event{T: time.Second, Kind: PhaseBegin, Machine: "src", Proc: "job", Name: "excise"})
	s.Emit(Event{T: 2 * time.Second, Kind: PhaseEnd, Machine: "src", Proc: "job", Name: "excise"})
	s.Emit(Event{T: 3 * time.Second, Kind: MsgSend, Machine: "src", Proc: "job", Bytes: 64, Dur: 2 * time.Millisecond})
	s.Emit(Event{T: 4 * time.Second, Kind: StateChange, Machine: "dst", Name: "Inserted"})
	s.Emit(Event{T: 5 * time.Second, Kind: QueueWait, Dur: time.Millisecond}) // machine-less
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("document is not valid JSON: %v\n%s", err, buf.String())
	}

	var b, e int
	pids := map[float64]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "B":
			b++
		case "E":
			e++
		case "X":
			if ev["dur"].(float64) <= 0 {
				t.Errorf("X event without duration: %v", ev)
			}
			// Complete events cover [T-Dur, T].
			if ev["cat"] == "MsgSend" && ev["ts"].(float64) != (3*time.Second-2*time.Millisecond).Seconds()*1e6 {
				t.Errorf("X ts = %v", ev["ts"])
			}
		case "M":
			continue
		}
		pids[ev["pid"].(float64)] = true
	}
	if b != 1 || e != 1 {
		t.Errorf("B/E balance: %d begins, %d ends", b, e)
	}
	// src, dst, and the machine-less "sim" pseudo-process.
	if len(pids) != 3 {
		t.Errorf("expected 3 distinct pids, got %v", pids)
	}

	// Name metadata must cover every pid.
	named := map[float64]bool{}
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "M" && ev["name"] == "process_name" {
			named[ev["pid"].(float64)] = true
		}
	}
	for pid := range pids {
		if !named[pid] {
			t.Errorf("pid %v has no process_name metadata", pid)
		}
	}
}

func TestChromeSinkKernelThread(t *testing.T) {
	var buf bytes.Buffer
	s := NewChromeSink(&buf)
	s.Emit(Event{Kind: PageTransfer, Machine: "dst", Name: "install"}) // no Proc
	s.Emit(Event{Kind: MsgSend, Machine: "dst", Proc: "dst.migmgr"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.TraceEvents[0]["tid"].(float64) != 0 {
		t.Errorf("kernel-context event should be tid 0: %v", doc.TraceEvents[0])
	}
	if doc.TraceEvents[1]["tid"].(float64) == 0 {
		t.Errorf("proc event should not share the kernel tid: %v", doc.TraceEvents[1])
	}
}
