// Package obs is the simulation-wide flight recorder: a lightweight
// event-sink interface receiving typed, virtual-timestamped events from
// every layer of the stack — IPC sends and receives, page faults and
// their resolutions, page transfers, resource-queue waits, migration
// phases, and process state transitions.
//
// The package is deliberately dependency-free (standard library only)
// so that even the simulation kernel can import it. Emission points
// throughout the tree are guarded by sim.Kernel.Tracing(), so a
// simulation with no sink installed pays nothing beyond a nil check on
// its hot paths.
//
// Two exporters turn an event stream into files: JSONLSink writes one
// JSON object per line (grep/jq-friendly), and ChromeSink writes the
// Chrome trace-event format, loadable in Perfetto (ui.perfetto.dev)
// with machines as processes and simulated processes as threads, all
// keyed to virtual time.
package obs

import (
	"sync"
	"time"
)

// Kind is the type of one event.
type Kind uint8

const (
	// MsgSend is one IPC message entering the kernel (copy-in charged).
	MsgSend Kind = iota
	// MsgRecv is one IPC message leaving a port queue (copy-out charged).
	MsgRecv
	// FaultStart marks entry to a page-fault service path.
	FaultStart
	// FaultResolved marks fault completion; Dur is the resolution
	// latency and Name the fault kind (fillzero, disk, imag).
	FaultResolved
	// PageTransfer is page data crossing a layer boundary: shipped with
	// a message (Name "data"), served by a backer (Name "fault"), or
	// installed during process insertion (Name "install").
	PageTransfer
	// QueueWait is time spent blocked on a contended resource; Name is
	// the resource, Dur the wait.
	QueueWait
	// PhaseBegin opens a named migration phase (excise, xfer.core,
	// xfer.rimas, insert).
	PhaseBegin
	// PhaseEnd closes a named migration phase.
	PhaseEnd
	// StateChange is a process or migration state transition; Name is
	// the new state.
	StateChange
	// LinkXmit is one frame crossing a network link; Dur includes
	// medium contention and propagation.
	LinkXmit
	// NetRetransmit is a reliable-transport retransmission after a lost
	// frame; Dur is the backoff waited before resending.
	NetRetransmit
	// ResourceHold is one completed hold of a contended resource (CPU
	// slice, disk arm): Name is the resource, Dur the held time, and the
	// span covers [T-Dur, T]. Together with QueueWait and LinkXmit these
	// spans are the raw material of per-resource utilization timelines
	// and critical-path blame (package prof).
	ResourceHold

	numKinds
)

// String names the kind for logs and exporters.
func (k Kind) String() string {
	switch k {
	case MsgSend:
		return "MsgSend"
	case MsgRecv:
		return "MsgRecv"
	case FaultStart:
		return "FaultStart"
	case FaultResolved:
		return "FaultResolved"
	case PageTransfer:
		return "PageTransfer"
	case QueueWait:
		return "QueueWait"
	case PhaseBegin:
		return "PhaseBegin"
	case PhaseEnd:
		return "PhaseEnd"
	case StateChange:
		return "StateChange"
	case LinkXmit:
		return "LinkXmit"
	case NetRetransmit:
		return "NetRetransmit"
	case ResourceHold:
		return "ResourceHold"
	default:
		return "Kind(?)"
	}
}

// Kinds lists every event kind, for exhaustive iteration in tests and
// reports.
func Kinds() []Kind {
	out := make([]Kind, 0, int(numKinds))
	for k := Kind(0); k < numKinds; k++ {
		out = append(out, k)
	}
	return out
}

// Event is one flight-recorder record. Only T, Seq and Kind are always
// meaningful; the remaining fields are populated as the kind requires.
type Event struct {
	// T is the virtual time of the event (for completed spans, the end).
	T time.Duration
	// Seq is a per-kernel emission sequence number; events with equal T
	// are causally ordered by Seq.
	Seq uint64
	// Kind is the event type.
	Kind Kind
	// Machine is the emitting machine (or link) name; empty for
	// machine-less kernel events.
	Machine string
	// Proc is the simulated process involved, when known.
	Proc string
	// Name carries the kind-specific label: phase name, fault kind,
	// resource name, new state.
	Name string
	// Addr is the faulting page address, for fault events.
	Addr uint64
	// Bytes is the payload size for message and transfer events.
	Bytes int
	// Dur is the span length (handling CPU, resolution latency, queue
	// wait); events with Dur > 0 cover [T-Dur, T].
	Dur time.Duration
	// Op is the IPC operation code for message events.
	Op int
	// MsgID is the causal correlation id for message events: every
	// MsgSend and MsgRecv of one logical message carries the same
	// nonzero id, however many hops and re-encodings it crosses. The
	// profiler's DAG builder turns equal ids into happens-before edges.
	MsgID uint64
}

// Sink receives events. Emit is called from the single simulation
// goroutine that is live at any instant, so implementations need no
// locking unless they are shared across kernels driven concurrently.
type Sink interface {
	Emit(Event)
}

// MemorySink buffers every event in order, for tests and in-process
// analysis (timelines, critical paths).
type MemorySink struct {
	events []Event
}

// NewMemorySink returns an empty memory sink.
func NewMemorySink() *MemorySink { return &MemorySink{} }

// Emit appends the event.
func (m *MemorySink) Emit(ev Event) { m.events = append(m.events, ev) }

// Events returns the buffered events in emission order.
func (m *MemorySink) Events() []Event { return m.events }

// Len reports the number of buffered events.
func (m *MemorySink) Len() int { return len(m.events) }

// CountKinds tallies buffered events by kind.
func (m *MemorySink) CountKinds() map[Kind]int {
	out := make(map[Kind]int)
	for _, ev := range m.events {
		out[ev.Kind]++
	}
	return out
}

// prefixSink namespaces Machine names, so several trials sharing one
// sink (e.g. one trace file for a whole experiment sweep) stay
// distinguishable — in the Chrome exporter each prefixed machine
// becomes its own process group.
type prefixSink struct {
	next   Sink
	prefix string
}

// WithPrefix returns a sink that forwards to next with prefix prepended
// to every event's Machine field.
func WithPrefix(next Sink, prefix string) Sink {
	return &prefixSink{next: next, prefix: prefix}
}

func (s *prefixSink) Emit(ev Event) {
	ev.Machine = s.prefix + ev.Machine
	s.next.Emit(ev)
}

// syncSink serializes Emit calls with a mutex, for one sink shared by
// several kernels driven from concurrent goroutines (e.g. parallel
// experiment trials tracing into one file). Events from different
// kernels interleave in arrival order, but each kernel's own stream
// keeps its order and no event is torn.
type syncSink struct {
	mu   sync.Mutex
	next Sink
}

// Synchronized wraps next so concurrent emitters do not race. Wrapping
// an already-synchronized sink returns it unchanged.
func Synchronized(next Sink) Sink {
	if _, ok := next.(*syncSink); ok {
		return next
	}
	return &syncSink{next: next}
}

func (s *syncSink) Emit(ev Event) {
	s.mu.Lock()
	s.next.Emit(ev)
	s.mu.Unlock()
}
