package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// ChromeSink streams events in the Chrome trace-event format (the JSON
// object form, loadable in Perfetto and chrome://tracing). Machines map
// to trace processes and simulated processes to threads; timestamps are
// virtual time in microseconds. Events with a duration become complete
// ("X") slices covering [T-Dur, T]; PhaseBegin/PhaseEnd become B/E
// span pairs; everything else becomes a thread-scoped instant.
type ChromeSink struct {
	w     *bufio.Writer
	err   error
	first bool

	pids    map[string]int      // machine -> pid
	pidList []string            // pid-1 -> machine (emission order)
	tids    map[string]int      // machine\x00proc -> tid
	tidList []chromeThreadEntry // emission order

	// Counter tracks: per-resource occupancy/queue-depth deltas
	// buffered during Emit and rendered as 'C' events at Close (the
	// absolute gauge value needs the whole stream; Chrome importers
	// order by ts, so late emission is fine).
	counters map[string]*counterTrack
	ctrList  []string // emission order of counter keys
}

// counterTrack buffers ±1 step deltas for one gauge.
type counterTrack struct {
	name   string
	pid    int
	deltas []counterDelta
}

type counterDelta struct {
	t time.Duration
	d int
}

type chromeThreadEntry struct {
	pid  int
	tid  int
	name string
}

type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// NewChromeSink returns a sink writing to w. Call Close to finish the
// JSON document; the file is not valid JSON until then.
func NewChromeSink(w io.Writer) *ChromeSink {
	s := &ChromeSink{
		w:        bufio.NewWriterSize(w, 1<<16),
		first:    true,
		pids:     make(map[string]int),
		tids:     make(map[string]int),
		counters: make(map[string]*counterTrack),
	}
	_, s.err = s.w.WriteString(`{"displayTimeUnit":"ms","traceEvents":[` + "\n")
	return s
}

// pid assigns (or finds) the trace process id for a machine.
func (s *ChromeSink) pid(machine string) int {
	if machine == "" {
		machine = "sim"
	}
	if id, ok := s.pids[machine]; ok {
		return id
	}
	id := len(s.pidList) + 1
	s.pids[machine] = id
	s.pidList = append(s.pidList, machine)
	return id
}

// tid assigns (or finds) the thread id for a proc within a machine.
// The empty proc — kernel-context emission — is thread 0.
func (s *ChromeSink) tid(pid int, proc string) int {
	key := fmt.Sprintf("%d\x00%s", pid, proc)
	if id, ok := s.tids[key]; ok {
		return id
	}
	id := 0
	name := "kernel"
	if proc != "" {
		id = len(s.tidList) + 1
		name = proc
	}
	s.tids[key] = id
	s.tidList = append(s.tidList, chromeThreadEntry{pid: pid, tid: id, name: name})
	return id
}

const usPerNs = 1e-3

// Emit streams one event.
func (s *ChromeSink) Emit(ev Event) {
	if s.err != nil {
		return
	}
	pid := s.pid(ev.Machine)
	tid := s.tid(pid, ev.Proc)
	ce := chromeEvent{
		Name: ev.Name,
		Cat:  ev.Kind.String(),
		Ts:   float64(ev.T) * usPerNs,
		Pid:  pid,
		Tid:  tid,
	}
	if ce.Name == "" {
		ce.Name = ev.Kind.String()
	}
	switch {
	case ev.Kind == PhaseBegin:
		ce.Ph = "B"
	case ev.Kind == PhaseEnd:
		ce.Ph = "E"
	case ev.Dur > 0:
		ce.Ph = "X"
		ce.Ts = float64(ev.T-ev.Dur) * usPerNs
		ce.Dur = float64(ev.Dur) * usPerNs
	default:
		ce.Ph = "i"
		ce.S = "t"
	}
	args := make(map[string]any, 4)
	if ev.Bytes != 0 {
		args["bytes"] = ev.Bytes
	}
	if ev.Addr != 0 {
		args["addr"] = fmt.Sprintf("%#x", ev.Addr)
	}
	if ev.Op != 0 {
		args["op"] = fmt.Sprintf("%#x", ev.Op)
	}
	if len(args) > 0 {
		ce.Args = args
	}
	s.write(ce)

	// Feed the counter tracks: occupancy from hold/xmit spans, queue
	// depth from waits.
	switch ev.Kind {
	case ResourceHold:
		s.count("busy:"+ev.Name, pid, ev.T-ev.Dur, ev.T)
	case LinkXmit:
		s.count("busy:"+ev.Machine, pid, ev.T-ev.Dur, ev.T)
	case QueueWait:
		s.count("queue:"+ev.Name, pid, ev.T-ev.Dur, ev.T)
	}
}

// count buffers a +1/-1 step pair for one gauge over [start, end).
func (s *ChromeSink) count(name string, pid int, start, end time.Duration) {
	if end <= start {
		return
	}
	tr := s.counters[name]
	if tr == nil {
		tr = &counterTrack{name: name, pid: pid}
		s.counters[name] = tr
		s.ctrList = append(s.ctrList, name)
	}
	tr.deltas = append(tr.deltas, counterDelta{t: start, d: +1}, counterDelta{t: end, d: -1})
}

func (s *ChromeSink) write(ce chromeEvent) {
	if s.err != nil {
		return
	}
	b, err := json.Marshal(ce)
	if err != nil {
		s.err = err
		return
	}
	if !s.first {
		if _, s.err = s.w.WriteString(",\n"); s.err != nil {
			return
		}
	}
	s.first = false
	_, s.err = s.w.Write(b)
}

// Close renders the buffered counter tracks as 'C' gauge events,
// appends the process/thread name metadata, and terminates the JSON
// document, reporting the first error encountered.
func (s *ChromeSink) Close() error {
	for _, name := range s.ctrList {
		tr := s.counters[name]
		sort.SliceStable(tr.deltas, func(i, j int) bool { return tr.deltas[i].t < tr.deltas[j].t })
		val := 0
		for i := 0; i < len(tr.deltas); {
			t := tr.deltas[i].t
			for i < len(tr.deltas) && tr.deltas[i].t == t {
				val += tr.deltas[i].d
				i++
			}
			s.write(chromeEvent{
				Name: tr.name, Ph: "C", Ts: float64(t) * usPerNs, Pid: tr.pid,
				Args: map[string]any{"value": val},
			})
		}
	}
	for i, machine := range s.pidList {
		s.write(chromeEvent{
			Name: "process_name", Ph: "M", Pid: i + 1,
			Args: map[string]any{"name": machine},
		})
	}
	for _, te := range s.tidList {
		s.write(chromeEvent{
			Name: "thread_name", Ph: "M", Pid: te.pid, Tid: te.tid,
			Args: map[string]any{"name": te.name},
		})
	}
	if s.err != nil {
		return s.err
	}
	if _, s.err = s.w.WriteString("\n]}\n"); s.err != nil {
		return s.err
	}
	return s.w.Flush()
}
