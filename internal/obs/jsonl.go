package obs

import (
	"bufio"
	"encoding/json"
	"io"
)

// jsonlEvent is the wire form of one JSONL record. Times are integer
// nanoseconds of virtual time.
type jsonlEvent struct {
	T       int64  `json:"t"`
	Seq     uint64 `json:"seq"`
	Kind    string `json:"kind"`
	Machine string `json:"machine,omitempty"`
	Proc    string `json:"proc,omitempty"`
	Name    string `json:"name,omitempty"`
	Addr    uint64 `json:"addr,omitempty"`
	Bytes   int    `json:"bytes,omitempty"`
	Dur     int64  `json:"dur,omitempty"`
	Op      int    `json:"op,omitempty"`
}

// JSONLSink streams events as one JSON object per line. Events appear
// in emission order, which is virtual-time order except for phase
// records reconstructed after the fact (PhaseBegin/PhaseEnd carry their
// true T); consumers that need strict time order should sort on t.
type JSONLSink struct {
	w   *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONLSink returns a sink writing to w. Call Close to flush.
func NewJSONLSink(w io.Writer) *JSONLSink {
	bw := bufio.NewWriterSize(w, 1<<16)
	return &JSONLSink{w: bw, enc: json.NewEncoder(bw)}
}

// Emit writes one line. Write errors are sticky and surfaced by Close.
func (s *JSONLSink) Emit(ev Event) {
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(jsonlEvent{
		T:       int64(ev.T),
		Seq:     ev.Seq,
		Kind:    ev.Kind.String(),
		Machine: ev.Machine,
		Proc:    ev.Proc,
		Name:    ev.Name,
		Addr:    ev.Addr,
		Bytes:   ev.Bytes,
		Dur:     int64(ev.Dur),
		Op:      ev.Op,
	})
}

// Close flushes buffered output and reports the first write error.
func (s *JSONLSink) Close() error {
	if s.err != nil {
		return s.err
	}
	return s.w.Flush()
}
