package vm

// ContentIndex is a per-machine map from page-content hash to one
// resident copy of those bytes. Entries alias live frames (netmsg
// store runs, freshly inserted segment pages) rather than copying
// them: the index costs one map slot per distinct page content, never
// a frame. Because frames are pooled and recycled, an entry can go
// stale — Lookup re-hashes the remembered bytes and drops the entry on
// mismatch, so a stale alias degrades to a miss, never to wrong data.
//
// A nil *ContentIndex is valid and inert: every method no-ops or
// misses. Machines with the dedup store disabled carry a nil index, so
// the hot paths stay free of both hashing and map traffic.
type ContentIndex struct {
	pageSize int
	entries  map[uint64][]byte
	stats    ContentIndexStats
}

// ContentIndexStats counts index traffic for reports and benchmarks.
type ContentIndexStats struct {
	Puts   uint64 // entries inserted or refreshed
	Hits   uint64 // verified lookups
	Misses uint64 // absent hashes
	Stale  uint64 // entries dropped because the aliased frame changed
}

// NewContentIndex creates an index for pages of the given size.
func NewContentIndex(pageSize int) *ContentIndex {
	return &ContentIndex{
		pageSize: pageSize,
		entries:  make(map[uint64][]byte),
	}
}

// Put records data as a resident copy of the page named hash. The
// bytes are aliased, not copied. The zero sentinel is never stored:
// zero pages are reconstructable everywhere by definition.
func (ix *ContentIndex) Put(hash uint64, data []byte) {
	if ix == nil || hash == ZeroHash || len(data) == 0 {
		return
	}
	ix.stats.Puts++
	ix.entries[hash] = data
}

// Lookup returns verified bytes for hash, re-hashing the remembered
// frame to guard against pool recycling. A failed verification deletes
// the entry and reports a miss.
func (ix *ContentIndex) Lookup(hash uint64) ([]byte, bool) {
	if ix == nil || hash == ZeroHash {
		return nil, false
	}
	data, ok := ix.entries[hash]
	if !ok {
		ix.stats.Misses++
		return nil, false
	}
	if h, _ := HashPage(data, ix.pageSize); h != hash {
		delete(ix.entries, hash)
		ix.stats.Stale++
		ix.stats.Misses++
		return nil, false
	}
	ix.stats.Hits++
	return data, true
}

// Contains reports whether the index holds a verified copy of hash. It
// shares Lookup's verification (and its stats) so a resolver asking
// "who holds this page" never routes a fault at a stale frame.
func (ix *ContentIndex) Contains(hash uint64) bool {
	_, ok := ix.Lookup(hash)
	return ok
}

// Len reports the number of indexed contents.
func (ix *ContentIndex) Len() int {
	if ix == nil {
		return 0
	}
	return len(ix.entries)
}

// Stats returns a snapshot of index traffic.
func (ix *ContentIndex) Stats() ContentIndexStats {
	if ix == nil {
		return ContentIndexStats{}
	}
	return ix.stats
}
