package vm

import "testing"

func TestHashPageZeroDetection(t *testing.T) {
	zero := make([]byte, DefaultPageSize)
	h, isZero := HashPage(zero, DefaultPageSize)
	if !isZero || h != ZeroHash {
		t.Fatalf("all-zero page: got hash %#x zero=%v, want sentinel", h, isZero)
	}
	// A short slice of zeros and a nil slice are the same zero page.
	if h, isZero := HashPage(nil, DefaultPageSize); !isZero || h != ZeroHash {
		t.Fatalf("nil page: got hash %#x zero=%v", h, isZero)
	}
	if h, isZero := HashPage(zero[:17], DefaultPageSize); !isZero || h != ZeroHash {
		t.Fatalf("short zero page: got hash %#x zero=%v", h, isZero)
	}
}

func TestHashPagePaddingInvariance(t *testing.T) {
	// A partial final-page slice must hash identically to the full
	// page-size image with a zeroed tail (Materialize clears tails, so
	// both representations of the same page coexist in the system).
	short := []byte("the last page is partial")
	full := make([]byte, DefaultPageSize)
	copy(full, short)
	hs, _ := HashPage(short, DefaultPageSize)
	hf, _ := HashPage(full, DefaultPageSize)
	if hs != hf {
		t.Fatalf("partial page hash %#x != padded page hash %#x", hs, hf)
	}
	if hs == ZeroHash {
		t.Fatal("non-zero page hashed to the zero sentinel")
	}
}

func TestHashPageDistinguishesContent(t *testing.T) {
	a := make([]byte, DefaultPageSize)
	b := make([]byte, DefaultPageSize)
	for i := range a {
		a[i] = byte(i * 7)
		b[i] = byte(i * 7)
	}
	b[100]++
	ha, _ := HashPage(a, DefaultPageSize)
	hb, _ := HashPage(b, DefaultPageSize)
	if ha == hb {
		t.Fatal("one-byte difference produced identical hashes")
	}
}

func TestHashRun(t *testing.T) {
	ps := DefaultPageSize
	data := make([]byte, 3*ps)
	for i := range data {
		data[i] = byte(i)
	}
	r := PageRun{Index: 5, Count: 3, Data: data}
	hs := HashRun(nil, r, ps)
	if len(hs) != 3 {
		t.Fatalf("got %d entries, want 3", len(hs))
	}
	for i, ph := range hs {
		if ph.Index != 5+uint64(i) {
			t.Errorf("entry %d index %d, want %d", i, ph.Index, 5+i)
		}
		want, _ := HashPage(data[i*ps:(i+1)*ps], ps)
		if ph.Hash != want {
			t.Errorf("entry %d hash mismatch", i)
		}
	}
}

func TestModelCompressedSize(t *testing.T) {
	ps := DefaultPageSize
	linear := make([]byte, ps)
	for i := range linear {
		linear[i] = byte(i * 7) // constant stride: the workload fill idiom
	}
	if got := ModelCompressedSize(linear, ps); got >= ps/4 {
		t.Errorf("linear page models as %d bytes, want well under %d", got, ps/4)
	}
	noisy := make([]byte, ps)
	h := uint64(fnvOffset64)
	for i := range noisy {
		h = h*6364136223846793005 + 1442695040888963407
		noisy[i] = byte(h >> 56)
	}
	if got := ModelCompressedSize(noisy, ps); got != ps {
		t.Errorf("pseudo-random page models as %d bytes, want incompressible %d", got, ps)
	}
	if got := ModelCompressedSize(nil, ps); got != 0 {
		t.Errorf("empty image models as %d bytes, want 0", got)
	}
}

func TestContentIndexLookupVerifies(t *testing.T) {
	ps := DefaultPageSize
	ix := NewContentIndex(ps)
	frame := make([]byte, ps)
	for i := range frame {
		frame[i] = byte(i)
	}
	h, _ := HashPage(frame, ps)
	ix.Put(h, frame)
	if got, ok := ix.Lookup(h); !ok || &got[0] != &frame[0] {
		t.Fatal("lookup of live entry failed")
	}
	// Recycle the frame under the index's feet: the entry must degrade
	// to a miss, not serve wrong bytes.
	frame[0] ^= 0xFF
	if _, ok := ix.Lookup(h); ok {
		t.Fatal("lookup served a stale frame")
	}
	if ix.Len() != 0 {
		t.Fatalf("stale entry not evicted: len %d", ix.Len())
	}
	st := ix.Stats()
	if st.Stale != 1 || st.Hits != 1 {
		t.Fatalf("stats %+v, want 1 hit and 1 stale", st)
	}
}

func TestContentIndexNilAndZero(t *testing.T) {
	var ix *ContentIndex
	ix.Put(42, []byte{1})
	if _, ok := ix.Lookup(42); ok {
		t.Fatal("nil index hit")
	}
	if ix.Len() != 0 || ix.Contains(42) {
		t.Fatal("nil index not inert")
	}
	live := NewContentIndex(DefaultPageSize)
	live.Put(ZeroHash, make([]byte, DefaultPageSize))
	if live.Len() != 0 {
		t.Fatal("zero sentinel was stored")
	}
}
