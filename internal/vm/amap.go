package vm

import (
	"fmt"
	"sort"
)

// AMapEntry is one coalesced run of addresses sharing an accessibility.
type AMapEntry struct {
	Start  Addr
	End    Addr // exclusive
	Access Accessibility
}

// Size reports the entry's extent in bytes.
func (e AMapEntry) Size() uint64 { return uint64(e.End - e.Start) }

// AMap is an Accessibility Map (§2.3): the complete accessibility
// picture of an address space at one instant, as a sorted list of
// coalesced runs. BadMem gaps between regions are implicit (anything
// not covered by an entry is BadMem).
type AMap struct {
	PageSize int
	Entries  []AMapEntry
	Stats    AMapStats
}

// AMapStats captures the work done to build the map; the migration cost
// model consumes these (AMap construction cost grows with process-map
// complexity, not with bytes — §4.3.1).
type AMapStats struct {
	Regions           int    // process map entries scanned
	Runs              int    // coalesced accessibility runs produced
	MaterializedPages int    // pages whose state had to be examined
	ValidatedPages    uint64 // total page slots covered
}

// BuildAMap scans the address space and produces its AMap. Only
// materialized pages are visited, so sparse gigabyte spaces scan fast
// while still yielding exact run structure.
func BuildAMap(as *AddressSpace) *AMap {
	m := &AMap{}
	m.Rebuild(as)
	return m
}

// Rebuild re-derives the map from the address space in place, reusing
// the entries buffer. The page table iterates materialized runs in
// address order, so the sweep needs no key extraction and no sort: each
// region contributes alternating gap/run entries in one ordered pass.
func (m *AMap) Rebuild(as *AddressSpace) {
	m.PageSize = as.PageSize()
	m.Entries = m.Entries[:0]
	m.Stats = AMapStats{}
	ps := as.ps
	for _, r := range as.regions {
		m.Stats.Regions++
		firstPage := r.SegOff / ps
		lastPage := (r.SegOff + r.Size() - 1) / ps
		m.Stats.ValidatedPages += lastPage - firstPage + 1

		gapAccess := RealZeroMem
		if r.Seg.Class == ImagSeg {
			gapAccess = ImagMem
		}

		cursor := firstPage
		for {
			start, end, ok := r.Seg.table.nextRun(cursor, lastPage)
			if !ok {
				break
			}
			m.Stats.MaterializedPages += int(end - start)
			if start > cursor {
				m.appendRun(AMapEntry{
					r.Start + Addr(cursor*ps-r.SegOff),
					r.Start + Addr(start*ps-r.SegOff),
					gapAccess,
				})
			}
			m.appendRun(AMapEntry{
				r.Start + Addr(start*ps-r.SegOff),
				r.Start + Addr(end*ps-r.SegOff),
				RealMem,
			})
			cursor = end
			if cursor > lastPage {
				break
			}
		}
		if cursor <= lastPage {
			m.appendRun(AMapEntry{
				r.Start + Addr(cursor*ps-r.SegOff),
				r.Start + Addr((lastPage+1)*ps-r.SegOff),
				gapAccess,
			})
		}
	}
	m.Stats.Runs = len(m.Entries)
}

// appendRun adds an entry, merging with the previous one when adjacent
// and same-class (regions mapping the same backing can abut).
func (m *AMap) appendRun(e AMapEntry) {
	if n := len(m.Entries); n > 0 {
		last := &m.Entries[n-1]
		if last.End == e.Start && last.Access == e.Access {
			last.End = e.End
			return
		}
	}
	m.Entries = append(m.Entries, e)
}

// Classify reports the accessibility of address a per this map.
func (m *AMap) Classify(a Addr) Accessibility {
	idx := sort.Search(len(m.Entries), func(i int) bool { return m.Entries[i].End > a })
	if idx < len(m.Entries) && a >= m.Entries[idx].Start {
		return m.Entries[idx].Access
	}
	return BadMem
}

// Slice returns the entries overlapping [start, end), clipped to that
// window. Used by the NetMsgServer to fragment message memory (§2.4).
// Entries are sorted, so a binary search finds the first overlap and
// the scan exits at the first entry past the window.
func (m *AMap) Slice(start, end Addr) []AMapEntry {
	i := sort.Search(len(m.Entries), func(i int) bool { return m.Entries[i].End > start })
	var out []AMapEntry
	for ; i < len(m.Entries); i++ {
		e := m.Entries[i]
		if e.Start >= end {
			break
		}
		if e.Start < start {
			e.Start = start
		}
		if e.End > end {
			e.End = end
		}
		out = append(out, e)
	}
	return out
}

// TotalBytes sums entry extents by accessibility class.
func (m *AMap) TotalBytes() map[Accessibility]uint64 {
	out := make(map[Accessibility]uint64, 3)
	for _, e := range m.Entries {
		out[e.Access] += e.Size()
	}
	return out
}

// WireBytes estimates the AMap's encoded size: a 16-byte header plus
// six bytes per entry — runs are delta-encoded (page-count varint plus
// class), the compact form Accent shipped ("some AMaps are slightly
// larger than others", §4.3.2, even for 4 GB Lisp spaces). Core context
// messages carry the AMap, so its size feeds the transfer cost.
func (m *AMap) WireBytes() int { return 16 + 6*len(m.Entries) }

// String summarizes the map.
func (m *AMap) String() string {
	t := m.TotalBytes()
	return fmt.Sprintf("AMap{%d entries, real=%d realzero=%d imag=%d}",
		len(m.Entries), t[RealMem], t[RealZeroMem], t[ImagMem])
}
