package vm

import (
	"fmt"
	"sort"
)

// AMapEntry is one coalesced run of addresses sharing an accessibility.
type AMapEntry struct {
	Start  Addr
	End    Addr // exclusive
	Access Accessibility
}

// Size reports the entry's extent in bytes.
func (e AMapEntry) Size() uint64 { return uint64(e.End - e.Start) }

// AMap is an Accessibility Map (§2.3): the complete accessibility
// picture of an address space at one instant, as a sorted list of
// coalesced runs. BadMem gaps between regions are implicit (anything
// not covered by an entry is BadMem).
type AMap struct {
	PageSize int
	Entries  []AMapEntry
	Stats    AMapStats
}

// AMapStats captures the work done to build the map; the migration cost
// model consumes these (AMap construction cost grows with process-map
// complexity, not with bytes — §4.3.1).
type AMapStats struct {
	Regions           int    // process map entries scanned
	Runs              int    // coalesced accessibility runs produced
	MaterializedPages int    // pages whose state had to be examined
	ValidatedPages    uint64 // total page slots covered
}

// BuildAMap scans the address space and produces its AMap. Only
// materialized pages are visited, so sparse gigabyte spaces scan fast
// while still yielding exact run structure.
func BuildAMap(as *AddressSpace) *AMap {
	m := &AMap{PageSize: as.PageSize()}
	ps := as.ps
	for _, r := range as.regions {
		m.Stats.Regions++
		firstPage := r.SegOff / ps
		lastPage := (r.SegOff + r.Size() - 1) / ps
		m.Stats.ValidatedPages += lastPage - firstPage + 1

		// Sorted materialized page indices within the mapped window.
		var mat []uint64
		for idx := range r.Seg.pages {
			if idx >= firstPage && idx <= lastPage {
				mat = append(mat, idx)
			}
		}
		sort.Slice(mat, func(i, j int) bool { return mat[i] < mat[j] })
		m.Stats.MaterializedPages += len(mat)

		gapAccess := RealZeroMem
		if r.Seg.Class == ImagSeg {
			gapAccess = ImagMem
		}
		// addrOf converts a segment page index to the region-relative VA.
		addrOf := func(idx uint64) Addr { return r.Start + Addr(idx*ps-r.SegOff) }

		cursor := firstPage
		flushGap := func(untilExcl uint64) {
			if untilExcl > cursor {
				m.appendRun(AMapEntry{addrOf(cursor), addrOf(untilExcl), gapAccess})
			}
		}
		i := 0
		for i < len(mat) {
			flushGap(mat[i])
			// Extend a run of consecutive materialized pages.
			j := i
			for j+1 < len(mat) && mat[j+1] == mat[j]+1 {
				j++
			}
			m.appendRun(AMapEntry{addrOf(mat[i]), addrOf(mat[j] + 1), RealMem})
			cursor = mat[j] + 1
			i = j + 1
		}
		flushGap(lastPage + 1)
	}
	m.Stats.Runs = len(m.Entries)
	return m
}

// appendRun adds an entry, merging with the previous one when adjacent
// and same-class (regions mapping the same backing can abut).
func (m *AMap) appendRun(e AMapEntry) {
	if n := len(m.Entries); n > 0 {
		last := &m.Entries[n-1]
		if last.End == e.Start && last.Access == e.Access {
			last.End = e.End
			return
		}
	}
	m.Entries = append(m.Entries, e)
}

// Classify reports the accessibility of address a per this map.
func (m *AMap) Classify(a Addr) Accessibility {
	idx := sort.Search(len(m.Entries), func(i int) bool { return m.Entries[i].End > a })
	if idx < len(m.Entries) && a >= m.Entries[idx].Start {
		return m.Entries[idx].Access
	}
	return BadMem
}

// Slice returns the entries overlapping [start, end), clipped to that
// window. Used by the NetMsgServer to fragment message memory (§2.4).
func (m *AMap) Slice(start, end Addr) []AMapEntry {
	var out []AMapEntry
	for _, e := range m.Entries {
		if e.End <= start || e.Start >= end {
			continue
		}
		c := e
		if c.Start < start {
			c.Start = start
		}
		if c.End > end {
			c.End = end
		}
		out = append(out, c)
	}
	return out
}

// TotalBytes sums entry extents by accessibility class.
func (m *AMap) TotalBytes() map[Accessibility]uint64 {
	out := make(map[Accessibility]uint64, 3)
	for _, e := range m.Entries {
		out[e.Access] += e.Size()
	}
	return out
}

// WireBytes estimates the AMap's encoded size: a 16-byte header plus
// six bytes per entry — runs are delta-encoded (page-count varint plus
// class), the compact form Accent shipped ("some AMaps are slightly
// larger than others", §4.3.2, even for 4 GB Lisp spaces). Core context
// messages carry the AMap, so its size feeds the transfer cost.
func (m *AMap) WireBytes() int { return 16 + 6*len(m.Entries) }

// String summarizes the map.
func (m *AMap) String() string {
	t := m.TotalBytes()
	return fmt.Sprintf("AMap{%d entries, real=%d realzero=%d imag=%d}",
		len(m.Entries), t[RealMem], t[RealZeroMem], t[ImagMem])
}
