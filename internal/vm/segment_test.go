package vm

import (
	"bytes"
	"testing"
)

func TestMaterializeAndRead(t *testing.T) {
	s := NewSegment("s", 4*512, 512)
	s.Materialize(2, []byte("hello"))
	got := s.Read(2, 0, 5)
	if string(got) != "hello" {
		t.Errorf("Read = %q", got)
	}
	// Remainder of page is zero.
	rest := s.Read(2, 5, 507)
	for _, b := range rest {
		if b != 0 {
			t.Fatal("page tail not zero-filled")
		}
	}
	// Unmaterialized page reads as zeros.
	z := s.Read(0, 0, 16)
	if !bytes.Equal(z, make([]byte, 16)) {
		t.Error("unmaterialized page not zero")
	}
}

func TestMaterializeBeyondSegmentPanics(t *testing.T) {
	s := NewSegment("s", 512, 512)
	defer func() {
		if recover() == nil {
			t.Error("no panic for out-of-range materialize")
		}
	}()
	s.Materialize(1, nil)
}

func TestWriteMarksDirty(t *testing.T) {
	s := NewSegment("s", 512, 512)
	s.MaterializeZero(0)
	s.Write(0, 10, []byte("abc"))
	pg := s.Page(0)
	if !pg.State.Dirty {
		t.Error("write did not mark page dirty")
	}
	if string(s.Read(0, 10, 3)) != "abc" {
		t.Error("write not visible")
	}
}

func TestWriteUnmaterializedPanics(t *testing.T) {
	s := NewSegment("s", 512, 512)
	defer func() {
		if recover() == nil {
			t.Error("no panic writing unmaterialized page")
		}
	}()
	s.Write(0, 0, []byte("x"))
}

func TestCOWSharingAndBreak(t *testing.T) {
	src := NewSegment("src", 512, 512)
	src.Materialize(0, []byte("shared data"))
	dst := NewSegment("dst", 512, 512)
	pg := dst.AdoptShared(0, src.Page(0))
	if !pg.Shared() || !src.Page(0).Shared() {
		t.Fatal("pages not marked shared after adopt")
	}
	if &src.Page(0).Data[0] != &pg.Data[0] {
		t.Fatal("adopted page does not share backing bytes")
	}
	// Read-only access does not copy.
	if string(dst.Read(0, 0, 6)) != "shared" {
		t.Error("shared read wrong")
	}
	// Write breaks the share; the other copy is untouched.
	dst.Write(0, 0, []byte("DST"))
	if string(src.Read(0, 0, 6)) != "shared" {
		t.Error("COW write leaked into source")
	}
	if string(dst.Read(0, 0, 6)) != "DSTred" {
		t.Errorf("dst after write = %q", dst.Read(0, 0, 6))
	}
	if src.Page(0).Shared() || dst.Page(0).Shared() {
		t.Error("pages still marked shared after break")
	}
}

func TestCOWThreeWay(t *testing.T) {
	src := NewSegment("src", 512, 512)
	src.Materialize(0, []byte("abc"))
	d1 := NewSegment("d1", 512, 512)
	d2 := NewSegment("d2", 512, 512)
	d1.AdoptShared(0, src.Page(0))
	d2.AdoptShared(0, src.Page(0))
	d1.Write(0, 0, []byte("X"))
	// src and d2 still share.
	if !src.Page(0).Shared() || !d2.Page(0).Shared() {
		t.Error("remaining sharers lost their share marking")
	}
	if string(d2.Read(0, 0, 3)) != "abc" {
		t.Error("d2 corrupted by d1's write")
	}
	d2.Write(0, 1, []byte("Y"))
	if string(src.Read(0, 0, 3)) != "abc" {
		t.Error("src corrupted")
	}
	if string(d2.Read(0, 0, 3)) != "aYc" {
		t.Errorf("d2 = %q", d2.Read(0, 0, 3))
	}
}

func TestBreakCOWReporting(t *testing.T) {
	src := NewSegment("src", 512, 512)
	src.Materialize(0, []byte("z"))
	if src.BreakCOW(0) {
		t.Error("BreakCOW on unshared page reported a copy")
	}
	dst := NewSegment("dst", 512, 512)
	dst.AdoptShared(0, src.Page(0))
	if !dst.BreakCOW(0) {
		t.Error("BreakCOW on shared page reported no copy")
	}
	if dst.BreakCOW(0) {
		t.Error("second BreakCOW reported a copy")
	}
	if dst.BreakCOW(5) {
		t.Error("BreakCOW on missing page reported a copy")
	}
}

func TestRefcountDeath(t *testing.T) {
	s := NewSegment("s", 512, 512)
	died := 0
	s.OnDeath(func() { died++ })
	s.Ref()
	s.Ref()
	s.Unref()
	if died != 0 {
		t.Error("death fired early")
	}
	s.Unref()
	if died != 1 {
		t.Errorf("died = %d, want 1", died)
	}
	defer func() {
		if recover() == nil {
			t.Error("no panic on over-unref")
		}
	}()
	s.Unref()
}

func TestSegmentIDsUnique(t *testing.T) {
	a := NewSegment("a", 512, 512)
	b := NewSegment("b", 512, 512)
	if a.ID == b.ID {
		t.Error("segment IDs collide")
	}
}

func TestPagesCount(t *testing.T) {
	s := NewSegment("s", 1000, 512)
	if s.Pages() != 2 {
		t.Errorf("Pages = %d, want 2", s.Pages())
	}
}
