package vm

import "math/bits"

// The page table is the data-plane replacement for the old
// map[uint64]*Page: a two-level sparse structure whose leaves are dense
// chunks of Page slots plus an occupancy bitmap. It buys three things
// the map could not give at once:
//
//   - O(1) lookup with no hashing and no per-page *Page allocation
//     (pages live by value inside chunks);
//   - in-order iteration for free, so BuildAMap emits coalesced runs in
//     a single ordered sweep with no key extraction and no sort;
//   - run discovery by bitmap scan, so contiguous materialized runs can
//     be batched into single multi-page transfer operations.
//
// Chunks cover tableChunkPages page slots each. The top level is a
// dense slice indexed by chunk number — even a fully validated 4 GB
// Lisp space is only 32 Ki chunk pointers, while lookups stay a shift,
// a mask, and two indexing operations.

const (
	tableChunkShift = 8
	// tableChunkPages is the page span of one leaf chunk (256 pages =
	// 128 KB of address space at the Accent page size).
	tableChunkPages = 1 << tableChunkShift
	tableChunkMask  = tableChunkPages - 1
	tableWords      = tableChunkPages / 64
)

// pageChunk is one leaf: a dense array of Page slots and the occupancy
// bitmap that says which slots hold a materialized page.
type pageChunk struct {
	pages [tableChunkPages]Page
	bits  [tableWords]uint64
	live  int
}

// pageTable is the two-level sparse page table of one segment.
type pageTable struct {
	chunks []*pageChunk // indexed by pageIdx >> tableChunkShift; nil = empty
	count  int          // materialized pages across all chunks
}

// init sizes the top level for a segment spanning nPages page slots.
// The top level is allocated lazily on first materialization.
func (t *pageTable) topLen(nPages uint64) int {
	return int((nPages + tableChunkPages - 1) / tableChunkPages)
}

// get returns the materialized page at idx, or nil. idx must be within
// the segment (the caller bounds-checks against Segment.Pages).
func (t *pageTable) get(idx uint64) *Page {
	ci := idx >> tableChunkShift
	if ci >= uint64(len(t.chunks)) {
		return nil
	}
	c := t.chunks[ci]
	if c == nil {
		return nil
	}
	slot := idx & tableChunkMask
	if c.bits[slot>>6]&(1<<(slot&63)) == 0 {
		return nil
	}
	return &c.pages[slot]
}

// ensure returns the page slot for idx, creating its chunk if needed,
// and reports whether the slot already held a materialized page.
func (t *pageTable) ensure(idx uint64, nPages uint64) (*Page, bool) {
	if t.chunks == nil {
		t.chunks = make([]*pageChunk, t.topLen(nPages))
	}
	ci := idx >> tableChunkShift
	c := t.chunks[ci]
	if c == nil {
		c = &pageChunk{}
		t.chunks[ci] = c
	}
	slot := idx & tableChunkMask
	word, bit := slot>>6, uint64(1)<<(slot&63)
	present := c.bits[word]&bit != 0
	if !present {
		c.bits[word] |= bit
		c.live++
		t.count++
	}
	return &c.pages[slot], present
}

// clear removes the page at idx from the table, returning the former
// slot (for frame recycling) or nil if it was not materialized.
func (t *pageTable) clear(idx uint64) *Page {
	ci := idx >> tableChunkShift
	if ci >= uint64(len(t.chunks)) || t.chunks[ci] == nil {
		return nil
	}
	c := t.chunks[ci]
	slot := idx & tableChunkMask
	word, bit := slot>>6, uint64(1)<<(slot&63)
	if c.bits[word]&bit == 0 {
		return nil
	}
	c.bits[word] &^= bit
	c.live--
	t.count--
	return &c.pages[slot]
}

// nextPresent finds the first materialized page index >= from, or
// (0, false) when none exists at or below last.
func (t *pageTable) nextPresent(from, last uint64) (uint64, bool) {
	if t.count == 0 {
		return 0, false
	}
	ci := from >> tableChunkShift
	slot := from & tableChunkMask
	for ; ci < uint64(len(t.chunks)); ci++ {
		c := t.chunks[ci]
		if c == nil || c.live == 0 {
			slot = 0
			if ci<<tableChunkShift > last {
				return 0, false
			}
			continue
		}
		word := slot >> 6
		// Mask off bits below the starting slot in the first word.
		w := c.bits[word] &^ ((1 << (slot & 63)) - 1)
		for {
			if w != 0 {
				idx := ci<<tableChunkShift | word<<6 | uint64(bits.TrailingZeros64(w))
				if idx > last {
					return 0, false
				}
				return idx, true
			}
			word++
			if word == tableWords {
				break
			}
			w = c.bits[word]
		}
		slot = 0
		if (ci+1)<<tableChunkShift > last {
			return 0, false
		}
	}
	return 0, false
}

// runEnd extends a run of consecutive materialized pages starting at
// start (which must be present) and returns the exclusive end index,
// clipped to last+1.
func (t *pageTable) runEnd(start, last uint64) uint64 {
	idx := start
	for {
		ci := idx >> tableChunkShift
		if ci >= uint64(len(t.chunks)) {
			return idx
		}
		c := t.chunks[ci]
		if c == nil {
			return idx
		}
		slot := idx & tableChunkMask
		word := slot >> 6
		// Invert: a zero bit ends the run. Mask off bits below slot.
		w := ^c.bits[word] &^ ((1 << (slot & 63)) - 1)
		for {
			if w != 0 {
				end := ci<<tableChunkShift | word<<6 | uint64(bits.TrailingZeros64(w))
				if end > last+1 {
					return last + 1
				}
				return end
			}
			word++
			if word == tableWords {
				break
			}
			w = ^c.bits[word]
		}
		idx = (ci + 1) << tableChunkShift
		if idx > last+1 {
			return last + 1
		}
	}
}

// nextRun finds the next contiguous run of materialized pages within
// [from, last]: (start, end) with end exclusive, ok false when no page
// remains in the window. This is the primitive BuildAMap and the
// transfer batching layers iterate on.
func (t *pageTable) nextRun(from, last uint64) (start, end uint64, ok bool) {
	start, ok = t.nextPresent(from, last)
	if !ok {
		return 0, 0, false
	}
	return start, t.runEnd(start, last), true
}

// countRange reports how many materialized pages fall within
// [first, last] using bitmap popcounts — no page is visited.
func (t *pageTable) countRange(first, last uint64) int {
	if t.count == 0 || first > last {
		return 0
	}
	n := 0
	for ci := first >> tableChunkShift; ci <= last>>tableChunkShift && ci < uint64(len(t.chunks)); ci++ {
		c := t.chunks[ci]
		if c == nil || c.live == 0 {
			continue
		}
		base := ci << tableChunkShift
		if first <= base && base+tableChunkMask <= last {
			n += c.live
			continue
		}
		for w := 0; w < tableWords; w++ {
			bitsWord := c.bits[w]
			if bitsWord == 0 {
				continue
			}
			lo := base + uint64(w)<<6
			hi := lo + 63
			if hi < first || lo > last {
				continue
			}
			if lo < first {
				bitsWord &^= (1 << (first - lo)) - 1
			}
			if hi > last {
				bitsWord &= (1 << (last - lo + 1)) - 1
			}
			n += bits.OnesCount64(bitsWord)
		}
	}
	return n
}
