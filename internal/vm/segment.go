package vm

import (
	"fmt"
	"sync/atomic"
)

// SegmentClass distinguishes locally backed segments from imaginary
// (port-backed) ones.
type SegmentClass int

const (
	// RealSeg data lives in local physical memory and/or on local disk.
	RealSeg SegmentClass = iota
	// ImagSeg data is owed by a backing port; pages are fetched through
	// the IPC system on first reference (§2.2).
	ImagSeg
)

// String names the class.
func (c SegmentClass) String() string {
	if c == RealSeg {
		return "RealSeg"
	}
	return "ImagSeg"
}

// PageState tracks where a materialized page's data currently is.
type PageState struct {
	Resident bool // a physical frame holds the data
	OnDisk   bool // the local paging disk holds a (possibly stale) copy
	Dirty    bool // resident copy differs from the disk copy
}

// Page is one materialized page of a segment. Unmaterialized pages
// (conceptual zeros, or imaginary pages not yet fetched) have no Page.
// Pages live by value inside page-table chunks; pointers returned by
// Segment methods stay valid for the life of the segment (chunks are
// never reallocated), but callers must not retain them across segment
// death.
type Page struct {
	Index uint64 // page index within the segment
	Data  []byte
	State PageState

	// Version counts content mutations, so incremental transfer schemes
	// (pre-copy) can detect staleness cheaply.
	Version uint64

	// shares counts COW sharers including this page; a shared page's
	// Data must be copied before a write. A page owns its Data when
	// shares == nil or *shares == 1.
	shares *int
}

// MarkWritten records a mutation: the page becomes dirty relative to
// its disk copy and its version advances.
func (p *Page) MarkWritten() {
	p.State.Dirty = true
	p.Version++
}

// Shared reports whether the page currently shares its Data copy-on-write.
func (p *Page) Shared() bool { return p.shares != nil && *p.shares > 1 }

// Segment is a memory object: a numbered container of pages. Real
// segments are backed by local memory/disk; imaginary segments are
// backed by an IPC port (identified here by an opaque uint64 port id so
// this package stays below the IPC layer).
type Segment struct {
	ID          uint64
	Name        string
	Class       SegmentClass
	BackingPort uint64 // valid when Class == ImagSeg
	Size        uint64 // bytes

	pageSize int
	table    pageTable
	pool     *FramePool // nil: fall back to per-page allocation

	refs    int    // live region mappings
	onDeath func() // invoked when refs drops to zero (§2.2 Death message)
}

// nextSegID is atomic so that independent simulation kernels running
// on concurrent goroutines (parallel experiment trials) can allocate
// segments without racing. ID values never influence simulation
// behavior, only identity, so allocation order does not matter.
var nextSegID atomic.Uint64

// NewSegment creates a real segment of the given size.
func NewSegment(name string, size uint64, pageSize int) *Segment {
	return &Segment{
		ID:       nextSegID.Add(1),
		Name:     name,
		Class:    RealSeg,
		Size:     size,
		pageSize: pageSize,
	}
}

// NewImaginarySegment creates an imaginary segment whose data is owed by
// the given backing port.
func NewImaginarySegment(name string, size uint64, pageSize int, backingPort uint64) *Segment {
	s := NewSegment(name, size, pageSize)
	s.Class = ImagSeg
	s.BackingPort = backingPort
	return s
}

// SetPool attaches a frame pool; subsequent page materializations and
// COW breaks draw their data frames from it, and ReleaseFrames returns
// them. The pool must serve frames of the segment's page size.
func (s *Segment) SetPool(p *FramePool) {
	if p != nil && p.PageSize() != s.pageSize {
		panic(fmt.Sprintf("vm: pool page size %d != segment page size %d", p.PageSize(), s.pageSize))
	}
	s.pool = p
}

// Pool returns the attached frame pool, if any.
func (s *Segment) Pool() *FramePool { return s.pool }

// frame obtains a page-size data frame from the pool or the allocator.
// Contents are unspecified; every caller overwrites the full frame.
func (s *Segment) frame() []byte {
	if s.pool != nil {
		return s.pool.Get()
	}
	return make([]byte, s.pageSize)
}

// PageSize reports the segment's page size in bytes.
func (s *Segment) PageSize() int { return s.pageSize }

// Pages reports the number of pages the segment spans.
func (s *Segment) Pages() uint64 {
	return (s.Size + uint64(s.pageSize) - 1) / uint64(s.pageSize)
}

// Page returns the materialized page at index, or nil.
func (s *Segment) Page(index uint64) *Page { return s.table.get(index) }

// MaterializedPages reports how many pages hold actual data.
func (s *Segment) MaterializedPages() int { return s.table.count }

// NextRun finds the next contiguous run of materialized pages within
// [from, last] (inclusive bounds, end exclusive). It is the batching
// primitive for run-oriented transfer: one ordered bitmap sweep, no key
// extraction, no sort.
func (s *Segment) NextRun(from, last uint64) (start, end uint64, ok bool) {
	return s.table.nextRun(from, last)
}

// MaterializedInRange counts materialized pages within [first, last]
// by bitmap popcount.
func (s *Segment) MaterializedInRange(first, last uint64) int {
	return s.table.countRange(first, last)
}

// Materialize installs data for page index, creating the Page if
// needed. The data is copied; len(data) must equal the page size (or be
// shorter for the final partial page).
func (s *Segment) Materialize(index uint64, data []byte) *Page {
	if index >= s.Pages() {
		panic(fmt.Sprintf("vm: materialize page %d beyond segment %q (%d pages)", index, s.Name, s.Pages()))
	}
	if len(data) > s.pageSize {
		panic(fmt.Sprintf("vm: materialize with %d bytes > page size %d", len(data), s.pageSize))
	}
	p, present := s.table.ensure(index, s.Pages())
	if !present {
		// The slot may be recycled from an earlier page's tenure; reset
		// everything but keep any frame left behind for reuse.
		p.Index = index
		p.State = PageState{}
		p.Version = 0
		if p.shares != nil {
			p.shares = nil
			p.Data = nil // was COW-shared: the bytes belong to the sharers
		}
	} else if p.Shared() {
		// Re-materializing over a shared mapping detaches this page from
		// the sharing set without disturbing the other sharers' count —
		// their deferred-copy accounting is unchanged, exactly as before.
		p.shares = nil
		p.Data = nil
	} else {
		p.shares = nil
	}
	if p.Data == nil {
		p.Data = s.frame()
	}
	n := copy(p.Data, data)
	clear(p.Data[n:])
	return p
}

// MaterializeRun installs count consecutive pages starting at start
// from data, which holds the pages' bytes concatenated in order (the
// final page may be partial). It returns the first installed page.
func (s *Segment) MaterializeRun(start uint64, count int, data []byte) *Page {
	var first *Page
	for i := 0; i < count; i++ {
		lo := i * s.pageSize
		hi := lo + s.pageSize
		if hi > len(data) {
			hi = len(data)
		}
		p := s.Materialize(start+uint64(i), data[lo:hi])
		if first == nil {
			first = p
		}
	}
	return first
}

// MaterializeZero installs an all-zero page (the FillZero fault result).
func (s *Segment) MaterializeZero(index uint64) *Page {
	return s.Materialize(index, nil)
}

// AdoptShared installs a page at index that shares data copy-on-write
// with the given source page (large-message map-in, §2.1). Both pages
// become COW sharers of the same backing bytes.
func (s *Segment) AdoptShared(index uint64, src *Page) *Page {
	if index >= s.Pages() {
		panic(fmt.Sprintf("vm: adopt page %d beyond segment %q", index, s.Name))
	}
	if src.shares == nil {
		n := 1
		src.shares = &n
	}
	*src.shares++
	p, present := s.table.ensure(index, s.Pages())
	if present && p.Data != nil && !p.Shared() && s.pool != nil {
		// Overwriting a privately owned page: its frame is free again.
		s.pool.Put(p.Data)
	}
	p.Index = index
	p.Data = src.Data
	p.shares = src.shares
	p.State = src.State
	p.State.Resident = false // residency is per-site, set by the caller
	p.State.OnDisk = false
	p.Version = 0
	return p
}

// zeroRead serves reads of unmaterialized pages without allocating: a
// shared all-zero buffer handed out read-only. Reads longer than the
// buffer (page sizes beyond 64 KB) fall back to allocation.
var zeroRead [1 << 16]byte

// Read returns up to n bytes of the page at index starting at off. A
// missing page reads as zeros — served from a shared zero buffer, so
// the returned slice is READ-ONLY; callers that mutate must copy (or
// use ReadInto with their own buffer).
func (s *Segment) Read(index uint64, off, n int) []byte {
	p := s.table.get(index)
	if p == nil || p.Data == nil {
		if n <= len(zeroRead) {
			return zeroRead[:n:n]
		}
		return make([]byte, n)
	}
	out := make([]byte, n)
	copy(out, p.Data[off:])
	return out
}

// ReadInto fills dst from the page at index starting at off, zeroing
// any part not covered by materialized data (missing page, or a read
// past the page's extent). It is the copy-free counterpart of Read for
// callers that own a reusable buffer.
func (s *Segment) ReadInto(index uint64, off int, dst []byte) {
	p := s.table.get(index)
	if p == nil || p.Data == nil {
		clear(dst)
		return
	}
	n := 0
	if off < len(p.Data) {
		n = copy(dst, p.Data[off:])
	}
	clear(dst[n:])
}

// Write stores data into the page at index starting at off, performing
// the deferred copy if the page is COW-shared, and marks it dirty. The
// page must already be materialized.
func (s *Segment) Write(index uint64, off int, data []byte) {
	p := s.table.get(index)
	if p == nil {
		panic(fmt.Sprintf("vm: write to unmaterialized page %d of %q", index, s.Name))
	}
	s.breakCOW(p)
	copy(p.Data[off:], data)
	p.MarkWritten()
}

// breakCOW gives p a private copy of its data if it is currently shared.
// It reports whether a copy was performed (the deferred-copy event the
// IPC cost model charges for).
func (s *Segment) breakCOW(p *Page) bool {
	if !p.Shared() {
		return false
	}
	*p.shares--
	fresh := s.frame()
	copy(fresh, p.Data)
	if len(p.Data) < len(fresh) {
		clear(fresh[len(p.Data):])
	}
	p.Data = fresh
	p.shares = nil
	return true
}

// BreakCOW exposes the deferred-copy operation for the IPC layer, which
// must charge its cost. It reports whether a physical copy happened.
func (s *Segment) BreakCOW(index uint64) bool {
	p := s.table.get(index)
	if p == nil {
		return false
	}
	return s.breakCOW(p)
}

// ReleaseFrames returns every privately owned page frame to the
// attached pool and empties the page table. COW-shared frames are left
// to their surviving sharers. Called when a segment's data is no longer
// needed (segment death, process excision after collapse).
func (s *Segment) ReleaseFrames() {
	if s.table.count == 0 {
		s.table = pageTable{}
		return
	}
	last := s.Pages() - 1
	for idx, ok := s.table.nextPresent(0, last); ok; idx, ok = s.table.nextPresent(idx+1, last) {
		p := s.table.get(idx)
		if s.pool != nil && p.Data != nil && p.shares == nil {
			s.pool.Put(p.Data)
		}
		p.Data = nil
		p.shares = nil
		if idx == last {
			break
		}
	}
	s.table = pageTable{}
}

// Ref records a new mapping reference (a region now maps this segment).
func (s *Segment) Ref() { s.refs++ }

// Unref drops a mapping reference; when the last reference dies the
// death callback fires, mirroring the Imaginary Segment Death message.
func (s *Segment) Unref() {
	if s.refs <= 0 {
		panic(fmt.Sprintf("vm: unref of unreferenced segment %q", s.Name))
	}
	s.refs--
	if s.refs == 0 {
		if s.onDeath != nil {
			fn := s.onDeath
			s.onDeath = nil
			fn()
		}
		// No mapping can reach the data anymore; recycle the frames.
		s.ReleaseFrames()
	}
}

// Refs reports the live mapping count.
func (s *Segment) Refs() int { return s.refs }

// OnDeath registers fn to run when the last mapping reference dies.
func (s *Segment) OnDeath(fn func()) { s.onDeath = fn }
