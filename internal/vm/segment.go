package vm

import (
	"fmt"
	"sync/atomic"
)

// SegmentClass distinguishes locally backed segments from imaginary
// (port-backed) ones.
type SegmentClass int

const (
	// RealSeg data lives in local physical memory and/or on local disk.
	RealSeg SegmentClass = iota
	// ImagSeg data is owed by a backing port; pages are fetched through
	// the IPC system on first reference (§2.2).
	ImagSeg
)

// String names the class.
func (c SegmentClass) String() string {
	if c == RealSeg {
		return "RealSeg"
	}
	return "ImagSeg"
}

// PageState tracks where a materialized page's data currently is.
type PageState struct {
	Resident bool // a physical frame holds the data
	OnDisk   bool // the local paging disk holds a (possibly stale) copy
	Dirty    bool // resident copy differs from the disk copy
}

// Page is one materialized page of a segment. Unmaterialized pages
// (conceptual zeros, or imaginary pages not yet fetched) have no Page.
type Page struct {
	Index uint64 // page index within the segment
	Data  []byte
	State PageState

	// Version counts content mutations, so incremental transfer schemes
	// (pre-copy) can detect staleness cheaply.
	Version uint64

	// shares counts COW sharers including this page; a shared page's
	// Data must be copied before a write. A page owns its Data when
	// shares == nil or *shares == 1.
	shares *int
}

// MarkWritten records a mutation: the page becomes dirty relative to
// its disk copy and its version advances.
func (p *Page) MarkWritten() {
	p.State.Dirty = true
	p.Version++
}

// Shared reports whether the page currently shares its Data copy-on-write.
func (p *Page) Shared() bool { return p.shares != nil && *p.shares > 1 }

// Segment is a memory object: a numbered container of pages. Real
// segments are backed by local memory/disk; imaginary segments are
// backed by an IPC port (identified here by an opaque uint64 port id so
// this package stays below the IPC layer).
type Segment struct {
	ID          uint64
	Name        string
	Class       SegmentClass
	BackingPort uint64 // valid when Class == ImagSeg
	Size        uint64 // bytes

	pageSize int
	pages    map[uint64]*Page

	refs    int    // live region mappings
	onDeath func() // invoked when refs drops to zero (§2.2 Death message)
}

// nextSegID is atomic so that independent simulation kernels running
// on concurrent goroutines (parallel experiment trials) can allocate
// segments without racing. ID values never influence simulation
// behavior, only identity, so allocation order does not matter.
var nextSegID atomic.Uint64

// NewSegment creates a real segment of the given size.
func NewSegment(name string, size uint64, pageSize int) *Segment {
	return &Segment{
		ID:       nextSegID.Add(1),
		Name:     name,
		Class:    RealSeg,
		Size:     size,
		pageSize: pageSize,
		pages:    make(map[uint64]*Page),
	}
}

// NewImaginarySegment creates an imaginary segment whose data is owed by
// the given backing port.
func NewImaginarySegment(name string, size uint64, pageSize int, backingPort uint64) *Segment {
	s := NewSegment(name, size, pageSize)
	s.Class = ImagSeg
	s.BackingPort = backingPort
	return s
}

// PageSize reports the segment's page size in bytes.
func (s *Segment) PageSize() int { return s.pageSize }

// Pages reports the number of pages the segment spans.
func (s *Segment) Pages() uint64 {
	return (s.Size + uint64(s.pageSize) - 1) / uint64(s.pageSize)
}

// Page returns the materialized page at index, or nil.
func (s *Segment) Page(index uint64) *Page { return s.pages[index] }

// MaterializedPages reports how many pages hold actual data.
func (s *Segment) MaterializedPages() int { return len(s.pages) }

// Materialize installs data for page index, creating the Page if
// needed. The data is copied; len(data) must equal the page size (or be
// shorter for the final partial page).
func (s *Segment) Materialize(index uint64, data []byte) *Page {
	if index >= s.Pages() {
		panic(fmt.Sprintf("vm: materialize page %d beyond segment %q (%d pages)", index, s.Name, s.Pages()))
	}
	if len(data) > s.pageSize {
		panic(fmt.Sprintf("vm: materialize with %d bytes > page size %d", len(data), s.pageSize))
	}
	p := s.pages[index]
	if p == nil {
		p = &Page{Index: index}
		s.pages[index] = p
	}
	p.Data = make([]byte, s.pageSize)
	copy(p.Data, data)
	p.shares = nil
	return p
}

// MaterializeZero installs an all-zero page (the FillZero fault result).
func (s *Segment) MaterializeZero(index uint64) *Page {
	return s.Materialize(index, nil)
}

// AdoptShared installs a page at index that shares data copy-on-write
// with the given source page (large-message map-in, §2.1). Both pages
// become COW sharers of the same backing bytes.
func (s *Segment) AdoptShared(index uint64, src *Page) *Page {
	if index >= s.Pages() {
		panic(fmt.Sprintf("vm: adopt page %d beyond segment %q", index, s.Name))
	}
	if src.shares == nil {
		n := 1
		src.shares = &n
	}
	*src.shares++
	p := &Page{Index: index, Data: src.Data, shares: src.shares, State: src.State}
	p.State.Resident = false // residency is per-site, set by the caller
	p.State.OnDisk = false
	s.pages[index] = p
	return p
}

// Read returns up to n bytes of the page at index starting at off. A
// missing page reads as zeros.
func (s *Segment) Read(index uint64, off, n int) []byte {
	out := make([]byte, n)
	p := s.pages[index]
	if p == nil || p.Data == nil {
		return out
	}
	copy(out, p.Data[off:])
	return out
}

// Write stores data into the page at index starting at off, performing
// the deferred copy if the page is COW-shared, and marks it dirty. The
// page must already be materialized.
func (s *Segment) Write(index uint64, off int, data []byte) {
	p := s.pages[index]
	if p == nil {
		panic(fmt.Sprintf("vm: write to unmaterialized page %d of %q", index, s.Name))
	}
	s.breakCOW(p)
	copy(p.Data[off:], data)
	p.MarkWritten()
}

// breakCOW gives p a private copy of its data if it is currently shared.
// It reports whether a copy was performed (the deferred-copy event the
// IPC cost model charges for).
func (s *Segment) breakCOW(p *Page) bool {
	if !p.Shared() {
		return false
	}
	*p.shares--
	fresh := make([]byte, len(p.Data))
	copy(fresh, p.Data)
	p.Data = fresh
	p.shares = nil
	return true
}

// BreakCOW exposes the deferred-copy operation for the IPC layer, which
// must charge its cost. It reports whether a physical copy happened.
func (s *Segment) BreakCOW(index uint64) bool {
	p := s.pages[index]
	if p == nil {
		return false
	}
	return s.breakCOW(p)
}

// Ref records a new mapping reference (a region now maps this segment).
func (s *Segment) Ref() { s.refs++ }

// Unref drops a mapping reference; when the last reference dies the
// death callback fires, mirroring the Imaginary Segment Death message.
func (s *Segment) Unref() {
	if s.refs <= 0 {
		panic(fmt.Sprintf("vm: unref of unreferenced segment %q", s.Name))
	}
	s.refs--
	if s.refs == 0 && s.onDeath != nil {
		fn := s.onDeath
		s.onDeath = nil
		fn()
	}
}

// Refs reports the live mapping count.
func (s *Segment) Refs() int { return s.refs }

// OnDeath registers fn to run when the last mapping reference dies.
func (s *Segment) OnDeath(fn func()) { s.onDeath = fn }
