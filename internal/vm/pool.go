package vm

// FramePool recycles page-size data frames so the steady-state memory
// data plane stops paying one heap allocation (and later one GC scan)
// per 512-byte page touched. Frames are carved out of large contiguous
// arenas — arenaFrames pages per allocation — so even cold-start
// materialization of a big space costs len/arenaFrames allocator trips
// rather than one per page.
//
// The pool is deliberately not concurrency-safe: it is per-testbed
// state (one pool per simulated machine), and parallel experiment
// trials build fully disjoint testbeds. Keeping it lock-free keeps the
// fault hot path at zero synchronization cost.
//
// Frames returned by Get have unspecified contents; Materialize and
// breakCOW overwrite every byte (zeroing any tail past the installed
// data), so recycling never leaks stale page contents into the
// simulation.
type FramePool struct {
	pageSize int
	free     [][]byte
	stats    FramePoolStats
}

// arenaFrames is the number of page frames carved from one arena
// allocation (128 KB at the Accent page size — the same granularity as
// one page-table chunk).
const arenaFrames = 256

// FramePoolStats counts pool traffic for the performance report.
type FramePoolStats struct {
	Gets   uint64 // frames handed out
	Puts   uint64 // frames recycled
	Arenas uint64 // contiguous arenas allocated
}

// NewFramePool creates a pool serving frames of the given page size.
func NewFramePool(pageSize int) *FramePool {
	if pageSize <= 0 {
		panic("vm: frame pool page size must be positive")
	}
	return &FramePool{pageSize: pageSize}
}

// PageSize reports the frame size the pool serves.
func (p *FramePool) PageSize() int { return p.pageSize }

// Get returns a page-size frame, recycling a freed one when available
// and otherwise carving a fresh arena. Contents are unspecified.
func (p *FramePool) Get() []byte {
	p.stats.Gets++
	if n := len(p.free); n > 0 {
		f := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return f
	}
	arena := make([]byte, arenaFrames*p.pageSize)
	p.stats.Arenas++
	// Full-slice expressions cap every frame at its own extent so an
	// append through one frame can never bleed into its neighbor.
	for off := p.pageSize; off < len(arena); off += p.pageSize {
		p.free = append(p.free, arena[off:off+p.pageSize:off+p.pageSize])
	}
	return arena[:p.pageSize:p.pageSize]
}

// Put recycles a frame. Buffers smaller than the pool's page size are
// dropped (they were never pool frames).
func (p *FramePool) Put(f []byte) {
	if cap(f) < p.pageSize {
		return
	}
	p.stats.Puts++
	p.free = append(p.free, f[:p.pageSize])
}

// FreeFrames reports how many recycled frames are ready for reuse.
func (p *FramePool) FreeFrames() int { return len(p.free) }

// InUse reports how many handed-out frames have not been recycled.
// The chaos campaign's frame-leak invariant compares it against a
// census of frames actually reachable from live segments.
func (p *FramePool) InUse() uint64 { return p.stats.Gets - p.stats.Puts }

// Stats returns a snapshot of pool traffic.
func (p *FramePool) Stats() FramePoolStats { return p.stats }
