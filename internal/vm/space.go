package vm

import (
	"fmt"
	"sort"
)

// Region is a contiguous validated range of an address space, mapped to
// a segment at an offset. Regions are page-aligned and non-overlapping.
type Region struct {
	Start  Addr
	End    Addr // exclusive
	Seg    *Segment
	SegOff uint64 // segment byte offset corresponding to Start
	Name   string
}

// Size reports the region size in bytes.
func (r *Region) Size() uint64 { return uint64(r.End - r.Start) }

// Contains reports whether a falls within the region.
func (r *Region) Contains(a Addr) bool { return a >= r.Start && a < r.End }

// AddressSpace is a sparse process virtual address space: an ordered
// set of validated regions over up to 4 GB. Everything outside a region
// is BadMem.
type AddressSpace struct {
	cfg     Config
	ps      uint64 // page size as uint64 for address math
	regions []*Region
}

// NewAddressSpace returns an empty address space.
func NewAddressSpace(cfg Config) (*AddressSpace, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &AddressSpace{cfg: cfg, ps: uint64(cfg.pageSize())}, nil
}

// MustNewAddressSpace is NewAddressSpace for static configurations.
func MustNewAddressSpace(cfg Config) *AddressSpace {
	as, err := NewAddressSpace(cfg)
	if err != nil {
		panic(err)
	}
	return as
}

// PageSize reports the page size in bytes.
func (as *AddressSpace) PageSize() int { return int(as.ps) }

// pageAlign rounds size up to a whole number of pages.
func (as *AddressSpace) pageAlign(n uint64) uint64 {
	return (n + as.ps - 1) / as.ps * as.ps
}

// Validate allocates a fresh zero-filled region of size bytes at start,
// backed by a new real segment. This is Accent memory validation: the
// pages are conceptually zero and remain unmaterialized until touched.
func (as *AddressSpace) Validate(start Addr, size uint64, name string) (*Region, error) {
	if uint64(start)%as.ps != 0 {
		return nil, fmt.Errorf("vm: validate %q: start %#x not page aligned", name, start)
	}
	size = as.pageAlign(size)
	seg := NewSegment(name, size, int(as.ps))
	if as.cfg.Pool != nil {
		seg.SetPool(as.cfg.Pool)
	}
	return as.MapSegment(start, size, seg, 0, name)
}

// MapSegment maps size bytes of seg starting at segOff into the space
// at start. Used for mapped files and for mapping in imaginary objects.
func (as *AddressSpace) MapSegment(start Addr, size uint64, seg *Segment, segOff uint64, name string) (*Region, error) {
	if uint64(start)%as.ps != 0 || segOff%as.ps != 0 {
		return nil, fmt.Errorf("vm: map %q: unaligned start %#x or offset %#x", name, start, segOff)
	}
	size = as.pageAlign(size)
	if size == 0 {
		return nil, fmt.Errorf("vm: map %q: zero size", name)
	}
	if uint64(start)+size > MaxSpace {
		return nil, fmt.Errorf("vm: map %q: [%#x,%#x) exceeds the 4 GB space", name, start, uint64(start)+size)
	}
	if segOff+size > seg.Size {
		return nil, fmt.Errorf("vm: map %q: [%d,%d) exceeds segment size %d", name, segOff, segOff+size, seg.Size)
	}
	end := start + Addr(size)
	idx := sort.Search(len(as.regions), func(i int) bool { return as.regions[i].Start >= start })
	if idx > 0 && as.regions[idx-1].End > start {
		return nil, fmt.Errorf("vm: map %q: overlaps %q", name, as.regions[idx-1].Name)
	}
	if idx < len(as.regions) && as.regions[idx].Start < end {
		return nil, fmt.Errorf("vm: map %q: overlaps %q", name, as.regions[idx].Name)
	}
	r := &Region{Start: start, End: end, Seg: seg, SegOff: segOff, Name: name}
	as.regions = append(as.regions, nil)
	copy(as.regions[idx+1:], as.regions[idx:])
	as.regions[idx] = r
	seg.Ref()
	return r, nil
}

// Unmap removes a region, dropping its segment reference (which may
// trigger the segment's death callback).
func (as *AddressSpace) Unmap(r *Region) error {
	for i, rr := range as.regions {
		if rr == r {
			as.regions = append(as.regions[:i], as.regions[i+1:]...)
			r.Seg.Unref()
			return nil
		}
	}
	return fmt.Errorf("vm: unmap: region %q not in this space", r.Name)
}

// Clear unmaps every region (process death / excision completion).
func (as *AddressSpace) Clear() {
	for _, r := range as.regions {
		r.Seg.Unref()
	}
	as.regions = nil
}

// Regions returns the regions in address order. The slice is shared;
// callers must not modify it.
func (as *AddressSpace) Regions() []*Region { return as.regions }

// Lookup finds the region containing a, or nil.
func (as *AddressSpace) Lookup(a Addr) *Region {
	idx := sort.Search(len(as.regions), func(i int) bool { return as.regions[i].End > a })
	if idx < len(as.regions) && as.regions[idx].Contains(a) {
		return as.regions[idx]
	}
	return nil
}

// Place describes where an address lands: its region, segment, and the
// page index within the segment.
type Place struct {
	Region  *Region
	Seg     *Segment
	PageIdx uint64 // page index within the segment
	Offset  int    // byte offset within the page
}

// Resolve maps an address to its Place. ok is false for BadMem.
func (as *AddressSpace) Resolve(a Addr) (Place, bool) {
	r := as.Lookup(a)
	if r == nil {
		return Place{}, false
	}
	segByte := r.SegOff + uint64(a-r.Start)
	return Place{
		Region:  r,
		Seg:     r.Seg,
		PageIdx: segByte / as.ps,
		Offset:  int(segByte % as.ps),
	}, true
}

// Classify reports the accessibility of address a (§2.3).
func (as *AddressSpace) Classify(a Addr) Accessibility {
	pl, ok := as.Resolve(a)
	if !ok {
		return BadMem
	}
	return classifyPlace(pl)
}

func classifyPlace(pl Place) Accessibility {
	pg := pl.Seg.Page(pl.PageIdx)
	if pl.Seg.Class == ImagSeg {
		if pg == nil {
			return ImagMem
		}
		// Fetched imaginary pages are locally backed from then on.
		return RealMem
	}
	if pg == nil {
		return RealZeroMem
	}
	return RealMem
}

// ClassifyFault reports what servicing a touch of a requires right now.
func (as *AddressSpace) ClassifyFault(a Addr) FaultKind {
	pl, ok := as.Resolve(a)
	if !ok {
		return AddressError
	}
	pg := pl.Seg.Page(pl.PageIdx)
	switch {
	case pg == nil && pl.Seg.Class == ImagSeg:
		return ImagFault
	case pg == nil:
		return FillZeroFault
	case pg.State.Resident:
		return NoFault
	case pg.State.OnDisk:
		return DiskFault
	default:
		// Materialized but neither resident nor on disk: data exists in
		// the segment (e.g. just arrived in a message) and only the
		// mapping is missing — the cheap RealMem case in §2.3.
		return NoFault
	}
}

// Usage summarizes an address space's composition in bytes, the
// quantities of Table 4-1 plus residency for Table 4-2.
type Usage struct {
	Total    uint64 // validated bytes
	Real     uint64 // materialized, non-zero-conceptual data (RealMem + fetched imaginary)
	RealZero uint64 // validated but untouched
	Imag     uint64 // owed to imaginary segments, not yet fetched
	Resident uint64 // bytes resident in physical memory
}

// PctRealZero reports RealZero as a percentage of Total.
func (u Usage) PctRealZero() float64 {
	if u.Total == 0 {
		return 0
	}
	return 100 * float64(u.RealZero) / float64(u.Total)
}

// Usage scans the space and tallies its composition. Materialized page
// counts come from page-table bitmap popcounts, and residency from an
// ordered run sweep, so even a fully validated 4 GB Lisp space (8M page
// slots, a few thousand real pages) is cheap to summarize.
func (as *AddressSpace) Usage() Usage {
	var u Usage
	for _, r := range as.regions {
		u.Total += r.Size()
		firstPage := r.SegOff / as.ps
		lastPage := (r.SegOff + r.Size() - 1) / as.ps
		slots := lastPage - firstPage + 1
		mat := uint64(r.Seg.table.countRange(firstPage, lastPage))
		var res uint64
		cursor := firstPage
		for {
			start, end, ok := r.Seg.table.nextRun(cursor, lastPage)
			if !ok {
				break
			}
			for idx := start; idx < end; idx++ {
				if r.Seg.table.get(idx).State.Resident {
					res++
				}
			}
			cursor = end
			if cursor > lastPage {
				break
			}
		}
		u.Real += mat * as.ps
		u.Resident += res * as.ps
		if r.Seg.Class == ImagSeg {
			u.Imag += (slots - mat) * as.ps
		} else {
			u.RealZero += (slots - mat) * as.ps
		}
	}
	return u
}

// TouchedPages counts materialized pages across the space's regions.
func (as *AddressSpace) TouchedPages() int {
	n := 0
	for _, r := range as.regions {
		firstPage := r.SegOff / as.ps
		lastPage := (r.SegOff + r.Size() - 1) / as.ps
		n += r.Seg.table.countRange(firstPage, lastPage)
	}
	return n
}
