package vm

import "time"

// Content hashing for the content-addressed page store. Pages are named
// by a 64-bit FNV-1a hash over their full page-size image (short run
// tails hash as if zero-padded, matching Materialize's tail-clearing),
// so a page's name is independent of how its bytes happened to be
// sliced into runs. The hash is non-cryptographic: the store is a
// performance optimization inside one simulated cluster, not a
// security boundary, and a verify-on-lookup re-hash guards against
// recycled frames (see ContentIndex).

// ZeroHash is the reserved name of the all-zero page. HashPage never
// returns it for a non-zero page, so zero detection is a single
// comparison everywhere downstream (manifest classification, fault
// reply elision, insert-time reconstruction).
const ZeroHash uint64 = 0

const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// HashPage names a page image: data is the page's bytes (possibly a
// short final-page slice), pageSize the page stride. Missing tail bytes
// hash as zeros. The second result reports whether the page is entirely
// zero, in which case the hash is the ZeroHash sentinel.
func HashPage(data []byte, pageSize int) (uint64, bool) {
	h := fnvOffset64
	zero := true
	n := len(data)
	if n > pageSize {
		n = pageSize
	}
	for i := 0; i < n; i++ {
		b := data[i]
		if b != 0 {
			zero = false
		}
		h ^= uint64(b)
		h *= fnvPrime64
	}
	if zero {
		return ZeroHash, true
	}
	// Hash the implicit zero tail so partial and full images of the
	// same page agree.
	for i := n; i < pageSize; i++ {
		h *= fnvPrime64
	}
	if h == ZeroHash {
		h = 1 // keep the sentinel unambiguous
	}
	return h, false
}

// PageHash names one page of an attachment or segment by (index, hash).
// It is the unit of the migration manifest and of the elided-page and
// hash-hint lists riding ipc.MemAttachment.
type PageHash struct {
	Index uint64 // page index (attachment-relative or segment-relative)
	Hash  uint64 // HashPage of the page image; ZeroHash for zero pages
}

// PageHashWireBytes is the wire price of one PageHash entry: an 8-byte
// hash plus a 4-byte page index (manifests and elision lists cover at
// most a few thousand pages, so indexes fit in 32 bits on the wire).
const PageHashWireBytes = 12

// HashRun appends (index, hash) entries for every page of a run to dst
// and returns the extended slice. It is the manifest-building sweep:
// one pass over the run's bytes, no allocation beyond dst's growth.
func HashRun(dst []PageHash, r PageRun, pageSize int) []PageHash {
	for i := 0; i < r.Count; i++ {
		h, _ := HashPage(r.Page(i, pageSize), pageSize)
		dst = append(dst, PageHash{Index: r.Index + uint64(i), Hash: h})
	}
	return dst
}

// ModelCompressedSize estimates the post-compression size of a page
// image without actually compressing: a stride predictor (next byte =
// prev + last delta) counts mispredicted bytes, and the modeled output
// is a small header plus two bytes per misprediction, capped at the
// raw size. Synthetic workload pages with linear fill patterns model
// as highly compressible while random-looking content models as
// incompressible, which is the workload-dependent ratio the sweep
// needs. The estimate is deterministic and allocation-free.
func ModelCompressedSize(data []byte, pageSize int) int {
	raw := len(data)
	if raw == 0 {
		return 0
	}
	const header = 8
	miss := 1 // the first byte is always literal
	var prev, delta byte
	prev = data[0]
	for i := 1; i < raw; i++ {
		b := data[i]
		if b != prev+delta {
			miss++
		}
		delta = b - prev
		prev = b
	}
	size := header + 2*miss
	if size > raw {
		size = raw
	}
	return size
}

// DedupConfig parameterizes the content-addressed page store. The zero
// value disables it entirely: no hashing, no indexing, no manifest
// exchange, so the default simulation is byte-identical to a build
// without the store.
type DedupConfig struct {
	// Enabled turns on content hashing, the per-machine index, the
	// migration manifest exchange, and nearest-holder fault serving.
	Enabled bool
	// Compress adds the modeled per-run compression to shipped runs
	// (requires Enabled).
	Compress bool
	// Resume retains delivered page content across failed migration
	// attempts in a destination-side DeliveryLedger, so a retry's
	// manifest exchange elides pages that already made the crossing.
	// Resume works with or without Enabled: on its own it runs the
	// manifest exchange purely for ledger elision.
	Resume bool
	// Integrity stamps per-page checksums on migration payload
	// attachments, verifies them at install time, and repairs
	// mismatches by single-page hash reads back to the source.
	Integrity bool

	// HashPerPageCPU is charged at the source for hashing one page when
	// building a manifest (and at any machine indexing a page).
	HashPerPageCPU time.Duration
	// CompressPerPageCPU / DecompressPerPageCPU are charged per shipped
	// page at the source / destination when Compress is on.
	CompressPerPageCPU   time.Duration
	DecompressPerPageCPU time.Duration
	// LocalServeCPU is charged when a fault is satisfied from the
	// destination's own content index instead of the wire.
	LocalServeCPU time.Duration
}

// WithDefaults fills unset cost knobs. Hashing 512 bytes is a fast
// pass over one page (~a tenth of the 2 ms map-in cost); the modeled
// compressor costs about a quarter of the 13 ms fragment handling it
// can save; a local serve is a frame copy plus map-in bookkeeping.
func (c DedupConfig) WithDefaults() DedupConfig {
	if !c.Enabled && !c.Resume && !c.Integrity {
		return c
	}
	if c.HashPerPageCPU == 0 {
		c.HashPerPageCPU = 200 * time.Microsecond
	}
	if c.CompressPerPageCPU == 0 {
		c.CompressPerPageCPU = 3 * time.Millisecond
	}
	if c.DecompressPerPageCPU == 0 {
		c.DecompressPerPageCPU = 1 * time.Millisecond
	}
	if c.LocalServeCPU == 0 {
		c.LocalServeCPU = 1 * time.Millisecond
	}
	return c
}

// ManifestActive reports whether migrations run the OpManifest
// exchange: for content elision (Enabled), for ledger-driven resume
// (Resume), or both.
func (c DedupConfig) ManifestActive() bool { return c.Enabled || c.Resume }
