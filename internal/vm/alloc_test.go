package vm

import "testing"

// The zero-alloc gates below pin the memory data plane's steady state:
// once a process is warm, servicing resident references, re-filling
// pages, and rebuilding AMaps must not touch the heap at all. These run
// in short mode so `make benchsmoke` (and CI) catches an allocation
// regression the moment it lands.

// warmSpace builds a space with n materialized resident pages at VA 0,
// backed by a pooled segment.
func warmSpace(t testing.TB, n int) (*AddressSpace, *Region, *PhysMem) {
	t.Helper()
	pool := NewFramePool(DefaultPageSize)
	as := MustNewAddressSpace(Config{Pool: pool})
	reg, err := as.Validate(0, uint64(n)*uint64(as.PageSize()), "data")
	if err != nil {
		t.Fatal(err)
	}
	phys := NewPhysMem(n + 16)
	for i := 0; i < n; i++ {
		pg := reg.Seg.Materialize(uint64(i), []byte{byte(i)})
		pg.State.Resident = true
		phys.Insert(reg.Seg, uint64(i))
	}
	return as, reg, phys
}

func TestAllocsResidentFaultResolution(t *testing.T) {
	as, _, phys := warmSpace(t, 64)
	ps := Addr(as.PageSize())
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		addr := Addr(i%64) * ps
		pl, ok := as.Resolve(addr)
		if !ok {
			t.Fatal("resolve failed")
		}
		pg := pl.Seg.Page(pl.PageIdx)
		if pg == nil || !pg.State.Resident {
			t.Fatal("page not resident")
		}
		phys.Touch(pl.Seg, pl.PageIdx)
		i++
	})
	if allocs != 0 {
		t.Errorf("resident reference allocates %.1f objects/op, want 0", allocs)
	}
}

func TestAllocsRematerializeExistingPage(t *testing.T) {
	_, reg, _ := warmSpace(t, 8)
	data := []byte("fresh contents")
	allocs := testing.AllocsPerRun(200, func() {
		reg.Seg.Materialize(3, data)
	})
	if allocs != 0 {
		t.Errorf("re-materialize allocates %.1f objects/op, want 0", allocs)
	}
}

func TestAllocsEvictReinsertSteadyState(t *testing.T) {
	// Over-committed physical memory: every Insert evicts the LRU page.
	// The evicted-set scratch buffer must absorb the churn allocation-
	// free once warm.
	pool := NewFramePool(DefaultPageSize)
	as := MustNewAddressSpace(Config{Pool: pool})
	const pages = 32
	reg, err := as.Validate(0, pages*DefaultPageSize, "data")
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < pages; i++ {
		reg.Seg.Materialize(i, []byte{byte(i)})
	}
	phys := NewPhysMem(8)
	for i := uint64(0); i < pages; i++ { // warm the free list and scratch
		for _, ev := range phys.Insert(reg.Seg, i) {
			ev.Seg.Page(ev.Index).State.Resident = false
		}
	}
	i := uint64(0)
	allocs := testing.AllocsPerRun(200, func() {
		for _, ev := range phys.Insert(reg.Seg, i%pages) {
			ev.Seg.Page(ev.Index).State.Resident = false
		}
		i++
	})
	if allocs != 0 {
		t.Errorf("evicting insert allocates %.1f objects/op, want 0", allocs)
	}
}

func TestAllocsPoolRecycleCycle(t *testing.T) {
	pool := NewFramePool(DefaultPageSize)
	f := pool.Get()
	pool.Put(f)
	allocs := testing.AllocsPerRun(200, func() {
		pool.Put(pool.Get())
	})
	if allocs != 0 {
		t.Errorf("pool Get/Put cycle allocates %.1f objects/op, want 0", allocs)
	}
}

func TestAllocsAMapRebuildUnchanged(t *testing.T) {
	as, _, _ := warmSpace(t, 64)
	m := BuildAMap(as)
	entries := len(m.Entries)
	allocs := testing.AllocsPerRun(100, func() {
		m.Rebuild(as)
	})
	if allocs != 0 {
		t.Errorf("AMap rebuild allocates %.1f objects/op, want 0", allocs)
	}
	if len(m.Entries) != entries {
		t.Errorf("rebuild changed entry count: %d -> %d", entries, len(m.Entries))
	}
}

func TestAllocsDedupOff(t *testing.T) {
	// With the content-addressed store disabled, a machine carries a nil
	// ContentIndex and every dedup-aware call site degrades to a nil
	// check: the warm materialize/touch path must stay allocation-free
	// with those calls present, proving hashing and indexing are off the
	// hot path rather than merely cheap.
	as, reg, phys := warmSpace(t, 64)
	ps := Addr(as.PageSize())
	var ix *ContentIndex // the disabled store
	data := []byte("refill")
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		addr := Addr(i%64) * ps
		pl, ok := as.Resolve(addr)
		if !ok {
			t.Fatal("resolve failed")
		}
		phys.Touch(pl.Seg, pl.PageIdx)
		pg := reg.Seg.Materialize(uint64(i%64), data)
		ix.Put(42, pg.Data)
		if _, hit := ix.Lookup(42); hit {
			t.Fatal("disabled index hit")
		}
		i++
	})
	if allocs != 0 {
		t.Errorf("disabled-store hot path allocates %.1f objects/op, want 0", allocs)
	}
}

func TestAllocsSegmentReadMissingPage(t *testing.T) {
	seg := NewSegment("sparse", 16*DefaultPageSize, DefaultPageSize)
	allocs := testing.AllocsPerRun(200, func() {
		if b := seg.Read(5, 0, 64); b[0] != 0 {
			t.Fatal("zero read returned nonzero")
		}
	})
	if allocs != 0 {
		t.Errorf("missing-page read allocates %.1f objects/op, want 0", allocs)
	}
}

func TestAllocsReadInto(t *testing.T) {
	seg := NewSegment("sparse", 16*DefaultPageSize, DefaultPageSize)
	seg.Materialize(2, []byte("materialized"))
	dst := make([]byte, DefaultPageSize)
	allocs := testing.AllocsPerRun(200, func() {
		seg.ReadInto(2, 0, dst) // present page
		seg.ReadInto(9, 0, dst) // missing page: zero fill
	})
	if allocs != 0 {
		t.Errorf("ReadInto allocates %.1f objects/op, want 0", allocs)
	}
}

func TestAllocsIntegrityOff(t *testing.T) {
	// With per-page checksums off, RIMAS attachments carry no Sums and
	// the destination's install loop reduces to a slice-length check:
	// the warm install path must stay allocation-free with the guard
	// present, proving verification is off the hot path rather than
	// merely cheap.
	_, reg, phys := warmSpace(t, 64)
	var sums []uint64 // integrity disabled: no checksums travelled
	data := []byte("refill")
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		idx := uint64(i % 64)
		pg := reg.Seg.Materialize(idx, data)
		if int(idx) < len(sums) {
			if h, _ := HashPage(pg.Data, DefaultPageSize); h != sums[idx] {
				t.Fatal("checksum mismatch")
			}
		}
		phys.Touch(reg.Seg, idx)
		i++
	})
	if allocs != 0 {
		t.Errorf("integrity-off install path allocates %.1f objects/op, want 0", allocs)
	}
}

func TestAllocsLedgerOff(t *testing.T) {
	// With resumable retries off, a machine carries a nil DeliveryLedger
	// and every transport call site degrades to a nil check: crediting
	// and lookup on the warm transfer path must not touch the heap.
	var led *DeliveryLedger // resume disabled
	_, reg, phys := warmSpace(t, 64)
	data := []byte("in flight")
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		idx := uint64(i % 64)
		pg := reg.Seg.Materialize(idx, data)
		phys.Touch(reg.Seg, idx)
		led.Credit("proc", 42, pg.Data)
		if led.Lookup("proc", 42, DefaultPageSize) != nil {
			t.Fatal("disabled ledger hit")
		}
		if led.Pages("proc") != 0 {
			t.Fatal("disabled ledger holds pages")
		}
		i++
	})
	if allocs != 0 {
		t.Errorf("ledger-off transfer path allocates %.1f objects/op, want 0", allocs)
	}
}
