package vm

import "testing"

func TestPhysInsertAndTouch(t *testing.T) {
	pm := NewPhysMem(2)
	s := NewSegment("s", 4*512, 512)
	for i := uint64(0); i < 2; i++ {
		s.MaterializeZero(i)
		if ev := pm.Insert(s, i); ev != nil {
			t.Errorf("unexpected eviction: %+v", ev)
		}
	}
	if pm.Len() != 2 {
		t.Errorf("Len = %d", pm.Len())
	}
	if !pm.Resident(s, 0) || !pm.Resident(s, 1) {
		t.Error("pages not resident")
	}
	if !s.Page(0).State.Resident {
		t.Error("page state not marked resident")
	}
	if pm.Touch(s, 3) {
		t.Error("Touch of absent page returned true")
	}
}

func TestPhysLRUEviction(t *testing.T) {
	pm := NewPhysMem(2)
	s := NewSegment("s", 4*512, 512)
	for i := uint64(0); i < 3; i++ {
		s.MaterializeZero(i)
	}
	pm.Insert(s, 0)
	pm.Insert(s, 1)
	pm.Touch(s, 0) // 1 becomes LRU
	ev := pm.Insert(s, 2)
	if len(ev) != 1 || ev[0].Index != 1 {
		t.Fatalf("evicted %+v, want page 1", ev)
	}
	if pm.Resident(s, 1) {
		t.Error("evicted page still resident in physmem")
	}
	pg := s.Page(1)
	if pg.State.Resident || !pg.State.OnDisk {
		t.Errorf("evicted page state = %+v, want on-disk non-resident", pg.State)
	}
}

func TestPhysEvictionReportsDirty(t *testing.T) {
	pm := NewPhysMem(1)
	s := NewSegment("s", 2*512, 512)
	s.MaterializeZero(0)
	s.MaterializeZero(1)
	pm.Insert(s, 0)
	s.Write(0, 0, []byte("dirty"))
	ev := pm.Insert(s, 1)
	if len(ev) != 1 || !ev[0].WasDirty {
		t.Errorf("eviction = %+v, want dirty page 0", ev)
	}
	if s.Page(0).State.Dirty {
		t.Error("dirty bit not cleared after write-back transition")
	}
}

func TestPhysReinsertIsTouch(t *testing.T) {
	pm := NewPhysMem(2)
	s := NewSegment("s", 3*512, 512)
	for i := uint64(0); i < 3; i++ {
		s.MaterializeZero(i)
	}
	pm.Insert(s, 0)
	pm.Insert(s, 1)
	pm.Insert(s, 0) // refresh 0; 1 is LRU now
	ev := pm.Insert(s, 2)
	if len(ev) != 1 || ev[0].Index != 1 {
		t.Errorf("evicted %+v, want page 1", ev)
	}
}

func TestPhysRemoveSegment(t *testing.T) {
	pm := NewPhysMem(4)
	a := NewSegment("a", 2*512, 512)
	b := NewSegment("b", 2*512, 512)
	for i := uint64(0); i < 2; i++ {
		a.MaterializeZero(i)
		b.MaterializeZero(i)
		pm.Insert(a, i)
		pm.Insert(b, i)
	}
	pm.RemoveSegment(a)
	if pm.Len() != 2 {
		t.Errorf("Len = %d after RemoveSegment, want 2", pm.Len())
	}
	if pm.Resident(a, 0) || a.Page(0).State.Resident {
		t.Error("segment a pages still resident")
	}
	if !pm.Resident(b, 1) {
		t.Error("segment b pages lost")
	}
}

func TestPhysRemoveSingle(t *testing.T) {
	pm := NewPhysMem(2)
	s := NewSegment("s", 512, 512)
	s.MaterializeZero(0)
	pm.Insert(s, 0)
	pm.Remove(s, 0)
	if pm.Len() != 0 || s.Page(0).State.Resident {
		t.Error("Remove did not release the frame")
	}
	pm.Remove(s, 0) // idempotent
}

func TestPhysResidentPagesOrder(t *testing.T) {
	pm := NewPhysMem(3)
	s := NewSegment("s", 3*512, 512)
	for i := uint64(0); i < 3; i++ {
		s.MaterializeZero(i)
		pm.Insert(s, i)
	}
	pm.Touch(s, 0)
	rp := pm.ResidentPages()
	if len(rp) != 3 || rp[0].Index != 0 || rp[1].Index != 2 || rp[2].Index != 1 {
		t.Errorf("ResidentPages order = %+v", rp)
	}
}

func TestPhysInsertUnmaterializedPanics(t *testing.T) {
	pm := NewPhysMem(1)
	s := NewSegment("s", 512, 512)
	defer func() {
		if recover() == nil {
			t.Error("no panic inserting unmaterialized page")
		}
	}()
	pm.Insert(s, 0)
}

func TestPhysCapacityInvariant(t *testing.T) {
	pm := NewPhysMem(5)
	s := NewSegment("s", 100*512, 512)
	for i := uint64(0); i < 100; i++ {
		s.MaterializeZero(i)
		pm.Insert(s, i)
		if pm.Len() > pm.Capacity() {
			t.Fatalf("Len %d exceeds capacity %d", pm.Len(), pm.Capacity())
		}
	}
	if pm.Len() != 5 {
		t.Errorf("final Len = %d", pm.Len())
	}
}
