package vm

import "testing"

func TestAMapCoalescing(t *testing.T) {
	as := mustSpace(t)
	r, _ := as.Validate(0, 10*512, "d")
	// Touch pages 2,3,4 and 7.
	for _, i := range []uint64{2, 3, 4, 7} {
		r.Seg.MaterializeZero(i)
	}
	m := BuildAMap(as)
	want := []AMapEntry{
		{0, 2 * 512, RealZeroMem},
		{2 * 512, 5 * 512, RealMem},
		{5 * 512, 7 * 512, RealZeroMem},
		{7 * 512, 8 * 512, RealMem},
		{8 * 512, 10 * 512, RealZeroMem},
	}
	if len(m.Entries) != len(want) {
		t.Fatalf("entries = %+v, want %+v", m.Entries, want)
	}
	for i, e := range want {
		if m.Entries[i] != e {
			t.Errorf("entry %d = %+v, want %+v", i, m.Entries[i], e)
		}
	}
	if m.Stats.Runs != 5 || m.Stats.Regions != 1 || m.Stats.MaterializedPages != 4 {
		t.Errorf("stats = %+v", m.Stats)
	}
}

func TestAMapImaginaryRuns(t *testing.T) {
	as := mustSpace(t)
	seg := NewImaginarySegment("owed", 6*512, 512, 3)
	if _, err := as.MapSegment(0x10000, 6*512, seg, 0, "owed"); err != nil {
		t.Fatal(err)
	}
	seg.Materialize(2, []byte("x"))
	m := BuildAMap(as)
	want := []AMapEntry{
		{0x10000, 0x10000 + 2*512, ImagMem},
		{0x10000 + 2*512, 0x10000 + 3*512, RealMem},
		{0x10000 + 3*512, 0x10000 + 6*512, ImagMem},
	}
	for i, e := range want {
		if m.Entries[i] != e {
			t.Errorf("entry %d = %+v, want %+v", i, m.Entries[i], e)
		}
	}
}

func TestAMapClassifyAndGaps(t *testing.T) {
	as := mustSpace(t)
	as.Validate(0, 512, "a")
	as.Validate(4096, 512, "b")
	m := BuildAMap(as)
	if got := m.Classify(0); got != RealZeroMem {
		t.Errorf("Classify(0) = %v", got)
	}
	if got := m.Classify(2048); got != BadMem {
		t.Errorf("Classify(gap) = %v, want BadMem", got)
	}
	if got := m.Classify(4096); got != RealZeroMem {
		t.Errorf("Classify(4096) = %v", got)
	}
	if got := m.Classify(Addr(MaxSpace)); got != BadMem {
		t.Errorf("Classify(end) = %v", got)
	}
}

func TestAMapSlice(t *testing.T) {
	as := mustSpace(t)
	r, _ := as.Validate(0, 8*512, "d")
	r.Seg.MaterializeZero(3)
	m := BuildAMap(as)
	got := m.Slice(2*512, 5*512)
	want := []AMapEntry{
		{2 * 512, 3 * 512, RealZeroMem},
		{3 * 512, 4 * 512, RealMem},
		{4 * 512, 5 * 512, RealZeroMem},
	}
	if len(got) != len(want) {
		t.Fatalf("Slice = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("slice[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestAMapTotalBytes(t *testing.T) {
	as := mustSpace(t)
	r, _ := as.Validate(0, 4*512, "d")
	r.Seg.MaterializeZero(0)
	seg := NewImaginarySegment("i", 2*512, 512, 1)
	as.MapSegment(1<<20, 2*512, seg, 0, "i")
	tot := BuildAMap(as).TotalBytes()
	if tot[RealMem] != 512 || tot[RealZeroMem] != 3*512 || tot[ImagMem] != 2*512 {
		t.Errorf("TotalBytes = %v", tot)
	}
}

func TestAMapMergesAdjacentRegions(t *testing.T) {
	as := mustSpace(t)
	as.Validate(0, 512, "a")
	as.Validate(512, 512, "b")
	m := BuildAMap(as)
	if len(m.Entries) != 1 {
		t.Errorf("adjacent same-class regions not merged: %+v", m.Entries)
	}
}

func TestAMapHugeSparse(t *testing.T) {
	as := mustSpace(t)
	r, err := as.Validate(0, MaxSpace, "lisp")
	if err != nil {
		t.Fatal(err)
	}
	r.Seg.MaterializeZero(1000)
	r.Seg.MaterializeZero(1001)
	m := BuildAMap(as)
	if len(m.Entries) != 3 {
		t.Fatalf("entries = %d, want 3", len(m.Entries))
	}
	if m.Stats.ValidatedPages != MaxSpace/512 {
		t.Errorf("ValidatedPages = %d", m.Stats.ValidatedPages)
	}
	tot := m.TotalBytes()
	if tot[RealMem] != 1024 {
		t.Errorf("RealMem = %d, want 1024", tot[RealMem])
	}
	if tot[RealZeroMem] != MaxSpace-1024 {
		t.Errorf("RealZeroMem = %d", tot[RealZeroMem])
	}
}

func TestAMapWireBytesGrowsWithEntries(t *testing.T) {
	as := mustSpace(t)
	as.Validate(0, 512, "a")
	small := BuildAMap(as).WireBytes()
	as2 := mustSpace(t)
	for i := 0; i < 20; i++ {
		as2.Validate(Addr(i*4096), 512, "r")
	}
	big := BuildAMap(as2).WireBytes()
	if big <= small {
		t.Errorf("WireBytes small=%d big=%d", small, big)
	}
}
