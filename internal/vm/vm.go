// Package vm models the Accent virtual memory system at page
// granularity: sparse address spaces of up to 4 gigabytes, segments
// (real and imaginary) holding actual page data, copy-on-write sharing,
// lazy zero-fill, physical memory with LRU replacement, and the
// Accessibility Map (AMap) machinery that migration depends on.
//
// The package is purely mechanical: it classifies addresses and moves
// page state around. Fault *costs* and fault *handling policy* live in
// the pager and core packages.
package vm

import "fmt"

// DefaultPageSize is the Accent page size: 512 bytes.
const DefaultPageSize = 512

// MaxSpace is the size of a full Accent address space: 4 gigabytes.
const MaxSpace uint64 = 4 << 30

// Addr is a virtual address within a process address space.
type Addr uint64

// Accessibility is the memory "distance" of an address, as defined for
// AMaps in the paper (§2.3). The order reflects increasing distance.
type Accessibility int

const (
	// RealZeroMem: validated but never touched; conceptually zero.
	// Immediately accessible via an inexpensive FillZero fault.
	RealZeroMem Accessibility = iota
	// RealMem: data present in physical memory or on the local disk.
	// Moderately accessible.
	RealMem
	// ImagMem: mapped to an imaginary segment; a touch generates an
	// imaginary fault serviced through IPC. Distantly accessible.
	ImagMem
	// BadMem: not validated; touching it is an addressing error.
	// Infinitely distant.
	BadMem
)

// String returns the paper's name for the accessibility class.
func (a Accessibility) String() string {
	switch a {
	case RealZeroMem:
		return "RealZeroMem"
	case RealMem:
		return "RealMem"
	case ImagMem:
		return "ImagMem"
	case BadMem:
		return "BadMem"
	default:
		return fmt.Sprintf("Accessibility(%d)", int(a))
	}
}

// Config parameterizes an address space. The zero value selects the
// Accent defaults.
type Config struct {
	// PageSize in bytes; must be a power of two. Defaults to 512.
	PageSize int
	// Pool, when set, supplies recycled page frames to every segment
	// the space creates via Validate. Its page size must match.
	Pool *FramePool
}

func (c Config) pageSize() int {
	if c.PageSize == 0 {
		return DefaultPageSize
	}
	return c.PageSize
}

func (c Config) validate() error {
	ps := c.pageSize()
	if ps < 8 || ps&(ps-1) != 0 {
		return fmt.Errorf("vm: page size %d is not a power of two >= 8", ps)
	}
	return nil
}

// FaultKind classifies what servicing a touch of an address requires.
type FaultKind int

const (
	// NoFault: the page is resident; the reference proceeds directly.
	NoFault FaultKind = iota
	// FillZeroFault: first touch of validated-but-untouched memory; a
	// zero frame is conjured without consulting the disk.
	FillZeroFault
	// DiskFault: the page image must be read from the local disk.
	DiskFault
	// ImagFault: the page must be requested from the segment's backing
	// port through the IPC system.
	ImagFault
	// AddressError: the address is BadMem.
	AddressError
)

// String names the fault kind.
func (f FaultKind) String() string {
	switch f {
	case NoFault:
		return "NoFault"
	case FillZeroFault:
		return "FillZeroFault"
	case DiskFault:
		return "DiskFault"
	case ImagFault:
		return "ImagFault"
	case AddressError:
		return "AddressError"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(f))
	}
}
