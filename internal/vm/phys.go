package vm

import (
	"container/list"
	"fmt"
)

// Evicted describes a page pushed out of physical memory. WasDirty
// tells the pager whether a write-back (with its disk cost) occurred;
// the page's state has already been updated to on-disk, non-resident.
type Evicted struct {
	Seg      *Segment
	Index    uint64
	WasDirty bool
}

type frameKey struct {
	segID uint64
	index uint64
}

type frameEntry struct {
	seg   *Segment
	index uint64
}

// PhysMem models a machine's physical page frames with global LRU
// replacement. Under Accent physical memory acts as a disk cache
// (§4.2.3), so frames are shared across all processes on the machine
// and stale file pages linger until squeezed out.
type PhysMem struct {
	capFrames int
	order     *list.List // front = most recently used
	index     map[frameKey]*list.Element
}

// NewPhysMem returns a physical memory of the given frame count.
func NewPhysMem(frames int) *PhysMem {
	if frames < 1 {
		panic("vm: NewPhysMem needs at least one frame")
	}
	return &PhysMem{
		capFrames: frames,
		order:     list.New(),
		index:     make(map[frameKey]*list.Element),
	}
}

// Capacity reports the frame count.
func (pm *PhysMem) Capacity() int { return pm.capFrames }

// Len reports the number of occupied frames.
func (pm *PhysMem) Len() int { return pm.order.Len() }

// Resident reports whether the page occupies a frame.
func (pm *PhysMem) Resident(seg *Segment, index uint64) bool {
	_, ok := pm.index[frameKey{seg.ID, index}]
	return ok
}

// Touch marks the page most recently used. It reports whether the page
// was resident.
func (pm *PhysMem) Touch(seg *Segment, index uint64) bool {
	el, ok := pm.index[frameKey{seg.ID, index}]
	if !ok {
		return false
	}
	pm.order.MoveToFront(el)
	return true
}

// Insert makes the page resident (the page must be materialized),
// evicting least-recently-used frames if memory is full. Evicted pages
// are transitioned to on-disk and returned so the caller can charge
// write-back costs for the dirty ones.
func (pm *PhysMem) Insert(seg *Segment, index uint64) []Evicted {
	pg := seg.Page(index)
	if pg == nil {
		panic(fmt.Sprintf("vm: Insert of unmaterialized page %d of %q", index, seg.Name))
	}
	key := frameKey{seg.ID, index}
	if el, ok := pm.index[key]; ok {
		pm.order.MoveToFront(el)
		pg.State.Resident = true
		return nil
	}
	var evicted []Evicted
	for pm.order.Len() >= pm.capFrames {
		back := pm.order.Back()
		fe := back.Value.(*frameEntry)
		pm.order.Remove(back)
		delete(pm.index, frameKey{fe.seg.ID, fe.index})
		vp := fe.seg.Page(fe.index)
		ev := Evicted{Seg: fe.seg, Index: fe.index}
		if vp != nil {
			ev.WasDirty = vp.State.Dirty
			vp.State.Resident = false
			vp.State.OnDisk = true
			vp.State.Dirty = false
		}
		evicted = append(evicted, ev)
	}
	el := pm.order.PushFront(&frameEntry{seg: seg, index: index})
	pm.index[key] = el
	pg.State.Resident = true
	return evicted
}

// Remove releases the page's frame without write-back bookkeeping; the
// page keeps whatever disk state it had. Used when pages leave the
// machine wholesale (process excision).
func (pm *PhysMem) Remove(seg *Segment, index uint64) {
	key := frameKey{seg.ID, index}
	el, ok := pm.index[key]
	if !ok {
		return
	}
	pm.order.Remove(el)
	delete(pm.index, key)
	if pg := seg.Page(index); pg != nil {
		pg.State.Resident = false
	}
}

// RemoveSegment releases every frame belonging to seg.
func (pm *PhysMem) RemoveSegment(seg *Segment) {
	var next *list.Element
	for el := pm.order.Front(); el != nil; el = next {
		next = el.Next()
		fe := el.Value.(*frameEntry)
		if fe.seg.ID != seg.ID {
			continue
		}
		pm.order.Remove(el)
		delete(pm.index, frameKey{fe.seg.ID, fe.index})
		if pg := fe.seg.Page(fe.index); pg != nil {
			pg.State.Resident = false
		}
	}
}

// ResidentPages lists (segment, index) pairs in LRU order, most recent
// first. Useful for resident-set extraction at migration time.
func (pm *PhysMem) ResidentPages() []Evicted {
	out := make([]Evicted, 0, pm.order.Len())
	for el := pm.order.Front(); el != nil; el = el.Next() {
		fe := el.Value.(*frameEntry)
		out = append(out, Evicted{Seg: fe.seg, Index: fe.index})
	}
	return out
}
