package vm

import "fmt"

// Evicted describes a page pushed out of physical memory. WasDirty
// tells the pager whether a write-back (with its disk cost) occurred;
// the page's state has already been updated to on-disk, non-resident.
type Evicted struct {
	Seg      *Segment
	Index    uint64
	WasDirty bool
}

type frameKey struct {
	segID uint64
	index uint64
}

// frameNode is one LRU list node. Nodes live in a flat slice and link
// by index, so steady-state insert/evict cycles recycle nodes through
// the free chain instead of allocating container/list elements.
type frameNode struct {
	seg        *Segment
	index      uint64
	prev, next int32
}

const nilNode = int32(-1)

// PhysMem models a machine's physical page frames with global LRU
// replacement. Under Accent physical memory acts as a disk cache
// (§4.2.3), so frames are shared across all processes on the machine
// and stale file pages linger until squeezed out.
type PhysMem struct {
	capFrames int
	nodes     []frameNode
	head      int32 // most recently used
	tail      int32 // least recently used
	free      int32 // chain of recycled nodes through next
	used      int
	index     map[frameKey]int32

	// evictScratch backs the slice Insert returns; it is reused on the
	// next Insert, so callers must consume evictions before re-inserting.
	evictScratch []Evicted
}

// NewPhysMem returns a physical memory of the given frame count.
func NewPhysMem(frames int) *PhysMem {
	if frames < 1 {
		panic("vm: NewPhysMem needs at least one frame")
	}
	return &PhysMem{
		capFrames: frames,
		nodes:     make([]frameNode, 0, frames),
		head:      nilNode,
		tail:      nilNode,
		free:      nilNode,
		index:     make(map[frameKey]int32, frames),
	}
}

// Capacity reports the frame count.
func (pm *PhysMem) Capacity() int { return pm.capFrames }

// Len reports the number of occupied frames.
func (pm *PhysMem) Len() int { return pm.used }

// Resident reports whether the page occupies a frame.
func (pm *PhysMem) Resident(seg *Segment, index uint64) bool {
	_, ok := pm.index[frameKey{seg.ID, index}]
	return ok
}

// alloc obtains a node slot, reusing the free chain first.
func (pm *PhysMem) alloc() int32 {
	if pm.free != nilNode {
		n := pm.free
		pm.free = pm.nodes[n].next
		return n
	}
	pm.nodes = append(pm.nodes, frameNode{})
	return int32(len(pm.nodes) - 1)
}

// unlink removes node n from the LRU list (it stays allocated).
func (pm *PhysMem) unlink(n int32) {
	nd := &pm.nodes[n]
	if nd.prev != nilNode {
		pm.nodes[nd.prev].next = nd.next
	} else {
		pm.head = nd.next
	}
	if nd.next != nilNode {
		pm.nodes[nd.next].prev = nd.prev
	} else {
		pm.tail = nd.prev
	}
}

// pushFront links node n as most recently used.
func (pm *PhysMem) pushFront(n int32) {
	nd := &pm.nodes[n]
	nd.prev = nilNode
	nd.next = pm.head
	if pm.head != nilNode {
		pm.nodes[pm.head].prev = n
	}
	pm.head = n
	if pm.tail == nilNode {
		pm.tail = n
	}
}

// release returns node n to the free chain.
func (pm *PhysMem) release(n int32) {
	nd := &pm.nodes[n]
	nd.seg = nil
	nd.next = pm.free
	pm.free = n
}

// Touch marks the page most recently used. It reports whether the page
// was resident.
func (pm *PhysMem) Touch(seg *Segment, index uint64) bool {
	n, ok := pm.index[frameKey{seg.ID, index}]
	if !ok {
		return false
	}
	if pm.head != n {
		pm.unlink(n)
		pm.pushFront(n)
	}
	return true
}

// Insert makes the page resident (the page must be materialized),
// evicting least-recently-used frames if memory is full. Evicted pages
// are transitioned to on-disk and returned so the caller can charge
// write-back costs for the dirty ones. The returned slice is reused by
// the next Insert; callers must consume it before re-entering.
func (pm *PhysMem) Insert(seg *Segment, index uint64) []Evicted {
	pg := seg.Page(index)
	if pg == nil {
		panic(fmt.Sprintf("vm: Insert of unmaterialized page %d of %q", index, seg.Name))
	}
	key := frameKey{seg.ID, index}
	if n, ok := pm.index[key]; ok {
		if pm.head != n {
			pm.unlink(n)
			pm.pushFront(n)
		}
		pg.State.Resident = true
		return nil
	}
	var evicted []Evicted
	for pm.used >= pm.capFrames {
		back := pm.tail
		fe := pm.nodes[back]
		pm.unlink(back)
		pm.release(back)
		pm.used--
		delete(pm.index, frameKey{fe.seg.ID, fe.index})
		ev := Evicted{Seg: fe.seg, Index: fe.index}
		if vp := fe.seg.Page(fe.index); vp != nil {
			ev.WasDirty = vp.State.Dirty
			vp.State.Resident = false
			vp.State.OnDisk = true
			vp.State.Dirty = false
		}
		if evicted == nil {
			evicted = pm.evictScratch[:0]
		}
		evicted = append(evicted, ev)
	}
	if evicted != nil {
		pm.evictScratch = evicted[:0]
	}
	n := pm.alloc()
	pm.nodes[n].seg = seg
	pm.nodes[n].index = index
	pm.pushFront(n)
	pm.index[key] = n
	pm.used++
	pg.State.Resident = true
	return evicted
}

// Remove releases the page's frame without write-back bookkeeping; the
// page keeps whatever disk state it had. Used when pages leave the
// machine wholesale (process excision).
func (pm *PhysMem) Remove(seg *Segment, index uint64) {
	key := frameKey{seg.ID, index}
	n, ok := pm.index[key]
	if !ok {
		return
	}
	pm.unlink(n)
	pm.release(n)
	pm.used--
	delete(pm.index, key)
	if pg := seg.Page(index); pg != nil {
		pg.State.Resident = false
	}
}

// RemoveSegment releases every frame belonging to seg.
func (pm *PhysMem) RemoveSegment(seg *Segment) {
	var next int32
	for n := pm.head; n != nilNode; n = next {
		next = pm.nodes[n].next
		fe := pm.nodes[n]
		if fe.seg.ID != seg.ID {
			continue
		}
		pm.unlink(n)
		pm.release(n)
		pm.used--
		delete(pm.index, frameKey{fe.seg.ID, fe.index})
		if pg := fe.seg.Page(fe.index); pg != nil {
			pg.State.Resident = false
		}
	}
}

// ResidentPages lists (segment, index) pairs in LRU order, most recent
// first. Useful for resident-set extraction at migration time.
func (pm *PhysMem) ResidentPages() []Evicted {
	out := make([]Evicted, 0, pm.used)
	for n := pm.head; n != nilNode; n = pm.nodes[n].next {
		fe := pm.nodes[n]
		out = append(out, Evicted{Seg: fe.seg, Index: fe.index})
	}
	return out
}
