package vm

import (
	"testing"
	"testing/quick"
)

func mustSpace(t *testing.T) *AddressSpace {
	t.Helper()
	as, err := NewAddressSpace(Config{})
	if err != nil {
		t.Fatal(err)
	}
	return as
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewAddressSpace(Config{PageSize: 500}); err == nil {
		t.Error("non-power-of-two page size accepted")
	}
	if _, err := NewAddressSpace(Config{PageSize: 4}); err == nil {
		t.Error("tiny page size accepted")
	}
	as, err := NewAddressSpace(Config{PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if as.PageSize() != 1024 {
		t.Errorf("PageSize = %d", as.PageSize())
	}
	if mustSpace(t).PageSize() != DefaultPageSize {
		t.Error("default page size not applied")
	}
}

func TestValidateAndClassify(t *testing.T) {
	as := mustSpace(t)
	r, err := as.Validate(0x1000, 4*512, "data")
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != 4*512 {
		t.Errorf("region size = %d", r.Size())
	}
	if got := as.Classify(0x1000); got != RealZeroMem {
		t.Errorf("fresh page classify = %v, want RealZeroMem", got)
	}
	if got := as.Classify(0x0fff); got != BadMem {
		t.Errorf("below region = %v, want BadMem", got)
	}
	if got := as.Classify(0x1000 + 4*512); got != BadMem {
		t.Errorf("past region = %v, want BadMem", got)
	}
	// Touch one page.
	pl, ok := as.Resolve(0x1200)
	if !ok {
		t.Fatal("Resolve failed inside region")
	}
	pl.Seg.MaterializeZero(pl.PageIdx)
	if got := as.Classify(0x1200); got != RealMem {
		t.Errorf("touched page = %v, want RealMem", got)
	}
	if got := as.Classify(0x1000); got != RealZeroMem {
		t.Errorf("untouched neighbour = %v, want RealZeroMem", got)
	}
}

func TestValidateRejectsOverlap(t *testing.T) {
	as := mustSpace(t)
	if _, err := as.Validate(0, 2048, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := as.Validate(1024, 2048, "b"); err == nil {
		t.Error("overlapping validate accepted")
	}
	if _, err := as.Validate(2048, 512, "c"); err != nil {
		t.Errorf("abutting validate rejected: %v", err)
	}
}

func TestValidateRejectsUnaligned(t *testing.T) {
	as := mustSpace(t)
	if _, err := as.Validate(100, 512, "x"); err == nil {
		t.Error("unaligned start accepted")
	}
}

func TestValidateRoundsSizeUp(t *testing.T) {
	as := mustSpace(t)
	r, err := as.Validate(0, 700, "x")
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != 1024 {
		t.Errorf("size = %d, want 1024 (two pages)", r.Size())
	}
}

func TestMapBeyond4GBRejected(t *testing.T) {
	as := mustSpace(t)
	if _, err := as.Validate(Addr(MaxSpace-512), 1024, "x"); err == nil {
		t.Error("mapping past 4 GB accepted")
	}
}

func TestImaginaryClassification(t *testing.T) {
	as := mustSpace(t)
	seg := NewImaginarySegment("owed", 8*512, 512, 77)
	if _, err := as.MapSegment(0x2000, 8*512, seg, 0, "owed"); err != nil {
		t.Fatal(err)
	}
	if got := as.Classify(0x2000); got != ImagMem {
		t.Errorf("unfetched imaginary = %v, want ImagMem", got)
	}
	if got := as.ClassifyFault(0x2000); got != ImagFault {
		t.Errorf("fault kind = %v, want ImagFault", got)
	}
	// Fetch the page: becomes locally backed.
	seg.Materialize(0, []byte{1, 2, 3})
	if got := as.Classify(0x2000); got != RealMem {
		t.Errorf("fetched imaginary = %v, want RealMem", got)
	}
}

func TestClassifyFaultKinds(t *testing.T) {
	as := mustSpace(t)
	r, _ := as.Validate(0, 4*512, "d")
	if got := as.ClassifyFault(0); got != FillZeroFault {
		t.Errorf("untouched = %v, want FillZeroFault", got)
	}
	pg := r.Seg.MaterializeZero(0)
	pg.State.Resident = true
	if got := as.ClassifyFault(0); got != NoFault {
		t.Errorf("resident = %v, want NoFault", got)
	}
	pg.State.Resident = false
	pg.State.OnDisk = true
	if got := as.ClassifyFault(0); got != DiskFault {
		t.Errorf("on disk = %v, want DiskFault", got)
	}
	if got := as.ClassifyFault(Addr(MaxSpace - 1)); got != AddressError {
		t.Errorf("unmapped = %v, want AddressError", got)
	}
}

func TestUsageAccounting(t *testing.T) {
	as := mustSpace(t)
	r, _ := as.Validate(0, 10*512, "d")
	for i := uint64(0); i < 3; i++ {
		r.Seg.MaterializeZero(i)
	}
	pg := r.Seg.Page(0)
	pg.State.Resident = true
	iseg := NewImaginarySegment("owed", 4*512, 512, 9)
	if _, err := as.MapSegment(1<<20, 4*512, iseg, 0, "owed"); err != nil {
		t.Fatal(err)
	}
	iseg.Materialize(1, []byte("hi"))
	u := as.Usage()
	if u.Total != 14*512 {
		t.Errorf("Total = %d, want %d", u.Total, 14*512)
	}
	if u.Real != 4*512 {
		t.Errorf("Real = %d, want %d", u.Real, 4*512)
	}
	if u.RealZero != 7*512 {
		t.Errorf("RealZero = %d, want %d", u.RealZero, 7*512)
	}
	if u.Imag != 3*512 {
		t.Errorf("Imag = %d, want %d", u.Imag, 3*512)
	}
	if u.Resident != 512 {
		t.Errorf("Resident = %d, want 512", u.Resident)
	}
	if as.TouchedPages() != 4 {
		t.Errorf("TouchedPages = %d, want 4", as.TouchedPages())
	}
}

func TestHugeSparseSpaceIsCheap(t *testing.T) {
	as := mustSpace(t)
	// A Lisp-style process: validate the whole 4 GB.
	r, err := as.Validate(0, MaxSpace, "lisp-heap")
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		r.Seg.MaterializeZero(i * 37)
	}
	u := as.Usage()
	if u.Total != MaxSpace {
		t.Errorf("Total = %d, want 4GB", u.Total)
	}
	if u.Real != 100*512 {
		t.Errorf("Real = %d", u.Real)
	}
	if got := u.PctRealZero(); got < 99.9 {
		t.Errorf("PctRealZero = %.3f, want > 99.9", got)
	}
}

func TestUnmapDropsSegmentRef(t *testing.T) {
	as := mustSpace(t)
	died := false
	seg := NewImaginarySegment("owed", 512, 512, 1)
	seg.OnDeath(func() { died = true })
	r, err := as.MapSegment(0, 512, seg, 0, "owed")
	if err != nil {
		t.Fatal(err)
	}
	if seg.Refs() != 1 {
		t.Fatalf("Refs = %d", seg.Refs())
	}
	if err := as.Unmap(r); err != nil {
		t.Fatal(err)
	}
	if !died {
		t.Error("death callback not fired on last unmap")
	}
	if as.Lookup(0) != nil {
		t.Error("region still present after Unmap")
	}
}

func TestClearUnrefsAll(t *testing.T) {
	as := mustSpace(t)
	deaths := 0
	for i := 0; i < 3; i++ {
		seg := NewSegment("s", 512, 512)
		seg.OnDeath(func() { deaths++ })
		if _, err := as.MapSegment(Addr(i*4096), 512, seg, 0, "s"); err != nil {
			t.Fatal(err)
		}
	}
	as.Clear()
	if deaths != 3 {
		t.Errorf("deaths = %d, want 3", deaths)
	}
	if len(as.Regions()) != 0 {
		t.Error("regions remain after Clear")
	}
}

func TestLookupBinarySearch(t *testing.T) {
	as := mustSpace(t)
	for i := 0; i < 50; i++ {
		if _, err := as.Validate(Addr(i*8192), 512, "r"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		if r := as.Lookup(Addr(i*8192 + 100)); r == nil {
			t.Fatalf("Lookup missed region %d", i)
		}
		if r := as.Lookup(Addr(i*8192 + 600)); r != nil {
			t.Fatalf("Lookup hit a hole at region %d", i)
		}
	}
}

// Property: Classify agrees with a fresh AMap's Classify at arbitrary
// probe addresses for arbitrary sparse layouts.
func TestQuickClassifyMatchesAMap(t *testing.T) {
	f := func(starts []uint16, touches []uint8, probes []uint32) bool {
		as := MustNewAddressSpace(Config{})
		var regions []*Region
		for _, s := range starts {
			start := Addr(uint64(s) * 4096)
			r, err := as.Validate(start, 2048, "r")
			if err != nil {
				continue // overlap; fine
			}
			regions = append(regions, r)
		}
		for i, tc := range touches {
			if len(regions) == 0 {
				break
			}
			r := regions[i%len(regions)]
			r.Seg.MaterializeZero(uint64(tc) % 4)
		}
		m := BuildAMap(as)
		for _, p := range probes {
			a := Addr(p)
			if as.Classify(a) != m.Classify(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
