package vm

import (
	"testing"
	"testing/quick"
)

func TestMapSegmentWithOffset(t *testing.T) {
	as := mustSpace(t)
	seg := NewSegment("big", 16*512, 512)
	seg.Materialize(4, []byte("fourth page"))
	// Map pages [4,8) of the segment at VA 0x8000.
	if _, err := as.MapSegment(0x8000, 4*512, seg, 4*512, "window"); err != nil {
		t.Fatal(err)
	}
	pl, ok := as.Resolve(0x8000)
	if !ok {
		t.Fatal("Resolve failed")
	}
	if pl.PageIdx != 4 {
		t.Errorf("PageIdx = %d, want 4 (offset applied)", pl.PageIdx)
	}
	if got := as.Classify(0x8000); got != RealMem {
		t.Errorf("Classify = %v, want RealMem", got)
	}
	if got := as.Classify(0x8000 + 512); got != RealZeroMem {
		t.Errorf("Classify(+1 page) = %v, want RealZeroMem", got)
	}
	// Reads through the window hit the offset page.
	if got := string(seg.Read(pl.PageIdx, 0, 11)); got != "fourth page" {
		t.Errorf("Read = %q", got)
	}
}

func TestSegmentAliasedByTwoRegions(t *testing.T) {
	// Two windows onto one segment (the collapsed-RIMAS trick): a page
	// materialized once is visible through both.
	as := mustSpace(t)
	seg := NewSegment("shared", 8*512, 512)
	if _, err := as.MapSegment(0, 4*512, seg, 0, "lo"); err != nil {
		t.Fatal(err)
	}
	if _, err := as.MapSegment(0x10000, 4*512, seg, 4*512, "hi"); err != nil {
		t.Fatal(err)
	}
	if seg.Refs() != 2 {
		t.Errorf("Refs = %d, want 2", seg.Refs())
	}
	seg.Materialize(5, []byte("aliased"))
	if got := as.Classify(0x10000 + 512); got != RealMem {
		t.Errorf("page 5 via hi window = %v, want RealMem", got)
	}
	if got := as.Classify(512); got != RealZeroMem {
		t.Errorf("page 1 via lo window = %v, want RealZeroMem", got)
	}
	// Death fires only after both windows unmap.
	died := false
	seg.OnDeath(func() { died = true })
	regs := as.Regions()
	if err := as.Unmap(regs[0]); err != nil {
		t.Fatal(err)
	}
	if died {
		t.Error("death fired with one window still mapped")
	}
	if err := as.Unmap(as.Regions()[0]); err != nil {
		t.Fatal(err)
	}
	if !died {
		t.Error("death never fired")
	}
}

func TestUsageWithWindowedSegment(t *testing.T) {
	// Usage must count only pages inside the mapped window, not the
	// whole segment.
	as := mustSpace(t)
	seg := NewSegment("big", 16*512, 512)
	seg.Materialize(0, []byte("outside"))
	seg.Materialize(6, []byte("inside"))
	if _, err := as.MapSegment(0, 4*512, seg, 4*512, "window"); err != nil {
		t.Fatal(err)
	}
	u := as.Usage()
	if u.Total != 4*512 {
		t.Errorf("Total = %d", u.Total)
	}
	if u.Real != 512 {
		t.Errorf("Real = %d, want 512 (only page 6 is in-window)", u.Real)
	}
}

func TestAMapWindowedSegment(t *testing.T) {
	as := mustSpace(t)
	seg := NewSegment("big", 16*512, 512)
	seg.Materialize(5, nil)
	if _, err := as.MapSegment(0x4000, 4*512, seg, 4*512, "window"); err != nil {
		t.Fatal(err)
	}
	m := BuildAMap(as)
	// Window covers segment pages 4..7; page 5 is real.
	want := []AMapEntry{
		{0x4000, 0x4000 + 512, RealZeroMem},
		{0x4000 + 512, 0x4000 + 2*512, RealMem},
		{0x4000 + 2*512, 0x4000 + 4*512, RealZeroMem},
	}
	if len(m.Entries) != len(want) {
		t.Fatalf("entries = %+v", m.Entries)
	}
	for i := range want {
		if m.Entries[i] != want[i] {
			t.Errorf("entry %d = %+v, want %+v", i, m.Entries[i], want[i])
		}
	}
}

func TestPageVersioning(t *testing.T) {
	s := NewSegment("s", 2*512, 512)
	pg := s.MaterializeZero(0)
	if pg.Version != 0 {
		t.Errorf("fresh version = %d", pg.Version)
	}
	s.Write(0, 0, []byte("a"))
	s.Write(0, 1, []byte("b"))
	if pg.Version != 2 {
		t.Errorf("version after two writes = %d", pg.Version)
	}
	pg.MarkWritten()
	if pg.Version != 3 || !pg.State.Dirty {
		t.Errorf("MarkWritten: version=%d dirty=%v", pg.Version, pg.State.Dirty)
	}
}

func TestValidateZeroSizeRejected(t *testing.T) {
	as := mustSpace(t)
	if _, err := as.Validate(0, 0, "empty"); err == nil {
		t.Error("zero-size validate accepted")
	}
}

func TestResolveAtRegionBoundaries(t *testing.T) {
	as := mustSpace(t)
	if _, err := as.Validate(0x1000, 2*512, "r"); err != nil {
		t.Fatal(err)
	}
	if _, ok := as.Resolve(0x0fff); ok {
		t.Error("resolved below region")
	}
	if pl, ok := as.Resolve(0x1000); !ok || pl.Offset != 0 {
		t.Error("first byte unresolved or misoffset")
	}
	last := Addr(0x1000 + 2*512 - 1)
	if pl, ok := as.Resolve(last); !ok || pl.Offset != 511 || pl.PageIdx != 1 {
		t.Errorf("last byte: %+v ok=%v", func() Place { p, _ := as.Resolve(last); return p }(), ok)
	}
	if _, ok := as.Resolve(last + 1); ok {
		t.Error("resolved past region")
	}
}

// Property: Usage().Total always equals the sum of region sizes, and
// Real+RealZero+Imag == Total for any mix of real and imaginary maps.
func TestQuickUsagePartition(t *testing.T) {
	f := func(spec []struct {
		Start uint8
		Pages uint8
		Imag  bool
		Mat   uint8
	}) bool {
		as := MustNewAddressSpace(Config{})
		var regionSum uint64
		for _, sp := range spec {
			pages := uint64(sp.Pages%16) + 1
			start := Addr(uint64(sp.Start) * 32 * 512)
			var seg *Segment
			if sp.Imag {
				seg = NewImaginarySegment("i", pages*512, 512, 1)
			} else {
				seg = NewSegment("r", pages*512, 512)
			}
			if _, err := as.MapSegment(start, pages*512, seg, 0, "x"); err != nil {
				continue
			}
			regionSum += pages * 512
			for m := uint64(0); m < uint64(sp.Mat%8) && m < pages; m++ {
				seg.MaterializeZero(m)
			}
		}
		u := as.Usage()
		return u.Total == regionSum && u.Real+u.RealZero+u.Imag == u.Total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestFitzgeraldCOWEconomy reproduces the §2.1 observation (from
// Fitzgerald's study) that almost none of the data passed by reference
// between processes is ever physically copied: share a large message
// into many consumers, let each modify a single page, and count the
// deferred copies actually performed.
func TestFitzgeraldCOWEconomy(t *testing.T) {
	const pages = 5000
	const consumers = 20
	src := NewSegment("message", pages*512, 512)
	for i := uint64(0); i < pages; i++ {
		src.Materialize(i, []byte{byte(i)})
	}
	var sinks []*Segment
	for c := 0; c < consumers; c++ {
		dst := NewSegment("sink", pages*512, 512)
		for i := uint64(0); i < pages; i++ {
			dst.AdoptShared(i, src.Page(i))
		}
		sinks = append(sinks, dst)
	}
	copies := 0
	for c, dst := range sinks {
		// Each consumer reads widely and writes one page.
		for i := uint64(0); i < pages; i += 100 {
			_ = dst.Read(i, 0, 8)
		}
		if dst.BreakCOW(uint64(c)) {
			copies++
		}
		dst.Write(uint64(c), 0, []byte("mine"))
	}
	sharedTransfers := pages * consumers
	pctCopied := 100 * float64(copies) / float64(sharedTransfers)
	if pctCopied > 0.05 {
		t.Errorf("%.3f%% of shared pages physically copied; Fitzgerald measured ~0.02%%", pctCopied)
	}
	// Source data is untouched despite all the consumer writes.
	for c := 0; c < consumers; c++ {
		if got := src.Read(uint64(c), 0, 1)[0]; got != byte(c) {
			t.Fatalf("source page %d corrupted by a consumer write", c)
		}
	}
}
