package vm

// DeliveryLedger is the destination half of resumable migration: a
// per-machine record of page content that arrived on the wire during
// an attempt that later failed. The transport credits whole pages of
// any fragment the peer acknowledged before the transfer died; the
// next attempt's manifest classification consults the ledger and
// elides pages whose content already made the crossing, so attempt
// N+1 ships an incremental delta instead of the full image.
//
// The ledger is keyed by migration (process name) because a retry is
// a new message exchange for the same logical migration: content from
// one process's aborted transfer must never satisfy another's. Entries
// survive the source's rollback (they model bytes physically present
// in the destination kernel) but die with the destination machine —
// a crashed destination forgets everything.
//
// Credited pages are stored by copy: the sender's buffers alias its
// rollback snapshot and must not be retained across attempts. Lookup
// re-hashes the stored copy before handing it out (the copy may have
// been credited from a corrupted delivery), so a stale or damaged
// entry degrades to a re-ship, never to silent corruption.
type DeliveryLedger struct {
	procs map[string]map[uint64][]byte
	stats LedgerStats
}

// LedgerStats counts ledger traffic for trial results.
type LedgerStats struct {
	Credits uint64 // pages credited from aborted transfers
	Resumed uint64 // pages served to a retry's classification
	Stale   uint64 // entries dropped by the verify re-hash
}

// NewDeliveryLedger creates an empty ledger.
func NewDeliveryLedger() *DeliveryLedger {
	return &DeliveryLedger{procs: map[string]map[uint64][]byte{}}
}

// Credit records that the page with the given content hash arrived for
// proc's migration, copying data. Zero pages are never credited: the
// manifest already elides them by the ZeroHash sentinel. A nil ledger
// ignores the credit.
func (l *DeliveryLedger) Credit(proc string, hash uint64, data []byte) {
	if l == nil || hash == ZeroHash {
		return
	}
	pages := l.procs[proc]
	if pages == nil {
		pages = map[uint64][]byte{}
		l.procs[proc] = pages
	}
	if _, ok := pages[hash]; ok {
		return
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	pages[hash] = cp
	l.stats.Credits++
}

// Lookup returns the retained content for hash under proc's migration,
// verifying the copy still hashes to its name. Misses and failed
// verifications return nil; a failed verification also drops the
// entry. Nil-safe.
func (l *DeliveryLedger) Lookup(proc string, hash uint64, pageSize int) []byte {
	if l == nil {
		return nil
	}
	pages := l.procs[proc]
	data, ok := pages[hash]
	if !ok {
		return nil
	}
	if h, _ := HashPage(data, pageSize); h != hash {
		delete(pages, hash)
		l.stats.Stale++
		return nil
	}
	l.stats.Resumed++
	return data
}

// Pages reports how many pages are retained for proc's migration.
func (l *DeliveryLedger) Pages(proc string) int {
	if l == nil {
		return 0
	}
	return len(l.procs[proc])
}

// Forget drops everything retained for proc's migration — called when
// the migration completes (the real image is installed) or is finally
// abandoned.
func (l *DeliveryLedger) Forget(proc string) {
	if l == nil {
		return
	}
	delete(l.procs, proc)
}

// Clear drops every retained page — the destination machine crashed.
func (l *DeliveryLedger) Clear() {
	if l == nil {
		return
	}
	l.procs = map[string]map[uint64][]byte{}
}

// Stats returns a snapshot of ledger traffic.
func (l *DeliveryLedger) Stats() LedgerStats {
	if l == nil {
		return LedgerStats{}
	}
	return l.stats
}
