package vm

import (
	"math/rand"
	"sort"
	"testing"
)

// TestTableMatchesReferenceModel drives the two-level page table with a
// randomized materialize/clear sequence and checks every query against
// a plain map reference. The table replaced map[uint64]*Page on the
// data plane, so any divergence here is exactly the kind of bug that
// would silently change experiment output.
func TestTableMatchesReferenceModel(t *testing.T) {
	const nPages = 5 * tableChunkPages // spans several chunks
	rng := rand.New(rand.NewSource(42))
	var tbl pageTable
	ref := map[uint64]bool{}

	for step := 0; step < 4000; step++ {
		idx := uint64(rng.Intn(nPages))
		if rng.Intn(3) == 0 {
			tbl.clear(idx)
			delete(ref, idx)
		} else {
			p, present := tbl.ensure(idx, nPages)
			if present != ref[idx] {
				t.Fatalf("step %d: ensure(%d) present=%v, ref=%v", step, idx, present, ref[idx])
			}
			p.Index = idx
			ref[idx] = true
		}
	}

	if tbl.count != len(ref) {
		t.Fatalf("count = %d, ref has %d", tbl.count, len(ref))
	}
	for idx := uint64(0); idx < nPages; idx++ {
		got := tbl.get(idx) != nil
		if got != ref[idx] {
			t.Fatalf("get(%d) = %v, ref = %v", idx, got, ref[idx])
		}
	}

	// Run iteration must visit exactly the reference set, in order, with
	// maximal contiguous runs.
	var sorted []uint64
	for idx := range ref {
		sorted = append(sorted, idx)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var visited []uint64
	cursor := uint64(0)
	for {
		start, end, ok := tbl.nextRun(cursor, nPages-1)
		if !ok {
			break
		}
		if start > 0 && tbl.get(start-1) != nil && start > cursor {
			t.Fatalf("run [%d,%d) is not maximal on the left", start, end)
		}
		if end <= nPages-1 && tbl.get(end) != nil {
			t.Fatalf("run [%d,%d) is not maximal on the right", start, end)
		}
		for i := start; i < end; i++ {
			visited = append(visited, i)
		}
		cursor = end
		if cursor > nPages-1 {
			break
		}
	}
	if len(visited) != len(sorted) {
		t.Fatalf("run sweep visited %d pages, want %d", len(visited), len(sorted))
	}
	for i := range sorted {
		if visited[i] != sorted[i] {
			t.Fatalf("sweep order diverges at %d: %d != %d", i, visited[i], sorted[i])
		}
	}

	// countRange on random windows must agree with the reference.
	for trial := 0; trial < 200; trial++ {
		a, b := uint64(rng.Intn(nPages)), uint64(rng.Intn(nPages))
		if a > b {
			a, b = b, a
		}
		want := 0
		for idx := a; idx <= b; idx++ {
			if ref[idx] {
				want++
			}
		}
		if got := tbl.countRange(a, b); got != want {
			t.Fatalf("countRange(%d,%d) = %d, want %d", a, b, got, want)
		}
	}
}

// TestTableChunkBoundaryRuns pins run discovery across chunk and word
// boundaries, the places a bitmap scan is easiest to get wrong.
func TestTableChunkBoundaryRuns(t *testing.T) {
	const nPages = 3 * tableChunkPages
	var tbl pageTable
	// One run straddling the first chunk boundary, one straddling a
	// 64-bit word boundary, one singleton at the very end.
	spans := [][2]uint64{
		{tableChunkPages - 3, tableChunkPages + 2},
		{tableChunkPages + 60, tableChunkPages + 70},
		{nPages - 1, nPages - 1},
	}
	for _, sp := range spans {
		for i := sp[0]; i <= sp[1]; i++ {
			p, _ := tbl.ensure(i, nPages)
			p.Index = i
		}
	}
	var got [][2]uint64
	cursor := uint64(0)
	for {
		start, end, ok := tbl.nextRun(cursor, nPages-1)
		if !ok {
			break
		}
		got = append(got, [2]uint64{start, end - 1})
		cursor = end
	}
	if len(got) != len(spans) {
		t.Fatalf("found %d runs %v, want %d", len(got), got, len(spans))
	}
	for i, sp := range spans {
		if got[i] != sp {
			t.Errorf("run %d = %v, want %v", i, got[i], sp)
		}
	}
}

// TestPoolRecycledFrameNeverLeaksStaleBytes: a frame that held one
// page's data gets recycled into another segment; the short new
// contents must be zero-padded, never exposing the previous tenant.
func TestPoolRecycledFrameNeverLeaksStaleBytes(t *testing.T) {
	pool := NewFramePool(DefaultPageSize)
	a := NewSegment("a", DefaultPageSize, DefaultPageSize)
	a.SetPool(pool)
	dirty := make([]byte, DefaultPageSize)
	for i := range dirty {
		dirty[i] = 0xAA
	}
	a.Materialize(0, dirty)
	a.ReleaseFrames() // frame returns to the pool full of 0xAA

	b := NewSegment("b", DefaultPageSize, DefaultPageSize)
	b.SetPool(pool)
	pg := b.Materialize(0, []byte("short"))
	if string(pg.Data[:5]) != "short" {
		t.Fatalf("data = %q", pg.Data[:5])
	}
	for i := 5; i < len(pg.Data); i++ {
		if pg.Data[i] != 0 {
			t.Fatalf("stale byte %#x leaked at offset %d of a recycled frame", pg.Data[i], i)
		}
	}
	if pool.Stats().Puts == 0 || pool.Stats().Gets < 2 {
		t.Errorf("pool traffic not recorded: %+v", pool.Stats())
	}
}

// TestPoolArenaFramesAreIsolated: appending through one pool frame must
// never grow into its neighbor in the same arena.
func TestPoolArenaFramesAreIsolated(t *testing.T) {
	pool := NewFramePool(DefaultPageSize)
	f1 := pool.Get()
	f2 := pool.Get()
	if cap(f1) != DefaultPageSize || cap(f2) != DefaultPageSize {
		t.Fatalf("frame caps = %d, %d; want %d", cap(f1), cap(f2), DefaultPageSize)
	}
	grown := append(f1, 0xFF)
	if &grown[0] == &f1[0] {
		t.Error("append extended a capped arena frame in place")
	}
	_ = f2
}

// TestReleaseFramesLeavesSharedData: COW sharers must survive their
// sibling segment's frame release.
func TestReleaseFramesLeavesSharedData(t *testing.T) {
	pool := NewFramePool(DefaultPageSize)
	src := NewSegment("src", DefaultPageSize, DefaultPageSize)
	src.SetPool(pool)
	spg := src.Materialize(0, []byte("shared bytes"))
	dst := NewSegment("dst", DefaultPageSize, DefaultPageSize)
	dst.SetPool(pool)
	dst.AdoptShared(0, spg)

	before := pool.FreeFrames()
	src.ReleaseFrames()
	got := dst.Read(0, 0, 12)
	if string(got) != "shared bytes" {
		t.Fatalf("sharer lost its data after sibling release: %q", got)
	}
	if free := pool.FreeFrames(); free != before {
		t.Errorf("shared frame was recycled: free count %d -> %d", before, free)
	}
}
