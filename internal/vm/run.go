package vm

// PageRun is the run-batched unit of page transfer: Count consecutive
// pages starting at Index, their bytes concatenated in Data (the final
// page may be partial). One run replaces Count per-page entries, so a
// contiguous materialized region crosses every layer — attachment,
// wire, imaginary store, fault reply — as one header plus one buffer
// instead of one Go object per 512-byte page.
//
// Cost accounting is unchanged by batching: the wire estimate still
// charges one page header per page (see ipc.Message.WireBytes and
// imag.ReadReply.Bytes), exactly as the per-page representation did.
type PageRun struct {
	Index uint64 // first page index
	Count int    // pages in the run
	Data  []byte // Count pages concatenated; final page may be partial
}

// Page returns the i-th page's bytes within the run, given the page
// stride. The final page may be shorter than pageSize.
func (r PageRun) Page(i, pageSize int) []byte {
	lo := i * pageSize
	hi := lo + pageSize
	if hi > len(r.Data) {
		hi = len(r.Data)
	}
	return r.Data[lo:hi]
}

// RunPageCount sums the pages carried by a run list.
func RunPageCount(runs []PageRun) int {
	n := 0
	for _, r := range runs {
		n += r.Count
	}
	return n
}

// RunDataBytes sums the payload bytes carried by a run list.
func RunDataBytes(runs []PageRun) int {
	n := 0
	for _, r := range runs {
		n += len(r.Data)
	}
	return n
}
