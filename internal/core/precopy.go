package core

import (
	"fmt"
	"time"

	"accentmig/internal/ipc"
	"accentmig/internal/machine"
	"accentmig/internal/sim"
	"accentmig/internal/vm"
)

// This file implements Theimer's V-system pre-copy migration (§5
// Related Work) as a comparison point: the context is copied
// iteratively *while the process keeps executing*, re-sending pages
// dirtied during each round, and only then is the process stopped and
// moved. Downtime shrinks, but both hosts pay the full transfer cost —
// the trade the paper contrasts with copy-on-reference.

// Pre-copy protocol operations.
const (
	// OpPreCopy carries one round of staged pages (Body: *PreCopyBody,
	// pages as Data attachments addressed by VA).
	OpPreCopy = 0x2005
	// OpPreCopyAck confirms a staging round.
	OpPreCopyAck = 0x2006
)

// PreCopyBody tags a staging round.
type PreCopyBody struct {
	ProcName string
	Round    int
}

// PreCopyOptions tune the iterative transfer.
type PreCopyOptions struct {
	// MaxRounds bounds the iterations before the process is stopped
	// regardless of dirtying rate (default 4).
	MaxRounds int
	// StopThresholdPages stops iterating early once a round would
	// resend at most this many pages (default 8).
	StopThresholdPages int
}

func (o PreCopyOptions) withDefaults() PreCopyOptions {
	if o.MaxRounds == 0 {
		o.MaxRounds = 4
	}
	if o.StopThresholdPages == 0 {
		o.StopThresholdPages = 8
	}
	return o
}

// PreCopyReport accounts one pre-copy migration.
type PreCopyReport struct {
	Rounds        []int // pages sent per running round
	FinalPages    int   // pages sent during the stopped round
	Downtime      time.Duration
	Total         time.Duration
	InsertDoneAt  time.Duration
	ProcCompleted bool // the program finished before it could be moved
}

// stalePages lists (VA, version, data snapshot) for every materialized
// page whose content is newer than what was last sent.
type stalePage struct {
	va      vm.Addr
	version uint64
	data    []byte
}

func collectStale(pr *machine.Process, sent map[vm.Addr]uint64) []stalePage {
	ps := uint64(pr.AS.PageSize())
	var out []stalePage
	for _, r := range pr.AS.Regions() {
		if r.Seg.Class != vm.RealSeg {
			continue
		}
		firstPage := r.SegOff / ps
		lastPage := (r.SegOff + r.Size() - 1) / ps
		for idx := firstPage; idx <= lastPage; idx++ {
			pg := r.Seg.Page(idx)
			if pg == nil {
				continue
			}
			va := r.Start + vm.Addr(idx*ps-r.SegOff)
			if v, ok := sent[va]; ok && v >= pg.Version {
				continue
			}
			snap := make([]byte, len(pg.Data))
			copy(snap, pg.Data)
			out = append(out, stalePage{va: va, version: pg.Version, data: snap})
		}
	}
	return out
}

// stageRound ships one batch of pages to the destination manager and
// waits for the ack. Pages are packed into per-VA-run attachments.
func (mgr *Manager) stageRound(p *sim.Proc, procName string, destPort ipc.PortID, round int, pages []stalePage) error {
	ps := uint64(mgr.M.PageSize())
	var atts []*ipc.MemAttachment
	var cur *ipc.MemAttachment
	for _, sp := range pages {
		if cur == nil || sp.va != cur.VA+vm.Addr(cur.Size) {
			cur = &ipc.MemAttachment{Kind: ipc.AttachData, VA: sp.va, Copy: true}
			atts = append(atts, cur)
		}
		cur.AppendPage(cur.Size/ps, sp.data)
		cur.Size += ps
	}
	reply := mgr.M.IPC.AllocPort("precopy-reply")
	defer mgr.M.IPC.RemovePort(reply)
	err := mgr.M.IPC.Send(p, &ipc.Message{
		Op:        OpPreCopy,
		To:        destPort,
		ReplyTo:   reply.ID,
		Body:      &PreCopyBody{ProcName: procName, Round: round},
		BodyBytes: 64,
		Mem:       atts,
		NoIOUs:    true,
	})
	if err != nil {
		return fmt.Errorf("core: pre-copy round %d: %w", round, err)
	}
	mgr.M.IPC.Receive(p, reply)
	return nil
}

// PreCopyTo migrates procName to the manager at destPort using
// iterative pre-copy. The process keeps running during the copy rounds;
// writes race the transfer and are caught by page versioning.
func (mgr *Manager) PreCopyTo(p *sim.Proc, procName string, destPort ipc.PortID, opts PreCopyOptions) (*PreCopyReport, error) {
	opts = opts.withDefaults()
	pr, ok := mgr.M.Process(procName)
	if !ok {
		return nil, fmt.Errorf("core: no process %q on %s", procName, mgr.M.Name)
	}
	start := p.Now()
	rep := &PreCopyReport{}
	sent := make(map[vm.Addr]uint64)

	for round := 0; round < opts.MaxRounds; round++ {
		stale := collectStale(pr, sent)
		if round > 0 && len(stale) <= opts.StopThresholdPages {
			break
		}
		if len(stale) == 0 {
			break
		}
		for _, sp := range stale {
			sent[sp.va] = sp.version
		}
		if err := mgr.stageRound(p, procName, destPort, round, stale); err != nil {
			return nil, err
		}
		rep.Rounds = append(rep.Rounds, len(stale))
		if pr.Done.Opened() {
			break
		}
	}

	// Stop the process; anything dirtied since the last round moves
	// during downtime.
	mgr.M.RequestPreempt(pr)
	if !mgr.M.WaitStopped(p, pr) {
		rep.ProcCompleted = true
		rep.Total = p.Now() - start
		return rep, nil
	}
	downStart := p.Now()
	final := collectStale(pr, sent)
	rep.FinalPages = len(final)
	if len(final) > 0 {
		if err := mgr.stageRound(p, procName, destPort, len(rep.Rounds), final); err != nil {
			return nil, err
		}
	}

	r, err := mgr.MigrateTo(p, procName, destPort, Options{
		Strategy:         PreCopied,
		WaitMigratePoint: true,
	})
	if err != nil {
		return nil, err
	}
	rep.Downtime = r.InsertDoneAt - downStart
	rep.Total = r.InsertDoneAt - start
	rep.InsertDoneAt = r.InsertDoneAt
	return rep, nil
}
