package core

import (
	"fmt"

	"accentmig/internal/imag"
	"accentmig/internal/ipc"
	"accentmig/internal/machine"
	"accentmig/internal/sim"
	"accentmig/internal/vm"
)

// DissolveIOUs eagerly pulls every still-owed page of the process's
// imaginary segments from their backers (the OpFlush extension),
// removing the residual dependency a lazily migrated process leaves on
// its old host. It returns the number of pages fetched.
//
// This is the knob for the trade-off §4.4.3 hints at: copy-on-reference
// spreads costs over the process's remote lifetime, but until the IOUs
// dissolve, the source must stay up and keep serving. Flushing after
// the process settles converts the remaining promise into one bulk
// transfer at a quiet moment.
//
// The flush proceeds in bounded chunks (FlushChunkPages per request)
// rather than one message for the whole residual dependency: on the
// stop-and-wait wire a monolithic flush of a large address space
// occupies the link for minutes, and demand read replies for the
// process's concurrent faults would queue behind it past the pager's
// retry budget.
func DissolveIOUs(p *sim.Proc, m *machine.Machine, pr *machine.Process) (int, error) {
	if k := m.Pager.Outstanding(); k > 1 {
		return dissolveWindowed(p, m, pr, k)
	}
	fetched := 0
	seen := map[uint64]bool{}
	for _, r := range pr.AS.Regions() {
		seg := r.Seg
		if seg.Class != vm.ImagSeg || seen[seg.ID] {
			continue
		}
		seen[seg.ID] = true
		for {
			rep, err := m.IPC.Call(p, &ipc.Message{
				Op:           imag.OpFlush,
				To:           ipc.PortID(seg.BackingPort),
				Body:         &imag.FlushRequest{SegID: seg.ID, MaxPages: FlushChunkPages},
				BodyBytes:    imag.FlushRequestBytes,
				FaultSupport: true,
			})
			if err != nil {
				return fetched, fmt.Errorf("core: dissolve segment %d: %w", seg.ID, err)
			}
			body, ok := rep.Body.(*imag.ReadReply)
			if !ok {
				return fetched, fmt.Errorf("core: dissolve segment %d: bad reply %T", seg.ID, rep.Body)
			}
			ps := seg.PageSize()
			for _, run := range body.Runs {
				for j := 0; j < run.Count; j++ {
					idx := run.Index + uint64(j)
					// Skip pages already fetched by earlier faults.
					if seg.Page(idx) != nil {
						continue
					}
					vp := seg.Materialize(idx, run.Page(j, ps))
					vp.MarkWritten() // no local disk copy yet
					m.Pager.Install(seg, idx)
					fetched++
				}
			}
			if body.PageCount() < FlushChunkPages {
				break
			}
		}
	}
	return fetched, nil
}

// dissolveWindowed drains each imaginary segment with up to k chunked
// flush calls in flight (the pager's Outstanding knob applied to
// dissolution). The backer's Flush is stateful — it marks pages
// delivered as it serves them — so concurrent chunk requests naturally
// receive disjoint page runs, and their replies interleave on the wire
// with the process's demand faults instead of queuing strictly behind
// one another. Page installation keeps the seg.Page(idx) != nil skip
// guard, so a demand fault racing a flush chunk stays idempotent.
func dissolveWindowed(p *sim.Proc, m *machine.Machine, pr *machine.Process, k int) (int, error) {
	type flushResult struct {
		fetched int
		err     error
	}
	fetched := 0
	seen := map[uint64]bool{}
	for _, r := range pr.AS.Regions() {
		seg := r.Seg
		if seg.Class != vm.ImagSeg || seen[seg.ID] {
			continue
		}
		seen[seg.ID] = true
		done := sim.NewQueue[flushResult](m.K)
		for w := 0; w < k; w++ {
			m.K.Go(fmt.Sprintf("%s.dissolve%d", m.Name, w), func(wp *sim.Proc) {
				var res flushResult
				for {
					rep, err := m.IPC.Call(wp, &ipc.Message{
						Op:           imag.OpFlush,
						To:           ipc.PortID(seg.BackingPort),
						Body:         &imag.FlushRequest{SegID: seg.ID, MaxPages: FlushChunkPages},
						BodyBytes:    imag.FlushRequestBytes,
						FaultSupport: true,
					})
					if err != nil {
						res.err = fmt.Errorf("core: dissolve segment %d: %w", seg.ID, err)
						break
					}
					body, ok := rep.Body.(*imag.ReadReply)
					if !ok {
						res.err = fmt.Errorf("core: dissolve segment %d: bad reply %T", seg.ID, rep.Body)
						break
					}
					ps := seg.PageSize()
					for j := range body.Runs {
						run := body.Runs[j]
						for i := 0; i < run.Count; i++ {
							idx := run.Index + uint64(i)
							if seg.Page(idx) != nil {
								continue
							}
							vp := seg.Materialize(idx, run.Page(i, ps))
							vp.MarkWritten() // no local disk copy yet
							m.Pager.Install(seg, idx)
							res.fetched++
						}
					}
					if body.PageCount() < FlushChunkPages {
						break
					}
				}
				done.Push(res)
			})
		}
		var firstErr error
		for w := 0; w < k; w++ {
			res := done.Pop(p)
			fetched += res.fetched
			if firstErr == nil {
				firstErr = res.err
			}
		}
		if firstErr != nil {
			return fetched, firstErr
		}
	}
	return fetched, nil
}

// FlushChunkPages bounds one flush request during IOU dissolution.
// 256 pages (128 KB at the Perq's 512-byte pages) keeps each reply to
// well under a second of wire time, so concurrent demand faults are
// answered between chunks.
const FlushChunkPages = 256
