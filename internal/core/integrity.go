package core

import (
	"time"

	"accentmig/internal/ipc"
	"accentmig/internal/sim"
	"accentmig/internal/vm"
)

// End-to-end payload integrity (vm.DedupConfig.Integrity): just before
// the RIMAS message ships — after any manifest elision and modeled
// compression, so the checksums describe exactly the pages that travel
// — the source stamps one content hash per payload page onto each data
// attachment's Sums and registers the shipped bytes in its own content
// index. The destination re-hashes every installed page against Sums;
// a mismatch (wire corruption) is repaired by a targeted single-page
// hash read back to the source instead of failing the whole attempt.
// Pre-copy staging rounds are outside the protected stream: only the
// RIMAS payload carries checksums.

// stampIntegrity checksums the outgoing RIMAS payload in place of the
// message (attachment structs are copied first, so the rollback
// snapshot — which shares them — stays pristine). The hashing sweep
// costs one HashPerPageCPU per page; indexing the shipped bytes is
// what lets the destination's repair read find them here later.
func (mgr *Manager) stampIntegrity(p *sim.Proc, ctx *Context, d vm.DedupConfig) {
	ps := mgr.M.PageSize()
	mem := make([]*ipc.MemAttachment, len(ctx.RIMAS.Mem))
	copy(mem, ctx.RIMAS.Mem)
	pages := 0
	for i, a := range mem {
		if a.Kind != ipc.AttachData || a.PageCount() == 0 {
			continue
		}
		cp := *a
		sums := make([]uint64, 0, cp.PageCount())
		for _, run := range cp.Runs {
			for j := 0; j < run.Count; j++ {
				pg := run.Page(j, ps)
				h, _ := vm.HashPage(pg, ps)
				sums = append(sums, h)
				mgr.M.Index.Put(h, pg)
			}
		}
		cp.Sums = sums
		mem[i] = &cp
		pages += len(sums)
	}
	if pages == 0 {
		return
	}
	ctx.RIMAS.Mem = mem
	mgr.M.CPU.UseHigh(p, time.Duration(pages)*d.HashPerPageCPU)
}
