package core

import (
	"fmt"
	"time"

	"accentmig/internal/imag"
	"accentmig/internal/ipc"
	"accentmig/internal/machine"
	"accentmig/internal/sim"
	"accentmig/internal/vm"
)

// InsertTimings breaks down InsertProcess cost.
type InsertTimings struct {
	Overall      time.Duration
	ArrivedPages int
	IOURuns      int
	ZeroRuns     int
}

// InsertProcess recreates a process on machine m from its two context
// messages (§3.1). The messages are self-contained: the AMap guides
// address-space reconstruction, RIMAS data attachments provide page
// content, and IOU attachments become stand-in imaginary segments whose
// faults flow back to the backer. The reconstituted process is returned
// ready for machine.Start.
func InsertProcess(p *sim.Proc, m *machine.Machine, coreMsg, rimasMsg *ipc.Message, tun Tuning) (*machine.Process, InsertTimings, error) {
	return InsertProcessStaged(p, m, coreMsg, rimasMsg, nil, tun)
}

// InsertProcessStaged is InsertProcess with a pre-copy stage: page
// contents for PreCopied handoffs, keyed by VA, gathered by earlier
// OpPreCopy rounds.
func InsertProcessStaged(p *sim.Proc, m *machine.Machine, coreMsg, rimasMsg *ipc.Message, staged map[vm.Addr][]byte, tun Tuning) (*machine.Process, InsertTimings, error) {
	start := p.Now()
	var t InsertTimings
	cb, ok := coreMsg.Body.(*CoreBody)
	if !ok {
		return nil, t, fmt.Errorf("core: insert on %s: bad Core body %T", m.Name, coreMsg.Body)
	}
	rb, ok := rimasMsg.Body.(*RIMASBody)
	if !ok || rb.ProcName != cb.ProcName {
		return nil, t, fmt.Errorf("core: insert on %s: RIMAS/Core mismatch", m.Name)
	}
	if _, exists := m.Process(cb.ProcName); exists {
		return nil, t, fmt.Errorf("core: insert on %s: process %q already exists", m.Name, cb.ProcName)
	}

	as, err := vm.NewAddressSpace(vm.Config{PageSize: m.PageSize(), Pool: m.Pool})
	if err != nil {
		return nil, t, err
	}
	ps := uint64(m.PageSize())

	// Zero-filled regions are reborn from the AMap alone.
	for _, e := range cb.AMap.Entries {
		if e.Access != vm.RealZeroMem {
			continue
		}
		if _, err := as.Validate(e.Start, e.Size(), "zero"); err != nil {
			return nil, t, fmt.Errorf("core: insert %q: %w", cb.ProcName, err)
		}
		t.ZeroRuns++
	}

	pr := &machine.Process{
		Name:             cb.ProcName,
		AS:               as,
		MicrostateBytes:  cb.MicrostateBytes,
		KernelStackBytes: cb.KernelStackBytes,
		PCBBytes:         cb.PCBBytes,
		Program:          cb.Program,
		PC:               cb.PC,
		AtMigrate:        sim.NewGate(m.K),
		Done:             sim.NewGate(m.K),
	}

	// Unfold the collapsed area: the run table says which pages belong
	// at which addresses; pages are consumed sequentially from the
	// resident and lazy collapsed attachments. Each attachment becomes
	// exactly one segment — a real one if the data physically arrived,
	// or a stand-in imaginary segment whose faults flow to the backer —
	// and runs map slices of it. Pre-existing imaginary attachments
	// (with their own VA) become stand-ins of their original objects.
	var lazySeg, resSeg *vm.Segment
	arrived := 0
	mkSegment := func(a *ipc.MemAttachment, label string) (*vm.Segment, error) {
		switch a.Kind {
		case ipc.AttachData:
			seg := vm.NewSegment(fmt.Sprintf("%s.%s", cb.ProcName, label), a.Size, int(ps))
			attachPool(m, seg)
			for _, run := range a.Runs {
				for j := 0; j < run.Count; j++ {
					idx := run.Index + uint64(j)
					pg := seg.Materialize(idx, run.Page(j, int(ps)))
					// Arrived data exists nowhere on the local disk yet:
					// an eviction must write it out.
					pg.State.Dirty = true
					m.Pager.Install(seg, idx)
					arrived++
				}
			}
			return seg, nil
		case ipc.AttachIOU:
			seg := vm.NewImaginarySegment(fmt.Sprintf("%s.%s", cb.ProcName, label), a.SegSize, int(ps), uint64(a.Backing))
			attachPool(m, seg)
			// Keep the backer's identity so read requests name the
			// object it knows.
			seg.ID = a.SegID
			registerDeathNotice(m, seg)
			return seg, nil
		}
		return nil, fmt.Errorf("core: insert %q: unknown attachment kind %d", cb.ProcName, int(a.Kind))
	}
	var imagAtts []*ipc.MemAttachment
	for _, a := range rimasMsg.Mem {
		switch {
		case a.Collapsed && a.Resident:
			seg, err := mkSegment(a, "collapsed-rs")
			if err != nil {
				return nil, t, err
			}
			resSeg = seg
		case a.Collapsed:
			seg, err := mkSegment(a, "collapsed")
			if err != nil {
				return nil, t, err
			}
			lazySeg = seg
		default:
			imagAtts = append(imagAtts, a)
		}
	}
	// With no explicit run table (pure-IOU / pure-copy / pre-copied),
	// the collapsed area unfolds in AMap order: every RealMem entry is
	// one lazy run.
	runTable := rb.Runs
	if len(runTable) == 0 {
		for _, e := range cb.AMap.Entries {
			if e.Access != vm.RealMem {
				continue
			}
			runTable = append(runTable, CollapsedRun{VA: e.Start, Pages: uint32(e.Size() / ps)})
		}
	}
	// A pre-copied handoff fills the collapsed area from the stage the
	// earlier rounds built — nothing rode in the RIMAS message itself.
	if rb.PreCopied {
		var total uint64
		for _, run := range runTable {
			total += uint64(run.Pages) * ps
		}
		seg := vm.NewSegment(fmt.Sprintf("%s.precopied", cb.ProcName), total, int(ps))
		attachPool(m, seg)
		var off uint64
		for _, run := range runTable {
			for i := uint64(0); i < uint64(run.Pages); i++ {
				data, ok := staged[run.VA+vm.Addr(i*ps)]
				if !ok {
					return nil, t, fmt.Errorf("core: insert %q: page %#x missing from pre-copy stage",
						cb.ProcName, run.VA+vm.Addr(i*ps))
				}
				pg := seg.Materialize(off/ps, data)
				pg.State.Dirty = true
				m.Pager.Install(seg, off/ps)
				arrived++
				off += ps
			}
		}
		lazySeg = seg
	}
	var resOff, lazyOff uint64
	for _, run := range runTable {
		seg := lazySeg
		off := &lazyOff
		if run.Resident {
			seg = resSeg
			off = &resOff
		}
		if seg == nil {
			return nil, t, fmt.Errorf("core: insert %q: run table references missing attachment", cb.ProcName)
		}
		size := uint64(run.Pages) * ps
		if _, err := as.MapSegment(run.VA, size, seg, *off, seg.Name); err != nil {
			return nil, t, fmt.Errorf("core: insert %q: %w", cb.ProcName, err)
		}
		*off += size
	}
	for _, a := range imagAtts {
		seg := vm.NewImaginarySegment(fmt.Sprintf("%s.owed@%#x", cb.ProcName, a.VA), a.SegSize, int(ps), uint64(a.Backing))
		attachPool(m, seg)
		seg.ID = a.SegID
		if _, err := as.MapSegment(a.VA, a.Size, seg, a.SegOff, seg.Name); err != nil {
			return nil, t, fmt.Errorf("core: insert %q: %w", cb.ProcName, err)
		}
		registerDeathNotice(m, seg)
		t.IOURuns++
	}
	t.ArrivedPages = arrived

	// Port rights rejoin the name space with their identities intact,
	// and their undelivered mail is re-queued in order.
	for _, r := range cb.Rights {
		port := m.IPC.AdoptPort(r.ID, r.Name)
		for _, pm := range r.Pending {
			port.Enqueue(pm)
		}
		pr.Ports = append(pr.Ports, port)
	}

	// Rights/PCB processing (CoreRightsCPU) is charged by the manager
	// when the Core message arrives — it belongs to the transfer phase,
	// which is why Core transmission takes ≈1 s in all cases (§4.3.2).
	m.CPU.UseHigh(p, tun.InsertBase+
		time.Duration(len(cb.Rights))*tun.PerPortRight+
		time.Duration(len(cb.AMap.Entries)+len(rimasMsg.Mem))*tun.InsertPerRun+
		time.Duration(t.ArrivedPages)*tun.InsertPerArrivedPage)

	if err := m.Adopt(pr); err != nil {
		return nil, t, err
	}
	m.Pager.SetPrefetch(cb.Prefetch)
	t.Overall = p.Now() - start
	return pr, t, nil
}

// attachPool points a freshly inserted segment at the machine's frame
// pool so its materializations recycle frames freed by past excisions.
func attachPool(m *machine.Machine, seg *vm.Segment) {
	if m.Pool != nil {
		seg.SetPool(m.Pool)
	}
}

// registerDeathNotice wires the §2.2 Imaginary Segment Death message:
// when the last mapping of the stand-in dies, the backer is told to
// discard its owed pages.
func registerDeathNotice(m *machine.Machine, seg *vm.Segment) {
	seg.OnDeath(func() {
		m.K.Go(m.Name+".segdeath", func(p *sim.Proc) {
			// Best effort, as in real life: a dead backer just misses
			// the notice.
			_ = m.IPC.Send(p, &ipc.Message{
				Op:        imag.OpSegmentDeath,
				To:        ipc.PortID(seg.BackingPort),
				Body:      &imag.SegmentDeath{SegID: seg.ID},
				BodyBytes: imag.SegmentDeathBytes,
			})
		})
	})
}
