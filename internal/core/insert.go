package core

import (
	"fmt"
	"time"

	"accentmig/internal/imag"
	"accentmig/internal/ipc"
	"accentmig/internal/machine"
	"accentmig/internal/sim"
	"accentmig/internal/vm"
)

// InsertTimings breaks down InsertProcess cost.
type InsertTimings struct {
	Overall      time.Duration
	ArrivedPages int
	IOURuns      int
	ZeroRuns     int
	// ElidedPages counts pages the manifest exchange kept off the wire:
	// rebuilt here from the retained recipe (zero pages, local content-
	// index hits, intra-message duplicates, ledger-retained content)
	// instead of arriving.
	ElidedPages int
	// ResumedPages counts the elided pages rebuilt from the delivery
	// ledger — content that crossed the wire during an earlier failed
	// attempt of this same migration.
	ResumedPages int
	// RepairedPages counts installed pages whose integrity checksum
	// failed and had to be re-fetched from the source by hash.
	RepairedPages int
}

// InsertProcess recreates a process on machine m from its two context
// messages (§3.1). The messages are self-contained: the AMap guides
// address-space reconstruction, RIMAS data attachments provide page
// content, and IOU attachments become stand-in imaginary segments whose
// faults flow back to the backer. The reconstituted process is returned
// ready for machine.Start.
func InsertProcess(p *sim.Proc, m *machine.Machine, coreMsg, rimasMsg *ipc.Message, tun Tuning) (*machine.Process, InsertTimings, error) {
	return insertProcess(p, m, coreMsg, rimasMsg, nil, nil, tun)
}

// InsertProcessStaged is InsertProcess with a pre-copy stage: page
// contents for PreCopied handoffs, keyed by VA, gathered by earlier
// OpPreCopy rounds.
func InsertProcessStaged(p *sim.Proc, m *machine.Machine, coreMsg, rimasMsg *ipc.Message, staged map[vm.Addr][]byte, tun Tuning) (*machine.Process, InsertTimings, error) {
	return insertProcess(p, m, coreMsg, rimasMsg, staged, nil, tun)
}

// insertProcess is the full insertion path: InsertProcessStaged plus
// the manifest recipe, which rebuilds pages the source elided and
// seeds fault-time hash hints for pages riding IOUs.
func insertProcess(p *sim.Proc, m *machine.Machine, coreMsg, rimasMsg *ipc.Message, staged map[vm.Addr][]byte, rcp *dedupRecipe, tun Tuning) (*machine.Process, InsertTimings, error) {
	start := p.Now()
	var t InsertTimings
	cb, ok := coreMsg.Body.(*CoreBody)
	if !ok {
		return nil, t, fmt.Errorf("core: insert on %s: bad Core body %T", m.Name, coreMsg.Body)
	}
	rb, ok := rimasMsg.Body.(*RIMASBody)
	if !ok || rb.ProcName != cb.ProcName {
		return nil, t, fmt.Errorf("core: insert on %s: RIMAS/Core mismatch", m.Name)
	}
	if _, exists := m.Process(cb.ProcName); exists {
		return nil, t, fmt.Errorf("core: insert on %s: process %q already exists", m.Name, cb.ProcName)
	}

	as, err := vm.NewAddressSpace(vm.Config{PageSize: m.PageSize(), Pool: m.Pool})
	if err != nil {
		return nil, t, err
	}
	ps := uint64(m.PageSize())

	// Zero-filled regions are reborn from the AMap alone.
	for _, e := range cb.AMap.Entries {
		if e.Access != vm.RealZeroMem {
			continue
		}
		if _, err := as.Validate(e.Start, e.Size(), "zero"); err != nil {
			return nil, t, fmt.Errorf("core: insert %q: %w", cb.ProcName, err)
		}
		t.ZeroRuns++
	}

	pr := &machine.Process{
		Name:             cb.ProcName,
		AS:               as,
		MicrostateBytes:  cb.MicrostateBytes,
		KernelStackBytes: cb.KernelStackBytes,
		PCBBytes:         cb.PCBBytes,
		Program:          cb.Program,
		PC:               cb.PC,
		AtMigrate:        sim.NewGate(m.K),
		Done:             sim.NewGate(m.K),
	}

	// Unfold the collapsed area: the run table says which pages belong
	// at which addresses; pages are consumed sequentially from the
	// resident and lazy collapsed attachments. Each attachment becomes
	// exactly one segment — a real one if the data physically arrived,
	// or a stand-in imaginary segment whose faults flow to the backer —
	// and runs map slices of it. Pre-existing imaginary attachments
	// (with their own VA) become stand-ins of their original objects.
	var lazySeg, resSeg *vm.Segment
	arrived := 0
	compPages := 0
	verified := 0
	// built tracks each data attachment's segment by its ordinal in the
	// RIMAS attachment list, so twin recipes can copy from the shipped
	// original wherever it landed.
	built := make(map[int]*vm.Segment)
	mkSegment := func(ai int, a *ipc.MemAttachment, label string) (*vm.Segment, error) {
		switch a.Kind {
		case ipc.AttachData:
			seg := vm.NewSegment(fmt.Sprintf("%s.%s", cb.ProcName, label), a.Size, int(ps))
			attachPool(m, seg)
			built[ai] = seg
			sumIdx := 0
			for _, run := range a.Runs {
				for j := 0; j < run.Count; j++ {
					idx := run.Index + uint64(j)
					pg := seg.Materialize(idx, run.Page(j, int(ps)))
					// Arrived data exists nowhere on the local disk yet:
					// an eviction must write it out.
					pg.State.Dirty = true
					m.Pager.Install(seg, idx)
					arrived++
					// End-to-end integrity: re-hash the installed page
					// against the checksum the source stamped. A mismatch
					// means the wire damaged this page; re-fetch just it by
					// hash instead of abandoning the whole attempt.
					if sumIdx < len(a.Sums) {
						verified++
						if got, _ := vm.HashPage(pg.Data, int(ps)); got != a.Sums[sumIdx] {
							if !m.Pager.RepairPage(p, seg, idx, a.Sums[sumIdx]) {
								return nil, fmt.Errorf("core: insert %q: page %d of %s corrupt and unrepairable",
									cb.ProcName, idx, label)
							}
							t.RepairedPages++
						}
					}
					sumIdx++
				}
			}
			if a.CompBytes > 0 {
				compPages += a.PageCount()
			}
			if acts := recipeActsFor(rcp, ai); acts != nil {
				n, res, err := applyRecipe(m, seg, acts, built)
				if err != nil {
					return nil, fmt.Errorf("core: insert %q: %w", cb.ProcName, err)
				}
				t.ElidedPages += n
				t.ResumedPages += res
			}
			return seg, nil
		case ipc.AttachIOU:
			seg := vm.NewImaginarySegment(fmt.Sprintf("%s.%s", cb.ProcName, label), a.SegSize, int(ps), uint64(a.Backing))
			attachPool(m, seg)
			// Keep the backer's identity so read requests name the
			// object it knows.
			seg.ID = a.SegID
			registerDeathNotice(m, seg)
			// An absorbed attachment's manifest hashes become fault-time
			// hints: a later fault on these pages first tries the local
			// content index, then the nearest holder, before the backer.
			if acts := recipeActsFor(rcp, ai); acts != nil {
				base := a.SegOff / uint64(ps)
				for i, act := range acts {
					if act.hash != vm.ZeroHash {
						m.Pager.RegisterHint(seg.ID, base+uint64(i), act.hash)
					}
				}
			}
			return seg, nil
		}
		return nil, fmt.Errorf("core: insert %q: unknown attachment kind %d", cb.ProcName, int(a.Kind))
	}
	var imagAtts []*ipc.MemAttachment
	for ai, a := range rimasMsg.Mem {
		switch {
		case a.Collapsed && a.Resident:
			seg, err := mkSegment(ai, a, "collapsed-rs")
			if err != nil {
				return nil, t, err
			}
			resSeg = seg
		case a.Collapsed:
			seg, err := mkSegment(ai, a, "collapsed")
			if err != nil {
				return nil, t, err
			}
			lazySeg = seg
		default:
			imagAtts = append(imagAtts, a)
		}
	}
	// With no explicit run table (pure-IOU / pure-copy / pre-copied),
	// the collapsed area unfolds in AMap order: every RealMem entry is
	// one lazy run.
	runTable := rb.Runs
	if len(runTable) == 0 {
		for _, e := range cb.AMap.Entries {
			if e.Access != vm.RealMem {
				continue
			}
			runTable = append(runTable, CollapsedRun{VA: e.Start, Pages: uint32(e.Size() / ps)})
		}
	}
	// A pre-copied handoff fills the collapsed area from the stage the
	// earlier rounds built — nothing rode in the RIMAS message itself.
	if rb.PreCopied {
		var total uint64
		for _, run := range runTable {
			total += uint64(run.Pages) * ps
		}
		seg := vm.NewSegment(fmt.Sprintf("%s.precopied", cb.ProcName), total, int(ps))
		attachPool(m, seg)
		var off uint64
		for _, run := range runTable {
			for i := uint64(0); i < uint64(run.Pages); i++ {
				data, ok := staged[run.VA+vm.Addr(i*ps)]
				if !ok {
					return nil, t, fmt.Errorf("core: insert %q: page %#x missing from pre-copy stage",
						cb.ProcName, run.VA+vm.Addr(i*ps))
				}
				pg := seg.Materialize(off/ps, data)
				pg.State.Dirty = true
				m.Pager.Install(seg, off/ps)
				arrived++
				off += ps
			}
		}
		lazySeg = seg
	}
	var resOff, lazyOff uint64
	for _, run := range runTable {
		seg := lazySeg
		off := &lazyOff
		if run.Resident {
			seg = resSeg
			off = &resOff
		}
		if seg == nil {
			return nil, t, fmt.Errorf("core: insert %q: run table references missing attachment", cb.ProcName)
		}
		size := uint64(run.Pages) * ps
		if _, err := as.MapSegment(run.VA, size, seg, *off, seg.Name); err != nil {
			return nil, t, fmt.Errorf("core: insert %q: %w", cb.ProcName, err)
		}
		*off += size
	}
	for _, a := range imagAtts {
		seg := vm.NewImaginarySegment(fmt.Sprintf("%s.owed@%#x", cb.ProcName, a.VA), a.SegSize, int(ps), uint64(a.Backing))
		attachPool(m, seg)
		seg.ID = a.SegID
		if _, err := as.MapSegment(a.VA, a.Size, seg, a.SegOff, seg.Name); err != nil {
			return nil, t, fmt.Errorf("core: insert %q: %w", cb.ProcName, err)
		}
		registerDeathNotice(m, seg)
		t.IOURuns++
	}
	t.ArrivedPages = arrived

	// Port rights rejoin the name space with their identities intact,
	// and their undelivered mail is re-queued in order.
	for _, r := range cb.Rights {
		port := m.IPC.AdoptPort(r.ID, r.Name)
		for _, pm := range r.Pending {
			port.Enqueue(pm)
		}
		pr.Ports = append(pr.Ports, port)
	}

	// Rights/PCB processing (CoreRightsCPU) is charged by the manager
	// when the Core message arrives — it belongs to the transfer phase,
	// which is why Core transmission takes ≈1 s in all cases (§4.3.2).
	// Elided pages cost the same per-page install work as arrived ones
	// (the copy is local instead of from the wire); compressed arrivals
	// additionally pay the modeled decompression, and checksummed ones
	// the verification re-hash.
	m.CPU.UseHigh(p, tun.InsertBase+
		time.Duration(len(cb.Rights))*tun.PerPortRight+
		time.Duration(len(cb.AMap.Entries)+len(rimasMsg.Mem))*tun.InsertPerRun+
		time.Duration(t.ArrivedPages+t.ElidedPages)*tun.InsertPerArrivedPage+
		time.Duration(compPages)*m.DedupConfig().DecompressPerPageCPU+
		time.Duration(verified)*m.DedupConfig().HashPerPageCPU)

	if err := m.Adopt(pr); err != nil {
		return nil, t, err
	}
	m.Pager.SetPrefetch(cb.Prefetch)
	t.Overall = p.Now() - start
	return pr, t, nil
}

// recipeActsFor returns the recipe actions for attachment ordinal ai,
// or nil when no recipe covers it.
func recipeActsFor(rcp *dedupRecipe, ai int) []recipeAct {
	if rcp == nil || ai >= len(rcp.atts) || len(rcp.atts[ai].acts) == 0 {
		return nil
	}
	return rcp.atts[ai].acts
}

// applyRecipe rebuilds a data attachment's elided pages — zeros from
// nothing, local hits from bytes captured at classification, ledger
// retentions from an earlier attempt's delivery, twins from the
// shipped original — and registers every page's hash in the machine's
// content index so later faults and migrations can be served locally.
// Shipped pages must already be materialized by the run loop. It
// returns how many pages were rebuilt, and how many of those came from
// the delivery ledger.
func applyRecipe(m *machine.Machine, seg *vm.Segment, acts []recipeAct, built map[int]*vm.Segment) (int, int, error) {
	rebuilt, resumed := 0, 0
	install := func(idx uint64, data []byte, hash uint64) {
		pg := seg.Materialize(idx, data)
		pg.State.Dirty = true
		m.Pager.Install(seg, idx)
		if m.Index != nil && hash != vm.ZeroHash {
			m.Index.Put(hash, pg.Data)
		}
		rebuilt++
	}
	for i, act := range acts {
		idx := uint64(i)
		switch act.kind {
		case actShip, actHint:
			// actHint on a data attachment means the transport shipped an
			// attachment the source predicted it would absorb — nothing to
			// rebuild, but the hashes still seed the index.
			if pg := seg.Page(idx); pg != nil {
				if m.Index != nil && act.hash != vm.ZeroHash {
					m.Index.Put(act.hash, pg.Data)
				}
			} else if act.kind == actShip {
				return rebuilt, resumed, fmt.Errorf("manifest page %d missing from shipped runs", i)
			}
		case actZero:
			install(idx, nil, vm.ZeroHash)
		case actLocal:
			install(idx, act.data, act.hash)
		case actResume:
			install(idx, act.data, act.hash)
			resumed++
		case actTwin:
			twinSeg := built[act.twinAtt]
			if twinSeg == nil {
				return rebuilt, resumed, fmt.Errorf("twin attachment %d not built", act.twinAtt)
			}
			src := twinSeg.Page(uint64(act.twinIdx))
			if src == nil {
				return rebuilt, resumed, fmt.Errorf("twin page %d/%d not materialized", act.twinAtt, act.twinIdx)
			}
			install(idx, src.Data, act.hash)
		}
	}
	return rebuilt, resumed, nil
}

// attachPool points a freshly inserted segment at the machine's frame
// pool so its materializations recycle frames freed by past excisions.
func attachPool(m *machine.Machine, seg *vm.Segment) {
	if m.Pool != nil {
		seg.SetPool(m.Pool)
	}
}

// registerDeathNotice wires the §2.2 Imaginary Segment Death message:
// when the last mapping of the stand-in dies, the backer is told to
// discard its owed pages.
func registerDeathNotice(m *machine.Machine, seg *vm.Segment) {
	seg.OnDeath(func() {
		m.K.Go(m.Name+".segdeath", func(p *sim.Proc) {
			// Best effort, as in real life: a dead backer just misses
			// the notice.
			_ = m.IPC.Send(p, &ipc.Message{
				Op:        imag.OpSegmentDeath,
				To:        ipc.PortID(seg.BackingPort),
				Body:      &imag.SegmentDeath{SegID: seg.ID},
				BodyBytes: imag.SegmentDeathBytes,
			})
		})
	})
}
