package core

import "time"

// Tuning holds the migration primitive cost model, calibrated against
// the paper's Table 4-4 (excision), §4.3.1 (insertion), and §4.3.2
// (≈1 s Core message). AMap construction grows with process-map
// complexity (accessibility runs) and examined pages, never with raw
// address-space bytes — the property that keeps excision within a
// factor of ~4 while address spaces vary by four orders of magnitude.
type Tuning struct {
	// AMap construction (ExciseProcess step 1).
	AMapBase        time.Duration
	AMapPerEntry    time.Duration // per accessibility run produced
	AMapPerRealPage time.Duration // per materialized page examined

	// Address-space collapse into the RIMAS message (step 2).
	CollapseBase            time.Duration
	CollapsePerResidentPage time.Duration // unmapping resident frames
	CollapsePerRealPage     time.Duration // remapping disk pages in bulk

	// InsertProcess address-space reconstruction.
	InsertBase           time.Duration
	InsertPerRun         time.Duration // per region/attachment mapped
	InsertPerArrivedPage time.Duration // per physically arrived page

	// Core context message processing (microstate, PCB, rights).
	CoreRightsCPU time.Duration // fixed, charged on each side
	PerPortRight  time.Duration // per transferred right, each side
}

// DefaultTuning returns the calibrated defaults.
func DefaultTuning() Tuning {
	return Tuning{
		AMapBase:        120 * time.Millisecond,
		AMapPerEntry:    2000 * time.Microsecond,
		AMapPerRealPage: 250 * time.Microsecond,

		CollapseBase:            150 * time.Millisecond,
		CollapsePerResidentPage: 1300 * time.Microsecond,
		CollapsePerRealPage:     50 * time.Microsecond,

		InsertBase:           150 * time.Millisecond,
		InsertPerRun:         500 * time.Microsecond,
		InsertPerArrivedPage: 150 * time.Microsecond,

		CoreRightsCPU: 400 * time.Millisecond,
		PerPortRight:  10 * time.Millisecond,
	}
}
