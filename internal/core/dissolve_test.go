package core

import (
	"testing"
	"time"

	"accentmig/internal/machine"
	"accentmig/internal/netlink"
	"accentmig/internal/pager"
	"accentmig/internal/sim"
)

// runDissolve migrates a process large enough to need several flush
// chunks, dissolves its IOUs under the given machine config, and
// reports the page count, the virtual time the dissolve took, and the
// testbed for further checks.
func runDissolve(t *testing.T, mcfg machine.Config) (int, time.Duration, *testbed, *machine.Process) {
	t.Helper()
	tb := newFaultTestbed(t, netlink.Config{}, mcfg)
	pr := tb.makeProc(t, "job", 600, 4, 0)
	tb.src.Start(pr)
	tb.migrate(t, "job", Options{Strategy: PureIOU, WaitMigratePoint: true, HoldAtDest: true})
	npr, ok := tb.dst.Process("job")
	if !ok {
		t.Fatal("process missing on destination")
	}
	var fetched int
	var err error
	var begin, end time.Duration
	tb.k.Go("driver", func(p *sim.Proc) {
		begin = p.Now()
		fetched, err = DissolveIOUs(p, tb.dst, npr)
		end = p.Now()
	})
	tb.k.Run()
	if err != nil {
		t.Fatal(err)
	}
	return fetched, end - begin, tb, npr
}

// TestDissolveWindowed runs IOU dissolution with Outstanding=4 flush
// chunks in flight and checks it against the serial flush: same pages
// fetched, source fully released, data intact, and strictly less
// virtual time — the windowed chunks overlap their request/turnaround
// gaps on the wire.
func TestDissolveWindowed(t *testing.T) {
	serialN, serialT, _, _ := runDissolve(t, machine.Config{})
	winN, winT, tb, npr := runDissolve(t, machine.Config{
		Pager: pager.Config{Outstanding: 4},
	})
	if serialN != winN {
		t.Errorf("windowed dissolve fetched %d pages, serial fetched %d", winN, serialN)
	}
	if rem := tb.src.Net.Store().TotalRemaining(); rem != 0 {
		t.Errorf("source still owes %d pages after windowed dissolve", rem)
	}
	if winT >= serialT {
		t.Errorf("windowed dissolve took %v, want less than serial %v", winT, serialT)
	}
	// Data integrity: a flushed page far from the demand set must carry
	// its original pattern.
	tb.k.Go("check", func(p *sim.Proc) {
		got, err := tb.dst.Pager.Read(p, npr.AS, 500*512, 512)
		if err != nil {
			t.Errorf("read: %v", err)
			return
		}
		want := pattern(500)
		for j := range want {
			if got[j] != want[j] {
				t.Errorf("flushed page corrupt at byte %d", j)
				return
			}
		}
	})
	tb.k.Run()
}
