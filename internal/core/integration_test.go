package core

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"accentmig/internal/ipc"

	"accentmig/internal/machine"
	"accentmig/internal/netlink"
	"accentmig/internal/pager"
	"accentmig/internal/sim"
	"accentmig/internal/trace"
	"accentmig/internal/vm"
)

// TestReMigrationChainsBackers migrates a process A->B, lets it touch a
// few pages, then migrates B->C. Pages still owed by A's cache must
// reach C through the chain of NetMsgServers, and the data must be
// intact.
func TestReMigrationChainsBackers(t *testing.T) {
	k, ms, mgrs := cluster(t, 3)
	pr, err := ms[0].NewProcess("hopper", 1)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := pr.AS.Validate(0, 32*512, "data")
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 32; i++ {
		pg := reg.Seg.Materialize(i, pattern(i))
		pg.State.OnDisk = true
	}
	pr.Program = &trace.Program{Ops: []trace.Op{
		trace.MigratePoint{}, // hop 1
		trace.Touch{Addr: 0},
		trace.Touch{Addr: 512},
		trace.MigratePoint{},        // hop 2
		trace.Touch{Addr: 2 * 512},  // fetched on B? no — still owed by A
		trace.Touch{Addr: 20 * 512}, // never touched anywhere: owed by A, via chain
	}}
	ms[0].Start(pr)
	var hopErr error
	k.Go("driver", func(p *sim.Proc) {
		if _, err := mgrs[0].MigrateTo(p, "hopper", mgrs[1].Port.ID, Options{
			Strategy: PureIOU, WaitMigratePoint: true,
		}); err != nil {
			hopErr = err
			return
		}
		pr2, _ := ms[1].Process("hopper")
		pr2.AtMigrate.Wait(p) // executes touches, then parks at hop 2
		if _, err := mgrs[1].MigrateTo(p, "hopper", mgrs[2].Port.ID, Options{
			Strategy: PureIOU, WaitMigratePoint: true,
		}); err != nil {
			hopErr = err
			return
		}
		pr3, _ := ms[2].Process("hopper")
		if err := pr3.WaitDone(p); err != nil {
			hopErr = err
			return
		}
		// Verify data on the third host, including a page that crossed
		// both hops lazily.
		for _, idx := range []uint64{0, 2, 20, 31} {
			got, err := ms[2].Pager.Read(p, pr3.AS, vm.Addr(idx*512), 512)
			if err != nil {
				hopErr = err
				return
			}
			want := pattern(idx)
			for j := range want {
				if got[j] != want[j] {
					t.Errorf("page %d corrupt at byte %d after two hops", idx, j)
					return
				}
			}
		}
	})
	k.Run()
	if hopErr != nil {
		t.Fatal(hopErr)
	}
	if _, ok := ms[2].Process("hopper"); !ok {
		t.Fatal("process not on third host")
	}
}

// TestMigrationOverLossyLink injects 10% frame loss: bulk transfers
// recover via ARQ, and lost fault datagrams recover via pager retry.
func TestMigrationOverLossyLink(t *testing.T) {
	k := sim.New()
	cfg := machine.Config{
		Pager: pager.Config{RetryTimeout: 2 * time.Second, MaxRetries: 20},
	}
	src := machine.New(k, "src", cfg)
	dst := machine.New(k, "dst", cfg)
	link := machine.Connect(src, dst, netlink.Config{DropProb: 0.10, DropSeed: 99})
	srcM := NewManager(src, DefaultTuning())
	dstM := NewManager(dst, DefaultTuning())
	src.Net.AddRoute(dstM.Port.ID, "dst")
	dst.Net.AddRoute(srcM.Port.ID, "src")

	pr, err := src.NewProcess("job", 1)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := pr.AS.Validate(0, 64*512, "data")
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 64; i++ {
		pg := reg.Seg.Materialize(i, pattern(i))
		pg.State.OnDisk = true
	}
	ops := []trace.Op{trace.MigratePoint{}}
	for i := 0; i < 32; i++ {
		ops = append(ops, trace.Touch{Addr: vm.Addr(i * 512)})
	}
	pr.Program = &trace.Program{Ops: ops}
	src.Start(pr)

	var migErr error
	k.Go("driver", func(p *sim.Proc) {
		if _, err := srcM.MigrateTo(p, "job", dstM.Port.ID, Options{
			Strategy: PureIOU, WaitMigratePoint: true,
		}); err != nil {
			migErr = err
			return
		}
		npr, _ := dst.Process("job")
		if err := npr.WaitDone(p); err != nil {
			migErr = err
			return
		}
		// Spot-check integrity under loss.
		got, err := dst.Pager.Read(p, npr.AS, 17*512, 512)
		if err != nil {
			migErr = err
			return
		}
		want := pattern(17)
		for j := range want {
			if got[j] != want[j] {
				t.Errorf("page 17 corrupt at byte %d", j)
				return
			}
		}
	})
	k.RunUntil(30 * time.Minute)
	if migErr != nil {
		t.Fatal(migErr)
	}
	if link.Drops() == 0 {
		t.Error("no frames dropped; loss injection inert")
	}
	// Either the pager retried lost fault messages or the ARQ resent
	// bulk fragments (with 10% loss over this much traffic, both).
	if dst.Pager.Stats().Retries == 0 && src.Net.Stats().Retransmits == 0 {
		t.Error("no recovery activity despite drops")
	}
}

// TestQuickMigrationPreservesAMap: for arbitrary sparse layouts and any
// strategy, the destination address space classifies every address
// exactly as the source did at excision time.
func TestQuickMigrationPreservesAMap(t *testing.T) {
	f := func(starts []uint8, lens []uint8, touched []uint16, stratPick uint8) bool {
		if len(starts) == 0 {
			return true
		}
		strat := []Strategy{PureCopy, ResidentSet, PureIOU}[int(stratPick)%3]
		tb := newTestbed(t)
		pr, err := tb.src.NewProcess("q", 0)
		if err != nil {
			return false
		}
		// Random sparse layout: regions at 16-page alignment, 1-8 pages.
		var regions []*vm.Region
		for i, s := range starts {
			pages := uint64(1)
			if i < len(lens) {
				pages = uint64(lens[i]%8) + 1
			}
			r, err := pr.AS.Validate(vm.Addr(uint64(s)*16*512), pages*512, "r")
			if err != nil {
				continue // overlap
			}
			regions = append(regions, r)
		}
		if len(regions) == 0 {
			return true
		}
		// Materialize a scattering of pages; some resident.
		for i, tc := range touched {
			r := regions[i%len(regions)]
			idx := uint64(tc) % (r.Size() / 512)
			if r.Seg.Page(idx) == nil {
				pg := r.Seg.Materialize(idx, []byte{byte(tc)})
				pg.State.OnDisk = true
				if tc%3 == 0 {
					tb.src.Phys.Insert(r.Seg, idx)
				}
			}
		}
		before := vm.BuildAMap(pr.AS)
		pr.Program = &trace.Program{Ops: []trace.Op{trace.MigratePoint{}}}
		tb.src.Start(pr)
		var after *vm.AMap
		tb.k.Go("driver", func(p *sim.Proc) {
			if _, err := tb.srcM.MigrateTo(p, "q", tb.dstM.Port.ID, Options{
				Strategy: strat, WaitMigratePoint: true, HoldAtDest: true,
			}); err != nil {
				t.Logf("migrate: %v", err)
				return
			}
			npr, _ := tb.dst.Process("q")
			after = vm.BuildAMap(npr.AS)
		})
		tb.k.Run()
		if after == nil {
			return false
		}
		// Normalize: a RealMem run may legitimately arrive as ImagMem
		// (owed, not yet fetched) under the lazy strategies — the data
		// is reachable either way. RealZero and BadMem must be exact.
		norm := func(a vm.Accessibility) vm.Accessibility {
			if a == vm.ImagMem {
				return vm.RealMem
			}
			return a
		}
		// Compare page-by-page classification across the whole span.
		maxAddr := before.Entries[len(before.Entries)-1].End
		if after.Entries[len(after.Entries)-1].End != maxAddr {
			return false
		}
		for a := vm.Addr(0); a < maxAddr; a += 512 {
			if norm(before.Classify(a)) != norm(after.Classify(a)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestBackerCrashSurfacesError: if the source host (the backer) dies
// while a lazily migrated process still owes pages, remote faults fail
// with ErrBackerLost (after retries) rather than hanging — the residual
// dependency §4.4.3 implies and DissolveIOUs removes.
func TestBackerCrashSurfacesError(t *testing.T) {
	k := sim.New()
	cfg := machine.Config{
		Pager: pager.Config{RetryTimeout: time.Second, MaxRetries: 2},
	}
	src := machine.New(k, "src", cfg)
	dst := machine.New(k, "dst", cfg)
	machine.Connect(src, dst, netlink.Config{})
	srcM := NewManager(src, DefaultTuning())
	dstM := NewManager(dst, DefaultTuning())
	src.Net.AddRoute(dstM.Port.ID, "dst")
	dst.Net.AddRoute(srcM.Port.ID, "src")

	pr, err := src.NewProcess("job", 0)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := pr.AS.Validate(0, 16*512, "data")
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 16; i++ {
		pg := reg.Seg.Materialize(i, pattern(i))
		pg.State.OnDisk = true
	}
	pr.Program = &trace.Program{Ops: []trace.Op{
		trace.MigratePoint{},
		trace.Touch{Addr: 0},         // succeeds: backer alive
		trace.IOWait{D: time.Minute}, // crash happens here
		trace.Touch{Addr: 8 * 512},   // fails: backer gone
	}}
	src.Start(pr)

	var execErr error
	k.Go("driver", func(p *sim.Proc) {
		if _, err := srcM.MigrateTo(p, "job", dstM.Port.ID, Options{
			Strategy: PureIOU, WaitMigratePoint: true,
		}); err != nil {
			t.Error(err)
			return
		}
		// "Crash" the source's backing service mid-run.
		p.Sleep(30 * time.Second)
		src.Net.Crash()
		npr, _ := dst.Process("job")
		execErr = npr.WaitDone(p)
	})
	k.RunUntil(time.Hour)
	if execErr == nil {
		t.Fatal("remote execution survived a dead backer")
	}
	if !errors.Is(execErr, pager.ErrBackerLost) && !errors.Is(execErr, ipc.ErrDeadPort) {
		t.Errorf("err = %v, want backer-lost or dead-port", execErr)
	}
}

// TestDissolveProtectsAgainstBackerCrash: flushing the IOUs first makes
// the same crash harmless.
func TestDissolveProtectsAgainstBackerCrash(t *testing.T) {
	tb := newTestbed(t)
	pr := tb.makeProc(t, "job", 16, 4, 0)
	tb.src.Start(pr)
	tb.migrate(t, "job", Options{Strategy: PureIOU, WaitMigratePoint: true, HoldAtDest: true})
	npr, _ := tb.dst.Process("job")
	tb.k.Go("driver", func(p *sim.Proc) {
		if _, err := DissolveIOUs(p, tb.dst, npr); err != nil {
			t.Errorf("dissolve: %v", err)
			return
		}
		tb.src.Net.Crash()
		// Every page is local; the crash cannot hurt.
		for i := uint64(0); i < 16; i++ {
			if err := tb.dst.Pager.Touch(p, npr.AS, vm.Addr(i*512), false); err != nil {
				t.Errorf("touch %d after crash: %v", i, err)
				return
			}
		}
	})
	tb.k.Run()
}

// TestPendingMailSurvivesMigration: a message queued on the process's
// port before excision is receivable at the destination.
func TestPendingMailSurvivesMigration(t *testing.T) {
	tb := newTestbed(t)
	pr := tb.makeProc(t, "job", 8, 2, 0)
	portID := pr.Ports[0].ID
	tb.src.Start(pr)
	tb.k.Go("mailer", func(p *sim.Proc) {
		// Queue mail before the migration driver runs.
		if err := tb.src.IPC.Send(p, &ipc.Message{To: portID, Op: 77, Body: "hello", BodyBytes: 5}); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	tb.migrate(t, "job", Options{Strategy: PureIOU, WaitMigratePoint: true, HoldAtDest: true})
	npr, _ := tb.dst.Process("job")
	var got *ipc.Message
	tb.k.Go("reader", func(p *sim.Proc) {
		got = tb.dst.IPC.Receive(p, npr.Ports[0])
	})
	tb.k.Run()
	if got == nil || got.Op != 77 || got.Body.(string) != "hello" {
		t.Fatalf("pending mail lost in migration: %+v", got)
	}
}

// TestCrossMigration swaps two processes between two machines
// concurrently — both directions in flight at once.
func TestCrossMigration(t *testing.T) {
	tb := newTestbed(t)
	a := tb.makeProc(t, "jobA", 16, 4, 6)
	tb.src.Start(a)
	// Build a second process on the destination machine, symmetric.
	b, err := tb.dst.NewProcess("jobB", 1)
	if err != nil {
		t.Fatal(err)
	}
	regB, err := b.AS.Validate(0, 16*512, "data")
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 16; i++ {
		pg := regB.Seg.Materialize(i, pattern(100+i))
		pg.State.OnDisk = true
	}
	var opsB []trace.Op
	opsB = append(opsB, trace.MigratePoint{})
	for i := 0; i < 6; i++ {
		opsB = append(opsB, trace.Touch{Addr: vm.Addr(i * 512)})
	}
	b.Program = &trace.Program{Ops: opsB}
	tb.dst.Start(b)

	var errA, errB error
	tb.k.Go("driverA", func(p *sim.Proc) {
		_, errA = tb.srcM.MigrateTo(p, "jobA", tb.dstM.Port.ID, Options{
			Strategy: PureIOU, WaitMigratePoint: true,
		})
	})
	tb.k.Go("driverB", func(p *sim.Proc) {
		_, errB = tb.dstM.MigrateTo(p, "jobB", tb.srcM.Port.ID, Options{
			Strategy: PureIOU, WaitMigratePoint: true,
		})
	})
	tb.k.Run()
	if errA != nil || errB != nil {
		t.Fatalf("cross migration failed: %v / %v", errA, errB)
	}
	na, okA := tb.dst.Process("jobA")
	nb, okB := tb.src.Process("jobB")
	if !okA || !okB {
		t.Fatal("processes did not swap hosts")
	}
	var doneErrs [2]error
	tb.k.Go("waiters", func(p *sim.Proc) {
		doneErrs[0] = na.WaitDone(p)
		doneErrs[1] = nb.WaitDone(p)
	})
	tb.k.Run()
	if doneErrs[0] != nil || doneErrs[1] != nil {
		t.Fatalf("remote exec: %v / %v", doneErrs[0], doneErrs[1])
	}
	// Both sides now back pages for the other.
	if tb.src.Net.Store().TotalRemaining() == 0 || tb.dst.Net.Store().TotalRemaining() == 0 {
		t.Error("expected mutual residual dependencies after a swap")
	}
}
