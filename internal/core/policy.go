package core

import (
	"fmt"
	"time"

	"accentmig/internal/ipc"
	"accentmig/internal/machine"
	"accentmig/internal/sim"
)

// This file implements the paper's §6 future-work direction: automatic
// migration strategies with a load metric that "specifically take[s]
// into account the fact that a process virtual address space may be
// physically dispersed among several computational hosts". A Balancer
// samples host loads, picks candidates whose spaces are least
// dispersed (migrating a process whose memory is already owed by a
// third host adds another indirection hop to every future fault), and
// relocates them lazily.

// HostLoad is one machine's sampled load.
type HostLoad struct {
	Name string
	// Runnable counts processes currently executing their programs.
	Runnable int
	// OwedPages is the residual dependency this host carries for
	// processes that have migrated away — work it must keep serving.
	OwedPages int
}

// Candidate scores one process as a migration candidate.
type Candidate struct {
	Proc *machine.Process
	// DispersedBytes counts address-space bytes currently owed by some
	// other host (unfetched imaginary memory). Migrating such a process
	// chains backers: every later fault pays an extra hop.
	DispersedBytes uint64
}

// Balancer automatically levels load across a set of managers.
type Balancer struct {
	Mgrs []*Manager
	// Opts are applied to every automatic migration; the zero value
	// selects pure-IOU with one page of prefetch (the paper's
	// recommendation).
	Opts Options
	// Threshold is the minimum runnable-count imbalance that triggers a
	// migration (default 2).
	Threshold int

	migrations uint64
}

// NewBalancer returns a balancer over the given managers.
func NewBalancer(mgrs ...*Manager) *Balancer {
	return &Balancer{
		Mgrs:      mgrs,
		Opts:      Options{Strategy: PureIOU, Prefetch: 1, WaitMigratePoint: true},
		Threshold: 2,
	}
}

// Migrations reports how many automatic migrations have run.
func (b *Balancer) Migrations() uint64 { return b.migrations }

// Loads samples every host.
func (b *Balancer) Loads() []HostLoad {
	out := make([]HostLoad, 0, len(b.Mgrs))
	for _, mgr := range b.Mgrs {
		out = append(out, HostLoad{
			Name:      mgr.M.Name,
			Runnable:  runnable(mgr.M),
			OwedPages: mgr.M.Net.Store().TotalRemaining(),
		})
	}
	return out
}

func runnable(m *machine.Machine) int {
	n := 0
	for _, name := range procNames(m) {
		if pr, ok := m.Process(name); ok && pr.Status == machine.Running {
			n++
		}
	}
	return n
}

// procNames enumerates the machine's process table deterministically.
func procNames(m *machine.Machine) []string {
	return m.ProcNames()
}

// dispersal measures how much of the process's space is owed remotely.
func dispersal(pr *machine.Process) uint64 {
	return pr.AS.Usage().Imag
}

// pick selects the busiest and idlest hosts and the best candidate on
// the busiest: a runnable process with minimal dispersed memory.
func (b *Balancer) pick() (src, dst *Manager, cand *machine.Process) {
	var maxR, minR = -1, 1 << 30
	for _, mgr := range b.Mgrs {
		r := runnable(mgr.M)
		if r > maxR {
			maxR, src = r, mgr
		}
		if r < minR {
			minR, dst = r, mgr
		}
	}
	if src == nil || dst == nil || src == dst || maxR-minR < b.threshold() {
		return nil, nil, nil
	}
	var best *machine.Process
	var bestDisp uint64
	for _, name := range procNames(src.M) {
		pr, ok := src.M.Process(name)
		if !ok || pr.Status != machine.Running {
			continue
		}
		d := dispersal(pr)
		if best == nil || d < bestDisp {
			best, bestDisp = pr, d
		}
	}
	return src, dst, best
}

func (b *Balancer) threshold() int {
	if b.Threshold <= 0 {
		return 2
	}
	return b.Threshold
}

// Rebalance performs at most one automatic migration and reports
// whether it moved anything. Call it periodically from a driver proc.
func (b *Balancer) Rebalance(p *sim.Proc) (bool, error) {
	src, dst, cand := b.pick()
	if cand == nil {
		return false, nil
	}
	src.M.RequestPreempt(cand)
	if !src.M.WaitStopped(p, cand) {
		// Finished before it could be stopped; nothing to move.
		return false, nil
	}
	opts := b.Opts
	opts.WaitMigratePoint = true
	if _, err := src.MigrateTo(p, cand.Name, dst.Port.ID, opts); err != nil {
		return false, fmt.Errorf("core: rebalance %q %s->%s: %w", cand.Name, src.M.Name, dst.M.Name, err)
	}
	b.migrations++
	return true, nil
}

// ChooseStrategy picks a transfer strategy and prefetch for a process
// using the paper's lessons (§4.5): resident sets only pay off for
// very short-lived processes whose touches the resident set covers;
// everything else does best with pure-IOU plus one page of prefetch.
// Without oracle knowledge of lifetime, residency fraction is the
// available signal: a process whose resident set covers most of its
// real memory is either young or small, the regime where RS shipping
// was observed to help.
func ChooseStrategy(pr *machine.Process) (Strategy, int) {
	u := pr.AS.Usage()
	if u.Real > 0 && float64(u.Resident)/float64(u.Real) > 0.5 {
		return ResidentSet, 1
	}
	return PureIOU, 1
}

// Evacuate migrates every running process off this manager's machine
// to the destination manager (host-maintenance drain). Processes that
// finish before they can be stopped are left in place. It returns the
// names of the processes moved.
func (mgr *Manager) Evacuate(p *sim.Proc, destPort ipc.PortID, opts Options) ([]string, error) {
	var moved []string
	for _, name := range mgr.M.ProcNames() {
		pr, ok := mgr.M.Process(name)
		if !ok || pr.Status != machine.Running {
			continue
		}
		mgr.M.RequestPreempt(pr)
		if !mgr.M.WaitStopped(p, pr) {
			continue // ran to completion instead
		}
		o := opts
		o.WaitMigratePoint = true
		if _, err := mgr.MigrateTo(p, name, destPort, o); err != nil {
			return moved, fmt.Errorf("core: evacuate %q: %w", name, err)
		}
		moved = append(moved, name)
	}
	return moved, nil
}

// Run loops Rebalance every interval until stop opens. Intended to be
// launched as its own proc.
func (b *Balancer) Run(p *sim.Proc, interval time.Duration, stop *sim.Gate) error {
	for !stop.Opened() {
		if _, err := b.Rebalance(p); err != nil {
			return err
		}
		p.Sleep(interval)
	}
	return nil
}
