package core

import (
	"testing"
	"time"

	"accentmig/internal/ipc"
	"accentmig/internal/machine"
	"accentmig/internal/netlink"
	"accentmig/internal/sim"
	"accentmig/internal/trace"
	"accentmig/internal/vm"
)

// testbed is a two-machine rig with managers, mirroring the SPICE pair.
type testbed struct {
	k          *sim.Kernel
	src, dst   *machine.Machine
	srcM, dstM *Manager
	link       *netlink.Link
}

func newTestbed(t *testing.T) *testbed {
	t.Helper()
	k := sim.New()
	src := machine.New(k, "src", machine.Config{})
	dst := machine.New(k, "dst", machine.Config{})
	link := machine.Connect(src, dst, netlink.Config{})
	srcM := NewManager(src, DefaultTuning())
	dstM := NewManager(dst, DefaultTuning())
	// Bootstrap: each side can name the other's manager port.
	src.Net.AddRoute(dstM.Port.ID, "dst")
	dst.Net.AddRoute(srcM.Port.ID, "src")
	return &testbed{k: k, src: src, dst: dst, srcM: srcM, dstM: dstM, link: link}
}

// pattern fills a page deterministically so integrity can be verified
// after migration.
func pattern(pageIdx uint64) []byte {
	d := make([]byte, 512)
	for i := range d {
		d[i] = byte(pageIdx*31 + uint64(i)*7)
	}
	return d
}

// makeProc builds a process with `pages` pages of patterned RealMem (the
// first `resident` of them resident), a zero region, and a program that
// touches the first two pages, migrates, then touches `post` pages.
func (tb *testbed) makeProc(t *testing.T, name string, pages, resident, post int) *machine.Process {
	t.Helper()
	pr, err := tb.src.NewProcess(name, 2)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := pr.AS.Validate(0, uint64(pages)*512, "data")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pr.AS.Validate(1<<20, 16*512, "bss"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < pages; i++ {
		pg := reg.Seg.Materialize(uint64(i), pattern(uint64(i)))
		pg.State.OnDisk = true
	}
	var res []vm.Addr
	for i := 0; i < resident; i++ {
		res = append(res, vm.Addr(i*512))
	}
	if err := tb.src.MakeResident(pr, res); err != nil {
		t.Fatal(err)
	}
	ops := []trace.Op{
		trace.Touch{Addr: 0},
		trace.Touch{Addr: 512},
		trace.MigratePoint{},
	}
	for i := 0; i < post; i++ {
		ops = append(ops, trace.Touch{Addr: vm.Addr(i * 512)})
	}
	pr.Program = &trace.Program{Ops: ops}
	return pr
}

func (tb *testbed) migrate(t *testing.T, name string, opts Options) *Report {
	t.Helper()
	var rep *Report
	var err error
	tb.k.Go("driver", func(p *sim.Proc) {
		rep, err = tb.srcM.MigrateTo(p, name, tb.dstM.Port.ID, opts)
	})
	tb.k.Run()
	if err != nil {
		t.Fatalf("MigrateTo: %v", err)
	}
	return rep
}

func TestMigratePureIOUEndToEnd(t *testing.T) {
	tb := newTestbed(t)
	pr := tb.makeProc(t, "job", 32, 8, 10)
	tb.src.Start(pr)
	rep := tb.migrate(t, "job", Options{Strategy: PureIOU, WaitMigratePoint: true})

	// Source no longer has the process; destination does.
	if _, ok := tb.src.Process("job"); ok {
		t.Error("process still on source after migration")
	}
	npr, ok := tb.dst.Process("job")
	if !ok {
		t.Fatal("process missing on destination")
	}
	var err2 error
	tb.k.Go("wait", func(p *sim.Proc) { err2 = npr.WaitDone(p) })
	tb.k.Run()
	if err2 != nil {
		t.Fatalf("remote execution failed: %v", err2)
	}
	if npr.Status != machine.Finished {
		t.Errorf("status = %v", npr.Status)
	}
	// The post-phase touched 10 pages; under pure IOU they arrive via
	// imaginary faults (minus the ones that already... none prefetched).
	if st := tb.dst.Pager.Stats(); st.ImagFaults != 10 {
		t.Errorf("ImagFaults = %d, want 10", st.ImagFaults)
	}
	// Only ~10 of 32 pages crossed the wire.
	if tb.link.Bytes() > 14*1024 {
		t.Errorf("wire bytes = %d, want well under full copy", tb.link.Bytes())
	}
	if rep.RealPages != 32 || rep.ResidentPages != 8 {
		t.Errorf("report pages = %d/%d", rep.RealPages, rep.ResidentPages)
	}
}

func TestMigrateDataIntegrityAllStrategies(t *testing.T) {
	for _, strat := range Strategies() {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			tb := newTestbed(t)
			pr := tb.makeProc(t, "job", 16, 4, 0)
			tb.src.Start(pr)
			tb.migrate(t, "job", Options{Strategy: strat, WaitMigratePoint: true, HoldAtDest: true})
			npr, ok := tb.dst.Process("job")
			if !ok {
				t.Fatal("process missing on destination")
			}
			// Read every page remotely and verify the pattern.
			tb.k.Go("verify", func(p *sim.Proc) {
				for i := uint64(0); i < 16; i++ {
					got, err := tb.dst.Pager.Read(p, npr.AS, vm.Addr(i*512), 512)
					if err != nil {
						t.Errorf("page %d: %v", i, err)
						return
					}
					want := pattern(i)
					for j := range want {
						if got[j] != want[j] {
							t.Errorf("strategy %v: page %d corrupt at byte %d: %d != %d",
								strat, i, j, got[j], want[j])
							return
						}
					}
				}
				// Zero region must read as zeros.
				z, err := tb.dst.Pager.Read(p, npr.AS, 1<<20, 512)
				if err != nil {
					t.Errorf("zero region: %v", err)
					return
				}
				for _, b := range z {
					if b != 0 {
						t.Error("zero region not zero after migration")
						return
					}
				}
			})
			tb.k.Run()
		})
	}
}

func TestStrategiesShapeWireTraffic(t *testing.T) {
	bytesFor := func(strat Strategy) uint64 {
		tb := newTestbed(t)
		pr := tb.makeProc(t, "job", 64, 16, 4)
		tb.src.Start(pr)
		tb.migrate(t, "job", Options{Strategy: strat, WaitMigratePoint: true})
		npr, _ := tb.dst.Process("job")
		tb.k.Go("wait", func(p *sim.Proc) { npr.WaitDone(p) })
		tb.k.Run()
		return tb.link.Bytes()
	}
	iou := bytesFor(PureIOU)
	rs := bytesFor(ResidentSet)
	cp := bytesFor(PureCopy)
	if !(iou < rs && rs < cp) {
		t.Errorf("traffic ordering wrong: IOU=%d RS=%d Copy=%d", iou, rs, cp)
	}
}

func TestRIMASTransferTimes(t *testing.T) {
	// IOU transfer is near-constant; copy grows with RealMem.
	timeFor := func(strat Strategy, pages int) time.Duration {
		tb := newTestbed(t)
		pr := tb.makeProc(t, "job", pages, 8, 0)
		tb.src.Start(pr)
		rep := tb.migrate(t, "job", Options{Strategy: strat, WaitMigratePoint: true, HoldAtDest: true})
		return rep.RIMASTransfer
	}
	iouSmall := timeFor(PureIOU, 32)
	iouBig := timeFor(PureIOU, 512)
	copySmall := timeFor(PureCopy, 32)
	copyBig := timeFor(PureCopy, 512)
	if iouBig > 3*iouSmall {
		t.Errorf("IOU transfer not flat: %v vs %v", iouSmall, iouBig)
	}
	if copyBig < 8*copySmall {
		t.Errorf("copy transfer not growing: %v vs %v", copySmall, copyBig)
	}
	if copyBig < 20*iouBig {
		t.Errorf("copy (%v) not dwarfing IOU (%v) on big process", copyBig, iouBig)
	}
}

func TestCoreTransferAboutOneSecond(t *testing.T) {
	tb := newTestbed(t)
	pr := tb.makeProc(t, "job", 32, 8, 0)
	tb.src.Start(pr)
	rep := tb.migrate(t, "job", Options{Strategy: PureIOU, WaitMigratePoint: true, HoldAtDest: true})
	if rep.CoreTransfer < 500*time.Millisecond || rep.CoreTransfer > 2*time.Second {
		t.Errorf("CoreTransfer = %v, want ≈1s", rep.CoreTransfer)
	}
}

func TestPortRightsSurviveMigration(t *testing.T) {
	tb := newTestbed(t)
	pr := tb.makeProc(t, "job", 8, 2, 0)
	portID := pr.Ports[0].ID
	tb.src.Start(pr)
	tb.migrate(t, "job", Options{Strategy: PureIOU, WaitMigratePoint: true, HoldAtDest: true})
	npr, _ := tb.dst.Process("job")
	if len(npr.Ports) != 2 || npr.Ports[0].ID != portID {
		t.Fatalf("rights not preserved: %+v", npr.Ports)
	}
	// The port is live on the destination: a local message reaches it.
	got := false
	tb.k.Go("rx", func(p *sim.Proc) {
		tb.dst.IPC.Receive(p, npr.Ports[0])
		got = true
	})
	tb.k.Go("tx", func(p *sim.Proc) {
		if err := tb.dst.IPC.Send(p, &ipc.Message{To: portID, BodyBytes: 8}); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	tb.k.Run()
	if !got {
		t.Error("message to migrated port not delivered")
	}
}

func TestPrefetchPropagates(t *testing.T) {
	tb := newTestbed(t)
	pr := tb.makeProc(t, "job", 32, 4, 12)
	tb.src.Start(pr)
	tb.migrate(t, "job", Options{Strategy: PureIOU, Prefetch: 3, WaitMigratePoint: true})
	npr, _ := tb.dst.Process("job")
	tb.k.Go("wait", func(p *sim.Proc) { npr.WaitDone(p) })
	tb.k.Run()
	if got := tb.dst.Pager.Prefetch(); got != 3 {
		t.Errorf("dest prefetch = %d", got)
	}
	st := tb.dst.Pager.Stats()
	if st.PrefetchedPages == 0 {
		t.Error("no pages prefetched")
	}
	// Sequential touches: far fewer faults than touches.
	if st.ImagFaults >= 12 {
		t.Errorf("ImagFaults = %d with prefetch 3, want < 12", st.ImagFaults)
	}
}

func TestSegmentDeathReleasesSourceCache(t *testing.T) {
	tb := newTestbed(t)
	pr := tb.makeProc(t, "job", 16, 4, 2)
	tb.src.Start(pr)
	tb.migrate(t, "job", Options{Strategy: PureIOU, WaitMigratePoint: true})
	npr, _ := tb.dst.Process("job")
	tb.k.Go("cleanup", func(p *sim.Proc) {
		npr.WaitDone(p)
		npr.AS.Clear() // last references die → death messages flow home
	})
	tb.k.Run()
	if segs := tb.src.Net.Store().Segments(); segs != 0 {
		t.Errorf("source cache still backs %d segments after death", segs)
	}
}

func TestResidualDependencyAccounting(t *testing.T) {
	tb := newTestbed(t)
	pr := tb.makeProc(t, "job", 40, 4, 10)
	tb.src.Start(pr)
	tb.migrate(t, "job", Options{Strategy: PureIOU, WaitMigratePoint: true})
	npr, _ := tb.dst.Process("job")
	tb.k.Go("wait", func(p *sim.Proc) { npr.WaitDone(p) })
	tb.k.Run()
	// 40 real pages, 10 fetched: 30 still owed by the source.
	if rem := tb.src.Net.Store().TotalRemaining(); rem != 30 {
		t.Errorf("TotalRemaining = %d, want 30", rem)
	}
}

func TestPreexistingImaginaryRegionForwards(t *testing.T) {
	// A process that already had an imaginary region (backed by the
	// source NetMsgServer cache, as after a prior lazy transfer) keeps
	// working after migration: faults flow to the original backer.
	tb := newTestbed(t)
	pr, err := tb.src.NewProcess("job", 0)
	if err != nil {
		t.Fatal(err)
	}
	store := tb.src.Net.Store()
	segID := uint64(1<<40 + 7)
	sseg := store.AddSegment(segID, 8*512, 512)
	for i := uint64(0); i < 8; i++ {
		sseg.Put(i, pattern(100+i))
	}
	iseg := vm.NewImaginarySegment("owed", 8*512, 512, uint64(tb.src.Net.BackingPort()))
	iseg.ID = segID
	if _, err := pr.AS.MapSegment(0, 8*512, iseg, 0, "owed"); err != nil {
		t.Fatal(err)
	}
	pr.Program = &trace.Program{Ops: []trace.Op{
		trace.MigratePoint{},
		trace.Touch{Addr: 3 * 512},
	}}
	tb.src.Start(pr)
	tb.migrate(t, "job", Options{Strategy: PureIOU, WaitMigratePoint: true})
	npr, _ := tb.dst.Process("job")
	var execErr error
	tb.k.Go("wait", func(p *sim.Proc) { execErr = npr.WaitDone(p) })
	tb.k.Run()
	if execErr != nil {
		t.Fatalf("remote exec: %v", execErr)
	}
	// Verify the fetched content.
	tb.k.Go("verify", func(p *sim.Proc) {
		got, err := tb.dst.Pager.Read(p, npr.AS, 3*512, 16)
		if err != nil {
			t.Errorf("read: %v", err)
			return
		}
		want := pattern(103)
		for j := 0; j < 16; j++ {
			if got[j] != want[j] {
				t.Errorf("byte %d: %d != %d", j, got[j], want[j])
				return
			}
		}
	})
	tb.k.Run()
}

func TestMigrateUnknownProcess(t *testing.T) {
	tb := newTestbed(t)
	var err error
	tb.k.Go("driver", func(p *sim.Proc) {
		_, err = tb.srcM.MigrateTo(p, "ghost", tb.dstM.Port.ID, Options{})
	})
	tb.k.Run()
	if err == nil {
		t.Error("migrating a nonexistent process succeeded")
	}
}

func TestExciseTimingsBreakdown(t *testing.T) {
	tb := newTestbed(t)
	pr := tb.makeProc(t, "job", 64, 16, 0)
	tb.src.Start(pr)
	rep := tb.migrate(t, "job", Options{Strategy: PureIOU, WaitMigratePoint: true, HoldAtDest: true})
	e := rep.Excise
	if e.AMap <= 0 || e.RIMAS <= 0 {
		t.Errorf("timings not positive: %+v", e)
	}
	if e.Overall < e.AMap+e.RIMAS {
		t.Errorf("Overall %v < AMap+RIMAS %v", e.Overall, e.AMap+e.RIMAS)
	}
}

func TestHoldAtDest(t *testing.T) {
	tb := newTestbed(t)
	pr := tb.makeProc(t, "job", 8, 2, 4)
	tb.src.Start(pr)
	tb.migrate(t, "job", Options{Strategy: PureIOU, WaitMigratePoint: true, HoldAtDest: true})
	npr, _ := tb.dst.Process("job")
	if npr.Done.Opened() {
		t.Error("held process ran")
	}
	// It can be started later.
	tb.dst.Start(npr)
	tb.k.Run()
	if npr.Status != machine.Finished {
		t.Errorf("status = %v after manual start", npr.Status)
	}
}
