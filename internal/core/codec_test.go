package core

import (
	"testing"
	"time"

	"accentmig/internal/ipc"
	"accentmig/internal/trace"
	"accentmig/internal/vm"
	"accentmig/internal/wire"
)

func TestCoreBodyRoundTrip(t *testing.T) {
	amap := &vm.AMap{
		PageSize: 512,
		Entries: []vm.AMapEntry{
			{Start: 0, End: 4 * 512, Access: vm.RealMem},
			{Start: 4 * 512, End: 1 << 30, Access: vm.RealZeroMem},
			{Start: 1 << 30, End: 1<<30 + 8*512, Access: vm.ImagMem},
		},
		Stats: vm.AMapStats{Regions: 2, Runs: 3, MaterializedPages: 4, ValidatedPages: 1 << 21},
	}
	prog := &trace.Program{Ops: []trace.Op{
		trace.Compute{D: 100 * time.Millisecond},
		trace.IOWait{D: time.Second},
		trace.Touch{Addr: 512, Write: true},
		trace.SeqScan{Start: 0, Bytes: 4096, Stride: 1024, Write: true, PerTouch: time.Millisecond},
		trace.RandTouch{Start: 1 << 20, Bytes: 1 << 16, Count: 7, Seed: 42, PerTouch: 2 * time.Millisecond},
		trace.WSLoop{Start: 0, Pages: 8, Iters: 3, Compute: 50 * time.Millisecond, Write: true},
		trace.MigratePoint{},
	}}
	mail := &ipc.Message{Op: 0x9999, To: 3, Body: "user payload", BodyBytes: 12}
	cb := &CoreBody{
		ProcName:         "roundtrip",
		AMap:             amap,
		Rights:           []PortRight{{ID: 3, Name: "p0", Pending: []*ipc.Message{mail}}, {ID: 4, Name: "p1"}},
		MicrostateBytes:  512,
		KernelStackBytes: 256,
		PCBBytes:         256,
		PC:               5,
		Program:          prog,
		Prefetch:         3,
	}
	out, err := wire.Transfer(&ipc.Message{Op: OpCore, Body: cb, BodyBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := out.Body.(*CoreBody)
	if !ok {
		t.Fatalf("body type %T", out.Body)
	}
	if got.ProcName != cb.ProcName || got.PC != 5 || got.Prefetch != 3 ||
		got.MicrostateBytes != 512 || got.KernelStackBytes != 256 || got.PCBBytes != 256 {
		t.Errorf("scalars lost: %+v", got)
	}
	if len(got.AMap.Entries) != 3 || got.AMap.Entries[2] != amap.Entries[2] {
		t.Errorf("AMap lost: %+v", got.AMap)
	}
	if got.AMap.Stats != amap.Stats {
		t.Errorf("AMap stats lost: %+v", got.AMap.Stats)
	}
	if len(got.Rights) != 2 || got.Rights[0].ID != 3 || got.Rights[1].Name != "p1" {
		t.Errorf("rights lost: %+v", got.Rights)
	}
	if len(got.Rights[0].Pending) != 1 {
		t.Fatalf("pending mail lost")
	}
	pm := got.Rights[0].Pending[0]
	if pm.Op != 0x9999 || pm.Body.(string) != "user payload" {
		t.Errorf("pending mail corrupted: %+v", pm)
	}
	if len(got.Program.Ops) != len(prog.Ops) {
		t.Fatalf("program length %d, want %d", len(got.Program.Ops), len(prog.Ops))
	}
	for i := range prog.Ops {
		if got.Program.Ops[i] != prog.Ops[i] {
			t.Errorf("op %d: %+v vs %+v", i, got.Program.Ops[i], prog.Ops[i])
		}
	}
}

func TestRIMASBodyRoundTrip(t *testing.T) {
	rb := &RIMASBody{
		ProcName:   "r",
		HoldAtDest: true,
		PreCopied:  true,
		Runs: []CollapsedRun{
			{VA: 0, Pages: 4, Resident: true},
			{VA: 1 << 20, Pages: 9},
		},
	}
	out, err := wire.Transfer(&ipc.Message{Op: OpRIMAS, Body: rb, BodyBytes: rb.Bytes()})
	if err != nil {
		t.Fatal(err)
	}
	got := out.Body.(*RIMASBody)
	if got.ProcName != "r" || !got.HoldAtDest || !got.PreCopied {
		t.Errorf("flags lost: %+v", got)
	}
	if len(got.Runs) != 2 || got.Runs[0] != rb.Runs[0] || got.Runs[1] != rb.Runs[1] {
		t.Errorf("runs lost: %+v", got.Runs)
	}
}

func TestAckBodyRoundTrip(t *testing.T) {
	ab := &AckBody{
		ProcName:     "a",
		CoreArrived:  time.Second,
		RIMASArrived: 2 * time.Second,
		InsertDone:   3 * time.Second,
		Insert:       InsertTimings{Overall: 400 * time.Millisecond, ArrivedPages: 7, IOURuns: 2, ZeroRuns: 3},
		Err:          "some failure",
	}
	out, err := wire.Transfer(&ipc.Message{Op: OpMigrateAck, Body: ab, BodyBytes: 96})
	if err != nil {
		t.Fatal(err)
	}
	got := out.Body.(*AckBody)
	if *got != *ab {
		t.Errorf("ack mismatch: %+v vs %+v", got, ab)
	}
}

func TestPreCopyBodyRoundTrip(t *testing.T) {
	out, err := wire.Transfer(&ipc.Message{Op: OpPreCopy, Body: &PreCopyBody{ProcName: "w", Round: 3}, BodyBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	got := out.Body.(*PreCopyBody)
	if got.ProcName != "w" || got.Round != 3 {
		t.Errorf("precopy body mismatch: %+v", got)
	}
}

func TestCodecRejectsWrongType(t *testing.T) {
	if _, _, err := wire.EncodeMessage(&ipc.Message{Op: OpCore, Body: "not a corebody"}); err == nil {
		t.Error("wrong body type accepted")
	}
}
