package core_test

import (
	"fmt"
	"time"

	"accentmig/internal/core"
	"accentmig/internal/machine"
	"accentmig/internal/netlink"
	"accentmig/internal/sim"
	"accentmig/internal/trace"
)

// A complete copy-on-reference migration: two machines, one process,
// one lazy transfer, remote faults on demand.
func Example() {
	k := sim.New()
	src := machine.New(k, "src", machine.Config{})
	dst := machine.New(k, "dst", machine.Config{})
	machine.Connect(src, dst, netlink.Config{})
	srcMgr := core.NewManager(src, core.DefaultTuning())
	dstMgr := core.NewManager(dst, core.DefaultTuning())
	src.Net.AddRoute(dstMgr.Port.ID, "dst")
	dst.Net.AddRoute(srcMgr.Port.ID, "src")

	pr, _ := src.NewProcess("job", 1)
	reg, _ := pr.AS.Validate(0, 64*512, "data")
	for i := uint64(0); i < 64; i++ {
		pg := reg.Seg.Materialize(i, []byte{byte(i)})
		pg.State.OnDisk = true
	}
	pr.Program = &trace.Program{Ops: []trace.Op{
		trace.MigratePoint{},
		trace.SeqScan{Bytes: 8 * 512, PerTouch: time.Millisecond},
	}}
	src.Start(pr)

	k.Go("driver", func(p *sim.Proc) {
		rep, err := srcMgr.MigrateTo(p, "job", dstMgr.Port.ID, core.Options{
			Strategy:         core.PureIOU,
			WaitMigratePoint: true,
		})
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		npr, _ := dst.Process("job")
		npr.WaitDone(p)
		fmt.Printf("RIMAS transfer under %v: %v\n", 100*time.Millisecond, rep.RIMASTransfer < 100*time.Millisecond)
		fmt.Printf("remote faults: %d of 64 pages\n", dst.Pager.Stats().ImagFaults)
		fmt.Printf("pages still owed by src: %d\n", src.Net.Store().TotalRemaining())
	})
	k.Run()
	// Output:
	// RIMAS transfer under 100ms: true
	// remote faults: 8 of 64 pages
	// pages still owed by src: 56
}
