package core

import (
	"errors"
	"fmt"
	"time"

	"accentmig/internal/ipc"
	"accentmig/internal/machine"
	"accentmig/internal/obs"
	"accentmig/internal/sim"
	"accentmig/internal/vm"
)

// Options shape one migration.
type Options struct {
	Strategy Strategy
	// Prefetch pages per imaginary fault at the destination.
	Prefetch int
	// WaitMigratePoint makes the source manager wait for the process to
	// reach its MigratePoint before excising (the normal trial setup).
	WaitMigratePoint bool
	// HoldAtDest leaves the process stopped after insertion instead of
	// resuming it immediately.
	HoldAtDest bool
}

// Report is the source manager's account of one migration.
type Report struct {
	Excise ExciseTimings
	Insert InsertTimings

	// CoreTransfer is Core-message wall time: send start to arrival,
	// including rights processing at the destination (§4.3.2's ≈1 s).
	CoreTransfer time.Duration
	// RIMASTransfer is the address-space transfer wall time the paper's
	// Table 4-5 reports.
	RIMASTransfer time.Duration
	// Total is excise start to insertion complete.
	Total time.Duration
	// InsertDoneAt is the absolute virtual time insertion completed —
	// the instant remote execution begins.
	InsertDoneAt time.Duration

	RealPages     int
	ResidentPages int
	Attachments   int
}

// ErrMigrationFailed wraps a destination-reported insertion failure.
var ErrMigrationFailed = errors.New("core: migration failed")

// Manager is the per-machine MigrationManager process (§3.2): it
// accepts context messages on its port and reconstructs processes. The
// source side of a migration runs synchronously in the caller via
// MigrateTo, mirroring the simple command-driven server of the paper.
type Manager struct {
	M    *machine.Machine
	Tun  Tuning
	Port *ipc.Port

	pendingCore map[string]*pending
	// staged holds pre-copied page contents by process and VA, awaiting
	// the final PreCopied handoff.
	staged   map[string]map[vm.Addr][]byte
	inserted uint64
}

type pending struct {
	core        *ipc.Message
	coreArrived time.Duration
}

// NewManager creates the manager and starts its service process.
func NewManager(m *machine.Machine, tun Tuning) *Manager {
	mgr := &Manager{
		M:           m,
		Tun:         tun,
		Port:        m.IPC.AllocPort(m.Name + ".migmgr"),
		pendingCore: make(map[string]*pending),
		staged:      make(map[string]map[vm.Addr][]byte),
	}
	m.K.Go(m.Name+".migmgr", mgr.serve)
	return mgr
}

// Inserted reports how many processes this manager has reconstructed.
func (mgr *Manager) Inserted() uint64 { return mgr.inserted }

// phase records the migration phase [start, end] twice — in the
// machine's metrics recorder and in the flight recorder — with the same
// endpoints, so a trace's summed phase spans agree exactly with the
// recorder's Phases() output.
func (mgr *Manager) phase(procName, name string, start, end time.Duration) {
	if rec := mgr.M.Recorder(); rec != nil {
		rec.StartPhase(name, start)
		rec.EndPhase(name, end)
	}
	if mgr.M.K.Tracing() {
		mgr.M.K.EmitAt(start, obs.Event{
			Kind: obs.PhaseBegin, Machine: mgr.M.Name, Proc: procName, Name: name,
		})
		mgr.M.K.EmitAt(end, obs.Event{
			Kind: obs.PhaseEnd, Machine: mgr.M.Name, Proc: procName, Name: name,
		})
	}
}

// state records a migration state transition for procName.
func (mgr *Manager) state(procName, state string) {
	if mgr.M.K.Tracing() {
		mgr.M.K.Emit(obs.Event{
			Kind: obs.StateChange, Machine: mgr.M.Name, Proc: procName, Name: state,
		})
	}
}

// serve handles inbound context messages.
func (mgr *Manager) serve(p *sim.Proc) {
	for {
		m := mgr.M.IPC.Receive(p, mgr.Port)
		switch m.Op {
		case OpCore:
			cb, ok := m.Body.(*CoreBody)
			if !ok {
				continue
			}
			// Rights and PCB processing: the bulk of the ≈1 s Core
			// transfer cost.
			mgr.M.CPU.UseHigh(p, mgr.Tun.CoreRightsCPU+
				time.Duration(len(cb.Rights))*mgr.Tun.PerPortRight)
			mgr.pendingCore[cb.ProcName] = &pending{core: m, coreArrived: p.Now()}
			mgr.state(cb.ProcName, "CoreArrived")
			if m.ReplyTo != 0 {
				_ = mgr.M.IPC.Send(p, &ipc.Message{
					Op:        OpCoreAck,
					To:        m.ReplyTo,
					Body:      &AckBody{ProcName: cb.ProcName, CoreArrived: p.Now()},
					BodyBytes: 96,
				})
			}
		case OpRIMAS:
			rb, ok := m.Body.(*RIMASBody)
			if !ok {
				continue
			}
			mgr.handleRIMAS(p, rb, m)
		case OpPreCopy:
			pb, ok := m.Body.(*PreCopyBody)
			if !ok {
				continue
			}
			mgr.handlePreCopy(p, pb, m)
		}
	}
}

func (mgr *Manager) handleRIMAS(p *sim.Proc, rb *RIMASBody, m *ipc.Message) {
	rimasArrived := p.Now()
	pend, ok := mgr.pendingCore[rb.ProcName]
	ack := &AckBody{ProcName: rb.ProcName, RIMASArrived: rimasArrived}
	if !ok {
		ack.Err = fmt.Sprintf("RIMAS for %q with no Core context", rb.ProcName)
	} else {
		delete(mgr.pendingCore, rb.ProcName)
		ack.CoreArrived = pend.coreArrived
		var stage map[vm.Addr][]byte
		if rb.PreCopied {
			stage = mgr.staged[rb.ProcName]
			delete(mgr.staged, rb.ProcName)
		}
		pr, it, err := InsertProcessStaged(p, mgr.M, pend.core, m, stage, mgr.Tun)
		if err != nil {
			ack.Err = err.Error()
		} else {
			mgr.inserted++
			ack.Insert = it
			ack.InsertDone = p.Now()
			mgr.state(rb.ProcName, "Inserted")
			if !rb.HoldAtDest {
				mgr.M.Start(pr)
			}
		}
	}
	if m.ReplyTo != 0 {
		_ = mgr.M.IPC.Send(p, &ipc.Message{
			Op:        OpMigrateAck,
			To:        m.ReplyTo,
			Body:      ack,
			BodyBytes: 96,
		})
	}
}

// handlePreCopy absorbs one staging round into the per-process stage.
func (mgr *Manager) handlePreCopy(p *sim.Proc, pb *PreCopyBody, m *ipc.Message) {
	stage := mgr.staged[pb.ProcName]
	if stage == nil {
		stage = make(map[vm.Addr][]byte)
		mgr.staged[pb.ProcName] = stage
	}
	ps := uint64(mgr.M.PageSize())
	pages := 0
	for _, a := range m.Mem {
		if a.Kind != ipc.AttachData {
			continue
		}
		for _, img := range a.Pages {
			stage[a.VA+vm.Addr(img.Index*ps)] = img.Data
			pages++
		}
	}
	// Staging cost: absorbing arrived pages.
	mgr.M.CPU.UseHigh(p, time.Duration(pages)*mgr.Tun.InsertPerArrivedPage)
	if m.ReplyTo != 0 {
		_ = mgr.M.IPC.Send(p, &ipc.Message{
			Op:        OpPreCopyAck,
			To:        m.ReplyTo,
			Body:      &AckBody{ProcName: pb.ProcName},
			BodyBytes: 64,
		})
	}
}

// MigrateTo migrates the named process from this manager's machine to
// the manager listening on destPort, using the given options. It runs
// in the caller's proc on the source machine and blocks until the
// destination acknowledges insertion.
func (mgr *Manager) MigrateTo(p *sim.Proc, procName string, destPort ipc.PortID, opts Options) (*Report, error) {
	pr, ok := mgr.M.Process(procName)
	if !ok {
		return nil, fmt.Errorf("core: no process %q on %s", procName, mgr.M.Name)
	}
	if opts.WaitMigratePoint {
		pr.AtMigrate.Wait(p)
	}
	startAt := p.Now()

	ctx, err := ExciseProcess(p, mgr.M, pr, opts.Strategy, opts.Prefetch, mgr.Tun)
	if err != nil {
		return nil, err
	}

	reply := mgr.M.IPC.AllocPort("migrate-reply")
	defer mgr.M.IPC.RemovePort(reply)

	// Core context first; wait for its arrival ack so the RIMAS
	// transfer is measured on an idle wire, as Table 4-5 does. The
	// source-side rights/PCB packaging belongs to this transfer window,
	// which is why Core transmission takes ≈1 s in all cases.
	coreSendStart := p.Now()
	mgr.M.CPU.UseHigh(p, mgr.Tun.CoreRightsCPU+
		time.Duration(len(ctx.Core.Body.(*CoreBody).Rights))*mgr.Tun.PerPortRight)
	ctx.Core.To = destPort
	ctx.Core.ReplyTo = reply.ID
	if err := mgr.M.IPC.Send(p, ctx.Core); err != nil {
		return nil, fmt.Errorf("core: sending Core context: %w", err)
	}
	coreAckMsg := mgr.M.IPC.Receive(p, reply)
	coreAck, ok := coreAckMsg.Body.(*AckBody)
	if !ok || coreAckMsg.Op != OpCoreAck {
		return nil, fmt.Errorf("core: expected Core ack, got op %#x body %T", coreAckMsg.Op, coreAckMsg.Body)
	}

	rimasSendStart := p.Now()
	ctx.RIMAS.Body.(*RIMASBody).HoldAtDest = opts.HoldAtDest
	ctx.RIMAS.To = destPort
	ctx.RIMAS.ReplyTo = reply.ID
	if err := mgr.M.IPC.Send(p, ctx.RIMAS); err != nil {
		return nil, fmt.Errorf("core: sending RIMAS context: %w", err)
	}

	ackMsg := mgr.M.IPC.Receive(p, reply)
	ack, ok := ackMsg.Body.(*AckBody)
	if !ok {
		return nil, fmt.Errorf("core: malformed migration ack %T", ackMsg.Body)
	}
	if ack.Err != "" {
		return nil, fmt.Errorf("%w: %s", ErrMigrationFailed, ack.Err)
	}
	mgr.phase(procName, "excise", startAt, startAt+ctx.Timings.Overall)
	mgr.phase(procName, "xfer.core", coreSendStart, coreAck.CoreArrived)
	mgr.phase(procName, "xfer.rimas", rimasSendStart, ack.RIMASArrived)
	mgr.phase(procName, "insert", ack.InsertDone-ack.Insert.Overall, ack.InsertDone)
	return &Report{
		Excise:        ctx.Timings,
		Insert:        ack.Insert,
		CoreTransfer:  coreAck.CoreArrived - coreSendStart,
		RIMASTransfer: ack.RIMASArrived - rimasSendStart,
		Total:         ack.InsertDone - startAt,
		InsertDoneAt:  ack.InsertDone,
		RealPages:     ctx.RealPages,
		ResidentPages: ctx.ResidentPages,
		Attachments:   ctx.Attachments,
	}, nil
}
