package core

import (
	"errors"
	"fmt"
	"time"

	"accentmig/internal/ipc"
	"accentmig/internal/machine"
	"accentmig/internal/obs"
	"accentmig/internal/sim"
	"accentmig/internal/vm"
)

// Options shape one migration.
type Options struct {
	Strategy Strategy
	// Prefetch pages per imaginary fault at the destination.
	Prefetch int
	// WaitMigratePoint makes the source manager wait for the process to
	// reach its MigratePoint before excising (the normal trial setup).
	WaitMigratePoint bool
	// HoldAtDest leaves the process stopped after insertion instead of
	// resuming it immediately.
	HoldAtDest bool

	// AckTimeout bounds the wait for each handshake acknowledgement
	// (Core ack, migrate ack). On expiry the attempt is aborted and the
	// process rolled back to the source. Zero selects
	// DefaultAckTimeout; negative waits forever.
	AckTimeout time.Duration
	// MaxRetries is how many further attempts follow a recoverable
	// failure (phase timeout, dead peer). Zero retries never.
	MaxRetries int
	// Degrade steps the strategy down the reliability ladder on every
	// retry (PureIOU → ResidentSet → PureCopy), shedding residual
	// dependencies as the network proves itself unreliable.
	Degrade bool
}

// DefaultAckTimeout is the per-phase handshake deadline when Options
// leaves AckTimeout zero. It is far beyond any healthy transfer, so it
// only fires when the control plane has genuinely failed.
const DefaultAckTimeout = 2 * time.Minute

// Report is the source manager's account of one migration.
type Report struct {
	Excise ExciseTimings
	Insert InsertTimings

	// CoreTransfer is Core-message wall time: send start to arrival,
	// including rights processing at the destination (§4.3.2's ≈1 s).
	CoreTransfer time.Duration
	// RIMASTransfer is the address-space transfer wall time the paper's
	// Table 4-5 reports.
	RIMASTransfer time.Duration
	// Total is excise start to insertion complete.
	Total time.Duration
	// InsertDoneAt is the absolute virtual time insertion completed —
	// the instant remote execution begins.
	InsertDoneAt time.Duration

	RealPages     int
	ResidentPages int
	Attachments   int

	// Attempts counts the tries the migration took (1 = first try).
	Attempts int
	// FinalStrategy is the strategy of the successful attempt, which
	// differs from Options.Strategy after degradation.
	FinalStrategy Strategy
}

// ErrMigrationFailed wraps a destination-reported insertion failure.
var ErrMigrationFailed = errors.New("core: migration failed")

// ErrMigrationAborted reports that every attempt failed and the
// process was rolled back and resumed at the source.
var ErrMigrationAborted = errors.New("core: migration aborted")

// ErrPhaseTimeout reports a handshake acknowledgement missing its
// per-phase deadline.
var ErrPhaseTimeout = errors.New("core: migration phase timed out")

// ErrPeerDead reports that the transport declared the destination
// unreachable mid-migration.
var ErrPeerDead = errors.New("core: migration peer unreachable")

// Manager is the per-machine MigrationManager process (§3.2): it
// accepts context messages on its port and reconstructs processes. The
// source side of a migration runs synchronously in the caller via
// MigrateTo, mirroring the simple command-driven server of the paper.
type Manager struct {
	M    *machine.Machine
	Tun  Tuning
	Port *ipc.Port

	// PhaseHook, when set, is called in the migrating proc's context as
	// each source-side migration phase begins (excise, xfer.core,
	// xfer.manifest, xfer.rimas). Fault harnesses key scheduled crashes
	// to it.
	PhaseHook func(p *sim.Proc, phase string)

	pendingCore map[string]*pending
	// staged holds pre-copied page contents by process and VA, awaiting
	// the final PreCopied handoff.
	staged map[string]map[vm.Addr][]byte
	// recipes holds each process's classified page-manifest recipe — how
	// to rebuild the pages the source was told not to ship — awaiting
	// the RIMAS message that consumes it.
	recipes  map[string]*dedupRecipe
	inserted uint64
}

type pending struct {
	core        *ipc.Message
	coreArrived time.Duration
}

// NewManager creates the manager and starts its service process.
func NewManager(m *machine.Machine, tun Tuning) *Manager {
	mgr := &Manager{
		M:           m,
		Tun:         tun,
		Port:        m.IPC.AllocPort(m.Name + ".migmgr"),
		pendingCore: make(map[string]*pending),
		staged:      make(map[string]map[vm.Addr][]byte),
		recipes:     make(map[string]*dedupRecipe),
	}
	m.K.Go(m.Name+".migmgr", mgr.serve)
	return mgr
}

// Inserted reports how many processes this manager has reconstructed.
func (mgr *Manager) Inserted() uint64 { return mgr.inserted }

// phase records the migration phase [start, end] twice — in the
// machine's metrics recorder and in the flight recorder — with the same
// endpoints, so a trace's summed phase spans agree exactly with the
// recorder's Phases() output.
func (mgr *Manager) phase(procName, name string, start, end time.Duration) {
	if rec := mgr.M.Recorder(); rec != nil {
		rec.StartPhase(name, start)
		rec.EndPhase(name, end)
	}
	if mgr.M.K.Tracing() {
		mgr.M.K.EmitAt(start, obs.Event{
			Kind: obs.PhaseBegin, Machine: mgr.M.Name, Proc: procName, Name: name,
		})
		mgr.M.K.EmitAt(end, obs.Event{
			Kind: obs.PhaseEnd, Machine: mgr.M.Name, Proc: procName, Name: name,
		})
	}
}

// state records a migration state transition for procName.
func (mgr *Manager) state(procName, state string) {
	if mgr.M.K.Tracing() {
		mgr.M.K.Emit(obs.Event{
			Kind: obs.StateChange, Machine: mgr.M.Name, Proc: procName, Name: state,
		})
	}
}

// serve handles inbound context messages.
func (mgr *Manager) serve(p *sim.Proc) {
	for {
		m := mgr.M.IPC.Receive(p, mgr.Port)
		switch m.Op {
		case OpCore:
			cb, ok := m.Body.(*CoreBody)
			if !ok {
				continue
			}
			// Rights and PCB processing: the bulk of the ≈1 s Core
			// transfer cost.
			mgr.M.CPU.UseHigh(p, mgr.Tun.CoreRightsCPU+
				time.Duration(len(cb.Rights))*mgr.Tun.PerPortRight)
			mgr.pendingCore[cb.ProcName] = &pending{core: m, coreArrived: p.Now()}
			mgr.state(cb.ProcName, "CoreArrived")
			if m.ReplyTo != 0 {
				_ = mgr.M.IPC.Send(p, &ipc.Message{
					Op:        OpCoreAck,
					To:        m.ReplyTo,
					Body:      &AckBody{ProcName: cb.ProcName, CoreArrived: p.Now(), Attempt: cb.Attempt},
					BodyBytes: 96,
				})
			}
		case OpManifest:
			mb, ok := m.Body.(*ManifestBody)
			if !ok {
				continue
			}
			mgr.handleManifest(p, mb, m)
		case OpRIMAS:
			rb, ok := m.Body.(*RIMASBody)
			if !ok {
				continue
			}
			mgr.handleRIMAS(p, rb, m)
		case OpPreCopy:
			pb, ok := m.Body.(*PreCopyBody)
			if !ok {
				continue
			}
			mgr.handlePreCopy(p, pb, m)
		}
	}
}

// handleManifest classifies a page manifest against the local content
// index, retains the reconstruction recipe for the RIMAS message that
// follows, and answers with the needed-page bitmaps.
func (mgr *Manager) handleManifest(p *sim.Proc, mb *ManifestBody, m *ipc.Message) {
	total := 0
	for _, a := range mb.Atts {
		total += len(a.Hashes)
	}
	// Classification work: each page costs one hash lookup (the index
	// and the delivery ledger both verify hits by re-hashing).
	if d := mgr.M.DedupConfig(); d.ManifestActive() && total > 0 {
		mgr.M.CPU.UseHigh(p, time.Duration(total)*d.HashPerPageCPU)
	}
	rcp, ack := classifyManifest(mb, mgr.M.Index, mgr.M.Ledger, mgr.M.PageSize())
	// A manifest of an older, abandoned attempt must not clobber the
	// recipe of the attempt actually in flight.
	if old, held := mgr.recipes[mb.ProcName]; !held || mb.Attempt >= old.attempt {
		mgr.recipes[mb.ProcName] = rcp
	}
	mgr.state(mb.ProcName, "ManifestClassified")
	if m.ReplyTo != 0 {
		_ = mgr.M.IPC.Send(p, &ipc.Message{
			Op:        OpManifestAck,
			To:        m.ReplyTo,
			Body:      ack,
			BodyBytes: ack.Bytes(),
		})
	}
}

func (mgr *Manager) handleRIMAS(p *sim.Proc, rb *RIMASBody, m *ipc.Message) {
	rimasArrived := p.Now()
	pend, ok := mgr.pendingCore[rb.ProcName]
	rcp := mgr.recipes[rb.ProcName]
	delete(mgr.recipes, rb.ProcName)
	if rcp != nil && rcp.attempt != rb.Attempt {
		rcp = nil
	}
	ack := &AckBody{ProcName: rb.ProcName, RIMASArrived: rimasArrived, Attempt: rb.Attempt}
	if !ok {
		ack.Err = fmt.Sprintf("RIMAS for %q with no Core context", rb.ProcName)
	} else {
		delete(mgr.pendingCore, rb.ProcName)
		ack.CoreArrived = pend.coreArrived
		var stage map[vm.Addr][]byte
		if rb.PreCopied {
			stage = mgr.staged[rb.ProcName]
			delete(mgr.staged, rb.ProcName)
		}
		pr, it, err := insertProcess(p, mgr.M, pend.core, m, stage, rcp, mgr.Tun)
		if err != nil {
			ack.Err = err.Error()
		} else {
			mgr.inserted++
			// The real image is installed: whatever the delivery ledger
			// retained for this migration is now redundant.
			mgr.M.Ledger.Forget(rb.ProcName)
			ack.Insert = it
			ack.InsertDone = p.Now()
			mgr.state(rb.ProcName, "Inserted")
			if !rb.HoldAtDest {
				mgr.M.Start(pr)
			}
		}
	}
	if m.ReplyTo != 0 {
		_ = mgr.M.IPC.Send(p, &ipc.Message{
			Op:        OpMigrateAck,
			To:        m.ReplyTo,
			Body:      ack,
			BodyBytes: 96,
		})
	}
}

// handlePreCopy absorbs one staging round into the per-process stage.
func (mgr *Manager) handlePreCopy(p *sim.Proc, pb *PreCopyBody, m *ipc.Message) {
	stage := mgr.staged[pb.ProcName]
	if stage == nil {
		stage = make(map[vm.Addr][]byte)
		mgr.staged[pb.ProcName] = stage
	}
	ps := uint64(mgr.M.PageSize())
	pages := 0
	for _, a := range m.Mem {
		if a.Kind != ipc.AttachData {
			continue
		}
		for _, run := range a.Runs {
			for j := 0; j < run.Count; j++ {
				stage[a.VA+vm.Addr((run.Index+uint64(j))*ps)] = run.Page(j, int(ps))
				pages++
			}
		}
	}
	// Staging cost: absorbing arrived pages.
	mgr.M.CPU.UseHigh(p, time.Duration(pages)*mgr.Tun.InsertPerArrivedPage)
	if m.ReplyTo != 0 {
		_ = mgr.M.IPC.Send(p, &ipc.Message{
			Op:        OpPreCopyAck,
			To:        m.ReplyTo,
			Body:      &AckBody{ProcName: pb.ProcName},
			BodyBytes: 64,
		})
	}
}

// MigrateTo migrates the named process from this manager's machine to
// the manager listening on destPort, using the given options. It runs
// in the caller's proc on the source machine and blocks until the
// destination acknowledges insertion — or, under Options' recovery
// knobs, until every attempt has failed, in which case the process is
// rolled back and resumed at the source and the error explains the
// abort. A recoverable failure (phase timeout, dead peer) triggers up
// to MaxRetries further attempts, optionally degrading the strategy.
func (mgr *Manager) MigrateTo(p *sim.Proc, procName string, destPort ipc.PortID, opts Options) (*Report, error) {
	timeout := opts.AckTimeout
	if timeout == 0 {
		timeout = DefaultAckTimeout
	}
	// One reply port across all attempts, so an acknowledgement that
	// limps in after its attempt was abandoned still lands here — the
	// Attempt echo tells stale from current, and a stale success is
	// adopted rather than discarded (the destination really does hold
	// the process).
	reply := mgr.M.IPC.AllocPort("migrate-reply")
	defer mgr.M.IPC.RemovePort(reply)

	strat := opts.Strategy
	retryDelay := 500 * time.Millisecond
	var lastErr error
	for attempt := 0; attempt <= opts.MaxRetries; attempt++ {
		if attempt > 0 {
			p.Sleep(retryDelay)
			retryDelay *= 2
			if opts.Degrade {
				strat = Degrade(strat)
			}
			mgr.state(procName, "Retrying")
		}
		rep, err := mgr.migrateOnce(p, procName, destPort, reply, opts, strat, timeout, attempt)
		if err == nil {
			rep.Attempts = attempt + 1
			rep.FinalStrategy = strat
			return rep, nil
		}
		lastErr = err
		if !recoverable(err) {
			mgr.resumeLocal(p, procName)
			return nil, err
		}
	}
	mgr.resumeLocal(p, procName)
	return nil, fmt.Errorf("%w: %q after %d attempts: %w",
		ErrMigrationAborted, procName, opts.MaxRetries+1, lastErr)
}

// recoverable reports whether a failed attempt is worth retrying.
func recoverable(err error) bool {
	return errors.Is(err, ErrPhaseTimeout) || errors.Is(err, ErrPeerDead)
}

// hook fires the PhaseHook, if any.
func (mgr *Manager) hook(p *sim.Proc, phase string) {
	if mgr.PhaseHook != nil {
		mgr.PhaseHook(p, phase)
	}
}

// resumeLocal restarts a rolled-back process after a final abort, so
// the source machine keeps running it as if migration had never been
// attempted.
func (mgr *Manager) resumeLocal(p *sim.Proc, procName string) {
	if pr, ok := mgr.M.Process(procName); ok && pr.Status == machine.AtMigrationPoint {
		mgr.M.Start(pr)
		mgr.state(procName, "ResumedAtSource")
	}
}

// migrateOnce runs a single migration attempt end to end. On any
// failure after the excise it rolls the process back onto the source
// machine before returning the cause.
func (mgr *Manager) migrateOnce(p *sim.Proc, procName string, destPort ipc.PortID, reply *ipc.Port, opts Options, strat Strategy, timeout time.Duration, attempt int) (*Report, error) {
	pr, ok := mgr.M.Process(procName)
	if !ok {
		return nil, fmt.Errorf("core: no process %q on %s", procName, mgr.M.Name)
	}
	if opts.WaitMigratePoint {
		pr.AtMigrate.Wait(p)
	}
	startAt := p.Now()
	if rec := mgr.M.Recorder(); rec != nil {
		// Downtime opens here: the process executes no further
		// instruction until it resumes at the destination (or rolls
		// back). machine.exec closes the span.
		rec.MarkFreeze(startAt)
	}

	mgr.hook(p, "excise")
	ctx, err := ExciseProcess(p, mgr.M, pr, strat, opts.Prefetch, mgr.Tun)
	if err != nil {
		return nil, err
	}
	// Snapshot the RIMAS attachment list before the forwarder sees it:
	// IOU absorption replaces elements in place, and rollback must
	// reinstate the original page data.
	memSnap := append([]*ipc.MemAttachment(nil), ctx.RIMAS.Mem...)
	fail := func(cause error) error {
		if rbErr := mgr.rollback(p, pr, ctx, memSnap); rbErr != nil {
			return errors.Join(cause, rbErr)
		}
		return cause
	}

	// Core context first; wait for its arrival ack so the RIMAS
	// transfer is measured on an idle wire, as Table 4-5 does. The
	// source-side rights/PCB packaging belongs to this transfer window,
	// which is why Core transmission takes ≈1 s in all cases.
	mgr.hook(p, "xfer.core")
	coreSendStart := p.Now()
	cb := ctx.Core.Body.(*CoreBody)
	cb.Attempt = attempt
	mgr.M.CPU.UseHigh(p, mgr.Tun.CoreRightsCPU+
		time.Duration(len(cb.Rights))*mgr.Tun.PerPortRight)
	ctx.Core.To = destPort
	ctx.Core.ReplyTo = reply.ID
	if err := mgr.M.IPC.Send(p, ctx.Core); err != nil {
		return nil, fail(fmt.Errorf("%w: sending Core context: %v", ErrPeerDead, err))
	}
	coreAck, adopted, err := mgr.awaitAck(p, reply, OpCoreAck, attempt, timeout, procName, "xfer.core")
	if err != nil {
		return nil, fail(err)
	}
	if adopted {
		return mgr.adoptedReport(p, procName, ctx, coreAck, startAt), nil
	}

	mgr.hook(p, "xfer.rimas")
	rimasSendStart := p.Now()
	rb := ctx.RIMAS.Body.(*RIMASBody)
	rb.HoldAtDest = opts.HoldAtDest
	rb.Attempt = attempt
	// With the content-addressed store or the delivery ledger on, a
	// manifest round-trip precedes the RIMAS transfer: the destination
	// names the pages it cannot rebuild — locally, or from content a
	// failed earlier attempt already delivered — and only those ship.
	// The exchange lives inside the xfer.rimas window, so its cost
	// weighs against its savings.
	if d := mgr.M.DedupConfig(); d.ManifestActive() && !rb.PreCopied {
		mgr.hook(p, "xfer.manifest")
		if err := mgr.exchangeManifest(p, procName, destPort, reply, ctx, timeout, attempt, d); err != nil {
			return nil, fail(err)
		}
	}
	if d := mgr.M.DedupConfig(); d.Integrity {
		mgr.stampIntegrity(p, ctx, d)
	}
	ctx.RIMAS.To = destPort
	ctx.RIMAS.ReplyTo = reply.ID
	if err := mgr.M.IPC.Send(p, ctx.RIMAS); err != nil {
		return nil, fail(fmt.Errorf("%w: sending RIMAS context: %v", ErrPeerDead, err))
	}

	ack, adopted, err := mgr.awaitAck(p, reply, OpMigrateAck, attempt, timeout, procName, "xfer.rimas")
	if err != nil {
		return nil, fail(err)
	}
	if adopted {
		return mgr.adoptedReport(p, procName, ctx, ack, startAt), nil
	}
	if ack.Err != "" {
		return nil, fail(fmt.Errorf("%w: %s", ErrMigrationFailed, ack.Err))
	}
	mgr.phase(procName, "excise", startAt, startAt+ctx.Timings.Overall)
	mgr.phase(procName, "xfer.core", coreSendStart, coreAck.CoreArrived)
	mgr.phase(procName, "xfer.rimas", rimasSendStart, ack.RIMASArrived)
	mgr.phase(procName, "insert", ack.InsertDone-ack.Insert.Overall, ack.InsertDone)
	return &Report{
		Excise:        ctx.Timings,
		Insert:        ack.Insert,
		CoreTransfer:  coreAck.CoreArrived - coreSendStart,
		RIMASTransfer: ack.RIMASArrived - rimasSendStart,
		Total:         ack.InsertDone - startAt,
		InsertDoneAt:  ack.InsertDone,
		RealPages:     ctx.RealPages,
		ResidentPages: ctx.ResidentPages,
		Attachments:   ctx.Attachments,
	}, nil
}

// adoptedReport builds the report for a migration completed by a
// stale successful acknowledgement: an earlier attempt's insertion
// succeeded but its ack was delayed past the retransmission. The
// destination holds the process, so the current attempt's in-flight
// context is abandoned and the earlier completion adopted.
func (mgr *Manager) adoptedReport(p *sim.Proc, procName string, ctx *Context, ack *AckBody, startAt time.Duration) *Report {
	mgr.state(procName, "AdoptedStaleAck")
	return &Report{
		Excise:        ctx.Timings,
		Insert:        ack.Insert,
		Total:         p.Now() - startAt,
		InsertDoneAt:  ack.InsertDone,
		RealPages:     ctx.RealPages,
		ResidentPages: ctx.ResidentPages,
		Attachments:   ctx.Attachments,
	}
}

// awaitAck waits for the given acknowledgement of the current attempt,
// bounded by the per-phase timeout (non-positive waits forever). Acks
// from earlier attempts are skipped as stale — except a successful
// OpMigrateAck, which is adopted (adopted true): the destination
// completed that attempt's insertion, so the migration has in fact
// succeeded. An OpSendFailed nack from the transport becomes
// ErrPeerDead.
func (mgr *Manager) awaitAck(p *sim.Proc, reply *ipc.Port, wantOp, attempt int, timeout time.Duration, procName, phase string) (ack *AckBody, adopted bool, err error) {
	deadline := p.Now() + timeout
	for {
		var m *ipc.Message
		if timeout <= 0 {
			m = mgr.M.IPC.Receive(p, reply)
		} else {
			remain := deadline - p.Now()
			if remain <= 0 {
				return nil, false, fmt.Errorf("%w: %q awaiting ack in %s (attempt %d)",
					ErrPhaseTimeout, procName, phase, attempt)
			}
			var got bool
			m, got = mgr.M.IPC.ReceiveTimeout(p, reply, remain)
			if !got {
				return nil, false, fmt.Errorf("%w: %q awaiting ack in %s (attempt %d)",
					ErrPhaseTimeout, procName, phase, attempt)
			}
		}
		if m.Op == ipc.OpSendFailed {
			reason := "unknown"
			if sf, ok := m.Body.(*ipc.SendFailure); ok {
				reason = sf.Reason
			}
			return nil, false, fmt.Errorf("%w: %q in %s (attempt %d): %s",
				ErrPeerDead, procName, phase, attempt, reason)
		}
		if _, stale := m.Body.(*ManifestAckBody); stale {
			continue // manifest ack limping in from an abandoned attempt
		}
		ab, ok := m.Body.(*AckBody)
		if !ok {
			return nil, false, fmt.Errorf("core: malformed migration ack for %q: op %#x body %T",
				procName, m.Op, m.Body)
		}
		if ab.Attempt != attempt {
			if m.Op == OpMigrateAck && ab.Err == "" {
				return ab, true, nil
			}
			continue // stale ack of an abandoned attempt
		}
		if m.Op != wantOp {
			continue // duplicate of an already-consumed ack
		}
		return ab, false, nil
	}
}

// exchangeManifest runs the page-manifest round-trip for one attempt
// and applies the destination's answer to the RIMAS message: elided
// pages are stripped from the attachments (the rollback snapshot keeps
// the originals), and what remains is run through the modeled
// compressor when configured. Timeouts and dead peers surface as the
// usual recoverable phase errors.
func (mgr *Manager) exchangeManifest(p *sim.Proc, procName string, destPort ipc.PortID, reply *ipc.Port, ctx *Context, timeout time.Duration, attempt int, d vm.DedupConfig) error {
	ps := mgr.M.PageSize()
	mb, pages := buildManifest(procName, attempt, ctx.RIMAS, mgr.M.NetConfig(), ps)
	if pages == 0 {
		return nil
	}
	// Hashing sweeps the collapsed pages once, at manifest build.
	mgr.M.CPU.UseHigh(p, time.Duration(pages)*d.HashPerPageCPU)
	if err := mgr.M.IPC.Send(p, &ipc.Message{
		Op:        OpManifest,
		To:        destPort,
		ReplyTo:   reply.ID,
		Body:      mb,
		BodyBytes: mb.Bytes(),
	}); err != nil {
		return fmt.Errorf("%w: sending page manifest: %v", ErrPeerDead, err)
	}
	ack, err := mgr.awaitManifestAck(p, reply, attempt, timeout, procName)
	if err != nil {
		return err
	}
	elided := 0
	mem := make([]*ipc.MemAttachment, len(ctx.RIMAS.Mem))
	copy(mem, ctx.RIMAS.Mem)
	for i, a := range mem {
		if i >= len(mb.Atts) || !mb.Atts[i].WillShip {
			continue
		}
		n := len(mb.Atts[i].Hashes)
		if n == 0 {
			continue
		}
		if i < len(ack.Needed) && len(ack.Needed[i]) == (n+7)/8 {
			na, e := elideAttachment(a, ack.Needed[i], ps)
			mem[i] = na
			elided += e
		}
		if d.Compress {
			if mem[i] == a {
				// Don't stamp CompBytes onto the rollback snapshot's
				// attachment — compress a copy.
				cp := *a
				mem[i] = &cp
			}
			np := compressAttachment(mem[i], ps)
			mgr.M.CPU.UseHigh(p, time.Duration(np)*d.CompressPerPageCPU)
		}
	}
	ctx.RIMAS.Mem = mem
	if elided > 0 {
		if rec := mgr.M.Recorder(); rec != nil {
			rec.Inc("pages.elided", uint64(elided))
		}
	}
	return nil
}

// awaitManifestAck waits for the manifest answer of the current
// attempt, bounded by the per-phase timeout.
func (mgr *Manager) awaitManifestAck(p *sim.Proc, reply *ipc.Port, attempt int, timeout time.Duration, procName string) (*ManifestAckBody, error) {
	deadline := p.Now() + timeout
	for {
		var m *ipc.Message
		if timeout <= 0 {
			m = mgr.M.IPC.Receive(p, reply)
		} else {
			remain := deadline - p.Now()
			if remain <= 0 {
				return nil, fmt.Errorf("%w: %q awaiting manifest ack (attempt %d)",
					ErrPhaseTimeout, procName, attempt)
			}
			var got bool
			m, got = mgr.M.IPC.ReceiveTimeout(p, reply, remain)
			if !got {
				return nil, fmt.Errorf("%w: %q awaiting manifest ack (attempt %d)",
					ErrPhaseTimeout, procName, attempt)
			}
		}
		if m.Op == ipc.OpSendFailed {
			reason := "unknown"
			if sf, ok := m.Body.(*ipc.SendFailure); ok {
				reason = sf.Reason
			}
			return nil, fmt.Errorf("%w: %q awaiting manifest ack (attempt %d): %s",
				ErrPeerDead, procName, attempt, reason)
		}
		ab, ok := m.Body.(*ManifestAckBody)
		if !ok || ab.Attempt != attempt {
			continue // stale ack of an earlier attempt or phase
		}
		return ab, nil
	}
}

// rollback reinstates an excised process on the source machine from
// its own context messages, leaving it stopped at its migration point
// exactly as before the excise. The Context retains every collapsed
// page (strategies other than PreCopied always ship or cache the
// data), so insertion needs nothing from the network.
func (mgr *Manager) rollback(p *sim.Proc, pr *machine.Process, ctx *Context, memSnap []*ipc.MemAttachment) error {
	rb := ctx.RIMAS.Body.(*RIMASBody)
	if rb.PreCopied {
		return fmt.Errorf("core: cannot roll back %q: pre-copied pages live only at the destination", pr.Name)
	}
	ctx.RIMAS.Mem = memSnap
	newPr, _, err := InsertProcess(p, mgr.M, ctx.Core, ctx.RIMAS, mgr.Tun)
	if err != nil {
		return fmt.Errorf("core: rollback of %q: %w", pr.Name, err)
	}
	// The process is back where the excise found it: stopped at its
	// migration point, ready for a retry or a local resume.
	newPr.Status = machine.AtMigrationPoint
	newPr.AtMigrate.Open()
	mgr.state(pr.Name, "RolledBack")
	return nil
}
