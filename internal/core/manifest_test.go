package core

import (
	"testing"
	"time"

	"accentmig/internal/machine"
	"accentmig/internal/netlink"
	"accentmig/internal/sim"
	"accentmig/internal/trace"
	"accentmig/internal/vm"
)

// newDedupTestbed is newTestbed with the content-addressed store
// enabled on both machines (plus optional compression).
func newDedupTestbed(t *testing.T, compress bool) *testbed {
	t.Helper()
	k := sim.New()
	cfg := machine.Config{Dedup: vm.DedupConfig{Enabled: true, Compress: compress}}
	src := machine.New(k, "src", cfg)
	dst := machine.New(k, "dst", cfg)
	link := machine.Connect(src, dst, netlink.Config{})
	srcM := NewManager(src, DefaultTuning())
	dstM := NewManager(dst, DefaultTuning())
	src.Net.AddRoute(dstM.Port.ID, "dst")
	dst.Net.AddRoute(srcM.Port.ID, "src")
	return &testbed{k: k, src: src, dst: dst, srcM: srcM, dstM: dstM, link: link}
}

// dupProc builds a process whose pages cycle through `distinct`
// patterns — pages i and i+distinct are byte-identical.
func dupProc(t *testing.T, m *machine.Machine, name string, pages, distinct int) *machine.Process {
	t.Helper()
	pr, err := m.NewProcess(name, 1)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := pr.AS.Validate(0, uint64(pages)*512, "data")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < pages; i++ {
		pg := reg.Seg.Materialize(uint64(i), pattern(uint64(i%distinct)))
		pg.State.OnDisk = true
	}
	pr.Program = &trace.Program{Ops: []trace.Op{trace.MigratePoint{}}}
	return pr
}

// checkPages verifies every page of the migrated process against the
// cycling pattern.
func checkPages(t *testing.T, tb *testbed, name string, pages, distinct int) {
	t.Helper()
	npr, ok := tb.dst.Process(name)
	if !ok {
		t.Fatal("process missing on destination")
	}
	tb.k.Go("checker", func(p *sim.Proc) {
		for i := 0; i < pages; i++ {
			got, err := tb.dst.Pager.Read(p, npr.AS, vm.Addr(i*512), 512)
			if err != nil {
				t.Errorf("read page %d: %v", i, err)
				return
			}
			want := pattern(uint64(i % distinct))
			for j := range want {
				if got[j] != want[j] {
					t.Errorf("page %d corrupt at byte %d", i, j)
					return
				}
			}
		}
	})
	tb.k.Run()
}

// TestManifestElidesIntraMessageDuplicates: under pure-copy with the
// store on, only one copy of each distinct page ships; the rest are
// rebuilt at the destination as twins, byte-for-byte intact.
func TestManifestElidesIntraMessageDuplicates(t *testing.T) {
	tb := newDedupTestbed(t, false)
	pr := dupProc(t, tb.src, "job", 32, 4)
	tb.src.Start(pr)
	rep := tb.migrate(t, "job", Options{Strategy: PureCopy, WaitMigratePoint: true, HoldAtDest: true})
	if rep.Insert.ElidedPages != 32-4 {
		t.Errorf("ElidedPages = %d, want %d", rep.Insert.ElidedPages, 32-4)
	}
	if rep.Insert.ArrivedPages != 4 {
		t.Errorf("ArrivedPages = %d, want 4", rep.Insert.ArrivedPages)
	}
	checkPages(t, tb, "job", 32, 4)
}

// TestManifestElidesPriorVisitPages: a second migration carrying the
// same contents the destination has already indexed ships nothing —
// every page is a verified local hit.
func TestManifestElidesPriorVisitPages(t *testing.T) {
	tb := newDedupTestbed(t, false)
	first := dupProc(t, tb.src, "first", 8, 8)
	tb.src.Start(first)
	tb.migrate(t, "first", Options{Strategy: PureCopy, WaitMigratePoint: true, HoldAtDest: true})

	second := dupProc(t, tb.src, "second", 8, 8)
	tb.src.Start(second)
	rep := tb.migrate(t, "second", Options{Strategy: PureCopy, WaitMigratePoint: true, HoldAtDest: true})
	if rep.Insert.ElidedPages != 8 {
		t.Errorf("ElidedPages = %d, want 8 (all local hits)", rep.Insert.ElidedPages)
	}
	if rep.Insert.ArrivedPages != 0 {
		t.Errorf("ArrivedPages = %d, want 0", rep.Insert.ArrivedPages)
	}
	checkPages(t, tb, "second", 8, 8)
}

// TestManifestElidesZeroPages: materialized all-zero pages never ship.
func TestManifestElidesZeroPages(t *testing.T) {
	tb := newDedupTestbed(t, false)
	pr, err := tb.src.NewProcess("job", 1)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := pr.AS.Validate(0, 8*512, "data")
	if err != nil {
		t.Fatal(err)
	}
	zero := make([]byte, 512)
	for i := uint64(0); i < 8; i++ {
		data := zero
		if i%2 == 0 {
			data = pattern(i)
		}
		pg := reg.Seg.Materialize(i, data)
		pg.State.OnDisk = true
	}
	pr.Program = &trace.Program{Ops: []trace.Op{trace.MigratePoint{}}}
	tb.src.Start(pr)
	rep := tb.migrate(t, "job", Options{Strategy: PureCopy, WaitMigratePoint: true, HoldAtDest: true})
	if rep.Insert.ElidedPages != 4 {
		t.Errorf("ElidedPages = %d, want 4 (the zero pages)", rep.Insert.ElidedPages)
	}
	npr, _ := tb.dst.Process("job")
	tb.k.Go("checker", func(p *sim.Proc) {
		got, err := tb.dst.Pager.Read(p, npr.AS, 512, 512)
		if err != nil {
			t.Errorf("read: %v", err)
			return
		}
		for j, b := range got {
			if b != 0 {
				t.Errorf("zero page dirty at byte %d", j)
				return
			}
		}
	})
	tb.k.Run()
}

// TestManifestHintsServeFaultsLocally: under the resident-set strategy
// the lazy half rides IOUs with hash hints; faults on pages whose
// content already arrived with the resident set are served from the
// local index — no round trip to the backer.
func TestManifestHintsServeFaultsLocally(t *testing.T) {
	tb := newDedupTestbed(t, false)
	pr := dupProc(t, tb.src, "job", 16, 4)
	var res []vm.Addr
	for i := 0; i < 4; i++ {
		res = append(res, vm.Addr(i*512))
	}
	if err := tb.src.MakeResident(pr, res); err != nil {
		t.Fatal(err)
	}
	// Touch every page after landing: the 12 lazy ones are all
	// duplicates of the 4 resident pages that shipped.
	ops := []trace.Op{trace.MigratePoint{}}
	for i := 0; i < 16; i++ {
		ops = append(ops, trace.Touch{Addr: vm.Addr(i * 512)})
	}
	pr.Program = &trace.Program{Ops: ops}
	tb.src.Start(pr)
	tb.migrate(t, "job", Options{Strategy: ResidentSet, WaitMigratePoint: true})

	npr, _ := tb.dst.Process("job")
	var doneErr error
	tb.k.Go("wait", func(p *sim.Proc) { doneErr = npr.WaitDone(p) })
	tb.k.Run()
	if doneErr != nil {
		t.Fatal(doneErr)
	}
	st := tb.dst.Pager.Stats()
	if st.LocalServes == 0 {
		t.Errorf("no faults served from the local content index (imag faults: %d)", st.ImagFaults)
	}
	checkPages(t, tb, "job", 16, 4)
}

// TestManifestCompressionShrinksTransfer: the same migration with the
// modeled compressor on finishes its RIMAS transfer faster — pattern
// pages are stride-predictable, so they compress well.
func TestManifestCompressionShrinksTransfer(t *testing.T) {
	run := func(compress bool) time.Duration {
		tb := newDedupTestbed(t, compress)
		pr := dupProc(t, tb.src, "job", 64, 64)
		tb.src.Start(pr)
		rep := tb.migrate(t, "job", Options{Strategy: PureCopy, WaitMigratePoint: true, HoldAtDest: true})
		return rep.RIMASTransfer
	}
	plain := run(false)
	compressed := run(true)
	if compressed >= plain {
		t.Errorf("RIMAS transfer %v with compression, %v without — expected a win", compressed, plain)
	}
}

// TestManifestDisabledIsInert: with the store off (the default config)
// no manifest is exchanged and reports carry no elisions.
func TestManifestDisabledIsInert(t *testing.T) {
	tb := newTestbed(t)
	pr := dupProc(t, tb.src, "job", 16, 2)
	tb.src.Start(pr)
	rep := tb.migrate(t, "job", Options{Strategy: PureCopy, WaitMigratePoint: true, HoldAtDest: true})
	if rep.Insert.ElidedPages != 0 {
		t.Errorf("ElidedPages = %d with store disabled", rep.Insert.ElidedPages)
	}
	if rep.Insert.ArrivedPages != 16 {
		t.Errorf("ArrivedPages = %d, want 16", rep.Insert.ArrivedPages)
	}
	checkPages(t, tb, "job", 16, 2)
}

// TestManifestRollbackSurvivesElision: a migration that fails after
// the manifest exchange must roll back with the full page set — the
// elided attachments alias, never mutate, the originals.
func TestManifestRollbackSurvivesElision(t *testing.T) {
	tb := newDedupTestbed(t, false)
	pr := dupProc(t, tb.src, "job", 16, 2)
	// Touch every page after the failed migration resumes locally.
	ops := []trace.Op{trace.MigratePoint{}}
	for i := 0; i < 16; i++ {
		ops = append(ops, trace.Touch{Addr: vm.Addr(i * 512)})
	}
	pr.Program = &trace.Program{Ops: ops}
	tb.src.Start(pr)

	// Kill the destination manager port the moment the manifest has
	// been classified: the attachments are already elided when the
	// RIMAS transfer then dies.
	tb.k.Go("saboteur", func(p *sim.Proc) {
		for len(tb.dstM.recipes) == 0 {
			p.Sleep(10 * time.Millisecond)
		}
		tb.dst.IPC.RemovePort(tb.dstM.Port)
	})
	var migErr, doneErr error
	tb.k.Go("driver", func(p *sim.Proc) {
		_, migErr = tb.srcM.MigrateTo(p, "job", tb.dstM.Port.ID, Options{
			Strategy: PureCopy, WaitMigratePoint: true, AckTimeout: 5 * time.Second,
		})
		if migErr == nil {
			return
		}
		npr, ok := tb.src.Process("job")
		if !ok {
			t.Error("process missing at source after abort")
			return
		}
		doneErr = npr.WaitDone(p)
		// The rolled-back memory must be the full original set, not the
		// elided remnant the failed attempt had on the wire.
		for i := 0; i < 16; i++ {
			got, err := tb.src.Pager.Read(p, npr.AS, vm.Addr(i*512), 512)
			if err != nil {
				t.Errorf("read page %d after rollback: %v", i, err)
				return
			}
			want := pattern(uint64(i % 2))
			for j := range want {
				if got[j] != want[j] {
					t.Errorf("page %d corrupt after rollback at byte %d", i, j)
					return
				}
			}
		}
	})
	tb.k.RunUntil(10 * time.Minute)
	if migErr == nil {
		t.Fatal("migration to a dead manager succeeded")
	}
	if doneErr != nil {
		t.Fatalf("post-rollback execution: %v", doneErr)
	}
}
