package core

import (
	"encoding/binary"
	"fmt"
	"time"

	"accentmig/internal/ipc"
	"accentmig/internal/trace"
	"accentmig/internal/vm"
	"accentmig/internal/wire"
)

// This file registers wire codecs for the migration protocol bodies,
// making the Core and RIMAS context messages genuinely byte-
// serializable: the destination reconstructs the AMap, the run table,
// the port rights (with their pending mail), and the reference program
// from the frame alone. Pending-mail bodies without codecs of their
// own ride in the frame's extras, in order.

// enc/dec mirror wire's little helpers (kept private there; the small
// duplication buys package independence).
type enc struct{ b []byte }

func (w *enc) u8(v uint8)   { w.b = append(w.b, v) }
func (w *enc) u32(v uint32) { w.b = binary.BigEndian.AppendUint32(w.b, v) }
func (w *enc) u64(v uint64) { w.b = binary.BigEndian.AppendUint64(w.b, v) }
func (w *enc) i64(v int64)  { w.u64(uint64(v)) }
func (w *enc) dur(v time.Duration) {
	w.i64(int64(v))
}
func (w *enc) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}
func (w *enc) bytes(v []byte) {
	w.u32(uint32(len(v)))
	w.b = append(w.b, v...)
}
func (w *enc) str(v string) { w.bytes([]byte(v)) }

type dec struct {
	b   []byte
	off int
}

func (r *dec) need(n int) ([]byte, error) {
	if r.off+n > len(r.b) {
		return nil, fmt.Errorf("core: truncated body")
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v, nil
}
func (r *dec) u8() uint8 {
	v, err := r.need(1)
	if err != nil {
		panic(err)
	}
	return v[0]
}
func (r *dec) u32() uint32 {
	v, err := r.need(4)
	if err != nil {
		panic(err)
	}
	return binary.BigEndian.Uint32(v)
}
func (r *dec) u64() uint64 {
	v, err := r.need(8)
	if err != nil {
		panic(err)
	}
	return binary.BigEndian.Uint64(v)
}
func (r *dec) i64() int64         { return int64(r.u64()) }
func (r *dec) dur() time.Duration { return time.Duration(r.i64()) }
func (r *dec) boolv() bool        { return r.u8() != 0 }
func (r *dec) bytes() []byte {
	n := int(r.u32())
	v, err := r.need(n)
	if err != nil {
		panic(err)
	}
	out := make([]byte, n)
	copy(out, v)
	return out
}
func (r *dec) str() string { return string(r.bytes()) }

// guard converts the dec panics into errors at codec boundaries.
func guard(fn func() (any, error)) (v any, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			if e, ok := rec.(error); ok {
				v, err = nil, e
				return
			}
			panic(rec)
		}
	}()
	return fn()
}

func encodeAMap(w *enc, m *vm.AMap) {
	w.i64(int64(m.PageSize))
	w.u32(uint32(len(m.Entries)))
	for _, e := range m.Entries {
		w.u64(uint64(e.Start))
		w.u64(uint64(e.End))
		w.u8(uint8(e.Access))
	}
	w.i64(int64(m.Stats.Regions))
	w.i64(int64(m.Stats.Runs))
	w.i64(int64(m.Stats.MaterializedPages))
	w.u64(m.Stats.ValidatedPages)
}

func decodeAMap(r *dec) *vm.AMap {
	m := &vm.AMap{PageSize: int(r.i64())}
	n := int(r.u32())
	for i := 0; i < n; i++ {
		m.Entries = append(m.Entries, vm.AMapEntry{
			Start:  vm.Addr(r.u64()),
			End:    vm.Addr(r.u64()),
			Access: vm.Accessibility(r.u8()),
		})
	}
	m.Stats.Regions = int(r.i64())
	m.Stats.Runs = int(r.i64())
	m.Stats.MaterializedPages = int(r.i64())
	m.Stats.ValidatedPages = r.u64()
	return m
}

// trace op tags for the program codec.
const (
	opTagCompute = iota
	opTagIOWait
	opTagTouch
	opTagSeqScan
	opTagRandTouch
	opTagWSLoop
	opTagMigrate
)

func encodeProgram(w *enc, pr *trace.Program) error {
	if pr == nil {
		w.u32(0)
		return nil
	}
	w.u32(uint32(len(pr.Ops)))
	for _, op := range pr.Ops {
		switch o := op.(type) {
		case trace.Compute:
			w.u8(opTagCompute)
			w.dur(o.D)
		case trace.IOWait:
			w.u8(opTagIOWait)
			w.dur(o.D)
		case trace.Touch:
			w.u8(opTagTouch)
			w.u64(uint64(o.Addr))
			w.bool(o.Write)
		case trace.SeqScan:
			w.u8(opTagSeqScan)
			w.u64(uint64(o.Start))
			w.u64(o.Bytes)
			w.u64(o.Stride)
			w.bool(o.Write)
			w.dur(o.PerTouch)
		case trace.RandTouch:
			w.u8(opTagRandTouch)
			w.u64(uint64(o.Start))
			w.u64(o.Bytes)
			w.i64(int64(o.Count))
			w.u64(o.Seed)
			w.bool(o.Write)
			w.dur(o.PerTouch)
		case trace.WSLoop:
			w.u8(opTagWSLoop)
			w.u64(uint64(o.Start))
			w.i64(int64(o.Pages))
			w.i64(int64(o.Iters))
			w.dur(o.Compute)
			w.bool(o.Write)
		case trace.MigratePoint:
			w.u8(opTagMigrate)
		default:
			return fmt.Errorf("core: cannot encode trace op %T", op)
		}
	}
	return nil
}

func decodeProgram(r *dec) (*trace.Program, error) {
	n := int(r.u32())
	if n == 0 {
		return nil, nil
	}
	pr := &trace.Program{}
	for i := 0; i < n; i++ {
		switch tag := r.u8(); tag {
		case opTagCompute:
			pr.Ops = append(pr.Ops, trace.Compute{D: r.dur()})
		case opTagIOWait:
			pr.Ops = append(pr.Ops, trace.IOWait{D: r.dur()})
		case opTagTouch:
			pr.Ops = append(pr.Ops, trace.Touch{Addr: vm.Addr(r.u64()), Write: r.boolv()})
		case opTagSeqScan:
			pr.Ops = append(pr.Ops, trace.SeqScan{
				Start: vm.Addr(r.u64()), Bytes: r.u64(), Stride: r.u64(),
				Write: r.boolv(), PerTouch: r.dur(),
			})
		case opTagRandTouch:
			pr.Ops = append(pr.Ops, trace.RandTouch{
				Start: vm.Addr(r.u64()), Bytes: r.u64(), Count: int(r.i64()),
				Seed: r.u64(), Write: r.boolv(), PerTouch: r.dur(),
			})
		case opTagWSLoop:
			pr.Ops = append(pr.Ops, trace.WSLoop{
				Start: vm.Addr(r.u64()), Pages: int(r.i64()), Iters: int(r.i64()),
				Compute: r.dur(), Write: r.boolv(),
			})
		case opTagMigrate:
			pr.Ops = append(pr.Ops, trace.MigratePoint{})
		default:
			return nil, fmt.Errorf("core: unknown trace op tag %d", tag)
		}
	}
	return pr, nil
}

func init() {
	wire.RegisterBody(OpCore, wire.BodyCodec{
		Encode: func(v any) ([]byte, []any, error) {
			cb, ok := v.(*CoreBody)
			if !ok {
				return nil, nil, fmt.Errorf("want *CoreBody, got %T", v)
			}
			w := &enc{}
			var extras []any
			w.str(cb.ProcName)
			encodeAMap(w, cb.AMap)
			w.u32(uint32(len(cb.Rights)))
			for _, rt := range cb.Rights {
				w.u64(uint64(rt.ID))
				w.str(rt.Name)
				w.u32(uint32(len(rt.Pending)))
				for _, pm := range rt.Pending {
					frame, ex, err := wire.EncodeMessage(pm)
					if err != nil {
						return nil, nil, fmt.Errorf("pending mail: %w", err)
					}
					w.bytes(frame)
					w.u32(uint32(len(ex)))
					extras = append(extras, ex...)
				}
			}
			w.i64(int64(cb.MicrostateBytes))
			w.i64(int64(cb.KernelStackBytes))
			w.i64(int64(cb.PCBBytes))
			w.i64(int64(cb.PC))
			if err := encodeProgram(w, cb.Program); err != nil {
				return nil, nil, err
			}
			w.i64(int64(cb.Prefetch))
			w.i64(int64(cb.Attempt))
			return w.b, extras, nil
		},
		Decode: func(b []byte, extras []any) (any, error) {
			return guard(func() (any, error) {
				r := &dec{b: b}
				cb := &CoreBody{ProcName: r.str()}
				cb.AMap = decodeAMap(r)
				nRights := int(r.u32())
				for i := 0; i < nRights; i++ {
					rt := PortRight{ID: ipc.PortID(r.u64()), Name: r.str()}
					nMail := int(r.u32())
					for j := 0; j < nMail; j++ {
						frame := r.bytes()
						nex := int(r.u32())
						if nex > len(extras) {
							return nil, fmt.Errorf("core: pending mail wants %d extras, have %d", nex, len(extras))
						}
						ex := extras[:nex]
						extras = extras[nex:]
						pm, err := wire.DecodeMessage(frame, ex)
						if err != nil {
							return nil, fmt.Errorf("pending mail: %w", err)
						}
						rt.Pending = append(rt.Pending, pm)
					}
					cb.Rights = append(cb.Rights, rt)
				}
				cb.MicrostateBytes = int(r.i64())
				cb.KernelStackBytes = int(r.i64())
				cb.PCBBytes = int(r.i64())
				cb.PC = int(r.i64())
				var err error
				cb.Program, err = decodeProgram(r)
				if err != nil {
					return nil, err
				}
				cb.Prefetch = int(r.i64())
				cb.Attempt = int(r.i64())
				return cb, nil
			})
		},
	})

	wire.RegisterBody(OpRIMAS, wire.BodyCodec{
		Encode: func(v any) ([]byte, []any, error) {
			rb, ok := v.(*RIMASBody)
			if !ok {
				return nil, nil, fmt.Errorf("want *RIMASBody, got %T", v)
			}
			w := &enc{}
			w.str(rb.ProcName)
			w.bool(rb.HoldAtDest)
			w.bool(rb.PreCopied)
			w.u32(uint32(len(rb.Runs)))
			for _, run := range rb.Runs {
				w.u64(uint64(run.VA))
				w.u32(run.Pages)
				w.bool(run.Resident)
			}
			w.i64(int64(rb.Attempt))
			return w.b, nil, nil
		},
		Decode: func(b []byte, _ []any) (any, error) {
			return guard(func() (any, error) {
				r := &dec{b: b}
				rb := &RIMASBody{ProcName: r.str(), HoldAtDest: r.boolv(), PreCopied: r.boolv()}
				n := int(r.u32())
				for i := 0; i < n; i++ {
					rb.Runs = append(rb.Runs, CollapsedRun{
						VA: vm.Addr(r.u64()), Pages: r.u32(), Resident: r.boolv(),
					})
				}
				rb.Attempt = int(r.i64())
				return rb, nil
			})
		},
	})

	ackCodec := wire.BodyCodec{
		Encode: func(v any) ([]byte, []any, error) {
			ab, ok := v.(*AckBody)
			if !ok {
				return nil, nil, fmt.Errorf("want *AckBody, got %T", v)
			}
			w := &enc{}
			w.str(ab.ProcName)
			w.dur(ab.CoreArrived)
			w.dur(ab.RIMASArrived)
			w.dur(ab.InsertDone)
			w.dur(ab.Insert.Overall)
			w.i64(int64(ab.Insert.ArrivedPages))
			w.i64(int64(ab.Insert.IOURuns))
			w.i64(int64(ab.Insert.ZeroRuns))
			w.i64(int64(ab.Insert.ElidedPages))
			w.i64(int64(ab.Insert.ResumedPages))
			w.i64(int64(ab.Insert.RepairedPages))
			w.str(ab.Err)
			w.i64(int64(ab.Attempt))
			return w.b, nil, nil
		},
		Decode: func(b []byte, _ []any) (any, error) {
			return guard(func() (any, error) {
				r := &dec{b: b}
				ab := &AckBody{ProcName: r.str()}
				ab.CoreArrived = r.dur()
				ab.RIMASArrived = r.dur()
				ab.InsertDone = r.dur()
				ab.Insert.Overall = r.dur()
				ab.Insert.ArrivedPages = int(r.i64())
				ab.Insert.IOURuns = int(r.i64())
				ab.Insert.ZeroRuns = int(r.i64())
				ab.Insert.ElidedPages = int(r.i64())
				ab.Insert.ResumedPages = int(r.i64())
				ab.Insert.RepairedPages = int(r.i64())
				ab.Err = r.str()
				ab.Attempt = int(r.i64())
				return ab, nil
			})
		},
	}
	wire.RegisterBody(OpMigrateAck, ackCodec)
	wire.RegisterBody(OpCoreAck, ackCodec)

	wire.RegisterBody(OpPreCopy, wire.BodyCodec{
		Encode: func(v any) ([]byte, []any, error) {
			pb, ok := v.(*PreCopyBody)
			if !ok {
				return nil, nil, fmt.Errorf("want *PreCopyBody, got %T", v)
			}
			w := &enc{}
			w.str(pb.ProcName)
			w.i64(int64(pb.Round))
			return w.b, nil, nil
		},
		Decode: func(b []byte, _ []any) (any, error) {
			return guard(func() (any, error) {
				r := &dec{b: b}
				return &PreCopyBody{ProcName: r.str(), Round: int(r.i64())}, nil
			})
		},
	})
	wire.RegisterBody(OpPreCopyAck, ackCodec)
}
