package core

import (
	"fmt"

	"accentmig/internal/ipc"
	"accentmig/internal/netmsg"
	"accentmig/internal/vm"
	"accentmig/internal/wire"
)

// The page manifest is the content-addressed store's wire protocol:
// before the RIMAS message ships, the source sends the destination one
// hash per collapsed page (OpManifest), and the destination answers
// with the subset it cannot reconstruct locally (OpManifestAck). Only
// those pages ship. Everything the destination elides it rebuilds at
// insert time from a retained recipe: zero pages from nothing,
// content-index hits from its own memory, intra-message duplicates
// from the first shipped copy, and — on a retry — pages the delivery
// ledger retained from an earlier failed attempt. Hashes for
// attachments the transport
// will absorb as IOUs ride along too — not to elide bytes (none ship),
// but to seed fault-time hints so later faults can be served from the
// local index or the nearest holder instead of the origin backer.

// IPC operation codes (continuing the 0x2xxx migration block).
const (
	// OpManifest carries the page-hash manifest (Body: *ManifestBody).
	OpManifest = 0x2007
	// OpManifestAck answers with needed-page bitmaps (Body:
	// *ManifestAckBody).
	OpManifestAck = 0x2008
)

// ManifestAtt lists one RIMAS attachment's page hashes in dense page
// order. WillShip records the source's prediction of the transport's
// absorb decision: true means the pages physically ship (and are
// candidates for elision), false means they become IOUs (and the
// hashes only seed fault hints). Attachments the manifest cannot
// describe (IOUs, non-dense runs) appear with no hashes to keep
// ordinals aligned with the RIMAS attachment list.
type ManifestAtt struct {
	WillShip bool
	Hashes   []uint64
}

// ManifestBody is the OpManifest payload.
type ManifestBody struct {
	ProcName string
	Attempt  int
	Atts     []ManifestAtt
}

// Bytes prices the manifest for wire accounting: 8 bytes per page hash
// (indices are implicit in the dense ordering) plus small headers.
func (mb *ManifestBody) Bytes() int {
	n := 32
	for _, a := range mb.Atts {
		n += 16 + 8*len(a.Hashes)
	}
	return n
}

// ManifestAckBody is the OpManifestAck payload: one needed-page bitmap
// per manifest attachment (bit set = page must ship), nil for
// attachments that will not ship.
type ManifestAckBody struct {
	ProcName string
	Attempt  int
	Needed   [][]byte
}

// Bytes prices the ack: one bit per page plus small headers.
func (ab *ManifestAckBody) Bytes() int {
	n := 32
	for _, bm := range ab.Needed {
		n += 16 + len(bm)
	}
	return n
}

// denseFromZero reports whether the attachment's pages are a single
// run numbered densely from zero — the shape every collapsed RIMAS
// attachment has, and the shape the manifest's implicit page ordinals
// rely on.
func denseFromZero(a *ipc.MemAttachment) bool {
	return len(a.Runs) == 1 && a.Runs[0].Index == 0
}

// buildManifest hashes every describable data attachment of the RIMAS
// message and predicts, per attachment, whether the transport will
// physically ship it. It returns the manifest and the total page count
// hashed (zero means the exchange is pointless and should be skipped).
func buildManifest(procName string, attempt int, rimas *ipc.Message, net netmsg.Config, ps int) (*ManifestBody, int) {
	mb := &ManifestBody{ProcName: procName, Attempt: attempt}
	pages := 0
	for _, a := range rimas.Mem {
		ma := ManifestAtt{}
		if a.Kind == ipc.AttachData && a.PageCount() > 0 && denseFromZero(a) {
			ma.WillShip = !net.WillAbsorb(a.Copy, rimas.NoIOUs, a.PageCount())
			run := a.Runs[0]
			for j := 0; j < run.Count; j++ {
				h, _ := vm.HashPage(run.Page(j, ps), ps)
				ma.Hashes = append(ma.Hashes, h)
			}
			pages += len(ma.Hashes)
		}
		mb.Atts = append(mb.Atts, ma)
	}
	return mb, pages
}

// Recipe actions: how the destination obtains each page of a manifest
// attachment at insert time.
const (
	// actShip: the page arrives in the (elided) RIMAS runs.
	actShip uint8 = iota
	// actZero: all-zero page, reborn from nothing.
	actZero
	// actLocal: identical content already resident at the destination;
	// the classified bytes were captured from the content index.
	actLocal
	// actTwin: duplicate of an earlier shipped page in this same
	// migration; copied from the twin once it is materialized.
	actTwin
	// actHint: the page rides an IOU; the hash seeds a fault-time hint.
	actHint
	// actResume: the page's content already crossed the wire during an
	// earlier failed attempt and was retained in the delivery ledger;
	// the classified bytes were captured from it.
	actResume
)

type recipeAct struct {
	kind    uint8
	hash    uint64
	data    []byte // actLocal: page bytes captured at classification
	twinAtt int    // actTwin: ordinal of the attachment holding the twin
	twinIdx int    // actTwin: page index of the twin within it
}

type recipeAtt struct {
	willShip bool
	acts     []recipeAct
}

// dedupRecipe is the destination's retained side of one manifest
// exchange: everything insertProcess needs to rebuild the pages the
// source was told not to send.
type dedupRecipe struct {
	attempt int
	atts    []recipeAtt
}

// classifyManifest decides, page by page, what the destination can
// reconstruct without the wire. index may be nil (store disabled at
// the destination): zero pages and intra-message duplicates still
// elide. led may be nil (resume disabled): a retry's retained pages
// then reship like any others. Local-hit bytes are copied out of the
// index immediately — the underlying frames may be recycled before
// insert time; ledger bytes are already stable copies.
func classifyManifest(mb *ManifestBody, index *vm.ContentIndex, led *vm.DeliveryLedger, ps int) (*dedupRecipe, *ManifestAckBody) {
	rcp := &dedupRecipe{attempt: mb.Attempt}
	ack := &ManifestAckBody{ProcName: mb.ProcName, Attempt: mb.Attempt}
	type src struct{ att, idx int }
	seen := make(map[uint64]src)
	for ai, att := range mb.Atts {
		ra := recipeAtt{willShip: att.WillShip}
		var bitmap []byte
		if att.WillShip && len(att.Hashes) > 0 {
			bitmap = make([]byte, (len(att.Hashes)+7)/8)
		}
		for i, h := range att.Hashes {
			if !att.WillShip {
				ra.acts = append(ra.acts, recipeAct{kind: actHint, hash: h})
				continue
			}
			switch {
			case h == vm.ZeroHash:
				ra.acts = append(ra.acts, recipeAct{kind: actZero})
			default:
				if data, ok := index.Lookup(h); ok {
					cp := make([]byte, len(data))
					copy(cp, data)
					ra.acts = append(ra.acts, recipeAct{kind: actLocal, hash: h, data: cp})
				} else if data := led.Lookup(mb.ProcName, h, ps); data != nil {
					ra.acts = append(ra.acts, recipeAct{kind: actResume, hash: h, data: data})
				} else if t, dup := seen[h]; dup {
					ra.acts = append(ra.acts, recipeAct{kind: actTwin, hash: h, twinAtt: t.att, twinIdx: t.idx})
				} else {
					seen[h] = src{ai, i}
					bitmap[i>>3] |= 1 << (i & 7)
					ra.acts = append(ra.acts, recipeAct{kind: actShip, hash: h})
				}
			}
		}
		rcp.atts = append(rcp.atts, ra)
		ack.Needed = append(ack.Needed, bitmap)
	}
	return rcp, ack
}

// elideAttachment returns a copy of a keeping only the pages whose bit
// is set in needed, grouped back into contiguous runs. Run data slices
// alias the original dense buffer — nothing is copied, and the
// original attachment (held by the rollback snapshot) is untouched.
func elideAttachment(a *ipc.MemAttachment, needed []byte, ps int) (*ipc.MemAttachment, int) {
	na := *a
	na.Runs = nil
	run := a.Runs[0]
	elided := 0
	for j := 0; j < run.Count; j++ {
		if needed[j>>3]&(1<<(j&7)) == 0 {
			elided++
			continue
		}
		lo := j * ps
		hi := lo + ps
		if hi > len(run.Data) {
			hi = len(run.Data)
		}
		if n := len(na.Runs); n > 0 && na.Runs[n-1].Index+uint64(na.Runs[n-1].Count) == uint64(j) {
			last := &na.Runs[n-1]
			last.Count++
			last.Data = run.Data[int(last.Index)*ps : hi]
		} else {
			na.Runs = append(na.Runs, vm.PageRun{Index: uint64(j), Count: 1, Data: run.Data[lo:hi]})
		}
	}
	return &na, elided
}

// compressAttachment runs the modeled compressor over the attachment's
// remaining pages, stamping CompBytes when the model actually wins.
// It returns the page count compressed (the CPU cost is paid per page
// attempted, win or lose).
func compressAttachment(a *ipc.MemAttachment, ps int) int {
	comp, pages := 0, 0
	for _, run := range a.Runs {
		for j := 0; j < run.Count; j++ {
			comp += vm.ModelCompressedSize(run.Page(j, ps), ps)
			pages++
		}
	}
	if pages > 0 && comp < a.DataBytes() {
		a.CompBytes = comp
	}
	return pages
}

func init() {
	wire.RegisterBody(OpManifest, wire.BodyCodec{
		Encode: func(v any) ([]byte, []any, error) {
			mb, ok := v.(*ManifestBody)
			if !ok {
				return nil, nil, fmt.Errorf("want *ManifestBody, got %T", v)
			}
			w := &enc{}
			w.str(mb.ProcName)
			w.i64(int64(mb.Attempt))
			w.u32(uint32(len(mb.Atts)))
			for _, a := range mb.Atts {
				w.bool(a.WillShip)
				w.u32(uint32(len(a.Hashes)))
				for _, h := range a.Hashes {
					w.u64(h)
				}
			}
			return w.b, nil, nil
		},
		Decode: func(b []byte, _ []any) (any, error) {
			return guard(func() (any, error) {
				r := &dec{b: b}
				mb := &ManifestBody{ProcName: r.str(), Attempt: int(r.i64())}
				n := int(r.u32())
				for i := 0; i < n; i++ {
					a := ManifestAtt{WillShip: r.boolv()}
					np := int(r.u32())
					for j := 0; j < np; j++ {
						a.Hashes = append(a.Hashes, r.u64())
					}
					mb.Atts = append(mb.Atts, a)
				}
				return mb, nil
			})
		},
	})

	wire.RegisterBody(OpManifestAck, wire.BodyCodec{
		Encode: func(v any) ([]byte, []any, error) {
			ab, ok := v.(*ManifestAckBody)
			if !ok {
				return nil, nil, fmt.Errorf("want *ManifestAckBody, got %T", v)
			}
			w := &enc{}
			w.str(ab.ProcName)
			w.i64(int64(ab.Attempt))
			w.u32(uint32(len(ab.Needed)))
			for _, bm := range ab.Needed {
				w.bytes(bm)
			}
			return w.b, nil, nil
		},
		Decode: func(b []byte, _ []any) (any, error) {
			return guard(func() (any, error) {
				r := &dec{b: b}
				ab := &ManifestAckBody{ProcName: r.str(), Attempt: int(r.i64())}
				n := int(r.u32())
				for i := 0; i < n; i++ {
					bm := r.bytes()
					if len(bm) == 0 {
						bm = nil
					}
					ab.Needed = append(ab.Needed, bm)
				}
				return ab, nil
			})
		},
	})
}
