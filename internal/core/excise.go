package core

import (
	"fmt"
	"time"

	"accentmig/internal/ipc"
	"accentmig/internal/machine"
	"accentmig/internal/obs"
	"accentmig/internal/sim"
	"accentmig/internal/trace"
	"accentmig/internal/vm"
)

// IPC operation codes for the migration protocol.
const (
	// OpCore carries the Core context message (Body: *CoreBody).
	OpCore = 0x2001
	// OpRIMAS carries the collapsed address space (Body: *RIMASBody).
	OpRIMAS = 0x2002
	// OpMigrateAck confirms insertion (Body: *AckBody).
	OpMigrateAck = 0x2003
	// OpCoreAck confirms Core-context arrival (Body: *AckBody).
	OpCoreAck = 0x2004
)

// PortRight names one transferred port, together with the mail still
// queued on it — relocation must not lose undelivered messages.
type PortRight struct {
	ID      ipc.PortID
	Name    string
	Pending []*ipc.Message
}

// CoreBody is the first context message: everything but the address
// space contents — microstate, kernel stack, PCB, port rights, and the
// AMap describing the whole address space.
type CoreBody struct {
	ProcName         string
	AMap             *vm.AMap
	Rights           []PortRight
	MicrostateBytes  int
	KernelStackBytes int
	PCBBytes         int
	PC               int
	Program          *trace.Program
	Prefetch         int
	// Attempt numbers the migration try this context belongs to, so
	// acknowledgements delayed past a retransmission are recognized as
	// stale by the source.
	Attempt int
}

// CollapsedRun describes one RealMem run of the collapsed RIMAS area:
// Pages pages that belong at VA, drawn sequentially from the resident
// or the lazy collapsed attachment (§3.1: the address space is
// "collapsed into a contiguous area"; this compact table is what lets
// InsertProcess unfold it again).
type CollapsedRun struct {
	VA       vm.Addr
	Pages    uint32
	Resident bool
}

// collapsedRunWireBytes prices one run-table entry.
const collapsedRunWireBytes = 10

// RIMASBody tags the RIMAS message with its process and carries the
// collapsed-area run table; the memory itself travels as the message's
// attachments.
type RIMASBody struct {
	ProcName string
	// HoldAtDest leaves the reconstituted process stopped.
	HoldAtDest bool
	// PreCopied means the page contents were staged ahead of time by
	// OpPreCopy rounds; the destination fills runs from its stage.
	PreCopied bool
	// Runs is the collapsed-area reconstruction table in VA order.
	Runs []CollapsedRun
	// Attempt numbers the migration try (see CoreBody.Attempt).
	Attempt int
}

// Bytes prices the body for wire accounting.
func (rb *RIMASBody) Bytes() int { return 64 + collapsedRunWireBytes*len(rb.Runs) }

// MigrationProc names the migrating process. The transport's delivery
// ledger uses it to key page content retained from a transfer that
// died after some fragments were acknowledged.
func (rb *RIMASBody) MigrationProc() string { return rb.ProcName }

// AckBody reports insertion timestamps back to the source manager.
type AckBody struct {
	ProcName     string
	CoreArrived  time.Duration
	RIMASArrived time.Duration
	InsertDone   time.Duration
	Insert       InsertTimings
	Err          string
	// Attempt echoes the request's attempt number back to the source.
	Attempt int
}

// ExciseTimings breaks down ExciseProcess cost as Table 4-4 does.
type ExciseTimings struct {
	AMap    time.Duration
	RIMAS   time.Duration
	Overall time.Duration
}

// Context is an excised process, ready for shipment as two
// self-contained IPC messages.
type Context struct {
	Core    *ipc.Message
	RIMAS   *ipc.Message
	Timings ExciseTimings

	// RealPages and ResidentPages summarize what was collapsed, for
	// experiment reporting.
	RealPages     int
	ResidentPages int
	Attachments   int
}

// ExciseProcess removes the complete context of pr from machine m
// (§3.1). After it returns, the process has ceased to exist at the
// source: its frames are freed, its ports withdrawn (their rights
// travel in the Core message), and its name removed from the process
// table. The strategy shapes the RIMAS message's copy flags.
func ExciseProcess(p *sim.Proc, m *machine.Machine, pr *machine.Process, strat Strategy, prefetch int, tun Tuning) (*Context, error) {
	if pr.Host != m {
		return nil, fmt.Errorf("core: excise %q: not resident on %s", pr.Name, m.Name)
	}
	start := p.Now()

	// Phase 1: AMap construction. Cost grows with map complexity.
	amap := vm.BuildAMap(pr.AS)
	m.CPU.UseHigh(p, tun.AMapBase+
		time.Duration(amap.Stats.Runs)*tun.AMapPerEntry+
		time.Duration(amap.Stats.MaterializedPages)*tun.AMapPerRealPage)
	amapDone := p.Now()

	// Phase 2: collapse RealMem into one contiguous area (§3.1). Under
	// the resident-set strategy the area is split in two — the resident
	// pages (to be physically copied) and the rest (IOU-able) — and the
	// run table records how to unfold it. Pre-existing imaginary runs
	// keep their own IOU descriptors.
	ctx := &Context{}
	var runs []CollapsedRun
	lazy := &ipc.MemAttachment{Kind: ipc.AttachData, Collapsed: true}
	res := &ipc.MemAttachment{Kind: ipc.AttachData, Collapsed: true, Resident: true, Copy: true}
	var imagAtts []*ipc.MemAttachment
	var resident, real int
	for _, e := range amap.Entries {
		switch e.Access {
		case vm.RealMem:
			rs, nres, n := collapseRealRun(pr.AS, e, strat, lazy, res)
			runs = append(runs, rs...)
			resident += nres
			real += n
		case vm.ImagMem:
			att, err := collapseImagRun(pr.AS, e)
			if err != nil {
				return nil, err
			}
			imagAtts = append(imagAtts, att)
		}
		// RealZeroMem runs travel only in the AMap.
	}
	var attachments []*ipc.MemAttachment
	if res.PageCount() > 0 {
		res.Size = uint64(res.PageCount()) * uint64(pr.AS.PageSize())
		attachments = append(attachments, res)
	}
	if lazy.PageCount() > 0 {
		lazy.Size = uint64(lazy.PageCount()) * uint64(pr.AS.PageSize())
		attachments = append(attachments, lazy)
	}
	attachments = append(attachments, imagAtts...)
	m.CPU.UseHigh(p, tun.CollapseBase+
		time.Duration(resident)*tun.CollapsePerResidentPage+
		time.Duration(real)*tun.CollapsePerRealPage)
	collapseDone := p.Now()

	// The process ceases to exist here.
	segs := map[*vm.Segment]bool{}
	for _, r := range pr.AS.Regions() {
		segs[r.Seg] = true
	}
	for seg := range segs {
		m.Phys.RemoveSegment(seg)
		// The collapsed attachments own copies of every page image, so
		// the dead process's frames can go straight back to the pool.
		seg.ReleaseFrames()
	}
	rights := make([]PortRight, 0, len(pr.Ports))
	pendingBytes := 0
	for _, port := range pr.Ports {
		mail := port.Drain()
		for _, pm := range mail {
			pendingBytes += pm.WireBytes()
		}
		rights = append(rights, PortRight{ID: port.ID, Name: port.Name, Pending: mail})
		m.IPC.RemovePort(port)
	}
	m.Remove(pr.Name)
	pr.Status = machine.Excised
	pr.Host = nil
	if m.K.Tracing() {
		m.K.Emit(obs.Event{
			Kind:    obs.StateChange,
			Machine: m.Name,
			Proc:    pr.Name,
			Name:    machine.Excised.String(),
		})
	}

	coreBody := &CoreBody{
		ProcName:         pr.Name,
		AMap:             amap,
		Rights:           rights,
		MicrostateBytes:  pr.MicrostateBytes,
		KernelStackBytes: pr.KernelStackBytes,
		PCBBytes:         pr.PCBBytes,
		PC:               pr.PC,
		Program:          pr.Program,
		Prefetch:         prefetch,
	}
	ctx.Core = &ipc.Message{
		Op:        OpCore,
		Body:      coreBody,
		BodyBytes: pr.ContextBytes() + amap.WireBytes() + 16*len(rights) + pendingBytes,
	}
	// Only the resident-set strategy needs the residency-split run
	// table on the wire; the other strategies reconstruct the collapsed
	// area directly from the Core message's AMap, keeping the RIMAS
	// message tiny (the paper's near-constant ≈0.2 s IOU transfers).
	if strat != ResidentSet {
		runs = nil
	}
	rimasBody := &RIMASBody{ProcName: pr.Name, Runs: runs, PreCopied: strat == PreCopied}
	ctx.RIMAS = &ipc.Message{
		Op:        OpRIMAS,
		Body:      rimasBody,
		BodyBytes: rimasBody.Bytes(),
		Mem:       attachments,
		NoIOUs:    strat == PureCopy,
	}
	ctx.Timings = ExciseTimings{
		AMap:    amapDone - start,
		RIMAS:   collapseDone - amapDone,
		Overall: p.Now() - start,
	}
	ctx.RealPages = real
	ctx.ResidentPages = resident
	ctx.Attachments = len(attachments)
	return ctx, nil
}

// collapseRealRun appends one RealMem accessibility run to the
// collapsed area. Under the resident-set strategy the run is split at
// residency boundaries, resident pages going to the res attachment
// (physically copied) and the rest to lazy; the other strategies keep
// the run whole in the lazy attachment (pure-copy forces physical
// transmission with the message-level NoIOUs bit instead).
func collapseRealRun(as *vm.AddressSpace, e vm.AMapEntry, strat Strategy, lazy, res *ipc.MemAttachment) ([]CollapsedRun, int, int) {
	ps := uint64(as.PageSize())
	var runs []CollapsedRun
	resident, total := 0, 0
	for a := e.Start; a < e.End; a += vm.Addr(ps) {
		pl, ok := as.Resolve(a)
		if !ok {
			continue
		}
		pg := pl.Seg.Page(pl.PageIdx)
		if pg == nil {
			continue
		}
		total++
		isRes := pg.State.Resident
		if isRes {
			resident++
		}
		dst := lazy
		markRes := false
		if strat == ResidentSet && isRes {
			dst = res
			markRes = true
		}
		if strat == PreCopied {
			dst = nil // contents already staged at the destination
		}
		if n := len(runs); n > 0 && runs[n-1].Resident == markRes &&
			e.Start <= runs[n-1].VA && a == runs[n-1].VA+vm.Addr(uint64(runs[n-1].Pages)*ps) {
			runs[n-1].Pages++
		} else {
			runs = append(runs, CollapsedRun{VA: a, Pages: 1, Resident: markRes})
		}
		if dst != nil {
			appendCollapsedPage(dst, pg.Data, int(ps))
		}
	}
	return runs, resident, total
}

// appendCollapsedPage copies one page image onto the tail of a
// collapsed attachment. Collapsed pages are densely numbered from zero,
// so the whole attachment is a single run whose buffer the attachment
// owns — the source segment's frames can be recycled the moment the
// process is excised, and the staged context survives rollback.
func appendCollapsedPage(dst *ipc.MemAttachment, data []byte, pageSize int) {
	if len(dst.Runs) == 0 {
		dst.Runs = append(dst.Runs, vm.PageRun{Index: 0})
	}
	run := &dst.Runs[0]
	run.Data = append(run.Data, data...)
	if short := run.Count*pageSize + pageSize - len(run.Data); short > 0 {
		run.Data = append(run.Data, make([]byte, short)...)
	}
	run.Count++
}

// collapseImagRun re-expresses a pre-existing imaginary run as an IOU
// attachment that keeps the original backing identity.
func collapseImagRun(as *vm.AddressSpace, e vm.AMapEntry) (*ipc.MemAttachment, error) {
	pl, ok := as.Resolve(e.Start)
	if !ok {
		return nil, fmt.Errorf("core: imaginary run at %#x unresolvable", e.Start)
	}
	segByteOff := pl.PageIdx * uint64(as.PageSize())
	return &ipc.MemAttachment{
		Kind:    ipc.AttachIOU,
		VA:      e.Start,
		Size:    e.Size(),
		SegID:   pl.Seg.ID,
		SegOff:  segByteOff,
		SegSize: pl.Seg.Size,
		Backing: ipc.PortID(pl.Seg.BackingPort),
	}, nil
}
