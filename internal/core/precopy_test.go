package core

import (
	"testing"
	"time"

	"accentmig/internal/machine"
	"accentmig/internal/sim"
	"accentmig/internal/trace"
	"accentmig/internal/vm"
)

// writerProc builds a process that keeps writing to a window of pages —
// the adversarial case for pre-copy, since every round re-dirties data.
func (tb *testbed) writerProc(t *testing.T, name string, pages, hotPages, bursts int) *machine.Process {
	t.Helper()
	pr, err := tb.src.NewProcess(name, 1)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := pr.AS.Validate(0, uint64(pages)*512, "data")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < pages; i++ {
		pg := reg.Seg.Materialize(uint64(i), pattern(uint64(i)))
		pg.State.OnDisk = true
	}
	var ops []trace.Op
	for b := 0; b < bursts; b++ {
		ops = append(ops,
			trace.Compute{D: 100 * time.Millisecond},
			trace.Touch{Addr: vm.Addr(512 * (b % hotPages)), Write: true},
		)
	}
	ops = append(ops, trace.Compute{D: 200 * time.Millisecond})
	pr.Program = &trace.Program{Ops: ops}
	return pr
}

func TestPreCopyMigration(t *testing.T) {
	tb := newTestbed(t)
	tb.writerProc(t, "writer", 64, 8, 60)
	pr, _ := tb.src.Process("writer")
	tb.src.Start(pr)

	var rep *PreCopyReport
	var err error
	tb.k.Go("driver", func(p *sim.Proc) {
		p.Sleep(time.Second) // let it run and dirty some pages
		rep, err = tb.srcM.PreCopyTo(p, "writer", tb.dstM.Port.ID, PreCopyOptions{})
	})
	tb.k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.ProcCompleted {
		t.Fatal("process finished before migration; lengthen the program")
	}
	if len(rep.Rounds) == 0 {
		t.Fatal("no pre-copy rounds ran")
	}
	// First round ships (almost) everything; later rounds only dirt.
	if rep.Rounds[0] < 50 {
		t.Errorf("round 0 sent %d pages, want most of 64", rep.Rounds[0])
	}
	if len(rep.Rounds) > 1 && rep.Rounds[1] >= rep.Rounds[0] {
		t.Errorf("round 1 (%d) not smaller than round 0 (%d)", rep.Rounds[1], rep.Rounds[0])
	}
	// The process must resume at the destination and finish correctly.
	npr, ok := tb.dst.Process("writer")
	if !ok {
		t.Fatal("process not at destination")
	}
	var execErr error
	tb.k.Go("wait", func(p *sim.Proc) { execErr = npr.WaitDone(p) })
	tb.k.Run()
	if execErr != nil {
		t.Fatalf("remote execution: %v", execErr)
	}
	if npr.Status != machine.Finished {
		t.Errorf("status = %v", npr.Status)
	}
}

func TestPreCopyDataIntegrityUnderWrites(t *testing.T) {
	// The crucial property: pages dirtied *during* the copy rounds must
	// arrive with their final contents.
	tb := newTestbed(t)
	pr, err := tb.src.NewProcess("writer", 0)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := pr.AS.Validate(0, 32*512, "data")
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 32; i++ {
		pg := reg.Seg.Materialize(i, pattern(i))
		pg.State.OnDisk = true
	}
	// The program overwrites page 5 repeatedly, then stops touching it.
	var ops []trace.Op
	for b := 0; b < 40; b++ {
		ops = append(ops,
			trace.Compute{D: 100 * time.Millisecond},
			trace.Touch{Addr: 5 * 512, Write: true},
		)
	}
	ops = append(ops, trace.Compute{D: 10 * time.Second})
	pr.Program = &trace.Program{Ops: ops}
	tb.src.Start(pr)

	tb.k.Go("driver", func(p *sim.Proc) {
		p.Sleep(500 * time.Millisecond)
		if _, err := tb.srcM.PreCopyTo(p, "writer", tb.dstM.Port.ID, PreCopyOptions{}); err != nil {
			t.Errorf("PreCopyTo: %v", err)
			return
		}
		npr, ok := tb.dst.Process("writer")
		if !ok {
			t.Error("process not at destination")
			return
		}
		// Page 5's content at the destination must be the source's final
		// content. Simulated writes bump versions without changing bytes,
		// so that is still pattern(5); the source frame itself was
		// recycled when the process was excised, so compare against the
		// pattern, not the dead segment.
		want5 := pattern(5)
		got, err := tb.dst.Pager.Read(p, npr.AS, 5*512, 512)
		if err != nil {
			t.Errorf("read: %v", err)
			return
		}
		for j := range got {
			if got[j] != want5[j] {
				t.Errorf("page 5 byte %d: %d != %d (final write lost)", j, got[j], want5[j])
				return
			}
		}
		// Untouched page 20 carries the original pattern.
		got20, err := tb.dst.Pager.Read(p, npr.AS, 20*512, 512)
		if err != nil {
			t.Errorf("read20: %v", err)
			return
		}
		want := pattern(20)
		for j := range got20 {
			if got20[j] != want[j] {
				t.Errorf("page 20 corrupted at %d", j)
				return
			}
		}
	})
	tb.k.Run()
}

func TestPreCopyDowntimeBeatsPureCopy(t *testing.T) {
	// Theimer's pitch: downtime shrinks versus stop-and-copy, while the
	// total cost does not.
	downFor := func(pre bool) (time.Duration, uint64) {
		tb := newTestbed(t)
		tb.writerProc(t, "job", 128, 16, 1000)
		pr, _ := tb.src.Process("job")
		tb.src.Start(pr)
		var down time.Duration
		tb.k.Go("driver", func(p *sim.Proc) {
			p.Sleep(time.Second)
			if pre {
				rep, err := tb.srcM.PreCopyTo(p, "job", tb.dstM.Port.ID, PreCopyOptions{})
				if err != nil {
					t.Error(err)
					return
				}
				down = rep.Downtime
			} else {
				tb.src.RequestPreempt(pr)
				if !tb.src.WaitStopped(p, pr) {
					t.Error("job finished early")
					return
				}
				start := p.Now()
				rep, err := tb.srcM.MigrateTo(p, "job", tb.dstM.Port.ID, Options{
					Strategy: PureCopy, WaitMigratePoint: true,
				})
				if err != nil {
					t.Error(err)
					return
				}
				down = rep.InsertDoneAt - start
			}
		})
		tb.k.RunUntil(20 * time.Minute)
		return down, tb.link.Bytes()
	}
	preDown, preBytes := downFor(true)
	copyDown, copyBytes := downFor(false)
	if preDown == 0 || copyDown == 0 {
		t.Fatal("a migration did not complete")
	}
	if preDown >= copyDown/2 {
		t.Errorf("pre-copy downtime %v not well below stop-and-copy %v", preDown, copyDown)
	}
	// Both hosts still pay the full transfer (and more, for re-dirtied
	// pages).
	if preBytes < copyBytes {
		t.Errorf("pre-copy moved fewer bytes (%d) than pure copy (%d)", preBytes, copyBytes)
	}
}

func TestPreCopyOnFinishedProcess(t *testing.T) {
	tb := newTestbed(t)
	tb.writerProc(t, "quick", 8, 2, 1)
	pr, _ := tb.src.Process("quick")
	tb.src.Start(pr)
	var rep *PreCopyReport
	var err error
	tb.k.Go("driver", func(p *sim.Proc) {
		p.Sleep(time.Minute) // long after the program ends
		rep, err = tb.srcM.PreCopyTo(p, "quick", tb.dstM.Port.ID, PreCopyOptions{})
	})
	tb.k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ProcCompleted {
		t.Error("report does not flag completion-before-migration")
	}
	if _, ok := tb.src.Process("quick"); !ok {
		t.Error("finished process vanished from the source")
	}
}

func TestDissolveIOUs(t *testing.T) {
	tb := newTestbed(t)
	pr := tb.makeProc(t, "job", 40, 8, 5)
	tb.src.Start(pr)
	tb.migrate(t, "job", Options{Strategy: PureIOU, WaitMigratePoint: true})
	npr, _ := tb.dst.Process("job")
	var fetched int
	var err error
	tb.k.Go("driver", func(p *sim.Proc) {
		npr.WaitDone(p)
		fetched, err = DissolveIOUs(p, tb.dst, npr)
	})
	tb.k.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 40 real pages, 5 fetched by execution: 35 flushed.
	if fetched != 35 {
		t.Errorf("dissolved %d pages, want 35", fetched)
	}
	if rem := tb.src.Net.Store().TotalRemaining(); rem != 0 {
		t.Errorf("source still owes %d pages after dissolve", rem)
	}
	// Everything local now: touching any page costs no network.
	before := tb.link.Bytes()
	tb.k.Go("verify", func(p *sim.Proc) {
		for i := uint64(0); i < 40; i++ {
			if err := tb.dst.Pager.Touch(p, npr.AS, vm.Addr(i*512), false); err != nil {
				t.Errorf("touch %d: %v", i, err)
				return
			}
		}
	})
	tb.k.Run()
	if tb.link.Bytes() != before {
		t.Errorf("post-dissolve touches still hit the network (%d extra bytes)", tb.link.Bytes()-before)
	}
	// Data integrity after flush.
	tb.k.Go("check", func(p *sim.Proc) {
		got, err := tb.dst.Pager.Read(p, npr.AS, 30*512, 512)
		if err != nil {
			t.Errorf("read: %v", err)
			return
		}
		want := pattern(30)
		for j := range want {
			if got[j] != want[j] {
				t.Errorf("flushed page corrupt at byte %d", j)
				return
			}
		}
	})
	tb.k.Run()
}

func TestDissolveIdempotent(t *testing.T) {
	tb := newTestbed(t)
	pr := tb.makeProc(t, "job", 16, 4, 0)
	tb.src.Start(pr)
	tb.migrate(t, "job", Options{Strategy: PureIOU, WaitMigratePoint: true, HoldAtDest: true})
	npr, _ := tb.dst.Process("job")
	tb.k.Go("driver", func(p *sim.Proc) {
		n1, err := DissolveIOUs(p, tb.dst, npr)
		if err != nil {
			t.Error(err)
			return
		}
		n2, err := DissolveIOUs(p, tb.dst, npr)
		if err != nil {
			t.Error(err)
			return
		}
		if n1 != 16 || n2 != 0 {
			t.Errorf("dissolve counts = %d, %d; want 16, 0", n1, n2)
		}
	})
	tb.k.Run()
}
