// Package core implements the paper's contribution: process migration
// by copy-on-reference address-space transfer. It provides the
// ExciseProcess and InsertProcess primitives of §3.1 (Core and RIMAS
// context messages), the per-machine MigrationManager of §3.2, and the
// three transfer strategies the evaluation compares — pure-copy,
// resident-set, and pure-IOU — plus the prefetch knob.
package core

import "fmt"

// Strategy selects how the RIMAS (address-space) context message is
// delivered to the new execution site.
type Strategy int

const (
	// PureCopy physically transmits every RealMem byte at migration
	// time (the conventional technique; NoIOUs set on the RIMAS).
	PureCopy Strategy = iota
	// ResidentSet physically transmits the pages resident in physical
	// memory at migration time (a working-set approximation) and passes
	// IOUs for the rest.
	ResidentSet
	// PureIOU passes IOUs for the whole RealMem portion; the local
	// NetMsgServer caches the data and becomes its backer.
	PureIOU
	// PreCopied marks the final handoff of an iterative pre-copy
	// migration (see Manager.PreCopyTo): the page contents are already
	// staged at the destination, so the RIMAS carries structure only.
	PreCopied
)

// String names the strategy as the paper does.
func (s Strategy) String() string {
	switch s {
	case PureCopy:
		return "Copy"
	case ResidentSet:
		return "RS"
	case PureIOU:
		return "IOU"
	case PreCopied:
		return "PreCopy"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Strategies lists all transfer strategies in the paper's comparison
// order.
func Strategies() []Strategy { return []Strategy{PureIOU, ResidentSet, PureCopy} }

// Degrade steps the strategy one rung down the reliability ladder:
// each step sheds residual dependencies at the price of more up-front
// copying, so a migration retried after a failure leans less on the
// flaky network. PureIOU falls back to ResidentSet; everything else
// falls back to PureCopy, which carries no residual dependency at all
// and is the ladder's fixed point.
func Degrade(s Strategy) Strategy {
	switch s {
	case PureIOU:
		return ResidentSet
	default:
		return PureCopy
	}
}

// PrefetchValues are the prefetch amounts evaluated in the paper.
func PrefetchValues() []int { return []int{0, 1, 3, 7, 15} }
