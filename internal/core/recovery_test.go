package core

import (
	"errors"
	"testing"
	"time"

	"accentmig/internal/faults"
	"accentmig/internal/machine"
	"accentmig/internal/netlink"
	"accentmig/internal/pager"
	"accentmig/internal/sim"
	"accentmig/internal/vm"
)

// newFaultTestbed is newTestbed with configurable link and machine
// configs, for recovery tests that need loss, partitions, or orphan
// policies.
func newFaultTestbed(t *testing.T, linkCfg netlink.Config, mcfg machine.Config) *testbed {
	t.Helper()
	k := sim.New()
	src := machine.New(k, "src", mcfg)
	dst := machine.New(k, "dst", mcfg)
	link := machine.Connect(src, dst, linkCfg)
	srcM := NewManager(src, DefaultTuning())
	dstM := NewManager(dst, DefaultTuning())
	src.Net.AddRoute(dstM.Port.ID, "dst")
	dst.Net.AddRoute(srcM.Port.ID, "src")
	return &testbed{k: k, src: src, dst: dst, srcM: srcM, dstM: dstM, link: link}
}

func TestDegradeLadder(t *testing.T) {
	if got := Degrade(PureIOU); got != ResidentSet {
		t.Errorf("Degrade(PureIOU) = %v, want ResidentSet", got)
	}
	if got := Degrade(ResidentSet); got != PureCopy {
		t.Errorf("Degrade(ResidentSet) = %v, want PureCopy", got)
	}
	// PureCopy is the ladder's fixed point.
	if got := Degrade(PureCopy); got != PureCopy {
		t.Errorf("Degrade(PureCopy) = %v, want PureCopy", got)
	}
}

// TestAbortRollsBackAndResumesLocally: when every attempt fails, the
// process must be rolled back onto the source — memory intact — and
// resume execution there as if migration had never been tried.
func TestAbortRollsBackAndResumesLocally(t *testing.T) {
	tb := newFaultTestbed(t, netlink.Config{DropProb: 1.0, DropSeed: 5}, machine.Config{})
	pr := tb.makeProc(t, "job", 16, 4, 6)
	tb.src.Start(pr)
	var rep *Report
	var err error
	tb.k.Go("driver", func(p *sim.Proc) {
		rep, err = tb.srcM.MigrateTo(p, "job", tb.dstM.Port.ID, Options{
			Strategy: PureIOU, WaitMigratePoint: true,
			AckTimeout: 5 * time.Second, MaxRetries: 1, Degrade: true,
		})
	})
	tb.k.Run()
	if !errors.Is(err, ErrMigrationAborted) {
		t.Fatalf("err = %v, want ErrMigrationAborted", err)
	}
	if rep != nil {
		t.Errorf("aborted migration returned a report: %+v", rep)
	}
	if _, ok := tb.dst.Process("job"); ok {
		t.Error("process appeared on destination despite the abort")
	}
	npr, ok := tb.src.Process("job")
	if !ok {
		t.Fatal("process missing from source after rollback")
	}
	// resumeLocal restarted it; the first k.Run let it finish locally.
	var execErr error
	tb.k.Go("wait", func(p *sim.Proc) { execErr = npr.WaitDone(p) })
	tb.k.Run()
	if execErr != nil {
		t.Fatalf("local execution after rollback: %v", execErr)
	}
	if npr.Status != machine.Finished {
		t.Errorf("status = %v, want Finished", npr.Status)
	}
	// Rollback must have reinstated the original page contents.
	tb.k.Go("verify", func(p *sim.Proc) {
		for i := uint64(0); i < 16; i++ {
			got, err := tb.src.Pager.Read(p, npr.AS, vm.Addr(i*512), 512)
			if err != nil {
				t.Errorf("page %d after rollback: %v", i, err)
				return
			}
			want := pattern(i)
			for j := range want {
				if got[j] != want[j] {
					t.Errorf("page %d corrupt at byte %d after rollback", i, j)
					return
				}
			}
		}
	})
	tb.k.Run()
}

// TestRetryDegradesAndSucceeds: a partition that outlives the first
// attempt but heals during the retry backoff produces a successful
// second attempt at the degraded strategy.
func TestRetryDegradesAndSucceeds(t *testing.T) {
	tb := newFaultTestbed(t, netlink.Config{}, machine.Config{})
	tb.link.SetFaults(faults.NewInjector(&faults.Plan{
		Seed:       1,
		Partitions: []faults.Window{{Start: 0, End: faults.Duration(8 * time.Second)}},
	}, ""))
	pr := tb.makeProc(t, "job", 16, 4, 4)
	tb.src.Start(pr)
	var rep *Report
	var err error
	tb.k.Go("driver", func(p *sim.Proc) {
		rep, err = tb.srcM.MigrateTo(p, "job", tb.dstM.Port.ID, Options{
			Strategy: PureIOU, WaitMigratePoint: true,
			AckTimeout: 5 * time.Second, MaxRetries: 2, Degrade: true,
		})
	})
	tb.k.Run()
	if err != nil {
		t.Fatalf("MigrateTo: %v", err)
	}
	if rep.Attempts != 2 {
		t.Errorf("Attempts = %d, want 2 (first killed by the partition)", rep.Attempts)
	}
	if rep.FinalStrategy != ResidentSet {
		t.Errorf("FinalStrategy = %v, want ResidentSet after one degradation", rep.FinalStrategy)
	}
	if _, ok := tb.src.Process("job"); ok {
		t.Error("process still on source after successful retry")
	}
	npr, ok := tb.dst.Process("job")
	if !ok {
		t.Fatal("process missing on destination")
	}
	var execErr error
	tb.k.Go("wait", func(p *sim.Proc) { execErr = npr.WaitDone(p) })
	tb.k.Run()
	if execErr != nil {
		t.Fatalf("remote execution after retry: %v", execErr)
	}
	if st := tb.src.Net.Stats(); st.Retransmits == 0 {
		t.Error("no retransmits recorded across the partition")
	}
}

// TestOrphanPolicies walks the three fates of IOUs whose backer
// crashes after a pure-IOU migration: fail surfaces ErrBackerLost,
// zerofill lets the process limp to completion on zero pages, and an
// eager dissolve beforehand makes the crash invisible.
func TestOrphanPolicies(t *testing.T) {
	build := func(t *testing.T, policy pager.OrphanPolicy) (*testbed, *machine.Process) {
		t.Helper()
		mcfg := machine.Config{Pager: pager.Config{
			RetryTimeout: time.Second, MaxRetries: 2, Orphan: policy,
		}}
		tb := newFaultTestbed(t, netlink.Config{}, mcfg)
		pr := tb.makeProc(t, "job", 24, 4, 12)
		tb.src.Start(pr)
		tb.migrate(t, "job", Options{Strategy: PureIOU, WaitMigratePoint: true, HoldAtDest: true})
		npr, ok := tb.dst.Process("job")
		if !ok {
			t.Fatal("process missing on destination")
		}
		return tb, npr
	}
	crashAndRun := func(tb *testbed, npr *machine.Process) error {
		tb.src.Net.Crash()
		tb.dst.Start(npr)
		var execErr error
		tb.k.Go("wait", func(p *sim.Proc) { execErr = npr.WaitDone(p) })
		tb.k.Run()
		return execErr
	}

	t.Run("fail", func(t *testing.T) {
		tb, npr := build(t, pager.OrphanFail)
		err := crashAndRun(tb, npr)
		if !errors.Is(err, pager.ErrBackerLost) {
			t.Errorf("err = %v, want ErrBackerLost", err)
		}
	})

	t.Run("zerofill", func(t *testing.T) {
		tb, npr := build(t, pager.OrphanZeroFill)
		if err := crashAndRun(tb, npr); err != nil {
			t.Fatalf("zerofill run failed: %v", err)
		}
		if npr.Status != machine.Finished {
			t.Errorf("status = %v, want Finished", npr.Status)
		}
		if zf := tb.dst.Pager.Stats().ZeroFills; zf == 0 {
			t.Error("no zero-filled orphan faults recorded")
		}
	})

	t.Run("flush", func(t *testing.T) {
		tb, npr := build(t, pager.OrphanFail)
		var execErr error
		tb.k.Go("driver", func(p *sim.Proc) {
			if _, err := DissolveIOUs(p, tb.dst, npr); err != nil {
				t.Errorf("dissolve: %v", err)
				return
			}
			tb.src.Net.Crash()
			tb.dst.Start(npr)
			execErr = npr.WaitDone(p)
		})
		tb.k.Run()
		if execErr != nil {
			t.Errorf("run after dissolve+crash: %v", execErr)
		}
		if zf := tb.dst.Pager.Stats().ZeroFills; zf != 0 {
			t.Errorf("ZeroFills = %d, want 0 (every page was dissolved)", zf)
		}
	})
}
