package core

import (
	"fmt"
	"testing"
	"time"

	"accentmig/internal/machine"
	"accentmig/internal/netlink"
	"accentmig/internal/sim"
	"accentmig/internal/trace"
	"accentmig/internal/vm"
)

// cluster builds n fully-connected machines with managers.
func cluster(t *testing.T, n int) (*sim.Kernel, []*machine.Machine, []*Manager) {
	t.Helper()
	k := sim.New()
	var ms []*machine.Machine
	var mgrs []*Manager
	for i := 0; i < n; i++ {
		m := machine.New(k, fmt.Sprintf("m%d", i), machine.Config{})
		ms = append(ms, m)
		mgrs = append(mgrs, NewManager(m, DefaultTuning()))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			machine.Connect(ms[i], ms[j], netlink.Config{})
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				ms[i].Net.AddRoute(mgrs[j].Port.ID, ms[j].Name)
			}
		}
	}
	return k, ms, mgrs
}

// computeJob builds a process that alternates compute and touches.
func computeJob(t *testing.T, m *machine.Machine, name string, bursts int) *machine.Process {
	t.Helper()
	pr, err := m.NewProcess(name, 1)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := pr.AS.Validate(0, 64*512, "data")
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 64; i++ {
		pg := reg.Seg.Materialize(i, []byte{byte(i)})
		pg.State.OnDisk = true
	}
	var ops []trace.Op
	for i := 0; i < bursts; i++ {
		ops = append(ops,
			trace.Compute{D: 200 * time.Millisecond},
			trace.Touch{Addr: vm.Addr(512 * (uint64(i) % 64))},
		)
	}
	pr.Program = &trace.Program{Ops: ops}
	return pr
}

func TestPreemptAndResumeLocally(t *testing.T) {
	k, ms, _ := cluster(t, 1)
	pr := computeJob(t, ms[0], "job", 50)
	ms[0].Start(pr)
	stopped := false
	k.Go("driver", func(p *sim.Proc) {
		p.Sleep(time.Second)
		ms[0].RequestPreempt(pr)
		stopped = ms[0].WaitStopped(p, pr)
		// Resume it.
		ms[0].Start(pr)
	})
	k.Run()
	if !stopped {
		t.Fatal("preempt did not stop the process")
	}
	if pr.Status != machine.Finished {
		t.Errorf("status = %v after resume", pr.Status)
	}
}

func TestPreemptRacesCompletion(t *testing.T) {
	k, ms, _ := cluster(t, 1)
	pr := computeJob(t, ms[0], "job", 1) // finishes almost immediately
	ms[0].Start(pr)
	var stopped bool
	k.Go("driver", func(p *sim.Proc) {
		p.Sleep(10 * time.Second) // long after completion
		ms[0].RequestPreempt(pr)
		stopped = ms[0].WaitStopped(p, pr)
	})
	k.Run()
	if stopped {
		t.Error("WaitStopped reported preemption of a finished process")
	}
}

func TestBalancerLevelsLoad(t *testing.T) {
	k, ms, mgrs := cluster(t, 3)
	const jobs = 6
	for i := 0; i < jobs; i++ {
		pr := computeJob(t, ms[0], fmt.Sprintf("job%d", i), 400)
		ms[0].Start(pr)
	}
	b := NewBalancer(mgrs...)
	stop := sim.NewGate(k)
	var balErr error
	k.Go("balancer", func(p *sim.Proc) {
		balErr = b.Run(p, 2*time.Second, stop)
	})
	k.Go("watch", func(p *sim.Proc) {
		// Give it a minute of virtual time, then check distribution.
		p.Sleep(60 * time.Second)
		stop.Open()
	})
	k.RunUntil(61 * time.Second)
	if balErr != nil {
		t.Fatal(balErr)
	}
	if b.Migrations() == 0 {
		t.Fatal("balancer never migrated anything")
	}
	loads := b.Loads()
	total := 0
	for _, l := range loads {
		total += l.Runnable
	}
	if total == 0 {
		t.Skip("all jobs finished before the check; lengthen bursts")
	}
	// No host should hold everything any more.
	for _, l := range loads {
		if l.Runnable == total && total >= 3 {
			t.Errorf("host %s still holds all %d runnable jobs: %+v", l.Name, total, loads)
		}
	}
	// Let everything finish and verify completion.
	k.Run()
	finished := 0
	for _, m := range ms {
		for _, name := range m.ProcNames() {
			pr, _ := m.Process(name)
			if pr.Status == machine.Finished && pr.ExecError == nil {
				finished++
			}
		}
	}
	if finished != jobs {
		t.Errorf("finished = %d of %d jobs", finished, jobs)
	}
}

func TestBalancerIdleWhenBalanced(t *testing.T) {
	k, ms, mgrs := cluster(t, 2)
	a := computeJob(t, ms[0], "a", 10)
	bb := computeJob(t, ms[1], "b", 10)
	ms[0].Start(a)
	ms[1].Start(bb)
	b := NewBalancer(mgrs...)
	k.Go("driver", func(p *sim.Proc) {
		moved, err := b.Rebalance(p)
		if err != nil {
			t.Error(err)
		}
		if moved {
			t.Error("balancer migrated on a balanced cluster")
		}
	})
	k.Run()
}

func TestBalancerPrefersUndispersedCandidates(t *testing.T) {
	k, ms, mgrs := cluster(t, 2)
	// jobA has been migrated before: part of its space is owed
	// elsewhere (simulated by an imaginary region). jobB is local-only.
	prA := computeJob(t, ms[0], "a-dispersed", 100)
	store := ms[1].Net.Store()
	segID := uint64(1<<41 + 5)
	sseg := store.AddSegment(segID, 16*512, 512)
	for i := uint64(0); i < 16; i++ {
		sseg.Put(i, []byte{byte(i)})
	}
	iseg := vm.NewImaginarySegment("owed", 16*512, 512, uint64(ms[1].Net.BackingPort()))
	iseg.ID = segID
	if _, err := prA.AS.MapSegment(1<<20, 16*512, iseg, 0, "owed"); err != nil {
		t.Fatal(err)
	}
	prB := computeJob(t, ms[0], "b-local", 100)
	ms[0].Start(prA)
	ms[0].Start(prB)

	b := NewBalancer(mgrs...)
	k.Go("driver", func(p *sim.Proc) {
		moved, err := b.Rebalance(p)
		if err != nil {
			t.Error(err)
			return
		}
		if !moved {
			t.Error("balancer did not migrate")
		}
	})
	k.RunUntil(30 * time.Second)
	if _, ok := ms[1].Process("b-local"); !ok {
		t.Error("balancer did not pick the undispersed candidate")
	}
	if _, ok := ms[0].Process("a-dispersed"); !ok {
		t.Error("dispersed candidate should have stayed put")
	}
}

func TestLoadsReportResiduals(t *testing.T) {
	tb := newTestbed(t)
	pr := tb.makeProc(t, "job", 32, 8, 4)
	tb.src.Start(pr)
	tb.migrate(t, "job", Options{Strategy: PureIOU, WaitMigratePoint: true})
	npr, _ := tb.dst.Process("job")
	tb.k.Go("wait", func(p *sim.Proc) { npr.WaitDone(p) })
	tb.k.Run()
	b := NewBalancer(tb.srcM, tb.dstM)
	loads := b.Loads()
	if loads[0].OwedPages == 0 {
		t.Errorf("source owes no pages after lazy migration: %+v", loads)
	}
}

func TestEvacuate(t *testing.T) {
	k, ms, mgrs := cluster(t, 2)
	const jobs = 4
	for i := 0; i < jobs; i++ {
		pr := computeJob(t, ms[0], fmt.Sprintf("job%d", i), 200)
		ms[0].Start(pr)
	}
	var moved []string
	var err error
	k.Go("driver", func(p *sim.Proc) {
		p.Sleep(time.Second)
		moved, err = mgrs[0].Evacuate(p, mgrs[1].Port.ID, Options{Strategy: PureIOU, Prefetch: 1})
	})
	k.RunUntil(5 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(moved) != jobs {
		t.Fatalf("moved %d of %d jobs: %v", len(moved), jobs, moved)
	}
	if got := ms[0].Procs(); got != 0 {
		t.Errorf("source still hosts %d processes", got)
	}
	if got := ms[1].Procs(); got != jobs {
		t.Errorf("destination hosts %d processes, want %d", got, jobs)
	}
	// Everything completes at the new home.
	k.Run()
	for _, name := range ms[1].ProcNames() {
		pr, _ := ms[1].Process(name)
		if pr.Status != machine.Finished || pr.ExecError != nil {
			t.Errorf("%s: status %v err %v", name, pr.Status, pr.ExecError)
		}
	}
}

func TestEvacuateSkipsFinished(t *testing.T) {
	k, ms, mgrs := cluster(t, 2)
	pr := computeJob(t, ms[0], "quick", 1)
	ms[0].Start(pr)
	var moved []string
	k.Go("driver", func(p *sim.Proc) {
		p.Sleep(time.Minute)
		moved, _ = mgrs[0].Evacuate(p, mgrs[1].Port.ID, Options{})
	})
	k.Run()
	if len(moved) != 0 {
		t.Errorf("evacuated a finished process: %v", moved)
	}
}

func TestChooseStrategy(t *testing.T) {
	k, ms, _ := cluster(t, 1)
	_ = k
	// Mostly-resident process: RS is the pick.
	a := computeJob(t, ms[0], "resident-heavy", 10)
	var addrs []vm.Addr
	for i := 0; i < 48; i++ {
		addrs = append(addrs, vm.Addr(i*512))
	}
	if err := ms[0].MakeResident(a, addrs); err != nil {
		t.Fatal(err)
	}
	if s, pf := ChooseStrategy(a); s != ResidentSet || pf != 1 {
		t.Errorf("resident-heavy: got %v/PF%d, want RS/PF1", s, pf)
	}
	// Barely-resident process: IOU.
	b := computeJob(t, ms[0], "cold", 10)
	if s, pf := ChooseStrategy(b); s != PureIOU || pf != 1 {
		t.Errorf("cold: got %v/PF%d, want IOU/PF1", s, pf)
	}
}
