// Package wire serializes IPC messages to bytes and back, so that
// everything a NetMsgServer forwards is provably self-contained — the
// §3.1 property that context messages "do not have to be preprocessed
// in any way". The simulator could pass Go pointers between machines;
// instead, every wire crossing encodes to a frame and decodes a fresh
// copy at the peer, making accidental cross-machine sharing impossible
// and catching any forgotten field the moment a test round-trips it.
//
// Costs are still charged from ipc.Message.WireBytes (the calibrated
// analytic estimate); the encoded frame length tracks it closely and
// tests assert the two stay within a small factor.
//
// Message bodies are arbitrary Go values, so ops register a BodyCodec;
// the copy-on-reference protocol bodies (package imag) are registered
// here, migration bodies (package core) register themselves in an
// init, and unregistered bodies pass by reference with a documented
// caveat (they are simulation-internal test payloads).
package wire

import (
	"encoding/binary"
	"fmt"

	"accentmig/internal/imag"
	"accentmig/internal/ipc"
	"accentmig/internal/vm"
)

// BodyCodec encodes and decodes one op's body type. Extras carry
// opaque references that cannot be byte-encoded (bodies of nested
// pending mail without codecs); they ride alongside the frame and must
// be consumed in order by Decode. Most codecs ignore them.
type BodyCodec struct {
	Encode func(v any) (frame []byte, extras []any, err error)
	Decode func(frame []byte, extras []any) (v any, err error)
}

var bodyCodecs = map[int]BodyCodec{}

// RegisterBody installs the codec for an op. Later registrations for
// the same op win, which lets tests stub protocols.
func RegisterBody(op int, c BodyCodec) { bodyCodecs[op] = c }

// buf is a tiny append-only encoder.
type buf struct{ b []byte }

func (w *buf) u8(v uint8)   { w.b = append(w.b, v) }
func (w *buf) u32(v uint32) { w.b = binary.BigEndian.AppendUint32(w.b, v) }
func (w *buf) u64(v uint64) { w.b = binary.BigEndian.AppendUint64(w.b, v) }
func (w *buf) i64(v int64)  { w.u64(uint64(v)) }
func (w *buf) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}
func (w *buf) bytes(v []byte) {
	w.u32(uint32(len(v)))
	w.b = append(w.b, v...)
}
func (w *buf) str(v string) { w.bytes([]byte(v)) }

// rdr is the matching decoder; it panics with errTruncated via helpers
// and the public functions recover it into an error.
type rdr struct {
	b   []byte
	off int
}

type truncated struct{}

func (r *rdr) need(n int) []byte {
	if r.off+n > len(r.b) {
		panic(truncated{})
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}
func (r *rdr) u8() uint8   { return r.need(1)[0] }
func (r *rdr) u32() uint32 { return binary.BigEndian.Uint32(r.need(4)) }
func (r *rdr) u64() uint64 { return binary.BigEndian.Uint64(r.need(8)) }
func (r *rdr) i64() int64  { return int64(r.u64()) }
func (r *rdr) bool() bool  { return r.u8() != 0 }
func (r *rdr) bytes() []byte {
	n := int(r.u32())
	out := make([]byte, n)
	copy(out, r.need(n))
	return out
}
func (r *rdr) str() string { return string(r.bytes()) }

// EncodeMessage serializes m, deep-copying all attachment data. The
// body is encoded through its op's registered codec; with no codec the
// body is carried out-of-band in extras (it is a simulation-internal
// payload that never reaches real bytes).
func EncodeMessage(m *ipc.Message) (frame []byte, extras []any, err error) {
	w := &buf{}
	w.i64(int64(m.Op))
	w.u64(uint64(m.To))
	w.u64(uint64(m.ReplyTo))
	w.u32(uint32(m.BodyBytes))
	w.bool(m.NoIOUs)
	w.bool(m.FaultSupport)

	if codec, ok := bodyCodecs[m.Op]; ok && m.Body != nil {
		body, ex, err := codec.Encode(m.Body)
		if err != nil {
			return nil, nil, fmt.Errorf("wire: encode op %#x body: %w", m.Op, err)
		}
		w.u8(1)
		w.bytes(body)
		extras = ex
	} else {
		w.u8(0)
		extras = []any{m.Body}
	}

	w.u32(uint32(len(m.Mem)))
	for _, a := range m.Mem {
		encodeAttachment(w, a)
	}
	return w.b, extras, nil
}

func encodeAttachment(w *buf, a *ipc.MemAttachment) {
	w.u8(uint8(a.Kind))
	w.u64(uint64(a.VA))
	w.u64(a.Size)
	w.bool(a.Collapsed)
	w.bool(a.Resident)
	w.bool(a.Copy)
	w.u64(a.SegID)
	w.u64(a.SegOff)
	w.u64(a.SegSize)
	w.u64(uint64(a.Backing))
	w.u32(uint32(a.CompBytes))
	w.u32(uint32(len(a.Sums)))
	for _, s := range a.Sums {
		w.u64(s)
	}
	w.u32(uint32(len(a.Runs)))
	for _, run := range a.Runs {
		w.u64(run.Index)
		w.u32(uint32(run.Count))
		w.bytes(run.Data)
	}
}

// DecodeMessage reconstructs a message from a frame, consuming the
// extras its encoder produced.
func DecodeMessage(frame []byte, extras []any) (m *ipc.Message, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			if _, ok := rec.(truncated); ok {
				m, err = nil, fmt.Errorf("wire: truncated frame (%d bytes)", len(frame))
				return
			}
			panic(rec)
		}
	}()
	r := &rdr{b: frame}
	m = &ipc.Message{
		Op:      int(r.i64()),
		To:      ipc.PortID(r.u64()),
		ReplyTo: ipc.PortID(r.u64()),
	}
	m.BodyBytes = int(r.u32())
	m.NoIOUs = r.bool()
	m.FaultSupport = r.bool()

	if r.u8() == 1 {
		body := r.bytes()
		codec, ok := bodyCodecs[m.Op]
		if !ok {
			return nil, fmt.Errorf("wire: frame carries op %#x body but no codec is registered", m.Op)
		}
		v, err := codec.Decode(body, extras)
		if err != nil {
			return nil, fmt.Errorf("wire: decode op %#x body: %w", m.Op, err)
		}
		m.Body = v
	} else {
		if len(extras) != 1 {
			return nil, fmt.Errorf("wire: codec-less body wants 1 extra, have %d", len(extras))
		}
		m.Body = extras[0]
	}

	n := int(r.u32())
	for i := 0; i < n; i++ {
		m.Mem = append(m.Mem, decodeAttachment(r))
	}
	if r.off != len(frame) {
		return nil, fmt.Errorf("wire: %d trailing bytes", len(frame)-r.off)
	}
	return m, nil
}

func decodeAttachment(r *rdr) *ipc.MemAttachment {
	a := &ipc.MemAttachment{
		Kind:      ipc.AttachKind(r.u8()),
		VA:        vm.Addr(r.u64()),
		Size:      r.u64(),
		Collapsed: r.bool(),
		Resident:  r.bool(),
		Copy:      r.bool(),
		SegID:     r.u64(),
		SegOff:    r.u64(),
		SegSize:   r.u64(),
		Backing:   ipc.PortID(r.u64()),
	}
	a.CompBytes = int(r.u32())
	if n := int(r.u32()); n > 0 {
		a.Sums = make([]uint64, n)
		for i := range a.Sums {
			a.Sums[i] = r.u64()
		}
	}
	n := int(r.u32())
	for i := 0; i < n; i++ {
		idx := r.u64()
		count := int(r.u32())
		a.Runs = append(a.Runs, vm.PageRun{Index: idx, Count: count, Data: r.bytes()})
	}
	return a
}

// Transfer encodes and immediately decodes a message — the simulator's
// wire crossing. The result shares no mutable byte state with the
// input (codec-less bodies pass by reference, documented above).
func Transfer(m *ipc.Message) (*ipc.Message, error) {
	frame, extras, err := EncodeMessage(m)
	if err != nil {
		return nil, err
	}
	out, err := DecodeMessage(frame, extras)
	if err != nil {
		return nil, err
	}
	// The trace correlation id rides along outside the frame: it is
	// observability metadata (like Background), not protocol state, so
	// the codec never sees it but each hop preserves it.
	out.ID = m.ID
	return out, nil
}

// FrameBytes reports the encoded frame length without keeping it.
func FrameBytes(m *ipc.Message) (int, error) {
	frame, _, err := EncodeMessage(m)
	if err != nil {
		return 0, err
	}
	return len(frame), nil
}

// FragCount reports how many link-level fragments a frame of n bytes
// occupies (always at least one), given the transport's per-fragment
// payload capacity fragBytes plus headroom bytes reserved for protocol
// headers. This is the single fragmentation unit — fragBytes +
// headroom — shared by the netmsg fragment math and the frame
// encoder's tests, so the two accountings cannot drift.
func FragCount(n, fragBytes, headroom int) int {
	unit := fragBytes + headroom
	if unit <= 0 {
		return 1
	}
	frags := (n + unit - 1) / unit
	if frags < 1 {
		frags = 1
	}
	return frags
}

// --- built-in codecs for the copy-on-reference protocol ---

func init() {
	RegisterBody(imag.OpReadRequest, BodyCodec{
		Encode: func(v any) ([]byte, []any, error) {
			rq, ok := v.(*imag.ReadRequest)
			if !ok {
				return nil, nil, fmt.Errorf("want *imag.ReadRequest, got %T", v)
			}
			w := &buf{}
			w.u64(rq.SegID)
			w.u64(rq.PageIdx)
			w.i64(int64(rq.Prefetch))
			w.u64(rq.StreamTo)
			return w.b, nil, nil
		},
		Decode: func(b []byte, _ []any) (any, error) {
			r := &rdr{b: b}
			return &imag.ReadRequest{
				SegID:    r.u64(),
				PageIdx:  r.u64(),
				Prefetch: int(r.i64()),
				StreamTo: r.u64(),
			}, nil
		},
	})
	replyCodec := BodyCodec{
		Encode: func(v any) ([]byte, []any, error) {
			rp, ok := v.(*imag.ReadReply)
			if !ok {
				return nil, nil, fmt.Errorf("want *imag.ReadReply, got %T", v)
			}
			w := &buf{}
			w.u64(rp.SegID)
			w.bool(rp.Streaming)
			w.u32(uint32(len(rp.Runs)))
			for _, run := range rp.Runs {
				w.u64(run.Index)
				w.u32(uint32(run.Count))
				w.bytes(run.Data)
			}
			// StreamRuns are index/count pairs only — the promised pages'
			// data travels in the background replies that follow.
			w.u32(uint32(len(rp.StreamRuns)))
			for _, run := range rp.StreamRuns {
				w.u64(run.Index)
				w.u32(uint32(run.Count))
			}
			return w.b, nil, nil
		},
		Decode: func(b []byte, _ []any) (any, error) {
			r := &rdr{b: b}
			rp := &imag.ReadReply{SegID: r.u64(), Streaming: r.bool()}
			n := int(r.u32())
			for i := 0; i < n; i++ {
				idx := r.u64()
				count := int(r.u32())
				rp.Runs = append(rp.Runs, vm.PageRun{Index: idx, Count: count, Data: r.bytes()})
			}
			n = int(r.u32())
			for i := 0; i < n; i++ {
				idx := r.u64()
				count := int(r.u32())
				rp.StreamRuns = append(rp.StreamRuns, vm.PageRun{Index: idx, Count: count})
			}
			return rp, nil
		},
	}
	RegisterBody(imag.OpReadReply, replyCodec)
	RegisterBody(imag.OpFlushReply, replyCodec)
	RegisterBody(imag.OpSegmentDeath, BodyCodec{
		Encode: func(v any) ([]byte, []any, error) {
			d, ok := v.(*imag.SegmentDeath)
			if !ok {
				return nil, nil, fmt.Errorf("want *imag.SegmentDeath, got %T", v)
			}
			w := &buf{}
			w.u64(d.SegID)
			return w.b, nil, nil
		},
		Decode: func(b []byte, _ []any) (any, error) {
			r := &rdr{b: b}
			return &imag.SegmentDeath{SegID: r.u64()}, nil
		},
	})
	RegisterBody(imag.OpReadError, BodyCodec{
		Encode: func(v any) ([]byte, []any, error) {
			e, ok := v.(*imag.ReadError)
			if !ok {
				return nil, nil, fmt.Errorf("want *imag.ReadError, got %T", v)
			}
			w := &buf{}
			w.u64(e.SegID)
			w.u64(e.PageIdx)
			w.str(e.Reason)
			return w.b, nil, nil
		},
		Decode: func(b []byte, _ []any) (any, error) {
			r := &rdr{b: b}
			return &imag.ReadError{
				SegID:   r.u64(),
				PageIdx: r.u64(),
				Reason:  r.str(),
			}, nil
		},
	})
	RegisterBody(imag.OpHashRead, BodyCodec{
		Encode: func(v any) ([]byte, []any, error) {
			h, ok := v.(*imag.HashRead)
			if !ok {
				return nil, nil, fmt.Errorf("want *imag.HashRead, got %T", v)
			}
			w := &buf{}
			w.u64(h.Hash)
			w.u64(h.SegID)
			w.u64(h.Page)
			return w.b, nil, nil
		},
		Decode: func(b []byte, _ []any) (any, error) {
			r := &rdr{b: b}
			return &imag.HashRead{Hash: r.u64(), SegID: r.u64(), Page: r.u64()}, nil
		},
	})
	RegisterBody(imag.OpFlush, BodyCodec{
		Encode: func(v any) ([]byte, []any, error) {
			f, ok := v.(*imag.FlushRequest)
			if !ok {
				return nil, nil, fmt.Errorf("want *imag.FlushRequest, got %T", v)
			}
			w := &buf{}
			w.u64(f.SegID)
			w.u32(uint32(f.MaxPages))
			return w.b, nil, nil
		},
		Decode: func(b []byte, _ []any) (any, error) {
			r := &rdr{b: b}
			return &imag.FlushRequest{SegID: r.u64(), MaxPages: int(r.u32())}, nil
		},
	})
}
