package wire

import (
	"testing"

	"accentmig/internal/imag"
	"accentmig/internal/ipc"
	"accentmig/internal/vm"
)

func TestFragCountUnit(t *testing.T) {
	const fragBytes, headroom = 512, 128
	unit := fragBytes + headroom
	cases := []struct{ n, want int }{
		{0, 1}, // even an empty frame occupies one fragment
		{1, 1},
		{unit, 1},
		{unit + 1, 2},
		{2 * unit, 2},
		{10*unit + unit/2, 11},
	}
	for _, c := range cases {
		if got := FragCount(c.n, fragBytes, headroom); got != c.want {
			t.Errorf("FragCount(%d) = %d, want %d", c.n, got, c.want)
		}
	}
	// A degenerate unit must not divide by zero.
	if got := FragCount(100, 0, 0); got != 1 {
		t.Errorf("FragCount with zero unit = %d, want 1", got)
	}
}

// TestFragCountStableAcrossRoundTrip: a fault-support reply (the
// data-plane message of copy-on-reference) must encode to the same
// frame length — hence the same fragment count — after crossing the
// wire, so every hop fragments it identically.
func TestFragCountStableAcrossRoundTrip(t *testing.T) {
	const fragBytes, headroom = 512, 128
	for _, pages := range []int{1, 3, 16, 64} {
		rep := &imag.ReadReply{}
		rep.Runs = []vm.PageRun{{Index: 4, Count: pages, Data: make([]byte, pages*512)}}
		m := &ipc.Message{
			Op:           imag.OpReadReply,
			To:           7,
			Body:         rep,
			BodyBytes:    rep.Bytes(),
			FaultSupport: true,
		}
		frame, extras, err := EncodeMessage(m)
		if err != nil {
			t.Fatalf("encode %d pages: %v", pages, err)
		}
		dec, err := DecodeMessage(frame, extras)
		if err != nil {
			t.Fatalf("decode %d pages: %v", pages, err)
		}
		frame2, _, err := EncodeMessage(dec)
		if err != nil {
			t.Fatalf("re-encode %d pages: %v", pages, err)
		}
		a := FragCount(len(frame), fragBytes, headroom)
		b := FragCount(len(frame2), fragBytes, headroom)
		if len(frame) != len(frame2) || a != b {
			t.Errorf("%d pages: frame %d B (%d frags) re-encoded to %d B (%d frags)",
				pages, len(frame), a, len(frame2), b)
		}
	}
}
