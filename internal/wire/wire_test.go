package wire

import (
	"bytes"
	"testing"
	"testing/quick"

	"accentmig/internal/imag"
	"accentmig/internal/ipc"
	"accentmig/internal/vm"
)

func roundTrip(t *testing.T, m *ipc.Message) *ipc.Message {
	t.Helper()
	out, err := Transfer(m)
	if err != nil {
		t.Fatalf("Transfer: %v", err)
	}
	return out
}

func TestRoundTripEnvelope(t *testing.T) {
	m := &ipc.Message{
		Op: 0x42, To: 7, ReplyTo: 9, BodyBytes: 123,
		NoIOUs: true, FaultSupport: true,
	}
	out := roundTrip(t, m)
	if out.Op != m.Op || out.To != m.To || out.ReplyTo != m.ReplyTo ||
		out.BodyBytes != m.BodyBytes || out.NoIOUs != m.NoIOUs || out.FaultSupport != m.FaultSupport {
		t.Errorf("envelope mismatch: %+v vs %+v", out, m)
	}
}

func TestRoundTripDataAttachment(t *testing.T) {
	att := &ipc.MemAttachment{
		Kind: ipc.AttachData, VA: 0x1234000, Size: 2 * 512,
		Collapsed: true, Resident: true, Copy: true,
		Runs: []vm.PageRun{
			{Index: 0, Count: 1, Data: []byte("page zero contents")},
			{Index: 7, Count: 1, Data: bytes.Repeat([]byte{0xAB}, 512)},
		},
	}
	m := &ipc.Message{Op: 1, Mem: []*ipc.MemAttachment{att}}
	out := roundTrip(t, m)
	oa := out.Mem[0]
	if oa.Kind != att.Kind || oa.VA != att.VA || oa.Size != att.Size ||
		!oa.Collapsed || !oa.Resident || !oa.Copy {
		t.Errorf("attachment fields lost: %+v", oa)
	}
	if len(oa.Runs) != 2 || oa.Runs[1].Index != 7 || !bytes.Equal(oa.Runs[1].Data, att.Runs[1].Data) {
		t.Error("page data corrupted")
	}
	// Deep copy: mutating the original must not affect the decoded one.
	att.Runs[1].Data[0] = 0xFF
	if oa.Runs[1].Data[0] == 0xFF {
		t.Error("decoded message shares page buffers with the source")
	}
}

func TestRoundTripMultiPageRun(t *testing.T) {
	att := &ipc.MemAttachment{
		Kind: ipc.AttachData, Size: 4 * 512,
		Runs: []vm.PageRun{{Index: 3, Count: 4, Data: bytes.Repeat([]byte{0xCD}, 4 * 512)}},
	}
	out := roundTrip(t, &ipc.Message{Op: 1, Mem: []*ipc.MemAttachment{att}})
	oa := out.Mem[0]
	if len(oa.Runs) != 1 || oa.Runs[0].Index != 3 || oa.Runs[0].Count != 4 ||
		!bytes.Equal(oa.Runs[0].Data, att.Runs[0].Data) {
		t.Errorf("multi-page run corrupted: %+v", oa.Runs)
	}
	if oa.PageCount() != 4 {
		t.Errorf("PageCount = %d, want 4", oa.PageCount())
	}
}

func TestRoundTripIOUAttachment(t *testing.T) {
	att := &ipc.MemAttachment{
		Kind: ipc.AttachIOU, VA: 0x8000, Size: 1 << 20,
		SegID: 99, SegOff: 4096, SegSize: 2 << 20, Backing: 1234,
	}
	out := roundTrip(t, &ipc.Message{Op: 2, Mem: []*ipc.MemAttachment{att}})
	oa := out.Mem[0]
	if oa.Kind != att.Kind || oa.VA != att.VA || oa.Size != att.Size ||
		oa.SegID != att.SegID || oa.SegOff != att.SegOff ||
		oa.SegSize != att.SegSize || oa.Backing != att.Backing {
		t.Errorf("IOU mismatch: %+v vs %+v", oa, att)
	}
}

func TestRoundTripImagBodies(t *testing.T) {
	cases := []*ipc.Message{
		{Op: imag.OpReadRequest, Body: &imag.ReadRequest{SegID: 5, PageIdx: 9, Prefetch: 3}, BodyBytes: imag.ReadRequestBytes},
		{Op: imag.OpReadReply, Body: &imag.ReadReply{SegID: 5, Runs: []vm.PageRun{{Index: 9, Count: 1, Data: []byte("hi")}}}},
		{Op: imag.OpFlushReply, Body: &imag.ReadReply{SegID: 5}},
		{Op: imag.OpSegmentDeath, Body: &imag.SegmentDeath{SegID: 5}, BodyBytes: imag.SegmentDeathBytes},
		{Op: imag.OpFlush, Body: &imag.FlushRequest{SegID: 5}, BodyBytes: imag.FlushRequestBytes},
	}
	for _, m := range cases {
		out := roundTrip(t, m)
		switch want := m.Body.(type) {
		case *imag.ReadRequest:
			got := out.Body.(*imag.ReadRequest)
			if *got != *want {
				t.Errorf("ReadRequest: %+v vs %+v", got, want)
			}
		case *imag.ReadReply:
			got := out.Body.(*imag.ReadReply)
			if got.SegID != want.SegID || len(got.Runs) != len(want.Runs) {
				t.Errorf("ReadReply: %+v vs %+v", got, want)
			}
			for i := range want.Runs {
				if got.Runs[i].Index != want.Runs[i].Index ||
					got.Runs[i].Count != want.Runs[i].Count ||
					!bytes.Equal(got.Runs[i].Data, want.Runs[i].Data) {
					t.Errorf("ReadReply run %d mismatch", i)
				}
			}
		case *imag.SegmentDeath:
			if *out.Body.(*imag.SegmentDeath) != *want {
				t.Error("SegmentDeath mismatch")
			}
		case *imag.FlushRequest:
			if *out.Body.(*imag.FlushRequest) != *want {
				t.Error("FlushRequest mismatch")
			}
		}
	}
}

func TestPassthroughBody(t *testing.T) {
	m := &ipc.Message{Op: 0x7777, Body: "just a test payload", BodyBytes: 19}
	out := roundTrip(t, m)
	if out.Body.(string) != "just a test payload" {
		t.Errorf("passthrough body lost: %v", out.Body)
	}
}

func TestNilBody(t *testing.T) {
	out := roundTrip(t, &ipc.Message{Op: imag.OpReadRequest})
	if out.Body != nil {
		t.Errorf("nil body decoded as %v", out.Body)
	}
}

func TestTruncatedFrame(t *testing.T) {
	m := &ipc.Message{Op: 1, BodyBytes: 5, Mem: []*ipc.MemAttachment{{
		Kind: ipc.AttachData, Size: 512,
		Runs: []vm.PageRun{{Index: 0, Count: 1, Data: make([]byte, 512)}},
	}}}
	frame, extras, err := EncodeMessage(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, len(frame) / 2, len(frame) - 1} {
		if _, err := DecodeMessage(frame[:cut], extras); err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
}

func TestTrailingBytesRejected(t *testing.T) {
	frame, extras, err := EncodeMessage(&ipc.Message{Op: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeMessage(append(frame, 0xEE), extras); err == nil {
		t.Error("trailing garbage not detected")
	}
}

func TestFrameBytesTracksWireBytes(t *testing.T) {
	// The analytic WireBytes estimate and the real encoded length must
	// stay within a small factor for representative message shapes.
	mk := func(pages int) *ipc.Message {
		att := &ipc.MemAttachment{Kind: ipc.AttachData, Size: uint64(pages) * 512}
		att.Runs = append(att.Runs, vm.PageRun{Index: 0, Count: pages, Data: make([]byte, pages*512)})
		return &ipc.Message{Op: 1, BodyBytes: 64, Mem: []*ipc.MemAttachment{att}}
	}
	for _, pages := range []int{1, 16, 256} {
		m := mk(pages)
		fb, err := FrameBytes(m)
		if err != nil {
			t.Fatal(err)
		}
		wb := m.WireBytes()
		ratio := float64(fb) / float64(wb)
		if ratio < 0.7 || ratio > 1.5 {
			t.Errorf("%d pages: frame %d vs WireBytes %d (ratio %.2f)", pages, fb, wb, ratio)
		}
	}
}

// Property: arbitrary attachments survive the round trip bit-for-bit.
func TestQuickAttachmentRoundTrip(t *testing.T) {
	f := func(va uint32, size uint64, kind bool, flags [3]bool, pages [][]byte, segID, segOff uint64) bool {
		att := &ipc.MemAttachment{
			VA: vm.Addr(va), Size: size,
			Collapsed: flags[0], Resident: flags[1], Copy: flags[2],
			SegID: segID, SegOff: segOff,
		}
		if kind {
			att.Kind = ipc.AttachIOU
		} else {
			for i, d := range pages {
				if len(d) > 512 {
					d = d[:512]
				}
				att.AppendPage(uint64(i), d)
			}
		}
		out, err := Transfer(&ipc.Message{Op: 3, Mem: []*ipc.MemAttachment{att}})
		if err != nil {
			return false
		}
		oa := out.Mem[0]
		if oa.Kind != att.Kind || oa.VA != att.VA || oa.Size != att.Size ||
			oa.Collapsed != att.Collapsed || oa.Resident != att.Resident || oa.Copy != att.Copy ||
			oa.SegID != att.SegID || oa.SegOff != att.SegOff {
			return false
		}
		if len(oa.Runs) != len(att.Runs) {
			return false
		}
		for i := range att.Runs {
			if oa.Runs[i].Index != att.Runs[i].Index || oa.Runs[i].Count != att.Runs[i].Count ||
				!bytes.Equal(oa.Runs[i].Data, att.Runs[i].Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
