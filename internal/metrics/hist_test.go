package metrics

import (
	"math"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistIndexMonotonic(t *testing.T) {
	prev := -1
	for _, v := range []uint64{0, 1, 7, 8, 9, 15, 16, 17, 100, 1000, 1 << 20, 1<<40 + 12345, math.MaxUint64} {
		idx := histIndex(v)
		if idx < prev {
			t.Errorf("histIndex(%d) = %d < previous %d", v, idx, prev)
		}
		prev = idx
	}
}

func TestHistMidWithinBucket(t *testing.T) {
	// The midpoint must map back to its own bucket, and the relative
	// error of representing any value by its bucket midpoint is bounded
	// by the sub-bucket width (1/8 above the linear range).
	if err := quick.Check(func(v uint64) bool {
		idx := histIndex(v)
		mid := histMid(idx)
		if histIndex(mid) != idx {
			return false
		}
		if v < 8 {
			return mid == v
		}
		relErr := math.Abs(float64(mid)-float64(v)) / float64(v)
		return relErr <= 1.0/8
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantileEmptyAndNil(t *testing.T) {
	var d *Distribution
	if d.Quantile(0.5) != 0 {
		t.Error("nil distribution quantile should be 0")
	}
	d = &Distribution{}
	if d.Quantile(0.99) != 0 {
		t.Error("empty distribution quantile should be 0")
	}
}

func TestQuantileAgainstExact(t *testing.T) {
	r := NewRecorder(time.Second)
	// A deterministic skewed sample set: most values small, a heavy
	// tail, mimicking fault-latency distributions.
	var samples []time.Duration
	for i := 0; i < 900; i++ {
		samples = append(samples, time.Duration(40+i%20)*time.Millisecond)
	}
	for i := 0; i < 100; i++ {
		samples = append(samples, time.Duration(100+i*5)*time.Millisecond)
	}
	for _, s := range samples {
		r.Observe("lat", s)
	}
	d := r.Dist("lat")

	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, q := range []float64{0.50, 0.95, 0.99} {
		exact := sorted[int(q*float64(len(sorted)))]
		got := d.Quantile(q)
		relErr := math.Abs(got.Seconds()-exact.Seconds()) / exact.Seconds()
		if relErr > 1.0/8 {
			t.Errorf("Quantile(%.2f) = %v, exact %v (rel err %.3f)", q, got, exact, relErr)
		}
	}
	if d.Quantile(0) != d.Min || d.Quantile(1) != d.Max {
		t.Errorf("extreme quantiles should clamp to Min/Max: %v %v", d.Quantile(0), d.Quantile(1))
	}
}

func TestQuantileSingleSample(t *testing.T) {
	r := NewRecorder(time.Second)
	r.Observe("one", 42*time.Millisecond)
	d := r.Dist("one")
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := d.Quantile(q); got != 42*time.Millisecond {
			t.Errorf("Quantile(%.2f) = %v, want 42ms", q, got)
		}
	}
}

func TestQuantileClampsToEnvelope(t *testing.T) {
	r := NewRecorder(time.Second)
	r.Observe("x", 100*time.Millisecond)
	r.Observe("x", 101*time.Millisecond)
	d := r.Dist("x")
	if got := d.Quantile(0.5); got < d.Min || got > d.Max {
		t.Errorf("Quantile(0.5) = %v outside [%v, %v]", got, d.Min, d.Max)
	}
}

func TestObserveZeroAndNegative(t *testing.T) {
	r := NewRecorder(time.Second)
	r.Observe("z", 0)
	r.Observe("z", -time.Millisecond) // clamped into bucket 0; Min stays exact
	d := r.Dist("z")
	if d.Count != 2 {
		t.Fatalf("Count = %d", d.Count)
	}
	if d.Min != -time.Millisecond {
		t.Errorf("Min = %v", d.Min)
	}
	if got := d.Quantile(0.5); got < d.Min || got > d.Max {
		t.Errorf("Quantile = %v outside envelope", got)
	}
}

// TestSeriesInteriorGaps pins the zero-filling contract: buckets with
// no traffic between the first and last non-empty buckets appear with
// zero bytes (plots must show gaps honestly).
func TestSeriesInteriorGaps(t *testing.T) {
	r := NewRecorder(time.Second)
	r.AddBytes(500*time.Millisecond, 100, false)
	r.AddBytes(4500*time.Millisecond, 200, true)
	s := r.Series()
	if len(s) != 5 {
		t.Fatalf("Series length = %d, want 5 (buckets 0..4 inclusive)", len(s))
	}
	for i := 1; i <= 3; i++ {
		if s[i].Bytes != 0 || s[i].FaultBytes != 0 {
			t.Errorf("interior bucket %d not zero: %+v", i, s[i])
		}
		if s[i].T != time.Duration(i)*time.Second {
			t.Errorf("interior bucket %d at %v", i, s[i].T)
		}
	}
	if s[0].Bytes != 100 || s[4].Bytes != 200 || s[4].FaultBytes != 200 {
		t.Errorf("endpoint buckets wrong: %+v", s)
	}
}

// TestPeakRateEmpty pins PeakRate's behaviour on a fresh recorder.
func TestPeakRateEmpty(t *testing.T) {
	r := NewRecorder(time.Second)
	if got := r.PeakRate(); got != 0 {
		t.Errorf("PeakRate on empty recorder = %d, want 0", got)
	}
}

// TestReopenedPhase pins StartPhase/EndPhase reopen semantics: a
// second StartPhase discards the earlier span entirely, and the phase
// is invisible in Phases() while open.
func TestReopenedPhase(t *testing.T) {
	r := NewRecorder(time.Second)
	r.StartPhase("xfer", 1*time.Second)
	r.EndPhase("xfer", 2*time.Second)
	if got := r.PhaseElapsed("xfer"); got != time.Second {
		t.Fatalf("first span elapsed = %v", got)
	}

	r.StartPhase("xfer", 10*time.Second)
	// While reopened, the phase must not appear closed.
	if got := r.PhaseElapsed("xfer"); got != 0 {
		t.Errorf("reopened phase elapsed = %v, want 0", got)
	}
	if phs := r.Phases(); len(phs) != 0 {
		t.Errorf("reopened phase visible in Phases(): %+v", phs)
	}

	r.EndPhase("xfer", 13*time.Second)
	phs := r.Phases()
	if len(phs) != 1 || phs[0].Elapsed() != 3*time.Second {
		t.Errorf("reopened span = %+v, want one 3s phase", phs)
	}

	// Ending a never-opened phase records a zero-length span.
	r.EndPhase("ghost", 5*time.Second)
	if got := r.PhaseElapsed("ghost"); got != 0 {
		t.Errorf("unopened EndPhase elapsed = %v", got)
	}
	if phs := r.Phases(); len(phs) != 2 {
		t.Errorf("ghost phase missing from Phases(): %+v", phs)
	}
}

// TestSyncRecorderConcurrent exercises SyncRecorder from many
// goroutines; run with -race to verify the locking.
func TestSyncRecorderConcurrent(t *testing.T) {
	s := NewSyncRecorder(time.Second)
	const workers = 8
	const each = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				s.Observe("lat", time.Duration(i+1)*time.Microsecond)
				s.AddBytes(time.Duration(i)*time.Millisecond, 10, i%2 == 0)
				s.AddMessage(time.Microsecond)
				s.Inc("n", 1)
				if i%100 == 0 {
					_ = s.Dist("lat")
					_ = s.Series()
					_ = s.PeakRate()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := s.Counter("n"); got != workers*each {
		t.Errorf("counter = %d, want %d", got, workers*each)
	}
	d := s.Dist("lat")
	if d.Count != workers*each {
		t.Errorf("dist count = %d, want %d", d.Count, workers*each)
	}
	if d.Quantile(0.5) <= 0 {
		t.Errorf("median = %v", d.Quantile(0.5))
	}
	if got := s.Messages(); got != workers*each {
		t.Errorf("messages = %d", got)
	}
	// The snapshot copy must be isolated from further recording.
	snap := s.Dist("lat")
	before := snap.Count
	s.Observe("lat", time.Second)
	if snap.Count != before {
		t.Error("Dist snapshot shares state with the live recorder")
	}
}
