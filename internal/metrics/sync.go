package metrics

import (
	"sync"
	"time"
)

// SyncRecorder is a mutex-guarded wrapper around Recorder for the rare
// producers that record from multiple OS goroutines — e.g. independent
// trial kernels running on separate goroutines feeding one aggregate
// recorder. Within a single simulation kernel the plain Recorder is
// sufficient (and faster); see the Recorder doc comment.
type SyncRecorder struct {
	mu sync.Mutex
	r  *Recorder
}

// NewSyncRecorder wraps a fresh Recorder with the given rate-bucket
// width.
func NewSyncRecorder(bucket time.Duration) *SyncRecorder {
	return &SyncRecorder{r: NewRecorder(bucket)}
}

// AddBytes records n bytes crossing the network at virtual time at.
func (s *SyncRecorder) AddBytes(at time.Duration, n int, fault bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.r.AddBytes(at, n, fault)
}

// AddMessage records one IPC message costing cpu of handling time.
func (s *SyncRecorder) AddMessage(cpu time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.r.AddMessage(cpu)
}

// AddMessageTime adds handling time without bumping the message count.
func (s *SyncRecorder) AddMessageTime(cpu time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.r.AddMessageTime(cpu)
}

// Inc bumps a named counter.
func (s *SyncRecorder) Inc(name string, delta uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.r.Inc(name, delta)
}

// Observe records one duration sample.
func (s *SyncRecorder) Observe(name string, v time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.r.Observe(name, v)
}

// StartPhase opens a named phase.
func (s *SyncRecorder) StartPhase(name string, at time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.r.StartPhase(name, at)
}

// EndPhase closes a named phase.
func (s *SyncRecorder) EndPhase(name string, at time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.r.EndPhase(name, at)
}

// Dist returns a snapshot copy of the named distribution (nil if it
// does not exist). Unlike Recorder.Dist, the caller gets an isolated
// copy: the live histogram keeps changing under its own lock.
func (s *SyncRecorder) Dist(name string) *Distribution {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.r.Dist(name)
	if d == nil {
		return nil
	}
	cp := *d
	cp.hist = append([]uint64(nil), d.hist...)
	return &cp
}

// Counter reads a named counter.
func (s *SyncRecorder) Counter(name string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.Counter(name)
}

// Counters returns a copy of all named counters.
func (s *SyncRecorder) Counters() map[string]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.Counters()
}

// BytesTotal reports all bytes recorded.
func (s *SyncRecorder) BytesTotal() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.BytesTotal()
}

// BytesFault reports fault-support bytes.
func (s *SyncRecorder) BytesFault() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.BytesFault()
}

// Messages reports the recorded message count.
func (s *SyncRecorder) Messages() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.Messages()
}

// MessageTime reports total message-handling CPU time.
func (s *SyncRecorder) MessageTime() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.MessageTime()
}

// PhaseElapsed reports the elapsed time of a closed named phase.
func (s *SyncRecorder) PhaseElapsed(name string) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.PhaseElapsed(name)
}

// Phases returns all closed phases sorted by start time.
func (s *SyncRecorder) Phases() []Phase {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.Phases()
}

// Series returns the byte-rate time series.
func (s *SyncRecorder) Series() []RatePoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.Series()
}

// PeakRate reports the largest per-bucket byte count.
func (s *SyncRecorder) PeakRate() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.PeakRate()
}
