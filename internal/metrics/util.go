package metrics

import (
	"sort"
	"time"
)

// Utilization is a set of per-resource, time-bucketed gauges: for each
// named resource (a CPU, a link, a backer queue) it accumulates busy
// time and queued-waiting time per fixed-width bucket, from which
// busy-fraction and mean-queue-depth timelines fall out. It is passive
// like the rest of this package: producers (the profiler, replaying a
// flight-recorder stream) add clipped spans; nothing here touches the
// simulation kernel.
type Utilization struct {
	bucket time.Duration
	tracks map[string]*UtilTrack
}

// UtilTrack is one resource's timeline. Busy[i] is held-time inside
// bucket i ([i*bucket, (i+1)*bucket)); Wait[i] is the summed waiting
// time of queued procs in the bucket, so Wait[i]/bucket is the mean
// queue depth over the bucket.
type UtilTrack struct {
	Resource string
	Busy     []time.Duration
	Wait     []time.Duration
}

// NewUtilization returns an empty recorder with the given bucket width
// (<= 0 selects one second).
func NewUtilization(bucket time.Duration) *Utilization {
	if bucket <= 0 {
		bucket = time.Second
	}
	return &Utilization{bucket: bucket, tracks: make(map[string]*UtilTrack)}
}

// Bucket reports the bucket width.
func (u *Utilization) Bucket() time.Duration { return u.bucket }

// track finds or creates the named track.
func (u *Utilization) track(resource string) *UtilTrack {
	t := u.tracks[resource]
	if t == nil {
		t = &UtilTrack{Resource: resource}
		u.tracks[resource] = t
	}
	return t
}

// grow extends s so index i exists.
func grow(s []time.Duration, i int) []time.Duration {
	for len(s) <= i {
		s = append(s, 0)
	}
	return s
}

// add distributes the span [start, end) over the buckets it crosses.
func (u *Utilization) add(resource string, start, end time.Duration, busy bool) {
	if end <= start || start < 0 {
		return
	}
	t := u.track(resource)
	for cur := start; cur < end; {
		i := int(cur / u.bucket)
		edge := time.Duration(i+1) * u.bucket
		if edge > end {
			edge = end
		}
		if busy {
			t.Busy = grow(t.Busy, i)
			t.Busy[i] += edge - cur
		} else {
			t.Wait = grow(t.Wait, i)
			t.Wait[i] += edge - cur
		}
		cur = edge
	}
}

// AddBusy accumulates one held span [start, end) for the resource.
func (u *Utilization) AddBusy(resource string, start, end time.Duration) {
	u.add(resource, start, end, true)
}

// AddWait accumulates one queued-waiting span [start, end) for the
// resource (one waiter's wait; overlapping waiters sum into depth).
func (u *Utilization) AddWait(resource string, start, end time.Duration) {
	u.add(resource, start, end, false)
}

// Track returns the named track, possibly nil.
func (u *Utilization) Track(resource string) *UtilTrack { return u.tracks[resource] }

// Tracks lists all tracks sorted by resource name.
func (u *Utilization) Tracks() []*UtilTrack {
	names := make([]string, 0, len(u.tracks))
	for n := range u.tracks {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*UtilTrack, len(names))
	for i, n := range names {
		out[i] = u.tracks[n]
	}
	return out
}

// BusyFrac reports bucket i's busy fraction in [0, 1] (for a capacity-1
// resource; multi-unit resources can exceed 1).
func (t *UtilTrack) BusyFrac(bucket time.Duration, i int) float64 {
	if t == nil || i < 0 || i >= len(t.Busy) || bucket <= 0 {
		return 0
	}
	return float64(t.Busy[i]) / float64(bucket)
}

// MeanDepth reports bucket i's mean queue depth.
func (t *UtilTrack) MeanDepth(bucket time.Duration, i int) float64 {
	if t == nil || i < 0 || i >= len(t.Wait) || bucket <= 0 {
		return 0
	}
	return float64(t.Wait[i]) / float64(bucket)
}

// Buckets reports the number of buckets the track spans.
func (t *UtilTrack) Buckets() int {
	if t == nil {
		return 0
	}
	if len(t.Busy) > len(t.Wait) {
		return len(t.Busy)
	}
	return len(t.Wait)
}
